// Dependency tracking: forward-tracks the ramification of a malicious
// script across hosts (paper Query 3 / behaviour d3) and backward-tracks
// the origin of a software update (behaviour d1).
//
// Dependency queries chain constraints along a path of entities — nodes are
// entities, edges are operations — so the shared entity between consecutive
// steps never has to be repeated, and the forward/backward keyword imposes
// the temporal order of the events along the path.
//
//	go run ./examples/dependency_tracking
package main

import (
	"fmt"
	"log"

	"aiql"
	"aiql/internal/gen"
)

func main() {
	cfg := gen.SmallConfig()
	fmt.Printf("generating %d-host enterprise with injected dependency chains...\n\n", cfg.Hosts)
	db := aiql.Open(aiql.Options{})
	db.Ingest(gen.Scenario(cfg))

	day := gen.DateStr(gen.BehaviorDay)

	// Forward tracking (paper Query 3): /bin/cp plants info_stealer.sh in
	// the web root on the web server; apache serves it; wget on the dev box
	// downloads and writes it locally. The ->[connect] step crosses hosts.
	fwd := fmt.Sprintf(`
(at "%s")
forward: proc p1["%%/bin/cp%%", agentid = %d] ->[write] file f1["/var/www/%%info_stealer%%"]
<-[read] proc p2["%%apache%%"]
->[connect] proc p3[agentid = %d]
->[write] file f2["%%info_stealer%%"]
return f1, p1, p2, p3, f2`, day, gen.AgentWebServer, gen.AgentDevBox)
	fmt.Println("=== forward: malware ramification across hosts ===")
	fmt.Println(fwd)
	res, err := db.Query(fwd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())
	fmt.Println()

	// Backward tracking (behaviour d1): where did chrome_update.exe come
	// from? The chain runs from the written file back through the updater
	// process to the CDN endpoint it downloaded from.
	bwd := fmt.Sprintf(`
(at "%s")
agentid = %d
backward: file f1["%%chrome_update.exe"] <-[write] proc p1["%%GoogleUpdate%%"] ->[read] ip i1[dstip = "%s"]
return f1, p1, i1`, day, gen.AgentWinClient, gen.UpdateCDNIP)
	fmt.Println("=== backward: origin of a software update ===")
	fmt.Println(bwd)
	res, err = db.Query(bwd)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())
}
