// APT investigation walkthrough: reproduces the paper's Sec. 6.2 case
// study end-to-end. It generates the enterprise scenario with the injected
// APT (initial compromise through data exfiltration), then retraces the
// analyst's iterative investigation of step c5:
//
//  1. an anomaly query over the database server's outbound traffic finds
//     the exfiltrating process (paper Query 5),
//
//  2. a starter multievent query finds that process's data sources
//     (paper Query 6),
//
//  3. the complete query ties the whole exfiltration chain together
//     (paper Query 7).
//
//     go run ./examples/apt_investigation
package main

import (
	"fmt"
	"log"

	"aiql"
	"aiql/internal/gen"
)

func main() {
	cfg := gen.SmallConfig()
	fmt.Printf("generating %d-host enterprise with injected APT...\n\n", cfg.Hosts)
	db := aiql.Open(aiql.Options{})
	db.Ingest(gen.Scenario(cfg))

	day := gen.DateStr(gen.APT1Day)
	dbAgent := gen.AgentDBServer

	step := func(title, src string) *aiql.Result {
		fmt.Printf("=== %s ===\n%s\n", title, src)
		res, err := db.Query(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res.String())
		fmt.Println()
		return res
	}

	// Step 1 — the detector on the database server flags large outbound
	// transfers; find which process spikes (simple moving average, SMA3).
	step("anomaly: who is sending unusually much data to the attacker?", fmt.Sprintf(`
(at "%s")
agentid = %d
window = 1 min, step = 10 sec
proc p write ip i[dstip = "%s"] as evt
return p, avg(evt.amount) as amt
group by p
having (amt > 2 * (amt + amt[1] + amt[2]) / 3)`, day, dbAgent, gen.AttackerIP))

	// Step 2 — sbblv.exe is suspicious; what did it read before sending?
	step("starter: sbblv.exe's data sources", fmt.Sprintf(`
(at "%s")
agentid = %d
proc p1["%%sbblv.exe"] read || write file f1 as evt1
proc p1 read || write ip i1[dstip = "%s"] as evt2
with evt1 before evt2
return distinct p1, f1, i1, evt1.optype, evt1.access`, day, dbAgent, gen.AttackerIP))

	// Step 3 — backup1.dmp stands out; tie the full chain together:
	// cmd → osql, sqlservr writes the dump, sbblv reads it and exfiltrates.
	res := step("complete: the c5 exfiltration chain", fmt.Sprintf(`
(at "%s")
agentid = %d
proc p1["%%cmd.exe"] start proc p2["%%osql.exe"] as evt1
proc p3["%%sqlservr.exe"] write file f1["%%backup1.dmp"] as evt2
proc p4["%%sbblv.exe"] read file f1 as evt3
proc p4 read || write ip i1[dstip = "%s"] as evt4
with evt1 before evt2, evt2 before evt3, evt3 before evt4
return distinct p1, p2, p3, f1, p4, i1`, day, dbAgent, gen.AttackerIP))

	if len(res.Rows) > 0 {
		fmt.Println("investigation complete: the attacker used osql to dump the database,")
		fmt.Println("and sbblv.exe shipped the dump to", gen.AttackerIP)
	}
}
