// Quickstart: build a small monitoring dataset by hand, ingest it, and run
// a first multievent AIQL query through the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"aiql"
	"aiql/internal/gen"
	"aiql/internal/types"
)

func main() {
	// A dataset is entities (files, processes, network connections) plus
	// <subject, operation, object> events. The builder hands out stable
	// entity IDs and per-agent event sequence numbers.
	b := gen.NewBuilder(42)
	const host = 1
	day := gen.DayStart(1) // 2017-03-02 00:00 UTC

	bash := b.Proc(host, "/bin/bash")
	curl := b.ProcInstance(host, "/usr/bin/curl")
	secret := b.File(host, "/home/alice/.ssh/id_rsa")
	c2 := b.Conn(host, "203.0.113.9", 443)

	b.Emit(host, bash, curl, types.OpStart, day+1000, 0)
	b.Emit(host, curl, secret, types.OpRead, day+2000, 4096)
	b.Emit(host, curl, c2, types.OpWrite, day+3000, 4096)

	// Open a database (all paper optimizations on) and ingest.
	db := aiql.Open(aiql.Options{})
	db.Ingest(b.Dataset())

	// "Which process read an SSH key and then talked to the network?" —
	// two event patterns related by entity reuse (p) and temporal order.
	res, err := db.Query(`
		agentid = 1
		(at "03/02/2017")
		proc p read file f["%id_rsa"] as evt1
		proc p write ip i as evt2
		with evt1 before evt2
		return p, f, i.dst_ip`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.String())
}
