// Anomaly detection: sliding-window queries with history states and
// moving averages (paper Sec. 4.3). Two detectors run over the injected
// scenario:
//
//   - a network-spike detector using the simple moving average of the
//     per-window transfer volume (paper Query 4 / behaviour s5), and
//
//   - an abnormal-file-access detector using an exponentially weighted
//     moving average over the count of distinct files read per window
//     (behaviour s6).
//
//     go run ./examples/anomaly_detection
package main

import (
	"fmt"
	"log"

	"aiql"
	"aiql/internal/gen"
)

func main() {
	cfg := gen.SmallConfig()
	fmt.Printf("generating %d-host enterprise with injected anomalies...\n\n", cfg.Hosts)
	db := aiql.Open(aiql.Options{})
	db.Ingest(gen.Scenario(cfg))

	day := gen.DateStr(gen.BehaviorDay)

	run := func(title, src string) {
		fmt.Printf("=== %s ===\n%s\n", title, src)
		res, err := db.Query(src)
		if err != nil {
			log.Fatal(err)
		}
		// Anomaly results carry one row per (window, group) that trips the
		// detector; show the first few and the total.
		max := len(res.Rows)
		if max > 5 {
			max = 5
		}
		show := *res
		show.Rows = res.Rows[:max]
		fmt.Print(show.String())
		fmt.Printf("... detector fired in %d windows total\n\n", len(res.Rows))
	}

	// The backup agent trickles ~4 KB every 12 seconds all afternoon, then
	// bursts at 64 MB: the SMA3 comparison flags exactly the burst windows.
	run("network access spike (SMA over transfer volume)", fmt.Sprintf(`
(at "%s")
agentid = %d
window = 1 min, step = 10 sec
proc p write ip i[dstip = "%s"] as evt
return p, avg(evt.amount) as amt
group by p
having (amt > 2 * (amt + amt[1] + amt[2]) / 3)`, day, gen.AgentMailSrv, gen.BackupSrvIP))

	// A dropper enumerates the user's documents far faster than any
	// interactive program: the per-window count of distinct files read
	// jumps relative to its EWMA.
	run("abnormal file access (EWMA over distinct files read)", fmt.Sprintf(`
(at "%s")
agentid = %d
window = 1 min, step = 10 sec
proc p read file f["%%Documents%%"] as evt
return p, count(distinct f) as freq
group by p
having freq > 5 && (freq - EWMA(freq, 0.5)) / EWMA(freq, 0.5) > 0.2`, day, gen.AgentWinClient))
}
