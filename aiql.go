// Package aiql is a query system for efficient attack investigation over
// system monitoring data, reproducing Gao et al., "AIQL: Enabling Efficient
// Attack Investigation from System Monitoring Data" (USENIX ATC 2018).
//
// The package ties together the Attack Investigation Query Language parser,
// the spatially and temporally partitioned event store, and the
// relationship-based query scheduler:
//
//	db := aiql.Open(aiql.Options{})
//	db.Ingest(dataset)
//	res, err := db.Query(`
//	    agentid = 2
//	    (at "03/02/2017")
//	    proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
//	    proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
//	    with evt1 before evt2
//	    return distinct p1, p2, p3, f1`)
//
// AIQL supports three query families (paper Sec. 4): multievent queries
// relating event patterns through attribute and temporal relationships,
// dependency queries chaining constraints along a path of entities, and
// anomaly queries aggregating a pattern in sliding time windows with
// history states and moving averages.
package aiql

import (
	"context"

	"aiql/internal/engine"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// Options configures a database. The zero value enables every optimization
// described in the paper; the fields exist for ablation studies.
type Options struct {
	// Storage controls partitioning, indexing and scan parallelism.
	Storage storage.Options
	// Engine controls the data-query scheduler.
	Engine engine.Options
}

// DB is an AIQL database: an optimized event store plus a query engine.
type DB struct {
	store *storage.Store
	eng   *engine.Engine
}

// Open creates an empty database.
func Open(opts Options) *DB {
	st := storage.New(opts.Storage)
	return &DB{store: st, eng: engine.New(st, opts.Engine)}
}

// Ingest loads a dataset into the store.
func (db *DB) Ingest(d *types.Dataset) { db.store.Ingest(d) }

// Query parses, compiles, schedules and executes one AIQL query.
func (db *DB) Query(src string) (*engine.Result, error) { return db.eng.Query(src) }

// QueryContext executes one AIQL query under a context: canceling it (or
// exceeding its deadline) aborts storage scans and join work promptly.
func (db *DB) QueryContext(ctx context.Context, src string) (*engine.Result, error) {
	return db.eng.QueryContext(ctx, src)
}

// Snapshot freezes the store into an immutable, generation-stamped view.
// Queries executed against it (engine.PreparedQuery.ExecuteOn) are isolated
// from concurrent Ingest calls. Close the snapshot when done.
func (db *DB) Snapshot() *storage.Snapshot { return db.store.Snapshot() }

// Store exposes the underlying store (for diagnostics and benchmarks).
func (db *DB) Store() *storage.Store { return db.store }

// Engine exposes the underlying engine.
func (db *DB) Engine() *engine.Engine { return db.eng }

// Result is the tabular result of a query.
type Result = engine.Result

// Dataset re-exports the dataset bundle type accepted by Ingest.
type Dataset = types.Dataset
