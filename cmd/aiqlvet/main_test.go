package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildAiqlvet compiles the vettool once per test into a temp dir.
func buildAiqlvet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "aiqlvet")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// repoRoot walks up from the package dir to the module root so the tests
// can run the tool over repo-relative package patterns.
func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

// TestVersionProbe covers the -V=full handshake the go command opens
// with: a single `name version ...` line and exit 0.
func TestVersionProbe(t *testing.T) {
	bin := buildAiqlvet(t)
	out, err := exec.Command(bin, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full exited with %v\n%s", err, out)
	}
	line := strings.TrimSpace(string(out))
	if !strings.HasPrefix(line, "aiqlvet version ") || strings.Count(line, "\n") != 0 {
		t.Errorf("version line %q, want single `aiqlvet version ...` line", line)
	}
}

// TestStandaloneFindsFixtureViolations runs the binary directly over a
// known-dirty fixture package and asserts the diagnostic contract: exit
// status 2, findings on stderr, and the trailing count line.
func TestStandaloneFindsFixtureViolations(t *testing.T) {
	bin := buildAiqlvet(t)
	cmd := exec.Command(bin, "aiql/internal/lint/testdata/src/errcmpfix")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("exit %v, want status 2 for a package with findings\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "errcmp: sentinel error ErrBoom") {
		t.Errorf("stderr missing the errcmp finding:\n%s", text)
	}
	if !strings.Contains(text, "diagnostic(s)") {
		t.Errorf("stderr missing the summary count line:\n%s", text)
	}
}

// TestVettoolProtocol drives the binary through the real go vet
// -vettool cfg protocol — version probe, flags probe, per-unit .cfg
// files, facts exchange — against a dirty fixture, asserting the run
// fails and surfaces the finding.
func TestVettoolProtocol(t *testing.T) {
	bin := buildAiqlvet(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "aiql/internal/lint/testdata/src/errcmpfix")
	cmd.Dir = repoRoot(t)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed on a package with findings\n%s", out)
	}
	if !strings.Contains(string(out), "errcmp: sentinel error ErrBoom") {
		t.Errorf("go vet output missing the errcmp finding:\n%s", out)
	}
}

// TestVettoolCleanPackage is the inverse: a fixture with only suppressed
// or conforming code passes under the full protocol.
func TestVettoolCleanPackage(t *testing.T) {
	bin := buildAiqlvet(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "aiql/internal/lint/testdata/src/mainskip")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed on a clean package: %v\n%s", err, out)
	}
}

// TestRepoIsClean pins the PR's acceptance gate: the suite reports zero
// diagnostics over the whole repository, so reintroducing a cursor leak
// or an unguarded walMu-class access fails this test before CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole repo; skipped in -short")
	}
	bin := buildAiqlvet(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("aiqlvet ./... reported diagnostics: %v\n%s", err, out)
	}
}
