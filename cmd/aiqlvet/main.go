// Command aiqlvet runs aiql's project-invariant static-analysis suite
// (internal/lint): cursorclose, lockguard, boundedmake, errcmp, ctxflow
// and wallclock. It speaks the `go vet -vettool` unit-checker protocol,
// so the canonical invocation is
//
//	go vet -vettool=$(which aiqlvet) ./...
//
// and it also runs standalone over package patterns:
//
//	aiqlvet ./...
//
// Exit status: 0 clean, 1 usage/internal error, 2 diagnostics reported
// (matching the x/tools unitchecker convention go vet expects).
//
// Suppress a finding with an annotation that must carry a reason:
//
//	//aiql:ignore <analyzer> -- <reason>
//
// See docs/ANALYSIS.md for the contract of each analyzer.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"aiql/internal/lint"
)

func main() {
	args := os.Args[1:]
	// Protocol probes from the go command come first: it asks for the
	// tool's version (cache key) and its flags before any analysis.
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			printVersion()
			return
		case a == "-flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}
	os.Exit(runStandalone(args))
}

// printVersion emits the `name version ...` line the go command embeds in
// its action cache key. The executable's own hash keys it, so rebuilding
// aiqlvet with changed analyzers invalidates cached vet results.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))[:32]
			}
			f.Close()
		}
	}
	fmt.Printf("aiqlvet version devel buildID=%s\n", id)
}

// vetConfig is the configuration file the go command hands a vettool for
// each package unit, mirroring x/tools' unitchecker.Config.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one go vet unit described by a .cfg file.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aiqlvet:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "aiqlvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The facts file must exist for the go command to cache the unit;
	// the aiql analyzers exchange no facts, so it is always empty.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintln(os.Stderr, "aiqlvet:", err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}
	pkg, err := typecheckUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, "aiqlvet:", err)
		return 1
	}
	diags, err := lint.Analyze(pkg, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "aiqlvet:", err)
		return 1
	}
	writeVetx()
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	return 2
}

// typecheckUnit parses and type-checks the unit's files, resolving
// imports through the export data the go command listed in PackageFile.
func typecheckUnit(cfg *vetConfig) (*lint.Package, error) {
	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, name := range cfg.GoFiles {
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err)
	}
	return &lint.Package{
		PkgPath:   cfg.ImportPath,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// runStandalone loads package patterns itself (default ./...) and runs
// the suite over every matched package and test variant.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aiqlvet:", err)
		return 1
	}
	seen := make(map[lint.Diagnostic]bool)
	n := 0
	for _, pkg := range pkgs {
		diags, err := lint.Analyze(pkg, lint.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "aiqlvet:", err)
			return 1
		}
		for _, d := range diags {
			if seen[d] {
				continue // plain package + test variant overlap
			}
			seen[d] = true
			fmt.Fprintln(os.Stderr, d)
			n++
		}
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "aiqlvet: %d diagnostic(s)\n", n)
		return 2
	}
	return 0
}
