// Command aiqlbench regenerates the paper's evaluation tables and figures
// against a synthetic enterprise dataset:
//
//	aiqlbench -exp table3   # Table 3: case-study aggregate statistics
//	aiqlbench -exp fig5     # Fig 5: per-query end-to-end execution time
//	aiqlbench -exp fig6     # Fig 6: scheduler comparison, single node
//	aiqlbench -exp fig7     # Fig 7: scheduler comparison, MPP (Greenplum)
//	aiqlbench -exp fig8     # Fig 8: conciseness per behaviour
//	aiqlbench -exp table4   # Table 4: malware sample inventory
//	aiqlbench -exp table5   # Table 5: conciseness improvement ratios
//	aiqlbench -exp all      # everything, in paper order
//
// Dataset scale is controlled by -hosts, -days, -events (background events
// per host per day) and -seed; the defaults regenerate in a few seconds.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aiql/internal/bench"
	"aiql/internal/gen"
	"aiql/internal/types"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment: table3|fig5|fig6|fig7|fig8|table4|table5|all")
		hosts  = flag.Int("hosts", 15, "number of monitored hosts (>= 10)")
		days   = flag.Int("days", 4, "number of simulated days (>= 3)")
		events = flag.Int("events", 20000, "background events per host per day")
		seed   = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	cfg := gen.Config{Hosts: *hosts, Days: *days, BackgroundPerHostDay: *events, Seed: *seed}
	needData := *exp != "fig8" && *exp != "table4" && *exp != "table5"

	var ds *types.Dataset
	if needData {
		fmt.Printf("generating dataset: %d hosts x %d days x %d background events/host/day (seed %d)...\n",
			cfg.Hosts, cfg.Days, cfg.BackgroundPerHostDay, cfg.Seed)
		start := time.Now()
		data := bench.Dataset(cfg)
		st := data.Stats()
		fmt.Printf("dataset ready in %.1fs: %d events, %d entities, %d agents\n\n",
			time.Since(start).Seconds(), st.Events, st.Entities, st.Agents)
		ds = data
	}

	w := os.Stdout
	switch *exp {
	case "table3":
		bench.Table3(w, ds)
	case "fig5":
		bench.Fig5(w, ds)
	case "fig6":
		bench.Fig6(w, ds)
	case "fig7":
		bench.Fig7(w, ds)
	case "fig8":
		bench.Fig8(w)
	case "table4":
		bench.Table4(w)
	case "table5":
		cmps := bench.Fig8(w)
		fmt.Fprintln(w)
		bench.Table5(w, cmps)
	case "all":
		bench.Table3(w, ds)
		fmt.Fprintln(w)
		bench.Fig5(w, ds)
		fmt.Fprintln(w)
		bench.Fig6(w, ds)
		fmt.Fprintln(w)
		bench.Fig7(w, ds)
		fmt.Fprintln(w)
		cmps := bench.Fig8(w)
		fmt.Fprintln(w)
		bench.Table4(w)
		fmt.Fprintln(w)
		bench.Table5(w, cmps)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
