package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildAiqlbench compiles the binary once per test into a temp dir,
// mirroring the sibling command smoke tests.
func buildAiqlbench(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "aiqlbench")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestConcisenessExperimentsRun covers the dataset-free experiments
// (fig8/table4/table5 need no generated events): exit code 0 and the
// expected report headings on stdout.
func TestConcisenessExperimentsRun(t *testing.T) {
	bin := buildAiqlbench(t)
	out, err := exec.Command(bin, "-exp", "table5").CombinedOutput()
	if err != nil {
		t.Fatalf("aiqlbench -exp table5 exited with %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"Table 5", "AIQL"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestDatasetExperimentRuns boots one dataset-backed experiment on a tiny
// configuration: the generator, storage, engine and report pipeline all
// work end to end through the real binary.
func TestDatasetExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping dataset generation")
	}
	bin := buildAiqlbench(t)
	out, err := exec.Command(bin, "-exp", "table3", "-hosts", "10", "-days", "3", "-events", "20", "-seed", "7").CombinedOutput()
	if err != nil {
		t.Fatalf("aiqlbench -exp table3 exited with %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"dataset ready", "Table 3"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestUnknownExperimentExitsNonZero pins the usage-error path.
func TestUnknownExperimentExitsNonZero(t *testing.T) {
	bin := buildAiqlbench(t)
	out, err := exec.Command(bin, "-exp", "fig99").CombinedOutput()
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("expected non-zero exit, got err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "unknown experiment") {
		t.Errorf("output missing the unknown-experiment hint:\n%s", out)
	}
}
