// Command aiql is the interactive attack-investigation shell: it loads a
// dataset (a JSON-lines trace from aiqlgen, or a freshly generated
// scenario) into the optimized store and executes AIQL queries against it.
//
//	aiql -data trace.jsonl                 # interactive session
//	aiql -data trace.jsonl -q 'proc p ...' # one-shot query
//	aiql -generate                         # skip the file, generate in-process
//
// In the interactive session a query may span multiple lines and is
// executed when a blank line (or ';') ends it. The session commands are:
//
//	.help     show language hints
//	.stats    show dataset statistics
//	.corpus   list the paper's evaluation query IDs
//	.run ID   run an evaluation query by ID (e.g. .run c5-7)
//	.quit     exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/queries"
	"aiql/internal/storage"
	"aiql/internal/trace"
	"aiql/internal/types"
)

func main() {
	var (
		data     = flag.String("data", "", "JSON-lines trace to load (from aiqlgen)")
		generate = flag.Bool("generate", false, "generate the evaluation scenario in-process instead of loading a file")
		hosts    = flag.Int("hosts", 15, "hosts for -generate")
		days     = flag.Int("days", 4, "days for -generate")
		events   = flag.Int("events", 20000, "background events per host per day for -generate")
		seed     = flag.Int64("seed", 1, "seed for -generate")
		query    = flag.String("q", "", "one-shot query (skips the interactive session)")
	)
	flag.Parse()

	ds, err := loadDataset(*data, *generate, gen.Config{
		Hosts: *hosts, Days: *days, BackgroundPerHostDay: *events, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aiql: %v\n", err)
		os.Exit(1)
	}

	st := storage.New(storage.Options{})
	start := time.Now()
	st.Ingest(ds)
	stats := ds.Stats()
	fmt.Fprintf(os.Stderr, "loaded %d events / %d entities across %d agents in %.1fs (%d partitions)\n",
		stats.Events, stats.Entities, stats.Agents, time.Since(start).Seconds(), st.PartitionCount())
	eng := engine.New(st, engine.Options{})

	if *query != "" {
		if !runQuery(eng, *query) {
			os.Exit(1)
		}
		return
	}
	repl(eng, st)
}

func loadDataset(path string, generate bool, cfg gen.Config) (*types.Dataset, error) {
	switch {
	case generate:
		fmt.Fprintf(os.Stderr, "generating scenario: %d hosts x %d days x %d events/host/day...\n",
			cfg.Hosts, cfg.Days, cfg.BackgroundPerHostDay)
		return gen.Scenario(cfg), nil
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	default:
		return nil, fmt.Errorf("provide -data <trace.jsonl> or -generate")
	}
}

func runQuery(eng *engine.Engine, src string) bool {
	start := time.Now()
	res, err := eng.Query(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return false
	}
	fmt.Print(res.String())
	fmt.Printf("elapsed: %.3fs (%d data queries)\n", time.Since(start).Seconds(), res.DataQueries)
	return true
}

func repl(eng *engine.Engine, st *storage.Store) {
	corpus := make(map[string]queries.Query)
	for _, q := range append(queries.CaseStudy(), queries.Behaviors()...) {
		corpus[q.ID] = q
	}
	fmt.Println("AIQL interactive investigation shell — .help for help, blank line runs the query")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("aiql> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case buf.Len() == 0 && strings.HasPrefix(trimmed, "."):
			if !command(eng, st, corpus, trimmed) {
				return
			}
		case trimmed == "" || trimmed == ";":
			if buf.Len() > 0 {
				runQuery(eng, buf.String())
				buf.Reset()
			}
		default:
			buf.WriteString(line)
			buf.WriteByte('\n')
			if strings.HasSuffix(trimmed, ";") {
				runQuery(eng, strings.TrimSuffix(buf.String(), ";"))
				buf.Reset()
			}
		}
		prompt()
	}
}

func command(eng *engine.Engine, st *storage.Store, corpus map[string]queries.Query, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return false
	case ".help":
		os.Stdout.WriteString(helpText + "\n")
	case ".stats":
		fmt.Printf("events: %d, partitions: %d, agents: %v, days: %v\n",
			st.EventCount(), st.PartitionCount(), st.Agents(), st.Days())
	case ".corpus":
		for _, q := range append(queries.CaseStudy(), queries.Behaviors()...) {
			kind := "multievent"
			if q.Anomaly {
				kind = "anomaly"
			}
			fmt.Printf("  %-5s %-10s %d patterns\n", q.ID, kind, q.Patterns)
		}
	case ".run":
		if len(fields) < 2 {
			fmt.Println("usage: .run <query-id>   (see .corpus)")
			break
		}
		q, ok := corpus[fields[1]]
		if !ok {
			fmt.Printf("unknown query id %q\n", fields[1])
			break
		}
		fmt.Println(strings.TrimSpace(q.Src))
		fmt.Println()
		runQuery(eng, q.Src)
	default:
		fmt.Printf("unknown command %s (try .help)\n", fields[0])
	}
	return true
}

const helpText = `AIQL quick reference (see README.md for the full language):
  multievent   proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
               proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
               with evt1 before evt2
               return distinct p1, p2, p3, f1
  globals      agentid = 2          (at "03/02/2017")
  dependency   forward: proc p1["%cp%"] ->[write] file f1 <-[read] proc p2 return p1, f1, p2
  anomaly      window = 1 min, step = 10 sec ... group by p having amt > 2*(amt+amt[1]+amt[2])/3
Commands: .help .stats .corpus .run <id> .quit`
