package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildAiql(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "aiql")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestOneShotQuery generates a tiny scenario in-process and runs a one-shot
// query, asserting exit code 0 and a tabular result on stdout.
func TestOneShotQuery(t *testing.T) {
	bin := buildAiql(t)
	cmd := exec.Command(bin,
		"-generate", "-hosts", "10", "-days", "3", "-events", "50", "-seed", "3",
		"-q", `agentid = 1
proc p read file f as evt
return distinct p
top 5`)
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("aiql exited with %v\nstderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "loaded") {
		t.Errorf("stderr missing load report:\n%s", stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "p") || !strings.Contains(out, "elapsed:") {
		t.Errorf("stdout is not a query result:\n%s", out)
	}
}

// TestOneShotQueryParseErrorExitsNonZero asserts a bad query is a non-zero
// exit with a positioned error, not a crash or silent success.
func TestOneShotQueryParseErrorExitsNonZero(t *testing.T) {
	bin := buildAiql(t)
	cmd := exec.Command(bin,
		"-generate", "-hosts", "10", "-days", "3", "-events", "5",
		"-q", "this is not aiql ((")
	out, err := cmd.CombinedOutput()
	exitErr, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("expected non-zero exit, got err=%v\n%s", err, out)
	}
	if exitErr.ExitCode() != 1 {
		t.Errorf("exit code = %d, want 1", exitErr.ExitCode())
	}
	if !strings.Contains(string(out), "error:") {
		t.Errorf("output missing error report:\n%s", out)
	}
}

// TestMissingDataFlagExitsNonZero covers the usage-error path.
func TestMissingDataFlagExitsNonZero(t *testing.T) {
	bin := buildAiql(t)
	out, err := exec.Command(bin).CombinedOutput()
	if _, ok := err.(*exec.ExitError); !ok {
		t.Fatalf("expected non-zero exit, got err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "provide -data") {
		t.Errorf("output missing usage hint:\n%s", out)
	}
}
