package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func buildAiqld(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "aiqld")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestUsageErrorsExitNonZero covers the flag-validation paths: a single
// server without data, a coordinator without workers, and an unknown role
// must all fail fast with a hint, not start an empty service.
func TestUsageErrorsExitNonZero(t *testing.T) {
	bin := buildAiqld(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no data", nil, "provide -data"},
		{"coordinator without workers", []string{"-role", "coordinator"}, "-workers"},
		{"unknown role", []string{"-role", "replica"}, "unknown -role"},
	}
	for _, tc := range cases {
		out, err := exec.Command(bin, tc.args...).CombinedOutput()
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("%s: expected non-zero exit, got err=%v\n%s", tc.name, err, out)
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("%s: output missing %q:\n%s", tc.name, tc.want, out)
		}
	}
}

// freePort reserves an ephemeral port and releases it for the daemon.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// TestDaemonServesQueries boots the real binary on a tiny generated
// dataset and runs one query over HTTP — the smallest end-to-end proof
// that the daemon starts, listens, and answers.
func TestDaemonServesQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping daemon boot")
	}
	bin := buildAiqld(t)
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	cmd := exec.Command(bin, "-generate", "-hosts", "10", "-days", "3", "-events", "50", "-addr", addr)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})

	base := "http://" + addr
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became ready; stderr:\n%s", stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	resp, err := http.Post(base+"/query", "text/plain",
		strings.NewReader("proc p read file f return distinct p top 3"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query returned %s", resp.Status)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), `"columns"`) {
		t.Errorf("query response is not a result document:\n%s", buf[:n])
	}
}

// startDaemon boots the binary with args, waits for /readyz (the boot gate
// answers /healthz 200 the moment the listener opens, but the query routes
// only come up when recovery finishes), and returns the base URL plus the
// running command (so the caller can SIGKILL it).
func startDaemon(t *testing.T, bin string, args ...string) (string, *exec.Cmd) {
	t.Helper()
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	base := "http://" + addr
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return base, cmd
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became ready; stderr:\n%s", stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func queryBody(t *testing.T, base, q string) string {
	t.Helper()
	resp, err := http.Post(base+"/query", "text/plain", strings.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query returned %s: %s", resp.Status, body)
	}
	return string(body)
}

// TestRecoverySIGKILL is the restart-recovery acceptance test: a durable
// daemon is seeded, fed an extra batch over /ingest, killed with SIGKILL
// (no shutdown hook runs), and restarted on the same directory. The
// restarted process must answer the probe queries byte-identically —
// including rows contributed by the post-boot ingest — and report WAL and
// segment counters in /stats.
func TestRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping SIGKILL recovery")
	}
	bin := buildAiqld(t)
	dir := t.TempDir()
	args := []string{
		"-data-dir", dir, "-wal-sync", "batch",
		"-generate", "-hosts", "10", "-days", "3", "-events", "100",
	}
	base, cmd := startDaemon(t, bin, args...)

	// Probe queries: a scan with rows and an aggregate; both must survive.
	// Their results are captured after the extra ingest below, so the
	// comparison covers seeded and post-boot data alike.
	probes := []string{
		"proc p read file f return distinct p sort by p",
		"agentid = 1\nproc p write file f as evt return p, count(evt) group by p sort by p",
	}
	before := make([]string, len(probes))

	// Feed an extra batch through /ingest so recovery must replay the WAL,
	// not just reload the seeded segments: one distinctive read event.
	extra := `{"kind":"entity","id":990001,"type":"proc","agentid":1,"attrs":{"exe_name":"/usr/bin/recovered_proc","pid":"4242"}}
{"kind":"entity","id":990002,"type":"file","agentid":1,"attrs":{"name":"/tmp/recovered_file"}}
{"kind":"event","id":990003,"agentid":1,"subject":990001,"object":990002,"op":"read","start":1488412800000,"seq":990003}
`
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", strings.NewReader(extra))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest returned %s", resp.Status)
	}
	marker := "proc p[\"/usr/bin/recovered_proc\"] read file f return p, f"
	markerBefore := queryBody(t, base, marker)
	if !strings.Contains(markerBefore, "recovered_file") {
		t.Fatalf("marker query found nothing before the kill: %s", markerBefore)
	}
	for i, q := range probes {
		before[i] = queryBody(t, base, q)
	}

	// kill -9: no shutdown path, no final sync, no WAL truncation.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()

	// Restart with the identical command line on the same directory.
	base2, _ := startDaemon(t, bin, args...)
	for i, q := range probes {
		after := queryBody(t, base2, q)
		if normalizeResult(after) != normalizeResult(before[i]) {
			t.Errorf("probe %d diverged after recovery:\nbefore: %s\nafter:  %s", i, before[i], after)
		}
	}
	if got := queryBody(t, base2, marker); normalizeResult(got) != normalizeResult(markerBefore) {
		t.Errorf("post-boot ingest lost by recovery:\nbefore: %s\nafter:  %s", markerBefore, got)
	}

	// /stats must expose the durability counters.
	sresp, err := http.Get(base2 + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"durability"`, `"wal_records"`, `"segments"`, `"replayed"`, `"live_cursors"`} {
		if !strings.Contains(string(stats), key) {
			t.Errorf("/stats missing %s after recovery:\n%s", key, stats)
		}
	}
}

// TestGracefulShutdownSIGTERM is the shutdown-path regression test: a
// durable daemon whose group-commit flusher would not fire for an hour is
// fed a batch and sent SIGTERM. The shutdown path must flush the WAL
// buffer and close the store before exit — asserted by exit code 0, the
// explicit close message, and a restart that still answers the marker
// query (the restart also proves the directory lock was released).
func TestGracefulShutdownSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping SIGTERM shutdown")
	}
	bin := buildAiqld(t)
	dir := t.TempDir()
	args := []string{
		"-data-dir", dir,
		// Group commit that never fires on its own: only the shutdown
		// close path can sync the batch below within the test's lifetime.
		"-wal-sync", "interval", "-wal-flush", "1h", "-compact-interval", "1h",
	}
	base, cmd := startDaemon(t, bin, args...)

	extra := `{"kind":"entity","id":880001,"type":"proc","agentid":1,"attrs":{"exe_name":"/usr/bin/shutdown_proc","pid":"4243"}}
{"kind":"entity","id":880002,"type":"file","agentid":1,"attrs":{"name":"/tmp/shutdown_file"}}
{"kind":"event","id":880003,"agentid":1,"subject":880001,"object":880002,"op":"write","start":1488412800000,"seq":880003}
`
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", strings.NewReader(extra))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest returned %s", resp.Status)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
	stderr := cmd.Stderr.(*strings.Builder).String()
	if !strings.Contains(stderr, "shutting down") {
		t.Errorf("stderr missing shutdown notice:\n%s", stderr)
	}
	if !strings.Contains(stderr, "durable store closed") {
		t.Errorf("stderr missing the store close confirmation:\n%s", stderr)
	}

	// Restart on the same directory: the batch acknowledged before SIGTERM
	// must be there, and the lock must have been released.
	base2, _ := startDaemon(t, bin, args...)
	got := queryBody(t, base2, `proc p["/usr/bin/shutdown_proc"] write file f return p, f`)
	if !strings.Contains(got, "shutdown_file") {
		t.Errorf("batch lost across graceful shutdown: %s", got)
	}
}

// TestPprofListener verifies the -pprof flag serves the profiling
// endpoints on its own listener and — just as important — that the query
// listener does NOT expose /debug/pprof/, so enabling profiling never
// widens the public surface.
func TestPprofListener(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping daemon boot")
	}
	bin := buildAiqld(t)
	pprofAddr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	base, _ := startDaemon(t, bin,
		"-generate", "-hosts", "10", "-days", "3", "-events", "50",
		"-pprof", pprofAddr)

	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index returned %s:\n%s", resp.Status, body)
	}

	resp, err = http.Get("http://" + pprofAddr + "/debug/pprof/heap")
	if err != nil {
		t.Fatalf("pprof heap: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof heap profile returned %s", resp.Status)
	}

	resp, err = http.Get(base + "/debug/pprof/")
	if err != nil {
		t.Fatalf("query-listener probe: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Errorf("query listener serves /debug/pprof/ — profiling leaked onto the service port")
	}
}

// normalizeResult strips the fields that legitimately differ across
// processes — timing and cache temperature — so the comparison pins
// exactly the result set.
func normalizeResult(body string) string {
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		return body
	}
	delete(doc, "elapsed_ms")
	delete(doc, "plan_cached")
	delete(doc, "result_cached")
	delete(doc, "trace_id")
	out, err := json.Marshal(doc)
	if err != nil {
		return body
	}
	return string(out)
}

// TestSplitWorkers covers the -workers parsing rules: shard order is
// positional, so empty entries (stray commas) and duplicate URLs are
// configuration mistakes that must be rejected, not silently skipped.
func TestSplitWorkers(t *testing.T) {
	got, err := splitWorkers("http://a:1, http://b:2 ,http://c:3")
	if err != nil {
		t.Fatalf("valid list rejected: %v", err)
	}
	if len(got) != 3 || got[0] != "http://a:1" || got[1] != "http://b:2" || got[2] != "http://c:3" {
		t.Fatalf("parsed %v", got)
	}
	if got, err := splitWorkers(""); err != nil || got != nil {
		t.Fatalf("empty input: got %v, %v", got, err)
	}

	bad := []struct {
		in   string
		want string
	}{
		{"http://a:1,,http://b:2", "empty worker URL"},
		{"http://a:1,http://b:2,", "empty worker URL"},
		{",http://a:1", "empty worker URL"},
		{"http://a:1,http://a:1", "duplicate worker URL"},
		{"http://a:1,http://a:1/", "duplicate worker URL"}, // trailing slash is the same worker
	}
	for _, tc := range bad {
		if _, err := splitWorkers(tc.in); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("splitWorkers(%q) = %v, want error containing %q", tc.in, err, tc.want)
		}
	}
}

// TestWorkersFlagErrorsExitNonZero drives the same rejections through the
// real binary: a coordinator booted with a malformed -workers list must
// die with the parse error, never start serving with misnumbered shards.
func TestWorkersFlagErrorsExitNonZero(t *testing.T) {
	bin := buildAiqld(t)
	cases := []struct {
		name    string
		workers string
		want    string
	}{
		{"stray comma", "http://127.0.0.1:1,,http://127.0.0.1:2", "empty worker URL"},
		{"trailing comma", "http://127.0.0.1:1,http://127.0.0.1:2,", "empty worker URL"},
		{"duplicate URL", "http://127.0.0.1:1,http://127.0.0.1:1", "duplicate worker URL"},
	}
	for _, tc := range cases {
		out, err := exec.Command(bin, "-role", "coordinator", "-workers", tc.workers).CombinedOutput()
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("%s: expected non-zero exit, got err=%v\n%s", tc.name, err, out)
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("%s: output missing %q:\n%s", tc.name, tc.want, out)
		}
	}
}

// TestReadyzGatesBoot pins the boot-gate contract: while the daemon is
// still replaying catch-up history, /healthz answers 200 (the process is
// alive) but /readyz answers 503 naming the stage, and /query is refused —
// no request can observe the half-caught-up store. Once the peer's ship
// stream completes, /readyz flips to 200 and queries serve. The catch-up
// peer is a stub whose /walship response is held open until the test has
// observed the unready state, so the window is deterministic, not a race.
func TestReadyzGatesBoot(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping daemon boot")
	}
	bin := buildAiqld(t)

	release := make(chan struct{})
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/walship") {
			http.NotFound(w, r)
			return
		}
		<-release // hold the stream until the test saw /readyz 503
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"kind":"end","count":0}`)
	}))
	defer peer.Close()

	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	cmd := exec.Command(bin,
		"-addr", addr, "-role", "worker", "-shard", "0",
		"-data-dir", t.TempDir(), "-catchup-from", peer.URL)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	base := "http://" + addr

	// Wait for the listener (healthz 200 from the gate), then assert the
	// unready state while catch-up is provably still in flight.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("listener never opened; stderr:\n%s", stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during catch-up returned %s, want 503: %s", resp.Status, body)
	}
	if !strings.Contains(string(body), "catch-up") {
		t.Errorf("/readyz 503 body does not name the boot stage: %s", body)
	}
	resp, err = http.Post(base+"/query", "text/plain", strings.NewReader("proc p read file f return p, f"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/query during catch-up returned %s, want 503", resp.Status)
	}

	// Let catch-up finish; the daemon must become ready and serve queries.
	close(release)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became ready after catch-up; stderr:\n%s", stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := queryBody(t, base, "proc p read file f return p, f"); !strings.Contains(got, `"columns"`) {
		t.Errorf("post-ready query is not a result document: %s", got)
	}
}

// TestFailoverSIGKILL is the process-level failover smoke test: a 3-worker
// replicated cluster is seeded through the coordinator, one worker is
// killed with SIGKILL, and the same query must still succeed with the
// identical answer — counter-proven by the coordinator's failovers stat.
func TestFailoverSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping cluster boot")
	}
	bin := buildAiqld(t)

	urls := make([]string, 3)
	cmds := make([]*exec.Cmd, 3)
	for i := range urls {
		urls[i], cmds[i] = startDaemon(t, bin, "-role", "worker", "-shard", fmt.Sprint(i))
	}
	coord, _ := startDaemon(t, bin,
		"-role", "coordinator", "-workers", strings.Join(urls, ","),
		"-replicas", "2",
		"-generate", "-hosts", "10", "-days", "3", "-events", "50")

	const probe = "proc p read file f return distinct p sort by p"
	before := queryBody(t, coord, probe)
	if !strings.Contains(before, `"rows"`) {
		t.Fatalf("baseline query returned no result document: %s", before)
	}

	// kill -9 one worker: every shard it served has a live replica.
	if err := cmds[2].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmds[2].Wait()

	after := queryBody(t, coord, probe)
	if normalizeResult(after) != normalizeResult(before) {
		t.Errorf("answer changed after worker death:\nbefore: %s\nafter:  %s", before, after)
	}

	// The success must have come through the failover path, not luck.
	resp, err := http.Get(coord + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Cluster struct {
			Replicas  int    `json:"replicas"`
			Failovers uint64 `json:"failovers"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Cluster.Replicas != 2 {
		t.Errorf("coordinator reports %d replicas, want 2", stats.Cluster.Replicas)
	}
	if stats.Cluster.Failovers == 0 {
		t.Error("failovers counter is zero; the post-kill query did not use the replica")
	}
}
