package main

import (
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func buildAiqld(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "aiqld")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestUsageErrorsExitNonZero covers the flag-validation paths: a single
// server without data, a coordinator without workers, and an unknown role
// must all fail fast with a hint, not start an empty service.
func TestUsageErrorsExitNonZero(t *testing.T) {
	bin := buildAiqld(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no data", nil, "provide -data"},
		{"coordinator without workers", []string{"-role", "coordinator"}, "-workers"},
		{"unknown role", []string{"-role", "replica"}, "unknown -role"},
	}
	for _, tc := range cases {
		out, err := exec.Command(bin, tc.args...).CombinedOutput()
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("%s: expected non-zero exit, got err=%v\n%s", tc.name, err, out)
		}
		if !strings.Contains(string(out), tc.want) {
			t.Errorf("%s: output missing %q:\n%s", tc.name, tc.want, out)
		}
	}
}

// freePort reserves an ephemeral port and releases it for the daemon.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// TestDaemonServesQueries boots the real binary on a tiny generated
// dataset and runs one query over HTTP — the smallest end-to-end proof
// that the daemon starts, listens, and answers.
func TestDaemonServesQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping daemon boot")
	}
	bin := buildAiqld(t)
	addr := fmt.Sprintf("127.0.0.1:%d", freePort(t))
	cmd := exec.Command(bin, "-generate", "-hosts", "10", "-days", "3", "-events", "50", "-addr", addr)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})

	base := "http://" + addr
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy; stderr:\n%s", stderr.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	resp, err := http.Post(base+"/query", "text/plain",
		strings.NewReader("proc p read file f return distinct p top 3"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query returned %s", resp.Status)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), `"columns"`) {
		t.Errorf("query response is not a result document:\n%s", buf[:n])
	}
}
