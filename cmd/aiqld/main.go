// Command aiqld is the resident AIQL query service: it loads (or generates)
// a dataset once, then serves concurrent investigations over HTTP/JSON with
// compiled-plan and result caching.
//
//	aiqld -data trace.jsonl              # serve a generated trace on :7381
//	aiqld -generate -addr :8080          # generate the scenario in-process
//
//	curl -s localhost:7381/healthz
//	curl -s localhost:7381/stats | jq .
//	curl -s localhost:7381/query -d '
//	    agentid = 1
//	    proc p read file f["%id_rsa"] as evt
//	    return p, f'
//	curl -s localhost:7381/query -H 'Content-Type: application/json' \
//	    -d '{"query": "proc p read file f return distinct p"}'
//	aiqlgen -hosts 2 -days 1 -o more.jsonl &&
//	    curl -s -X POST localhost:7381/ingest --data-binary @more.jsonl
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/server"
	"aiql/internal/storage"
	"aiql/internal/trace"
	"aiql/internal/types"
)

func main() {
	var (
		addr      = flag.String("addr", ":7381", "listen address")
		data      = flag.String("data", "", "JSON-lines trace to load (from aiqlgen)")
		generate  = flag.Bool("generate", false, "generate the evaluation scenario in-process instead of loading a file")
		hosts     = flag.Int("hosts", 15, "hosts for -generate")
		days      = flag.Int("days", 4, "days for -generate")
		events    = flag.Int("events", 20000, "background events per host per day for -generate")
		seed      = flag.Int64("seed", 1, "seed for -generate")
		planCache = flag.Int("plan-cache", 0, "compiled-plan cache capacity (0 = default 256, negative = off)")
		resCache  = flag.Int("result-cache", 0, "result cache capacity (0 = default 128, negative = off)")
	)
	flag.Parse()

	ds, err := loadDataset(*data, *generate, gen.Config{
		Hosts: *hosts, Days: *days, BackgroundPerHostDay: *events, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "aiqld: %v\n", err)
		os.Exit(1)
	}

	st := storage.New(storage.Options{})
	start := time.Now()
	st.Ingest(ds)
	stats := ds.Stats()
	fmt.Fprintf(os.Stderr, "loaded %d events / %d entities across %d agents in %.1fs (%d partitions)\n",
		stats.Events, stats.Entities, stats.Agents, time.Since(start).Seconds(), st.PartitionCount())

	eng := engine.New(st, engine.Options{})
	srv := server.New(st, eng, server.Options{PlanCacheSize: *planCache, ResultCacheSize: *resCache})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "aiqld listening on %s (POST /query, POST /ingest, GET /stats, GET /healthz)\n", *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "aiqld: %v\n", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "aiqld: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}
}

func loadDataset(path string, generate bool, cfg gen.Config) (*types.Dataset, error) {
	switch {
	case generate:
		fmt.Fprintf(os.Stderr, "generating scenario: %d hosts x %d days x %d events/host/day...\n",
			cfg.Hosts, cfg.Days, cfg.BackgroundPerHostDay)
		return gen.Scenario(cfg), nil
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	default:
		return nil, fmt.Errorf("provide -data <trace.jsonl> or -generate")
	}
}
