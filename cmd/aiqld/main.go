// Command aiqld is the resident AIQL query service: it loads (or generates)
// a dataset once, then serves concurrent investigations over HTTP/JSON with
// compiled-plan and result caching.
//
// Single node (default role):
//
//	aiqld -data trace.jsonl              # serve a generated trace on :7381
//	aiqld -generate -addr :8080          # generate the scenario in-process
//
//	curl -s localhost:7381/healthz
//	curl -s localhost:7381/stats | jq .
//	curl -s localhost:7381/query -d '
//	    agentid = 1
//	    proc p read file f["%id_rsa"] as evt
//	    return p, f'
//	curl -s localhost:7381/query -H 'Content-Type: application/json' \
//	    -d '{"query": "proc p read file f return distinct p"}'
//	aiqlgen -hosts 2 -days 1 -o more.jsonl &&
//	    curl -s -X POST localhost:7381/ingest --data-binary @more.jsonl
//
// Continuous queries (docs/STREAMING.md): standing AIQL rules are matched
// against events as they are ingested, with live NDJSON/SSE delivery:
//
//	curl -s localhost:7381/rules -d '{"query": "proc p read file f[\"%id_rsa\"] return p, f", "backfill": true}'
//	curl -Ns localhost:7381/subscribe/r1          # NDJSON stream
//	curl -Ns -H 'Accept: text/event-stream' localhost:7381/subscribe/r1
//	curl -s -X DELETE localhost:7381/rules/r1
//
// Durable deployment (docs/STORAGE.md): -data-dir makes the store
// disk-backed — ingests append to a write-ahead log, a compactor folds the
// log into immutable segment files, and a restart (even kill -9) recovers
// every acknowledged batch before serving:
//
//	aiqld -data-dir /var/lib/aiqld -generate     # first boot seeds the dir
//	kill -9 $(pidof aiqld)
//	aiqld -data-dir /var/lib/aiqld               # recovers, serves same data
//
// Distributed deployment (docs/CLUSTER.md): worker shards are ordinary
// store-backed aiqld processes; a coordinator fans queries out to them.
//
//	aiqld -role worker -shard 0 -addr :7391    # one empty worker shard...
//	aiqld -role worker -shard 1 -addr :7392    # ...per data node
//	aiqld -role coordinator -addr :7381 \
//	    -workers http://localhost:7391,http://localhost:7392 -generate
//
// A coordinator given -data or -generate scatters that dataset across the
// workers at startup (events placed by (agent, day), entities broadcast);
// otherwise POST /ingest on the coordinator scatters batches the same way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"aiql/internal/cluster"
	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/mpp"
	"aiql/internal/obs"
	"aiql/internal/server"
	"aiql/internal/storage"
	"aiql/internal/trace"
	"aiql/internal/types"
)

func main() {
	var (
		addr          = flag.String("addr", ":7381", "listen address")
		role          = flag.String("role", "single", "process role: single, worker, or coordinator")
		workers       = flag.String("workers", "", "comma-separated worker base URLs in shard order (coordinator role)")
		replicas      = flag.Int("replicas", 1, "copies per home shard (coordinator role): 1 = no replication, 2 = dual-write each shard to its primary and the next worker in ring order, with scan failover")
		catchupFrom   = flag.String("catchup-from", "", "peer worker base URL to pull missed replicated batches from at startup (worker role with -data-dir); see docs/CLUSTER.md")
		catchupShards = flag.String("catchup-shards", "", "comma-separated shard indexes to catch up from -catchup-from (default: all shards the peer holds)")
		placement     = flag.String("placement", "semantics-aware", "event placement across workers: semantics-aware ((agent, day) home shards + worker pruning) or arrival-order (round-robin, no pruning)")
		shard         = flag.Int("shard", -1, "this worker's shard index, for /stats and logs (worker role)")
		data          = flag.String("data", "", "JSON-lines trace to load (from aiqlgen)")
		generate      = flag.Bool("generate", false, "generate the evaluation scenario in-process instead of loading a file")
		hosts         = flag.Int("hosts", 15, "hosts for -generate")
		days          = flag.Int("days", 4, "days for -generate")
		events        = flag.Int("events", 20000, "background events per host per day for -generate")
		seed          = flag.Int64("seed", 1, "seed for -generate")
		planCache     = flag.Int("plan-cache", 0, "compiled-plan cache capacity (0 = default 256, negative = off)")
		resCache      = flag.Int("result-cache", 0, "result cache capacity (0 = default 128, negative = off)")
		dataDir       = flag.String("data-dir", "", "directory for the durable store (WAL + segments); empty = memory only, data is lost on restart (single and worker roles)")
		walSync       = flag.String("wal-sync", "interval", "WAL durability: batch (fsync every ingest) or interval (group commit every -wal-flush)")
		walFlush      = flag.Duration("wal-flush", 100*time.Millisecond, "group-commit fsync cadence for -wal-sync interval")
		compactIv     = flag.Duration("compact-interval", 30*time.Second, "background WAL-to-segment compaction cadence (-data-dir only)")
		compactTh     = flag.Int64("compact-threshold", 16<<20, "compact as soon as the WAL exceeds this many bytes (-data-dir only)")
		maxRules      = flag.Int("max-rules", 64, "maximum registered continuous-query rules (POST /rules)")
		streamBuf     = flag.Int("stream-buffer", 256, "per-subscriber emission buffer and per-rule replay ring; a subscriber a full buffer behind is disconnected")
		pprofAddr     = flag.String("pprof", "", "listen address for net/http/pprof profiling endpoints (e.g. localhost:6060); empty = disabled. Kept off the query listener so profiling is never exposed with the service port")
		logFormat     = flag.String("log-format", "", "structured request logging to stderr: text or json; empty = request logging off. Every line carries the request's trace ID")
		slowLogSize   = flag.Int("slow-log", 0, "slow-query log capacity served at GET /debug/slow (0 = default 32, negative = off)")
	)
	flag.Parse()

	if *pprofAddr != "" {
		ln, err := startPprof(*pprofAddr)
		if err != nil {
			fatalf("pprof listener: %v", err)
		}
		fmt.Fprintf(os.Stderr, "aiqld: pprof listening on %s (/debug/pprof/)\n", ln)
	}

	genCfg := gen.Config{Hosts: *hosts, Days: *days, BackgroundPerHostDay: *events, Seed: *seed}
	srvOpts := server.Options{
		PlanCacheSize: *planCache, ResultCacheSize: *resCache,
		MaxRules: *maxRules, StreamBuffer: *streamBuf,
		SlowLogSize: *slowLogSize,
	}
	if *logFormat != "" {
		format, err := obs.ParseLogFormat(*logFormat)
		if err != nil {
			fatalf("-log-format: %v", err)
		}
		srvOpts.Logger = obs.NewLogger(os.Stderr, format)
	}

	// The listener opens before recovery and catch-up, behind a boot gate:
	// orchestrators see /healthz 200 (alive) and /readyz 503 with the boot
	// stage while the store is being rebuilt, and no query can observe the
	// half-recovered state. The real handler swaps in once boot completes.
	gate := server.NewGate("starting")
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gate,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "aiqld (%s) listening on %s (POST /query, POST /ingest, GET /stats, GET /metrics, GET /readyz)\n", *role, ln.Addr())

	var srv *server.Server
	var durable *storage.Persistent
	switch *role {
	case "single", "worker":
		if *dataDir != "" {
			gate.SetStage("wal-recovery")
			var err error
			srv, durable, err = openDurable(*dataDir, durableConfig{
				sync: *walSync, flush: *walFlush, compactIv: *compactIv, compactTh: *compactTh,
				data: *data, generate: *generate, gen: genCfg,
			}, srvOpts)
			if err != nil {
				fatalf("%v", err)
			}
		} else {
			gate.SetStage("load-dataset")
			ds, err := loadDataset(*data, *generate, genCfg, *role == "worker")
			if err != nil {
				fatalf("%v", err)
			}
			st := storage.New(storage.Options{})
			if ds != nil {
				start := time.Now()
				st.Ingest(ds)
				stats := ds.Stats()
				fmt.Fprintf(os.Stderr, "loaded %d events / %d entities across %d agents in %.1fs (%d partitions)\n",
					stats.Events, stats.Entities, stats.Agents, time.Since(start).Seconds(), st.PartitionCount())
			} else {
				fmt.Fprintln(os.Stderr, "starting with an empty store (awaiting coordinator ingest)")
			}
			srv = server.New(st, engine.New(st, engine.Options{}), srvOpts)
		}
		if *role == "worker" && *shard >= 0 {
			srv.SetShard(*shard)
		}
		if *catchupFrom != "" {
			// Pull replicated batches this store missed while it was down,
			// before the gate opens the query routes — queries never see the
			// half-caught-up state, and /readyz names the stage meanwhile.
			if durable == nil {
				fatalf("-catchup-from requires -data-dir (the WAL is the replication log)")
			}
			gate.SetStage("catch-up")
			shards, err := splitShards(*catchupShards)
			if err != nil {
				fatalf("-catchup-shards: %v", err)
			}
			cr, err := server.CatchUp(context.Background(), durable, *catchupFrom, shards)
			if err != nil {
				fatalf("catch-up from %s: %v", *catchupFrom, err)
			}
			fmt.Fprintf(os.Stderr, "caught up from %s: %d batches applied, %d already present\n",
				*catchupFrom, cr.Applied, cr.Duplicates)
		}
	case "coordinator":
		urls, err := splitWorkers(*workers)
		if err != nil {
			fatalf("-workers: %v", err)
		}
		if len(urls) == 0 {
			fatalf("-role coordinator requires -workers url1,url2,...")
		}
		var place mpp.Placement
		switch *placement {
		case "semantics-aware":
			place = mpp.SemanticsAware
		case "arrival-order":
			place = mpp.ArrivalOrder
		default:
			fatalf("unknown -placement %q (want semantics-aware or arrival-order)", *placement)
		}
		coord, err := cluster.New(urls, cluster.Options{Placement: place, Replicas: *replicas})
		if err != nil {
			fatalf("%v", err)
		}
		ds, err := loadDataset(*data, *generate, genCfg, true)
		if err != nil {
			fatalf("%v", err)
		}
		if ds != nil {
			gate.SetStage("scatter-ingest")
			stats := ds.Stats()
			fmt.Fprintf(os.Stderr, "scattering %d events / %d entities across %d workers...\n",
				stats.Events, stats.Entities, len(urls))
			if err := coord.Ingest(context.Background(), ds); err != nil {
				fatalf("scatter ingest: %v", err)
			}
		}
		srv = server.NewCoordinator(coord, engine.New(coord, engine.Options{}), srvOpts)
		fmt.Fprintf(os.Stderr, "coordinating %d workers (%s placement, %d replica(s) per shard)\n", len(urls), coord.Placement(), coord.Replicas())
	default:
		fatalf("unknown -role %q (want single, worker, or coordinator)", *role)
	}

	gate.Ready(srv.Handler())
	fmt.Fprintf(os.Stderr, "aiqld (%s) ready\n", *role)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// closeDurable is the shutdown path every exit must take when the store
	// is disk-backed: it flushes the group-commit WAL buffer (Close syncs
	// the active file) and releases the directory lock, and announces
	// success so operators — and the regression test — can assert the final
	// sync actually ran rather than trusting the happy path.
	closeDurable := func() {
		if durable == nil {
			return
		}
		if err := durable.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "aiqld: closing durable store: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "aiqld: durable store closed (wal synced)")
	}

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			closeDurable()
			fatalf("%v", err)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "aiqld: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}
	closeDurable()
}

// durableConfig bundles the -data-dir companion flags.
type durableConfig struct {
	sync      string
	flush     time.Duration
	compactIv time.Duration
	compactTh int64
	data      string
	generate  bool
	gen       gen.Config
}

// openDurable opens (or creates) the disk-backed store, completes
// recovery before the server exists, and seeds an empty store from
// -data/-generate. A non-empty recovered store ignores the seeding flags —
// restarting with the same command line must not double-ingest.
func openDurable(dir string, cfg durableConfig, srvOpts server.Options) (*server.Server, *storage.Persistent, error) {
	popts := storage.PersistOptions{
		FlushInterval:         cfg.flush,
		CompactInterval:       cfg.compactIv,
		CompactThresholdBytes: cfg.compactTh,
	}
	switch cfg.sync {
	case "batch":
		popts.SyncEveryBatch = true
	case "interval":
	default:
		return nil, nil, fmt.Errorf("unknown -wal-sync %q (want batch or interval)", cfg.sync)
	}
	start := time.Now()
	p, err := storage.OpenPersistent(dir, popts)
	if err != nil {
		return nil, nil, err
	}
	srv, err := server.NewPersistent(p, engine.New(p.Store, engine.Options{}), srvOpts)
	if err != nil {
		p.Close()
		return nil, nil, err
	}
	if p.EventCount() > 0 {
		ds := p.DurabilityStats()
		fmt.Fprintf(os.Stderr, "recovered %d events / %d partitions from %s in %.1fs (%d segments, %d WAL records replayed)\n",
			p.EventCount(), p.PartitionCount(), dir, time.Since(start).Seconds(), ds.Segments, ds.Replayed)
		if cfg.data != "" || cfg.generate {
			fmt.Fprintln(os.Stderr, "ignoring -data/-generate: the durable store already holds data")
		}
		return srv, p, nil
	}
	// Empty store: seed it durably if a dataset was given. A durable
	// server may also start empty and be fed over /ingest, so the dataset
	// is optional for every role.
	ds, err := loadDataset(cfg.data, cfg.generate, cfg.gen, true)
	if err != nil {
		p.Close()
		return nil, nil, err
	}
	if ds == nil {
		fmt.Fprintf(os.Stderr, "starting with an empty durable store in %s\n", dir)
		return srv, p, nil
	}
	if err := p.Ingest(ds); err != nil {
		p.Close()
		return nil, nil, err
	}
	stats := ds.Stats()
	fmt.Fprintf(os.Stderr, "loaded %d events / %d entities across %d agents into %s in %.1fs (%d partitions)\n",
		stats.Events, stats.Entities, stats.Agents, dir, time.Since(start).Seconds(), p.PartitionCount())
	return srv, p, nil
}

// startPprof serves the net/http/pprof endpoints on their own listener.
// The handlers are registered on a private mux — not http.DefaultServeMux —
// so importing pprof cannot leak profiling routes onto the query listener,
// and the query handler never gains debug endpoints by accident. Returns
// the bound address (useful when addr asked for port 0).
func startPprof(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "aiqld: pprof server: %v\n", err)
		}
	}()
	return ln.Addr().String(), nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "aiqld: "+format+"\n", args...)
	os.Exit(1)
}

// splitWorkers parses the -workers list. The position of each URL is its
// shard assignment, so the list is validated strictly: an empty entry (a
// typo'd trailing or doubled comma) would silently renumber every shard
// after it, and a duplicate URL would assign two shards to one process —
// both corrupt placement rather than fail a request, so both are errors.
func splitWorkers(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	seen := make(map[string]int, len(parts))
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty worker URL at position %d (stray comma?) — shard order is positional, so empties are rejected rather than skipped", i)
		}
		normalized := strings.TrimRight(part, "/")
		if j, dup := seen[normalized]; dup {
			return nil, fmt.Errorf("duplicate worker URL %q at positions %d and %d — each shard needs its own worker", part, j, i)
		}
		seen[normalized] = i
		out = append(out, part)
	}
	return out, nil
}

// splitShards parses a comma-separated shard index list (empty = nil).
func splitShards(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad shard index %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// loadDataset resolves the -data/-generate flags. Roles that can be fed
// later over the network (worker shards awaiting a coordinator scatter, a
// coordinator awaiting /ingest) may start without a dataset; single-node
// servers must be given one.
func loadDataset(path string, generate bool, cfg gen.Config, optional bool) (*types.Dataset, error) {
	switch {
	case generate:
		fmt.Fprintf(os.Stderr, "generating scenario: %d hosts x %d days x %d events/host/day...\n",
			cfg.Hosts, cfg.Days, cfg.BackgroundPerHostDay)
		return gen.Scenario(cfg), nil
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.Read(f)
	case optional:
		return nil, nil
	default:
		return nil, fmt.Errorf("provide -data <trace.jsonl> or -generate")
	}
}
