// Command aiqlgen generates a synthetic enterprise system-monitoring
// dataset — background activity plus every attack behaviour the evaluation
// queries investigate — and writes it as JSON lines:
//
//	aiqlgen -hosts 15 -days 4 -events 20000 -o trace.jsonl
//
// The output loads into the query CLI with `aiql -data trace.jsonl`.
package main

import (
	"flag"
	"fmt"
	"os"

	"aiql/internal/gen"
	"aiql/internal/trace"
)

func main() {
	var (
		hosts  = flag.Int("hosts", 15, "number of monitored hosts (>= 10)")
		days   = flag.Int("days", 4, "number of simulated days (>= 3)")
		events = flag.Int("events", 20000, "background events per host per day")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("o", "trace.jsonl", "output file ('-' for stdout)")
	)
	flag.Parse()

	cfg := gen.Config{Hosts: *hosts, Days: *days, BackgroundPerHostDay: *events, Seed: *seed}
	ds := gen.Scenario(cfg)
	st := ds.Stats()
	fmt.Fprintf(os.Stderr, "generated %d events, %d entities across %d agents (days %s..%s)\n",
		st.Events, st.Entities, st.Agents, gen.DateStr(0), gen.DateStr(cfg.Days-1))

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aiqlgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, ds); err != nil {
		fmt.Fprintf(os.Stderr, "aiqlgen: %v\n", err)
		os.Exit(1)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
}
