package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"aiql/internal/trace"
)

// buildAiqlgen compiles the binary once per test run into a temp dir.
func buildAiqlgen(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "aiqlgen")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestGenerateWritesLoadableTrace runs the generator on a tiny
// configuration and asserts exit code 0, the progress report on stderr,
// and an output file that parses back into a non-trivial dataset.
func TestGenerateWritesLoadableTrace(t *testing.T) {
	bin := buildAiqlgen(t)
	out := filepath.Join(t.TempDir(), "trace.jsonl")
	cmd := exec.Command(bin, "-hosts", "10", "-days", "3", "-events", "20", "-seed", "7", "-o", out)
	stderr, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("aiqlgen exited with %v\n%s", err, stderr)
	}
	if !strings.Contains(string(stderr), "generated") || !strings.Contains(string(stderr), "wrote") {
		t.Errorf("stderr missing progress report:\n%s", stderr)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("output file: %v", err)
	}
	defer f.Close()
	ds, err := trace.Read(f)
	if err != nil {
		t.Fatalf("output is not a loadable trace: %v", err)
	}
	if len(ds.Events) == 0 || len(ds.Entities) == 0 {
		t.Errorf("trace has %d events / %d entities, want both > 0", len(ds.Events), len(ds.Entities))
	}
}

// TestGenerateToStdout covers the '-o -' path.
func TestGenerateToStdout(t *testing.T) {
	bin := buildAiqlgen(t)
	cmd := exec.Command(bin, "-hosts", "10", "-days", "3", "-events", "5", "-o", "-")
	cmd.Stderr = nil
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("aiqlgen exited with %v", err)
	}
	ds, err := trace.Read(strings.NewReader(string(out)))
	if err != nil {
		t.Fatalf("stdout is not a loadable trace: %v", err)
	}
	if len(ds.Events) == 0 {
		t.Error("stdout trace has no events")
	}
}
