// Command benchregress gates CI on performance regressions: it parses one
// or more `go test -bench -benchmem` output files, compares each baselined
// benchmark's B/op against internal/bench/testdata/bop_baseline.txt (and,
// when -ns-baseline is given, its ns/op against that file's ceilings at a
// wider tolerance), and exits non-zero when any exceeds its factor.
//
//	go test -run '^$' -bench BenchmarkCursorVsMaterialize -benchmem -benchtime 5x . > out.txt
//	benchregress -baseline internal/bench/testdata/bop_baseline.txt \
//	    -ns-baseline internal/bench/testdata/nsop_baseline.txt out.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"aiql/internal/bench"
)

func main() {
	baselinePath := flag.String("baseline", "internal/bench/testdata/bop_baseline.txt",
		"baseline file of `name b/op` pairs")
	factor := flag.Float64("factor", 2, "fail when measured B/op exceeds factor x baseline")
	nsBaselinePath := flag.String("ns-baseline", "",
		"optional baseline file of `name ns/op` pairs; empty disables the wall-time gate")
	nsFactor := flag.Float64("ns-factor", 5,
		"fail when measured ns/op exceeds ns-factor x baseline (wide: machines differ)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchregress [-baseline file] [-factor n] [-ns-baseline file] [-ns-factor n] bench-output.txt...")
		os.Exit(2)
	}

	baseline := loadBaseline(*baselinePath)
	bop := make(map[string]float64)
	nsop := make(map[string]float64)
	for _, path := range flag.Args() {
		mergeMeasured(path, bop, bench.ParseBenchBOp)
		mergeMeasured(path, nsop, bench.ParseBenchNsOp)
	}

	if err := bench.CheckBOpRegression(baseline, bop, *factor); err != nil {
		fatal(err)
	}
	fmt.Printf("bench-regress: %d benchmarks within %.1fx of B/op baseline\n", len(baseline), *factor)

	if *nsBaselinePath != "" {
		nsBaseline := loadBaseline(*nsBaselinePath)
		if err := bench.CheckNsOpRegression(nsBaseline, nsop, *nsFactor); err != nil {
			fatal(err)
		}
		fmt.Printf("bench-regress: %d benchmarks within %.1fx of ns/op baseline\n", len(nsBaseline), *nsFactor)
	}
}

func loadBaseline(path string) map[string]float64 {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	m, err := bench.ParseBaseline(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return m
}

func mergeMeasured(path string, into map[string]float64, parse func(io.Reader) (map[string]float64, error)) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	m, err := parse(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	for name, v := range m {
		into[name] = v
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchregress:", err)
	os.Exit(1)
}
