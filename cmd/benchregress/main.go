// Command benchregress gates CI on performance regressions: it parses one
// or more `go test -bench -benchmem` output files, compares each baselined
// benchmark's B/op against internal/bench/testdata/bop_baseline.txt (and,
// when -ns-baseline is given, its ns/op against that file's ceilings at a
// wider tolerance), and exits non-zero when any exceeds its factor.
//
//	go test -run '^$' -bench BenchmarkCursorVsMaterialize -benchmem -benchtime 5x . > out.txt
//	benchregress -baseline internal/bench/testdata/bop_baseline.txt \
//	    -ns-baseline internal/bench/testdata/nsop_baseline.txt out.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"aiql/internal/bench"
)

func main() {
	baselinePath := flag.String("baseline", "internal/bench/testdata/bop_baseline.txt",
		"baseline file of `name b/op` pairs")
	factor := flag.Float64("factor", 2, "fail when measured B/op exceeds factor x baseline")
	nsBaselinePath := flag.String("ns-baseline", "",
		"optional baseline file of `name ns/op` pairs; empty disables the wall-time gate")
	nsFactor := flag.Float64("ns-factor", 5,
		"fail when measured ns/op exceeds ns-factor x baseline (wide: machines differ)")
	var ratios []ratioGate
	flag.Func("ratio", "same-run ns/op ratio gate `num,den,max` (repeatable); "+
		"fails when num exceeds max x den, e.g. -ratio 'BenchA/on,BenchA/off,1.02'",
		func(v string) error {
			g, err := parseRatioGate(v)
			if err != nil {
				return err
			}
			ratios = append(ratios, g)
			return nil
		})
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchregress [-baseline file] [-factor n] [-ns-baseline file] [-ns-factor n] bench-output.txt...")
		os.Exit(2)
	}

	baseline := loadBaseline(*baselinePath)
	bop := make(map[string]float64)
	nsop := make(map[string]float64)
	for _, path := range flag.Args() {
		mergeMeasured(path, bop, bench.ParseBenchBOp)
		mergeMeasured(path, nsop, bench.ParseBenchNsOp)
	}

	if err := bench.CheckBOpRegression(baseline, bop, *factor); err != nil {
		fatal(err)
	}
	fmt.Printf("bench-regress: %d benchmarks within %.1fx of B/op baseline\n", len(baseline), *factor)

	if *nsBaselinePath != "" {
		nsBaseline := loadBaseline(*nsBaselinePath)
		if err := bench.CheckNsOpRegression(nsBaseline, nsop, *nsFactor); err != nil {
			fatal(err)
		}
		fmt.Printf("bench-regress: %d benchmarks within %.1fx of ns/op baseline\n", len(nsBaseline), *nsFactor)
	}

	for _, g := range ratios {
		if err := bench.CheckNsOpRatio(nsop, g.num, g.den, g.max); err != nil {
			fatal(err)
		}
		fmt.Printf("bench-regress: %s within %.2fx of %s (%.0f vs %.0f ns/op)\n",
			g.num, g.max, g.den, nsop[g.num], nsop[g.den])
	}
}

// ratioGate is one -ratio argument: fail when num > max x den, both read
// from the measured ns/op of this run.
type ratioGate struct {
	num, den string
	max      float64
}

func parseRatioGate(v string) (ratioGate, error) {
	parts := strings.Split(v, ",")
	if len(parts) != 3 {
		return ratioGate{}, fmt.Errorf("ratio %q: want num,den,max", v)
	}
	max, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	if err != nil || max <= 0 {
		return ratioGate{}, fmt.Errorf("ratio %q: bad max: %v", v, err)
	}
	return ratioGate{num: strings.TrimSpace(parts[0]), den: strings.TrimSpace(parts[1]), max: max}, nil
}

func loadBaseline(path string) map[string]float64 {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	m, err := bench.ParseBaseline(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return m
}

func mergeMeasured(path string, into map[string]float64, parse func(io.Reader) (map[string]float64, error)) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	m, err := parse(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	for name, v := range m {
		// Min-merge across files for the same reason the parser min-merges
		// across -count repetitions: keep the least-noisy measurement.
		if prev, ok := into[name]; !ok || v < prev {
			into[name] = v
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchregress:", err)
	os.Exit(1)
}
