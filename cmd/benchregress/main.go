// Command benchregress gates CI on allocation regressions: it parses one or
// more `go test -bench -benchmem` output files, compares each baselined
// benchmark's B/op against internal/bench/testdata/bop_baseline.txt, and
// exits non-zero when any exceeds the tolerance factor.
//
//	go test -run '^$' -bench BenchmarkCursorVsMaterialize -benchmem -benchtime 5x . > out.txt
//	benchregress -baseline internal/bench/testdata/bop_baseline.txt out.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"aiql/internal/bench"
)

func main() {
	baselinePath := flag.String("baseline", "internal/bench/testdata/bop_baseline.txt",
		"baseline file of `name b/op` pairs")
	factor := flag.Float64("factor", 2, "fail when measured B/op exceeds factor x baseline")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchregress [-baseline file] [-factor n] bench-output.txt...")
		os.Exit(2)
	}

	bf, err := os.Open(*baselinePath)
	if err != nil {
		fatal(err)
	}
	baseline, err := bench.ParseBaseline(bf)
	bf.Close()
	if err != nil {
		fatal(fmt.Errorf("%s: %w", *baselinePath, err))
	}

	measured := make(map[string]float64)
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		m, err := bench.ParseBenchBOp(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		for name, v := range m {
			measured[name] = v
		}
	}

	if err := bench.CheckBOpRegression(baseline, measured, *factor); err != nil {
		fatal(err)
	}
	fmt.Printf("bench-regress: %d benchmarks within %.1fx of baseline\n", len(baseline), *factor)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchregress:", err)
	os.Exit(1)
}
