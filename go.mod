module aiql

go 1.24
