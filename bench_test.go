// Benchmarks regenerating the paper's evaluation artifacts (one per table
// and figure — see DESIGN.md's experiment index) plus ablation benchmarks
// for the design choices the paper calls out. `go test -bench=. -benchmem`
// runs everything on a reduced dataset; `cmd/aiqlbench` runs the same
// experiments at full scale with the paper-style table output.
package aiql_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"net/http/httptest"

	"aiql/internal/bench"
	"aiql/internal/concise"
	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/graphstore"
	"aiql/internal/mpp"
	"aiql/internal/obs"
	"aiql/internal/parser"
	"aiql/internal/pred"
	"aiql/internal/queries"
	"aiql/internal/server"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// benchCfg keeps `go test -bench=.` affordable; cmd/aiqlbench uses the
// full default scale.
var benchCfg = gen.Config{Hosts: 12, Days: 3, BackgroundPerHostDay: 8000, Seed: 1}

var (
	dsOnce sync.Once
	dsVal  *types.Dataset
)

func benchDataset() *types.Dataset {
	dsOnce.Do(func() { dsVal = gen.Scenario(benchCfg) })
	return dsVal
}

var (
	engOnce sync.Once
	engines map[string]*engine.Engine
)

// benchEngines builds every engine configuration once: the end-to-end
// systems, the Fig. 6 schedulers, the Fig. 7 clusters, and the ablations.
func benchEngines() map[string]*engine.Engine {
	engOnce.Do(func() {
		ds := benchDataset()
		engines = make(map[string]*engine.Engine)

		opt := storage.New(storage.Options{})
		opt.Ingest(ds)
		engines["aiql"] = engine.New(opt, engine.Options{})
		engines["ff"] = engine.New(opt, engine.Options{Strategy: engine.StrategyFetchFilter})
		engines["pg-sched"] = engine.New(opt, engine.Options{Strategy: engine.StrategyBigJoin, DisableSplitDays: true})
		// Ablations over the same optimized store.
		engines["no-score-sort"] = engine.New(opt, engine.Options{NoScoreSort: true})
		engines["no-pushdown"] = engine.New(opt, engine.Options{NoPushdown: true})
		engines["no-splitdays"] = engine.New(opt, engine.Options{DisableSplitDays: true})
		engines["no-hashjoin"] = engine.New(opt, engine.Options{NoHashJoin: true})
		engines["apply-join"] = engine.New(opt, engine.Options{ApplyJoin: true})
		engines["stats-scoring"] = engine.New(opt, engine.Options{StatsScoring: true})

		pgStore := storage.New(storage.Options{DisablePruning: true, Workers: 1})
		pgStore.Ingest(ds)
		engines["postgres"] = engine.New(pgStore, engine.Options{Strategy: engine.StrategyBigJoin, DisableSplitDays: true})

		noIdx := storage.New(storage.Options{DisableIndexes: true})
		noIdx.Ingest(ds)
		engines["no-indexes"] = engine.New(noIdx, engine.Options{})

		noPrune := storage.New(storage.Options{DisablePruning: true})
		noPrune.Ingest(ds)
		engines["no-pruning"] = engine.New(noPrune, engine.Options{})

		g := graphstore.New()
		g.Ingest(ds)
		engines["neo4j"] = engine.New(g, engine.Options{Strategy: engine.StrategyBigJoin, DisableSplitDays: true, NoHashJoin: true})

		gp := mpp.New(5, mpp.ArrivalOrder, storage.Options{})
		gp.Ingest(ds)
		engines["greenplum"] = engine.New(gp, engine.Options{Strategy: engine.StrategyBigJoin, DisableSplitDays: true})

		sem := mpp.New(5, mpp.SemanticsAware, storage.Options{})
		sem.Ingest(ds)
		engines["mpp-aiql"] = engine.New(sem, engine.Options{})
	})
	return engines
}

// runCorpus executes a query list against one engine, failing the benchmark
// on query errors (budget exhaustion by a baseline is tolerated — it is the
// paper's "did not finish within 1 hour").
func runCorpus(b *testing.B, e *engine.Engine, qs []queries.Query) {
	b.Helper()
	for _, q := range qs {
		res, err := e.Query(q.Src)
		if err != nil {
			if errors.Is(err, engine.ErrTooLarge) {
				continue
			}
			b.Fatalf("%s: %v", q.ID, err)
		}
		_ = res
	}
}

func caseStudyQueries() []queries.Query {
	var out []queries.Query
	for _, q := range queries.CaseStudy() {
		if !q.Anomaly {
			out = append(out, q)
		}
	}
	return out
}

// BenchmarkTable3CaseStudy regenerates Table 3: the 26-query investigation
// per end-to-end system.
func BenchmarkTable3CaseStudy(b *testing.B) {
	eng := benchEngines()
	cs := caseStudyQueries()
	for _, sys := range []string{"aiql", "postgres", "neo4j"} {
		b.Run(sys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runCorpus(b, eng[sys], cs)
			}
		})
	}
}

// BenchmarkFig5PerQuery regenerates Fig. 5's shape on three representative
// investigation queries of growing pattern count (2, 4 and 6 patterns).
func BenchmarkFig5PerQuery(b *testing.B) {
	eng := benchEngines()
	byID := make(map[string]queries.Query)
	for _, q := range queries.CaseStudy() {
		byID[q.ID] = q
	}
	for _, id := range []string{"c2-1", "c5-7", "c4-8"} {
		for _, sys := range []string{"aiql", "postgres", "neo4j"} {
			q := byID[id]
			b.Run(fmt.Sprintf("%s/%s", id, sys), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runCorpus(b, eng[sys], []queries.Query{q})
				}
			})
		}
	}
}

// BenchmarkFig6Schedulers regenerates Fig. 6: the 19 behaviour queries per
// scheduler on identical single-node optimized storage.
func BenchmarkFig6Schedulers(b *testing.B) {
	eng := benchEngines()
	bq := queries.Behaviors()
	for _, sys := range []string{"pg-sched", "ff", "aiql"} {
		b.Run(sys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runCorpus(b, eng[sys], bq)
			}
		})
	}
}

// BenchmarkFig7Parallel regenerates Fig. 7: Greenplum scheduling
// (arrival-order MPP placement + big join) vs AIQL scheduling
// (semantics-aware placement + Algorithm 1).
func BenchmarkFig7Parallel(b *testing.B) {
	eng := benchEngines()
	bq := queries.Behaviors()
	for _, sys := range []string{"greenplum", "mpp-aiql"} {
		b.Run(sys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runCorpus(b, eng[sys], bq)
			}
		})
	}
}

// BenchmarkFig8Conciseness regenerates Fig. 8 / Table 5: translating the
// behaviour corpus to SQL/Cypher/SPL and measuring all four languages.
func BenchmarkFig8Conciseness(b *testing.B) {
	bq := queries.Behaviors()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range bq {
			if _, err := concise.Measure(q.ID, q.Src); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable4MalwareQueries runs the five Table 4 malware behaviour
// queries on the full system.
func BenchmarkTable4MalwareQueries(b *testing.B) {
	eng := benchEngines()
	var vq []queries.Query
	for _, q := range queries.Behaviors() {
		if q.Group == "v" {
			vq = append(vq, q)
		}
	}
	for i := 0; i < b.N; i++ {
		runCorpus(b, eng["aiql"], vq)
	}
}

// --- Ablations (DESIGN.md Sec. 4) ---

// BenchmarkAblationPruningScore disables the pruning-score relationship
// ordering of Algorithm 1 (relationships processed in declaration order).
func BenchmarkAblationPruningScore(b *testing.B) {
	ablation(b, "aiql", "no-score-sort")
}

// BenchmarkAblationPushdown disables constrained execution (earlier results
// no longer narrow later data queries).
func BenchmarkAblationPushdown(b *testing.B) {
	ablation(b, "aiql", "no-pushdown")
}

// BenchmarkAblationParallelWindow disables the parallel per-day splitting
// of multi-day data queries.
func BenchmarkAblationParallelWindow(b *testing.B) {
	ablation(b, "aiql", "no-splitdays")
}

// BenchmarkAblationIndexes disables the entity hash indexes and posting
// lists (full partition scans with predicate evaluation).
func BenchmarkAblationIndexes(b *testing.B) {
	ablation(b, "aiql", "no-indexes")
}

// BenchmarkAblationPartitioning disables spatial/temporal partition pruning
// while keeping everything else.
func BenchmarkAblationPartitioning(b *testing.B) {
	ablation(b, "aiql", "no-pruning")
}

// BenchmarkAblationHashJoin forces nested-loop joins.
func BenchmarkAblationHashJoin(b *testing.B) {
	ablation(b, "aiql", "no-hashjoin")
}

// BenchmarkAblationApplyJoin replaces batch joins with per-row re-expansion
// (the Cypher Apply discipline) on AIQL's own storage.
func BenchmarkAblationApplyJoin(b *testing.B) {
	ablation(b, "aiql", "apply-join")
}

// BenchmarkAblationStatsScoring replaces constraint-count pruning scores
// with index-derived cardinality estimates (paper Sec. 7 future work).
func BenchmarkAblationStatsScoring(b *testing.B) {
	ablation(b, "aiql", "stats-scoring")
}

func ablation(b *testing.B, baseline, variant string) {
	eng := benchEngines()
	all := append(caseStudyQueries(), queries.Behaviors()...)
	for _, sys := range []string{baseline, variant} {
		b.Run(sys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runCorpus(b, eng[sys], all)
			}
		})
	}
}

// --- Microbenchmarks ---

// BenchmarkParse measures parsing of the largest corpus query.
func BenchmarkParse(b *testing.B) {
	var largest queries.Query
	for _, q := range queries.CaseStudy() {
		if q.Patterns > largest.Patterns {
			largest = q
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(largest.Src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIngest measures store ingestion throughput.
func BenchmarkIngest(b *testing.B) {
	ds := benchDataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := storage.New(storage.Options{})
		st.Ingest(ds)
	}
	b.SetBytes(int64(len(ds.Events)))
}

// BenchmarkAnomalyWindow measures the sliding-window anomaly executor
// (behaviour s5: 8,640 windows over a day).
func BenchmarkAnomalyWindow(b *testing.B) {
	eng := benchEngines()
	var s5 queries.Query
	for _, q := range queries.Behaviors() {
		if q.ID == "s5" {
			s5 = q
		}
	}
	for i := 0; i < b.N; i++ {
		runCorpus(b, eng["aiql"], []queries.Query{s5})
	}
}

// BenchmarkPreparedVsCold quantifies the repeated-query fast paths the
// aiqld service is built on. "cold" pays lex/parse/compile/schedule on
// every execution (what the one-shot CLIs do); "prepared" reuses the
// compiled plan (engine.PreparedQuery, the plan cache's steady state);
// "cached" serves the materialized result keyed by (plan, store generation)
// without touching the store (the result cache's steady state).
func BenchmarkPreparedVsCold(b *testing.B) {
	eng := benchEngines()
	e := eng["aiql"]
	var q queries.Query
	for _, c := range queries.CaseStudy() {
		if c.ID == "c5-7" {
			q = c
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Query(q.Src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		pq, err := e.Prepare(q.Src)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pq.Execute(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		pq, err := e.Prepare(q.Src)
		if err != nil {
			b.Fatal(err)
		}
		rc := server.NewResultCache(8)
		const gen = 1 // the benchmark store is never mutated
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, ok := rc.Get(pq.Src(), gen)
			if !ok {
				if res, err = pq.Execute(context.Background()); err != nil {
					b.Fatal(err)
				}
				rc.Put(pq.Src(), gen, res)
			}
			_ = res
		}
	})
}

// BenchmarkCursorVsMaterialize quantifies the snapshot/cursor refactor's
// point: a LIMIT-style query that needs the first k matches. The
// "materialize" case drains the full scan and post-filters (the old
// execution model — every byte of the result allocated before the limit
// applies); the "cursor" case pushes the limit into the scan, which
// terminates its producers after k matches. Compare B/op.
func BenchmarkCursorVsMaterialize(b *testing.B) {
	ds := benchDataset()
	st := storage.New(storage.Options{})
	st.Ingest(ds)
	const k = 10
	q := &storage.DataQuery{
		SubjType: types.EntityProcess,
		ObjType:  types.EntityFile,
		Ops:      types.NewOpSet(types.OpWrite),
	}
	b.Run("materialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			all := st.Run(context.Background(), q)
			if len(all) < k {
				b.Fatalf("only %d matches", len(all))
			}
			_ = all[:k]
		}
	})
	b.Run("cursor", func(b *testing.B) {
		b.ReportAllocs()
		lq := *q
		lq.Limit = k
		for i := 0; i < b.N; i++ {
			cur := st.Scan(context.Background(), &lq)
			got := storage.Drain(cur)
			cur.Close()
			if len(got) != k {
				b.Fatalf("cursor returned %d matches, want %d", len(got), k)
			}
		}
	})
}

// BenchmarkHotScanLike measures the hot columnar shadow on the workload it
// was built for: a LIKE-dominated scan whose candidate set is too broad for
// the posting lists, forcing a full range walk over in-memory partitions.
// "columnar" answers through the batch kernel and per-dictionary verdict
// bitmaps; "scalar" is the same scan with shadows disabled, paying two map
// lookups and an interface call per row. Compare ns/op.
func BenchmarkHotScanLike(b *testing.B) {
	ds := benchDataset()
	q := &storage.DataQuery{
		SubjType: types.EntityProcess,
		SubjPred: pred.NewCond(types.AttrExeName, pred.CmpEq, "%e%"),
		ObjType:  types.EntityFile,
		Ops:      types.NewOpSet(types.OpRead, types.OpWrite),
		// Selective volume predicate: most rows are filtered, so the
		// benchmark measures the filter machinery rather than match
		// delivery.
		EvtPred: pred.NewCond(types.EvtAttrAmount, pred.CmpGe, "60000"),
	}
	for _, cfg := range []struct {
		name string
		opts storage.Options
	}{
		{"columnar", storage.Options{}},
		{"scalar", storage.Options{DisableHotColumnar: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			st := storage.New(cfg.opts)
			st.Ingest(ds)
			// Stream and count instead of materializing: the measured work
			// is the scan itself, not allocation of a giant result slice.
			count := func() int {
				qc := *q
				cur := st.Scan(context.Background(), &qc)
				defer cur.Close()
				total := 0
				batch := make([]storage.Match, storage.ScanBatchSize)
				for {
					n := cur.Next(batch)
					if n == 0 {
						return total
					}
					total += n
				}
			}
			// Warm once so shadow build cost is not billed to iteration 0,
			// and sanity-check the scan finds work.
			if count() == 0 {
				b.Fatal("LIKE scan matched nothing")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = count()
			}
			b.StopTimer()
			ss := st.ScanStats()
			if cfg.name == "columnar" && ss.HotBatches == 0 {
				b.Fatal("columnar run never used the batch path")
			}
			if cfg.name == "scalar" && ss.HotBatches != 0 {
				b.Fatal("scalar run used the batch path")
			}
		})
	}
}

// BenchmarkTraceOverhead pins the cost of the scan-path trace hook on the
// hot LIKE workload from BenchmarkHotScanLike. "bare" ablates the hook
// entirely (Options.DisableScanSpans — no span lookup, no counter fold);
// "disabled" is the production default with no trace on the context, i.e.
// one context lookup per scan and nil-safe no-op span calls; "enabled"
// carries a live span so the block counters fold into it on cursor close.
// CI runs this with -count and gates disabled ≤ 1.02× bare via benchregress
// -ratio: instrumentation nobody turned on must stay free on the hot path.
func BenchmarkTraceOverhead(b *testing.B) {
	ds := benchDataset()
	q := &storage.DataQuery{
		SubjType: types.EntityProcess,
		SubjPred: pred.NewCond(types.AttrExeName, pred.CmpEq, "%e%"),
		ObjType:  types.EntityFile,
		Ops:      types.NewOpSet(types.OpRead, types.OpWrite),
		EvtPred:  pred.NewCond(types.EvtAttrAmount, pred.CmpGe, "60000"),
	}
	for _, cfg := range []struct {
		name string
		opts storage.Options
		ctx  func() context.Context
	}{
		{"bare", storage.Options{DisableScanSpans: true}, context.Background},
		{"disabled", storage.Options{}, context.Background},
		{"enabled", storage.Options{}, func() context.Context {
			tr := obs.NewTrace("")
			return obs.WithSpan(obs.WithTrace(context.Background(), tr), tr.Span("bench"))
		}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			st := storage.New(cfg.opts)
			st.Ingest(ds)
			ctx := cfg.ctx()
			count := func() int {
				qc := *q
				cur := st.Scan(ctx, &qc)
				defer cur.Close()
				total := 0
				batch := make([]storage.Match, storage.ScanBatchSize)
				for {
					n := cur.Next(batch)
					if n == 0 {
						return total
					}
					total += n
				}
			}
			if count() == 0 {
				b.Fatal("LIKE scan matched nothing")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = count()
			}
		})
	}
}

// BenchmarkConcurrentIngestQuery measures query latency while an ingester
// continuously appends batches — the workload the snapshot model exists
// for. Before the refactor every Ingest held the store's write lock against
// every query scan; now queries pin a snapshot and proceed while ingestion
// mutates copy-on-write underneath.
func BenchmarkConcurrentIngestQuery(b *testing.B) {
	ds := benchDataset()
	st := storage.New(storage.Options{})
	st.Ingest(ds)
	e := engine.New(st, engine.Options{})
	pq, err := e.Prepare(`
		agentid = 2
		proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
		return distinct p1, p2`)
	if err != nil {
		b.Fatal(err)
	}

	stop := make(chan struct{})
	var ingWG sync.WaitGroup
	ingWG.Add(1)
	go func() {
		defer ingWG.Done()
		// Recycle slices of the generated events as fresh batches.
		const batch = 512
		off := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			end := off + batch
			if end > len(ds.Events) {
				off, end = 0, batch
			}
			evs := make([]types.Event, batch)
			copy(evs, ds.Events[off:end])
			st.Ingest(types.NewDataset(nil, evs))
			off = end
		}
	}()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := st.Snapshot()
		if _, err := pq.ExecuteOn(context.Background(), snap); err != nil {
			b.Fatal(err)
		}
		snap.Close()
	}
	b.StopTimer()
	close(stop)
	ingWG.Wait()
}

// BenchmarkEndToEndScaling reports AIQL vs PostgreSQL on the complete c5
// query as a pair, making the headline speedup visible in benchmark output.
func BenchmarkEndToEndScaling(b *testing.B) {
	eng := benchEngines()
	var q queries.Query
	for _, c := range queries.CaseStudy() {
		if c.ID == "c5-7" {
			q = c
		}
	}
	for _, sys := range []string{"aiql", "postgres"} {
		b.Run(sys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runCorpus(b, eng[sys], []queries.Query{q})
			}
		})
	}
}

var (
	clusterBenchOnce sync.Once
	clusterBenchEng  *engine.Engine
	clusterBenchErr  error
)

// benchClusterEngine boots a 3-worker httptest cluster over the bench
// dataset, scattered by (agent, day), behind one coordinator engine.
func benchClusterEngine() (*engine.Engine, error) {
	clusterBenchOnce.Do(func() {
		ds := benchDataset()
		urls := make([]string, 3)
		for i := range urls {
			st := storage.New(storage.Options{})
			srv := server.New(st, engine.New(st, engine.Options{}), server.Options{})
			srv.SetShard(i)
			urls[i] = httptest.NewServer(srv.Handler()).URL
		}
		runner, err := bench.Distributed(urls)
		if err != nil {
			clusterBenchErr = err
			return
		}
		if err := bench.DistributedIngest(context.Background(), runner, ds); err != nil {
			clusterBenchErr = err
			return
		}
		clusterBenchEng = runner.Engine
	})
	return clusterBenchEng, clusterBenchErr
}

// BenchmarkClusterVsSingleNode prices the real multi-process topology:
// identical engine and behaviour corpus, one run against the local store
// and one scattered over HTTP to 3 worker shards and gathered back through
// remote cursors. The delta is the wire cost (serialization, fan-out,
// NDJSON decode) that docs/CLUSTER.md tells operators to budget for.
func BenchmarkClusterVsSingleNode(b *testing.B) {
	single := benchEngines()["aiql"]
	clusterEng, err := benchClusterEngine()
	if err != nil {
		b.Fatal(err)
	}
	bq := queries.Behaviors()
	b.Run("single-node", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runCorpus(b, single, bq)
		}
	})
	b.Run("cluster-3-workers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runCorpus(b, clusterEng, bq)
		}
	})
}

// BenchmarkIngestWALVsMemory prices durability: the same batched ingest
// loop into (a) the plain in-memory store, (b) the persistent store under
// group commit (-wal-sync interval, syncs deferred), and (c) the
// persistent store with an fsync per batch (-wal-sync batch). The spread
// between (a) and (b) is the WAL's encode+write overhead; between (b) and
// (c), the price of per-batch fsync durability.
func BenchmarkIngestWALVsMemory(b *testing.B) {
	ds := benchDataset()
	const batches = 16
	b.Run("memory", func(b *testing.B) {
		b.SetBytes(int64(len(ds.Events)))
		for i := 0; i < b.N; i++ {
			bench.IngestMemory(ds, batches)
		}
	})
	b.Run("wal-group-commit", func(b *testing.B) {
		b.SetBytes(int64(len(ds.Events)))
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir()
			b.StartTimer()
			if err := bench.IngestDurable(dir, ds, false, batches); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("wal-fsync-per-batch", func(b *testing.B) {
		b.SetBytes(int64(len(ds.Events)))
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir()
			b.StartTimer()
			if err := bench.IngestDurable(dir, ds, true, batches); err != nil {
				b.Fatal(err)
			}
		}
	})
}
