package bench

import (
	"os"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: aiql
BenchmarkCursorVsMaterialize/materialize         	       5	  15305787 ns/op	10935568 B/op	     475 allocs/op
BenchmarkCursorVsMaterialize/cursor-8            	       5	     40785 ns/op	   35792 B/op	     131 allocs/op
BenchmarkStreamMatch/rules=0         	       5	   7252467 ns/op	   4264870 events/sec	 7121456 B/op	    8934 allocs/op
PASS
ok  	aiql	0.172s
`

func TestParseBenchBOp(t *testing.T) {
	got, err := ParseBenchBOp(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkCursorVsMaterialize/materialize": 10935568,
		"BenchmarkCursorVsMaterialize/cursor":      35792, // -8 GOMAXPROCS tag stripped
		"BenchmarkStreamMatch/rules=0":             7121456,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}
}

func TestParseBenchNsOp(t *testing.T) {
	got, err := ParseBenchNsOp(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkCursorVsMaterialize/materialize": 15305787,
		"BenchmarkCursorVsMaterialize/cursor":      40785,
		"BenchmarkStreamMatch/rules=0":             7252467,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %v, want %v", name, got[name], v)
		}
	}
}

func TestCheckNsOpRegression(t *testing.T) {
	baseline := map[string]float64{"BenchA": 1000}
	if err := CheckNsOpRegression(baseline, map[string]float64{"BenchA": 4900}, 5); err != nil {
		t.Errorf("within 5×: %v", err)
	}
	err := CheckNsOpRegression(baseline, map[string]float64{"BenchA": 5100}, 5)
	if err == nil || !strings.Contains(err.Error(), "ns/op") {
		t.Errorf("5.1× wall-time collapse not flagged: %v", err)
	}
}

// TestParseBenchKeepsMinOfRepeats: with `-count N` the same benchmark name
// appears N times; the parser must keep the fastest (least-interfered) run
// so the tight ratio gate doesn't flake on scheduler noise.
func TestParseBenchKeepsMinOfRepeats(t *testing.T) {
	out := "BenchmarkX/a 5 300 ns/op 100 B/op 1 allocs/op\n" +
		"BenchmarkX/a 5 210 ns/op 90 B/op 1 allocs/op\n" +
		"BenchmarkX/a 5 250 ns/op 110 B/op 1 allocs/op\n"
	ns, err := ParseBenchNsOp(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if ns["BenchmarkX/a"] != 210 {
		t.Errorf("ns/op min of repeats = %v, want 210", ns["BenchmarkX/a"])
	}
	bop, err := ParseBenchBOp(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if bop["BenchmarkX/a"] != 90 {
		t.Errorf("B/op min of repeats = %v, want 90", bop["BenchmarkX/a"])
	}
}

func TestCheckNsOpRatio(t *testing.T) {
	measured := map[string]float64{"Bench/on": 1010, "Bench/off": 1000}
	if err := CheckNsOpRatio(measured, "Bench/on", "Bench/off", 1.02); err != nil {
		t.Errorf("1.01× within a 1.02× gate: %v", err)
	}
	measured["Bench/on"] = 1030
	err := CheckNsOpRatio(measured, "Bench/on", "Bench/off", 1.02)
	if err == nil || !strings.Contains(err.Error(), "Bench/on") {
		t.Errorf("1.03× past a 1.02× gate not flagged: %v", err)
	}
	if err := CheckNsOpRatio(measured, "Bench/gone", "Bench/off", 1.02); err == nil {
		t.Error("missing numerator accepted")
	}
	if err := CheckNsOpRatio(measured, "Bench/on", "Bench/gone", 1.02); err == nil {
		t.Error("missing denominator accepted")
	}
}

func TestParseBaselineRejectsMalformed(t *testing.T) {
	if _, err := ParseBaseline(strings.NewReader("name extra 12\n")); err == nil {
		t.Error("three-field line accepted")
	}
	if _, err := ParseBaseline(strings.NewReader("name notanumber\n")); err == nil {
		t.Error("non-numeric b/op accepted")
	}
}

func TestCheckBOpRegression(t *testing.T) {
	baseline := map[string]float64{"BenchA": 1000, "BenchB": 500}
	if err := CheckBOpRegression(baseline, map[string]float64{"BenchA": 1900, "BenchB": 400}, 2); err != nil {
		t.Errorf("within 2×: %v", err)
	}
	err := CheckBOpRegression(baseline, map[string]float64{"BenchA": 2100, "BenchB": 400}, 2)
	if err == nil || !strings.Contains(err.Error(), "BenchA") {
		t.Errorf("2.1× regression not flagged: %v", err)
	}
	err = CheckBOpRegression(baseline, map[string]float64{"BenchA": 900}, 2)
	if err == nil || !strings.Contains(err.Error(), "BenchB") {
		t.Errorf("missing baselined benchmark not flagged: %v", err)
	}
	// New benchmarks without a baseline are not gated.
	if err := CheckBOpRegression(baseline, map[string]float64{"BenchA": 900, "BenchB": 400, "BenchC": 1 << 30}, 2); err != nil {
		t.Errorf("un-baselined benchmark gated: %v", err)
	}
}

// TestShippedBaselineParses guards the checked-in baseline file itself: a
// typo there would otherwise only surface as a CI-step failure.
func TestShippedBaselineParses(t *testing.T) {
	f, err := os.Open("testdata/bop_baseline.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	base, err := ParseBaseline(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"BenchmarkCursorVsMaterialize/materialize",
		"BenchmarkCursorVsMaterialize/cursor",
		"BenchmarkStreamMatch/rules=20+broad",
		"BenchmarkHotScanLike/columnar",
		"BenchmarkHotScanLike/scalar",
	} {
		if _, ok := base[name]; !ok {
			t.Errorf("baseline file missing %s", name)
		}
	}

	nf, err := os.Open("testdata/nsop_baseline.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Close()
	nsBase, err := ParseBaseline(nf)
	if err != nil {
		t.Fatal(err)
	}
	for name := range base {
		if _, ok := nsBase[name]; !ok {
			t.Errorf("ns/op baseline file missing %s", name)
		}
	}
}
