package bench

import (
	"bytes"
	"strings"
	"testing"

	"aiql/internal/gen"
	"aiql/internal/queries"
	"aiql/internal/types"
)

func tinyDataset(t testing.TB) *types.Dataset {
	t.Helper()
	return Dataset(gen.Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 300, Seed: 2})
}

// TestSystemsAgreeOnResults is the evaluation's validity condition: every
// system under comparison must return the same number of rows for every
// corpus query — they differ in cost only.
func TestSystemsAgreeOnResults(t *testing.T) {
	ds := tinyDataset(t)
	groups := [][]Runner{EndToEnd(ds), SingleNode(ds), Parallel(ds, 5)}
	all := append(queries.CaseStudy(), queries.Behaviors()...)
	for gi, runners := range groups {
		for _, q := range all {
			var want int
			for ri, r := range runners {
				tm := Run(r, q)
				if tm.Err != nil {
					t.Fatalf("group %d %s on %s: %v", gi, q.ID, r.Name, tm.Err)
				}
				if ri == 0 {
					want = tm.Rows
					continue
				}
				if tm.Rows != want {
					t.Errorf("group %d query %s: %s returned %d rows, %s returned %d",
						gi, q.ID, runners[0].Name, want, r.Name, tm.Rows)
				}
			}
		}
	}
}

func TestTable3Output(t *testing.T) {
	var buf bytes.Buffer
	timings := Table3(&buf, tinyDataset(t))
	out := buf.String()
	for _, frag := range []string{"Table 3", "c1", "c5", "All", "Speedup"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 3 output missing %q:\n%s", frag, out)
		}
	}
	// 26 multievent queries x 3 systems.
	if len(timings) != 26*3 {
		t.Errorf("timings = %d, want 78", len(timings))
	}
	if got := Systems(timings); len(got) != 3 {
		t.Errorf("systems = %v", got)
	}
}

func TestFig6And7Output(t *testing.T) {
	ds := tinyDataset(t)
	var buf bytes.Buffer
	t6 := Fig6(&buf, ds)
	if len(t6) != 19*3 {
		t.Errorf("fig6 timings = %d, want 57", len(t6))
	}
	if !strings.Contains(buf.String(), "Fig 6") {
		t.Error("fig6 title missing")
	}
	buf.Reset()
	t7 := Fig7(&buf, ds)
	if len(t7) != 19*2 {
		t.Errorf("fig7 timings = %d, want 38", len(t7))
	}
	totals := GroupTimings(t7)
	if len(totals) != 2 {
		t.Errorf("fig7 systems = %v", totals)
	}
}

func TestFig8AndTable5Output(t *testing.T) {
	var buf bytes.Buffer
	cmps := Fig8(&buf)
	if len(cmps) != 19 {
		t.Errorf("comparisons = %d, want 19", len(cmps))
	}
	if !strings.Contains(buf.String(), "n/a") {
		t.Error("anomaly queries should show n/a for SQL/Cypher/SPL")
	}
	buf.Reset()
	Table5(&buf, cmps)
	out := buf.String()
	for _, frag := range []string{"AIQL/SQL", "AIQL/Cypher", "# of constraints", "x"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table 5 output missing %q:\n%s", frag, out)
		}
	}
}

func TestTable4Output(t *testing.T) {
	var buf bytes.Buffer
	Table4(&buf)
	out := buf.String()
	for _, s := range gen.MalwareSamples {
		if !strings.Contains(out, s.Name) || !strings.Contains(out, s.Category) {
			t.Errorf("Table 4 missing sample %s", s.ID)
		}
	}
}

func TestRunMeasuresAndCounts(t *testing.T) {
	ds := tinyDataset(t)
	runners := EndToEnd(ds)
	q := queries.CaseStudy()[0]
	tm := Run(runners[0], q)
	if tm.QueryID != q.ID || tm.System != SysAIQL {
		t.Errorf("timing header = %+v", tm)
	}
	if tm.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
	if tm.TimedOut {
		t.Error("tiny query timed out")
	}
}
