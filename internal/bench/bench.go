// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Sec. 6): it assembles the engine
// configurations under comparison, times the query corpus against each, and
// prints rows in the shape of the paper's tables and figures.
//
// Engine configurations (see DESIGN.md for the emulation rationale):
//
//   - AIQL: partitioned/indexed store, relationship-based scheduling,
//     parallel scans and per-day window splitting — the full system.
//   - PostgreSQL (end-to-end): same data without spatial/temporal
//     partition pruning, single-threaded scans, and the semantics-agnostic
//     one-big-join execution with per-row predicate evaluation.
//   - Neo4j: adjacency-list graph store (entities as nodes, events as
//     relationships) with traversal-based pattern matching and
//     nested-loop-only joins.
//   - PostgreSQL scheduling (Fig. 6): AIQL's optimized storage, big-join
//     scheduling — isolates scheduling from storage as the paper does.
//   - AIQL FF (Fig. 6): fetch-and-filter scheduling.
//   - Greenplum (Fig. 7): MPP cluster with arrival-order placement and
//     big-join scheduling vs AIQL scheduling on semantics-aware placement.
package bench

import (
	"context"
	"fmt"
	"time"

	"aiql/internal/cluster"
	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/graphstore"
	"aiql/internal/mpp"
	"aiql/internal/queries"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// Timeout is the per-query wall-clock budget; baseline configurations that
// exceed it are reported as the paper reports its baselines' one-hour
// timeouts. (The engine's pair budget usually trips first.)
const Timeout = 120 * time.Second

// System names used across reports.
const (
	SysAIQL      = "AIQL"
	SysPostgres  = "PostgreSQL"
	SysNeo4j     = "Neo4j"
	SysAIQLFF    = "AIQL FF"
	SysGreenplum = "Greenplum"
	SysCluster   = "AIQL cluster"
)

// Runner is one named engine configuration under test.
type Runner struct {
	Name   string
	Engine *engine.Engine
}

// Timing is one (query, system) measurement.
type Timing struct {
	QueryID  string
	Group    string
	Patterns int
	System   string
	Elapsed  time.Duration
	Rows     int
	TimedOut bool
	Err      error
}

// Run times one query against one runner, mapping budget exhaustion to a
// timeout record. Fast queries are measured as the best of two runs after
// the first run has warmed allocator and caches; slow queries are measured
// once (re-running a near-timeout baseline doubles nothing but wall-clock).
func Run(r Runner, q queries.Query) Timing {
	t := runOnce(r, q)
	if t.TimedOut || t.Elapsed > 2*time.Second {
		return t
	}
	if t2 := runOnce(r, q); t2.Elapsed < t.Elapsed {
		t2.Rows = t.Rows
		return t2
	}
	return t
}

func runOnce(r Runner, q queries.Query) Timing {
	t := Timing{QueryID: q.ID, Group: q.Group, Patterns: q.Patterns, System: r.Name}
	// The timeout is enforced for real now that the engine is cancelable:
	// a baseline that blows the budget stops scanning mid-cursor instead of
	// running to completion after the measurement window closed.
	//aiql:ignore ctxflow -- the harness owns the measurement deadline; there is no caller context to inherit
	ctx, cancel := context.WithTimeout(context.Background(), Timeout)
	defer cancel()
	//aiql:ignore wallclock -- wall-clock latency is the measurement itself
	start := time.Now()
	res, err := r.Engine.QueryContext(ctx, q.Src)
	t.Elapsed = time.Since(start)
	if err != nil {
		t.Err = err
		t.TimedOut = true // budget or deadline exhaustion stands in for >1h
		return t
	}
	t.Rows = len(res.Rows)
	if t.Elapsed > Timeout {
		t.TimedOut = true
	}
	return t
}

// EndToEnd builds the Table 3 / Fig. 5 comparison systems over one dataset.
func EndToEnd(ds *types.Dataset) []Runner {
	// AIQL: everything on.
	aiqlStore := storage.New(storage.Options{})
	aiqlStore.Ingest(ds)
	aiql := engine.New(aiqlStore, engine.Options{Strategy: engine.StrategyRelationship})

	// PostgreSQL: same schema and indexes, but no spatial/temporal
	// partition pruning, sequential scans, one-big-join scheduling with
	// per-row predicate evaluation (events joined against entity tables).
	pgStore := storage.New(storage.Options{DisablePruning: true, Workers: 1})
	pgStore.Ingest(ds)
	pg := engine.New(pgStore, engine.Options{
		Strategy:         engine.StrategyBigJoin,
		DisableSplitDays: true,
	})

	// Neo4j: graph traversal store, declaration-order assembly, no hash
	// joins. Cross-pattern equality lives in WHERE clauses of the Cypher
	// translation, which the 2018-era planner executed as cartesian
	// products plus filters — the nested-loop configuration here.
	g := graphstore.New()
	g.Ingest(ds)
	neo := engine.New(g, engine.Options{
		Strategy:         engine.StrategyBigJoin,
		DisableSplitDays: true,
		NoHashJoin:       true,
	})

	return []Runner{
		{Name: SysAIQL, Engine: aiql},
		{Name: SysPostgres, Engine: pg},
		{Name: SysNeo4j, Engine: neo},
	}
}

// SingleNode builds the Fig. 6 comparison: three schedulers over the SAME
// optimized storage ("here we want to rule out the speedup offered by the
// data storage component" — paper Sec. 6.3.2).
func SingleNode(ds *types.Dataset) []Runner {
	st := storage.New(storage.Options{})
	st.Ingest(ds)
	pgSched := engine.New(st, engine.Options{
		Strategy:         engine.StrategyBigJoin,
		DisableSplitDays: true,
	})
	ff := engine.New(st, engine.Options{Strategy: engine.StrategyFetchFilter})
	aiql := engine.New(st, engine.Options{Strategy: engine.StrategyRelationship})
	return []Runner{
		{Name: SysPostgres, Engine: pgSched},
		{Name: SysAIQLFF, Engine: ff},
		{Name: SysAIQL, Engine: aiql},
	}
}

// Parallel builds the Fig. 7 comparison on MPP storage: Greenplum
// scheduling (arrival-order placement, big-join SQL) vs AIQL scheduling
// (semantics-aware placement, Algorithm 1). 5 segments, as deployed in the
// paper.
func Parallel(ds *types.Dataset, segments int) []Runner {
	gpCluster := mpp.New(segments, mpp.ArrivalOrder, storage.Options{})
	gpCluster.Ingest(ds)
	gp := engine.New(gpCluster, engine.Options{
		Strategy:         engine.StrategyBigJoin,
		DisableSplitDays: true,
	})

	aiqlCluster := mpp.New(segments, mpp.SemanticsAware, storage.Options{})
	aiqlCluster.Ingest(ds)
	aiql := engine.New(aiqlCluster, engine.Options{Strategy: engine.StrategyRelationship})

	return []Runner{
		{Name: SysGreenplum, Engine: gp},
		{Name: SysAIQL, Engine: aiql},
	}
}

// Distributed builds the networked counterpart of Parallel: AIQL
// scheduling over a cluster.Coordinator that scatters every data query to
// already-running worker aiqld processes (workerURLs in shard order) and
// gathers their NDJSON streams. Callers own the workers' lifecycles; the
// returned runner only issues HTTP against them. Comparing it with the
// SingleNode AIQL runner over the same dataset isolates the wire cost of
// the real multi-process topology from the engine and storage work.
func Distributed(workerURLs []string) (Runner, error) {
	coord, err := cluster.New(workerURLs, cluster.Options{Placement: mpp.SemanticsAware})
	if err != nil {
		return Runner{}, err
	}
	return Runner{Name: SysCluster, Engine: engine.New(coord, engine.Options{})}, nil
}

// DistributedIngest scatters the dataset across the workers of a
// Distributed runner's coordinator by (agent, day) placement.
func DistributedIngest(ctx context.Context, r Runner, ds *types.Dataset) error {
	coord, ok := r.Engine.Backend().(*cluster.Coordinator)
	if !ok {
		return fmt.Errorf("bench: runner %q is not a distributed runner", r.Name)
	}
	return coord.Ingest(ctx, ds)
}

// Dataset builds (and caches per config) the full evaluation scenario.
func Dataset(cfg gen.Config) *types.Dataset {
	return gen.Scenario(cfg)
}
