package bench

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Performance-regression gate. CI runs the hot-path benchmarks
// (BenchmarkCursorVsMaterialize, BenchmarkHotScanLike, BenchmarkStreamMatch)
// with -benchmem and feeds the output through CheckBOpRegression and
// CheckNsOpRegression against the recorded baselines in
// internal/bench/testdata. B/op is the primary gate because allocation
// volume is deterministic for a fixed workload, so a 2× tolerance catches
// real regressions (an accidental materialization, a lost buffer reuse)
// without flaking. ns/op does vary with the CI machine, so its gate runs at
// a much wider tolerance — it exists to catch order-of-magnitude collapses
// (a vectorized path silently falling back to per-row evaluation, a pruned
// scan decoding everything), not single-digit percentage drift.

// benchLine matches a `go test -bench -benchmem` result line, capturing the
// benchmark name and the B/op value. The optional -N suffix is the
// GOMAXPROCS tag go test appends on multi-core runs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+.*?\s(\d+(?:\.\d+)?) B/op`)

// nsLine matches the same result line, capturing the ns/op value, which
// immediately follows the iteration count.
var nsLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

func parseBenchMetric(r io.Reader, re *regexp.Regexp) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := re.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bench line %q: %w", sc.Text(), err)
		}
		// With `-count N` each benchmark reports N times; keep the minimum.
		// The best-of run is the least-interfered-with measurement, which is
		// the standard noise-robust estimator for ratio gates (a genuine
		// regression slows every run, scheduler noise only some).
		if prev, ok := out[m[1]]; !ok || v < prev {
			out[m[1]] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ParseBenchBOp extracts benchmark-name → B/op from `go test -bench X
// -benchmem` output. Non-benchmark lines (PASS, ok, metadata) are ignored.
func ParseBenchBOp(r io.Reader) (map[string]float64, error) {
	return parseBenchMetric(r, benchLine)
}

// ParseBenchNsOp extracts benchmark-name → ns/op from `go test -bench X`
// output. Non-benchmark lines are ignored.
func ParseBenchNsOp(r io.Reader) (map[string]float64, error) {
	return parseBenchMetric(r, nsLine)
}

// ParseBaseline reads a baseline file: one `<benchmark-name> <b/op>` pair
// per line, '#' comments and blank lines skipped.
func ParseBaseline(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("baseline line %d: want `name b/op`, got %q", line, text)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("baseline line %d: %w", line, err)
		}
		out[fields[0]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// CheckBOpRegression fails if any baselined benchmark's measured B/op
// exceeds factor× its baseline, or if a baselined benchmark is missing from
// the measured set (a silently renamed or deleted benchmark would otherwise
// un-gate itself). Measured benchmarks without a baseline pass freely — new
// benchmarks opt in by being added to the baseline file.
func CheckBOpRegression(baseline, measured map[string]float64, factor float64) error {
	return checkRegression("B/op", baseline, measured, factor)
}

// CheckNsOpRegression is CheckBOpRegression for wall time. Callers pass a
// wide factor (CI uses 5×): the gate exists to catch collapses, not noise.
func CheckNsOpRegression(baseline, measured map[string]float64, factor float64) error {
	return checkRegression("ns/op", baseline, measured, factor)
}

// CheckNsOpRatio gates one measured benchmark against another from the same
// run: it fails when measured[num] exceeds max × measured[den]. Unlike the
// baseline gates, both sides come from a single machine and process, so a
// tight factor (CI uses 1.02 for BenchmarkTraceOverhead/disabled vs /bare)
// is meaningful — run the benchmarks with -count so the min-of-N parsing
// above absorbs scheduler noise. A missing side is an error: a renamed
// benchmark must not silently un-gate itself.
func CheckNsOpRatio(measured map[string]float64, num, den string, max float64) error {
	n, ok := measured[num]
	if !ok {
		return fmt.Errorf("ns/op ratio: %s not measured", num)
	}
	d, ok := measured[den]
	if !ok {
		return fmt.Errorf("ns/op ratio: %s not measured", den)
	}
	if d <= 0 {
		return fmt.Errorf("ns/op ratio: %s measured %.0f, cannot form a ratio", den, d)
	}
	if n > d*max {
		return fmt.Errorf("ns/op ratio: %s is %.0f ns/op, %.3f× %s (%.0f ns/op); gate is %.2f×",
			num, n, n/d, den, d, max)
	}
	return nil
}

func checkRegression(metric string, baseline, measured map[string]float64, factor float64) error {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	var fails []string
	for _, name := range names {
		want := baseline[name]
		got, ok := measured[name]
		switch {
		case !ok:
			fails = append(fails, fmt.Sprintf("%s: baselined but not measured", name))
		case got > want*factor:
			fails = append(fails, fmt.Sprintf("%s: %.0f %s, over %.1f× baseline %.0f",
				name, got, metric, factor, want))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("%s regression:\n  %s", metric, strings.Join(fails, "\n  "))
	}
	return nil
}
