package bench

import (
	"fmt"

	"aiql/internal/storage"
	"aiql/internal/types"
)

// IngestDurable prices the durable ingest path for
// BenchmarkIngestWALVsMemory: it opens a fresh persistent store rooted at
// dir, ingests the dataset in `batches` equal event batches (entities ride
// with the first, matching how /ingest traffic arrives), and closes the
// store. syncEveryBatch selects the fsync-per-batch policy; false uses
// group commit, deferring syncs to Close — the two durability levels the
// daemon's -wal-sync flag exposes. Compare against the same batch loop
// over a plain in-memory store to isolate what the WAL costs.
func IngestDurable(dir string, ds *types.Dataset, syncEveryBatch bool, batches int) error {
	p, err := storage.OpenPersistent(dir, storage.PersistOptions{
		SyncEveryBatch:  syncEveryBatch,
		FlushInterval:   -1,
		CompactInterval: -1,
	})
	if err != nil {
		return err
	}
	defer p.Close()
	for _, b := range SplitBatches(ds, batches) {
		if err := p.Ingest(b); err != nil {
			return fmt.Errorf("bench: durable ingest: %w", err)
		}
	}
	return p.Close()
}

// IngestMemory is the baseline: the same batch loop into a plain
// in-memory store.
func IngestMemory(ds *types.Dataset, batches int) {
	st := storage.New(storage.Options{})
	for _, b := range SplitBatches(ds, batches) {
		st.Ingest(b)
	}
}

// SplitBatches cuts a dataset into n event batches, entities in the
// first — the shape both ingest benchmarks and the recovery tests feed.
func SplitBatches(ds *types.Dataset, n int) []*types.Dataset {
	if n < 1 {
		n = 1
	}
	per := (len(ds.Events) + n - 1) / n
	if per == 0 {
		per = 1
	}
	var out []*types.Dataset
	for i := 0; i < len(ds.Events); i += per {
		end := i + per
		if end > len(ds.Events) {
			end = len(ds.Events)
		}
		b := &types.Dataset{Events: ds.Events[i:end]}
		if i == 0 {
			b.Entities = ds.Entities
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		out = []*types.Dataset{{Entities: ds.Entities}}
	}
	return out
}
