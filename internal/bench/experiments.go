package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"aiql/internal/concise"
	"aiql/internal/gen"
	"aiql/internal/queries"
	"aiql/internal/types"
)

// fmtSecs renders a duration in seconds with the paper's precision.
func fmtSecs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

func fmtTiming(t Timing) string {
	if t.TimedOut {
		return ">budget"
	}
	return fmtSecs(t.Elapsed)
}

// Table3 reproduces paper Table 3: aggregate statistics for the case-study
// investigation — per attack step, the number of (multievent) queries, the
// number of event patterns, and the total investigation time per system.
func Table3(w io.Writer, ds *types.Dataset) []Timing {
	runners := EndToEnd(ds)
	cs := CaseStudy()
	var all []Timing
	fmt.Fprintf(w, "Table 3: Aggregate statistics for case study\n")
	fmt.Fprintf(w, "%-6s %-10s %-14s %12s %15s %12s\n",
		"Step", "# Queries", "# Evt Patterns", "AIQL (s)", "PostgreSQL (s)", "Neo4j (s)")
	totalQ, totalP := 0, 0
	totals := map[string]time.Duration{}
	timeouts := map[string]int{}
	for _, step := range queries.Steps {
		var stepQ []queries.Query
		for _, q := range cs {
			if q.Group == step && !q.Anomaly {
				stepQ = append(stepQ, q)
			}
		}
		patterns := 0
		stepTime := map[string]time.Duration{}
		stepTimeouts := map[string]int{}
		for _, q := range stepQ {
			patterns += q.Patterns
			for _, r := range runners {
				t := Run(r, q)
				all = append(all, t)
				stepTime[r.Name] += t.Elapsed
				totals[r.Name] += t.Elapsed
				if t.TimedOut {
					stepTimeouts[r.Name]++
					timeouts[r.Name]++
				}
			}
		}
		totalQ += len(stepQ)
		totalP += patterns
		fmt.Fprintf(w, "%-6s %-10d %-14d %12s %15s %12s\n",
			step, len(stepQ), patterns,
			stepCell(stepTime[SysAIQL], stepTimeouts[SysAIQL]),
			stepCell(stepTime[SysPostgres], stepTimeouts[SysPostgres]),
			stepCell(stepTime[SysNeo4j], stepTimeouts[SysNeo4j]))
	}
	fmt.Fprintf(w, "%-6s %-10d %-14d %12s %15s %12s\n",
		"All", totalQ, totalP,
		stepCell(totals[SysAIQL], timeouts[SysAIQL]),
		stepCell(totals[SysPostgres], timeouts[SysPostgres]),
		stepCell(totals[SysNeo4j], timeouts[SysNeo4j]))
	if totals[SysAIQL] > 0 {
		fmt.Fprintf(w, "Speedup of AIQL: %.1fx over PostgreSQL, %.1fx over Neo4j\n",
			totals[SysPostgres].Seconds()/totals[SysAIQL].Seconds(),
			totals[SysNeo4j].Seconds()/totals[SysAIQL].Seconds())
	}
	return all
}

func stepCell(d time.Duration, timeouts int) string {
	s := fmtSecs(d)
	if timeouts > 0 {
		s += fmt.Sprintf("(+%dTO)", timeouts)
	}
	return s
}

// CaseStudy returns the multievent case-study queries in investigation
// order (c1..c5 as the paper's Fig. 5 x-axis orders them).
func CaseStudy() []queries.Query { return queries.CaseStudy() }

// Fig5 reproduces paper Fig. 5: per-query log10 execution time for the 26
// multievent case-study queries across AIQL, PostgreSQL and Neo4j.
func Fig5(w io.Writer, ds *types.Dataset) []Timing {
	runners := EndToEnd(ds)
	var all []Timing
	fmt.Fprintf(w, "Fig 5: Log10-transformed query execution time (seconds)\n")
	fmt.Fprintf(w, "%-7s %10s %12s %10s   %10s %12s %10s\n",
		"Query", "AIQL(s)", "Postgres(s)", "Neo4j(s)", "log10", "log10", "log10")
	for _, q := range CaseStudy() {
		if q.Anomaly {
			continue
		}
		row := map[string]Timing{}
		for _, r := range runners {
			t := Run(r, q)
			all = append(all, t)
			row[r.Name] = t
		}
		fmt.Fprintf(w, "%-7s %10s %12s %10s   %10.2f %12.2f %10.2f\n",
			q.ID,
			fmtTiming(row[SysAIQL]), fmtTiming(row[SysPostgres]), fmtTiming(row[SysNeo4j]),
			log10s(row[SysAIQL]), log10s(row[SysPostgres]), log10s(row[SysNeo4j]))
	}
	return all
}

func log10s(t Timing) float64 {
	s := t.Elapsed.Seconds()
	if s <= 0 {
		s = 1e-6
	}
	return math.Log10(s)
}

// Fig6 reproduces paper Fig. 6: the 19 behaviour queries under PostgreSQL
// scheduling, AIQL fetch-and-filter, and AIQL relationship-based
// scheduling, all on the same single-node optimized storage.
func Fig6(w io.Writer, ds *types.Dataset) []Timing {
	runners := SingleNode(ds)
	return behaviorTable(w, "Fig 6: scheduling on single-node storage (seconds)", runners)
}

// Fig7 reproduces paper Fig. 7: the 19 behaviour queries under Greenplum
// scheduling vs AIQL scheduling on 5-segment MPP storage.
func Fig7(w io.Writer, ds *types.Dataset) []Timing {
	runners := Parallel(ds, 5)
	return behaviorTable(w, "Fig 7: scheduling on parallel (MPP) storage (seconds)", runners)
}

func behaviorTable(w io.Writer, title string, runners []Runner) []Timing {
	var all []Timing
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-28s %-5s", "Behavior group", "ID")
	for _, r := range runners {
		fmt.Fprintf(w, " %14s", r.Name)
	}
	fmt.Fprintln(w)
	totals := make(map[string]time.Duration, len(runners))
	for _, g := range queries.BehaviorGroups {
		for _, q := range queries.Behaviors() {
			if q.Group != g {
				continue
			}
			fmt.Fprintf(w, "%-28s %-5s", queries.GroupTitle(g), q.ID)
			for _, r := range runners {
				t := Run(r, q)
				all = append(all, t)
				totals[r.Name] += t.Elapsed
				fmt.Fprintf(w, " %14s", fmtTiming(t))
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "%-28s %-5s", "Total", "")
	for _, r := range runners {
		fmt.Fprintf(w, " %14s", fmtSecs(totals[r.Name]))
	}
	fmt.Fprintln(w)
	base := runners[0].Name
	last := runners[len(runners)-1].Name
	if totals[last] > 0 {
		fmt.Fprintf(w, "Average speedup of %s over %s: %.1fx\n",
			last, base, totals[base].Seconds()/totals[last].Seconds())
	}
	return all
}

// Fig8 reproduces paper Fig. 8: conciseness metrics per behaviour for AIQL,
// SQL, Neo4j Cypher and Splunk SPL. Anomaly queries (s5, s6) have no
// SQL/Cypher/SPL equivalents, as in the paper.
func Fig8(w io.Writer) []concise.Comparison {
	var cmps []concise.Comparison
	fmt.Fprintf(w, "Fig 8: conciseness (constraints / words / characters)\n")
	fmt.Fprintf(w, "%-5s %18s %18s %18s %18s\n", "ID", "AIQL", "SQL", "Cypher", "SPL")
	for _, q := range queries.Behaviors() {
		c, err := concise.Measure(q.ID, q.Src)
		if err != nil {
			fmt.Fprintf(w, "%-5s measurement error: %v\n", q.ID, err)
			continue
		}
		cmps = append(cmps, c)
		fmt.Fprintf(w, "%-5s %18s %18s %18s %18s\n", q.ID,
			metricCell(&c.AIQL), metricCell(c.SQL), metricCell(c.Cypher), metricCell(c.SPL))
	}
	return cmps
}

func metricCell(m *concise.Metrics) string {
	if m == nil {
		return "n/a"
	}
	return fmt.Sprintf("%d / %d / %d", m.Constraints, m.Words, m.Chars)
}

// Table5 reproduces paper Table 5: average conciseness improvement of AIQL
// over each target language.
func Table5(w io.Writer, cmps []concise.Comparison) {
	fmt.Fprintf(w, "Table 5: Conciseness improvement statistics\n")
	fmt.Fprintf(w, "%-18s %12s %14s %16s\n", "Metrics", "AIQL/SQL", "AIQL/Cypher", "AIQL/Splunk SPL")
	sqlR := concise.Average(cmps, func(c concise.Comparison) *concise.Metrics { return c.SQL })
	cyR := concise.Average(cmps, func(c concise.Comparison) *concise.Metrics { return c.Cypher })
	splR := concise.Average(cmps, func(c concise.Comparison) *concise.Metrics { return c.SPL })
	fmt.Fprintf(w, "%-18s %11.1fx %13.1fx %15.1fx\n", "# of constraints", sqlR.Constraints, cyR.Constraints, splR.Constraints)
	fmt.Fprintf(w, "%-18s %11.1fx %13.1fx %15.1fx\n", "# of words", sqlR.Words, cyR.Words, splR.Words)
	fmt.Fprintf(w, "%-18s %11.1fx %13.1fx %15.1fx\n", "# of characters", sqlR.Chars, cyR.Chars, splR.Chars)
}

// Table4 reproduces paper Table 4: the malware sample inventory, enriched
// with the workstation each sample was executed on.
func Table4(w io.Writer) {
	fmt.Fprintf(w, "Table 4: Selected malware samples from Virussign\n")
	fmt.Fprintf(w, "%-4s %-34s %-15s %s\n", "ID", "Name", "Category", "Agent")
	for i, s := range gen.MalwareSamples {
		fmt.Fprintf(w, "%-4s %-34s %-15s %d\n", s.ID, s.Name, s.Category, gen.MalwareAgent(i))
	}
}

// GroupTimings aggregates timings per system, sorted by system name — a
// convenience for tests and reports.
func GroupTimings(ts []Timing) map[string]time.Duration {
	out := map[string]time.Duration{}
	for _, t := range ts {
		out[t.System] += t.Elapsed
	}
	return out
}

// Systems lists the distinct systems present in a timing set, sorted.
func Systems(ts []Timing) []string {
	set := map[string]bool{}
	for _, t := range ts {
		set[t.System] = true
	}
	var out []string
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
