//go:build unix

package storage

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps the first size bytes of f read-only. The returned bool
// reports whether the bytes are a true mapping (and must eventually go back
// through unmapFile) or an ordinary heap copy.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	if size == 0 {
		return nil, false, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, fmt.Errorf("storage: mmap %s: %w", f.Name(), err)
	}
	return b, true, nil
}

func unmapFile(b []byte) error { return syscall.Munmap(b) }
