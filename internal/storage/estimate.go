package storage

import (
	"sort"

	"aiql/internal/types"
)

// Estimate predicts how many events a data query would match, without
// scanning: candidate entity sets are resolved through the hash indexes
// (or typed entity tables) exactly as a scan would, and the per-partition
// posting lists give the match count upper bound; unconstrained patterns
// fall back to the window-clipped partition sizes.
//
// This implements the paper's Sec. 7 improvement to the scheduler:
// "considering the number of records in different hosts and different time
// periods and constructing a statistical model of constraint pruning
// power" — the engine's StatsScoring option ranks event patterns by this
// estimate instead of by constraint count.
// Engine executions pin one Snapshot per run and estimate through it
// directly (Snapshot.Estimate); this Store-level form exists for external
// callers holding only the store, and simply takes its own short-lived
// snapshot — which also performs any deferred re-sort the estimate's
// binary searches depend on.
func (s *Store) Estimate(q *DataQuery) int {
	snap := s.Snapshot()
	defer snap.Close()
	return snap.Estimate(q)
}

// Estimate is the snapshot-level estimator; engines executing against a
// Snapshot backend (one snapshot per request) use it for StatsScoring.
func (sn *Snapshot) Estimate(q *DataQuery) int {
	subjCand := sn.candidateSet(q.SubjType, q.SubjPred, q.SubjAllowed)
	objCand := sn.candidateSet(q.ObjType, q.ObjPred, q.ObjAllowed)
	if (subjCand != nil && len(subjCand) == 0) || (objCand != nil && len(objCand) == 0) {
		return 0
	}
	parts := sn.selectPartitions(q)
	total := 0
	for _, p := range parts {
		// Cold (columnar) runs contribute their directory-level row counts
		// for overlapping windows — no meta or block decode, so estimates
		// stay deterministic regardless of scan history.
		total += coldEstimate(p, q.Window)
		lo, hi := p.timeRange(q.Window)
		if lo >= hi {
			continue
		}
		span := hi - lo
		est := span
		// The tighter of the two posting-list sums bounds the matches.
		if n, ok := postingEstimate(p.bySubject, subjCand, span); ok && n < est {
			est = n
		}
		if n, ok := postingEstimate(p.byObject, objCand, span); ok && n < est {
			est = n
		}
		total += est
	}
	return total
}

// postingEstimate sums posting-list lengths for a candidate set, clipped to
// the window span. Large candidate sets are sampled rather than walked.
func postingEstimate(lists map[types.EntityID][]int32, cand map[types.EntityID]struct{}, span int) (int, bool) {
	if cand == nil {
		return 0, false
	}
	const sampleLimit = 256
	if len(cand) <= sampleLimit {
		n := 0
		for id := range cand {
			n += len(lists[id])
		}
		if n > span {
			n = span
		}
		return n, true
	}
	// Sample a prefix of the candidate ids (map order is effectively
	// arbitrary but sampling only needs a representative subset; sort the
	// sampled ids so the estimate is deterministic for a given store).
	ids := make([]types.EntityID, 0, sampleLimit)
	for id := range cand {
		ids = append(ids, id)
		if len(ids) == sampleLimit {
			break
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	n := 0
	for _, id := range ids {
		n += len(lists[id])
	}
	n = n * len(cand) / sampleLimit
	if n > span {
		n = span
	}
	return n, true
}
