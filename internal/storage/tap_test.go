package storage

import (
	"sync"
	"testing"

	"aiql/internal/types"
	"aiql/internal/wal"
)

// TestIngestObserverSeesBatchesInOrder drives concurrent ingest through a
// tapped store and asserts the observer contract: every batch is observed
// exactly once, post-apply, with strictly increasing generations, and the
// store already contains the batch when the observer runs.
func TestIngestObserverSeesBatchesInOrder(t *testing.T) {
	st := New(Options{})
	var mu sync.Mutex
	var gens []uint64
	var events int
	st.SetIngestObserver(func(d *types.Dataset, gen uint64) {
		mu.Lock()
		defer mu.Unlock()
		gens = append(gens, gen)
		events += len(d.Events)
		// Post-apply: the store must already hold at least the observed
		// events (never fewer — the batch applied before the call).
		if st.EventCount() < events {
			t.Errorf("observer ran pre-apply: store has %d events, observed %d", st.EventCount(), events)
		}
	})

	const workers, batches = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				id := types.EntityID(1 + w*batches + b)
				st.Ingest(types.NewDataset(
					[]types.Entity{
						{ID: id, Type: types.EntityProcess, AgentID: w, Attrs: map[string]string{types.AttrExeName: "/bin/x"}},
						{ID: id + 10000, Type: types.EntityFile, AgentID: w, Attrs: map[string]string{types.AttrName: "/tmp/y"}},
					},
					[]types.Event{{ID: types.EventID(id), AgentID: w, Subject: id, Object: id + 10000, Op: types.OpRead, Start: int64(b) * 1000}},
				))
			}
		}(w)
	}
	wg.Wait()

	if len(gens) != workers*batches {
		t.Fatalf("observed %d batches, ingested %d", len(gens), workers*batches)
	}
	for i := 1; i < len(gens); i++ {
		if gens[i] <= gens[i-1] {
			t.Fatalf("generations out of order at %d: %d then %d", i, gens[i-1], gens[i])
		}
	}
	if events != workers*batches {
		t.Errorf("observed %d events, ingested %d", events, workers*batches)
	}
}

// TestIngestObserverSingleRecordPaths covers AddEvent/AddEntity tapping.
func TestIngestObserverSingleRecordPaths(t *testing.T) {
	st := New(Options{})
	var seen []string
	st.SetIngestObserver(func(d *types.Dataset, gen uint64) {
		if len(d.Entities) == 1 {
			seen = append(seen, "entity")
		}
		if len(d.Events) == 1 {
			seen = append(seen, "event")
		}
	})
	st.AddEntity(&types.Entity{ID: 1, Type: types.EntityProcess, AgentID: 1})
	st.AddEntity(&types.Entity{ID: 2, Type: types.EntityFile, AgentID: 1})
	st.AddEvent(&types.Event{ID: 1, AgentID: 1, Subject: 1, Object: 2, Op: types.OpWrite})
	if len(seen) != 3 || seen[0] != "entity" || seen[1] != "entity" || seen[2] != "event" {
		t.Fatalf("observer saw %v, want [entity entity event]", seen)
	}
	// Removing the observer stops notifications.
	st.SetIngestObserver(nil)
	st.AddEvent(&types.Event{ID: 2, AgentID: 1, Subject: 1, Object: 2, Op: types.OpRead})
	if len(seen) != 3 {
		t.Fatalf("observer ran after removal: %v", seen)
	}
}

// TestIngestObserverFiresUnderDurableIngest asserts the durable path routes
// through the tap with the same batch boundary the WAL uses: one
// notification per acknowledged Ingest, in journal order.
func TestIngestObserverFiresUnderDurableIngest(t *testing.T) {
	p, err := OpenPersistent(t.TempDir(), PersistOptions{
		FlushInterval:   -1,
		CompactInterval: -1,
		WAL:             wal.Options{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var batches int
	p.Store.SetIngestObserver(func(d *types.Dataset, gen uint64) { batches++ })
	for i := 0; i < 3; i++ {
		id := types.EntityID(100 + i)
		err := p.Ingest(types.NewDataset(
			[]types.Entity{{ID: id, Type: types.EntityProcess, AgentID: 1}},
			[]types.Event{{ID: types.EventID(i + 1), AgentID: 1, Subject: id, Object: id, Op: types.OpStart, Start: int64(i)}},
		))
		if err != nil {
			t.Fatal(err)
		}
	}
	if batches != 3 {
		t.Fatalf("observer saw %d batches, durable path acknowledged 3", batches)
	}
}
