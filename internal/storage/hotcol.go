package storage

import (
	"context"

	"aiql/internal/pred"
	"aiql/internal/types"
)

// Hot columnar shadows: the in-memory mirror of the v2/v3 segment layout,
// giving hot partitions the same batch-at-a-time scan path cold runs get.
//
// A hotShadow is a lazily built columnar copy of a prefix of one
// partition's event array — per-attribute int64 columns, op bytes, and
// subject/object columns holding u32 indexes into a per-partition entity
// dictionary (first-seen order, so extension never reorders). It is pinned
// to the exact backing array it was built from: shadows are built only from
// snapshot-captured arrays, which the store has marked eventsShared, so any
// re-sort copies the array rather than reordering it in place — a shadow's
// source rows can therefore never change under it, only become unreachable
// from the live partition. Staleness is detected by base-pointer identity
// (and the base pointer keeps the old array alive, so the address can never
// be recycled while a shadow still references it); sortDirtyLocked and
// thawLocked additionally drop the shadow eagerly.
//
// Shadows grow in place: extending from n to n' writes only rows [n, n'),
// which no published reader indexes (readers hold the previous struct,
// whose row count is n), so builders and scanners need no common lock —
// builders serialize on partition.shadowMu and publish via an atomic
// pointer.
//
// The payoff is scanHot: instead of per-event interface calls through
// Pred.Eval and two entity-map lookups per row, entity predicates are
// evaluated once per referenced dictionary entry (entities are immutable,
// so the verdict cannot change within a scan) into verdict bitmaps, event
// predicates run through the vectorized kernel in 1024-row batches, and the
// per-row residue is an op-set test plus two bit probes.

// hotShadowMinRows is the smallest hot row range worth shadowing: below it
// the per-event path wins on build cost alone.
const hotShadowMinRows = 256

// hotShadowChunk is the batch granularity of scanHot — one kernel
// invocation and one cancellation check per chunk, mirroring the cold
// path's block size.
const hotShadowChunk = 1024

// hotShadow is a columnar view over events[0:n] of one partition's backing
// array. All exported-to-reader state is immutable once published; slot is
// writer-owned (guarded by partition.shadowMu).
type hotShadow struct {
	base *types.Event // identity of (and liveness pin for) the source array
	n    int

	starts  []int64
	ends    []int64
	ids     []int64
	seqs    []int64
	amounts []int64
	fails   []int64
	agents  []int64
	subj    []uint32
	obj     []uint32
	ops     []types.Op

	dict []types.EntityID          // first-seen order; index = column value
	slot map[types.EntityID]uint32 // writer-owned
}

// shadowFor returns a shadow covering at least events[0:need] of the given
// snapshot-captured array, building or extending the partition's shadow as
// required. Returns nil only if events is empty.
func (p *partition) shadowFor(events []types.Event, need int) *hotShadow {
	if len(events) == 0 {
		return nil
	}
	if sh := p.shadow.Load(); sh != nil && sh.base == &events[0] && sh.n >= need {
		return sh
	}
	p.shadowMu.Lock()
	defer p.shadowMu.Unlock()
	cur := p.shadow.Load()
	if cur != nil && cur.base == &events[0] && cur.n >= need {
		return cur
	}
	var next *hotShadow
	if cur != nil && cur.base == &events[0] {
		next = cur.extend(events)
	} else {
		next = buildShadow(events)
	}
	p.shadow.Store(next)
	return next
}

// buildShadow constructs a fresh shadow over the whole captured prefix.
func buildShadow(events []types.Event) *hotShadow {
	sh := &hotShadow{
		base: &events[0],
		slot: make(map[types.EntityID]uint32),
	}
	return sh.extend(events)
}

// extend returns a shadow covering events[0:len(events)], reusing sh's
// column storage where capacity allows. Rows [sh.n, len(events)) are
// written into spare capacity that no published reader indexes; when a
// column must grow, the filled prefix is copied (concurrent readers of the
// old columns see only immutable data either way).
func (sh *hotShadow) extend(events []types.Event) *hotShadow {
	n := len(events)
	next := &hotShadow{
		base: sh.base,
		n:    n,
		dict: sh.dict,
		slot: sh.slot,
	}
	next.starts = growInt64(sh.starts, sh.n, n)
	next.ends = growInt64(sh.ends, sh.n, n)
	next.ids = growInt64(sh.ids, sh.n, n)
	next.seqs = growInt64(sh.seqs, sh.n, n)
	next.amounts = growInt64(sh.amounts, sh.n, n)
	next.fails = growInt64(sh.fails, sh.n, n)
	next.agents = growInt64(sh.agents, sh.n, n)
	next.subj = growUint32(sh.subj, sh.n, n)
	next.obj = growUint32(sh.obj, sh.n, n)
	next.ops = growOps(sh.ops, sh.n, n)
	for i := sh.n; i < n; i++ {
		ev := &events[i]
		next.starts[i] = ev.Start
		next.ends[i] = ev.End
		next.ids[i] = int64(ev.ID)
		next.seqs[i] = int64(ev.Seq)
		next.amounts[i] = ev.Amount
		next.fails[i] = int64(ev.FailCode)
		next.agents[i] = int64(ev.AgentID)
		next.subj[i] = next.slotFor(ev.Subject)
		next.obj[i] = next.slotFor(ev.Object)
		next.ops[i] = ev.Op
	}
	return next
}

func (sh *hotShadow) slotFor(id types.EntityID) uint32 {
	if s, ok := sh.slot[id]; ok {
		return s
	}
	s := uint32(len(sh.dict))
	sh.dict = append(sh.dict, id)
	sh.slot[id] = s
	return s
}

func growInt64(col []int64, filled, n int) []int64 {
	if cap(col) >= n {
		return col[:n]
	}
	grown := make([]int64, n, 2*n)
	copy(grown, col[:filled])
	return grown
}

func growUint32(col []uint32, filled, n int) []uint32 {
	if cap(col) >= n {
		return col[:n]
	}
	grown := make([]uint32, n, 2*n)
	copy(grown, col[:filled])
	return grown
}

func growOps(col []types.Op, filled, n int) []types.Op {
	if cap(col) >= n {
		return col[:n]
	}
	grown := make([]types.Op, n, 2*n)
	copy(grown, col[:filled])
	return grown
}

// shadowChunk adapts one row range of a shadow to pred.ColumnSource for the
// vectorized kernel.
type shadowChunk struct {
	sh     *hotShadow
	lo, hi int
}

// NumRows implements pred.ColumnSource.
func (c *shadowChunk) NumRows() int { return c.hi - c.lo }

// Int64Column implements pred.ColumnSource.
func (c *shadowChunk) Int64Column(attr string) ([]int64, bool) {
	switch attr {
	case types.EvtAttrAmount:
		return c.sh.amounts[c.lo:c.hi], true
	case types.EvtAttrFailCode:
		return c.sh.fails[c.lo:c.hi], true
	case types.EvtAttrSeq:
		return c.sh.seqs[c.lo:c.hi], true
	case types.EvtAttrStart:
		return c.sh.starts[c.lo:c.hi], true
	case types.EvtAttrEnd:
		return c.sh.ends[c.lo:c.hi], true
	case types.AttrAgentID:
		return c.sh.agents[c.lo:c.hi], true
	case types.AttrID:
		return c.sh.ids[c.lo:c.hi], true
	}
	return nil, false
}

// OpColumn implements pred.ColumnSource.
func (c *shadowChunk) OpColumn() ([]types.Op, bool) { return c.sh.ops[c.lo:c.hi], true }

// entityVerdicts evaluates one side's entity checks once per dictionary
// entry referenced in rows [lo, hi), mirroring scanPartition's check()
// exactly: the entity must exist, match the type filter, and pass the
// candidate-set membership test (when a candidate set exists) or the
// predicate (when it does not). ents is filled with the resolved entity for
// every referenced slot so matching rows need no map lookup.
func (sn *Snapshot) entityVerdicts(sh *hotShadow, col []uint32, lo, hi int, t types.EntityType, p pred.Pred, cand map[types.EntityID]struct{}, ents []*types.Entity) pred.Bitmap {
	nd := len(sh.dict)
	used := pred.NewBitmap(nd)
	for i := lo; i < hi; i++ {
		used.Set(int(col[i]))
	}
	verdict := pred.NewBitmap(nd)
	used.ForEach(nd, func(di int) bool {
		e := sn.entities[sh.dict[di]]
		if e == nil {
			return true
		}
		ents[di] = e
		if t != types.EntityInvalid && e.Type != t {
			return true
		}
		if cand != nil {
			if _, ok := cand[sh.dict[di]]; !ok {
				return true
			}
		} else if p != nil && !p.Eval(e) {
			return true
		}
		verdict.Set(di)
		return true
	})
	return verdict
}

// scanHot scans rows [lo, hi) of a hot partition through its columnar
// shadow: entity predicates collapse to per-dictionary verdict bitmaps,
// event predicates run through the vectorized kernel per chunk, and each
// row costs an op-set test plus two bit probes. Returns false when no
// shadow is available (caller falls back to the per-event loop); emits are
// row-identical to that loop by construction.
func (sn *Snapshot) scanHot(ctx context.Context, p *partView, q *DataQuery, subjCand, objCand map[types.EntityID]struct{}, lo, hi int, emit func(Match) bool) bool {
	sh := p.host.shadowFor(p.events, hi)
	if sh == nil {
		return false
	}
	stats := &sn.store.scanStats

	ents := make([]*types.Entity, len(sh.dict))
	subjV := sn.entityVerdicts(sh, sh.subj, lo, hi, q.SubjType, q.SubjPred, subjCand, ents)
	objV := sn.entityVerdicts(sh, sh.obj, lo, hi, q.ObjType, q.ObjPred, objCand, ents)
	stats.dictVerdictHits.Add(int64(hi - lo))

	var sel pred.Bitmap
	if q.EvtPred != nil {
		sel = pred.NewBitmap(hotShadowChunk)
	}
	for clo := lo; clo < hi; clo += hotShadowChunk {
		chi := clo + hotShadowChunk
		if chi > hi {
			chi = hi
		}
		if ctx.Err() != nil {
			return true
		}
		stats.hotBatches.Add(1)
		evtVec := false
		if q.EvtPred != nil {
			chunk := shadowChunk{sh: sh, lo: clo, hi: chi}
			// BatchEval requires out sized exactly to the chunk's rows.
			evtVec = pred.BatchEval(q.EvtPred, &chunk, sel[:(chi-clo+63)/64])
		}
		for i := clo; i < chi; i++ {
			if evtVec && !sel.Get(i-clo) {
				continue
			}
			if !q.Ops.Contains(sh.ops[i]) {
				continue
			}
			sdi, odi := sh.subj[i], sh.obj[i]
			if !subjV.Get(int(sdi)) || !objV.Get(int(odi)) {
				continue
			}
			ev := &p.events[i]
			if q.EvtPred != nil && !evtVec && !q.EvtPred.Eval(ev) {
				continue
			}
			if !emit(Match{Event: ev, Subj: ents[sdi], Obj: ents[odi]}) {
				return true
			}
		}
	}
	return true
}
