package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"aiql/internal/types"
)

// Replicated ingest: idempotent apply by (epoch, shard, seq).
//
// The cluster coordinator writes every home-shard batch to a primary and a
// replica worker, and a recovering replica catches up by pulling the
// primary's WAL over HTTP. Both paths can deliver the same batch more than
// once — a coordinator retry after a transient error, a catch-up re-pull
// after a truncated ship — so each batch carries a replication tag and the
// store remembers which tags it has applied: a re-delivered batch is a
// no-op, not a duplicate.
//
// The tag's epoch is a nonce minted per coordinator process, so sequence
// numbers from a restarted coordinator can never collide with an earlier
// life's; within an epoch the coordinator assigns a dense per-shard
// sequence. Applied tags are tracked as a watermark plus a sparse set of
// applied sequences above it — a gap (one copy's POST failed while later
// batches landed) keeps the watermark low and the set sparse until catch-up
// fills it.
//
// Durability: tags ride inside the WAL record payload (a sentinel-marked
// extension of the batch codec), so recovery replay rebuilds the dedup
// state. Compaction folds records into segments, which do not carry tags —
// the compactor therefore snapshots the replication state into a sidecar
// file (repl-state.json) before deleting consumed WAL files, and recovery
// loads the sidecar before replaying the WAL suffix.

// ReplTag identifies one replicated ingest batch.
type ReplTag struct {
	// Epoch is the coordinator's per-process nonce.
	Epoch string `json:"epoch"`
	// Shard is the logical home shard the batch belongs to.
	Shard int `json:"shard"`
	// Seq is the coordinator's per-(epoch, shard) batch sequence, from 1.
	Seq uint64 `json:"seq"`
}

func (t ReplTag) String() string {
	return fmt.Sprintf("%s/%d/%d", t.Epoch, t.Shard, t.Seq)
}

// replKey addresses one (epoch, shard) replication stream.
type replKey struct {
	epoch string
	shard int
}

// replShard is the applied-set for one (epoch, shard) stream: every seq in
// [1, watermark] is applied, plus the sparse set above the watermark.
type replShard struct {
	watermark uint64
	sparse    map[uint64]struct{}
}

func (rs *replShard) applied(seq uint64) bool {
	if seq <= rs.watermark {
		return true
	}
	_, ok := rs.sparse[seq]
	return ok
}

func (rs *replShard) record(seq uint64) {
	if seq <= rs.watermark {
		return
	}
	if seq == rs.watermark+1 {
		rs.watermark = seq
		// Absorb any contiguous run the gap's fill just connected.
		for {
			if _, ok := rs.sparse[rs.watermark+1]; !ok {
				break
			}
			delete(rs.sparse, rs.watermark+1)
			rs.watermark++
		}
		return
	}
	if rs.sparse == nil {
		rs.sparse = make(map[uint64]struct{})
	}
	rs.sparse[seq] = struct{}{}
}

// ReplShardState is the externally visible applied-set of one (epoch,
// shard) stream — reported in /stats and shipped to catch-up peers so a
// requester can prove it now covers everything the peer applied.
type ReplShardState struct {
	Epoch     string   `json:"epoch"`
	Shard     int      `json:"shard"`
	Watermark uint64   `json:"watermark"`
	Sparse    []uint64 `json:"sparse,omitempty"`
}

// Covers reports whether local covers every sequence peer has applied.
func (local ReplShardState) Covers(peer ReplShardState) bool {
	inLocal := func(seq uint64) bool {
		if seq <= local.Watermark {
			return true
		}
		for _, s := range local.Sparse {
			if s == seq {
				return true
			}
		}
		return false
	}
	for seq := local.Watermark + 1; seq <= peer.Watermark; seq++ {
		if !inLocal(seq) {
			return false
		}
	}
	for _, s := range peer.Sparse {
		if !inLocal(s) {
			return false
		}
	}
	return true
}

// ReplStats is the /stats replication block of one store.
type ReplStats struct {
	// Applied counts tagged batches applied; Duplicates counts tagged
	// batches skipped because their tag was already applied (coordinator
	// retries, catch-up overlap).
	Applied    uint64           `json:"applied"`
	Duplicates uint64           `json:"duplicates"`
	Shards     []ReplShardState `json:"shards,omitempty"`
}

// IngestTagged applies one replicated batch exactly once: if the tag was
// already applied the batch is skipped and false is returned. quiet
// suppresses the ingest observer — replica-role and catch-up ingests must
// not feed standing rules, or a rule would fire once per copy of the data.
func (s *Store) IngestTagged(tag ReplTag, d *types.Dataset, quiet bool) bool {
	s.tapMu.Lock()
	defer s.tapMu.Unlock()
	if s.replAppliedLocked(tag) {
		return false
	}
	gen := s.applyBatch(d)
	s.replRecord(tag)
	s.replMu.Lock()
	s.replApplied++
	s.replMu.Unlock()
	if !quiet && s.obs != nil {
		s.obs(d, gen)
	}
	return true
}

// replAppliedLocked reports whether the tag is already applied, counting a
// duplicate when it is. Callers hold tapMu (or the persistent store's
// walMu, which serializes all tagged ingest on a durable store).
func (s *Store) replAppliedLocked(tag ReplTag) bool {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if rs, ok := s.repl[replKey{tag.Epoch, tag.Shard}]; ok && rs.applied(tag.Seq) {
		s.replDuplicates++
		return true
	}
	return false
}

// replRecord marks the tag applied. Recovery's tag scan also calls it, so
// it deliberately does not touch the applied counter — only live tagged
// ingests count there.
func (s *Store) replRecord(tag ReplTag) {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	if s.repl == nil {
		s.repl = make(map[replKey]*replShard)
	}
	rs, ok := s.repl[replKey{tag.Epoch, tag.Shard}]
	if !ok {
		rs = &replShard{}
		s.repl[replKey{tag.Epoch, tag.Shard}] = rs
	}
	rs.record(tag.Seq)
}

// ReplStats returns the store's replication applied-state and counters.
func (s *Store) ReplStats() ReplStats {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	out := ReplStats{Applied: s.replApplied, Duplicates: s.replDuplicates}
	for k, rs := range s.repl {
		st := ReplShardState{Epoch: k.epoch, Shard: k.shard, Watermark: rs.watermark}
		for seq := range rs.sparse {
			st.Sparse = append(st.Sparse, seq)
		}
		sort.Slice(st.Sparse, func(i, j int) bool { return st.Sparse[i] < st.Sparse[j] })
		out.Shards = append(out.Shards, st)
	}
	sort.Slice(out.Shards, func(i, j int) bool {
		a, b := out.Shards[i], out.Shards[j]
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		return a.Shard < b.Shard
	})
	return out
}

// ReplState returns the applied-set for one (epoch, shard) stream.
func (s *Store) ReplState(epoch string, shard int) ReplShardState {
	s.replMu.Lock()
	defer s.replMu.Unlock()
	st := ReplShardState{Epoch: epoch, Shard: shard}
	if rs, ok := s.repl[replKey{epoch, shard}]; ok {
		st.Watermark = rs.watermark
		for seq := range rs.sparse {
			st.Sparse = append(st.Sparse, seq)
		}
		sort.Slice(st.Sparse, func(i, j int) bool { return st.Sparse[i] < st.Sparse[j] })
	}
	return st
}

// DecodeBatchPayload parses an untagged batch payload — the wire form
// /walship ships and /catchup applies — into a dataset.
func DecodeBatchPayload(payload []byte) (*types.Dataset, error) {
	entities, events, err := decodeBatch(payload)
	if err != nil {
		return nil, err
	}
	return types.NewDataset(entities, events), nil
}

// taggedSentinel marks a WAL payload as tag-extended. An untagged payload
// opens with its entity count, and decodeBatch rejects any count larger
// than the payload itself — so the all-ones word can never open a valid
// untagged batch, and the two encodings are unambiguous.
const taggedSentinel = ^uint32(0)

// encodeTaggedBatch serializes a replicated ingest batch: the sentinel, the
// tag, then the standard batch payload.
func encodeTaggedBatch(tag ReplTag, entities []types.Entity, events []types.Event) []byte {
	buf := make([]byte, 0, 4+4+len(tag.Epoch)+16+8+len(events)*eventWireBytes+len(entities)*32)
	buf = binary.LittleEndian.AppendUint32(buf, taggedSentinel)
	buf = appendString(buf, tag.Epoch)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(tag.Shard)))
	buf = binary.LittleEndian.AppendUint64(buf, tag.Seq)
	return append(buf, encodeBatch(entities, events)...)
}

// decodeMaybeTagged parses a WAL payload in either encoding, returning a
// nil tag for plain batches.
func decodeMaybeTagged(payload []byte) (*ReplTag, []types.Entity, []types.Event, error) {
	if len(payload) < 4 || binary.LittleEndian.Uint32(payload) != taggedSentinel {
		entities, events, err := decodeBatch(payload)
		return nil, entities, events, err
	}
	d := &decoder{b: payload, off: 4}
	tag := &ReplTag{Epoch: d.str()}
	tag.Shard = int(int64(d.u64()))
	tag.Seq = d.u64()
	if d.err != nil {
		return nil, nil, nil, d.err
	}
	entities, events, err := decodeBatch(payload[d.off:])
	return tag, entities, events, err
}

// peekTag parses just the tag prefix of a payload, without decoding the
// batch — the cheap form recovery's tag scan uses.
func peekTag(payload []byte) *ReplTag {
	if len(payload) < 4 || binary.LittleEndian.Uint32(payload) != taggedSentinel {
		return nil
	}
	d := &decoder{b: payload, off: 4}
	tag := &ReplTag{Epoch: d.str()}
	tag.Shard = int(int64(d.u64()))
	tag.Seq = d.u64()
	if d.err != nil {
		return nil
	}
	return tag
}

// IngestTagged is the durable form of Store.IngestTagged: the tag travels
// inside the WAL record, so recovery rebuilds the applied-set. A duplicate
// tag is detected before journaling — a re-delivered batch costs neither a
// WAL record nor an fsync.
func (p *Persistent) IngestTagged(tag ReplTag, ds *types.Dataset, quiet bool) (bool, error) {
	if err := p.WarmUp(); err != nil {
		return false, err
	}
	if ep := p.syncErr.Load(); ep != nil {
		return false, fmt.Errorf("storage: WAL sync failed earlier, refusing new batches: %w", *ep)
	}
	payload := encodeTaggedBatch(tag, ds.Entities, ds.Events)
	p.walMu.Lock()
	if p.Store.replAppliedLocked(tag) {
		p.walMu.Unlock()
		return false, nil
	}
	if _, err := p.log.Append(payload); err != nil {
		p.walMu.Unlock()
		return false, err
	}
	if p.opts.SyncEveryBatch {
		if err := p.log.Sync(); err != nil {
			p.syncErr.Store(&err)
			p.walMu.Unlock()
			return false, fmt.Errorf("storage: WAL sync: %w (batch not acknowledged; it may still reappear after a restart)", err)
		}
	} else {
		p.dirty.Store(true)
	}
	p.Store.IngestTagged(tag, ds, quiet)
	p.walMu.Unlock()

	if _, bytes := p.log.Depth(); bytes >= p.opts.CompactThresholdBytes {
		select {
		case p.compactc <- struct{}{}:
		default:
		}
	}
	return true, nil
}

// ShipReplicated replays every tagged record still in the WAL whose shard
// is in the requested set, calling fn with the tag and the untagged batch
// payload — the wire form a catch-up peer applies through IngestTagged.
// Compaction is held off for the duration so WAL files cannot disappear
// mid-ship. Records folded into segments are not shippable; the caller
// compares the returned state (this store's applied-set for the requested
// shards) against what it received to detect that gap.
func (p *Persistent) ShipReplicated(shards map[int]bool, fn func(tag ReplTag, payload []byte) error) ([]ReplShardState, error) {
	p.compactMu.Lock()
	defer p.compactMu.Unlock()
	err := p.log.Replay(0, func(seq uint64, payload []byte) error {
		tag := peekTag(payload)
		if tag == nil || (shards != nil && !shards[tag.Shard]) {
			return nil
		}
		// Strip the tag prefix: 4 sentinel + 4 len + epoch + 8 shard + 8 seq.
		return fn(*tag, payload[4+4+len(tag.Epoch)+16:])
	})
	if err != nil {
		return nil, err
	}
	var states []ReplShardState
	for _, st := range p.Store.ReplStats().Shards {
		if shards == nil || shards[st.Shard] {
			states = append(states, st)
		}
	}
	return states, nil
}

// replSidecar is the JSON layout of repl-state.json.
type replSidecar struct {
	Shards []ReplShardState `json:"shards"`
}

func (p *Persistent) replSidecarPath() string {
	return filepath.Join(p.dir, "repl-state.json")
}

// saveReplSidecar snapshots the current applied-set to disk (atomic
// tmp+rename+fsync). Compact calls it after the segment rename and before
// deleting the consumed WAL files: tags of folded records would otherwise
// be lost, and a catch-up peer could re-apply their batches. The snapshot
// may also cover tags whose records are still in the WAL — harmless, since
// recovery's WAL replay applies by WAL sequence, not by tag.
func (p *Persistent) saveReplSidecar() error {
	sc := replSidecar{Shards: p.Store.ReplStats().Shards}
	if len(sc.Shards) == 0 {
		return nil
	}
	data, err := json.Marshal(&sc)
	if err != nil {
		return err
	}
	tmp := p.replSidecarPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: repl sidecar: %w", err)
	}
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: repl sidecar: %w", err)
	}
	if err := os.Rename(tmp, p.replSidecarPath()); err != nil {
		return fmt.Errorf("storage: repl sidecar: %w", err)
	}
	return nil
}

// loadReplSidecar seeds the applied-set from a prior compaction's snapshot.
// Runs at open, before the WAL tag scan and replay layer their own tags on
// top (replRecord is idempotent, so overlap is free).
func (p *Persistent) loadReplSidecar() error {
	data, err := os.ReadFile(p.replSidecarPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("storage: repl sidecar: %w", err)
	}
	var sc replSidecar
	if err := json.Unmarshal(data, &sc); err != nil {
		return fmt.Errorf("storage: repl sidecar: %w", err)
	}
	for _, st := range sc.Shards {
		p.Store.replMu.Lock()
		if p.Store.repl == nil {
			p.Store.repl = make(map[replKey]*replShard)
		}
		rs, ok := p.Store.repl[replKey{st.Epoch, st.Shard}]
		if !ok {
			rs = &replShard{}
			p.Store.repl[replKey{st.Epoch, st.Shard}] = rs
		}
		if st.Watermark > rs.watermark {
			rs.watermark = st.Watermark
		}
		for _, seq := range st.Sparse {
			rs.record(seq)
		}
		p.Store.replMu.Unlock()
	}
	return nil
}

// ingestRecovered applies one WAL record during recovery replay. Apply is
// unconditional — Replay already skips covered sequence numbers, and the
// tag dedup must not second-guess it (a tag present in the sidecar may
// belong to a record whose segment rename landed but whose WAL file
// survived; its data replays from neither, or from the WAL exactly once).
// The tag is recorded so future tagged ingests and catch-ups dedup against
// everything recovery restored.
func (s *Store) ingestRecovered(tag *ReplTag, d *types.Dataset) {
	s.tapMu.Lock()
	defer s.tapMu.Unlock()
	s.applyBatch(d)
	if tag != nil {
		s.replRecord(*tag)
	}
}
