//go:build !unix

package storage

import (
	"fmt"
	"os"
)

// mapFile on platforms without a memory-mapping syscall shim falls back to
// reading the whole file; the lazy per-block decode path works the same,
// only the paging economics differ.
func mapFile(f *os.File, size int64) ([]byte, bool, error) {
	b := make([]byte, size)
	if _, err := f.ReadAt(b, 0); err != nil {
		return nil, false, fmt.Errorf("storage: read %s: %w", f.Name(), err)
	}
	return b, false, nil
}

func unmapFile([]byte) error { return nil }
