package storage

import (
	"encoding/binary"
	"errors"
)

// Byte-oriented encoding primitives for the compressed (v3) segment block
// format: bounds-checked varint reading, fixed-width bit-packing for
// dictionary indexes and operation codes, and a small dependency-free
// LZ codec for the final byte stream. Everything here decodes defensively —
// a malformed input yields an error, never a panic or an unbounded
// allocation — because segment blocks are checksummed but the checksum is
// itself on-disk data the fuzzer mutates.

// errCodec reports a structurally malformed encoded block; callers wrap it
// into an ErrSegmentCorrupt via corruptf.
var errCodec = errors.New("malformed encoded block")

// zigzag maps signed deltas onto small unsigned varints.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// byteReader is a bounds-checked sequential reader over one encoded block.
// Errors latch: after the first malformed read every subsequent read
// returns zero and the caller checks err once at the end.
type byteReader struct {
	buf []byte
	off int
	err bool
}

func (r *byteReader) uvarint() uint64 {
	if r.err {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.err = true
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) svarint() int64 { return unzigzag(r.uvarint()) }

// done reports whether the reader consumed its buffer exactly, with no
// malformed read along the way.
func (r *byteReader) done() bool { return !r.err && r.off == len(r.buf) }

// appendPacked appends vals (each offset by -base) as width-bit
// little-endian codes. width 0 appends nothing: every value equals base.
func appendPacked(dst []byte, vals []uint32, base uint32, width int) []byte {
	if width == 0 {
		return dst
	}
	var acc uint64
	accBits := 0
	for _, v := range vals {
		acc |= uint64(v-base) << accBits
		accBits += width
		for accBits >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			accBits -= 8
		}
	}
	if accBits > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// unpack reads n width-bit codes into out, adding base back. Codes wider
// than the [base, max] range the caller advertises are the caller's to
// validate; unpack only guards the buffer bounds.
func (r *byteReader) unpack(n int, base uint32, width int, out []uint32) {
	if width == 0 {
		for i := 0; i < n; i++ {
			out[i] = base
		}
		return
	}
	if r.err {
		return
	}
	need := (n*width + 7) / 8
	if r.off+need > len(r.buf) {
		r.err = true
		return
	}
	buf := r.buf[r.off : r.off+need]
	r.off += need
	var acc uint64
	accBits := 0
	p := 0
	mask := uint64(1)<<width - 1
	for i := 0; i < n; i++ {
		for accBits < width {
			acc |= uint64(buf[p]) << accBits
			p++
			accBits += 8
		}
		out[i] = base + uint32(acc&mask)
		acc >>= width
		accBits -= width
	}
}

// LZ codec. Token stream: a control byte 0x00..0x7F introduces a literal
// run of (ctrl+1) bytes; 0x80..0xFF a back-reference of length
// (ctrl&0x7F)+lzMinMatch, followed by the uvarint distance (>= 1) back from
// the current output position. Matches may overlap their own output
// (run-length encoding falls out for free). There is no window limit — a
// block's raw form is bounded by segV3BlockRows rows, far under any
// practical distance.
const lzMinMatch = 4

// lzMaxMatch is the longest match one token can carry; longer matches emit
// multiple tokens.
const lzMaxMatch = 127 + lzMinMatch

// lzCompress appends the compressed form of src to dst. Greedy matching
// over a 4-byte hash table: small, allocation-free, and effective on the
// residual redundancy varint/delta encoding leaves behind (repeated attr
// deltas, runs of zero fail codes, cycling op patterns).
func lzCompress(dst, src []byte) []byte {
	var table [1 << 12]int32
	for i := range table {
		table[i] = -1
	}
	hash := func(p int) uint32 {
		return binary.LittleEndian.Uint32(src[p:]) * 2654435761 >> 20
	}
	litStart := 0
	i := 0
	for i+lzMinMatch <= len(src) {
		h := hash(i)
		cand := table[h]
		table[h] = int32(i)
		if cand < 0 || binary.LittleEndian.Uint32(src[cand:]) != binary.LittleEndian.Uint32(src[i:]) {
			i++
			continue
		}
		length := lzMinMatch
		for i+length < len(src) && src[int(cand)+length] == src[i+length] {
			length++
		}
		dst = lzFlushLiterals(dst, src[litStart:i])
		dist := i - int(cand)
		for length >= lzMinMatch {
			l := length
			if l > lzMaxMatch {
				l = lzMaxMatch
			}
			// Never strand a sub-minMatch tail: shrink this token instead.
			if rest := length - l; rest > 0 && rest < lzMinMatch {
				l = length - lzMinMatch
			}
			dst = append(dst, 0x80|byte(l-lzMinMatch))
			dst = binary.AppendUvarint(dst, uint64(dist))
			i += l
			length -= l
		}
		litStart = i
	}
	return lzFlushLiterals(dst, src[litStart:])
}

func lzFlushLiterals(dst, lits []byte) []byte {
	for len(lits) > 0 {
		n := len(lits)
		if n > 128 {
			n = 128
		}
		dst = append(dst, byte(n-1))
		dst = append(dst, lits[:n]...)
		lits = lits[n:]
	}
	return dst
}

// lzDecode decompresses src into dst, which must be pre-sized to the exact
// raw length (the zone map records it). Any mismatch — a truncated token, a
// distance reaching before the output start, output over- or under-run — is
// a codec error; dst is filled left to right so no uninitialized bytes leak
// on failure paths.
func lzDecode(dst, src []byte) error {
	d, s := 0, 0
	for s < len(src) {
		ctrl := src[s]
		s++
		if ctrl < 0x80 {
			n := int(ctrl) + 1
			if s+n > len(src) || d+n > len(dst) {
				return errCodec
			}
			copy(dst[d:], src[s:s+n])
			s += n
			d += n
			continue
		}
		length := int(ctrl&0x7F) + lzMinMatch
		dist, n := binary.Uvarint(src[s:])
		if n <= 0 {
			return errCodec
		}
		s += n
		if dist == 0 || dist > uint64(d) || d+length > len(dst) {
			return errCodec
		}
		pos := d - int(dist)
		for k := 0; k < length; k++ {
			dst[d+k] = dst[pos+k]
		}
		d += length
	}
	if d != len(dst) {
		return errCodec
	}
	return nil
}
