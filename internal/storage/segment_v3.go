package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/bits"
	"sort"
	"strconv"

	"aiql/internal/pred"
	"aiql/internal/types"
)

// Version 3 of the sealed-segment format is v2 with two additions, sharing
// everything else (header, directory, dictionary, postings, zone maps, mmap
// lifecycle — see segment_v2.go):
//
//   - Compressed column blocks. The raw v2 column layout is replaced by a
//     byte-oriented encoding — uvarint start-time deltas, zigzag-varint
//     residuals for the remaining numeric columns, bit-packed dictionary
//     indexes and op codes — then the whole encoded block runs through the
//     small LZ codec in blockcodec.go when that actually shrinks it. Blocks
//     become variable-length, so each zone additionally records its block's
//     offset, stored length and raw (pre-compression) length, all
//     cross-checked at meta decode: stored blocks must tile the data region
//     exactly and raw lengths are bounded per row, so a corrupt zone can
//     neither misalign reads nor request an unbounded allocation.
//
//   - Attribute zone maps. Each zone carries two 64-bit trigram filters,
//     one over the attribute values of the block's subject entities and one
//     over its objects (including the synthesized id/agentid/type
//     pseudo-attributes). A LIKE or equality predicate contributes required
//     substrings (pred.RequiredSubstrings); a block whose filter provably
//     lacks one of their trigrams cannot contain a match and is skipped —
//     the same pruning time and op predicates already get. Entity ids the
//     writer cannot resolve saturate the filter rather than weaken it.
//
// The zone encoding appends to v2's 42 bytes:
//
//	subjTri u64 | objTri u64 | dataOff u64 | dataLen u32 | rawLen u32
//
// and each stored block is a flag byte (0 = raw, 1 = LZ) followed by the
// payload, checksummed as stored so the CRC covers exactly the bytes read.
const (
	segV3Magic     = "AIQLSEG3"
	segV3ZoneBytes = segV2ZoneBytes + 8 + 8 + 8 + 4 + 4

	// segV3MaxRowEnc bounds the encoded (pre-compression) size of one row:
	// 5 (start uvarint) + 5×10 (svarint columns) + 4+4 (packed dict
	// indexes) + 1 (packed op, worst case whole byte). Meta decode rejects
	// any zone advertising more — the OOM guard for lazy block decode.
	segV3MaxRowEnc = 64
)

// writeSegmentV3 compacts one batch into an immutable v3 (compressed)
// segment. lookup resolves entity ids the batch does not carry so attribute
// zone maps can cover events referencing entities sealed earlier.
func writeSegmentV3(dir string, firstSeq, lastSeq uint64, entities []types.Entity, events []types.Event, lookup func(types.EntityID) *types.Entity) (*segmentV2File, error) {
	return writeSegmentCols(dir, firstSeq, lastSeq, entities, events, 3, lookup)
}

// openSegmentV3 reads a v3 segment's header and directory only.
func openSegmentV3(path string) (*segmentV2File, error) {
	return openSegmentCols(path, segV3Magic, 3)
}

// triMask returns the trigram filter bits for every 3-byte window of s.
// The filter is a plain 64-bit Bloom filter with one hash: false positives
// only ever make pruning less effective, never wrong.
func triMask(s string) uint64 {
	var m uint64
	for i := 0; i+3 <= len(s); i++ {
		h := (uint32(s[i])*251+uint32(s[i+1]))*251 + uint32(s[i+2])
		h *= 2654435761
		m |= 1 << (h >> 26)
	}
	return m
}

// entityTriMask unions the trigram filters of every attribute value the
// predicate language can observe on e — the Attrs map plus the synthesized
// id/agentid/type pseudo-attributes (see types.Entity.Attr).
func entityTriMask(e *types.Entity) uint64 {
	m := triMask(strconv.FormatUint(uint64(e.ID), 10))
	m |= triMask(strconv.Itoa(e.AgentID))
	m |= triMask(e.Type.String())
	for _, v := range e.Attrs {
		m |= triMask(v)
	}
	return m
}

// requiredTriMask converts a predicate's required substrings into the
// trigram bits every matching entity must exhibit. Zero means the predicate
// offers no attribute pruning (no substring of length >= 3 is required).
func requiredTriMask(p pred.Pred) uint64 {
	var m uint64
	for _, s := range pred.RequiredSubstrings(p) {
		if len(s) >= 3 {
			m |= triMask(s)
		}
	}
	return m
}

// buildV3Partition encodes one sorted partition into its meta and data
// regions in the v3 format. resolve maps entity ids to entities for the
// attribute filters; unresolvable ids saturate their block's filter.
func buildV3Partition(k partKey, evs []types.Event, resolve func(types.EntityID) *types.Entity) (v2PartBuild, error) {
	n := len(evs)
	idSet := make(map[types.EntityID]struct{}, n)
	for i := range evs {
		idSet[evs[i].Subject] = struct{}{}
		idSet[evs[i].Object] = struct{}{}
	}
	dict := make([]types.EntityID, 0, len(idSet))
	for id := range idSet {
		dict = append(dict, id)
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	slot := make(map[types.EntityID]uint32, len(dict))
	for i, id := range dict {
		slot[id] = uint32(i)
	}

	// Per-dictionary-entry attribute filters, computed once and reused by
	// every block the entity appears in. ^0 marks an unresolvable id.
	entMask := make([]uint64, len(dict))
	for i, id := range dict {
		if e := resolve(id); e != nil {
			entMask[i] = entityTriMask(e)
		} else {
			entMask[i] = ^uint64(0)
		}
	}

	subjPos := make([][]uint32, len(dict))
	objPos := make([][]uint32, len(dict))
	for i := range evs {
		s, o := slot[evs[i].Subject], slot[evs[i].Object]
		subjPos[s] = append(subjPos[s], uint32(i))
		objPos[o] = append(objPos[o], uint32(i))
	}

	nBlocks := (n + segV2BlockRows - 1) / segV2BlockRows
	zones := make([]segV2Zone, 0, nBlocks)
	var data []byte
	var rawEnc, lzEnc []byte
	for lo := 0; lo < n; lo += segV2BlockRows {
		hi := lo + segV2BlockRows
		if hi > n {
			hi = n
		}
		block := evs[lo:hi]
		z := segV2Zone{
			count:    len(block),
			minStart: block[0].Start,
			maxStart: block[len(block)-1].Start,
			minSubj:  slot[block[0].Subject],
			minObj:   slot[block[0].Object],
		}
		z.maxSubj, z.maxObj = z.minSubj, z.minObj
		for i := range block {
			ev := &block[i]
			z.ops = z.ops.Add(ev.Op)
			s, o := slot[ev.Subject], slot[ev.Object]
			if s < z.minSubj {
				z.minSubj = s
			}
			if s > z.maxSubj {
				z.maxSubj = s
			}
			if o < z.minObj {
				z.minObj = o
			}
			if o > z.maxObj {
				z.maxObj = o
			}
			z.subjTri |= entMask[s]
			z.objTri |= entMask[o]
		}
		if delta := z.maxStart - z.minStart; delta < 0 || delta > int64(^uint32(0)) {
			return v2PartBuild{}, fmt.Errorf("storage: segment: partition (%d,%d) start span %d overflows delta encoding", k.agent, k.day, delta)
		}

		rawEnc = encodeV3Block(rawEnc[:0], block, &z, slot)
		if len(rawEnc) > len(block)*segV3MaxRowEnc {
			return v2PartBuild{}, fmt.Errorf("storage: segment: partition (%d,%d) block encoding %d bytes exceeds bound", k.agent, k.day, len(rawEnc))
		}
		lzEnc = lzCompress(lzEnc[:0], rawEnc)
		z.dataOff = uint64(len(data))
		z.rawLen = uint32(len(rawEnc))
		var stored []byte
		if len(lzEnc) < len(rawEnc) {
			data = append(data, 1)
			stored = lzEnc
		} else {
			data = append(data, 0)
			stored = rawEnc
		}
		data = append(data, stored...)
		z.dataLen = uint32(1 + len(stored))
		z.crc = crc32.Checksum(data[z.dataOff:uint64(len(data))], castagnoli)
		zones = append(zones, z)
	}

	// Meta region: dict | zones | bounds | posts — same shape as v2, wider
	// zone entries.
	meta := make([]byte, 0, len(dict)*8+nBlocks*segV3ZoneBytes+(2*len(dict)+1)*4+2*n*4)
	for _, id := range dict {
		meta = binary.LittleEndian.AppendUint64(meta, uint64(id))
	}
	for i := range zones {
		z := &zones[i]
		meta = binary.LittleEndian.AppendUint32(meta, uint32(z.count))
		meta = binary.LittleEndian.AppendUint32(meta, z.crc)
		meta = binary.LittleEndian.AppendUint64(meta, uint64(z.minStart))
		meta = binary.LittleEndian.AppendUint64(meta, uint64(z.maxStart))
		meta = binary.LittleEndian.AppendUint16(meta, uint16(z.ops))
		meta = binary.LittleEndian.AppendUint32(meta, z.minSubj)
		meta = binary.LittleEndian.AppendUint32(meta, z.maxSubj)
		meta = binary.LittleEndian.AppendUint32(meta, z.minObj)
		meta = binary.LittleEndian.AppendUint32(meta, z.maxObj)
		meta = binary.LittleEndian.AppendUint64(meta, z.subjTri)
		meta = binary.LittleEndian.AppendUint64(meta, z.objTri)
		meta = binary.LittleEndian.AppendUint64(meta, z.dataOff)
		meta = binary.LittleEndian.AppendUint32(meta, z.dataLen)
		meta = binary.LittleEndian.AppendUint32(meta, z.rawLen)
	}
	bound := uint32(0)
	meta = binary.LittleEndian.AppendUint32(meta, bound)
	for i := range dict {
		bound += uint32(len(subjPos[i]))
		meta = binary.LittleEndian.AppendUint32(meta, bound)
		bound += uint32(len(objPos[i]))
		meta = binary.LittleEndian.AppendUint32(meta, bound)
	}
	for i := range dict {
		for _, p := range subjPos[i] {
			meta = binary.LittleEndian.AppendUint32(meta, p)
		}
		for _, p := range objPos[i] {
			meta = binary.LittleEndian.AppendUint32(meta, p)
		}
	}

	return v2PartBuild{
		info: segV2PartInfo{
			key:      k,
			nEvents:  n,
			nBlocks:  nBlocks,
			nDict:    len(dict),
			metaCRC:  crc32.Checksum(meta, castagnoli),
			minStart: evs[0].Start,
			maxStart: evs[n-1].Start,
		},
		meta: meta,
		data: data,
	}, nil
}

// opWidth derives the bit width of the packed op column from a zone's op
// set; writer and reader must agree, so both call this.
func opWidth(ops types.OpSet) int {
	maxOp := bits.Len16(uint16(ops)) - 1
	return bits.Len(uint(maxOp))
}

// encodeV3Block appends the raw (pre-compression) encoding of one sorted
// block to dst. Column order matches v2; each column picks the cheapest
// residual its zone metadata lets the reader undo: start times as uvarint
// deltas off the zone minimum, ends relative to their row's start, ids and
// seqs as delta chains (both ascend in practice), amounts and fail codes as
// plain zigzag varints, dictionary indexes bit-packed against the zone's
// index range, op codes bit-packed against the zone's op set.
func encodeV3Block(dst []byte, block []types.Event, z *segV2Zone, slot map[types.EntityID]uint32) []byte {
	prevStart := z.minStart
	for i := range block {
		dst = binary.AppendUvarint(dst, uint64(block[i].Start-prevStart))
		prevStart = block[i].Start
	}
	for i := range block {
		dst = binary.AppendUvarint(dst, zigzag(block[i].End-block[i].Start))
	}
	prev := int64(0)
	for i := range block {
		v := int64(block[i].ID)
		dst = binary.AppendUvarint(dst, zigzag(v-prev))
		prev = v
	}
	prev = 0
	for i := range block {
		v := int64(block[i].Seq)
		dst = binary.AppendUvarint(dst, zigzag(v-prev))
		prev = v
	}
	for i := range block {
		dst = binary.AppendUvarint(dst, zigzag(block[i].Amount))
	}
	for i := range block {
		dst = binary.AppendUvarint(dst, zigzag(int64(block[i].FailCode)))
	}
	idx := make([]uint32, len(block))
	for i := range block {
		idx[i] = slot[block[i].Subject]
	}
	dst = appendPacked(dst, idx, z.minSubj, bits.Len32(z.maxSubj-z.minSubj))
	for i := range block {
		idx[i] = slot[block[i].Object]
	}
	dst = appendPacked(dst, idx, z.minObj, bits.Len32(z.maxObj-z.minObj))
	for i := range block {
		idx[i] = uint32(block[i].Op)
	}
	return appendPacked(dst, idx, 0, opWidth(z.ops))
}

// decodeBlockV3 verifies and decodes block b of a v3 partition into cols:
// checksum over the stored bytes, exact raw length after decompression,
// exact consumption by the column decoders, and every v2 zone promise
// (start monotonicity and range, dictionary-index range, op-set membership)
// re-checked on the decoded values.
func (sf *segmentV2File) decodeBlockV3(pi *segV2Part, m *segV2Meta, b int, cols *blockCols) error {
	at := func(format string, args ...any) error {
		return corruptf(sf.path, "partition (%d,%d) block %d: %s", pi.key.agent, pi.key.day, b, fmt.Sprintf(format, args...))
	}
	z := &m.zones[b]
	off := pi.dataOff + z.dataOff
	end := off + uint64(z.dataLen)
	if end > uint64(len(sf.data)) {
		return at("exceeds mapped size %d", len(sf.data))
	}
	stored := sf.data[off:end]
	if crc32.Checksum(stored, castagnoli) != z.crc {
		return at("checksum mismatch")
	}
	payload := stored[1:]
	var raw []byte
	switch stored[0] {
	case 0:
		if len(payload) != int(z.rawLen) {
			return at("raw block length %d, want %d", len(payload), z.rawLen)
		}
		raw = payload
	case 1:
		if cap(cols.enc) < int(z.rawLen) {
			cols.enc = make([]byte, z.rawLen)
		}
		raw = cols.enc[:z.rawLen]
		if err := lzDecode(raw, payload); err != nil {
			return at("block codec: %v", err)
		}
	default:
		return at("unknown block encoding %d", stored[0])
	}
	if uint16(z.ops) == 0 {
		return at("empty op set for %d rows", z.count)
	}

	n := z.count
	cols.reset(n, pi.key.agent)
	r := byteReader{buf: raw}
	span := uint64(z.maxStart - z.minStart)
	cur := z.minStart
	for i := 0; i < n; i++ {
		d := r.uvarint()
		if d > span {
			return at("row %d: start outside zone time range", i)
		}
		cur += int64(d)
		if cur > z.maxStart || cur < z.minStart {
			return at("row %d: start outside zone time range", i)
		}
		cols.starts[i] = cur
	}
	for i := 0; i < n; i++ {
		cols.ends[i] = cols.starts[i] + r.svarint()
	}
	prev := int64(0)
	for i := 0; i < n; i++ {
		prev += r.svarint()
		cols.ids[i] = prev
	}
	prev = 0
	for i := 0; i < n; i++ {
		prev += r.svarint()
		cols.seqs[i] = prev
	}
	for i := 0; i < n; i++ {
		cols.amounts[i] = r.svarint()
	}
	for i := 0; i < n; i++ {
		cols.fails[i] = r.svarint()
	}
	r.unpack(n, z.minSubj, bits.Len32(z.maxSubj-z.minSubj), cols.subj)
	r.unpack(n, z.minObj, bits.Len32(z.maxObj-z.minObj), cols.obj)
	if cap(cols.packScratch) < n {
		cols.packScratch = make([]uint32, n)
	}
	opsRaw := cols.packScratch[:n]
	r.unpack(n, 0, opWidth(z.ops), opsRaw)
	if !r.done() {
		return at("malformed block encoding")
	}
	for i := 0; i < n; i++ {
		if s := cols.subj[i]; s < z.minSubj || s > z.maxSubj {
			return at("row %d: out-of-range dictionary index %d", i, s)
		}
		if o := cols.obj[i]; o < z.minObj || o > z.maxObj {
			return at("row %d: out-of-range dictionary index %d", i, o)
		}
		op := types.Op(opsRaw[i])
		if opsRaw[i] > 15 || !z.ops.Contains(op) {
			return at("row %d: operation %d outside zone op set", i, opsRaw[i])
		}
		cols.ops[i] = op
	}
	return nil
}
