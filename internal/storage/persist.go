package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aiql/internal/obs"
	"aiql/internal/types"
	"aiql/internal/wal"
)

// PersistOptions tune the persistent mode. The zero value is a sensible
// durable configuration: group-committed WAL syncs every FlushInterval,
// compaction in the background.
type PersistOptions struct {
	// Store configures the in-memory store recovery rebuilds.
	Store Options
	// SyncEveryBatch fsyncs the WAL after every ingest batch — maximum
	// durability, one fsync per batch. When false, appends are synced by
	// the background flusher every FlushInterval (group commit): a crash
	// can lose at most the last interval's batches, never corrupt.
	SyncEveryBatch bool
	// FlushInterval is the group-commit cadence (default 100ms; negative
	// disables the background flusher).
	FlushInterval time.Duration
	// CompactInterval is the background compaction cadence (default 30s;
	// negative disables it — tests drive Compact directly).
	CompactInterval time.Duration
	// CompactThresholdBytes triggers a compaction as soon as the WAL
	// exceeds this size, without waiting for the interval (default 16 MiB).
	CompactThresholdBytes int64
	// LegacySegmentV1 makes the compactor emit v1 (row-encoded) segments
	// instead of the current columnar format — an escape hatch for rolling
	// back to a build that predates the columnar readers. Segments of every
	// version are always readable regardless of these settings.
	LegacySegmentV1 bool
	// LegacySegmentV2 makes the compactor emit uncompressed v2 columnar
	// segments instead of the default v3 (compressed blocks + attribute
	// zone maps) — the rollback hatch for builds predating the v3 reader.
	LegacySegmentV2 bool
	// WAL passes through to the log (file rotation size).
	WAL wal.Options
}

func (o PersistOptions) withDefaults() PersistOptions {
	if o.FlushInterval == 0 {
		o.FlushInterval = 100 * time.Millisecond
	}
	if o.CompactInterval == 0 {
		o.CompactInterval = 30 * time.Second
	}
	if o.CompactThresholdBytes == 0 {
		o.CompactThresholdBytes = 16 << 20
	}
	return o
}

// Persistent is the disk-backed mode of the store: every ingest batch is
// appended to a checksummed write-ahead log before it is applied in
// memory, and a compactor periodically folds the log into immutable,
// (agent, day)-partitioned segment files. Reopening the directory rebuilds
// exactly the state every acknowledged batch left behind: segments load
// lazily (headers at open, payloads at warm-up), then the WAL's
// not-yet-compacted suffix replays on top.
//
// The embedded *Store answers queries; hand it (not the Persistent) to
// engines — the engine's snapshot pinning type-switches on *storage.Store.
// Mutations must go through Persistent.Ingest/AddEvent/AddEntity, which
// journal first; mutating the embedded store directly would bypass
// durability.
//
// Snapshots pin segment data exactly as they pin purely in-memory data:
// loaded segment partitions are ordinary partitions under the store's
// copy-on-write rules, and segment files themselves are immutable —
// compaction only ever transforms WAL files into new segment files, never
// rewrites either, so no disk operation invalidates a live snapshot.
type Persistent struct {
	*Store
	dir    string
	opts   PersistOptions
	log    *wal.Log
	unlock func() // releases the data-directory flock

	// walMu serializes append→apply so the WAL's batch order is exactly
	// the order the store applied; replay reproduces the same state.
	walMu sync.Mutex

	// compactMu serializes compactions; the long work (WAL re-read,
	// segment build, fsyncs) runs under it alone, so readers of the
	// segment list are never blocked behind a compaction.
	compactMu sync.Mutex
	// segMu guards the segment list and coveredSeq — held only for the
	// brief reads/mutations, never across disk work.
	segMu      sync.Mutex
	segs       []*segEntry // aiql:guarded-by segMu
	coveredSeq uint64      // highest WAL seq the segments cover; aiql:guarded-by segMu

	loadOnce sync.Once
	loadErr  error
	loaded   atomic.Bool

	dirty atomic.Bool // appended but not yet synced
	// syncErr latches the first failed fsync permanently: after a failed
	// fsync the kernel may drop the dirty pages and report success on the
	// next call, so no later sync can prove the earlier appends landed.
	// Once latched, Ingest refuses new batches until the process restarts
	// (recovery then rebuilds from what actually reached the disk).
	syncErr     atomic.Pointer[error]
	compactc    chan struct{}
	stop        chan struct{}
	bg          sync.WaitGroup
	closeOnce   sync.Once
	compactions atomic.Uint64
	// compactNanos is the cumulative wall time spent inside Compact calls
	// that produced a segment — the scrape-side input for compaction-latency
	// monitoring.
	compactNanos atomic.Int64
	replayed     atomic.Uint64 // WAL records replayed at open

	// crashHook, when set (tests only), is called at named points inside
	// Compact; returning an error abandons the compaction at exactly that
	// point, simulating a crash with the disk state half-transformed.
	crashHook func(point string) error
}

// OpenPersistent opens (creating if necessary) a durable store rooted at
// dir. The directory holds wal/ and seg/ subdirectories. Opening performs
// recovery: stale compaction temp files are removed, segment headers are
// read (payloads stay on disk until WarmUp or first use), a torn WAL tail
// is truncated, WAL files fully covered by segments are deleted, and the
// WAL's uncovered suffix is replayed into memory. The returned store is
// ready for both ingest and queries — call WarmUp to pay the segment load
// eagerly instead of on first use.
func OpenPersistent(dir string, opts PersistOptions) (*Persistent, error) {
	opts = opts.withDefaults()
	segDir := filepath.Join(dir, "seg")
	if err := os.MkdirAll(segDir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	p := &Persistent{
		Store:    New(opts.Store),
		dir:      dir,
		opts:     opts,
		compactc: make(chan struct{}, 1),
		stop:     make(chan struct{}),
	}

	// Recovery step 0: take the directory lock. Two processes appending
	// to the same WAL would interleave records and corrupt the sealed
	// history; the lock is held for the store's lifetime and released by
	// the OS on any exit, crash included.
	unlock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	p.unlock = unlock
	ok := false
	defer func() {
		if !ok {
			p.unlock()
		}
	}()

	// Recovery step 1: sweep aborted compactions. A *.tmp file is a
	// segment whose write never reached the rename; its WAL range is
	// still fully in the log, so the file is garbage.
	ents, err := os.ReadDir(segDir)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			if err := os.Remove(filepath.Join(segDir, name)); err != nil {
				return nil, fmt.Errorf("storage: remove stale %s: %w", name, err)
			}
			continue
		}
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		sf, err := openSegmentAny(filepath.Join(segDir, name))
		if err != nil {
			// Segments are fsynced before their WAL range is deleted;
			// a segment that does not parse is real corruption.
			return nil, err
		}
		p.segs = append(p.segs, &segEntry{seg: sf})
		if _, last := sf.seqRange(); last > p.coveredSeq {
			p.coveredSeq = last
		}
	}
	// Entities load eagerly, in segment sequence order, BEFORE the WAL
	// replay below. Entity registration is first-write-wins
	// (addEntityLocked ignores re-registrations), so recovery must
	// install entities in the order the live process first saw them:
	// segment ranges oldest first, then the WAL suffix. The event
	// payloads — the bulk — still load lazily. Entity blocks are
	// dimension-table sized.
	sort.Slice(p.segs, func(i, j int) bool {
		fi, _ := p.segs[i].seg.seqRange()
		fj, _ := p.segs[j].seg.seqRange()
		return fi < fj
	})
	for _, e := range p.segs {
		if err := p.loadSegmentEntities(e.seg); err != nil {
			return nil, err
		}
	}

	// Recovery step 2: open the WAL (truncating any torn tail) and drop
	// files a completed compaction made redundant before crashing.
	log, err := wal.Open(filepath.Join(dir, "wal"), opts.WAL)
	if err != nil {
		return nil, err
	}
	p.log = log
	// Replication state rebuilds from two sources, layered idempotently:
	// the sidecar snapshot a past compaction saved (covering tags whose
	// WAL records were folded into segments) and a tag scan over every
	// WAL file still on disk. The scan runs before RemoveThrough below —
	// a crash between a compaction's segment rename and its sidecar write
	// leaves covered WAL files holding the only copy of their tags.
	if err := p.loadReplSidecar(); err != nil {
		log.Close()
		return nil, err
	}
	err = log.Replay(0, func(seq uint64, payload []byte) error {
		if tag := peekTag(payload); tag != nil {
			p.Store.replRecord(*tag)
		}
		return nil
	})
	if err != nil {
		log.Close()
		return nil, err
	}
	if p.coveredSeq > 0 {
		// RemoveThrough below deletes covered WAL files — for tags whose
		// compaction crashed before its sidecar write, the only durable
		// copy. Snapshot the just-rebuilt state first, or a restart after
		// this one would forget them and re-apply a coordinator retry.
		if err := p.saveReplSidecar(); err != nil {
			log.Close()
			return nil, err
		}
		// A crash between a compaction's segment rename and its WAL
		// deletion leaves files the segment fully covers — possibly
		// including the one Open just adopted as active. Seal everything
		// so the covered files can be deleted; the next append starts a
		// fresh file.
		if _, err := log.Rotate(); err != nil {
			log.Close()
			return nil, err
		}
		if err := log.RemoveThrough(p.coveredSeq); err != nil {
			log.Close()
			return nil, err
		}
		// A fully-compacted log may have no files left at all: its
		// sequence counter must resume after the covered range, or new
		// batches would be journaled with already-covered sequence
		// numbers and silently skipped by the next recovery.
		log.AdvanceTo(p.coveredSeq)
	}

	// Recovery step 3: replay the uncovered suffix. Records at or below
	// coveredSeq are already in segments; replaying by sequence number is
	// what makes "apply exactly once" hold across any crash point.
	err = log.Replay(p.coveredSeq, func(seq uint64, payload []byte) error {
		tag, entities, events, err := decodeMaybeTagged(payload)
		if err != nil {
			return fmt.Errorf("wal seq %d: %w", seq, err)
		}
		// Apply unconditionally: Replay already skips covered sequence
		// numbers, and the tag dedup must not second-guess it — the tag
		// scan above recorded this record's tag, but its data exists
		// nowhere else than right here.
		p.Store.ingestRecovered(tag, &types.Dataset{Entities: entities, Events: events})
		p.replayed.Add(1)
		return nil
	})
	if err != nil {
		log.Close()
		return nil, err
	}

	if opts.FlushInterval > 0 || opts.CompactInterval > 0 {
		p.bg.Add(1)
		go p.background()
	}
	ok = true
	return p, nil
}

// Dir returns the store's root directory.
func (p *Persistent) Dir() string { return p.dir }

// WarmUp makes every segment's event partitions queryable (entities were
// installed at open, where ordering matters). v1 segments decode fully, in
// parallel — their partitions are order-independent. v2 segments install as
// memory-mapped cold runs, sequentially in WAL order (the cold fast path
// needs runs oldest-first) — near-free, since no event is decoded until a
// scan touches its block. Idempotent and implied by the first mutation;
// servers call it before accepting queries so v1 recovery cost is paid at
// startup, not on the first analyst's request.
func (p *Persistent) WarmUp() error {
	p.loadOnce.Do(func() {
		p.segMu.Lock()
		var segs []segment
		for _, e := range p.segs {
			if !e.loaded {
				e.loaded = true
				segs = append(segs, e.seg)
			}
		}
		p.segMu.Unlock()
		var wg sync.WaitGroup
		errs := make([]error, len(segs)+1)
		for i, sf := range segs {
			if sf.formatVersion() >= 2 {
				continue
			}
			wg.Add(1)
			go func(i int, sf segment) {
				defer wg.Done()
				errs[i] = sf.install(p.Store)
			}(i, sf)
		}
		for _, sf := range segs {
			if sf.formatVersion() < 2 {
				continue
			}
			if err := sf.install(p.Store); err != nil {
				errs[len(segs)] = err
				break
			}
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				p.loadErr = err
				return
			}
		}
		p.Store.mu.Lock()
		p.Store.generation++
		p.Store.mu.Unlock()
		p.loaded.Store(true)
	})
	return p.loadErr
}

// loadSegmentEntities installs one segment's entity block. Runs at open,
// strictly in segment sequence order — entity registration is
// first-write-wins, so install order decides which attributes a re-used
// entity id keeps, and recovery must decide it the way the live process
// did.
func (p *Persistent) loadSegmentEntities(sf segment) error {
	entities, err := sf.readEntities()
	if err != nil {
		return err
	}
	p.Store.mu.Lock()
	for i := range entities {
		p.Store.addEntityLocked(&entities[i])
	}
	p.Store.mu.Unlock()
	return nil
}

// segEntry tracks one segment in the persistent store's list, with the
// load state that belongs to this process rather than to the file:
// segments a compaction produced here are born loaded (their batches
// arrived through Ingest); segments found at open install on WarmUp.
// Guarded by segMu.
type segEntry struct {
	seg    segment
	loaded bool
}

// Ingest journals one batch to the WAL, then applies it to the in-memory
// store. The batch is durable per the sync policy: immediately with
// SyncEveryBatch, within FlushInterval otherwise. It is the persistent
// counterpart of Store.Ingest and the only ingest path that survives a
// restart. An IngestObserver installed on the embedded store fires inside
// walMu here — the same batch boundary the journal uses — so streaming
// consumers observe exactly the acknowledged batches, in WAL order.
func (p *Persistent) Ingest(ds *types.Dataset) error {
	if err := p.WarmUp(); err != nil {
		return err
	}
	if ep := p.syncErr.Load(); ep != nil {
		return fmt.Errorf("storage: WAL sync failed earlier, refusing new batches: %w", *ep)
	}
	payload := encodeBatch(ds.Entities, ds.Events)
	p.walMu.Lock()
	if _, err := p.log.Append(payload); err != nil {
		p.walMu.Unlock()
		return err
	}
	if p.opts.SyncEveryBatch {
		if err := p.log.Sync(); err != nil {
			// After a failed fsync the kernel may have dropped the dirty
			// pages: the appended record's fate is unknown (it can still
			// resurface after a restart). Latch the failure so no further
			// batches are acknowledged against a log in an unknown state.
			p.syncErr.Store(&err)
			p.walMu.Unlock()
			return fmt.Errorf("storage: WAL sync: %w (batch not acknowledged; it may still reappear after a restart)", err)
		}
	} else {
		p.dirty.Store(true)
	}
	p.Store.Ingest(ds)
	p.walMu.Unlock()

	if _, bytes := p.log.Depth(); bytes >= p.opts.CompactThresholdBytes {
		select {
		case p.compactc <- struct{}{}:
		default:
		}
	}
	return nil
}

// AddEntity durably registers a single entity (a one-record batch).
func (p *Persistent) AddEntity(e *types.Entity) error {
	return p.Ingest(&types.Dataset{Entities: []types.Entity{*e}})
}

// AddEvent durably appends a single event (a one-record batch).
func (p *Persistent) AddEvent(ev *types.Event) error {
	return p.Ingest(&types.Dataset{Events: []types.Event{*ev}})
}

// Sync forces all journaled batches to stable storage now. The dirty flag
// is cleared before the fsync (an append racing in re-sets it and is
// covered by the next cycle) and restored on failure so a failed sync is
// always retried, never silently dropped; the failure also latches
// syncErr, permanently refusing further acknowledgements (see the field).
func (p *Persistent) Sync() error {
	p.dirty.Swap(false)
	if err := p.log.Sync(); err != nil {
		p.dirty.Store(true)
		p.syncErr.Store(&err)
		return err
	}
	return nil
}

// Compact folds the WAL's sealed files into one new immutable segment:
// rotate the active file, re-read the sealed records, write them as a
// partitioned segment (fsync + rename + dir fsync), then delete the
// consumed WAL files. Every step is crash-safe: until the rename lands the
// WAL still covers everything; after it, recovery skips the covered
// sequence range even if the WAL deletion never happened.
func (p *Persistent) Compact() error {
	p.compactMu.Lock()
	defer p.compactMu.Unlock()
	start := obs.Now()
	p.segMu.Lock()
	covered := p.coveredSeq
	p.segMu.Unlock()
	sealed, err := p.log.Rotate()
	if err != nil {
		return err
	}
	last := covered
	for _, info := range sealed {
		if info.Records > 0 && info.Last > last {
			last = info.Last
		}
	}
	if last <= covered {
		// Nothing new — but sealed files may still be fully-covered
		// leftovers of a compaction that crashed before its deletion step.
		return p.log.RemoveThrough(covered)
	}

	// Re-read the sealed range from disk. Entities are deduplicated by id
	// (re-registrations are no-ops in memory too); events are concatenated
	// and re-partitioned by the segment writer.
	var entities []types.Entity
	var events []types.Event
	seen := make(map[types.EntityID]struct{})
	err = p.log.Replay(covered, func(seq uint64, payload []byte) error {
		if seq > last {
			return nil // active-file records stay in the WAL
		}
		_, ents, evs, err := decodeMaybeTagged(payload)
		if err != nil {
			return fmt.Errorf("wal seq %d: %w", seq, err)
		}
		for i := range ents {
			if _, dup := seen[ents[i].ID]; dup {
				continue
			}
			seen[ents[i].ID] = struct{}{}
			entities = append(entities, ents[i])
		}
		events = append(events, evs...)
		return nil
	})
	if err != nil {
		return err
	}
	if err := p.crash("compact-collected"); err != nil {
		return err
	}

	var sf segment
	switch {
	case p.opts.LegacySegmentV1:
		sf, err = writeSegment(filepath.Join(p.dir, "seg"), covered+1, last, entities, events)
	case p.opts.LegacySegmentV2:
		sf, err = writeSegmentV2(filepath.Join(p.dir, "seg"), covered+1, last, entities, events)
	default:
		// The store's Entity lookup resolves ids the batch itself does not
		// carry (events referencing entities sealed earlier) for the v3
		// attribute zone maps; the store keeps all entities in memory, and
		// Compact does not hold the store lock here.
		sf, err = writeSegmentV3(filepath.Join(p.dir, "seg"), covered+1, last, entities, events, p.Entity)
	}
	if err != nil {
		return err
	}
	if err := p.crash("segment-written"); err != nil {
		return err
	}
	// The new segment is tracked for stats and for the next open; its data
	// is already in memory (it arrived through Ingest), so it is born
	// loaded — WarmUp must never re-apply it in this process.
	p.segMu.Lock()
	p.segs = append(p.segs, &segEntry{seg: sf, loaded: true})
	p.coveredSeq = last
	p.segMu.Unlock()
	p.compactions.Add(1)
	p.compactNanos.Add(int64(obs.Since(start)))
	// The consumed WAL records may carry replication tags; once the files
	// are deleted the sidecar is the only durable copy of those tags, so
	// it must land first. On failure the WAL files stay (recovery re-scans
	// them) and the next compaction retries the deletion.
	if err := p.saveReplSidecar(); err != nil {
		return err
	}
	if err := p.crash("before-wal-remove"); err != nil {
		return err
	}
	return p.log.RemoveThrough(last)
}

// RewriteLegacySegments rewrites every v1 row segment into the current
// columnar format in place — same file name, atomic rename — returning how
// many were rewritten. The in-memory store is untouched (v1 partitions
// already warmed stay hot); the payoff comes at the next open, which maps
// the columnar files and recovers without decoding a single event. Every
// step is crash-safe: until a rename lands the v1 file is intact and a
// half-written temp is swept at the next open; after it, the new file
// carries exactly the same WAL range, entities, events, and postings, so
// recovery replays nothing twice.
func (p *Persistent) RewriteLegacySegments() (int, error) {
	if err := p.WarmUp(); err != nil {
		return 0, err
	}
	p.compactMu.Lock()
	defer p.compactMu.Unlock()
	p.segMu.Lock()
	entries := append([]*segEntry(nil), p.segs...)
	p.segMu.Unlock()
	n := 0
	for _, e := range entries {
		v1, ok := e.seg.(*segmentFile)
		if !ok {
			continue
		}
		entities, err := v1.readEntities()
		if err != nil {
			return n, err
		}
		var events []types.Event
		f, err := os.Open(v1.path)
		if err != nil {
			return n, fmt.Errorf("storage: segment: %w", err)
		}
		for i := range v1.parts {
			evs, _, _, err := v1.loadPartition(f, &v1.parts[i])
			if err != nil {
				f.Close()
				return n, err
			}
			events = append(events, evs...)
		}
		f.Close()
		if err := p.crash("rewrite-collected"); err != nil {
			return n, err
		}
		var sf2 segment
		if p.opts.LegacySegmentV2 {
			sf2, err = writeSegmentV2(filepath.Dir(v1.path), v1.firstSeq, v1.lastSeq, entities, events)
		} else {
			sf2, err = writeSegmentV3(filepath.Dir(v1.path), v1.firstSeq, v1.lastSeq, entities, events, p.Entity)
		}
		if err != nil {
			return n, err
		}
		if err := p.crash("rewrite-renamed"); err != nil {
			return n, err
		}
		p.segMu.Lock()
		e.seg = sf2
		p.segMu.Unlock()
		n++
	}
	return n, nil
}

func (p *Persistent) crash(point string) error {
	if p.crashHook != nil {
		return p.crashHook(point)
	}
	return nil
}

// background runs the group-commit flusher and the compaction timer.
func (p *Persistent) background() {
	defer p.bg.Done()
	flushEvery := p.opts.FlushInterval
	if flushEvery <= 0 {
		flushEvery = time.Hour
	}
	compactEvery := p.opts.CompactInterval
	if compactEvery <= 0 {
		compactEvery = time.Hour
	}
	flush := time.NewTicker(flushEvery)
	compact := time.NewTicker(compactEvery)
	defer flush.Stop()
	defer compact.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-flush.C:
			if p.opts.FlushInterval > 0 && p.dirty.Load() {
				// Sync owns the dirty/latch protocol: on failure the
				// batches stay marked unsynced and Ingest refuses new
				// acknowledgements until a sync lands.
				_ = p.Sync()
			}
		case <-compact.C:
			if p.opts.CompactInterval > 0 {
				p.compactAndReport()
			}
		case <-p.compactc:
			p.compactAndReport()
		}
	}
}

// compactAndReport runs a background compaction, reporting failures
// instead of discarding them: a failed compaction retries next tick (the
// WAL keeps everything until a segment covers it), but silence would hide
// a WAL growing without bound.
func (p *Persistent) compactAndReport() {
	if err := p.Compact(); err != nil {
		fmt.Fprintf(os.Stderr, "storage: background compaction failed (will retry): %v\n", err)
	}
}

// Close stops the background work, syncs outstanding appends, and closes
// the log. The embedded store remains queryable; further durable ingests
// are invalid.
func (p *Persistent) Close() error {
	var err error
	p.closeOnce.Do(func() {
		close(p.stop)
		p.bg.Wait()
		err = p.log.Close()
		p.unlock()
	})
	return err
}

// DurabilityStats is the /stats view of the persistence machinery.
type DurabilityStats struct {
	// WALRecords and WALBytes are the log's current depth — batches not
	// yet folded into segments (including not-yet-synced ones).
	WALRecords int   `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
	// Segments is the number of immutable segment files; SegmentEvents
	// the events they hold; SegmentsV2 how many are columnar (v2 or newer;
	// the rest are legacy v1 row segments); SegmentsV3 how many of those
	// additionally carry compressed blocks and attribute zone maps.
	Segments      int `json:"segments"`
	SegmentsV2    int `json:"segments_v2"`
	SegmentsV3    int `json:"segments_v3"`
	SegmentEvents int `json:"segment_events"`
	// CoveredSeq and LastSeq bound the recovery replay: records in
	// (CoveredSeq, LastSeq] replay from the WAL on restart.
	CoveredSeq uint64 `json:"covered_seq"`
	LastSeq    uint64 `json:"last_seq"`
	// Loaded reports whether segment payloads have been warmed into
	// memory; Replayed counts WAL records applied by the last open.
	Loaded      bool   `json:"loaded"`
	Replayed    uint64 `json:"replayed"`
	Compactions uint64 `json:"compactions"`
	// CompactionNanos is the cumulative wall time spent producing segments;
	// WALFsyncs and WALFsyncNanos count the log's fsync calls and their
	// cumulative duration. Together they put numbers on the durability
	// machinery's two costs: the per-commit fsync and the periodic fold.
	CompactionNanos int64  `json:"compaction_nanos"`
	WALFsyncs       uint64 `json:"wal_fsyncs"`
	WALFsyncNanos   int64  `json:"wal_fsync_nanos"`
}

// DurabilityStats reports the persistence counters.
func (p *Persistent) DurabilityStats() DurabilityStats {
	records, bytes := p.log.Depth()
	p.segMu.Lock()
	segs, segsV2, segsV3, events := len(p.segs), 0, 0, 0
	for _, e := range p.segs {
		events += e.seg.events()
		if e.seg.formatVersion() >= 2 {
			segsV2++
		}
		if e.seg.formatVersion() >= 3 {
			segsV3++
		}
	}
	covered := p.coveredSeq
	p.segMu.Unlock()
	st := DurabilityStats{
		WALRecords:    records,
		WALBytes:      bytes,
		Segments:      segs,
		SegmentsV2:    segsV2,
		SegmentsV3:    segsV3,
		SegmentEvents: events,
		CoveredSeq:    covered,
		LastSeq:       p.log.LastSeq(),
		Loaded:        p.loaded.Load(),
		Replayed:      p.replayed.Load(),
		Compactions:   p.compactions.Load(),
	}
	st.CompactionNanos = p.compactNanos.Load()
	st.WALFsyncs, st.WALFsyncNanos = p.log.SyncStats()
	return st
}
