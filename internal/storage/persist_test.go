package storage

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"aiql/internal/gen"
	"aiql/internal/types"
)

// persistOpts disables the background loops so tests drive flushing and
// compaction deterministically, and syncs every batch so truncation
// offsets are the only variable.
func persistOpts() PersistOptions {
	return PersistOptions{
		SyncEveryBatch:  true,
		FlushInterval:   -1,
		CompactInterval: -1,
	}
}

// splitDataset cuts a dataset into n event batches; entities all ride in
// the first batch (they must exist before events reference them — the
// same contract /ingest callers follow).
func splitDataset(ds *types.Dataset, n int) []*types.Dataset {
	out := make([]*types.Dataset, 0, n)
	per := (len(ds.Events) + n - 1) / n
	for i := 0; i < len(ds.Events); i += per {
		end := i + per
		if end > len(ds.Events) {
			end = len(ds.Events)
		}
		b := &types.Dataset{Events: ds.Events[i:end]}
		if i == 0 {
			b.Entities = ds.Entities
		}
		out = append(out, b)
	}
	return out
}

// assertStoresEqual compares two stores exhaustively: counts, partition
// layout, entity tables, full event streams, and an indexed query — the
// definition of "recovery rebuilt the same store".
func assertStoresEqual(t *testing.T, got, want *Store, label string) {
	t.Helper()
	if got.EventCount() != want.EventCount() {
		t.Fatalf("%s: event count %d, want %d", label, got.EventCount(), want.EventCount())
	}
	if got.PartitionCount() != want.PartitionCount() {
		t.Fatalf("%s: partitions %d, want %d", label, got.PartitionCount(), want.PartitionCount())
	}
	gd, wd := got.Days(), want.Days()
	if len(gd) != len(wd) {
		t.Fatalf("%s: days %v, want %v", label, gd, wd)
	}
	for i := range gd {
		if gd[i] != wd[i] {
			t.Fatalf("%s: days %v, want %v", label, gd, wd)
		}
	}

	want.mu.RLock()
	wantEnts := make(map[types.EntityID]*types.Entity, len(want.entities))
	for id, e := range want.entities {
		wantEnts[id] = e
	}
	want.mu.RUnlock()
	for id, we := range wantEnts {
		ge := got.Entity(id)
		if ge == nil {
			t.Fatalf("%s: entity %d missing", label, id)
		}
		if ge.Type != we.Type || ge.AgentID != we.AgentID || len(ge.Attrs) != len(we.Attrs) {
			t.Fatalf("%s: entity %d differs: %+v vs %+v", label, id, ge, we)
		}
		for k, v := range we.Attrs {
			if ge.Attrs[k] != v {
				t.Fatalf("%s: entity %d attr %q = %q, want %q", label, id, k, ge.Attrs[k], v)
			}
		}
	}

	all := &DataQuery{Ops: types.AllOps()}
	gm, wm := got.Run(context.Background(), all), want.Run(context.Background(), all)
	if len(gm) != len(wm) {
		t.Fatalf("%s: full scan %d matches, want %d", label, len(gm), len(wm))
	}
	for i := range gm {
		a, b := gm[i].Event, wm[i].Event
		if a.ID != b.ID || a.Start != b.Start || a.Seq != b.Seq || a.Op != b.Op ||
			a.Subject != b.Subject || a.Object != b.Object || a.Amount != b.Amount {
			t.Fatalf("%s: match %d differs: %+v vs %+v", label, i, a, b)
		}
	}

	// An indexed path: posting lists and hash indexes must have survived.
	idx := &DataQuery{
		SubjType: types.EntityProcess,
		ObjType:  types.EntityFile,
		Ops:      types.NewOpSet(types.OpRead, types.OpWrite),
	}
	if g, w := len(got.Run(context.Background(), idx)), len(want.Run(context.Background(), idx)); g != w {
		t.Fatalf("%s: indexed query %d matches, want %d", label, g, w)
	}
}

// memStoreOf ingests the given batches into a fresh in-memory store — the
// uninterrupted reference run.
func memStoreOf(batches []*types.Dataset) *Store {
	st := New(Options{})
	for _, b := range batches {
		st.Ingest(b)
	}
	return st
}

func openOrFatal(t *testing.T, dir string, opts PersistOptions) *Persistent {
	t.Helper()
	p, err := OpenPersistent(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	if err := p.WarmUp(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPersistentRoundTripNoCompaction(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	batches := splitDataset(ds, 5)
	dir := t.TempDir()

	p := openOrFatal(t, dir, persistOpts())
	for _, b := range batches {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	want := memStoreOf(batches)
	assertStoresEqual(t, p.Store, want, "before restart")
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	re := openOrFatal(t, dir, persistOpts())
	st := re.DurabilityStats()
	if st.Replayed != uint64(len(batches)) {
		t.Fatalf("replayed %d WAL records, want %d", st.Replayed, len(batches))
	}
	assertStoresEqual(t, re.Store, want, "after restart (WAL only)")
}

func TestPersistentRoundTripWithCompaction(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	batches := splitDataset(ds, 6)
	dir := t.TempDir()

	p := openOrFatal(t, dir, persistOpts())
	for i, b := range batches {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
		// Compact twice mid-stream so segments straddle partitions and the
		// final state mixes segments with a WAL suffix.
		if i == 1 || i == 3 {
			if err := p.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := memStoreOf(batches)
	st := p.DurabilityStats()
	if st.Segments != 2 {
		t.Fatalf("segments = %d, want 2", st.Segments)
	}
	if st.WALRecords != 2 {
		t.Fatalf("WAL depth = %d records, want 2 (batches after last compaction)", st.WALRecords)
	}
	assertStoresEqual(t, p.Store, want, "before restart")
	p.Close()

	re := openOrFatal(t, dir, persistOpts())
	assertStoresEqual(t, re.Store, want, "after restart (segments + WAL)")

	// Segment data must actually come from segment files, not the WAL.
	st = re.DurabilityStats()
	if st.Segments != 2 || st.SegmentEvents == 0 {
		t.Fatalf("reopened stats: %+v", st)
	}
	if st.Replayed != 2 {
		t.Fatalf("reopened replayed %d records, want 2", st.Replayed)
	}

	// A third compaction after restart folds the remaining WAL records.
	if err := re.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := re.DurabilityStats(); st.WALRecords != 0 || st.Segments != 3 {
		t.Fatalf("after final compaction: %+v", st)
	}
	assertStoresEqual(t, re.Store, want, "after final compaction")

	// And a fully-compacted store still reopens identically.
	re.Close()
	re2 := openOrFatal(t, dir, persistOpts())
	assertStoresEqual(t, re2.Store, want, "after restart (segments only)")
}

// TestTornWALTailAtEveryOffset is the "kill ingestion at arbitrary WAL
// offsets" harness: the WAL's tail is cut at a sweep of byte offsets and
// each recovery must produce exactly the store of the batches that fully
// landed — never an error, never a partial batch.
func TestTornWALTailAtEveryOffset(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	batches := splitDataset(ds, 4)

	// Build one pristine WAL.
	master := t.TempDir()
	p := openOrFatal(t, master, persistOpts())
	for _, b := range batches {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	walDir := filepath.Join(master, "wal")
	names, err := os.ReadDir(walDir)
	if err != nil || len(names) != 1 {
		t.Fatalf("wal files: %v (%v)", names, err)
	}
	pristine, err := os.ReadFile(filepath.Join(walDir, names[0].Name()))
	if err != nil {
		t.Fatal(err)
	}

	// Batch boundaries inside the file: magic, then per record 16-byte
	// header + payload.
	boundaries := []int64{8}
	off := int64(8)
	for _, b := range batches {
		off += 16 + int64(len(encodeBatch(b.Entities, b.Events)))
		boundaries = append(boundaries, off)
	}
	if boundaries[len(boundaries)-1] != int64(len(pristine)) {
		t.Fatalf("boundary math: %d vs file %d", boundaries[len(boundaries)-1], len(pristine))
	}

	// Sweep cuts: each batch boundary, plus offsets that tear the header,
	// the payload start, the payload middle, and the final byte.
	cuts := map[int64]int{} // cut offset -> batches surviving
	for i, b := range boundaries {
		cuts[b] = i
		if i < len(boundaries)-1 {
			cuts[b+1] = i  // torn header
			cuts[b+16] = i // header complete, empty payload
			cuts[b+17] = i // torn payload
			next := boundaries[i+1]
			cuts[(b+next)/2] = i // mid-payload
			cuts[next-1] = i     // one byte short
		}
	}

	for cut, nBatches := range cuts {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, "wal"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal", names[0].Name()), pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenPersistent(dir, persistOpts())
		if err != nil {
			t.Fatalf("cut at %d: recovery failed: %v", cut, err)
		}
		want := memStoreOf(batches[:nBatches])
		assertStoresEqual(t, re.Store, want, fmt.Sprintf("cut at %d (%d batches)", cut, nBatches))
		re.Close()
	}
}

// TestCrashDuringCompaction aborts a compaction at each of its named crash
// points and asserts recovery rebuilds the full store from whatever mix of
// WAL and segment files the crash left behind.
func TestCrashDuringCompaction(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	batches := splitDataset(ds, 4)
	want := memStoreOf(batches)
	crashErr := errors.New("injected crash")

	for _, point := range []string{"compact-collected", "segment-written", "before-wal-remove"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			p := openOrFatal(t, dir, persistOpts())
			for _, b := range batches {
				if err := p.Ingest(b); err != nil {
					t.Fatal(err)
				}
			}
			p.crashHook = func(at string) error {
				if at == point {
					return crashErr
				}
				return nil
			}
			if err := p.Compact(); !errors.Is(err, crashErr) {
				t.Fatalf("Compact returned %v, want injected crash", err)
			}
			// Abandon p without Close (a crash closes nothing) — but a
			// dead process does drop its directory flock, so the in-process
			// simulation must release it explicitly before reopening.
			p.unlock()
			re := openOrFatal(t, dir, persistOpts())
			assertStoresEqual(t, re.Store, want, "after crash at "+point)

			// The half-finished state must also compact cleanly now.
			if err := re.Compact(); err != nil {
				t.Fatal(err)
			}
			if st := re.DurabilityStats(); st.WALRecords != 0 {
				t.Fatalf("WAL depth after recovery compaction = %d, want 0", st.WALRecords)
			}
			assertStoresEqual(t, re.Store, want, "after recovery compaction at "+point)
		})
	}
}

// TestStaleCompactionTempFileIgnored plants garbage .tmp files (the
// leftovers of a segment write that never reached its rename) and asserts
// recovery sweeps them and proceeds from the WAL.
func TestStaleCompactionTempFileIgnored(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	batches := splitDataset(ds, 3)
	dir := t.TempDir()
	p := openOrFatal(t, dir, persistOpts())
	for _, b := range batches {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()

	segDir := filepath.Join(dir, "seg")
	stale := filepath.Join(segDir, segFileName(1, 3)+".tmp")
	if err := os.WriteFile(stale, []byte("half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	re := openOrFatal(t, dir, persistOpts())
	assertStoresEqual(t, re.Store, memStoreOf(batches), "after stale tmp sweep")
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale tmp file survived recovery: %v", err)
	}
}

// TestMissingSegmentStillCoveredByWAL is the "crash before the fsync'd
// segment landed" case: the WAL was not yet truncated, so deleting the
// segment file must lose nothing.
func TestMissingSegmentStillCoveredByWAL(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	batches := splitDataset(ds, 3)
	dir := t.TempDir()
	p := openOrFatal(t, dir, persistOpts())
	for _, b := range batches {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	// Compact but crash before the WAL removal: segment exists AND the
	// WAL still covers it.
	p.crashHook = func(at string) error {
		if at == "before-wal-remove" {
			return errors.New("crash")
		}
		return nil
	}
	if err := p.Compact(); err == nil {
		t.Fatal("expected injected crash")
	}
	p.unlock() // a dead process releases its flock; the simulation must too

	// Delete the segment — the fsync'd file is gone, the WAL is not.
	segDir := filepath.Join(dir, "seg")
	ents, err := os.ReadDir(segDir)
	if err != nil {
		t.Fatal(err)
	}
	removed := 0
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".seg") {
			if err := os.Remove(filepath.Join(segDir, e.Name())); err != nil {
				t.Fatal(err)
			}
			removed++
		}
	}
	if removed != 1 {
		t.Fatalf("removed %d segments, want 1", removed)
	}

	re := openOrFatal(t, dir, persistOpts())
	assertStoresEqual(t, re.Store, memStoreOf(batches), "after segment loss covered by WAL")
}

// TestPersistentConcurrentIngestQuery holds the durable path to the same
// bar as the in-memory store: ingest batches while snapshot queries run,
// under -race, and reopen to the same final state.
func TestPersistentConcurrentIngestQuery(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	batches := splitDataset(ds, 8)
	dir := t.TempDir()
	opts := persistOpts()
	opts.SyncEveryBatch = false // exercise the group-commit path
	opts.FlushInterval = time.Millisecond
	p, err := OpenPersistent(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WarmUp(); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		q := &DataQuery{Ops: types.AllOps()}
		for i := 0; i < 50; i++ {
			c := p.Store.Scan(context.Background(), q)
			Drain(c)
			c.Close()
		}
	}()
	for i, b := range batches {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
		if i == 4 {
			if err := p.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	<-done
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	re := openOrFatal(t, dir, persistOpts())
	assertStoresEqual(t, re.Store, memStoreOf(batches), "after concurrent run")
}

// TestSeqResumesAfterFullCompaction: once every WAL file has been folded
// into segments and deleted, a reopened log must continue the sequence
// after the covered range. A log restarting at 1 would journal new
// batches with already-covered sequence numbers — and the *next* recovery
// would silently skip them as compacted duplicates.
func TestSeqResumesAfterFullCompaction(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	batches := splitDataset(ds, 4)
	dir := t.TempDir()

	p := openOrFatal(t, dir, persistOpts())
	for _, b := range batches[:2] {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := p.DurabilityStats(); st.WALRecords != 0 {
		t.Fatalf("WAL depth after full compaction = %d, want 0", st.WALRecords)
	}
	p.Close()

	// Reopen over an empty WAL and ingest the rest.
	re := openOrFatal(t, dir, persistOpts())
	if st := re.DurabilityStats(); st.LastSeq != st.CoveredSeq {
		t.Fatalf("reopened seq state: last=%d covered=%d, want equal", st.LastSeq, st.CoveredSeq)
	}
	for _, b := range batches[2:] {
		if err := re.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if st := re.DurabilityStats(); st.LastSeq <= st.CoveredSeq {
		t.Fatalf("new batches journaled at seq %d <= covered %d — they would be skipped on recovery", st.LastSeq, st.CoveredSeq)
	}
	re.Close()

	re2 := openOrFatal(t, dir, persistOpts())
	assertStoresEqual(t, re2.Store, memStoreOf(batches), "after compact+reopen+ingest+reopen")
}

// TestRecoveryPreservesEntityFirstWriteWins: entity registration is
// first-write-wins, and recovery must resolve a re-registered entity id
// the same way the live process did — segment entities (older sequences)
// install before the WAL suffix replays, in segment order.
func TestRecoveryPreservesEntityFirstWriteWins(t *testing.T) {
	dir := t.TempDir()
	p := openOrFatal(t, dir, persistOpts())
	mkBatch := func(exe string, evID uint64, start int64) *types.Dataset {
		return &types.Dataset{
			Entities: []types.Entity{
				{ID: 7, Type: types.EntityProcess, AgentID: 1, Attrs: map[string]string{types.AttrExeName: exe}},
				{ID: 8, Type: types.EntityFile, AgentID: 1, Attrs: map[string]string{types.AttrName: "/f"}},
			},
			Events: []types.Event{{ID: types.EventID(evID), AgentID: 1, Subject: 7, Object: 8, Op: types.OpRead, Start: start, Seq: evID}},
		}
	}
	// Batch 1 wins the entity registration and is compacted into a
	// segment; batch 2 re-registers entity 7 with different attrs and
	// stays in the WAL.
	if err := p.Ingest(mkBatch("/bin/first", 1, 1000)); err != nil {
		t.Fatal(err)
	}
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := p.Ingest(mkBatch("/bin/second", 2, 2000)); err != nil {
		t.Fatal(err)
	}
	if got := p.Entity(7).Attrs[types.AttrExeName]; got != "/bin/first" {
		t.Fatalf("live store entity 7 = %q, want first registration to win", got)
	}
	p.Close()

	re := openOrFatal(t, dir, persistOpts())
	if got := re.Entity(7).Attrs[types.AttrExeName]; got != "/bin/first" {
		t.Fatalf("recovered entity 7 = %q, want /bin/first (segment before WAL replay)", got)
	}
	// The events from both batches are all present regardless.
	if got := re.EventCount(); got != 2 {
		t.Fatalf("recovered %d events, want 2", got)
	}
}

// TestDataDirLockRefusesSecondOpener: two processes appending to one WAL
// would interleave records; the directory flock must refuse the second
// opener while the first lives, and admit it after Close.
func TestDataDirLockRefusesSecondOpener(t *testing.T) {
	dir := t.TempDir()
	p := openOrFatal(t, dir, persistOpts())
	if _, err := OpenPersistent(dir, persistOpts()); err == nil {
		t.Fatal("second OpenPersistent on a locked directory succeeded")
	}
	p.Close()
	p2, err := OpenPersistent(dir, persistOpts())
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	p2.Close()
}
