package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"aiql/internal/types"
)

// castagnoli is the CRC-32C table shared by segment blocks; the WAL uses
// the same polynomial for its records.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Binary codec for entities, events and ingest batches — the payload
// format shared by WAL records and segment files. Events are fixed-width
// (eventWireBytes); entities are length-prefixed because attributes are
// variable. All integers little-endian. The codec is deliberately not
// self-describing: WAL records and segment blocks carry checksums and
// counts around it, so a decode error here always means corruption that
// the outer layer failed to catch, not a format negotiation problem.

const eventWireBytes = 9*8 + 1 // 9 fixed 64-bit fields + op byte

func appendEvent(buf []byte, ev *types.Event) []byte {
	var b [eventWireBytes]byte
	binary.LittleEndian.PutUint64(b[0:], uint64(ev.ID))
	binary.LittleEndian.PutUint64(b[8:], uint64(int64(ev.AgentID)))
	binary.LittleEndian.PutUint64(b[16:], uint64(ev.Subject))
	binary.LittleEndian.PutUint64(b[24:], uint64(ev.Object))
	binary.LittleEndian.PutUint64(b[32:], uint64(ev.Start))
	binary.LittleEndian.PutUint64(b[40:], uint64(ev.End))
	binary.LittleEndian.PutUint64(b[48:], ev.Seq)
	binary.LittleEndian.PutUint64(b[56:], uint64(ev.Amount))
	binary.LittleEndian.PutUint64(b[64:], uint64(int64(ev.FailCode)))
	b[72] = byte(ev.Op)
	return append(buf, b[:]...)
}

func decodeEvent(b []byte) (types.Event, error) {
	if len(b) < eventWireBytes {
		return types.Event{}, fmt.Errorf("storage: short event record (%d bytes)", len(b))
	}
	return types.Event{
		ID:       types.EventID(binary.LittleEndian.Uint64(b[0:])),
		AgentID:  int(int64(binary.LittleEndian.Uint64(b[8:]))),
		Subject:  types.EntityID(binary.LittleEndian.Uint64(b[16:])),
		Object:   types.EntityID(binary.LittleEndian.Uint64(b[24:])),
		Start:    int64(binary.LittleEndian.Uint64(b[32:])),
		End:      int64(binary.LittleEndian.Uint64(b[40:])),
		Seq:      binary.LittleEndian.Uint64(b[48:]),
		Amount:   int64(binary.LittleEndian.Uint64(b[56:])),
		FailCode: int(int64(binary.LittleEndian.Uint64(b[64:]))),
		Op:       types.Op(b[72]),
	}, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func appendEntity(buf []byte, e *types.Entity) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(e.ID))
	buf = append(buf, byte(e.Type))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(e.AgentID)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Attrs)))
	for k, v := range e.Attrs {
		buf = appendString(buf, k)
		buf = appendString(buf, v)
	}
	return buf
}

// decoder tracks an offset through a byte slice, failing closed on any
// out-of-bounds read.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("storage: truncated record at offset %d", d.off)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u32() uint32 {
	if b := d.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (d *decoder) u64() uint64 {
	if b := d.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (d *decoder) byte() byte {
	if b := d.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil || int(n) > len(d.b)-d.off {
		d.fail()
		return ""
	}
	return string(d.take(int(n)))
}

func (d *decoder) entity() types.Entity {
	e := types.Entity{
		ID:      types.EntityID(d.u64()),
		Type:    types.EntityType(d.byte()),
		AgentID: int(int64(d.u64())),
	}
	n := d.u32()
	if d.err != nil {
		return e
	}
	// Bound the decoded count before sizing the map: every attribute pair
	// costs at least two u32 length prefixes, so a count beyond the
	// remaining bytes is corruption, not a size hint.
	if int(n) > (len(d.b)-d.off)/8+1 {
		d.fail()
		return e
	}
	e.Attrs = make(map[string]string, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		k := d.str()
		e.Attrs[k] = d.str()
	}
	return e
}

func (d *decoder) event() types.Event {
	b := d.take(eventWireBytes)
	if b == nil {
		return types.Event{}
	}
	ev, err := decodeEvent(b)
	if err != nil && d.err == nil {
		d.err = err
	}
	return ev
}

// encodeBatch serializes one ingest batch — the WAL record payload.
func encodeBatch(entities []types.Entity, events []types.Event) []byte {
	size := 8 + len(events)*eventWireBytes + len(entities)*32
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entities)))
	for i := range entities {
		buf = appendEntity(buf, &entities[i])
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(events)))
	for i := range events {
		buf = appendEvent(buf, &events[i])
	}
	return buf
}

// decodeBatch parses a WAL record payload back into its entities and
// events.
func decodeBatch(payload []byte) ([]types.Entity, []types.Event, error) {
	d := &decoder{b: payload}
	ne := d.u32()
	if d.err != nil {
		return nil, nil, d.err
	}
	if int(ne) > len(payload) { // each entity needs >= 1 byte
		return nil, nil, fmt.Errorf("storage: implausible entity count %d", ne)
	}
	entities := make([]types.Entity, 0, ne)
	for i := uint32(0); i < ne && d.err == nil; i++ {
		entities = append(entities, d.entity())
	}
	nv := d.u32()
	if d.err != nil {
		return nil, nil, d.err
	}
	if int(nv) > (len(payload)-d.off)/eventWireBytes+1 {
		return nil, nil, fmt.Errorf("storage: implausible event count %d", nv)
	}
	events := make([]types.Event, 0, nv)
	for i := uint32(0); i < nv && d.err == nil; i++ {
		events = append(events, d.event())
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	if d.off != len(payload) {
		return nil, nil, fmt.Errorf("storage: %d trailing bytes after batch", len(payload)-d.off)
	}
	return entities, events, nil
}

// appendPostings serializes one posting-list map (entity id -> sorted
// event positions).
func appendPostings(buf []byte, lists map[types.EntityID][]int32) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(lists)))
	for id, positions := range lists {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(positions)))
		for _, p := range positions {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
		}
	}
	return buf
}

func (d *decoder) postings(maxPos int) map[types.EntityID][]int32 {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	// Each posting list costs at least an id (u64) plus a count (u32);
	// a corrupt list count must error, never size an allocation.
	if int(n) > (len(d.b)-d.off)/12+1 {
		d.fail()
		return nil
	}
	lists := make(map[types.EntityID][]int32, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		id := types.EntityID(d.u64())
		k := d.u32()
		if d.err != nil || int(k) > (len(d.b)-d.off)/4+1 {
			d.fail()
			return nil
		}
		positions := make([]int32, 0, k)
		for j := uint32(0); j < k && d.err == nil; j++ {
			p := int32(d.u32())
			if p < 0 || int(p) >= maxPos {
				d.fail()
				return nil
			}
			positions = append(positions, p)
		}
		lists[id] = positions
	}
	return lists
}
