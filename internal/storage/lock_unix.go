//go:build unix

package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on <dir>/LOCK, refusing if
// another process holds it. Two writers appending to one WAL would
// interleave records and corrupt the sealed history, so the lock guards
// the whole data directory for the store's lifetime. flock (not a PID
// file) because the kernel releases it on any process exit — a crashed
// owner never wedges the next boot.
func lockDir(dir string) (func(), error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	path := filepath.Join(dir, "LOCK")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: %s is locked by another process (%w)", dir, err)
	}
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}, nil
}
