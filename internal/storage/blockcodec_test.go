package storage

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

func TestZigzagRoundTrip(t *testing.T) {
	vals := []int64{0, 1, -1, 2, -2, 63, -64, math.MaxInt64, math.MinInt64, 1 << 40, -(1 << 40)}
	for _, v := range vals {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("unzigzag(zigzag(%d)) = %d", v, got)
		}
	}
	// Small magnitudes must map to small codes (that is the whole point).
	if zigzag(-1) != 1 || zigzag(1) != 2 || zigzag(-2) != 3 {
		t.Errorf("zigzag interleaving broken: %d %d %d", zigzag(-1), zigzag(1), zigzag(-2))
	}
}

func TestByteReaderVarints(t *testing.T) {
	var buf []byte
	want := []uint64{0, 1, 127, 128, 300, 1 << 21, math.MaxUint64}
	for _, v := range want {
		buf = binary.AppendUvarint(buf, v)
	}
	r := byteReader{buf: buf}
	for i, v := range want {
		if got := r.uvarint(); got != v {
			t.Fatalf("uvarint %d = %d, want %d", i, got, v)
		}
	}
	if !r.done() {
		t.Fatalf("reader not done after all values: off=%d err=%v", r.off, r.err)
	}
	// Reading past the end must set err, not panic, and done() must be false.
	if got := r.uvarint(); got != 0 || !r.err {
		t.Fatalf("read past end: got %d, err=%v", got, r.err)
	}
	if r.done() {
		t.Fatal("done() true after error")
	}
	// A truncated multi-byte varint must error.
	tr := byteReader{buf: []byte{0x80, 0x80}}
	if got := tr.uvarint(); got != 0 || !tr.err {
		t.Fatalf("truncated varint: got %d, err=%v", got, tr.err)
	}
}

func TestBitPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, width := range []int{0, 1, 3, 7, 8, 13, 16, 27, 32} {
		for _, n := range []int{1, 2, 63, 64, 65, 1024} {
			base := rng.Uint32() >> 1
			vals := make([]uint32, n)
			for i := range vals {
				if width == 32 {
					vals[i] = rng.Uint32()
					base = 0
				} else {
					vals[i] = base + uint32(rng.Int63n(1<<width))
				}
			}
			enc := appendPacked(nil, vals, base, width)
			wantLen := (n*width + 7) / 8
			if len(enc) != wantLen {
				t.Fatalf("width %d n %d: encoded %d bytes, want %d", width, n, len(enc), wantLen)
			}
			out := make([]uint32, n)
			r := byteReader{buf: enc}
			r.unpack(n, base, width, out)
			if r.err {
				t.Fatalf("width %d n %d: unpack errored", width, n)
			}
			if !r.done() {
				t.Fatalf("width %d n %d: %d trailing bytes", width, n, len(enc)-r.off)
			}
			for i := range vals {
				if out[i] != vals[i] {
					t.Fatalf("width %d n %d: val %d = %d, want %d", width, n, i, out[i], vals[i])
				}
			}
		}
	}
}

func TestBitPackTruncated(t *testing.T) {
	vals := []uint32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	enc := appendPacked(nil, vals, 0, 5)
	r := byteReader{buf: enc[:len(enc)-1]}
	out := make([]uint32, len(vals))
	r.unpack(len(vals), 0, 5, out)
	if !r.err {
		t.Fatal("unpack of truncated buffer did not set err")
	}
}

func lzRoundTrip(t *testing.T, src []byte) {
	t.Helper()
	enc := lzCompress(nil, src)
	dst := make([]byte, len(src))
	if err := lzDecode(dst, enc); err != nil {
		t.Fatalf("decode(%d bytes compressed from %d): %v", len(enc), len(src), err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("round trip mismatch: %d bytes in, %d out", len(src), len(dst))
	}
}

func TestLZRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := map[string][]byte{
		"empty":      {},
		"one":        {0x42},
		"three":      {1, 2, 3},
		"min-match":  {9, 9, 9, 9},
		"all-zero":   make([]byte, 10_000),
		"alternate":  bytes.Repeat([]byte{0xAA, 0x55}, 4096),
		"longlit":    func() []byte { b := make([]byte, 700); rng.Read(b); return b }(),
		"longmatch":  bytes.Repeat([]byte("abcdefgh"), 2000),
		"nearmiss":   append(bytes.Repeat([]byte("abcd"), 100), 'x'),
		"shorttail1": append(bytes.Repeat([]byte{7}, 200), 1),
		"shorttail2": append(bytes.Repeat([]byte{7}, 200), 1, 2),
		"shorttail3": append(bytes.Repeat([]byte{7}, 200), 1, 2, 3),
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) { lzRoundTrip(t, src) })
	}
	t.Run("random-sizes", func(t *testing.T) {
		for i := 0; i < 200; i++ {
			n := rng.Intn(5000)
			src := make([]byte, n)
			// Mix random bytes with copied spans so matches actually occur.
			rng.Read(src)
			for j := 0; j+64 < n; j += 128 {
				copy(src[j+32:j+64], src[j:j+32])
			}
			lzRoundTrip(t, src)
		}
	})
	t.Run("compresses-repetitive", func(t *testing.T) {
		src := bytes.Repeat([]byte("segment "), 1024)
		if enc := lzCompress(nil, src); len(enc) >= len(src)/4 {
			t.Fatalf("repetitive input compressed %d -> %d, expected at least 4x", len(src), len(enc))
		}
	})
}

// TestLZDecodeMalformed feeds the decoder garbage and truncations: every
// call must return an error or succeed with exactly len(dst) bytes — never
// panic, never read or write out of bounds.
func TestLZDecodeMalformed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	src := bytes.Repeat([]byte("abcdefgh"), 64)
	enc := lzCompress(nil, src)

	// Truncations of a valid stream.
	for cut := 0; cut < len(enc); cut++ {
		dst := make([]byte, len(src))
		if err := lzDecode(dst, enc[:cut]); err == nil {
			t.Fatalf("decode of %d/%d-byte prefix succeeded", cut, len(enc))
		}
	}
	// Wrong output lengths for a valid stream.
	for _, n := range []int{0, 1, len(src) - 1, len(src) + 1, 4 * len(src)} {
		if err := lzDecode(make([]byte, n), enc); err == nil {
			t.Fatalf("decode into %d bytes succeeded, want %d", n, len(src))
		}
	}
	// Single-byte mutations: either a clean error or a full-length output.
	for i := 0; i < len(enc); i++ {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0xFF
		dst := make([]byte, len(src))
		_ = lzDecode(dst, mut) // must not panic
	}
	// Pure garbage of many sizes.
	for i := 0; i < 500; i++ {
		g := make([]byte, rng.Intn(300))
		rng.Read(g)
		_ = lzDecode(make([]byte, rng.Intn(600)), g) // must not panic
	}
}

// FuzzBlockCodec fuzzes both directions of the LZ codec: arbitrary input
// must round-trip exactly, and arbitrary bytes fed to the decoder must
// never panic or claim success at the wrong length.
func FuzzBlockCodec(f *testing.F) {
	f.Add([]byte(nil), 0)
	f.Add([]byte("aaaaaaaaaaaaaaaaaaaaaaaa"), 24)
	f.Add(bytes.Repeat([]byte{1, 2, 3, 4}, 64), 10)
	f.Fuzz(func(t *testing.T, data []byte, dstLen int) {
		enc := lzCompress(nil, data)
		dst := make([]byte, len(data))
		if err := lzDecode(dst, enc); err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if !bytes.Equal(dst, data) {
			t.Fatal("round-trip mismatch")
		}
		// Treat the fuzz input itself as a compressed stream.
		out := make([]byte, dstLen&0xFFFF)
		_ = lzDecode(out, data) // must not panic
	})
}
