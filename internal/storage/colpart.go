package storage

import (
	"context"
	"sort"

	"aiql/internal/pred"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// Cold partitions: a partition whose sealed history lives in mmap'ed
// columnar (v2/v3) segments instead of decoded []Event arrays. A coldRun is
// one segment partition; a partition's cold prefix is an ordered list of
// runs that are strictly older than every hot (in-memory) event in the
// partition:
//
//	run[0] < run[1] < … < run[k] < hot events        (by (Start, Seq))
//
// The invariant is maintained by construction — runs install only onto
// empty or colder partitions, and any arrival that would violate it (a hot
// append at or before the cold maximum, an overlapping run, a segment load
// racing WAL replay) triggers a thaw: the cold rows decode into the normal
// hot representation and the partition continues as a plain mutable one.
// Scans therefore stream the cold runs first and the hot events after, and
// temporal order falls out for free.
//
// Cold rows stay columnar until a query proves it needs them: zone maps
// prune blocks by time window, operation set, and dictionary id range; the
// surviving blocks decode into reusable column scratch and run through the
// vectorized predicate kernel; only actual matches materialize Events.

// coldRun is one sealed v2 segment partition serving as part of a
// partition's cold prefix.
type coldRun struct {
	sf *segmentV2File
	pi *segV2Part
}

func (r *coldRun) meta() (*segV2Meta, error) { return r.sf.loadMeta(r.pi) }

// decodeAll fully decodes a run into the hot representation: events in
// order plus posting lists, ready for installPartition or a thaw merge.
func (r *coldRun) decodeAll() ([]types.Event, map[types.EntityID][]int32, map[types.EntityID][]int32, error) {
	m, err := r.meta()
	if err != nil {
		return nil, nil, nil, err
	}
	events := make([]types.Event, 0, r.pi.nEvents)
	var cols blockCols
	rowBase := 0
	for b := range m.zones {
		if err := r.sf.decodeBlock(r.pi, m, b, rowBase, &cols); err != nil {
			return nil, nil, nil, err
		}
		for i := 0; i < cols.n; i++ {
			var ev types.Event
			cols.event(i, m, &ev)
			events = append(events, ev)
		}
		rowBase += cols.n
	}
	bySubject := make(map[types.EntityID][]int32, len(m.dict))
	byObject := make(map[types.EntityID][]int32, len(m.dict))
	for di, id := range m.dict {
		if ps := m.subjectPostings(di); len(ps) > 0 {
			list := make([]int32, len(ps))
			for i, p := range ps {
				list[i] = int32(p)
			}
			bySubject[id] = list
		}
		if ps := m.objectPostings(di); len(ps) > 0 {
			list := make([]int32, len(ps))
			for i, p := range ps {
				list[i] = int32(p)
			}
			byObject[id] = list
		}
	}
	return events, bySubject, byObject, nil
}

// coldPart is a partition's cold prefix: ascending, non-overlapping runs.
type coldPart struct {
	runs     []*coldRun
	n        int   // total cold rows
	maxStart int64 // max event start across runs (last run's maximum)
	// bad latches a decode failure from a thaw attempt: the partition can
	// no longer guarantee temporal order between its cold and hot halves,
	// so scans over it fail closed with this error.
	bad error
}

// installColdRun registers one sealed v2 partition with the store. The fast
// path is a pointer hand-off — no event decoded. When the cold invariant
// cannot hold (the partition already has hot events, or the run overlaps
// the existing cold prefix), the run decodes and installs through the
// normal merge path instead.
func (s *Store) installColdRun(sf *segmentV2File, pi *segV2Part) error {
	run := &coldRun{sf: sf, pi: pi}
	s.mu.Lock()
	p, ok := s.parts[pi.key]
	if !ok {
		p = &partition{
			key:       pi.key,
			bySubject: make(map[types.EntityID][]int32),
			byObject:  make(map[types.EntityID][]int32),
			cold: &coldPart{
				runs:     []*coldRun{run},
				n:        pi.nEvents,
				maxStart: pi.maxStart,
			},
		}
		s.parts[pi.key] = p
		s.insertPartLocked(p)
		s.eventCount += pi.nEvents
		s.mu.Unlock()
		return nil
	}
	if len(p.events) == 0 && p.cold != nil && p.cold.bad == nil && pi.minStart > p.cold.maxStart {
		// Runs arrive in firstSeq order, so a later run extending the cold
		// prefix just appends. Snapshots captured the runs slice by value;
		// the append is invisible to them (tail-append rule).
		p.cold.runs = append(p.cold.runs, run)
		p.cold.n += pi.nEvents
		p.cold.maxStart = pi.maxStart
		s.eventCount += pi.nEvents
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	// Conflict: fall back to the eager path (decode outside the lock).
	events, bySubject, byObject, err := run.decodeAll()
	if err != nil {
		return err
	}
	s.installPartition(pi.key, events, bySubject, byObject)
	return nil
}

// thawLocked decodes a partition's cold runs into the hot representation
// and merges them, after which the partition behaves as if every event had
// arrived through normal ingest. Called under s.mu when a mutation is about
// to violate the cold-before-hot invariant. On decode failure the error is
// latched: the partition's data is still safe on disk, but queries over it
// fail closed until the store reopens.
//
// aiql:locked mu
func (s *Store) thawLocked(p *partition) {
	cold := p.cold
	if cold == nil || cold.bad != nil {
		return
	}
	var all []types.Event
	for _, run := range cold.runs {
		events, _, _, err := run.decodeAll()
		if err != nil {
			cold.bad = err
			if s.coldErr == nil {
				s.coldErr = err
			}
			return
		}
		all = append(all, events...)
	}
	p.cold = nil
	p.shadow.Store(nil)
	s.cowPartLocked(p)
	for i := range all {
		ev := &all[i]
		pos := int32(len(p.events))
		if !p.dirty && pos > 0 && eventLess(ev, &p.events[pos-1]) {
			p.dirty = true
		}
		p.events = append(p.events, *ev)
		p.bySubject[ev.Subject] = append(p.bySubject[ev.Subject], pos)
		p.byObject[ev.Object] = append(p.byObject[ev.Object], pos)
	}
	// Cold rows already counted in eventCount at install; they only moved.
	s.scanStats.thaws.Add(1)
}

// ColdError reports a latched cold-decode failure (nil when healthy). The
// persistent store surfaces it on the ingest path so damage discovered
// during a thaw is not silent.
func (s *Store) ColdError() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.coldErr
}

// eventArena materializes matched cold rows in fixed-size chunks so the
// *types.Event pointers handed to consumers stay valid for the life of the
// result — and non-matching rows never materialize at all.
type eventArena struct {
	chunk []types.Event
}

func (a *eventArena) put(ev types.Event) *types.Event {
	if len(a.chunk) == cap(a.chunk) {
		a.chunk = make([]types.Event, 0, ScanBatchSize)
	}
	a.chunk = append(a.chunk, ev)
	return &a.chunk[len(a.chunk)-1]
}

// dictIndexSet maps a candidate entity-id set into sorted dictionary
// indexes of one run; ids absent from the dictionary drop out. Returns
// (nil, false) when the set is unbounded (nil) or too large to be worth
// mapping.
func dictIndexSet(cand map[types.EntityID]struct{}, m *segV2Meta) ([]uint32, bool) {
	const mapLimit = 1024
	if cand == nil || len(cand) > mapLimit {
		return nil, false
	}
	idx := make([]uint32, 0, len(cand))
	for id := range cand {
		if di := m.dictIndex(id); di >= 0 {
			idx = append(idx, uint32(di))
		}
	}
	sort.Slice(idx, func(i, j int) bool { return idx[i] < idx[j] })
	return idx, true
}

// anyInRange reports whether the sorted index set intersects [lo, hi].
func anyInRange(idx []uint32, lo, hi uint32) bool {
	i := sort.Search(len(idx), func(i int) bool { return idx[i] >= lo })
	return i < len(idx) && idx[i] <= hi
}

// scanCold streams one partition's cold runs through emit in temporal
// order. Blocks are pruned by zone map, decoded into reusable column
// scratch, filtered by the vectorized kernel where the predicate allows,
// and only matching rows materialize. emit returning false stops the scan
// (not an error); the returned error is always segment corruption or a
// decode failure.
func (sn *Snapshot) scanCold(ctx context.Context, p *partView, q *DataQuery, subjCand, objCand map[types.EntityID]struct{}, emit func(Match) bool) error {
	stats := &sn.store.scanStats
	zoneMaps := !sn.opts.DisableZoneMaps
	windowed := !q.Window.Unbounded()

	usePostings, fromSubject := false, false
	if !sn.opts.DisableIndexes && !q.ForceScan {
		switch {
		case subjCand != nil && len(subjCand) <= postingThreshold &&
			(objCand == nil || len(subjCand) <= len(objCand)):
			usePostings, fromSubject = true, true
		case objCand != nil && len(objCand) <= postingThreshold:
			usePostings, fromSubject = true, false
		}
	}

	arena := &eventArena{}
	var cols blockCols
	var sel pred.Bitmap

	// Attribute zone maps (v3 runs only): trigram bits every matching
	// subject/object entity must exhibit. Valid in candidate-set mode too —
	// candidate membership implies the predicate holds, which implies the
	// entity carries the required substrings. Zero masks never prune.
	var subjTriMask, objTriMask uint64
	if zoneMaps && !q.ForceScan {
		subjTriMask = requiredTriMask(q.SubjPred)
		objTriMask = requiredTriMask(q.ObjPred)
	}

	// countDecoded records one block decode, with v3 compression traffic.
	countDecoded := func(run *coldRun, z *segV2Zone) {
		stats.blocksDecoded.Add(1)
		if run.sf.version >= 3 {
			stats.compressedBytesRead.Add(int64(z.dataLen))
			stats.compressedBytesDecode.Add(int64(z.rawLen))
		}
	}

	// checkRow mirrors the hot path's check() over column data; it
	// materializes the event only after every filter passed. evtDone marks
	// the event predicate as already applied by the vectorized kernel.
	checkRow := func(m *segV2Meta, i int, evtDone bool) (Match, bool) {
		if windowed && !q.Window.Contains(cols.starts[i]) {
			return Match{}, false
		}
		if !q.Ops.Contains(cols.ops[i]) {
			return Match{}, false
		}
		subjID, objID := m.dict[cols.subj[i]], m.dict[cols.obj[i]]
		subj, obj := sn.entities[subjID], sn.entities[objID]
		if subj == nil || obj == nil {
			return Match{}, false
		}
		if q.SubjType != types.EntityInvalid && subj.Type != q.SubjType {
			return Match{}, false
		}
		if q.ObjType != types.EntityInvalid && obj.Type != q.ObjType {
			return Match{}, false
		}
		if subjCand != nil {
			if _, ok := subjCand[subjID]; !ok {
				return Match{}, false
			}
		} else if q.SubjPred != nil && !q.SubjPred.Eval(subj) {
			return Match{}, false
		}
		if objCand != nil {
			if _, ok := objCand[objID]; !ok {
				return Match{}, false
			}
		} else if q.ObjPred != nil && !q.ObjPred.Eval(obj) {
			return Match{}, false
		}
		var ev types.Event
		cols.event(i, m, &ev)
		if q.EvtPred != nil && !evtDone && !q.EvtPred.Eval(&ev) {
			return Match{}, false
		}
		return Match{Event: arena.put(ev), Subj: subj, Obj: obj}, true
	}

	for _, run := range p.cold {
		if ctx.Err() != nil {
			return nil
		}
		if zoneMaps && windowed && (run.pi.maxStart < q.Window.From || run.pi.minStart >= q.Window.To) {
			stats.blocksConsidered.Add(int64(run.pi.nBlocks))
			stats.blocksSkipped.Add(int64(run.pi.nBlocks))
			continue
		}
		m, err := run.meta()
		if err != nil {
			return err
		}

		if usePostings {
			positions := coldPostings(m, subjCand, objCand, fromSubject)
			if len(positions) == 0 {
				continue
			}
			// Positions are ascending, so blocks decode at most once each,
			// in order.
			rowBase, nextBase, b := 0, m.zones[0].count, 0
			decoded := false
			for k, pos := range positions {
				if k&1023 == 0 && ctx.Err() != nil {
					return nil
				}
				for int(pos) >= nextBase {
					b++
					rowBase = nextBase
					nextBase += m.zones[b].count
					decoded = false
				}
				if !decoded {
					stats.blocksConsidered.Add(1)
					countDecoded(run, &m.zones[b])
					if err := run.sf.decodeBlock(run.pi, m, b, rowBase, &cols); err != nil {
						return err
					}
					decoded = true
				}
				if match, ok := checkRow(m, int(pos)-rowBase, false); ok && !emit(match) {
					return nil
				}
			}
			continue
		}

		// Range path: zone-prune, decode, vectorize.
		subjIdx, subjIdxOK := []uint32(nil), false
		objIdx, objIdxOK := []uint32(nil), false
		if zoneMaps && !q.ForceScan {
			subjIdx, subjIdxOK = dictIndexSet(subjCand, m)
			objIdx, objIdxOK = dictIndexSet(objCand, m)
			// A candidate set with no dictionary hits matches nothing in
			// this run.
			if (subjIdxOK && len(subjIdx) == 0) || (objIdxOK && len(objIdx) == 0) {
				stats.blocksConsidered.Add(int64(run.pi.nBlocks))
				stats.blocksSkipped.Add(int64(run.pi.nBlocks))
				continue
			}
		}
		rowBase := 0
		for b := range m.zones {
			if ctx.Err() != nil {
				return nil
			}
			z := &m.zones[b]
			stats.blocksConsidered.Add(1)
			if zoneMaps {
				if windowed && (z.maxStart < q.Window.From || z.minStart >= q.Window.To) {
					stats.blocksSkipped.Add(1)
					rowBase += z.count
					continue
				}
				if z.ops.Intersect(q.Ops).Empty() {
					stats.blocksSkipped.Add(1)
					rowBase += z.count
					continue
				}
				if (subjIdxOK && !anyInRange(subjIdx, z.minSubj, z.maxSubj)) ||
					(objIdxOK && !anyInRange(objIdx, z.minObj, z.maxObj)) {
					stats.blocksSkipped.Add(1)
					rowBase += z.count
					continue
				}
				if run.sf.version >= 3 &&
					((subjTriMask != 0 && z.subjTri&subjTriMask != subjTriMask) ||
						(objTriMask != 0 && z.objTri&objTriMask != objTriMask)) {
					stats.blocksSkipped.Add(1)
					stats.attrZoneSkips.Add(1)
					rowBase += z.count
					continue
				}
			}
			countDecoded(run, z)
			if err := run.sf.decodeBlock(run.pi, m, b, rowBase, &cols); err != nil {
				return err
			}
			rowBase += z.count

			evtVec := false
			if q.EvtPred != nil && !q.ForceScan {
				if cap(sel) == 0 {
					sel = pred.NewBitmap(segV2BlockRows)
				}
				evtVec = pred.BatchEval(q.EvtPred, &cols, sel)
			}
			// Starts are sorted within a block: clip the row range to the
			// window once instead of testing every row.
			rlo, rhi := 0, cols.n
			if windowed {
				rlo = sort.Search(cols.n, func(i int) bool { return cols.starts[i] >= q.Window.From })
				rhi = sort.Search(cols.n, func(i int) bool { return cols.starts[i] >= q.Window.To })
			}
			for i := rlo; i < rhi; i++ {
				if evtVec && !sel.Get(i) {
					continue
				}
				if match, ok := checkRow(m, i, evtVec); ok && !emit(match) {
					return nil
				}
			}
		}
	}
	return nil
}

// coldPostings gathers candidate positions from a run's posting lists,
// merged ascending.
func coldPostings(m *segV2Meta, subjCand, objCand map[types.EntityID]struct{}, fromSubject bool) []uint32 {
	cand := subjCand
	if !fromSubject {
		cand = objCand
	}
	var positions []uint32
	for id := range cand {
		di := m.dictIndex(id)
		if di < 0 {
			continue
		}
		if fromSubject {
			positions = append(positions, m.subjectPostings(di)...)
		} else {
			positions = append(positions, m.objectPostings(di)...)
		}
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	return positions
}

// coldEstimate bounds how many cold rows of a partition a window can touch,
// using only directory information (no meta decode): a run overlapping the
// window contributes its full row count.
func coldEstimate(p *partView, w timeutil.Window) int {
	total := 0
	for _, run := range p.cold {
		if !w.Unbounded() && (run.pi.maxStart < w.From || run.pi.minStart >= w.To) {
			continue
		}
		total += run.pi.nEvents
	}
	return total
}
