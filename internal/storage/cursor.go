package storage

import "context"

// Cursor streams the matches of one data query in bounded batches, so
// consumers decide how much of a result to materialize instead of always
// paying for all of it. A cursor is single-consumer: Next, Err and Close
// must be called from one goroutine.
//
// The contract:
//
//   - Next fills batch with up to len(batch) matches and returns how many
//     it wrote. A return of 0 means the cursor is finished — either
//     exhausted, canceled, or failed; Err distinguishes the cases.
//   - Err reports the first error (typically a context cancellation)
//     observed by the cursor. It is nil after a clean exhaustion or Close.
//   - Close releases the cursor's resources (producer goroutines, the
//     storage snapshot backing an auto-acquired scan). Close is idempotent
//     and safe to call before exhaustion; it is required when a consumer
//     abandons a cursor early, and harmless after Next returned 0.
type Cursor interface {
	Next(batch []Match) int
	Err() error
	Close()
}

// ScanBatchSize is the batch granularity producers and Drain use. Consumers
// passing Next a buffer of this size avoid partial-batch copies.
const ScanBatchSize = 256

// Drain exhausts a cursor into a materialized slice — the bridge from the
// cursor world back to callers that need the whole result. The caller keeps
// ownership of the cursor (and must still Close it; Drain leaves it
// exhausted, so Close is a no-op then).
func Drain(c Cursor) []Match {
	var out []Match
	batch := make([]Match, ScanBatchSize)
	for {
		n := c.Next(batch)
		if n == 0 {
			return out
		}
		out = append(out, batch[:n]...)
	}
}

// sliceCursor adapts an already-materialized result to the Cursor
// interface. Backends without a streaming storage layer (the graph-store
// baseline) and trivially-empty scans use it.
type sliceCursor struct {
	ms      []Match
	err     error
	onClose func()
}

// NewErrCursor returns an immediately-finished cursor reporting err — used
// when a scan cannot start (e.g. its context was already canceled).
func NewErrCursor(err error) Cursor { return &sliceCursor{err: err} }

func newSliceCursor(ms []Match, onClose func()) Cursor {
	return &sliceCursor{ms: ms, onClose: onClose}
}

func (c *sliceCursor) Next(batch []Match) int {
	if c.err != nil {
		return 0
	}
	n := copy(batch, c.ms)
	c.ms = c.ms[n:]
	if n == 0 {
		c.Close()
	}
	return n
}

func (c *sliceCursor) Err() error { return c.err }

func (c *sliceCursor) Close() {
	c.ms = nil
	if c.onClose != nil {
		c.onClose()
		c.onClose = nil
	}
}

// NewAsyncCursor runs produce on a background goroutine and serves its
// materialized result once ready, so Scan returns immediately and sibling
// cursors — the engine's per-day sub-scans, MPP segment gathers — compute
// in parallel even when each source materializes. Backends without a
// streaming storage layer (the graph-store baseline) and single-partition
// snapshot scans use it. produce receives a context derived from ctx that
// is additionally canceled when the cursor is closed early; it must honour
// it (poll and return early). A canceled or closed cursor discards the
// result.
func NewAsyncCursor(ctx context.Context, produce func(context.Context) []Match) Cursor {
	return newAsyncErrCursor(ctx, func(cctx context.Context) ([]Match, error) {
		return produce(cctx), nil
	}, nil)
}

// newAsyncErrCursor is the error-aware form: a non-nil produce error
// surfaces through Err after Next returns 0, so a failed scan (cold-segment
// corruption, say) cannot pass for an empty result.
func newAsyncErrCursor(ctx context.Context, produce func(context.Context) ([]Match, error), onClose func()) Cursor {
	cctx, cancel := context.WithCancel(ctx)
	c := &asyncCursor{ctx: ctx, cancel: cancel, ch: make(chan asyncResult, 1), onClose: onClose}
	go func() {
		ms, err := produce(cctx)
		c.ch <- asyncResult{ms: ms, err: err}
	}()
	return c
}

type asyncResult struct {
	ms  []Match
	err error
}

type asyncCursor struct {
	ctx     context.Context
	cancel  context.CancelFunc
	ch      chan asyncResult
	ms      []Match
	ready   bool
	err     error
	done    bool
	onClose func()
}

func (c *asyncCursor) Next(batch []Match) int {
	if c.done || len(batch) == 0 {
		return 0
	}
	if !c.ready {
		select {
		case res := <-c.ch:
			c.ready = true
			if res.err != nil {
				c.finish(res.err)
				return 0
			}
			c.ms = res.ms
			if err := c.ctx.Err(); err != nil {
				// produce aborted early; a partial result must not pass
				// for a complete one.
				c.finish(err)
				return 0
			}
		case <-c.ctx.Done():
			c.finish(c.ctx.Err())
			return 0
		}
	}
	n := copy(batch, c.ms)
	c.ms = c.ms[n:]
	if n == 0 {
		c.finish(nil)
	}
	return n
}

func (c *asyncCursor) Err() error { return c.err }

func (c *asyncCursor) Close() { c.finish(nil) }

// finish cancels and waits out the producer goroutine if it is still
// running (produce always sends exactly once and polls its context, so the
// wait is short), then releases resources — onClose must not run while
// produce still reads the underlying snapshot.
func (c *asyncCursor) finish(err error) {
	if c.done {
		return
	}
	c.done = true
	if err != nil && c.err == nil {
		c.err = err
	}
	c.cancel()
	if !c.ready {
		<-c.ch
		c.ready = true
	}
	c.ms = nil
	if c.onClose != nil {
		c.onClose()
		c.onClose = nil
	}
}

// multiCursor concatenates sub-cursors in order, optionally capping the
// total number of matches handed out. The engine uses it to compose per-day
// sub-scans and the MPP cluster uses it to gather segment scans; because
// every sub-cursor's producers start when the sub-cursor is created, the
// sources still work in parallel — only the hand-off order is serialized.
type multiCursor struct {
	cs      []Cursor
	cur     int
	limit   int
	emitted int
	err     error
	done    bool
}

// NewMultiCursor chains cursors; limit > 0 caps the total matches emitted
// across all of them (each sub-cursor may already carry its own per-source
// limit; this enforces the global one).
func NewMultiCursor(limit int, cs ...Cursor) Cursor {
	return &multiCursor{cs: cs, limit: limit}
}

func (c *multiCursor) Next(batch []Match) int {
	if c.done || len(batch) == 0 {
		return 0
	}
	want := len(batch)
	if c.limit > 0 && c.limit-c.emitted < want {
		want = c.limit - c.emitted
	}
	for want > 0 && c.cur < len(c.cs) {
		n := c.cs[c.cur].Next(batch[:want])
		if n > 0 {
			c.emitted += n
			return n
		}
		if err := c.cs[c.cur].Err(); err != nil {
			c.err = err
			c.finish()
			return 0
		}
		c.cur++
	}
	c.finish()
	return 0
}

func (c *multiCursor) Err() error { return c.err }

func (c *multiCursor) Close() { c.finish() }

func (c *multiCursor) finish() {
	if c.done {
		return
	}
	c.done = true
	for _, sub := range c.cs {
		sub.Close()
	}
}
