package storage

import (
	"context"
	"sync"
	"testing"

	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// allEvents is an unconstrained data query matching every event whose
// entities resolve.
func allEvents() *DataQuery {
	return &DataQuery{Ops: types.AllOps()}
}

func TestSnapshotIsolation(t *testing.T) {
	st, ds := buildFixture(Options{})
	snap := st.Snapshot()
	defer snap.Close()

	if snap.Generation() != st.Generation() {
		t.Fatalf("snapshot generation %d != store generation %d", snap.Generation(), st.Generation())
	}
	before := snap.Run(context.Background(), allEvents())
	if len(before) != len(ds.Events) {
		t.Fatalf("snapshot sees %d events, want %d", len(before), len(ds.Events))
	}

	// Ingest a second copy of the dataset (new event IDs, same entities):
	// the live store doubles, the snapshot must not move.
	extra := make([]types.Event, len(ds.Events))
	copy(extra, ds.Events)
	for i := range extra {
		extra[i].ID += 100000
		extra[i].Seq += 100000
	}
	st.Ingest(types.NewDataset(nil, extra))

	after := snap.Run(context.Background(), allEvents())
	if len(after) != len(before) {
		t.Fatalf("snapshot grew after ingest: %d -> %d events", len(before), len(after))
	}
	if snap.EventCount() != len(before) {
		t.Fatalf("snapshot EventCount = %d, want %d", snap.EventCount(), len(before))
	}
	if got := len(st.Run(context.Background(), allEvents())); got != 2*len(ds.Events) {
		t.Fatalf("store sees %d events after ingest, want %d", got, 2*len(ds.Events))
	}
	// A fresh snapshot sees the new world and a newer generation.
	snap2 := st.Snapshot()
	defer snap2.Close()
	if snap2.Generation() <= snap.Generation() {
		t.Fatalf("second snapshot generation %d not newer than %d", snap2.Generation(), snap.Generation())
	}
	if got := len(snap2.Run(context.Background(), allEvents())); got != 2*len(ds.Events) {
		t.Fatalf("fresh snapshot sees %d events, want %d", got, 2*len(ds.Events))
	}
}

// TestSnapshotIsolationAddEntity covers the entity-map COW path: entities
// registered after a snapshot must not appear in it (their events resolve
// to nil entities and are skipped).
func TestSnapshotIsolationAddEntity(t *testing.T) {
	st, _ := buildFixture(Options{})
	snap := st.Snapshot()
	defer snap.Close()

	novel := types.Entity{
		ID: 9999, Type: types.EntityProcess, AgentID: 1,
		Attrs: map[string]string{types.AttrExeName: "/bin/late"},
	}
	st.AddEntity(&novel)
	if snap.Entity(novel.ID) != nil {
		t.Fatal("snapshot sees an entity registered after acquisition")
	}
	if st.Entity(novel.ID) == nil {
		t.Fatal("store lost the newly registered entity")
	}
}

// TestOutOfOrderAddEvent verifies the deferred re-sort: a burst of
// out-of-order AddEvents is re-sorted once, at the next snapshot, and an
// older snapshot's already-sorted view is untouched by that sort.
func TestOutOfOrderAddEvent(t *testing.T) {
	st, _ := buildFixture(Options{})
	old := st.Snapshot()
	defer old.Close()
	oldEvents := old.Run(context.Background(), allEvents())

	proc := types.EntityID(1) // /bin/worker on agent 1 from the fixture
	file := types.EntityID(3)
	// Timestamps strictly decreasing: every append lands out of order.
	for k := 0; k < 50; k++ {
		st.AddEvent(&types.Event{
			ID: types.EventID(50000 + k), AgentID: 1, Subject: proc, Object: file,
			Op: types.OpWrite, Start: int64(60_000 - k*100), Seq: uint64(50000 + k),
		})
	}

	snap := st.Snapshot()
	defer snap.Close()
	out := snap.Run(context.Background(), &DataQuery{
		Agents: []int{1},
		Window: timeutil.Window{From: 1, To: timeutil.DayMillis},
		Ops:    types.NewOpSet(types.OpWrite),
	})
	for i := 1; i < len(out); i++ {
		if out[i].Event.Start < out[i-1].Event.Start {
			t.Fatalf("snapshot scan out of temporal order at %d: %d < %d",
				i, out[i].Event.Start, out[i-1].Event.Start)
		}
	}
	// The pre-existing snapshot still drains its original, ordered view.
	again := old.Run(context.Background(), allEvents())
	if len(again) != len(oldEvents) {
		t.Fatalf("old snapshot changed size: %d -> %d", len(oldEvents), len(again))
	}
	for i := range again {
		if again[i].Event.ID != oldEvents[i].Event.ID {
			t.Fatalf("old snapshot reordered at %d", i)
		}
	}
}

// TestDrainedMatchesSurviveResort: Match.Event pointers from a finished
// scan are interior pointers into a partition's events array and outlive
// the snapshot that produced them. A deferred re-sort after the snapshot
// closed must therefore copy the array, never reorder it in place.
func TestDrainedMatchesSurviveResort(t *testing.T) {
	st, _ := buildFixture(Options{})
	got := st.Run(context.Background(), allEvents()) // snapshot acquired and released inside
	ids := make([]types.EventID, len(got))
	for i, m := range got {
		ids[i] = m.Event.ID
	}
	// An out-of-order append marks the partition dirty; the next snapshot
	// runs the deferred sort.
	st.AddEvent(&types.Event{
		ID: 777777, AgentID: 1, Subject: 1, Object: 3,
		Op: types.OpWrite, Start: 5, Seq: 999999,
	})
	snap := st.Snapshot()
	snap.Close()
	for i, m := range got {
		if m.Event.ID != ids[i] {
			t.Fatalf("retained match %d corrupted by re-sort: event ID %d -> %d", i, ids[i], m.Event.ID)
		}
	}
}

func TestScanMatchesRun(t *testing.T) {
	st, _ := buildFixture(Options{})
	queries := []*DataQuery{
		allEvents(),
		{Agents: []int{2}, SubjType: types.EntityProcess, ObjType: types.EntityFile, Ops: types.NewOpSet(types.OpWrite)},
		{Window: timeutil.DayWindow(1), Ops: types.AllOps()},
		// Exactly one surviving partition: exercises the inline (no
		// producer pool) cursor path.
		{Agents: []int{1}, Window: timeutil.DayWindow(0), Ops: types.AllOps()},
	}
	for qi, q := range queries {
		want := st.Run(context.Background(), q)
		cur := st.Scan(context.Background(), q)
		var got []Match
		batch := make([]Match, 7) // deliberately small, non-divisor batch
		for {
			n := cur.Next(batch)
			if n == 0 {
				break
			}
			got = append(got, batch[:n]...)
		}
		if err := cur.Err(); err != nil {
			t.Fatalf("query %d: cursor error: %v", qi, err)
		}
		cur.Close()
		if len(got) != len(want) {
			t.Fatalf("query %d: cursor %d matches, materialized %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i].Event.ID != want[i].Event.ID {
				t.Fatalf("query %d: order diverges at %d: %d vs %d", qi, i, got[i].Event.ID, want[i].Event.ID)
			}
		}
	}
}

// TestInlineScanLimitAndRelease covers the single-partition inline cursor:
// limit semantics and snapshot release without the producer pool.
func TestInlineScanLimitAndRelease(t *testing.T) {
	st, _ := buildFixture(Options{})
	q := &DataQuery{Agents: []int{1}, Window: timeutil.DayWindow(0), Ops: types.AllOps(), Limit: 5}
	cur := st.Scan(context.Background(), q)
	got := Drain(cur)
	cur.Close()
	if len(got) != 5 {
		t.Fatalf("inline limited scan returned %d matches, want 5", len(got))
	}
	if n := st.LiveSnapshots(); n != 0 {
		t.Fatalf("%d snapshots live after inline scan", n)
	}
}

func TestScanLimitStopsEarly(t *testing.T) {
	st, _ := buildFixture(Options{})
	q := allEvents()
	q.Limit = 10
	cur := st.Scan(context.Background(), q)
	defer cur.Close()
	got := Drain(cur)
	if len(got) != 10 {
		t.Fatalf("limited scan returned %d matches, want 10", len(got))
	}
	// Limit semantics must match the materialized path.
	want := st.Run(context.Background(), q)
	if len(want) != 10 {
		t.Fatalf("materialized limited run returned %d matches, want 10", len(want))
	}
	for i := range got {
		if got[i].Event.ID != want[i].Event.ID {
			t.Fatalf("limited scan diverges at %d", i)
		}
	}
}

func TestScanCancel(t *testing.T) {
	st, _ := buildFixture(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cur := st.Scan(ctx, allEvents())
	defer cur.Close()
	batch := make([]Match, 8)
	if n := cur.Next(batch); n == 0 {
		t.Fatal("expected at least one batch before cancel")
	}
	cancel()
	for i := 0; i < 1000; i++ {
		if cur.Next(batch) == 0 {
			break
		}
	}
	if cur.Next(batch) != 0 {
		t.Fatal("cursor kept producing long after cancellation")
	}
	if err := cur.Err(); err != context.Canceled {
		t.Fatalf("cursor error = %v, want context.Canceled", err)
	}
	// The snapshot auto-acquired by Scan must have been released.
	if n := st.LiveSnapshots(); n != 0 {
		t.Fatalf("%d snapshots leaked after canceled scan", n)
	}
}

func TestScanReleasesSnapshot(t *testing.T) {
	st, _ := buildFixture(Options{})
	// Exhaustion releases.
	cur := st.Scan(context.Background(), allEvents())
	Drain(cur)
	if n := st.LiveSnapshots(); n != 0 {
		t.Fatalf("%d snapshots live after exhaustion", n)
	}
	cur.Close() // double close is fine
	// Early Close releases.
	cur = st.Scan(context.Background(), allEvents())
	cur.Close()
	if n := st.LiveSnapshots(); n != 0 {
		t.Fatalf("%d snapshots live after early close", n)
	}
}

func TestMultiCursor(t *testing.T) {
	st, _ := buildFixture(Options{})
	q1 := &DataQuery{Agents: []int{1}, Ops: types.AllOps()}
	q2 := &DataQuery{Agents: []int{2}, Ops: types.AllOps()}
	want := len(st.Run(context.Background(), q1)) + len(st.Run(context.Background(), q2))
	mc := NewMultiCursor(0,
		st.Scan(context.Background(), q1),
		st.Scan(context.Background(), q2))
	got := Drain(mc)
	mc.Close()
	if len(got) != want {
		t.Fatalf("multi cursor drained %d, want %d", len(got), want)
	}
	mc = NewMultiCursor(5,
		st.Scan(context.Background(), q1),
		st.Scan(context.Background(), q2))
	if got := Drain(mc); len(got) != 5 {
		t.Fatalf("limited multi cursor drained %d, want 5", len(got))
	}
	mc.Close()
	if n := st.LiveSnapshots(); n != 0 {
		t.Fatalf("%d snapshots leaked through multi cursor", n)
	}
}

// TestConcurrentIngestQuery hammers Ingest from one goroutine while query
// goroutines repeatedly snapshot and drain full scans. Every query must see
// an internally consistent view: the match count implied by its snapshot's
// generation, never a torn batch. Run with -race this also proves the
// copy-on-write mutation path publishes no unsynchronized memory.
func TestConcurrentIngestQuery(t *testing.T) {
	const (
		batches   = 40
		batchSize = 64
		readers   = 4
	)
	st, ds := buildFixture(Options{})
	base := len(ds.Events)
	baseGen := st.Generation() // 1, from the fixture's Ingest

	proc := types.EntityID(1)
	file := types.EntityID(3)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := types.EventID(1_000_000)
		for i := 0; i < batches; i++ {
			evs := make([]types.Event, batchSize)
			for k := range evs {
				next++
				evs[k] = types.Event{
					ID: next, AgentID: 1, Subject: proc, Object: file,
					Op: types.OpWrite, Start: int64(i*1000 + k), Seq: uint64(next),
				}
			}
			st.Ingest(types.NewDataset(nil, evs))
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				snap := st.Snapshot()
				gen := snap.Generation()
				got := len(snap.Run(context.Background(), allEvents()))
				want := base + int(gen-baseGen)*batchSize
				if got != want {
					t.Errorf("generation %d: snapshot drained %d matches, want %d", gen, got, want)
				}
				if snap.EventCount() != want {
					t.Errorf("generation %d: EventCount %d, want %d", gen, snap.EventCount(), want)
				}
				snap.Close()
			}
		}()
	}
	wg.Wait()

	if st.LiveSnapshots() != 0 {
		t.Fatalf("%d snapshots leaked", st.LiveSnapshots())
	}
	finalWant := base + batches*batchSize
	if got := st.EventCount(); got != finalWant {
		t.Fatalf("final event count %d, want %d", got, finalWant)
	}
	if got := len(st.Run(context.Background(), allEvents())); got != finalWant {
		t.Fatalf("final scan %d matches, want %d", got, finalWant)
	}
}
