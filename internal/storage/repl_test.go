package storage

import (
	"errors"
	"testing"

	"aiql/internal/gen"
	"aiql/internal/types"
)

// taggedBatches assigns each batch a dense (epoch, shard 0, seq) tag — the
// shape a coordinator's scatter ingest produces for one home shard.
func taggedBatches(ds *types.Dataset, n int) ([]*types.Dataset, []ReplTag) {
	batches := splitDataset(ds, n)
	tags := make([]ReplTag, len(batches))
	for i := range batches {
		tags[i] = ReplTag{Epoch: "e1", Shard: 0, Seq: uint64(i + 1)}
	}
	return batches, tags
}

// TestTaggedIngestDedup covers the in-memory applied-set: a re-posted tag
// is a no-op, a quiet apply skips the ingest observer (replica copies must
// not re-fire standing rules), and the stats counters track both outcomes.
func TestTaggedIngestDedup(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	batches, tags := taggedBatches(ds, 3)

	st := New(Options{})
	var observed int
	st.SetIngestObserver(func(d *types.Dataset, gen uint64) { observed++ })

	for i, b := range batches {
		quiet := i == len(batches)-1 // last batch plays the replica copy
		if !st.IngestTagged(tags[i], b, quiet) {
			t.Fatalf("first apply of %s reported duplicate", tags[i])
		}
	}
	if observed != len(batches)-1 {
		t.Fatalf("observer fired %d times, want %d (quiet apply must skip it)", observed, len(batches)-1)
	}

	// Retry storm: every tag again, in and out of order.
	before := st.EventCount()
	for i := len(batches) - 1; i >= 0; i-- {
		if st.IngestTagged(tags[i], batches[i], false) {
			t.Fatalf("re-apply of %s was not suppressed", tags[i])
		}
	}
	if st.EventCount() != before {
		t.Fatalf("duplicate applies changed the store: %d events, want %d", st.EventCount(), before)
	}
	rs := st.ReplStats()
	if rs.Applied != uint64(len(batches)) || rs.Duplicates != uint64(len(batches)) {
		t.Fatalf("repl stats applied=%d duplicates=%d, want %d/%d", rs.Applied, rs.Duplicates, len(batches), len(batches))
	}
	state := st.ReplState("e1", 0)
	if state.Watermark != uint64(len(batches)) || len(state.Sparse) != 0 {
		t.Fatalf("applied-set did not collapse to a watermark: %+v", state)
	}
}

// TestReplStateSurvivesCompactionAndReopen is the durability half of the
// dedup guarantee: tags applied before a compaction (folded into segments +
// sidecar) and tags still in the WAL must BOTH be remembered across a
// restart, or a coordinator retry after the restart would double-apply.
func TestReplStateSurvivesCompactionAndReopen(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	batches, tags := taggedBatches(ds, 4)
	want := memStoreOf(batches)

	dir := t.TempDir()
	p := openOrFatal(t, dir, persistOpts())
	// First half: applied, then compacted into segments (WAL records gone,
	// sidecar is the only durable record of their tags).
	for i := 0; i < 2; i++ {
		if applied, err := p.IngestTagged(tags[i], batches[i], false); err != nil || !applied {
			t.Fatalf("apply %s: applied=%v err=%v", tags[i], applied, err)
		}
	}
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	// Second half: applied but left in the WAL (tagged records on disk).
	for i := 2; i < 4; i++ {
		if applied, err := p.IngestTagged(tags[i], batches[i], false); err != nil || !applied {
			t.Fatalf("apply %s: applied=%v err=%v", tags[i], applied, err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	re := openOrFatal(t, dir, persistOpts())
	assertStoresEqual(t, re.Store, want, "after reopen")
	for i, tag := range tags {
		applied, err := re.IngestTagged(tag, batches[i], false)
		if err != nil {
			t.Fatal(err)
		}
		if applied {
			t.Fatalf("reopened store re-applied %s (recovered applied-set lost it)", tag)
		}
	}
	if re.Store.EventCount() != want.EventCount() {
		t.Fatalf("post-retry count %d, want %d", re.Store.EventCount(), want.EventCount())
	}
	if state := re.Store.ReplState("e1", 0); state.Watermark != uint64(len(tags)) {
		t.Fatalf("recovered watermark %d, want %d", state.Watermark, len(tags))
	}
}

// TestReplStateCrashMatrix extends the compaction crash-point matrix to the
// replication applied-set: a crash at any point inside Compact — including
// the window after the segment rename but before the sidecar write and WAL
// removal — must not forget a single applied tag, because the covered WAL
// files still hold the tags until RemoveThrough and recovery re-scans them.
func TestReplStateCrashMatrix(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	batches, tags := taggedBatches(ds, 4)
	want := memStoreOf(batches)
	crashErr := errors.New("injected crash")

	for _, point := range []string{"compact-collected", "segment-written", "before-wal-remove"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			p := openOrFatal(t, dir, persistOpts())
			for i, b := range batches {
				if applied, err := p.IngestTagged(tags[i], b, false); err != nil || !applied {
					t.Fatalf("apply %s: applied=%v err=%v", tags[i], applied, err)
				}
			}
			p.crashHook = func(at string) error {
				if at == point {
					return crashErr
				}
				return nil
			}
			if err := p.Compact(); !errors.Is(err, crashErr) {
				t.Fatalf("Compact returned %v, want injected crash", err)
			}
			p.unlock()

			re := openOrFatal(t, dir, persistOpts())
			assertStoresEqual(t, re.Store, want, "after crash at "+point)
			for i, tag := range tags {
				applied, err := re.IngestTagged(tag, batches[i], false)
				if err != nil {
					t.Fatal(err)
				}
				if applied {
					t.Fatalf("crash at %s forgot tag %s; a coordinator retry would double-apply", point, tag)
				}
			}
			if re.Store.EventCount() != want.EventCount() {
				t.Fatalf("post-retry count %d, want %d", re.Store.EventCount(), want.EventCount())
			}
			// The recovered state must also survive a clean compact+reopen.
			if err := re.Compact(); err != nil {
				t.Fatal(err)
			}
			if err := re.Close(); err != nil {
				t.Fatal(err)
			}
			re2 := openOrFatal(t, dir, persistOpts())
			if applied, err := re2.IngestTagged(tags[0], batches[0], false); err != nil || applied {
				t.Fatalf("tag %s lost after compact+reopen: applied=%v err=%v", tags[0], applied, err)
			}
		})
	}
}

// TestShipReplicatedFiltersShards checks the WAL-ship source: only tagged
// records survive the filter, a shard set narrows the stream, and the
// returned state matches what was shipped.
func TestShipReplicatedFiltersShards(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	batches := splitDataset(ds, 4)

	dir := t.TempDir()
	p := openOrFatal(t, dir, persistOpts())
	// Two shards' tags interleaved with one untagged batch.
	tagOf := []ReplTag{
		{Epoch: "e1", Shard: 0, Seq: 1},
		{Epoch: "e1", Shard: 1, Seq: 1},
		{Epoch: "e1", Shard: 0, Seq: 2},
	}
	for i := 0; i < 3; i++ {
		if _, err := p.IngestTagged(tagOf[i], batches[i], false); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Ingest(batches[3]); err != nil { // untagged: never shipped
		t.Fatal(err)
	}

	var got []ReplTag
	states, err := p.ShipReplicated(map[int]bool{0: true}, func(tag ReplTag, payload []byte) error {
		if _, err := DecodeBatchPayload(payload); err != nil {
			return err
		}
		got = append(got, tag)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != tagOf[0] || got[1] != tagOf[2] {
		t.Fatalf("shard-0 ship returned %v, want [%s %s]", got, tagOf[0], tagOf[2])
	}
	if len(states) != 1 || states[0].Shard != 0 || states[0].Watermark != 2 {
		t.Fatalf("ship state %+v, want shard 0 watermark 2", states)
	}
}
