package storage

import (
	"context"
	"testing"

	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// benchSegRows spans ~49 column blocks of 1024 rows, enough for zone-map
// pruning to have something to skip.
const benchSegRows = 50000

// BenchmarkSegmentInstall measures making a recovered store queryable from
// one sealed segment: v1 decodes every row and rebuilds postings eagerly;
// v2 reads the directory and installs mmap-backed cold runs, deferring all
// block decoding to the first scan that needs it.
func BenchmarkSegmentInstall(b *testing.B) {
	entities, events := v2TestData(benchSegRows)
	b.Run("v1-rows", func(b *testing.B) {
		sf, err := writeSegment(b.TempDir(), 1, uint64(len(events)), entities, events)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st := New(Options{})
			st.Ingest(&types.Dataset{Entities: entities})
			if err := sf.install(st); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("v2-columnar", func(b *testing.B) {
		sf, err := writeSegmentV2(b.TempDir(), 1, uint64(len(events)), entities, events)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(sf.unmap)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st := New(Options{})
			st.Ingest(&types.Dataset{Entities: entities})
			if err := sf.install(st); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSegmentScan measures a narrow-window scan (2 of ~49 blocks hold
// matching times) three ways: against the v2 cold path with zone maps
// pruning non-matching blocks, against the same data with pruning disabled
// (every block decoded, rows filtered individually), and against a fully
// hot store — the eager-decode world every scan paid for before v2.
func BenchmarkSegmentScan(b *testing.B) {
	entities, events := v2TestData(benchSegRows)
	q := &DataQuery{
		Window:   timeutil.Window{From: events[0].Start, To: events[2048].Start},
		SubjType: types.EntityProcess,
		Ops:      types.AllOps(),
	}
	wantMatches := 2048

	runScan := func(b *testing.B, st *Store) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if ms := st.Run(context.Background(), q); len(ms) != wantMatches {
				b.Fatalf("scan returned %d matches, want %d", len(ms), wantMatches)
			}
		}
	}
	coldStore := func(b *testing.B, opts Options) *Store {
		b.Helper()
		sf, err := writeSegmentV2(b.TempDir(), 1, uint64(len(events)), entities, events)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(sf.unmap)
		st := New(opts)
		st.Ingest(&types.Dataset{Entities: entities})
		if err := sf.install(st); err != nil {
			b.Fatal(err)
		}
		return st
	}

	b.Run("v2-zonemap-pruned", func(b *testing.B) {
		runScan(b, coldStore(b, Options{}))
	})
	b.Run("v2-full-decode", func(b *testing.B) {
		runScan(b, coldStore(b, Options{DisableZoneMaps: true}))
	})
	b.Run("hot-rows", func(b *testing.B) {
		st := New(Options{})
		st.Ingest(types.NewDataset(entities, events))
		runScan(b, st)
	})
}
