// Package storage implements AIQL's domain-specific data store
// (paper Sec. 3.2). System monitoring data exhibits strong spatial and
// temporal properties: data from different agents is independent, and
// timestamps increase monotonically. The store therefore partitions events
// along both dimensions — one partition per (agent, UTC day) — and builds
// hash indexes on the attributes queries touch most (process exe_name, file
// name, network src/dst IP). Partition pruning by the query's spatial and
// temporal constraints plus parallel partition scans give the speedups the
// paper attributes to its storage layer.
//
// Queries never run against the mutable store directly: they acquire an
// immutable Snapshot (O(partitions), under the write lock only briefly) and
// stream matches through Cursors, so ingestion and query execution proceed
// concurrently without blocking each other.
//
// # Copy-on-write rules
//
// A snapshot captures references to the store's internal maps and event
// arrays; the mutation path keeps those captures immutable by obeying three
// rules while any snapshot is live (liveSnaps > 0):
//
//  1. Event arrays only grow at the tail. Appending past the captured
//     length is invisible to snapshot readers, which only index their own
//     prefix. Reordering a possibly-captured array (the out-of-order
//     re-sort) first copies it (partition.eventsShared).
//  2. Maps referenced by a snapshot are never written. The first posting
//     or index insertion after a snapshot replaces the map with a shallow
//     clone (partition.mapsShared / Store.metaShared); slice values inside
//     a cloned map still share backing arrays, which is safe by rule 1.
//  3. Flags are cleared once the clone is made, so a snapshot epoch pays
//     each copy at most once; with no live snapshots the flags are cleared
//     without cloning and mutation proceeds in place at full speed.
package storage

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"aiql/internal/pred"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// Options control the optimizations individual benchmarks toggle for
// ablation studies. The zero value enables everything.
type Options struct {
	// DisableIndexes forces full entity scans instead of hash-index probes.
	DisableIndexes bool
	// DisablePruning scans every partition regardless of the query's
	// spatial/temporal constraints (the partitions still exist; only the
	// pruning is turned off).
	DisablePruning bool
	// DisableZoneMaps turns off per-block zone-map pruning on cold (v2
	// segment) partitions: every block in a selected partition is decoded
	// and filtered row by row. Results are identical; only the work done
	// differs — the pruning differential test runs on exactly this toggle.
	DisableZoneMaps bool
	// DisableHotColumnar turns off the hot partitions' columnar shadow:
	// in-memory range scans evaluate predicates event by event instead of
	// through the batch kernel and dictionary verdict bitmaps. Results are
	// identical; the hot/columnar differential test runs on this toggle.
	DisableHotColumnar bool
	// DisableScanSpans ablates the per-scan trace hook (the span lookup and
	// counter fold in Snapshot.scan). It exists so BenchmarkTraceOverhead can
	// measure the disabled-tracing path against a genuinely uninstrumented
	// scan; production code never sets it.
	DisableScanSpans bool
	// Workers bounds scan parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// partKey identifies a spatial × temporal partition.
type partKey struct {
	agent int
	day   int
}

// partition holds one (agent, day)'s events in ascending (Start, Seq) order
// together with posting lists from entity id to event positions, plus the
// copy-on-write bookkeeping described in the package comment.
type partition struct {
	key       partKey
	events    []types.Event
	bySubject map[types.EntityID][]int32
	byObject  map[types.EntityID][]int32

	// cold, when non-nil, is the partition's sealed columnar prefix: rows
	// that live in mmap'ed v2 segments, strictly older than every event in
	// the hot array above. See colpart.go.
	cold *coldPart

	// shadow is the partition's lazily-built columnar shadow over a prefix
	// of events (see hotcol.go). It is published atomically so scans read
	// it without the store lock; shadowMu serializes builders/extenders.
	// The shadow pins the events array it was built from by identity — a
	// re-sort or thaw replaces the array and the stale shadow is both
	// detected (base pointer mismatch) and proactively dropped.
	shadow   atomic.Pointer[hotShadow]
	shadowMu sync.Mutex

	// mapsShared marks the posting maps as possibly referenced by a live
	// snapshot: the next insertion must clone them first.
	mapsShared bool
	// eventsShared marks the events backing array as possibly referenced by
	// a live snapshot: tail appends remain safe, but a re-sort must copy.
	eventsShared bool
	// dirty records that events arrived out of order; the re-sort is
	// deferred to the end of the Ingest batch or the next Snapshot.
	dirty bool
}

// entityKey addresses the global entity attribute hash index.
type entityKey struct {
	typ  types.EntityType
	attr string
	val  string
}

// indexedAttrs lists, per entity type, the attributes served by hash
// indexes — the attributes the paper says are queried frequently.
var indexedAttrs = map[types.EntityType][]string{
	types.EntityFile:    {types.AttrName},
	types.EntityProcess: {types.AttrExeName, types.AttrPID},
	types.EntityNetwork: {types.AttrDstIP, types.AttrSrcIP, types.AttrDstPort},
}

// IngestObserver receives every applied mutation batch, after it has been
// applied to the store, together with the generation the batch produced.
// Invocations are strictly ordered by generation — the store serializes
// apply+notify so no observer ever sees batch G+1 before batch G — and run
// on the mutator's goroutine, outside the store's internal lock: the
// observer may read the store (Entity, Snapshot) but must not mutate it.
//
// Under the persistent store the observer fires inside the same batch
// boundary the WAL uses (Persistent.Ingest holds its journal lock across
// append, apply and notify), so the durable log and a streaming consumer
// agree exactly on which batches were acknowledged, and in which order.
type IngestObserver func(d *types.Dataset, generation uint64)

// Store is the AIQL-optimized event store.
type Store struct {
	opts Options

	// tapMu serializes mutation apply + observer notification so the
	// observer sees batches in generation order. It is taken before mu and
	// held across the notification; readers (snapshots, queries) take only
	// mu and are never blocked behind observer work.
	tapMu sync.Mutex
	obs   IngestObserver // aiql:guarded-by tapMu

	mu         sync.RWMutex
	entities   map[types.EntityID]*types.Entity
	byType     map[types.EntityType][]types.EntityID
	entityIdx  map[entityKey][]types.EntityID
	parts      map[partKey]*partition
	partList   []*partition // kept sorted by (day, agent); snapshots copy it
	eventCount int
	generation uint64

	// metaShared marks the three entity maps above as possibly referenced
	// by a live snapshot; the next entity insertion clones them first.
	metaShared bool
	// liveSnaps counts snapshots not yet closed. While zero, the shared
	// flags are cleared lazily instead of triggering clones.
	liveSnaps int
	// liveCursors counts scan cursors opened against this store's
	// snapshots and not yet finished — the cursor-level companion of
	// liveSnaps for leak hunting (atomic: cursors close on consumer
	// goroutines that must not take the store lock).
	liveCursors atomic.Int64

	// replMu guards the replicated-ingest applied-set (see repl.go). A
	// leaf lock: taken briefly under tapMu (or the persistent store's
	// walMu), never while holding mu, never across apply work.
	replMu         sync.Mutex
	repl           map[replKey]*replShard // aiql:guarded-by replMu
	replApplied    uint64                 // aiql:guarded-by replMu
	replDuplicates uint64                 // aiql:guarded-by replMu

	// scanStats counts cold-scan block traffic (atomic: incremented from
	// producer goroutines).
	scanStats scanCounters
	// coldErr latches the first cold-decode failure observed by a thaw, so
	// the persistent layer can surface corruption discovered off the read
	// path.
	coldErr error // aiql:guarded-by mu
}

// scanCounters aggregates zone-map and hot-path effectiveness across all
// scans.
type scanCounters struct {
	blocksConsidered      atomic.Int64
	blocksSkipped         atomic.Int64
	blocksDecoded         atomic.Int64
	thaws                 atomic.Int64
	hotBatches            atomic.Int64
	dictVerdictHits       atomic.Int64
	attrZoneSkips         atomic.Int64
	compressedBytesRead   atomic.Int64
	compressedBytesDecode atomic.Int64
}

// ScanStats is a point-in-time copy of the scan counters: how many column
// blocks queries considered, how many the zone maps pruned without touching
// (AttrZoneSkips counting the subset pruned by attribute trigram filters),
// how many actually decoded, how many partitions had to thaw back to the
// hot representation, how many hot row batches went through the vectorized
// kernel, how many hot rows had their entity predicates answered from
// dictionary verdict bitmaps, and how many stored vs. decoded bytes v3
// block decompression moved.
type ScanStats struct {
	BlocksConsidered      int64 `json:"blocks_considered"`
	BlocksSkipped         int64 `json:"blocks_skipped"`
	BlocksDecoded         int64 `json:"blocks_decoded"`
	Thaws                 int64 `json:"thaws"`
	HotBatches            int64 `json:"hot_batches"`
	DictVerdictHits       int64 `json:"dict_verdict_hits"`
	AttrZoneSkips         int64 `json:"attr_zone_skips"`
	CompressedBytesRead   int64 `json:"compressed_bytes_read"`
	CompressedBytesDecode int64 `json:"compressed_bytes_decoded"`
}

// ScanStats returns the store's cumulative scan counters.
func (s *Store) ScanStats() ScanStats {
	return ScanStats{
		BlocksConsidered:      s.scanStats.blocksConsidered.Load(),
		BlocksSkipped:         s.scanStats.blocksSkipped.Load(),
		BlocksDecoded:         s.scanStats.blocksDecoded.Load(),
		Thaws:                 s.scanStats.thaws.Load(),
		HotBatches:            s.scanStats.hotBatches.Load(),
		DictVerdictHits:       s.scanStats.dictVerdictHits.Load(),
		AttrZoneSkips:         s.scanStats.attrZoneSkips.Load(),
		CompressedBytesRead:   s.scanStats.compressedBytesRead.Load(),
		CompressedBytesDecode: s.scanStats.compressedBytesDecode.Load(),
	}
}

// New creates an empty store with the given options.
func New(opts Options) *Store {
	return &Store{
		opts:      opts,
		entities:  make(map[types.EntityID]*types.Entity),
		byType:    make(map[types.EntityType][]types.EntityID),
		entityIdx: make(map[entityKey][]types.EntityID),
		parts:     make(map[partKey]*partition),
	}
}

// Ingest loads a dataset as one atomic batch: snapshots taken concurrently
// see either none or all of it. Events must already be time sorted (Dataset
// guarantees this); ingestion appends to per-partition logs in order, and
// any partition that did receive out-of-order events is re-sorted once at
// the end of the batch, not per event.
func (s *Store) Ingest(d *types.Dataset) {
	s.tapMu.Lock()
	defer s.tapMu.Unlock()
	gen := s.applyBatch(d)
	if s.obs != nil {
		s.obs(d, gen)
	}
}

// applyBatch applies one batch under the store lock (deferred, so a panic
// mid-batch cannot leave the store wedged) and returns the new generation.
// Callers hold tapMu.
func (s *Store) applyBatch(d *types.Dataset) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range d.Entities {
		s.addEntityLocked(&d.Entities[i])
	}
	for i := range d.Events {
		s.addEventLocked(&d.Events[i])
	}
	s.sortDirtyLocked()
	s.generation++
	return s.generation
}

// SetIngestObserver installs the store's single ingest tap (nil removes
// it). The observer is invoked post-apply for every mutation batch; see
// IngestObserver for the ordering and locking contract.
func (s *Store) SetIngestObserver(fn IngestObserver) {
	s.tapMu.Lock()
	defer s.tapMu.Unlock()
	s.obs = fn
}

// AddEntity registers a single entity.
func (s *Store) AddEntity(e *types.Entity) {
	s.tapMu.Lock()
	defer s.tapMu.Unlock()
	gen := func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.addEntityLocked(e)
		s.generation++
		return s.generation
	}()
	if s.obs != nil {
		s.obs(types.NewDataset([]types.Entity{*e}, nil), gen)
	}
}

// AddEvent appends a single event. Out-of-order ingestion is tolerated: the
// partition is only marked dirty and re-sorted once, at the next Snapshot —
// a run of N out-of-order AddEvents costs one sort, not N.
func (s *Store) AddEvent(ev *types.Event) {
	s.tapMu.Lock()
	defer s.tapMu.Unlock()
	gen := func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.addEventLocked(ev)
		s.generation++
		return s.generation
	}()
	if s.obs != nil {
		s.obs(types.NewDataset(nil, []types.Event{*ev}), gen)
	}
}

// Generation returns a counter that increases monotonically with every
// mutation (Ingest, AddEvent or AddEntity). Callers caching query results
// key them by the generation observed at execution time: a cached result is
// valid exactly as long as the store still reports the same generation.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.generation
}

// LiveSnapshots returns the number of snapshots acquired and not yet
// closed — a diagnostic for leak hunting and for sizing the store's
// copy-on-write overhead under concurrent load.
func (s *Store) LiveSnapshots() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.liveSnaps
}

// LiveCursors returns the number of scan cursors opened against this
// store's snapshots and not yet exhausted or closed. Together with
// LiveSnapshots it is the leak diagnostic tests assert returns to baseline
// after every execution path, error paths included: an execution that
// errors without closing its cursor strands the producer goroutines and
// the copy-on-write protection they rely on.
func (s *Store) LiveCursors() int {
	return int(s.liveCursors.Load())
}

// cowMetaLocked makes the entity maps safe to mutate: if a live snapshot
// may reference them they are shallow-cloned, otherwise the stale shared
// flag is simply dropped.
func (s *Store) cowMetaLocked() {
	if !s.metaShared {
		return
	}
	if s.liveSnaps > 0 {
		entities := make(map[types.EntityID]*types.Entity, len(s.entities)+1)
		for k, v := range s.entities {
			entities[k] = v
		}
		byType := make(map[types.EntityType][]types.EntityID, len(s.byType))
		for k, v := range s.byType {
			byType[k] = v
		}
		entityIdx := make(map[entityKey][]types.EntityID, len(s.entityIdx))
		for k, v := range s.entityIdx {
			entityIdx[k] = v
		}
		s.entities, s.byType, s.entityIdx = entities, byType, entityIdx
	}
	s.metaShared = false
}

// cowPartLocked makes a partition's posting maps safe to mutate, cloning
// them when a live snapshot may hold references.
func (s *Store) cowPartLocked(p *partition) {
	if !p.mapsShared {
		return
	}
	if s.liveSnaps > 0 {
		bySubject := make(map[types.EntityID][]int32, len(p.bySubject))
		for k, v := range p.bySubject {
			bySubject[k] = v
		}
		byObject := make(map[types.EntityID][]int32, len(p.byObject))
		for k, v := range p.byObject {
			byObject[k] = v
		}
		p.bySubject, p.byObject = bySubject, byObject
	}
	p.mapsShared = false
}

func (s *Store) addEntityLocked(e *types.Entity) {
	if _, dup := s.entities[e.ID]; dup {
		return
	}
	s.cowMetaLocked()
	s.entities[e.ID] = e
	s.byType[e.Type] = append(s.byType[e.Type], e.ID)
	for _, attr := range indexedAttrs[e.Type] {
		if v, ok := e.Attrs[attr]; ok {
			k := entityKey{typ: e.Type, attr: attr, val: v}
			s.entityIdx[k] = append(s.entityIdx[k], e.ID)
		}
	}
}

func (s *Store) addEventLocked(ev *types.Event) {
	key := partKey{agent: ev.AgentID, day: timeutil.DayIndex(ev.Start)}
	p, ok := s.parts[key]
	if !ok {
		p = &partition{
			key:       key,
			bySubject: make(map[types.EntityID][]int32),
			byObject:  make(map[types.EntityID][]int32),
		}
		s.parts[key] = p
		s.insertPartLocked(p)
	}
	// An append at or before the cold maximum would break the
	// cold-before-hot ordering invariant; decode the cold prefix first.
	if p.cold != nil && ev.Start <= p.cold.maxStart {
		s.thawLocked(p)
	}
	s.cowPartLocked(p)
	pos := int32(len(p.events))
	if !p.dirty && pos > 0 && eventLess(ev, &p.events[pos-1]) {
		p.dirty = true
	}
	p.events = append(p.events, *ev)
	p.bySubject[ev.Subject] = append(p.bySubject[ev.Subject], pos)
	p.byObject[ev.Object] = append(p.byObject[ev.Object], pos)
	s.eventCount++
}

// installPartition installs a fully-formed partition decoded from an
// on-disk segment: events already sorted by (Start, Seq) and posting lists
// already built, so the common case is a pointer hand-off with no
// re-indexing. When the partition key already exists — WAL replay ran
// before the segment loaded, or two segments straddle the same (agent,
// day) — the events are appended one by one and the partition marked
// dirty, deferring the merge sort and posting rebuild to the next
// snapshot, exactly like out-of-order ingest.
func (s *Store) installPartition(key partKey, events []types.Event, bySubject, byObject map[types.EntityID][]int32) {
	if len(events) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.parts[key]
	if !ok {
		p = &partition{key: key, events: events, bySubject: bySubject, byObject: byObject}
		s.parts[key] = p
		s.insertPartLocked(p)
		s.eventCount += len(events)
		return
	}
	if p.cold != nil && events[0].Start <= p.cold.maxStart {
		s.thawLocked(p)
	}
	s.cowPartLocked(p)
	for i := range events {
		ev := &events[i]
		pos := int32(len(p.events))
		if !p.dirty && pos > 0 && eventLess(ev, &p.events[pos-1]) {
			p.dirty = true
		}
		p.events = append(p.events, *ev)
		p.bySubject[ev.Subject] = append(p.bySubject[ev.Subject], pos)
		p.byObject[ev.Object] = append(p.byObject[ev.Object], pos)
	}
	s.eventCount += len(events)
}

// insertPartLocked keeps partList sorted by (day, agent) with one binary
// search and shift per new partition, instead of re-sorting the whole list.
// Snapshots copy partList at acquisition, so in-place edits are safe.
func (s *Store) insertPartLocked(p *partition) {
	i := sort.Search(len(s.partList), func(i int) bool {
		k := s.partList[i].key
		if k.day != p.key.day {
			return k.day > p.key.day
		}
		return k.agent >= p.key.agent
	})
	s.partList = append(s.partList, nil)
	copy(s.partList[i+1:], s.partList[i:])
	s.partList[i] = p
}

// sortDirtyLocked restores temporal order in partitions that received
// out-of-order events, rebuilding their posting lists. An events array that
// was ever captured by a snapshot is copied before sorting — regardless of
// how many snapshots remain live, because Match.Event pointers handed out
// by past scans are interior pointers into that array and outlive the
// snapshot that produced them. Posting maps are rebuilt fresh either way.
func (s *Store) sortDirtyLocked() {
	for _, p := range s.partList {
		if !p.dirty {
			continue
		}
		if p.eventsShared {
			events := make([]types.Event, len(p.events))
			copy(events, p.events)
			p.events = events
		}
		p.eventsShared = false
		// The re-sort reorders rows, so any columnar shadow over the old
		// array is stale; readers would detect the base-pointer mismatch
		// anyway, but dropping it eagerly frees the columns.
		p.shadow.Store(nil)
		sort.Slice(p.events, func(i, j int) bool {
			return eventLess(&p.events[i], &p.events[j])
		})
		bySubject := make(map[types.EntityID][]int32, len(p.bySubject))
		byObject := make(map[types.EntityID][]int32, len(p.byObject))
		for i := range p.events {
			ev := &p.events[i]
			bySubject[ev.Subject] = append(bySubject[ev.Subject], int32(i))
			byObject[ev.Object] = append(byObject[ev.Object], int32(i))
		}
		p.bySubject, p.byObject = bySubject, byObject
		p.mapsShared = false
		p.dirty = false
	}
}

// EventCount returns the number of ingested events.
func (s *Store) EventCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eventCount
}

// PartitionCount returns the number of (agent, day) partitions.
func (s *Store) PartitionCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.partList)
}

// Entity returns the entity with the given id, or nil.
func (s *Store) Entity(id types.EntityID) *types.Entity {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.entities[id]
}

// EntityPair resolves two entities under one lock acquisition. The ingest
// tap resolves every event's subject and object on the hot path; the paired
// lookup halves its lock traffic.
func (s *Store) EntityPair(a, b types.EntityID) (*types.Entity, *types.Entity) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.entities[a], s.entities[b]
}

// DataQuery is the storage-level query synthesized from one AIQL event
// pattern (paper Fig. 3). All fields are conjunctive; zero values mean
// "unconstrained".
type DataQuery struct {
	// Agents restricts the spatial dimension; empty means all agents.
	Agents []int
	// Window restricts the temporal dimension.
	Window timeutil.Window
	// SubjType/ObjType restrict entity types (subjects are processes in
	// well-formed AIQL, but the engine passes the type through regardless).
	SubjType types.EntityType
	ObjType  types.EntityType
	// SubjPred/ObjPred are entity attribute predicates.
	SubjPred pred.Pred
	ObjPred  pred.Pred
	// Ops is the operation set from the pattern's <op_exp>.
	Ops types.OpSet
	// EvtPred constrains event attributes (amount, failcode, ...).
	EvtPred pred.Pred
	// SubjAllowed/ObjAllowed, when non-nil, restrict the subject/object to
	// previously discovered entities — this is how the relationship-based
	// scheduler pushes earlier results into later data queries
	// (Algorithm 1's "execute q_j under S_i").
	SubjAllowed map[types.EntityID]struct{}
	ObjAllowed  map[types.EntityID]struct{}
	// Limit stops the scan after this many matches (0 = unlimited).
	Limit int
	// ForceScan bypasses candidate-set resolution and posting lists,
	// evaluating every predicate per event row. The baseline emulations use
	// it to model semantics-agnostic executors that join event and entity
	// tables without AIQL's entity pre-resolution.
	ForceScan bool
}

// Match is one event matching a DataQuery, with resolved entities.
type Match struct {
	Event *types.Event
	Subj  *types.Entity
	Obj   *types.Entity
}

// Scan implements the engine's Backend interface: it acquires a snapshot,
// streams the query's matches through a cursor, and releases the snapshot
// when the cursor is exhausted or closed. Concurrent Ingest never blocks an
// in-flight scan, and the scan never observes a half-applied batch.
func (s *Store) Scan(ctx context.Context, q *DataQuery) Cursor {
	snap := s.Snapshot()
	return snap.scan(ctx, q, snap.Close)
}

// Run is the materializing adapter over Scan — the single canonical
// "execute a data query" entry point for callers that want the whole
// result at once. Canceling ctx aborts the scan between batches.
func (s *Store) Run(ctx context.Context, q *DataQuery) []Match {
	c := s.Scan(ctx, q)
	defer c.Close()
	return Drain(c)
}

// Agents returns the distinct agent ids present in the store, sorted.
func (s *Store) Agents() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[int]struct{})
	for _, p := range s.partList {
		set[p.key.agent] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// Days returns the distinct day indexes present in the store, sorted.
func (s *Store) Days() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[int]struct{})
	for _, p := range s.partList {
		set[p.key.day] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

func attrIndexed(t types.EntityType, attr string) bool {
	for _, a := range indexedAttrs[t] {
		if a == attr {
			return true
		}
	}
	return false
}

func eventLess(a, b *types.Event) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.Seq < b.Seq
}
