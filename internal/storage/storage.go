// Package storage implements AIQL's domain-specific data store
// (paper Sec. 3.2). System monitoring data exhibits strong spatial and
// temporal properties: data from different agents is independent, and
// timestamps increase monotonically. The store therefore partitions events
// along both dimensions — one partition per (agent, UTC day) — and builds
// hash indexes on the attributes queries touch most (process exe_name, file
// name, network src/dst IP). Partition pruning by the query's spatial and
// temporal constraints plus parallel partition scans give the speedups the
// paper attributes to its storage layer.
package storage

import (
	"runtime"
	"sort"
	"sync"

	"aiql/internal/pred"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// Options control the optimizations individual benchmarks toggle for
// ablation studies. The zero value enables everything.
type Options struct {
	// DisableIndexes forces full entity scans instead of hash-index probes.
	DisableIndexes bool
	// DisablePruning scans every partition regardless of the query's
	// spatial/temporal constraints (the partitions still exist; only the
	// pruning is turned off).
	DisablePruning bool
	// Workers bounds scan parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// partKey identifies a spatial × temporal partition.
type partKey struct {
	agent int
	day   int
}

// partition holds one (agent, day)'s events in ascending (Start, Seq) order
// together with posting lists from entity id to event positions.
type partition struct {
	key       partKey
	events    []types.Event
	bySubject map[types.EntityID][]int32
	byObject  map[types.EntityID][]int32
}

// entityKey addresses the global entity attribute hash index.
type entityKey struct {
	typ  types.EntityType
	attr string
	val  string
}

// indexedAttrs lists, per entity type, the attributes served by hash
// indexes — the attributes the paper says are queried frequently.
var indexedAttrs = map[types.EntityType][]string{
	types.EntityFile:    {types.AttrName},
	types.EntityProcess: {types.AttrExeName, types.AttrPID},
	types.EntityNetwork: {types.AttrDstIP, types.AttrSrcIP, types.AttrDstPort},
}

// Store is the AIQL-optimized event store.
type Store struct {
	opts Options

	mu         sync.RWMutex
	entities   map[types.EntityID]*types.Entity
	byType     map[types.EntityType][]types.EntityID
	entityIdx  map[entityKey][]types.EntityID
	parts      map[partKey]*partition
	partList   []*partition // stable iteration order
	eventCount int
	generation uint64
}

// New creates an empty store with the given options.
func New(opts Options) *Store {
	return &Store{
		opts:      opts,
		entities:  make(map[types.EntityID]*types.Entity),
		byType:    make(map[types.EntityType][]types.EntityID),
		entityIdx: make(map[entityKey][]types.EntityID),
		parts:     make(map[partKey]*partition),
	}
}

// Ingest loads a dataset. Events must already be time sorted (Dataset
// guarantees this); ingestion appends to per-partition logs in order, so
// each partition remains sorted.
func (s *Store) Ingest(d *types.Dataset) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range d.Entities {
		s.addEntityLocked(&d.Entities[i])
	}
	for i := range d.Events {
		s.addEventLocked(&d.Events[i])
	}
	s.sortPartsLocked()
	s.generation++
}

// AddEntity registers a single entity.
func (s *Store) AddEntity(e *types.Entity) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addEntityLocked(e)
	s.generation++
}

// AddEvent appends a single event (out-of-order ingestion is tolerated; the
// partition is re-sorted lazily at the next query).
func (s *Store) AddEvent(ev *types.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.addEventLocked(ev)
	s.sortPartsLocked()
	s.generation++
}

// Generation returns a counter that increases monotonically with every
// mutation (Ingest, AddEvent or AddEntity). Callers caching query results
// key them by the generation observed at execution time: a cached result is
// valid exactly as long as the store still reports the same generation.
func (s *Store) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.generation
}

func (s *Store) addEntityLocked(e *types.Entity) {
	if _, dup := s.entities[e.ID]; dup {
		return
	}
	s.entities[e.ID] = e
	s.byType[e.Type] = append(s.byType[e.Type], e.ID)
	for _, attr := range indexedAttrs[e.Type] {
		if v, ok := e.Attrs[attr]; ok {
			k := entityKey{typ: e.Type, attr: attr, val: v}
			s.entityIdx[k] = append(s.entityIdx[k], e.ID)
		}
	}
}

func (s *Store) addEventLocked(ev *types.Event) {
	key := partKey{agent: ev.AgentID, day: timeutil.DayIndex(ev.Start)}
	p, ok := s.parts[key]
	if !ok {
		p = &partition{
			key:       key,
			bySubject: make(map[types.EntityID][]int32),
			byObject:  make(map[types.EntityID][]int32),
		}
		s.parts[key] = p
		s.partList = append(s.partList, p)
	}
	pos := int32(len(p.events))
	p.events = append(p.events, *ev)
	p.bySubject[ev.Subject] = append(p.bySubject[ev.Subject], pos)
	p.byObject[ev.Object] = append(p.byObject[ev.Object], pos)
	s.eventCount++
}

// sortPartsLocked restores per-partition temporal order and rebuilds
// posting lists where ingestion arrived out of order.
func (s *Store) sortPartsLocked() {
	for _, p := range s.partList {
		if sort.SliceIsSorted(p.events, func(i, j int) bool {
			return eventLess(&p.events[i], &p.events[j])
		}) {
			continue
		}
		sort.Slice(p.events, func(i, j int) bool {
			return eventLess(&p.events[i], &p.events[j])
		})
		p.bySubject = make(map[types.EntityID][]int32, len(p.bySubject))
		p.byObject = make(map[types.EntityID][]int32, len(p.byObject))
		for i := range p.events {
			ev := &p.events[i]
			p.bySubject[ev.Subject] = append(p.bySubject[ev.Subject], int32(i))
			p.byObject[ev.Object] = append(p.byObject[ev.Object], int32(i))
		}
	}
	sort.Slice(s.partList, func(i, j int) bool {
		a, b := s.partList[i].key, s.partList[j].key
		if a.day != b.day {
			return a.day < b.day
		}
		return a.agent < b.agent
	})
}

// EventCount returns the number of ingested events.
func (s *Store) EventCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eventCount
}

// PartitionCount returns the number of (agent, day) partitions.
func (s *Store) PartitionCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.partList)
}

// Entity returns the entity with the given id, or nil.
func (s *Store) Entity(id types.EntityID) *types.Entity {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.entities[id]
}

// DataQuery is the storage-level query synthesized from one AIQL event
// pattern (paper Fig. 3). All fields are conjunctive; zero values mean
// "unconstrained".
type DataQuery struct {
	// Agents restricts the spatial dimension; empty means all agents.
	Agents []int
	// Window restricts the temporal dimension.
	Window timeutil.Window
	// SubjType/ObjType restrict entity types (subjects are processes in
	// well-formed AIQL, but the engine passes the type through regardless).
	SubjType types.EntityType
	ObjType  types.EntityType
	// SubjPred/ObjPred are entity attribute predicates.
	SubjPred pred.Pred
	ObjPred  pred.Pred
	// Ops is the operation set from the pattern's <op_exp>.
	Ops types.OpSet
	// EvtPred constrains event attributes (amount, failcode, ...).
	EvtPred pred.Pred
	// SubjAllowed/ObjAllowed, when non-nil, restrict the subject/object to
	// previously discovered entities — this is how the relationship-based
	// scheduler pushes earlier results into later data queries
	// (Algorithm 1's "execute q_j under S_i").
	SubjAllowed map[types.EntityID]struct{}
	ObjAllowed  map[types.EntityID]struct{}
	// Limit stops the scan after this many matches (0 = unlimited).
	Limit int
	// ForceScan bypasses candidate-set resolution and posting lists,
	// evaluating every predicate per event row. The baseline emulations use
	// it to model semantics-agnostic executors that join event and entity
	// tables without AIQL's entity pre-resolution.
	ForceScan bool
}

// Match is one event matching a DataQuery, with resolved entities.
type Match struct {
	Event *types.Event
	Subj  *types.Entity
	Obj   *types.Entity
}

// Run implements the engine's Backend interface.
func (s *Store) Run(q *DataQuery) []Match { return s.Execute(q) }

// Execute runs a data query against the store, scanning the surviving
// partitions in parallel.
func (s *Store) Execute(q *DataQuery) []Match {
	s.mu.RLock()
	defer s.mu.RUnlock()

	var subjCand, objCand map[types.EntityID]struct{}
	if !q.ForceScan {
		subjCand = s.candidateSet(q.SubjType, q.SubjPred, q.SubjAllowed)
		objCand = s.candidateSet(q.ObjType, q.ObjPred, q.ObjAllowed)
	} else {
		// Even under ForceScan the scheduler-imposed allowed sets must be
		// honoured for correctness; only the index shortcuts are skipped.
		subjCand, objCand = q.SubjAllowed, q.ObjAllowed
	}
	if (subjCand != nil && len(subjCand) == 0) || (objCand != nil && len(objCand) == 0) {
		return nil
	}

	parts := s.selectPartitions(q)
	if len(parts) == 0 {
		return nil
	}

	// Partition pruning normally enforces the spatial constraint; when it
	// is disabled (ablation) the scan must filter agents itself.
	var agentSet map[int]struct{}
	if s.opts.DisablePruning && len(q.Agents) > 0 {
		agentSet = make(map[int]struct{}, len(q.Agents))
		for _, a := range q.Agents {
			agentSet[a] = struct{}{}
		}
	}

	results := make([][]Match, len(parts))
	workers := s.opts.workers()
	if workers > len(parts) {
		workers = len(parts)
	}
	if workers <= 1 {
		for i, p := range parts {
			results[i] = s.scanPartition(p, q, subjCand, objCand, agentSet)
		}
	} else {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					results[i] = s.scanPartition(parts[i], q, subjCand, objCand, agentSet)
				}
			}()
		}
		for i := range parts {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	total := 0
	for _, r := range results {
		total += len(r)
	}
	out := make([]Match, 0, total)
	for _, r := range results {
		out = append(out, r...)
		if q.Limit > 0 && len(out) >= q.Limit {
			return out[:q.Limit]
		}
	}
	return out
}

// candidateSet resolves the set of entity ids that can satisfy the
// pattern's entity constraints, using the hash indexes where an exact-match
// key exists and falling back to a typed entity scan for wildcard patterns.
// It returns nil when the set cannot be bounded more cheaply than checking
// the predicate per event during the scan.
func (s *Store) candidateSet(t types.EntityType, p pred.Pred, allowed map[types.EntityID]struct{}) map[types.EntityID]struct{} {
	if allowed != nil {
		// Intersect the scheduler-imposed set with the predicate.
		out := make(map[types.EntityID]struct{}, len(allowed))
		for id := range allowed {
			e := s.entities[id]
			if e == nil || (t != types.EntityInvalid && e.Type != t) {
				continue
			}
			if p == nil || p.Eval(e) {
				out[id] = struct{}{}
			}
		}
		return out
	}
	if p == nil || p.ConstraintCount() == 0 {
		return nil // unconstrained: cheapest to check type during scan
	}
	if !s.opts.DisableIndexes {
		if set, ok := s.probeIndex(t, p); ok {
			return set
		}
	}
	// Wildcard or non-indexed attribute: evaluate the predicate over the
	// typed entity table once, which is far smaller than the event log.
	out := make(map[types.EntityID]struct{})
	for _, id := range s.byType[t] {
		if p.Eval(s.entities[id]) {
			out[id] = struct{}{}
		}
	}
	return out
}

// probeIndex serves an exact-equality predicate from the entity hash index.
// The candidate set from the index is a superset; the full predicate is
// re-checked on each hit so composite predicates stay correct.
func (s *Store) probeIndex(t types.EntityType, p pred.Pred) (map[types.EntityID]struct{}, bool) {
	keys := pred.IndexableKeys(p)
	for _, k := range keys {
		if !attrIndexed(t, k.Attr) {
			continue
		}
		out := make(map[types.EntityID]struct{})
		for _, val := range k.Vals {
			for _, id := range s.entityIdx[entityKey{typ: t, attr: k.Attr, val: val}] {
				if p.Eval(s.entities[id]) {
					out[id] = struct{}{}
				}
			}
		}
		return out, true
	}
	return nil, false
}

func attrIndexed(t types.EntityType, attr string) bool {
	for _, a := range indexedAttrs[t] {
		if a == attr {
			return true
		}
	}
	return false
}

// selectPartitions applies spatial and temporal partition pruning.
func (s *Store) selectPartitions(q *DataQuery) []*partition {
	if s.opts.DisablePruning {
		return s.partList
	}
	var agentSet map[int]struct{}
	if len(q.Agents) > 0 {
		agentSet = make(map[int]struct{}, len(q.Agents))
		for _, a := range q.Agents {
			agentSet[a] = struct{}{}
		}
	}
	minDay, maxDay := -1, -1
	if !q.Window.Unbounded() {
		minDay = timeutil.DayIndex(q.Window.From)
		maxDay = timeutil.DayIndex(q.Window.To - 1)
	}
	var out []*partition
	for _, p := range s.partList {
		if agentSet != nil {
			if _, ok := agentSet[p.key.agent]; !ok {
				continue
			}
		}
		if minDay >= 0 && (p.key.day < minDay || p.key.day > maxDay) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// scanPartition matches a data query against one partition. When candidate
// entity sets are small, posting lists replace the range scan.
func (s *Store) scanPartition(p *partition, q *DataQuery, subjCand, objCand map[types.EntityID]struct{}, agentSet map[int]struct{}) []Match {
	if agentSet != nil {
		if _, ok := agentSet[p.key.agent]; !ok {
			return nil
		}
	}
	lo, hi := p.timeRange(q.Window)
	if lo >= hi {
		return nil
	}

	// Posting-list strategy: pick the smaller candidate set if one is
	// small enough that walking its postings beats scanning the range.
	const postingThreshold = 128
	usePostings, fromSubject := false, false
	if !s.opts.DisableIndexes && !q.ForceScan {
		switch {
		case subjCand != nil && len(subjCand) <= postingThreshold &&
			(objCand == nil || len(subjCand) <= len(objCand)):
			usePostings, fromSubject = true, true
		case objCand != nil && len(objCand) <= postingThreshold:
			usePostings, fromSubject = true, false
		}
	}

	var out []Match
	emit := func(pos int) bool {
		ev := &p.events[pos]
		if !q.Ops.Contains(ev.Op) {
			return true
		}
		subj := s.entities[ev.Subject]
		obj := s.entities[ev.Object]
		if subj == nil || obj == nil {
			return true
		}
		if q.SubjType != types.EntityInvalid && subj.Type != q.SubjType {
			return true
		}
		if q.ObjType != types.EntityInvalid && obj.Type != q.ObjType {
			return true
		}
		if subjCand != nil {
			if _, ok := subjCand[ev.Subject]; !ok {
				return true
			}
		} else if q.SubjPred != nil && !q.SubjPred.Eval(subj) {
			return true
		}
		if objCand != nil {
			if _, ok := objCand[ev.Object]; !ok {
				return true
			}
		} else if q.ObjPred != nil && !q.ObjPred.Eval(obj) {
			return true
		}
		if q.EvtPred != nil && !q.EvtPred.Eval(ev) {
			return true
		}
		out = append(out, Match{Event: ev, Subj: subj, Obj: obj})
		return q.Limit == 0 || len(out) < q.Limit
	}

	if usePostings {
		positions := p.postingsInRange(subjCand, objCand, fromSubject, lo, hi)
		for _, pos := range positions {
			if !emit(int(pos)) {
				break
			}
		}
		return out
	}
	for pos := lo; pos < hi; pos++ {
		if !emit(pos) {
			break
		}
	}
	return out
}

// timeRange binary-searches the sorted event log for the window bounds.
func (p *partition) timeRange(w timeutil.Window) (lo, hi int) {
	if w.Unbounded() {
		return 0, len(p.events)
	}
	lo = sort.Search(len(p.events), func(i int) bool { return p.events[i].Start >= w.From })
	hi = sort.Search(len(p.events), func(i int) bool { return p.events[i].Start >= w.To })
	return lo, hi
}

// postingsInRange gathers posting-list positions for the candidate set,
// clipped to [lo, hi) and returned sorted so results keep temporal order.
func (p *partition) postingsInRange(subjCand, objCand map[types.EntityID]struct{}, fromSubject bool, lo, hi int) []int32 {
	var cand map[types.EntityID]struct{}
	var lists map[types.EntityID][]int32
	if fromSubject {
		cand, lists = subjCand, p.bySubject
	} else {
		cand, lists = objCand, p.byObject
	}
	var positions []int32
	for id := range cand {
		for _, pos := range lists[id] {
			if int(pos) >= lo && int(pos) < hi {
				positions = append(positions, pos)
			}
		}
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	return positions
}

// Agents returns the distinct agent ids present in the store, sorted.
func (s *Store) Agents() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[int]struct{})
	for _, p := range s.partList {
		set[p.key.agent] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// Days returns the distinct day indexes present in the store, sorted.
func (s *Store) Days() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[int]struct{})
	for _, p := range s.partList {
		set[p.key.day] = struct{}{}
	}
	out := make([]int, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

func eventLess(a, b *types.Event) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return a.Seq < b.Seq
}
