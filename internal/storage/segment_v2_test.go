package storage

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"aiql/internal/gen"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// v2TestData builds one deterministic single-partition dataset: n events on
// agent 1, all on 2017-03-01, starts ascending — enough rows to span
// several 1024-row blocks when n is large.
func v2TestData(n int) ([]types.Entity, []types.Event) {
	const base = int64(1488326400000) // 2017-03-01T00:00:00Z
	var entities []types.Entity
	for id := 1; id <= 10; id++ {
		entities = append(entities, types.Entity{
			ID: types.EntityID(id), Type: types.EntityProcess, AgentID: 1,
			Attrs: map[string]string{types.AttrExeName: fmt.Sprintf("/bin/p%d", id)},
		})
	}
	for id := 11; id <= 20; id++ {
		entities = append(entities, types.Entity{
			ID: types.EntityID(id), Type: types.EntityFile, AgentID: 1,
			Attrs: map[string]string{types.AttrName: fmt.Sprintf("/tmp/f%d", id)},
		})
	}
	ops := []types.Op{types.OpRead, types.OpWrite, types.OpExecute}
	events := make([]types.Event, n)
	for i := range events {
		events[i] = types.Event{
			ID:      types.EventID(i + 1),
			AgentID: 1,
			Subject: types.EntityID(1 + i%10),
			Object:  types.EntityID(11 + i%10),
			Op:      ops[i%len(ops)],
			Start:   base + int64(i)*1000,
			End:     base + int64(i)*1000 + 5,
			Seq:     uint64(i + 1),
			Amount:  int64(i * 7),
		}
	}
	return entities, events
}

// coldStoreFrom writes the dataset as a v2 segment in dir and installs it
// into a fresh store as cold runs (entities hot, events cold).
func coldStoreFrom(t *testing.T, dir string, opts Options, entities []types.Entity, events []types.Event) (*Store, *segmentV2File) {
	t.Helper()
	sf, err := writeSegmentV2(dir, 1, uint64(len(events)), entities, events)
	if err != nil {
		t.Fatalf("writeSegmentV2: %v", err)
	}
	st := New(opts)
	st.Ingest(&types.Dataset{Entities: entities})
	if err := sf.install(st); err != nil {
		t.Fatalf("install: %v", err)
	}
	t.Cleanup(sf.unmap)
	return st, sf
}

// TestSegmentV2RoundTrip writes the generator's reference scenario into a
// v2 segment, installs it cold, and requires the store to be exhaustively
// indistinguishable from one that ingested the same data hot.
func TestSegmentV2RoundTrip(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	st, _ := coldStoreFrom(t, t.TempDir(), Options{}, ds.Entities, ds.Events)
	want := New(Options{})
	want.Ingest(ds)
	assertStoresEqual(t, st, want, "v2 round trip")
	if stats := st.ScanStats(); stats.Thaws != 0 {
		t.Fatalf("round-trip scans thawed %d partitions, want 0", stats.Thaws)
	}
}

// TestSegmentV2ThawOnOutOfOrderIngest appends an event older than the cold
// prefix and requires the partition to thaw — decode, merge, and keep
// answering exactly like the all-hot store.
func TestSegmentV2ThawOnOutOfOrderIngest(t *testing.T) {
	entities, events := v2TestData(2500)
	st, _ := coldStoreFrom(t, t.TempDir(), Options{}, entities, events)

	late := types.Event{
		ID: 9001, AgentID: 1, Subject: 1, Object: 11, Op: types.OpWrite,
		Start: events[100].Start, End: events[100].Start + 1, Seq: 9001,
	}
	st.AddEvent(&late)
	if stats := st.ScanStats(); stats.Thaws != 1 {
		t.Fatalf("thaws = %d, want 1", stats.Thaws)
	}
	if err := st.ColdError(); err != nil {
		t.Fatalf("thaw latched error: %v", err)
	}

	want := New(Options{})
	want.Ingest(&types.Dataset{Entities: entities, Events: events})
	want.AddEvent(&late)
	assertStoresEqual(t, st, want, "after thaw")
}

// --- corruption matrix ------------------------------------------------

// v2Layout decodes the header/directory offsets a tampering test needs.
type v2Layout struct {
	nParts  int
	dirOff  int
	entries []v2DirEntry
}

type v2DirEntry struct {
	off              int // entry offset in the file
	nEvents, nBlocks int
	nDict            int
	metaOff, metaLen int
	dataOff, dataLen int
}

func readV2Layout(t *testing.T, raw []byte) v2Layout {
	t.Helper()
	l := v2Layout{nParts: int(binary.LittleEndian.Uint32(raw[24:28])), dirOff: segHeaderLen}
	for i := 0; i < l.nParts; i++ {
		off := l.dirOff + i*segV2DirEntry
		l.entries = append(l.entries, v2DirEntry{
			off:     off,
			nEvents: int(binary.LittleEndian.Uint32(raw[off+16 : off+20])),
			nBlocks: int(binary.LittleEndian.Uint32(raw[off+20 : off+24])),
			nDict:   int(binary.LittleEndian.Uint32(raw[off+24 : off+28])),
			metaOff: int(binary.LittleEndian.Uint64(raw[off+48 : off+56])),
			metaLen: int(binary.LittleEndian.Uint64(raw[off+56 : off+64])),
			dataOff: int(binary.LittleEndian.Uint64(raw[off+64 : off+72])),
			dataLen: int(binary.LittleEndian.Uint64(raw[off+72 : off+80])),
		})
	}
	return l
}

// fixupV2CRCs recomputes the checksums above the tampered layer — zone CRCs
// from block data (when fixZones), partition meta CRCs, and the directory
// CRC — so the corruption under test is the one the reader must catch, not
// a checksum mismatch upstream of it.
func fixupV2CRCs(t *testing.T, raw []byte, fixZones bool) {
	t.Helper()
	l := readV2Layout(t, raw)
	for _, e := range l.entries {
		zonesOff := e.metaOff + e.nDict*8
		if fixZones {
			rowBase := 0
			for b := 0; b < e.nBlocks; b++ {
				z := zonesOff + b*segV2ZoneBytes
				count := int(binary.LittleEndian.Uint32(raw[z : z+4]))
				blockOff := e.dataOff + rowBase*segV2RowBytes
				crc := crc32.Checksum(raw[blockOff:blockOff+count*segV2RowBytes], castagnoli)
				binary.LittleEndian.PutUint32(raw[z+4:z+8], crc)
				rowBase += count
			}
		}
		metaCRC := crc32.Checksum(raw[e.metaOff:e.metaOff+e.metaLen], castagnoli)
		binary.LittleEndian.PutUint32(raw[e.off+28:e.off+32], metaCRC)
	}
	dirCRC := crc32.Checksum(raw[l.dirOff:l.dirOff+l.nParts*segV2DirEntry], castagnoli)
	binary.LittleEndian.PutUint32(raw[52:56], dirCRC)
}

// TestSegmentV2CorruptionMatrix damages a valid v2 segment in each of the
// ways the reader defends against and requires a typed ErrSegmentCorrupt —
// at open when the header/directory is hurt, from the scan when a lazily
// read region is — and never a panic or a hot-path fallback that hides it.
func TestSegmentV2CorruptionMatrix(t *testing.T) {
	entities, events := v2TestData(2500)
	dir := t.TempDir()
	sf, err := writeSegmentV2(dir, 1, uint64(len(events)), entities, events)
	if err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(sf.path)
	if err != nil {
		t.Fatal(err)
	}
	layout := readV2Layout(t, pristine)
	e0 := layout.entries[0]

	cases := []struct {
		name    string
		mutate  func(t *testing.T, raw []byte) []byte
		wantMsg string // substring the error should carry, "" for any
	}{
		{
			name: "bad-magic",
			mutate: func(t *testing.T, raw []byte) []byte {
				raw[0] ^= 0xFF
				return raw
			},
			wantMsg: "bad magic",
		},
		{
			name: "truncated-file",
			mutate: func(t *testing.T, raw []byte) []byte {
				return raw[:e0.dataOff+10]
			},
		},
		{
			name: "directory-bit-flip",
			mutate: func(t *testing.T, raw []byte) []byte {
				raw[segHeaderLen+16] ^= 0x01 // nEvents of partition 0
				return raw
			},
		},
		{
			name: "meta-bit-flip",
			mutate: func(t *testing.T, raw []byte) []byte {
				raw[e0.metaOff] ^= 0x01 // first dictionary id
				return raw
			},
		},
		{
			name: "block-checksum",
			mutate: func(t *testing.T, raw []byte) []byte {
				raw[e0.dataOff+5] ^= 0x01 // inside block 0's starts column
				return raw
			},
			wantMsg: "checksum",
		},
		{
			name: "out-of-range-dictionary-index",
			mutate: func(t *testing.T, raw []byte) []byte {
				// Overwrite row 0's subject dictionary index (the subj column
				// follows starts/ends/ids/seqs/amounts/fails) with a value no
				// dictionary can hold, then re-seal every checksum above it.
				count := 1024
				subjOff := e0.dataOff + (4+8*5)*count
				binary.LittleEndian.PutUint32(raw[subjOff:subjOff+4], 0xFFFFFFFF)
				fixupV2CRCs(t, raw, true)
				return raw
			},
			wantMsg: "dictionary index",
		},
		{
			name: "zone-map-inconsistent-with-block",
			mutate: func(t *testing.T, raw []byte) []byte {
				// Clear block 0's op bitmap: the zone now claims ops the block
				// demonstrably contains are absent.
				zonesOff := e0.metaOff + e0.nDict*8
				binary.LittleEndian.PutUint16(raw[zonesOff+24:zonesOff+26], 0)
				fixupV2CRCs(t, raw, false)
				return raw
			},
			wantMsg: "op",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := tc.mutate(t, append([]byte(nil), pristine...))
			path := filepath.Join(t.TempDir(), "seg-corrupt.seg")
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			err := func() error {
				seg, err := openSegmentAny(path)
				if err != nil {
					return err
				}
				if _, err := seg.readEntities(); err != nil {
					return err
				}
				// Scan with zone maps disabled so damaged blocks cannot hide
				// behind the pruning the damage itself corrupted.
				st := New(Options{DisableZoneMaps: true})
				st.Ingest(&types.Dataset{Entities: entities})
				if err := seg.install(st); err != nil {
					return err
				}
				defer seg.(*segmentV2File).unmap()
				c := st.Scan(context.Background(), &DataQuery{Ops: types.AllOps()})
				defer c.Close()
				Drain(c)
				return c.Err()
			}()
			if err == nil {
				t.Fatal("corrupted segment was read back without error")
			}
			if !errors.Is(err, ErrSegmentCorrupt) {
				t.Fatalf("error %v is not ErrSegmentCorrupt", err)
			}
			if tc.wantMsg != "" && !contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestColdScanLazyBlocks is the WarmUp regression guard: opening and
// warming a v2-backed store decodes zero blocks, and a narrow-window query
// decodes only the blocks its window can touch.
func TestColdScanLazyBlocks(t *testing.T) {
	entities, events := v2TestData(3000) // 3 blocks: 1024+1024+952
	st, _ := coldStoreFrom(t, t.TempDir(), Options{}, entities, events)

	if stats := st.ScanStats(); stats.BlocksDecoded != 0 {
		t.Fatalf("install decoded %d blocks, want 0 (lazy)", stats.BlocksDecoded)
	}

	// A window covering only the first 100 events: one block can match.
	w := timeutil.Window{From: timeutil.Millis(events[0].Start), To: timeutil.Millis(events[100].Start)}
	got := st.Run(context.Background(), &DataQuery{Ops: types.AllOps(), Window: w})
	if len(got) != 100 {
		t.Fatalf("narrow window matched %d events, want 100", len(got))
	}
	stats := st.ScanStats()
	if stats.BlocksConsidered != 3 {
		t.Fatalf("blocks considered = %d, want 3", stats.BlocksConsidered)
	}
	if stats.BlocksDecoded != 1 {
		t.Fatalf("narrow window decoded %d blocks, want 1", stats.BlocksDecoded)
	}
	if stats.BlocksSkipped != 2 {
		t.Fatalf("narrow window skipped %d blocks, want 2", stats.BlocksSkipped)
	}

	// A full scan decodes the remaining blocks — everything stays readable.
	if n := len(st.Run(context.Background(), &DataQuery{Ops: types.AllOps()})); n != len(events) {
		t.Fatalf("full scan matched %d events, want %d", n, len(events))
	}
	if stats := st.ScanStats(); stats.BlocksDecoded != 1+3 {
		t.Fatalf("total decoded = %d, want 4", stats.BlocksDecoded)
	}
}

// TestZoneMapPruningDifferentialStorage runs the same window/op/entity
// queries with pruning on and off and requires byte-identical results, with
// the counters proving pruning actually skipped work.
func TestZoneMapPruningDifferentialStorage(t *testing.T) {
	entities, events := v2TestData(4000)
	pruned, _ := coldStoreFrom(t, t.TempDir(), Options{}, entities, events)
	exhaustive, _ := coldStoreFrom(t, t.TempDir(), Options{DisableZoneMaps: true}, entities, events)

	rng := rand.New(rand.NewSource(7))
	queries := []*DataQuery{
		{Ops: types.AllOps()},
		{Ops: types.NewOpSet(types.OpRead)},
		{Ops: types.NewOpSet(types.OpConnect)}, // absent from the data: pure skip
		{Ops: types.AllOps(), SubjType: types.EntityProcess, ObjType: types.EntityFile},
	}
	for i := 0; i < 8; i++ {
		lo := events[rng.Intn(len(events))].Start
		queries = append(queries, &DataQuery{
			Ops:    types.AllOps(),
			Window: timeutil.Window{From: timeutil.Millis(lo), To: timeutil.Millis(lo + int64(rng.Intn(500_000)))},
		})
	}

	for i, q := range queries {
		a, b := pruned.Run(context.Background(), q), exhaustive.Run(context.Background(), q)
		if len(a) != len(b) {
			t.Fatalf("query %d: pruned %d matches, exhaustive %d", i, len(a), len(b))
		}
		for j := range a {
			if *a[j].Event != *b[j].Event {
				t.Fatalf("query %d match %d: %+v vs %+v", i, j, a[j].Event, b[j].Event)
			}
		}
	}

	ps, es := pruned.ScanStats(), exhaustive.ScanStats()
	if ps.BlocksSkipped == 0 {
		t.Fatal("pruning-enabled store skipped no blocks")
	}
	if es.BlocksSkipped != 0 {
		t.Fatalf("pruning-disabled store skipped %d blocks, want 0", es.BlocksSkipped)
	}
	if ps.BlocksDecoded >= es.BlocksDecoded {
		t.Fatalf("pruned store decoded %d blocks, exhaustive %d — pruning saved nothing",
			ps.BlocksDecoded, es.BlocksDecoded)
	}
}

// TestRewriteLegacySegments upgrades a store whose segments were written in
// the v1 row format and requires the reopened store to be identical, now
// serving from columnar files.
func TestRewriteLegacySegments(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	batches := splitDataset(ds, 4)
	want := memStoreOf(batches)
	dir := t.TempDir()

	legacy := persistOpts()
	legacy.LegacySegmentV1 = true
	p := openOrFatal(t, dir, legacy)
	for i, b := range batches {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			if err := p.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := p.DurabilityStats(); st.Segments != 2 || st.SegmentsV2 != 0 {
		t.Fatalf("legacy store wrote %d segments (%d v2), want 2 v1", st.Segments, st.SegmentsV2)
	}

	n, err := p.RewriteLegacySegments()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("rewrote %d segments, want 2", n)
	}
	if st := p.DurabilityStats(); st.SegmentsV2 != 2 {
		t.Fatalf("segments_v2 = %d after rewrite, want 2", st.SegmentsV2)
	}
	// Idempotent: nothing left to rewrite.
	if n, err := p.RewriteLegacySegments(); err != nil || n != 0 {
		t.Fatalf("second rewrite = (%d, %v), want (0, nil)", n, err)
	}
	assertStoresEqual(t, p.Store, want, "live store after rewrite")
	p.Close()

	re := openOrFatal(t, dir, persistOpts())
	if err := re.WarmUp(); err != nil {
		t.Fatal(err)
	}
	if st := re.DurabilityStats(); st.SegmentsV2 != 2 {
		t.Fatalf("reopened segments_v2 = %d, want 2", st.SegmentsV2)
	}
	assertStoresEqual(t, re.Store, want, "reopened store after rewrite")
	if stats := re.Store.ScanStats(); stats.BlocksDecoded == 0 {
		t.Fatal("reopened store answered queries without decoding any cold block")
	}
}

// TestCrashDuringRewrite aborts the v1→v2 rewrite at each crash point and
// requires recovery to rebuild the identical store from whatever mix of
// formats the crash left — exactly once, no row lost or doubled.
func TestCrashDuringRewrite(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	batches := splitDataset(ds, 3)
	want := memStoreOf(batches)
	crashErr := errors.New("injected crash")

	for _, point := range []string{"rewrite-collected", "rewrite-renamed"} {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			legacy := persistOpts()
			legacy.LegacySegmentV1 = true
			p := openOrFatal(t, dir, legacy)
			for _, b := range batches {
				if err := p.Ingest(b); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Compact(); err != nil {
				t.Fatal(err)
			}
			p.crashHook = func(at string) error {
				if at == point {
					return crashErr
				}
				return nil
			}
			if _, err := p.RewriteLegacySegments(); !errors.Is(err, crashErr) {
				t.Fatalf("rewrite returned %v, want injected crash", err)
			}
			p.unlock() // a dead process drops its flock; the simulation must too

			re := openOrFatal(t, dir, persistOpts())
			if err := re.WarmUp(); err != nil {
				t.Fatal(err)
			}
			assertStoresEqual(t, re.Store, want, "after crash at "+point)

			// The interrupted upgrade must complete cleanly now.
			if _, err := re.RewriteLegacySegments(); err != nil {
				t.Fatal(err)
			}
			if st := re.DurabilityStats(); st.SegmentsV2 != st.Segments {
				t.Fatalf("after recovery rewrite: %d of %d segments v2", st.SegmentsV2, st.Segments)
			}
			assertStoresEqual(t, re.Store, want, "after recovery rewrite at "+point)
		})
	}
}

// TestMixedVersionSegmentsAnswerIdentically holds a store serving from a v1
// and a v2 segment side by side to the all-hot reference.
func TestMixedVersionSegmentsAnswerIdentically(t *testing.T) {
	ds := gen.Scenario(gen.SmallConfig())
	batches := splitDataset(ds, 4)
	want := memStoreOf(batches)
	dir := t.TempDir()

	legacy := persistOpts()
	legacy.LegacySegmentV1 = true
	p := openOrFatal(t, dir, legacy)
	for _, b := range batches[:2] {
		if err := p.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Compact(); err != nil {
		t.Fatal(err)
	}
	p.Close()

	p2 := openOrFatal(t, dir, persistOpts())
	if err := p2.WarmUp(); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches[2:] {
		if err := p2.Ingest(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := p2.Compact(); err != nil {
		t.Fatal(err)
	}
	if st := p2.DurabilityStats(); st.Segments != 2 || st.SegmentsV2 != 1 {
		t.Fatalf("segments = %d (%d v2), want one of each", st.Segments, st.SegmentsV2)
	}
	p2.Close()

	re := openOrFatal(t, dir, persistOpts())
	if err := re.WarmUp(); err != nil {
		t.Fatal(err)
	}
	assertStoresEqual(t, re.Store, want, "mixed v1+v2 store")
}

// FuzzSegmentV2 is the round-trip and robustness fuzz: a generated dataset
// must survive write → open → cold scan byte-for-byte, and a one-byte
// mutation anywhere in the file must produce either identical results or a
// typed ErrSegmentCorrupt — never a panic and never silent wrong rows
// beyond the mutated region's blast radius.
func FuzzSegmentV2(f *testing.F) {
	f.Add(int64(1), uint16(10), -1, byte(0))
	f.Add(int64(2), uint16(300), 60, byte(0xFF))
	f.Add(int64(3), uint16(1500), 200, byte(0x01))
	f.Add(int64(4), uint16(0), 0, byte(0x80))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, mutOff int, mutByte byte) {
		rng := rand.New(rand.NewSource(seed))
		entities, events := v2TestData(int(n)%2100 + 1)
		// Shuffle starts across two days and agents so multiple partitions,
		// unsorted input, and duplicate timestamps are all exercised.
		for i := range events {
			events[i].AgentID = 1 + rng.Intn(2)
			events[i].Start += int64(rng.Intn(3)) * 86_400_000
			if rng.Intn(4) == 0 {
				events[i].Start = events[rng.Intn(len(events))].Start
			}
		}
		dir := t.TempDir()
		sf, err := writeSegmentV2(dir, 1, uint64(len(events)), entities, events)
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		sf.unmap()

		raw, err := os.ReadFile(sf.path)
		if err != nil {
			t.Fatal(err)
		}
		mutated := false
		if mutOff >= 0 && mutOff < len(raw) && raw[mutOff]^mutByte != raw[mutOff] {
			raw[mutOff] ^= mutByte
			mutated = true
			if err := os.WriteFile(sf.path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		want := New(Options{})
		want.Ingest(&types.Dataset{Entities: entities, Events: events})
		wantMatches := want.Run(context.Background(), &DataQuery{Ops: types.AllOps()})

		err = func() error {
			seg, err := openSegmentAny(sf.path)
			if err != nil {
				return err
			}
			if _, err := seg.readEntities(); err != nil {
				return err
			}
			st := New(Options{DisableZoneMaps: true})
			st.Ingest(&types.Dataset{Entities: entities})
			if err := seg.install(st); err != nil {
				return err
			}
			defer seg.(*segmentV2File).unmap()
			c := st.Scan(context.Background(), &DataQuery{Ops: types.AllOps()})
			defer c.Close()
			got := Drain(c)
			if err := c.Err(); err != nil {
				return err
			}
			if len(got) != len(wantMatches) {
				t.Fatalf("scan returned %d matches, want %d", len(got), len(wantMatches))
			}
			for i := range got {
				if *got[i].Event != *wantMatches[i].Event {
					t.Fatalf("match %d: %+v, want %+v", i, got[i].Event, wantMatches[i].Event)
				}
			}
			return nil
		}()
		if err != nil {
			if !mutated {
				t.Fatalf("pristine segment failed: %v", err)
			}
			if !errors.Is(err, ErrSegmentCorrupt) {
				t.Fatalf("mutation produced untyped error: %v", err)
			}
		}
	})
}
