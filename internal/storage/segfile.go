package storage

import (
	"fmt"
	"io"
	"os"

	"aiql/internal/types"
)

// segment abstracts one immutable on-disk segment file regardless of format
// version. v1 (AIQLSEG1) row segments decode eagerly at install, exactly as
// recovery always has; v2 (AIQLSEG2) and v3 (AIQLSEG3, compressed) columnar
// segments install lazily — header-only at open, memory-mapped cold runs
// whose blocks decode on first scan contact.
type segment interface {
	// segPath is the file's path, for diagnostics.
	segPath() string
	// seqRange is the closed WAL sequence range the segment covers.
	seqRange() (first, last uint64)
	// events is the directory-level event total across partitions.
	events() int
	// formatVersion is the on-disk format: 1 (row), 2 (columnar) or 3
	// (columnar, compressed blocks + attribute zone maps).
	formatVersion() int
	// readEntities reads and checksums the segment's entity block.
	readEntities() ([]types.Entity, error)
	// install makes the segment's event partitions queryable in s.
	install(s *Store) error
}

func (sf *segmentFile) segPath() string            { return sf.path }
func (sf *segmentFile) seqRange() (uint64, uint64) { return sf.firstSeq, sf.lastSeq }
func (sf *segmentFile) formatVersion() int         { return 1 }

func (sf *segmentFile) readEntities() ([]types.Entity, error) {
	f, err := os.Open(sf.path)
	if err != nil {
		return nil, fmt.Errorf("storage: segment: %w", err)
	}
	defer f.Close()
	return sf.loadEntities(f)
}

// install decodes every v1 partition into the store with its serialized
// posting lists — the full recovery cost, paid up front. Partitions are
// order-independent (events carry their own positions), so callers may
// install v1 segments in parallel.
func (sf *segmentFile) install(s *Store) error {
	f, err := os.Open(sf.path)
	if err != nil {
		return fmt.Errorf("storage: segment: %w", err)
	}
	defer f.Close()
	for i := range sf.parts {
		pi := &sf.parts[i]
		events, bySubject, byObject, err := sf.loadPartition(f, pi)
		if err != nil {
			return err
		}
		s.installPartition(pi.key, events, bySubject, byObject)
	}
	return nil
}

func (sf *segmentV2File) segPath() string            { return sf.path }
func (sf *segmentV2File) seqRange() (uint64, uint64) { return sf.firstSeq, sf.lastSeq }
func (sf *segmentV2File) formatVersion() int         { return sf.version }

func (sf *segmentV2File) readEntities() ([]types.Entity, error) {
	f, err := os.Open(sf.path)
	if err != nil {
		return nil, fmt.Errorf("storage: segment: %w", err)
	}
	defer f.Close()
	return sf.loadEntities(f)
}

// install maps the file read-only and registers each partition as a cold
// run: no event is decoded, so recovery touches headers and the entity
// block only, and later scans decode just the blocks their predicates can
// match. Cold runs covering the same (agent, day) must arrive oldest-first
// for the pointer hand-off fast path, so callers install v2 segments
// sequentially in firstSeq order — the work per segment is trivial.
func (sf *segmentV2File) install(s *Store) error {
	if err := sf.ensureMapped(); err != nil {
		return err
	}
	for i := range sf.parts {
		if err := s.installColdRun(sf, &sf.parts[i]); err != nil {
			return err
		}
	}
	return nil
}

// openSegmentAny opens a segment file of either format, dispatching on the
// magic in the first eight bytes. Header and directory only; no payload.
func openSegmentAny(path string) (segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: segment: %w", err)
	}
	magic := make([]byte, 8)
	_, rerr := io.ReadFull(f, magic)
	f.Close()
	if rerr != nil {
		return nil, corruptf(path, "short magic: %v", rerr)
	}
	switch string(magic) {
	case segMagic:
		return openSegment(path)
	case segV2Magic:
		return openSegmentV2(path)
	case segV3Magic:
		return openSegmentV3(path)
	default:
		return nil, corruptf(path, "bad magic %q", magic)
	}
}
