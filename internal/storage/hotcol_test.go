package storage

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"aiql/internal/pred"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// hotTestData builds a dataset sized and shaped for the hot columnar path:
// enough rows per partition to clear hotShadowMinRows and enough matching
// entities that wildcard predicates overflow the posting-list threshold and
// land on the range scan.
func hotTestData(nEvents int) ([]types.Entity, []types.Event) {
	const base = int64(1488326400000) // 2017-03-01T00:00:00Z
	var entities []types.Entity
	for id := 1; id <= 400; id++ {
		exe := "/bin/tool-" + strconv.Itoa(id)
		if id%2 == 0 {
			exe = "/bin/alpha-" + strconv.Itoa(id)
		}
		entities = append(entities, types.Entity{
			ID: types.EntityID(id), Type: types.EntityProcess, AgentID: 1 + id%2,
			Attrs: map[string]string{types.AttrExeName: exe},
		})
	}
	for id := 1001; id <= 1100; id++ {
		entities = append(entities, types.Entity{
			ID: types.EntityID(id), Type: types.EntityFile, AgentID: 1 + id%2,
			Attrs: map[string]string{types.AttrName: fmt.Sprintf("/tmp/f%d", id)},
		})
	}
	ops := []types.Op{types.OpRead, types.OpWrite, types.OpExecute, types.OpDelete}
	events := make([]types.Event, nEvents)
	for i := range events {
		events[i] = types.Event{
			ID:      types.EventID(i + 1),
			AgentID: 1 + i%2,
			Subject: types.EntityID(1 + i%400),
			Object:  types.EntityID(1001 + i%100),
			Op:      ops[i%len(ops)],
			Start:   base + int64(i/2)*500 + int64(i%2)*86_400_000,
			End:     base + int64(i/2)*500 + int64(i%2)*86_400_000 + 3,
			Seq:     uint64(i + 1),
			Amount:  int64((i * 37) % 10_000),
			FailCode: func() int {
				if i%50 == 0 {
					return 5
				}
				return 0
			}(),
		}
	}
	return entities, events
}

// hotDiffQueries is the query battery for hot-path differentials: each
// entry must exercise a distinct mix of op filters, type filters, entity
// predicates (vector-verdict path), event predicates (both the vectorized
// kernel and its row-at-a-time refusal fallback), windows, and limits.
func hotDiffQueries() []*DataQuery {
	const base = int64(1488326400000)
	return []*DataQuery{
		{Ops: types.AllOps()},
		{Ops: types.NewOpSet(types.OpRead, types.OpWrite)},
		{Ops: types.AllOps(), SubjType: types.EntityProcess, ObjType: types.EntityFile},
		{Ops: types.AllOps(), SubjType: types.EntityProcess,
			SubjPred: pred.NewCond(types.AttrExeName, pred.CmpEq, "%alpha%")},
		{Ops: types.AllOps(), SubjType: types.EntityProcess,
			SubjPred: pred.NewCond(types.AttrExeName, pred.CmpEq, "%alpha%"),
			ObjType:  types.EntityFile,
			EvtPred:  pred.NewCond(types.EvtAttrAmount, pred.CmpGe, "5000")},
		{Ops: types.AllOps(), EvtPred: pred.NewCond(types.EvtAttrAmount, pred.CmpLt, "300")},
		{Ops: types.AllOps(), EvtPred: pred.AndOf(
			pred.NewCond(types.EvtAttrAmount, pred.CmpGe, "100"),
			pred.NewCond(types.EvtAttrFailCode, pred.CmpEq, "0"))},
		// optype is a string event attribute the kernel refuses: forces the
		// per-row fallback inside scanHot.
		{Ops: types.AllOps(), EvtPred: pred.NewCond(types.EvtAttrOpType, pred.CmpEq, "read")},
		{Ops: types.AllOps(), Agents: []int{1}},
		{Ops: types.AllOps(), Window: timeutil.Window{From: base + 200_000, To: base + 400_000}},
		{Ops: types.AllOps(), Limit: 17},
		{Ops: types.AllOps(), ForceScan: true},
	}
}

func matchesEqual(t *testing.T, label string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Event.ID != w.Event.ID || g.Event.Seq != w.Event.Seq {
			t.Fatalf("%s: match %d is event %d/%d, want %d/%d",
				label, i, g.Event.ID, g.Event.Seq, w.Event.ID, w.Event.Seq)
		}
		if g.Subj.ID != w.Subj.ID || g.Obj.ID != w.Obj.ID {
			t.Fatalf("%s: match %d resolved entities (%d,%d), want (%d,%d)",
				label, i, g.Subj.ID, g.Obj.ID, w.Subj.ID, w.Obj.ID)
		}
	}
}

// TestHotColumnarDifferential runs the battery against two stores holding
// identical hot data — columnar shadows on and off — and requires
// row-identical results, with the counters proving the batch path actually
// served the enabled store.
func TestHotColumnarDifferential(t *testing.T) {
	entities, events := hotTestData(6000)
	ds := types.NewDataset(entities, events)
	hot := New(Options{})
	hot.Ingest(ds)
	scalar := New(Options{DisableHotColumnar: true})
	scalar.Ingest(ds)

	for i, q := range hotDiffQueries() {
		label := fmt.Sprintf("query %d", i)
		qc := *q
		qs := *q
		matchesEqual(t, label, hot.Run(context.Background(), &qc), scalar.Run(context.Background(), &qs))
	}

	hs, ss := hot.ScanStats(), scalar.ScanStats()
	if hs.HotBatches == 0 || hs.DictVerdictHits == 0 {
		t.Fatalf("hot store never used the batch path: %+v", hs)
	}
	if ss.HotBatches != 0 || ss.DictVerdictHits != 0 {
		t.Fatalf("DisableHotColumnar store used the batch path: %+v", ss)
	}
}

// TestHotShadowExtend exercises the in-place growth contract directly: a
// shadow extended over the same backing array must reuse column storage
// when capacity allows, keep the published prefix identical, and append
// dictionary slots in first-seen order without reordering existing ones.
func TestHotShadowExtend(t *testing.T) {
	_, events := hotTestData(1000)
	sh1 := buildShadow(events[:600])
	if sh1.n != 600 || sh1.base != &events[0] {
		t.Fatalf("built shadow n=%d base ok=%v", sh1.n, sh1.base == &events[0])
	}
	dictBefore := append([]types.EntityID(nil), sh1.dict...)

	sh2 := sh1.extend(events)
	if sh2.n != 1000 || sh2.base != &events[0] {
		t.Fatalf("extended shadow n=%d", sh2.n)
	}
	// buildShadow sizes columns with headroom; extending 600→1000 must not
	// reallocate, so both shadows share backing arrays.
	if &sh1.starts[0] != &sh2.starts[0] || &sh1.subj[0] != &sh2.subj[0] {
		t.Fatal("extension reallocated columns despite sufficient capacity")
	}
	// The old struct's view stays coherent after extension.
	if len(sh1.starts) != 600 || sh1.starts[599] != events[599].Start {
		t.Fatalf("published prefix disturbed: len=%d", len(sh1.starts))
	}
	for i, id := range dictBefore {
		if sh2.dict[i] != id {
			t.Fatalf("dict slot %d changed from %d to %d", i, id, sh2.dict[i])
		}
	}
	for i, ev := range events {
		if sh2.starts[i] != ev.Start || sh2.ops[i] != ev.Op ||
			sh2.dict[sh2.subj[i]] != ev.Subject || sh2.dict[sh2.obj[i]] != ev.Object {
			t.Fatalf("row %d miscopied", i)
		}
	}
}

// TestHotShadowReuseAndStaleness checks shadowFor's caching: same backing
// array and coverage hits the published shadow; a different backing array
// (the situation after a copy-on-write re-sort) forces a rebuild.
func TestHotShadowReuseAndStaleness(t *testing.T) {
	entities, events := hotTestData(800)
	st := New(Options{})
	st.Ingest(types.NewDataset(entities, events))

	st.mu.RLock()
	var p *partition
	for _, cand := range st.parts {
		if p == nil || len(cand.events) > len(p.events) {
			p = cand
		}
	}
	st.mu.RUnlock()
	if p == nil || len(p.events) < hotShadowMinRows {
		t.Fatalf("no partition big enough to shadow")
	}

	evs := p.events
	sh1 := p.shadowFor(evs, len(evs))
	if sh1 == nil {
		t.Fatal("shadowFor returned nil")
	}
	if sh2 := p.shadowFor(evs, len(evs)); sh2 != sh1 {
		t.Fatal("covering shadow not reused")
	}
	if sh3 := p.shadowFor(evs, len(evs)/2); sh3 != sh1 {
		t.Fatal("narrower request rebuilt a covering shadow")
	}
	copied := append([]types.Event(nil), evs...)
	sh4 := p.shadowFor(copied, len(copied))
	if sh4 == sh1 {
		t.Fatal("stale shadow served for a different backing array")
	}
	if sh4.base != &copied[0] || sh4.n != len(copied) {
		t.Fatalf("rebuilt shadow base/n wrong: n=%d", sh4.n)
	}
}

// TestHotShadowInvalidationOnResort ingests out of order so the partition
// re-sorts, and requires scans before and after to stay identical to a
// shadow-disabled reference fed the same sequence.
func TestHotShadowInvalidationOnResort(t *testing.T) {
	entities, events := hotTestData(1200)
	// Late batch that sorts before everything already ingested.
	late := make([]types.Event, 300)
	for i := range late {
		late[i] = events[i]
		late[i].ID = types.EventID(10_000 + i)
		late[i].Seq = uint64(10_000 + i)
		late[i].Start -= 1000
		late[i].End -= 1000
	}

	hot := New(Options{})
	scalar := New(Options{DisableHotColumnar: true})
	for _, s := range []*Store{hot, scalar} {
		s.Ingest(types.NewDataset(entities, events))
	}
	all := func() *DataQuery { return &DataQuery{Ops: types.AllOps()} }
	matchesEqual(t, "pre-resort", hot.Run(context.Background(), all()), scalar.Run(context.Background(), all()))

	hot.Ingest(&types.Dataset{Events: late})
	scalar.Ingest(&types.Dataset{Events: late})
	matchesEqual(t, "post-resort", hot.Run(context.Background(), all()), scalar.Run(context.Background(), all()))

	q := &DataQuery{Ops: types.AllOps(), SubjType: types.EntityProcess,
		SubjPred: pred.NewCond(types.AttrExeName, pred.CmpEq, "%alpha%")}
	q2 := *q
	matchesEqual(t, "post-resort pred", hot.Run(context.Background(), q), scalar.Run(context.Background(), &q2))
}

// TestHotShadowSnapshotPinned interleaves snapshot scans with mutating
// ingests: the snapshot's results must be frozen at capture time even as
// the live store re-sorts its arrays and rebuilds shadows underneath.
func TestHotShadowSnapshotPinned(t *testing.T) {
	entities, events := hotTestData(1000)
	st := New(Options{})
	st.Ingest(types.NewDataset(entities, events))

	sn := st.Snapshot()
	defer sn.Close()
	all := func() *DataQuery { return &DataQuery{Ops: types.AllOps()} }
	before := sn.Run(context.Background(), all())
	if len(before) != 1000 {
		t.Fatalf("snapshot scan saw %d events, want 1000", len(before))
	}

	// Out-of-order ingest: the live partitions copy-and-re-sort while the
	// snapshot pins the old arrays (and the shadows built from them).
	late := events[:200]
	lateCopy := make([]types.Event, len(late))
	copy(lateCopy, late)
	for i := range lateCopy {
		lateCopy[i].ID = types.EventID(20_000 + i)
		lateCopy[i].Seq = uint64(20_000 + i)
		lateCopy[i].Start -= 777
	}
	st.Ingest(&types.Dataset{Events: lateCopy})

	after := sn.Run(context.Background(), all())
	matchesEqual(t, "snapshot frozen", after, before)
	if live := st.Run(context.Background(), all()); len(live) != 1200 {
		t.Fatalf("live scan saw %d events, want 1200", len(live))
	}
	matchesEqual(t, "snapshot still frozen", sn.Run(context.Background(), all()), before)
}

// TestHotConcurrentScanIngest hammers one store with parallel scans while
// the main goroutine keeps ingesting (in order and out of order). Run under
// -race this is the shadow's publication-safety test; the final differential
// proves no scan path corrupted shared state.
func TestHotConcurrentScanIngest(t *testing.T) {
	entities, events := hotTestData(4000)
	st := New(Options{})
	st.Ingest(types.NewDataset(entities, events[:2000]))

	qs := hotDiffQueries()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := *qs[rng.Intn(len(qs))]
				_ = st.Run(context.Background(), &q)
			}
		}(g)
	}
	for off := 2000; off < 4000; off += 250 {
		batch := make([]types.Event, 250)
		copy(batch, events[off:off+250])
		if off%500 == 0 {
			// Perturb half the batches so some ingests force a re-sort.
			for i := range batch {
				batch[i].Start -= 250
			}
		}
		st.Ingest(&types.Dataset{Events: batch})
	}
	close(stop)
	wg.Wait()

	ref := New(Options{DisableHotColumnar: true})
	ref.Ingest(types.NewDataset(entities, events[:2000]))
	for off := 2000; off < 4000; off += 250 {
		batch := make([]types.Event, 250)
		copy(batch, events[off:off+250])
		if off%500 == 0 {
			for i := range batch {
				batch[i].Start -= 250
			}
		}
		ref.Ingest(&types.Dataset{Events: batch})
	}
	for i, q := range hotDiffQueries() {
		qc, qr := *q, *q
		matchesEqual(t, fmt.Sprintf("final query %d", i), st.Run(context.Background(), &qc), ref.Run(context.Background(), &qr))
	}
}
