package storage

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"testing"

	"aiql/internal/pred"
	"aiql/internal/types"
)

// coldStoreFromV3 writes the dataset as a v3 segment in dir and installs it
// into a fresh store as cold runs (entities hot, events cold).
func coldStoreFromV3(t *testing.T, dir string, opts Options, entities []types.Entity, events []types.Event) (*Store, *segmentV2File) {
	t.Helper()
	sf, err := writeSegmentV3(dir, 1, uint64(len(events)), entities, events, nil)
	if err != nil {
		t.Fatalf("writeSegmentV3: %v", err)
	}
	st := New(opts)
	st.Ingest(&types.Dataset{Entities: entities})
	if err := sf.install(st); err != nil {
		t.Fatalf("install: %v", err)
	}
	t.Cleanup(sf.unmap)
	return st, sf
}

// TestSegmentV3RoundTrip writes a multi-block dataset as a v3 segment and
// requires the cold store to answer exactly like the all-hot reference,
// through both the full-scan and the indexed path.
func TestSegmentV3RoundTrip(t *testing.T) {
	entities, events := v2TestData(3000)
	want := New(Options{})
	want.Ingest(&types.Dataset{Entities: entities, Events: events})

	got, sf := coldStoreFromV3(t, t.TempDir(), Options{}, entities, events)
	if v := sf.formatVersion(); v != 3 {
		t.Fatalf("formatVersion = %d, want 3", v)
	}
	assertStoresEqual(t, got, want, "v3 cold store")

	// Reopen through the generic dispatcher: the magic must route to v3.
	seg, err := openSegmentAny(sf.path)
	if err != nil {
		t.Fatalf("openSegmentAny: %v", err)
	}
	defer seg.(*segmentV2File).unmap()
	if v := seg.formatVersion(); v != 3 {
		t.Fatalf("reopened formatVersion = %d, want 3", v)
	}
}

// TestSegmentV3CompressionSavesSpace writes the same dataset in both
// columnar formats and requires the compressed file to be measurably
// smaller — the acceptance criterion behind the format bump.
func TestSegmentV3CompressionSavesSpace(t *testing.T) {
	entities, events := v2TestData(5000)
	sfV2, err := writeSegmentV2(t.TempDir(), 1, uint64(len(events)), entities, events)
	if err != nil {
		t.Fatal(err)
	}
	defer sfV2.unmap()
	sfV3, err := writeSegmentV3(t.TempDir(), 1, uint64(len(events)), entities, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sfV3.unmap()

	s2, err := os.Stat(sfV2.path)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := os.Stat(sfV3.path)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Size() >= s2.Size() {
		t.Fatalf("v3 segment is %d bytes, v2 is %d — compression saved nothing", s3.Size(), s2.Size())
	}
	t.Logf("v2 %d bytes, v3 %d bytes (%.1f%% of v2)", s2.Size(), s3.Size(), 100*float64(s3.Size())/float64(s2.Size()))
}

// TestSegmentV3CompressedCounters scans a v3 store and checks the
// compression accounting: stored bytes read must be positive and smaller
// than the raw bytes they decoded to on this highly regular dataset.
func TestSegmentV3CompressedCounters(t *testing.T) {
	entities, events := v2TestData(4000)
	st, _ := coldStoreFromV3(t, t.TempDir(), Options{}, entities, events)
	if n := len(st.Run(context.Background(), &DataQuery{Ops: types.AllOps()})); n != 4000 {
		t.Fatalf("full scan returned %d matches, want 4000", n)
	}
	ss := st.ScanStats()
	if ss.CompressedBytesRead <= 0 || ss.CompressedBytesDecode <= 0 {
		t.Fatalf("compression counters not engaged: %+v", ss)
	}
	if ss.CompressedBytesRead >= ss.CompressedBytesDecode {
		t.Fatalf("read %d stored bytes for %d decoded — no compression on regular data",
			ss.CompressedBytesRead, ss.CompressedBytesDecode)
	}
}

// TestSegmentV3CorruptionTyped damages a v3 file in each structurally
// distinct region and requires a typed ErrSegmentCorrupt from open or scan —
// never a panic, never silent wrong rows.
func TestSegmentV3CorruptionTyped(t *testing.T) {
	entities, events := v2TestData(2500)
	dir := t.TempDir()
	sf, err := writeSegmentV3(dir, 1, uint64(len(events)), entities, events, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := sf.path
	sf.unmap()
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	layout := readV2Layout(t, pristine)
	if len(layout.entries) != 1 {
		t.Fatalf("expected 1 partition, got %d", len(layout.entries))
	}
	pe := layout.entries[0]

	cases := []struct {
		name string
		mut  func(raw []byte) []byte
	}{
		{"bad-magic", func(raw []byte) []byte { raw[0] ^= 0xFF; return raw }},
		{"truncated-file", func(raw []byte) []byte { return raw[:len(raw)-7] }},
		{"directory-bit-flip", func(raw []byte) []byte { raw[pe.off+16] ^= 0x01; return raw }},
		{"zone-meta-bit-flip", func(raw []byte) []byte { raw[pe.metaOff+segV2ZoneBytes+3] ^= 0x40; return raw }},
		{"block-flag-byte", func(raw []byte) []byte { raw[pe.dataOff] ^= 0x01; return raw }},
		{"block-payload-bit-flip", func(raw []byte) []byte { raw[pe.dataOff+pe.dataLen/2] ^= 0x10; return raw }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := tc.mut(append([]byte(nil), pristine...))
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			err := func() error {
				seg, err := openSegmentAny(path)
				if err != nil {
					return err
				}
				defer seg.(*segmentV2File).unmap()
				if _, err := seg.readEntities(); err != nil {
					return err
				}
				st := New(Options{DisableZoneMaps: true})
				st.Ingest(&types.Dataset{Entities: entities})
				if err := seg.install(st); err != nil {
					return err
				}
				c := st.Scan(context.Background(), &DataQuery{Ops: types.AllOps()})
				defer c.Close()
				Drain(c)
				return c.Err()
			}()
			if err == nil {
				t.Fatal("corruption went undetected")
			}
			if !errors.Is(err, ErrSegmentCorrupt) {
				t.Fatalf("untyped error: %v", err)
			}
		})
	}
}

// attrZoneData builds a block-segregated dataset for trigram pruning: a
// candidate pool larger than the dictionary-index map limit (so the
// membership pruner stands down), events whose first three blocks reference
// only "bravo" processes and whose last block references an "alpha" one.
func attrZoneData() ([]types.Entity, []types.Event) {
	const base = int64(1488326400000) // 2017-03-01T00:00:00Z
	var entities []types.Entity
	for id := 1; id <= 1100; id++ {
		entities = append(entities, types.Entity{
			ID: types.EntityID(id), Type: types.EntityProcess, AgentID: 1,
			Attrs: map[string]string{types.AttrExeName: "/bin/alpha-worker"},
		})
	}
	for id := 2001; id <= 2004; id++ {
		entities = append(entities, types.Entity{
			ID: types.EntityID(id), Type: types.EntityProcess, AgentID: 1,
			Attrs: map[string]string{types.AttrExeName: "/bin/bravo-daemon"},
		})
	}
	entities = append(entities, types.Entity{
		ID: 3000, Type: types.EntityFile, AgentID: 1,
		Attrs: map[string]string{types.AttrName: "/tmp/out"},
	})
	events := make([]types.Event, 4096)
	for i := range events {
		subj := types.EntityID(2001 + i%4) // bravo
		if i >= 3*1024 {
			subj = 1 // alpha: confined to the final block
		}
		events[i] = types.Event{
			ID: types.EventID(i + 1), AgentID: 1,
			Subject: subj, Object: 3000, Op: types.OpWrite,
			Start: base + int64(i)*1000, End: base + int64(i)*1000 + 5,
			Seq: uint64(i + 1), Amount: int64(i),
		}
	}
	return entities, events
}

// TestSegmentV3AttrZonePruning is the differential for trigram attribute
// zone maps: a LIKE predicate whose candidate set is too large for
// dictionary-index pruning must still skip the blocks that cannot contain a
// matching subject, and must return exactly the rows an unpruned scan does.
func TestSegmentV3AttrZonePruning(t *testing.T) {
	entities, events := attrZoneData()
	q := func() *DataQuery {
		return &DataQuery{
			SubjType: types.EntityProcess,
			SubjPred: pred.NewCond(types.AttrExeName, pred.CmpEq, "%alpha%"),
			ObjType:  types.EntityFile,
			Ops:      types.NewOpSet(types.OpWrite),
		}
	}

	pruned, sf := coldStoreFromV3(t, t.TempDir(), Options{}, entities, events)
	sfRe, err := openSegmentV3(sf.path)
	if err != nil {
		t.Fatal(err)
	}
	exhaustive := New(Options{DisableZoneMaps: true})
	exhaustive.Ingest(&types.Dataset{Entities: entities})
	if err := sfRe.install(exhaustive); err != nil {
		t.Fatal(err)
	}
	defer sfRe.unmap()

	pm, em := pruned.Run(context.Background(), q()), exhaustive.Run(context.Background(), q())
	if len(pm) != len(em) {
		t.Fatalf("pruned scan %d matches, exhaustive %d", len(pm), len(em))
	}
	if len(pm) != 1024 {
		t.Fatalf("got %d matches, want the 1024 alpha-block rows", len(pm))
	}
	for i := range pm {
		if pm[i].Event.ID != em[i].Event.ID {
			t.Fatalf("match %d: event %d vs %d", i, pm[i].Event.ID, em[i].Event.ID)
		}
	}

	ps, es := pruned.ScanStats(), exhaustive.ScanStats()
	if ps.AttrZoneSkips == 0 {
		t.Fatalf("no attribute-zone skips recorded: %+v", ps)
	}
	if es.AttrZoneSkips != 0 {
		t.Fatalf("pruning-disabled run skipped %d blocks by trigram", es.AttrZoneSkips)
	}
	if ps.BlocksDecoded >= es.BlocksDecoded {
		t.Fatalf("pruned run decoded %d blocks, exhaustive %d — pruning saved nothing",
			ps.BlocksDecoded, es.BlocksDecoded)
	}
}

// TestMixedV2V3SegmentsAnswerIdentically compacts one half of a dataset
// under the legacy-v2 escape hatch and the other under the v3 default, then
// requires the recovered store to equal the uninterrupted in-memory run.
func TestMixedV2V3SegmentsAnswerIdentically(t *testing.T) {
	ds := dsForSegTest(t)
	batches := splitDataset(ds, 4)
	dir := t.TempDir()

	phase := func(legacyV2 bool, bs []*types.Dataset) {
		opts := persistOpts()
		opts.LegacySegmentV2 = legacyV2
		p := openOrFatal(t, dir, opts)
		if err := p.WarmUp(); err != nil {
			t.Fatal(err)
		}
		for _, b := range bs {
			if err := p.Ingest(b); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Compact(); err != nil {
			t.Fatal(err)
		}
		p.Close()
	}
	phase(true, batches[:2])
	phase(false, batches[2:])

	re := openOrFatal(t, dir, persistOpts())
	if err := re.WarmUp(); err != nil {
		t.Fatal(err)
	}
	st := re.DurabilityStats()
	if st.Segments != 2 || st.SegmentsV3 != 1 {
		t.Fatalf("segments = %d (%d v3), want 2 (1 v3)", st.Segments, st.SegmentsV3)
	}
	assertStoresEqual(t, re.Store, memStoreOf(batches), "mixed v2+v3 store")
}

// dsForSegTest adapts v2TestData into a Dataset spread over two agents and
// days so compaction produces multiple partitions.
func dsForSegTest(t *testing.T) *types.Dataset {
	t.Helper()
	entities, events := v2TestData(2000)
	rng := rand.New(rand.NewSource(99))
	for i := range events {
		events[i].AgentID = 1 + rng.Intn(2)
		events[i].Start += int64(rng.Intn(2)) * 86_400_000
	}
	ents := make([]types.Entity, len(entities))
	copy(ents, entities)
	return types.NewDataset(ents, events)
}

// FuzzSegmentV3 is the v3 counterpart of FuzzSegmentV2: a generated dataset
// must survive write → open → cold scan byte-for-byte, and a one-byte
// mutation anywhere in the file must produce either identical results or a
// typed ErrSegmentCorrupt — never a panic and never silent wrong rows.
func FuzzSegmentV3(f *testing.F) {
	f.Add(int64(1), uint16(10), -1, byte(0))
	f.Add(int64(2), uint16(300), 60, byte(0xFF))
	f.Add(int64(3), uint16(1500), 200, byte(0x01))
	f.Add(int64(4), uint16(0), 0, byte(0x80))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, mutOff int, mutByte byte) {
		rng := rand.New(rand.NewSource(seed))
		entities, events := v2TestData(int(n)%2100 + 1)
		for i := range events {
			events[i].AgentID = 1 + rng.Intn(2)
			events[i].Start += int64(rng.Intn(3)) * 86_400_000
			if rng.Intn(4) == 0 {
				events[i].Start = events[rng.Intn(len(events))].Start
			}
		}
		dir := t.TempDir()
		sf, err := writeSegmentV3(dir, 1, uint64(len(events)), entities, events, nil)
		if err != nil {
			t.Fatalf("write: %v", err)
		}
		sf.unmap()

		raw, err := os.ReadFile(sf.path)
		if err != nil {
			t.Fatal(err)
		}
		mutated := false
		if mutOff >= 0 && mutOff < len(raw) && raw[mutOff]^mutByte != raw[mutOff] {
			raw[mutOff] ^= mutByte
			mutated = true
			if err := os.WriteFile(sf.path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		want := New(Options{})
		want.Ingest(&types.Dataset{Entities: entities, Events: events})
		wantMatches := want.Run(context.Background(), &DataQuery{Ops: types.AllOps()})

		err = func() error {
			seg, err := openSegmentAny(sf.path)
			if err != nil {
				return err
			}
			if _, err := seg.readEntities(); err != nil {
				return err
			}
			st := New(Options{DisableZoneMaps: true})
			st.Ingest(&types.Dataset{Entities: entities})
			if err := seg.install(st); err != nil {
				return err
			}
			defer seg.(*segmentV2File).unmap()
			c := st.Scan(context.Background(), &DataQuery{Ops: types.AllOps()})
			defer c.Close()
			got := Drain(c)
			if err := c.Err(); err != nil {
				return err
			}
			if len(got) != len(wantMatches) {
				t.Fatalf("scan returned %d matches, want %d", len(got), len(wantMatches))
			}
			for i := range got {
				if *got[i].Event != *wantMatches[i].Event {
					t.Fatalf("match %d: %+v, want %+v", i, got[i].Event, wantMatches[i].Event)
				}
			}
			return nil
		}()
		if err != nil {
			if !mutated {
				t.Fatalf("pristine segment failed: %v", err)
			}
			if !errors.Is(err, ErrSegmentCorrupt) {
				t.Fatalf("mutation produced untyped error: %v", err)
			}
		}
	})
}
