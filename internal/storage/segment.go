package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// Segment files are the immutable, compacted form of a WAL sequence range:
// one file per compaction, internally partitioned by (agent, UTC day)
// exactly like the in-memory store, with events sorted by (Start, Seq) and
// the posting lists serialized alongside them so loading a partition
// installs it without re-indexing.
//
// On-disk layout (integers little-endian):
//
//	magic "AIQLSEG1" (8)
//	firstSeq u64  lastSeq u64         — the WAL range this file covers
//	nParts u32    nEntities u32
//	entityOff u64 entityLen u64 entityCRC u32
//	dirCRC u32                        — CRC-32C of the directory bytes
//	directory: nParts × {agent i64, day i64, nEvents u32, crc u32, off u64, len u64}
//	partition blocks … entity block
//
// A partition block is events (fixed-width) followed by the serialized
// bySubject and byObject posting maps. Opening a segment reads only the
// header and directory — O(partitions), not O(events) — so a server with
// months of segments starts fast; payload blocks are read (and checksum-
// verified) when the store warms up.
//
// Files are named seg-<firstSeq>-<lastSeq>.seg (16 hex digits each) and
// written via a .tmp + fsync + rename dance: a crash leaves either no
// segment (the WAL still covers the range) or a complete one, never a
// half-written file that parses.

const (
	segMagic     = "AIQLSEG1"
	segHeaderLen = 8 + 8 + 8 + 4 + 4 + 8 + 8 + 4 + 4
	segDirEntry  = 8 + 8 + 4 + 4 + 8 + 8
)

// segPartInfo is one directory entry: where a partition's block lives.
type segPartInfo struct {
	key     partKey
	nEvents int
	crc     uint32
	off     uint64
	length  uint64
}

// segmentFile is an opened segment: header and directory only, payload on
// demand.
type segmentFile struct {
	path      string
	firstSeq  uint64
	lastSeq   uint64
	nEntities int
	entityOff uint64
	entityLen uint64
	entityCRC uint32
	parts     []segPartInfo
}

func segFileName(first, last uint64) string {
	return fmt.Sprintf("seg-%016x-%016x.seg", first, last)
}

// writeSegment compacts one batch of entities and events — everything a
// WAL range [firstSeq, lastSeq] carried — into an immutable segment file
// in dir, returning it already opened (header + directory). Events are
// partitioned by (agent, day), sorted, and indexed exactly as the
// in-memory store would hold them.
func writeSegment(dir string, firstSeq, lastSeq uint64, entities []types.Entity, events []types.Event) (*segmentFile, error) {
	// Partition and sort.
	parts := make(map[partKey][]types.Event)
	for i := range events {
		ev := &events[i]
		key := partKey{agent: ev.AgentID, day: timeutil.DayIndex(ev.Start)}
		parts[key] = append(parts[key], *ev)
	}
	keys := make([]partKey, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].day != keys[j].day {
			return keys[i].day < keys[j].day
		}
		return keys[i].agent < keys[j].agent
	})

	// Build partition blocks.
	dirEntries := make([]segPartInfo, 0, len(keys))
	var blocks []byte
	payloadBase := uint64(segHeaderLen + len(keys)*segDirEntry)
	for _, k := range keys {
		evs := parts[k]
		sort.Slice(evs, func(i, j int) bool { return eventLess(&evs[i], &evs[j]) })
		bySubject := make(map[types.EntityID][]int32)
		byObject := make(map[types.EntityID][]int32)
		for i := range evs {
			bySubject[evs[i].Subject] = append(bySubject[evs[i].Subject], int32(i))
			byObject[evs[i].Object] = append(byObject[evs[i].Object], int32(i))
		}
		block := make([]byte, 0, len(evs)*eventWireBytes)
		for i := range evs {
			block = appendEvent(block, &evs[i])
		}
		block = appendPostings(block, bySubject)
		block = appendPostings(block, byObject)
		dirEntries = append(dirEntries, segPartInfo{
			key:     k,
			nEvents: len(evs),
			crc:     crc32.Checksum(block, castagnoli),
			off:     payloadBase + uint64(len(blocks)),
			length:  uint64(len(block)),
		})
		blocks = append(blocks, block...)
	}

	// Entity block.
	var entBlock []byte
	for i := range entities {
		entBlock = appendEntity(entBlock, &entities[i])
	}
	entityOff := payloadBase + uint64(len(blocks))

	// Directory bytes.
	dirBytes := make([]byte, 0, len(dirEntries)*segDirEntry)
	for _, e := range dirEntries {
		dirBytes = binary.LittleEndian.AppendUint64(dirBytes, uint64(int64(e.key.agent)))
		dirBytes = binary.LittleEndian.AppendUint64(dirBytes, uint64(int64(e.key.day)))
		dirBytes = binary.LittleEndian.AppendUint32(dirBytes, uint32(e.nEvents))
		dirBytes = binary.LittleEndian.AppendUint32(dirBytes, e.crc)
		dirBytes = binary.LittleEndian.AppendUint64(dirBytes, e.off)
		dirBytes = binary.LittleEndian.AppendUint64(dirBytes, e.length)
	}

	// Header.
	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, firstSeq)
	hdr = binary.LittleEndian.AppendUint64(hdr, lastSeq)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(dirEntries)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(entities)))
	hdr = binary.LittleEndian.AppendUint64(hdr, entityOff)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(entBlock)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(entBlock, castagnoli))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(dirBytes, castagnoli))

	final := filepath.Join(dir, segFileName(firstSeq, lastSeq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: segment: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			f.Close()
			os.Remove(tmp)
		}
	}()
	for _, chunk := range [][]byte{hdr, dirBytes, blocks, entBlock} {
		if _, err := f.Write(chunk); err != nil {
			return nil, fmt.Errorf("storage: segment: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		return nil, fmt.Errorf("storage: segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("storage: segment: %w", err)
	}
	// Validate the file BEFORE the rename makes it authoritative: once a
	// parsed segment exists its WAL range can be deleted, so any failure
	// from here on must leave either a sweepable .tmp or a good segment —
	// never a renamed file the caller failed to track (a silently retried
	// compaction would then write an overlapping segment and recovery
	// would apply the range twice).
	sf, err := openSegment(tmp)
	if err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return nil, fmt.Errorf("storage: segment: %w", err)
	}
	ok = true
	sf.path = final
	if err := syncDir(dir); err != nil {
		return nil, err
	}
	return sf, nil
}

// syncDir fsyncs a directory so a just-renamed file survives a power cut.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: sync %s: %w", dir, err)
	}
	return nil
}

// openSegment reads a segment's header and directory — the lazy part of
// lazy loading: O(partitions) work, no event payload touched.
func openSegment(path string) (*segmentFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: segment: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: segment: %w", err)
	}
	size := uint64(fi.Size())
	hdr := make([]byte, segHeaderLen)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, fmt.Errorf("storage: segment %s: short header: %w", path, err)
	}
	if string(hdr[:8]) != segMagic {
		return nil, fmt.Errorf("storage: segment %s: bad magic", path)
	}
	sf := &segmentFile{
		path:      path,
		firstSeq:  binary.LittleEndian.Uint64(hdr[8:]),
		lastSeq:   binary.LittleEndian.Uint64(hdr[16:]),
		nEntities: int(binary.LittleEndian.Uint32(hdr[28:])),
		entityOff: binary.LittleEndian.Uint64(hdr[32:]),
		entityLen: binary.LittleEndian.Uint64(hdr[40:]),
		entityCRC: binary.LittleEndian.Uint32(hdr[48:]),
	}
	// The header itself carries no checksum, so every size/offset in it is
	// untrusted until bounded against the actual file: a flipped bit in a
	// length field must be a clean corruption error here, not a huge
	// allocation (OOM) at load time.
	if sf.entityOff > size || sf.entityLen > size-sf.entityOff {
		return nil, fmt.Errorf("storage: segment %s: entity block [%d,+%d) exceeds file size %d", path, sf.entityOff, sf.entityLen, size)
	}
	if uint64(sf.nEntities) > sf.entityLen { // an entity encodes to >= 21 bytes
		return nil, fmt.Errorf("storage: segment %s: implausible entity count %d for %d-byte block", path, sf.nEntities, sf.entityLen)
	}
	nParts := int(binary.LittleEndian.Uint32(hdr[24:]))
	dirCRC := binary.LittleEndian.Uint32(hdr[52:])
	if nParts < 0 || uint64(nParts) > size/segDirEntry {
		return nil, fmt.Errorf("storage: segment %s: implausible partition count %d", path, nParts)
	}
	dirBytes := make([]byte, nParts*segDirEntry)
	if _, err := f.ReadAt(dirBytes, segHeaderLen); err != nil {
		return nil, fmt.Errorf("storage: segment %s: short directory: %w", path, err)
	}
	if crc32.Checksum(dirBytes, castagnoli) != dirCRC {
		return nil, fmt.Errorf("storage: segment %s: directory checksum mismatch", path)
	}
	sf.parts = make([]segPartInfo, nParts)
	for i := 0; i < nParts; i++ {
		b := dirBytes[i*segDirEntry:]
		pi := segPartInfo{
			key: partKey{
				agent: int(int64(binary.LittleEndian.Uint64(b[0:]))),
				day:   int(int64(binary.LittleEndian.Uint64(b[8:]))),
			},
			nEvents: int(binary.LittleEndian.Uint32(b[16:])),
			crc:     binary.LittleEndian.Uint32(b[20:]),
			off:     binary.LittleEndian.Uint64(b[24:]),
			length:  binary.LittleEndian.Uint64(b[32:]),
		}
		// Directory entries are CRC-protected, but bounding them too keeps
		// loadPartition's allocations provably within the file.
		if pi.off > size || pi.length > size-pi.off || uint64(pi.nEvents) > pi.length/eventWireBytes {
			return nil, fmt.Errorf("storage: segment %s: partition (%d,%d) block out of bounds", path, pi.key.agent, pi.key.day)
		}
		sf.parts[i] = pi
	}
	return sf, nil
}

// loadPartition reads, verifies and decodes one partition block.
func (sf *segmentFile) loadPartition(f *os.File, pi *segPartInfo) ([]types.Event, map[types.EntityID][]int32, map[types.EntityID][]int32, error) {
	block := make([]byte, pi.length)
	if _, err := f.ReadAt(block, int64(pi.off)); err != nil {
		return nil, nil, nil, fmt.Errorf("storage: segment %s: read partition (%d,%d): %w", sf.path, pi.key.agent, pi.key.day, err)
	}
	if crc32.Checksum(block, castagnoli) != pi.crc {
		return nil, nil, nil, fmt.Errorf("storage: segment %s: partition (%d,%d): checksum mismatch", sf.path, pi.key.agent, pi.key.day)
	}
	d := &decoder{b: block}
	events := make([]types.Event, 0, pi.nEvents)
	for i := 0; i < pi.nEvents && d.err == nil; i++ {
		events = append(events, d.event())
	}
	bySubject := d.postings(pi.nEvents)
	byObject := d.postings(pi.nEvents)
	if d.err != nil {
		return nil, nil, nil, fmt.Errorf("storage: segment %s: partition (%d,%d): %w", sf.path, pi.key.agent, pi.key.day, d.err)
	}
	if d.off != len(block) {
		return nil, nil, nil, fmt.Errorf("storage: segment %s: partition (%d,%d): trailing bytes", sf.path, pi.key.agent, pi.key.day)
	}
	return events, bySubject, byObject, nil
}

// loadEntities reads, verifies and decodes the entity block.
func (sf *segmentFile) loadEntities(f *os.File) ([]types.Entity, error) {
	return readEntityBlock(sf.path, f, sf.entityOff, sf.entityLen, sf.entityCRC, sf.nEntities)
}

// readEntityBlock reads, verifies and decodes an entity block — the same
// codec in both segment format versions.
func readEntityBlock(path string, f *os.File, off, length uint64, wantCRC uint32, n int) ([]types.Entity, error) {
	block := make([]byte, length)
	if _, err := f.ReadAt(block, int64(off)); err != nil {
		return nil, corruptf(path, "read entities: %v", err)
	}
	if crc32.Checksum(block, castagnoli) != wantCRC {
		return nil, corruptf(path, "entity checksum mismatch")
	}
	d := &decoder{b: block}
	entities := make([]types.Entity, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		entities = append(entities, d.entity())
	}
	if d.err != nil {
		return nil, corruptf(path, "entities: %v", d.err)
	}
	if d.off != len(block) {
		return nil, corruptf(path, "entities: trailing bytes")
	}
	return entities, nil
}

// events returns the total event count across the segment's partitions.
func (sf *segmentFile) events() int {
	n := 0
	for i := range sf.parts {
		n += sf.parts[i].nEvents
	}
	return n
}
