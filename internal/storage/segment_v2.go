package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// Version 2 of the sealed-segment format replaces v1's row-oriented
// partition blocks with a columnar layout built for the scan path:
//
//   - Events live in fixed-size blocks (segV2BlockRows rows) of contiguous
//     per-attribute columns, so a predicate over one attribute walks one
//     dense array instead of striding through 73-byte row structs.
//   - Subject/object entity ids are dictionary-encoded per partition: the
//     columns hold u32 indexes into a sorted id dictionary, and the posting
//     lists become slices of one shared position array addressed through a
//     bounds table — no per-entity map materialization on load.
//   - Start timestamps are delta-encoded (u32) against the block's zone-map
//     minimum; a partition spans one UTC day, so the delta always fits.
//   - Every block carries a zone map — min/max start time, an OpSet bitmap,
//     and the min/max dictionary index of its subjects and objects — letting
//     a query skip whole blocks its predicates cannot match without reading
//     them.
//
// The file is opened header-and-directory-only (same O(partitions) recovery
// cost as v1) and the payload is memory-mapped read-only on first use:
// WarmUp maps the file, and per-partition metadata (dictionary, zones,
// postings) decodes lazily on first scan of that partition. Cold queries
// therefore touch only the blocks their windows and predicates select.
//
// On-disk layout (integers little-endian; header mirrors v1 field-for-field
// so version dispatch is by magic alone):
//
//	magic "AIQLSEG2" (8)
//	firstSeq u64  lastSeq u64
//	nParts u32    nEntities u32
//	entityOff u64 entityLen u64 entityCRC u32
//	dirCRC u32
//	directory: nParts × {agent i64, day i64, nEvents u32, nBlocks u32,
//	                     nDict u32, metaCRC u32, minStart i64, maxStart i64,
//	                     metaOff u64, metaLen u64, dataOff u64, dataLen u64}
//	per-partition meta region:
//	    dict      nDict × u64          (sorted ascending entity ids)
//	    zones     nBlocks × 42 bytes   {count u32, crc u32, minStart i64,
//	                                    maxStart i64, ops u16, minSubj u32,
//	                                    maxSubj u32, minObj u32, maxObj u32}
//	    bounds    (2·nDict+1) × u32    (posting-list boundaries)
//	    posts     2·nEvents × u32      (event positions; subject list of
//	                                    dict entry i is posts[bounds[2i]:
//	                                    bounds[2i+1]], object list is
//	                                    posts[bounds[2i+1]:bounds[2i+2]])
//	per-partition data region: nBlocks × block, each block columns in order
//	    starts u32 (delta) | ends i64 | ids u64 | seqs u64 | amounts i64 |
//	    fails i64 | subj u32 (dict idx) | obj u32 (dict idx) | ops u8
//	entity block (identical codec to v1)
//
// Every length in the directory is arithmetically determined by the counts
// next to it, so a corrupted directory is caught at open by consistency
// checks rather than surfacing later as an over-allocation.

const (
	segV2Magic     = "AIQLSEG2"
	segV2DirEntry  = 8 + 8 + 4 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 8 + 8
	segV2ZoneBytes = 4 + 4 + 8 + 8 + 2 + 4 + 4 + 4 + 4
	segV2RowBytes  = 4 + 8 + 8 + 8 + 8 + 8 + 4 + 4 + 1

	// segV2BlockRows is the zone-map granularity: rows per column block.
	segV2BlockRows = 1024
)

// ErrSegmentCorrupt is wrapped by every error reporting on-disk segment
// corruption (bad checksum, impossible count, out-of-range index…), so
// callers can distinguish data damage from I/O failure with errors.Is.
var ErrSegmentCorrupt = errors.New("storage: segment corrupt")

func corruptf(path, format string, args ...any) error {
	return fmt.Errorf("%w: %s: %s", ErrSegmentCorrupt, path, fmt.Sprintf(format, args...))
}

// segV2Zone is one block's zone map. The trailing fields exist only in the
// v3 (compressed) encoding: attribute trigram filters over the block's
// subject/object entities, and the block's position in the partition data
// region — compressed blocks are variable-length, so offsets can no longer
// be derived arithmetically from row counts. v2 zones leave them zero.
type segV2Zone struct {
	count    int
	crc      uint32
	minStart int64
	maxStart int64
	ops      types.OpSet
	minSubj  uint32
	maxSubj  uint32
	minObj   uint32
	maxObj   uint32

	// v3 only:
	subjTri uint64 // trigram filter over subject entities' attribute values
	objTri  uint64 // trigram filter over object entities' attribute values
	dataOff uint64 // block offset relative to the partition data region
	dataLen uint32 // stored (possibly compressed) block length
	rawLen  uint32 // encoded length before byte compression
}

// segV2Meta is a partition's decoded metadata: everything a scan needs to
// decide which blocks to touch, plus the posting lists for index probes.
type segV2Meta struct {
	dict   []types.EntityID // sorted ascending
	zones  []segV2Zone
	bounds []uint32
	posts  []uint32
}

// subjectPostings returns the event positions for dict entry i as subject.
func (m *segV2Meta) subjectPostings(i int) []uint32 {
	return m.posts[m.bounds[2*i]:m.bounds[2*i+1]]
}

// objectPostings returns the event positions for dict entry i as object.
func (m *segV2Meta) objectPostings(i int) []uint32 {
	return m.posts[m.bounds[2*i+1]:m.bounds[2*i+2]]
}

// dictIndex returns the dictionary slot of id, or -1.
func (m *segV2Meta) dictIndex(id types.EntityID) int {
	i := sort.Search(len(m.dict), func(j int) bool { return m.dict[j] >= id })
	if i < len(m.dict) && m.dict[i] == id {
		return i
	}
	return -1
}

// segV2PartInfo is the plain directory-entry payload — everything the
// writer computes and the reader trusts after checkV2PartInfo. It is
// separate from segV2Part so the writer can copy it freely (segV2Part
// carries lock state). The directory includes the partition's [minStart,
// maxStart] time range so the store can prune, order, and overlap-check
// cold partitions without touching the meta region.
type segV2PartInfo struct {
	key      partKey
	nEvents  int
	nBlocks  int
	nDict    int
	metaCRC  uint32
	minStart int64
	maxStart int64
	metaOff  uint64
	metaLen  uint64
	dataOff  uint64
	dataLen  uint64
}

// segV2Part is one directory entry plus its lazily-decoded metadata.
type segV2Part struct {
	segV2PartInfo

	metaOnce sync.Once
	metaErr  error
	// meta is published atomically so Estimate can peek at already-decoded
	// metadata without forcing (or racing with) the decode.
	meta atomic.Pointer[segV2Meta]
}

// peekMeta returns the decoded metadata if some scan already produced it,
// without triggering a decode.
func (pi *segV2Part) peekMeta() *segV2Meta { return pi.meta.Load() }

// segmentV2File is an opened columnar segment — v2 (raw blocks) or v3
// (compressed blocks; see segment_v3.go) — header and directory eagerly,
// the payload memory-mapped on first use and partition metadata decoded on
// first scan. The two versions share every structure except the zone
// encoding and the block codec, so one type serves both, dispatching on
// version where they differ.
type segmentV2File struct {
	path      string
	version   int // 2 or 3
	firstSeq  uint64
	lastSeq   uint64
	nEntities int
	entityOff uint64
	entityLen uint64
	entityCRC uint32
	parts     []segV2Part

	mapOnce sync.Once
	mapErr  error
	data    []byte
	mapped  bool // data came from mmap (vs. a read-whole-file fallback)
}

// ensureMapped maps (or, off unix, reads) the whole file read-only exactly
// once. The fd is closed immediately — the mapping outlives it.
func (sf *segmentV2File) ensureMapped() error {
	sf.mapOnce.Do(func() {
		f, err := os.Open(sf.path)
		if err != nil {
			sf.mapErr = fmt.Errorf("storage: segment: %w", err)
			return
		}
		defer f.Close()
		fi, err := f.Stat()
		if err != nil {
			sf.mapErr = fmt.Errorf("storage: segment: %w", err)
			return
		}
		sf.data, sf.mapped, sf.mapErr = mapFile(f, fi.Size())
	})
	return sf.mapErr
}

// unmap releases the mapping; only tests call it (stores keep segments
// mapped for their lifetime — the kernel pages them in and out as needed).
func (sf *segmentV2File) unmap() {
	if sf.mapped && sf.data != nil {
		unmapFile(sf.data)
	}
	sf.data = nil
	sf.mapped = false
}

// writeSegmentV2 compacts one batch of entities and events into an
// immutable v2 segment file in dir, returning it opened (header +
// directory, payload unmapped). The partitioning, sort order, and posting
// semantics match v1's writeSegment exactly; only the encoding differs.
func writeSegmentV2(dir string, firstSeq, lastSeq uint64, entities []types.Entity, events []types.Event) (*segmentV2File, error) {
	return writeSegmentCols(dir, firstSeq, lastSeq, entities, events, 2, nil)
}

// writeSegmentCols is the shared columnar writer behind writeSegmentV2 and
// writeSegmentV3. lookup resolves entity ids the batch itself does not
// carry (events referencing entities sealed in earlier segments) so the v3
// attribute zone maps can cover them; ids neither the batch nor lookup
// resolve saturate their block's filter instead of weakening it.
func writeSegmentCols(dir string, firstSeq, lastSeq uint64, entities []types.Entity, events []types.Event, version int, lookup func(types.EntityID) *types.Entity) (*segmentV2File, error) {
	magic := segV2Magic
	if version >= 3 {
		magic = segV3Magic
	}
	parts := make(map[partKey][]types.Event)
	for i := range events {
		ev := &events[i]
		key := partKey{agent: ev.AgentID, day: timeutil.DayIndex(ev.Start)}
		parts[key] = append(parts[key], *ev)
	}
	keys := make([]partKey, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].day != keys[j].day {
			return keys[i].day < keys[j].day
		}
		return keys[i].agent < keys[j].agent
	})

	var resolve func(types.EntityID) *types.Entity
	if version >= 3 {
		byID := make(map[types.EntityID]*types.Entity, len(entities))
		for i := range entities {
			byID[entities[i].ID] = &entities[i]
		}
		resolve = func(id types.EntityID) *types.Entity {
			if e, ok := byID[id]; ok {
				return e
			}
			if lookup != nil {
				return lookup(id)
			}
			return nil
		}
	}

	type builtPart struct {
		info segV2PartInfo
		meta []byte
		data []byte
	}
	built := make([]builtPart, 0, len(keys))
	for _, k := range keys {
		evs := parts[k]
		sort.Slice(evs, func(i, j int) bool { return eventLess(&evs[i], &evs[j]) })
		var bp v2PartBuild
		var err error
		if version >= 3 {
			bp, err = buildV3Partition(k, evs, resolve)
		} else {
			bp, err = buildV2Partition(k, evs)
		}
		if err != nil {
			return nil, err
		}
		built = append(built, builtPart{info: bp.info, meta: bp.meta, data: bp.data})
	}

	// Assign offsets: header | directory | meta+data per partition | entities.
	off := uint64(segHeaderLen + len(built)*segV2DirEntry)
	for i := range built {
		bp := &built[i]
		bp.info.metaOff, bp.info.metaLen = off, uint64(len(bp.meta))
		off += uint64(len(bp.meta))
		bp.info.dataOff, bp.info.dataLen = off, uint64(len(bp.data))
		off += uint64(len(bp.data))
	}
	var entBlock []byte
	for i := range entities {
		entBlock = appendEntity(entBlock, &entities[i])
	}
	entityOff := off

	dirBytes := make([]byte, 0, len(built)*segV2DirEntry)
	for i := range built {
		e := &built[i].info
		dirBytes = binary.LittleEndian.AppendUint64(dirBytes, uint64(int64(e.key.agent)))
		dirBytes = binary.LittleEndian.AppendUint64(dirBytes, uint64(int64(e.key.day)))
		dirBytes = binary.LittleEndian.AppendUint32(dirBytes, uint32(e.nEvents))
		dirBytes = binary.LittleEndian.AppendUint32(dirBytes, uint32(e.nBlocks))
		dirBytes = binary.LittleEndian.AppendUint32(dirBytes, uint32(e.nDict))
		dirBytes = binary.LittleEndian.AppendUint32(dirBytes, e.metaCRC)
		dirBytes = binary.LittleEndian.AppendUint64(dirBytes, uint64(e.minStart))
		dirBytes = binary.LittleEndian.AppendUint64(dirBytes, uint64(e.maxStart))
		dirBytes = binary.LittleEndian.AppendUint64(dirBytes, e.metaOff)
		dirBytes = binary.LittleEndian.AppendUint64(dirBytes, e.metaLen)
		dirBytes = binary.LittleEndian.AppendUint64(dirBytes, e.dataOff)
		dirBytes = binary.LittleEndian.AppendUint64(dirBytes, e.dataLen)
	}

	hdr := make([]byte, 0, segHeaderLen)
	hdr = append(hdr, magic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, firstSeq)
	hdr = binary.LittleEndian.AppendUint64(hdr, lastSeq)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(built)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(entities)))
	hdr = binary.LittleEndian.AppendUint64(hdr, entityOff)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(entBlock)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(entBlock, castagnoli))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.Checksum(dirBytes, castagnoli))

	final := filepath.Join(dir, segFileName(firstSeq, lastSeq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: segment: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			f.Close()
			os.Remove(tmp)
		}
	}()
	chunks := [][]byte{hdr, dirBytes}
	for i := range built {
		chunks = append(chunks, built[i].meta, built[i].data)
	}
	chunks = append(chunks, entBlock)
	for _, chunk := range chunks {
		if _, err := f.Write(chunk); err != nil {
			return nil, fmt.Errorf("storage: segment: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		return nil, fmt.Errorf("storage: segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("storage: segment: %w", err)
	}
	// Validate before the rename makes the file authoritative — same
	// contract as v1: a failure leaves a sweepable .tmp, never a renamed
	// file the caller failed to track.
	sf, err := openSegmentCols(tmp, magic, version)
	if err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return nil, fmt.Errorf("storage: segment: %w", err)
	}
	ok = true
	sf.path = final
	if err := syncDir(dir); err != nil {
		return nil, err
	}
	return sf, nil
}

type v2PartBuild struct {
	info segV2PartInfo
	meta []byte
	data []byte
}

// buildV2Partition encodes one sorted partition into its meta and data
// regions.
func buildV2Partition(k partKey, evs []types.Event) (v2PartBuild, error) {
	n := len(evs)
	// Dictionary: sorted unique subject ∪ object ids.
	idSet := make(map[types.EntityID]struct{}, n)
	for i := range evs {
		idSet[evs[i].Subject] = struct{}{}
		idSet[evs[i].Object] = struct{}{}
	}
	dict := make([]types.EntityID, 0, len(idSet))
	for id := range idSet {
		dict = append(dict, id)
	}
	sort.Slice(dict, func(i, j int) bool { return dict[i] < dict[j] })
	slot := make(map[types.EntityID]uint32, len(dict))
	for i, id := range dict {
		slot[id] = uint32(i)
	}

	// Posting lists: event positions per dict entry, naturally ascending
	// because events are appended in sorted order.
	subjPos := make([][]uint32, len(dict))
	objPos := make([][]uint32, len(dict))
	for i := range evs {
		s, o := slot[evs[i].Subject], slot[evs[i].Object]
		subjPos[s] = append(subjPos[s], uint32(i))
		objPos[o] = append(objPos[o], uint32(i))
	}

	// Blocks + zone maps.
	nBlocks := (n + segV2BlockRows - 1) / segV2BlockRows
	zones := make([]segV2Zone, 0, nBlocks)
	data := make([]byte, 0, n*segV2RowBytes)
	for lo := 0; lo < n; lo += segV2BlockRows {
		hi := lo + segV2BlockRows
		if hi > n {
			hi = n
		}
		block := evs[lo:hi]
		z := segV2Zone{
			count:    len(block),
			minStart: block[0].Start,
			maxStart: block[len(block)-1].Start,
			minSubj:  slot[block[0].Subject],
			minObj:   slot[block[0].Object],
		}
		z.maxSubj, z.maxObj = z.minSubj, z.minObj
		for i := range block {
			ev := &block[i]
			z.ops = z.ops.Add(ev.Op)
			s, o := slot[ev.Subject], slot[ev.Object]
			if s < z.minSubj {
				z.minSubj = s
			}
			if s > z.maxSubj {
				z.maxSubj = s
			}
			if o < z.minObj {
				z.minObj = o
			}
			if o > z.maxObj {
				z.maxObj = o
			}
		}
		if delta := z.maxStart - z.minStart; delta < 0 || delta > int64(^uint32(0)) {
			return v2PartBuild{}, fmt.Errorf("storage: segment: partition (%d,%d) start span %d overflows delta encoding", k.agent, k.day, delta)
		}
		bb := make([]byte, 0, len(block)*segV2RowBytes)
		for i := range block {
			bb = binary.LittleEndian.AppendUint32(bb, uint32(block[i].Start-z.minStart))
		}
		for i := range block {
			bb = binary.LittleEndian.AppendUint64(bb, uint64(block[i].End))
		}
		for i := range block {
			bb = binary.LittleEndian.AppendUint64(bb, uint64(block[i].ID))
		}
		for i := range block {
			bb = binary.LittleEndian.AppendUint64(bb, block[i].Seq)
		}
		for i := range block {
			bb = binary.LittleEndian.AppendUint64(bb, uint64(block[i].Amount))
		}
		for i := range block {
			bb = binary.LittleEndian.AppendUint64(bb, uint64(int64(block[i].FailCode)))
		}
		for i := range block {
			bb = binary.LittleEndian.AppendUint32(bb, slot[block[i].Subject])
		}
		for i := range block {
			bb = binary.LittleEndian.AppendUint32(bb, slot[block[i].Object])
		}
		for i := range block {
			bb = append(bb, byte(block[i].Op))
		}
		z.crc = crc32.Checksum(bb, castagnoli)
		zones = append(zones, z)
		data = append(data, bb...)
	}

	// Meta region: dict | zones | bounds | posts.
	meta := make([]byte, 0, len(dict)*8+nBlocks*segV2ZoneBytes+(2*len(dict)+1)*4+2*n*4)
	for _, id := range dict {
		meta = binary.LittleEndian.AppendUint64(meta, uint64(id))
	}
	for i := range zones {
		z := &zones[i]
		meta = binary.LittleEndian.AppendUint32(meta, uint32(z.count))
		meta = binary.LittleEndian.AppendUint32(meta, z.crc)
		meta = binary.LittleEndian.AppendUint64(meta, uint64(z.minStart))
		meta = binary.LittleEndian.AppendUint64(meta, uint64(z.maxStart))
		meta = binary.LittleEndian.AppendUint16(meta, uint16(z.ops))
		meta = binary.LittleEndian.AppendUint32(meta, z.minSubj)
		meta = binary.LittleEndian.AppendUint32(meta, z.maxSubj)
		meta = binary.LittleEndian.AppendUint32(meta, z.minObj)
		meta = binary.LittleEndian.AppendUint32(meta, z.maxObj)
	}
	bound := uint32(0)
	meta = binary.LittleEndian.AppendUint32(meta, bound)
	for i := range dict {
		bound += uint32(len(subjPos[i]))
		meta = binary.LittleEndian.AppendUint32(meta, bound)
		bound += uint32(len(objPos[i]))
		meta = binary.LittleEndian.AppendUint32(meta, bound)
	}
	for i := range dict {
		for _, p := range subjPos[i] {
			meta = binary.LittleEndian.AppendUint32(meta, p)
		}
		for _, p := range objPos[i] {
			meta = binary.LittleEndian.AppendUint32(meta, p)
		}
	}

	return v2PartBuild{
		info: segV2PartInfo{
			key:      k,
			nEvents:  n,
			nBlocks:  nBlocks,
			nDict:    len(dict),
			metaCRC:  crc32.Checksum(meta, castagnoli),
			minStart: evs[0].Start,
			maxStart: evs[n-1].Start,
		},
		meta: meta,
		data: data,
	}, nil
}

// openSegmentV2 reads a v2 segment's header and directory only, bounding
// and cross-checking every count and offset so later lazy loads can trust
// the directory arithmetic.
func openSegmentV2(path string) (*segmentV2File, error) {
	return openSegmentCols(path, segV2Magic, 2)
}

// openSegmentCols is the shared open path behind openSegmentV2 and
// openSegmentV3: identical header and directory layout, version-specific
// per-partition arithmetic.
func openSegmentCols(path, magic string, version int) (*segmentV2File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: segment: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("storage: segment: %w", err)
	}
	size := uint64(fi.Size())
	hdr := make([]byte, segHeaderLen)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return nil, corruptf(path, "short header: %v", err)
	}
	if string(hdr[:8]) != magic {
		return nil, corruptf(path, "bad magic")
	}
	sf := &segmentV2File{
		path:      path,
		version:   version,
		firstSeq:  binary.LittleEndian.Uint64(hdr[8:]),
		lastSeq:   binary.LittleEndian.Uint64(hdr[16:]),
		nEntities: int(binary.LittleEndian.Uint32(hdr[28:])),
		entityOff: binary.LittleEndian.Uint64(hdr[32:]),
		entityLen: binary.LittleEndian.Uint64(hdr[40:]),
		entityCRC: binary.LittleEndian.Uint32(hdr[48:]),
	}
	if sf.entityOff > size || sf.entityLen > size-sf.entityOff {
		return nil, corruptf(path, "entity block [%d,+%d) exceeds file size %d", sf.entityOff, sf.entityLen, size)
	}
	if uint64(sf.nEntities) > sf.entityLen {
		return nil, corruptf(path, "implausible entity count %d for %d-byte block", sf.nEntities, sf.entityLen)
	}
	nParts := int(binary.LittleEndian.Uint32(hdr[24:]))
	dirCRC := binary.LittleEndian.Uint32(hdr[52:])
	if nParts < 0 || uint64(nParts) > size/segV2DirEntry {
		return nil, corruptf(path, "implausible partition count %d", nParts)
	}
	dirBytes := make([]byte, nParts*segV2DirEntry)
	if _, err := f.ReadAt(dirBytes, segHeaderLen); err != nil {
		return nil, corruptf(path, "short directory: %v", err)
	}
	if crc32.Checksum(dirBytes, castagnoli) != dirCRC {
		return nil, corruptf(path, "directory checksum mismatch")
	}
	sf.parts = make([]segV2Part, nParts)
	for i := 0; i < nParts; i++ {
		b := dirBytes[i*segV2DirEntry:]
		pi := &sf.parts[i]
		pi.key = partKey{
			agent: int(int64(binary.LittleEndian.Uint64(b[0:]))),
			day:   int(int64(binary.LittleEndian.Uint64(b[8:]))),
		}
		pi.nEvents = int(binary.LittleEndian.Uint32(b[16:]))
		pi.nBlocks = int(binary.LittleEndian.Uint32(b[20:]))
		pi.nDict = int(binary.LittleEndian.Uint32(b[24:]))
		pi.metaCRC = binary.LittleEndian.Uint32(b[28:])
		pi.minStart = int64(binary.LittleEndian.Uint64(b[32:]))
		pi.maxStart = int64(binary.LittleEndian.Uint64(b[40:]))
		pi.metaOff = binary.LittleEndian.Uint64(b[48:])
		pi.metaLen = binary.LittleEndian.Uint64(b[56:])
		pi.dataOff = binary.LittleEndian.Uint64(b[64:])
		pi.dataLen = binary.LittleEndian.Uint64(b[72:])
		if err := checkV2PartInfo(path, pi, size, version); err != nil {
			return nil, err
		}
	}
	return sf, nil
}

// checkV2PartInfo verifies one directory entry's internal arithmetic: all
// lengths are functions of the counts, all regions sit inside the file.
// v3 data regions are variable-length (compressed), so their length is
// bounded rather than exact; the per-zone offsets are validated against it
// when the meta region decodes.
func checkV2PartInfo(path string, pi *segV2Part, size uint64, version int) error {
	at := func(format string, args ...any) error {
		return corruptf(path, "partition (%d,%d): %s", pi.key.agent, pi.key.day, fmt.Sprintf(format, args...))
	}
	if pi.nEvents <= 0 {
		return at("implausible event count %d", pi.nEvents)
	}
	if want := (pi.nEvents + segV2BlockRows - 1) / segV2BlockRows; pi.nBlocks != want {
		return at("block count %d, want %d for %d events", pi.nBlocks, want, pi.nEvents)
	}
	if pi.nDict <= 0 || pi.nDict > 2*pi.nEvents {
		return at("implausible dictionary size %d for %d events", pi.nDict, pi.nEvents)
	}
	if pi.minStart > pi.maxStart {
		return at("time range inverted")
	}
	zoneBytes := uint64(segV2ZoneBytes)
	if version >= 3 {
		zoneBytes = segV3ZoneBytes
	}
	wantMeta := uint64(pi.nDict)*8 + uint64(pi.nBlocks)*zoneBytes + uint64(2*pi.nDict+1)*4 + uint64(2*pi.nEvents)*4
	if pi.metaLen != wantMeta {
		return at("meta length %d, want %d", pi.metaLen, wantMeta)
	}
	if version >= 3 {
		// Compressed blocks are variable-length: bound the region instead of
		// equating it. Each block stores at least its flag byte, at most the
		// flag plus an encoding that never exceeds segV3MaxRowEnc per row.
		maxData := uint64(pi.nEvents)*segV3MaxRowEnc + uint64(pi.nBlocks)
		if pi.dataLen < uint64(pi.nBlocks) || pi.dataLen > maxData {
			return at("data length %d outside [%d,%d]", pi.dataLen, pi.nBlocks, maxData)
		}
	} else if wantData := uint64(pi.nEvents) * segV2RowBytes; pi.dataLen != wantData {
		return at("data length %d, want %d", pi.dataLen, wantData)
	}
	if pi.metaOff > size || pi.metaLen > size-pi.metaOff {
		return at("meta region [%d,+%d) exceeds file size %d", pi.metaOff, pi.metaLen, size)
	}
	if pi.dataOff > size || pi.dataLen > size-pi.dataOff {
		return at("data region [%d,+%d) exceeds file size %d", pi.dataOff, pi.dataLen, size)
	}
	return nil
}

// loadMeta decodes (once) a partition's dictionary, zone maps and posting
// lists from the mapped file, verifying the region checksum and every
// structural invariant the scan path will rely on.
func (sf *segmentV2File) loadMeta(pi *segV2Part) (*segV2Meta, error) {
	pi.metaOnce.Do(func() {
		m, err := sf.decodeMeta(pi)
		if err != nil {
			pi.metaErr = err
			return
		}
		pi.meta.Store(m)
	})
	return pi.meta.Load(), pi.metaErr
}

func (sf *segmentV2File) decodeMeta(pi *segV2Part) (*segV2Meta, error) {
	if err := sf.ensureMapped(); err != nil {
		return nil, err
	}
	at := func(format string, args ...any) error {
		return corruptf(sf.path, "partition (%d,%d): %s", pi.key.agent, pi.key.day, fmt.Sprintf(format, args...))
	}
	if pi.metaOff+pi.metaLen > uint64(len(sf.data)) {
		return nil, at("meta region exceeds mapped size %d", len(sf.data))
	}
	raw := sf.data[pi.metaOff : pi.metaOff+pi.metaLen]
	if crc32.Checksum(raw, castagnoli) != pi.metaCRC {
		return nil, at("meta checksum mismatch")
	}
	m := &segV2Meta{
		dict:   make([]types.EntityID, pi.nDict),
		zones:  make([]segV2Zone, pi.nBlocks),
		bounds: make([]uint32, 2*pi.nDict+1),
		posts:  make([]uint32, 2*pi.nEvents),
	}
	off := 0
	for i := range m.dict {
		m.dict[i] = types.EntityID(binary.LittleEndian.Uint64(raw[off:]))
		if i > 0 && m.dict[i] <= m.dict[i-1] {
			return nil, at("dictionary not strictly ascending at slot %d", i)
		}
		off += 8
	}
	total := 0
	nextDataOff := uint64(0)
	for i := range m.zones {
		z := &m.zones[i]
		z.count = int(binary.LittleEndian.Uint32(raw[off:]))
		z.crc = binary.LittleEndian.Uint32(raw[off+4:])
		z.minStart = int64(binary.LittleEndian.Uint64(raw[off+8:]))
		z.maxStart = int64(binary.LittleEndian.Uint64(raw[off+16:]))
		z.ops = types.OpSet(binary.LittleEndian.Uint16(raw[off+24:]))
		z.minSubj = binary.LittleEndian.Uint32(raw[off+26:])
		z.maxSubj = binary.LittleEndian.Uint32(raw[off+30:])
		z.minObj = binary.LittleEndian.Uint32(raw[off+34:])
		z.maxObj = binary.LittleEndian.Uint32(raw[off+38:])
		off += segV2ZoneBytes
		if sf.version >= 3 {
			z.subjTri = binary.LittleEndian.Uint64(raw[off:])
			z.objTri = binary.LittleEndian.Uint64(raw[off+8:])
			z.dataOff = binary.LittleEndian.Uint64(raw[off+16:])
			z.dataLen = binary.LittleEndian.Uint32(raw[off+24:])
			z.rawLen = binary.LittleEndian.Uint32(raw[off+28:])
			off += segV3ZoneBytes - segV2ZoneBytes
		}
		if z.count <= 0 || z.count > segV2BlockRows {
			return nil, at("block %d: implausible row count %d", i, z.count)
		}
		if z.minStart > z.maxStart {
			return nil, at("block %d: zone time range inverted", i)
		}
		if i > 0 && z.minStart < m.zones[i-1].maxStart {
			return nil, at("block %d: zone time range overlaps previous block", i)
		}
		if z.minSubj > z.maxSubj || int(z.maxSubj) >= pi.nDict ||
			z.minObj > z.maxObj || int(z.maxObj) >= pi.nDict {
			return nil, at("block %d: zone dictionary range out of bounds", i)
		}
		if sf.version >= 3 {
			// Stored blocks must tile the data region exactly; the raw
			// (decompressed) length is bounded per row so a corrupt zone can
			// never request an unbounded allocation.
			if z.dataOff != nextDataOff {
				return nil, at("block %d: data offset %d, want %d", i, z.dataOff, nextDataOff)
			}
			if z.dataLen < 1 || uint64(z.dataLen) > pi.dataLen-z.dataOff {
				return nil, at("block %d: stored length %d exceeds data region", i, z.dataLen)
			}
			if z.rawLen < 1 || int(z.rawLen) > z.count*segV3MaxRowEnc {
				return nil, at("block %d: implausible raw length %d for %d rows", i, z.rawLen, z.count)
			}
			if z.dataLen > z.rawLen+1 {
				return nil, at("block %d: stored length %d exceeds raw length %d", i, z.dataLen, z.rawLen)
			}
			nextDataOff += uint64(z.dataLen)
		}
		total += z.count
	}
	if total != pi.nEvents {
		return nil, at("zone row counts sum to %d, want %d", total, pi.nEvents)
	}
	if sf.version >= 3 && nextDataOff != pi.dataLen {
		return nil, at("blocks cover %d data bytes, want %d", nextDataOff, pi.dataLen)
	}
	if m.zones[0].minStart != pi.minStart || m.zones[len(m.zones)-1].maxStart != pi.maxStart {
		return nil, at("zone time ranges disagree with directory")
	}
	for i := range m.bounds {
		m.bounds[i] = binary.LittleEndian.Uint32(raw[off:])
		off += 4
		if i > 0 && m.bounds[i] < m.bounds[i-1] {
			return nil, at("posting bounds not monotone at %d", i)
		}
	}
	if m.bounds[0] != 0 || int(m.bounds[len(m.bounds)-1]) != 2*pi.nEvents {
		return nil, at("posting bounds do not cover the position array")
	}
	for i := range m.posts {
		m.posts[i] = binary.LittleEndian.Uint32(raw[off:])
		off += 4
		if int(m.posts[i]) >= pi.nEvents {
			return nil, at("posting position %d out of range", m.posts[i])
		}
	}
	// Each individual posting list must be ascending — the scan path merges
	// them positionally.
	for i := 1; i < len(m.bounds); i++ {
		list := m.posts[m.bounds[i-1]:m.bounds[i]]
		for j := 1; j < len(list); j++ {
			if list[j] <= list[j-1] {
				return nil, at("posting list %d not ascending", i-1)
			}
		}
	}
	return m, nil
}

// blockCols is a decoded column block, reused across blocks by one scan.
// Starts are absolute (delta already applied); subject/object are
// dictionary indexes; agents is the partition's constant agent id so the
// block satisfies pred.ColumnSource for every numeric event attribute.
type blockCols struct {
	n       int
	starts  []int64
	ends    []int64
	ids     []int64
	seqs    []int64
	amounts []int64
	fails   []int64
	agents  []int64
	subj    []uint32
	obj     []uint32
	ops     []types.Op

	// v3 decode scratch: decompression target and bit-unpack buffer, reused
	// across blocks like the columns themselves.
	enc         []byte
	packScratch []uint32
}

func (c *blockCols) reset(n int, agent int) {
	if cap(c.starts) < n {
		c.starts = make([]int64, n)
		c.ends = make([]int64, n)
		c.ids = make([]int64, n)
		c.seqs = make([]int64, n)
		c.amounts = make([]int64, n)
		c.fails = make([]int64, n)
		c.agents = make([]int64, n)
		c.subj = make([]uint32, n)
		c.obj = make([]uint32, n)
		c.ops = make([]types.Op, n)
	}
	c.n = n
	c.starts = c.starts[:n]
	c.ends = c.ends[:n]
	c.ids = c.ids[:n]
	c.seqs = c.seqs[:n]
	c.amounts = c.amounts[:n]
	c.fails = c.fails[:n]
	c.agents = c.agents[:n]
	c.subj = c.subj[:n]
	c.obj = c.obj[:n]
	c.ops = c.ops[:n]
	for i := 0; i < n; i++ {
		c.agents[i] = int64(agent)
	}
}

// NumRows implements pred.ColumnSource.
func (c *blockCols) NumRows() int { return c.n }

// Int64Column implements pred.ColumnSource.
func (c *blockCols) Int64Column(attr string) ([]int64, bool) {
	switch attr {
	case types.EvtAttrAmount:
		return c.amounts, true
	case types.EvtAttrFailCode:
		return c.fails, true
	case types.EvtAttrSeq:
		return c.seqs, true
	case types.EvtAttrStart:
		return c.starts, true
	case types.EvtAttrEnd:
		return c.ends, true
	case types.AttrAgentID:
		return c.agents, true
	case types.AttrID:
		return c.ids, true
	}
	return nil, false
}

// OpColumn implements pred.ColumnSource.
func (c *blockCols) OpColumn() ([]types.Op, bool) { return c.ops, true }

// event materializes row i into ev. The caller resolves subject/object
// through the partition dictionary.
func (c *blockCols) event(i int, m *segV2Meta, ev *types.Event) {
	ev.ID = types.EventID(c.ids[i])
	ev.AgentID = int(c.agents[i])
	ev.Subject = m.dict[c.subj[i]]
	ev.Object = m.dict[c.obj[i]]
	ev.Op = c.ops[i]
	ev.Start = c.starts[i]
	ev.End = c.ends[i]
	ev.Seq = uint64(c.seqs[i])
	ev.Amount = c.amounts[i]
	ev.FailCode = int(c.fails[i])
}

// blockRange returns the partition-relative row range [lo, hi) of block b.
func blockRange(m *segV2Meta, b int) (int, int) {
	lo := 0
	for i := 0; i < b; i++ {
		lo += m.zones[i].count
	}
	return lo, lo + m.zones[b].count
}

// decodeBlock verifies and decodes block b of a partition into cols. It
// checks everything the zone map promised about the block — checksum,
// delta monotonicity within the zone's time range, dictionary indexes in
// the advertised range, valid operation codes in the advertised set — so a
// zone map inconsistent with its block is a typed corruption error, not a
// silently wrong prune.
func (sf *segmentV2File) decodeBlock(pi *segV2Part, m *segV2Meta, b int, rowBase int, cols *blockCols) error {
	if err := sf.ensureMapped(); err != nil {
		return err
	}
	if sf.version >= 3 {
		return sf.decodeBlockV3(pi, m, b, cols)
	}
	at := func(format string, args ...any) error {
		return corruptf(sf.path, "partition (%d,%d) block %d: %s", pi.key.agent, pi.key.day, b, fmt.Sprintf(format, args...))
	}
	z := &m.zones[b]
	n := z.count
	off := pi.dataOff + uint64(rowBase)*segV2RowBytes
	length := uint64(n) * segV2RowBytes
	if off+length > uint64(len(sf.data)) {
		return at("exceeds mapped size %d", len(sf.data))
	}
	raw := sf.data[off : off+length]
	if crc32.Checksum(raw, castagnoli) != z.crc {
		return at("checksum mismatch")
	}
	cols.reset(n, pi.key.agent)
	p := 0
	prev := int64(-1)
	span := z.maxStart - z.minStart
	for i := 0; i < n; i++ {
		delta := int64(binary.LittleEndian.Uint32(raw[p:]))
		p += 4
		if delta > span {
			return at("row %d: start outside zone time range", i)
		}
		start := z.minStart + delta
		if start < prev {
			return at("row %d: starts not sorted", i)
		}
		prev = start
		cols.starts[i] = start
	}
	for i := 0; i < n; i++ {
		cols.ends[i] = int64(binary.LittleEndian.Uint64(raw[p:]))
		p += 8
	}
	for i := 0; i < n; i++ {
		cols.ids[i] = int64(binary.LittleEndian.Uint64(raw[p:]))
		p += 8
	}
	for i := 0; i < n; i++ {
		cols.seqs[i] = int64(binary.LittleEndian.Uint64(raw[p:]))
		p += 8
	}
	for i := 0; i < n; i++ {
		cols.amounts[i] = int64(binary.LittleEndian.Uint64(raw[p:]))
		p += 8
	}
	for i := 0; i < n; i++ {
		cols.fails[i] = int64(binary.LittleEndian.Uint64(raw[p:]))
		p += 8
	}
	for i := 0; i < n; i++ {
		s := binary.LittleEndian.Uint32(raw[p:])
		p += 4
		if s < z.minSubj || s > z.maxSubj {
			return at("row %d: out-of-range dictionary index %d", i, s)
		}
		cols.subj[i] = s
	}
	for i := 0; i < n; i++ {
		o := binary.LittleEndian.Uint32(raw[p:])
		p += 4
		if o < z.minObj || o > z.maxObj {
			return at("row %d: out-of-range dictionary index %d", i, o)
		}
		cols.obj[i] = o
	}
	for i := 0; i < n; i++ {
		op := types.Op(raw[p])
		p++
		if !z.ops.Contains(op) {
			return at("row %d: operation %d outside zone op set", i, op)
		}
		cols.ops[i] = op
	}
	return nil
}

// loadEntities reads, verifies and decodes the entity block via the file
// handle (called at open, before any mapping exists).
func (sf *segmentV2File) loadEntities(f *os.File) ([]types.Entity, error) {
	return readEntityBlock(sf.path, f, sf.entityOff, sf.entityLen, sf.entityCRC, sf.nEntities)
}

// events returns the total event count across the segment's partitions.
func (sf *segmentV2File) events() int {
	n := 0
	for i := range sf.parts {
		n += sf.parts[i].nEvents
	}
	return n
}
