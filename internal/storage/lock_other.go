//go:build !unix

package storage

// lockDir is a no-op where flock is unavailable; single-writer discipline
// is then the operator's responsibility.
func lockDir(dir string) (func(), error) {
	return func() {}, nil
}
