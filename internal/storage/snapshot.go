package storage

import (
	"context"
	"sort"
	"sync"

	"aiql/internal/obs"
	"aiql/internal/pred"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// partView is one partition as frozen into a snapshot: the event prefix
// visible at acquisition time plus the posting lists as they stood then.
// The referenced arrays are shared with the live store under the
// copy-on-write rules documented on Store — the store only ever appends
// past the captured lengths or replaces whole maps/arrays, so a view is
// immutable without holding any lock.
type partView struct {
	key       partKey
	events    []types.Event
	bySubject map[types.EntityID][]int32
	byObject  map[types.EntityID][]int32

	// host is the live partition the view was captured from — used only to
	// reach its columnar-shadow slot (hotcol.go), which carries its own
	// synchronization; everything else a scan needs is captured above.
	host *partition

	// cold is the partition's sealed columnar prefix as of acquisition:
	// every cold row is strictly older than every hot event above. The runs
	// are immutable; a concurrent thaw only appends to the hot array (past
	// the captured prefix) and clears the live partition's cold pointer —
	// this captured view stays self-consistent either way.
	cold    []*coldRun
	coldN   int
	coldErr error
}

// timeRange binary-searches the sorted visible prefix for the window bounds.
func (p *partView) timeRange(w timeutil.Window) (lo, hi int) {
	if w.Unbounded() {
		return 0, len(p.events)
	}
	lo = sort.Search(len(p.events), func(i int) bool { return p.events[i].Start >= w.From })
	hi = sort.Search(len(p.events), func(i int) bool { return p.events[i].Start >= w.To })
	return lo, hi
}

// postingsInRange gathers posting-list positions for the candidate set,
// clipped to [lo, hi) and returned sorted so results keep temporal order.
func (p *partView) postingsInRange(subjCand, objCand map[types.EntityID]struct{}, fromSubject bool, lo, hi int) []int32 {
	var cand map[types.EntityID]struct{}
	var lists map[types.EntityID][]int32
	if fromSubject {
		cand, lists = subjCand, p.bySubject
	} else {
		cand, lists = objCand, p.byObject
	}
	var positions []int32
	for id := range cand {
		for _, pos := range lists[id] {
			if int(pos) >= lo && int(pos) < hi {
				positions = append(positions, pos)
			}
		}
	}
	sort.Slice(positions, func(i, j int) bool { return positions[i] < positions[j] })
	return positions
}

// Snapshot is an immutable, generation-stamped view of a Store. Acquisition
// is O(partitions): it copies the partition list and captures slice/map
// references; no event data moves. Queries against a snapshot see exactly
// the events present at acquisition, regardless of concurrent Ingest,
// AddEvent or AddEntity calls — the store's mutation path copies shared
// structures before changing them (see the COW rules in storage.go).
//
// A Snapshot must be Closed when no longer needed: while any snapshot is
// live the store pays copy-on-write costs for mutations; Close lets the
// store resume mutating in place. Reading a snapshot after Close is
// undefined. Close is idempotent. A Snapshot is safe for concurrent use by
// multiple readers (each Scan returns its own single-consumer cursor).
type Snapshot struct {
	store      *Store
	opts       Options
	gen        uint64
	eventCount int

	entities  map[types.EntityID]*types.Entity
	byType    map[types.EntityType][]types.EntityID
	entityIdx map[entityKey][]types.EntityID
	parts     []*partView

	closeOnce sync.Once
}

// Snapshot freezes the store's current contents into an immutable view.
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Out-of-order single-event appends defer their re-sort to here, so a
	// batch of AddEvents pays for one sort, not one per event.
	s.sortDirtyLocked()
	snap := &Snapshot{
		store:      s,
		opts:       s.opts,
		gen:        s.generation,
		eventCount: s.eventCount,
		entities:   s.entities,
		byType:     s.byType,
		entityIdx:  s.entityIdx,
		parts:      make([]*partView, len(s.partList)),
	}
	for i, p := range s.partList {
		p.mapsShared = true
		p.eventsShared = true
		pv := &partView{
			key:       p.key,
			events:    p.events,
			bySubject: p.bySubject,
			byObject:  p.byObject,
			host:      p,
		}
		if p.cold != nil {
			pv.cold = p.cold.runs
			pv.coldN = p.cold.n
			pv.coldErr = p.cold.bad
		}
		snap.parts[i] = pv
	}
	s.metaShared = true
	s.liveSnaps++
	return snap
}

// Close releases the snapshot, allowing the store to stop copy-on-write
// for mutations once no snapshots remain live.
func (sn *Snapshot) Close() {
	if sn == nil {
		return
	}
	sn.closeOnce.Do(func() {
		sn.store.mu.Lock()
		sn.store.liveSnaps--
		sn.store.mu.Unlock()
	})
}

// Generation returns the store generation the snapshot was taken at.
// Results computed from this snapshot are valid cache entries for exactly
// this generation, no matter what the store ingests meanwhile.
func (sn *Snapshot) Generation() uint64 { return sn.gen }

// EventCount returns the number of events visible in the snapshot.
func (sn *Snapshot) EventCount() int { return sn.eventCount }

// PartitionCount returns the number of partitions visible in the snapshot.
func (sn *Snapshot) PartitionCount() int { return len(sn.parts) }

// Entity returns the entity with the given id as of the snapshot, or nil.
func (sn *Snapshot) Entity(id types.EntityID) *types.Entity { return sn.entities[id] }

// Run drains a full scan — the materializing convenience mirror of
// Store.Run for callers already holding a snapshot. Canceling ctx aborts
// the scan between batches.
func (sn *Snapshot) Run(ctx context.Context, q *DataQuery) []Match {
	c := sn.Scan(ctx, q)
	defer c.Close()
	return Drain(c)
}

// Scan executes a data query against the snapshot, returning a cursor fed
// by parallel partition producers. Partition pruning and candidate-set
// resolution happen up front (cheap index work); the per-partition scans
// run on a bounded worker pool and stream matches through bounded channels,
// so no more than O(workers × batch) matches are in flight beyond what the
// consumer has accepted. Matches arrive in the store's canonical order —
// partitions ascending by (day, agent), temporal within a partition — the
// same order the old materializing path produced.
//
// Cancel ctx (or Close the cursor) to stop the producers early; a
// q.Limit > 0 stops them as soon as enough matches were handed out.
func (sn *Snapshot) Scan(ctx context.Context, q *DataQuery) Cursor {
	return sn.scan(ctx, q, nil)
}

func (sn *Snapshot) scan(ctx context.Context, q *DataQuery, onClose func()) Cursor {
	if err := ctx.Err(); err != nil {
		if onClose != nil {
			onClose()
		}
		return NewErrCursor(err)
	}

	// Count the cursor as live until its close hook runs. Every cursor
	// constructed below runs its onClose exactly once (guarded by each
	// cursor's own done/once state), on exhaustion, Close, or cancel alike.
	sn.store.liveCursors.Add(1)
	inner := onClose
	onClose = func() {
		sn.store.liveCursors.Add(-1)
		if inner != nil {
			inner()
		}
	}

	// When the request carries a trace span, fold this scan's block traffic
	// into it as the delta of the store-wide counters over the cursor's
	// lifetime. The delta is approximate when scans run concurrently (the
	// counters are store-global), which is the documented trade for keeping
	// the per-block hot path free of per-scan bookkeeping.
	var span *obs.Span
	if !sn.opts.DisableScanSpans {
		span = obs.SpanFromContext(ctx)
	}
	if span != nil {
		before := sn.store.ScanStats()
		prev := onClose
		onClose = func() {
			after := sn.store.ScanStats()
			span.Add("blocks_considered", after.BlocksConsidered-before.BlocksConsidered)
			span.Add("blocks_skipped", after.BlocksSkipped-before.BlocksSkipped)
			span.Add("blocks_decoded", after.BlocksDecoded-before.BlocksDecoded)
			span.Add("attr_zone_skips", after.AttrZoneSkips-before.AttrZoneSkips)
			span.Add("hot_batches", after.HotBatches-before.HotBatches)
			span.Add("dict_verdict_hits", after.DictVerdictHits-before.DictVerdictHits)
			span.Add("thaws", after.Thaws-before.Thaws)
			prev()
		}
	}

	var subjCand, objCand map[types.EntityID]struct{}
	if !q.ForceScan {
		subjCand = sn.candidateSet(q.SubjType, q.SubjPred, q.SubjAllowed)
		objCand = sn.candidateSet(q.ObjType, q.ObjPred, q.ObjAllowed)
	} else {
		// Even under ForceScan the scheduler-imposed allowed sets must be
		// honoured for correctness; only the index shortcuts are skipped.
		subjCand, objCand = q.SubjAllowed, q.ObjAllowed
	}
	if (subjCand != nil && len(subjCand) == 0) || (objCand != nil && len(objCand) == 0) {
		return newSliceCursor(nil, onClose)
	}

	parts := sn.selectPartitions(q)
	span.Add("partitions_scanned", int64(len(parts)))
	span.Add("partitions_pruned", int64(len(sn.parts)-len(parts)))
	if len(parts) == 0 {
		return newSliceCursor(nil, onClose)
	}

	// Partition pruning normally enforces the spatial constraint; when it
	// is disabled (ablation) the scan must filter agents itself.
	var agentSet map[int]struct{}
	if sn.opts.DisablePruning && len(q.Agents) > 0 {
		agentSet = make(map[int]struct{}, len(q.Agents))
		for _, a := range q.Agents {
			agentSet[a] = struct{}{}
		}
	}

	// A single surviving partition needs no producer pool — one async
	// goroutine scans it (Scan still returns immediately, so composed
	// siblings like per-day sub-scans and MPP segments stay parallel) and
	// materializing one partition's matches is what the pre-cursor store
	// did for every query. Limit still caps the scan.
	if len(parts) == 1 {
		p := parts[0]
		return newAsyncErrCursor(ctx, func(cctx context.Context) ([]Match, error) {
			var out []Match
			err := sn.scanPartition(cctx, p, q, subjCand, objCand, agentSet, func(m Match) bool {
				out = append(out, m)
				return q.Limit == 0 || len(out) < q.Limit
			})
			return out, err
		}, onClose)
	}

	cctx, cancel := context.WithCancel(ctx)
	c := &scanCursor{
		parent:  ctx,
		cancel:  cancel,
		chans:   make([]chan scanBatch, len(parts)),
		limit:   q.Limit,
		onClose: onClose,
	}
	for i := range c.chans {
		c.chans[i] = make(chan scanBatch, 2)
	}

	workers := sn.opts.workers()
	if workers > len(parts) {
		workers = len(parts)
	}
	if workers < 1 {
		workers = 1
	}
	// Partitions are handed to workers in order, so the in-flight window is
	// always the next `workers` partitions the consumer will read — the
	// consumer drains the oldest in-flight partition while younger ones
	// compute, and backpressure on the younger channels cannot starve it.
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			for i := range idx {
				sn.producePartition(cctx, parts[i], q, subjCand, objCand, agentSet, c.chans[i])
			}
		}()
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer close(idx)
		for i := range parts {
			select {
			case idx <- i:
			case <-cctx.Done():
				return
			}
		}
	}()
	return c
}

// scanBatch is one hand-off from a partition producer to the consuming
// cursor: a batch of matches, or a terminal scan error.
type scanBatch struct {
	ms  []Match
	err error
}

// producePartition scans one partition and streams its matches, batched, to
// out. It always closes out, and aborts between batches (and every 1024
// scanned rows) when ctx is canceled. A scan error (cold-segment
// corruption) is sent as the final batch so the consumer fails the whole
// cursor rather than passing off a partial result as complete.
func (sn *Snapshot) producePartition(ctx context.Context, p *partView, q *DataQuery, subjCand, objCand map[types.EntityID]struct{}, agentSet map[int]struct{}, out chan<- scanBatch) {
	defer close(out)
	batch := make([]Match, 0, ScanBatchSize)
	flush := func() bool {
		if len(batch) == 0 {
			return true
		}
		select {
		case out <- scanBatch{ms: batch}:
			batch = make([]Match, 0, ScanBatchSize)
			return true
		case <-ctx.Done():
			return false
		}
	}
	emitted := 0
	emit := func(m Match) bool {
		batch = append(batch, m)
		emitted++
		// The consumer enforces the exact global limit; producers only cap
		// their own partition (a correct upper bound on what any ordered
		// prefix can need from it).
		if q.Limit > 0 && emitted >= q.Limit {
			flush()
			return false
		}
		if len(batch) == ScanBatchSize {
			return flush()
		}
		return true
	}
	err := sn.scanPartition(ctx, p, q, subjCand, objCand, agentSet, emit)
	if err != nil {
		select {
		case out <- scanBatch{err: err}:
		case <-ctx.Done():
		}
		return
	}
	flush()
}

// postingThreshold is the candidate-set size below which walking posting
// lists beats scanning the time range, for hot and cold partitions alike.
const postingThreshold = 128

// scanPartition matches a data query against one partition view, invoking
// emit for every match in temporal order; emit returning false stops the
// scan. The partition's cold (columnar) prefix streams first — its rows are
// strictly older than every hot event — then the hot range. When candidate
// entity sets are small, posting lists replace the range scans on both
// sides. The returned error is always cold-segment corruption; a canceled
// context is a silent stop (the cursor layer reports it).
func (sn *Snapshot) scanPartition(ctx context.Context, p *partView, q *DataQuery, subjCand, objCand map[types.EntityID]struct{}, agentSet map[int]struct{}, emit func(Match) bool) error {
	if agentSet != nil {
		if _, ok := agentSet[p.key.agent]; !ok {
			return nil
		}
	}

	if len(p.cold) > 0 {
		if p.coldErr != nil {
			// A failed thaw already proved this partition's cold half
			// unreadable; fail closed instead of returning hot-only rows.
			return p.coldErr
		}
		stopped := false
		wrap := func(m Match) bool {
			if !emit(m) {
				stopped = true
				return false
			}
			return true
		}
		if err := sn.scanCold(ctx, p, q, subjCand, objCand, wrap); err != nil {
			return err
		}
		if stopped || ctx.Err() != nil {
			return nil
		}
	}

	lo, hi := p.timeRange(q.Window)
	if lo >= hi {
		return nil
	}

	// Posting-list strategy: pick the smaller candidate set if one is
	// small enough that walking its postings beats scanning the range.
	usePostings, fromSubject := false, false
	if !sn.opts.DisableIndexes && !q.ForceScan {
		switch {
		case subjCand != nil && len(subjCand) <= postingThreshold &&
			(objCand == nil || len(subjCand) <= len(objCand)):
			usePostings, fromSubject = true, true
		case objCand != nil && len(objCand) <= postingThreshold:
			usePostings, fromSubject = true, false
		}
	}

	// Large enough hot ranges go through the partition's columnar shadow:
	// batch kernel plus dictionary verdict bitmaps instead of per-event
	// interface calls. The posting path already touches only candidate rows,
	// so it stays as is.
	if !q.ForceScan && !sn.opts.DisableHotColumnar && !usePostings && hi-lo >= hotShadowMinRows {
		if sn.scanHot(ctx, p, q, subjCand, objCand, lo, hi, emit) {
			return nil
		}
	}

	check := func(pos int) (Match, bool) {
		ev := &p.events[pos]
		if !q.Ops.Contains(ev.Op) {
			return Match{}, false
		}
		subj := sn.entities[ev.Subject]
		obj := sn.entities[ev.Object]
		if subj == nil || obj == nil {
			return Match{}, false
		}
		if q.SubjType != types.EntityInvalid && subj.Type != q.SubjType {
			return Match{}, false
		}
		if q.ObjType != types.EntityInvalid && obj.Type != q.ObjType {
			return Match{}, false
		}
		if subjCand != nil {
			if _, ok := subjCand[ev.Subject]; !ok {
				return Match{}, false
			}
		} else if q.SubjPred != nil && !q.SubjPred.Eval(subj) {
			return Match{}, false
		}
		if objCand != nil {
			if _, ok := objCand[ev.Object]; !ok {
				return Match{}, false
			}
		} else if q.ObjPred != nil && !q.ObjPred.Eval(obj) {
			return Match{}, false
		}
		if q.EvtPred != nil && !q.EvtPred.Eval(ev) {
			return Match{}, false
		}
		return Match{Event: ev, Subj: subj, Obj: obj}, true
	}

	if usePostings {
		positions := p.postingsInRange(subjCand, objCand, fromSubject, lo, hi)
		for k, pos := range positions {
			if k&1023 == 0 && ctx.Err() != nil {
				return nil
			}
			if m, ok := check(int(pos)); ok && !emit(m) {
				return nil
			}
		}
		return nil
	}
	for pos := lo; pos < hi; pos++ {
		if (pos-lo)&1023 == 0 && ctx.Err() != nil {
			return nil
		}
		if m, ok := check(pos); ok && !emit(m) {
			return nil
		}
	}
	return nil
}

// candidateSet resolves the set of entity ids that can satisfy the
// pattern's entity constraints, using the hash indexes where an exact-match
// key exists and falling back to a typed entity scan for wildcard patterns.
// It returns nil when the set cannot be bounded more cheaply than checking
// the predicate per event during the scan.
func (sn *Snapshot) candidateSet(t types.EntityType, p pred.Pred, allowed map[types.EntityID]struct{}) map[types.EntityID]struct{} {
	if allowed != nil {
		// Intersect the scheduler-imposed set with the predicate.
		out := make(map[types.EntityID]struct{}, len(allowed))
		for id := range allowed {
			e := sn.entities[id]
			if e == nil || (t != types.EntityInvalid && e.Type != t) {
				continue
			}
			if p == nil || p.Eval(e) {
				out[id] = struct{}{}
			}
		}
		return out
	}
	if p == nil || p.ConstraintCount() == 0 {
		return nil // unconstrained: cheapest to check type during scan
	}
	if !sn.opts.DisableIndexes {
		if set, ok := sn.probeIndex(t, p); ok {
			return set
		}
	}
	// Wildcard or non-indexed attribute: evaluate the predicate over the
	// typed entity table once, which is far smaller than the event log.
	out := make(map[types.EntityID]struct{})
	for _, id := range sn.byType[t] {
		if p.Eval(sn.entities[id]) {
			out[id] = struct{}{}
		}
	}
	return out
}

// probeIndex serves an exact-equality predicate from the entity hash index.
// The candidate set from the index is a superset; the full predicate is
// re-checked on each hit so composite predicates stay correct.
func (sn *Snapshot) probeIndex(t types.EntityType, p pred.Pred) (map[types.EntityID]struct{}, bool) {
	keys := pred.IndexableKeys(p)
	for _, k := range keys {
		if !attrIndexed(t, k.Attr) {
			continue
		}
		out := make(map[types.EntityID]struct{})
		for _, val := range k.Vals {
			for _, id := range sn.entityIdx[entityKey{typ: t, attr: k.Attr, val: val}] {
				if p.Eval(sn.entities[id]) {
					out[id] = struct{}{}
				}
			}
		}
		return out, true
	}
	return nil, false
}

// selectPartitions applies spatial and temporal partition pruning over the
// snapshot's ordered partition views.
func (sn *Snapshot) selectPartitions(q *DataQuery) []*partView {
	// An empty window (To <= From while bounded, including the To == 0
	// "half-built" form some wire queries carry) matches no instant; probing
	// DayIndex(To-1) for it would fabricate a day range ending at day -1.
	if q.Window.Empty() {
		return nil
	}
	if sn.opts.DisablePruning {
		return sn.parts
	}
	var agentSet map[int]struct{}
	if len(q.Agents) > 0 {
		agentSet = make(map[int]struct{}, len(q.Agents))
		for _, a := range q.Agents {
			agentSet[a] = struct{}{}
		}
	}
	// dayBounded is an explicit flag, not a sentinel day value: with floor
	// division, day indexes are negative for pre-epoch data, so no integer
	// can double as "unbounded".
	dayBounded := !q.Window.Unbounded()
	var minDay, maxDay int
	if dayBounded {
		minDay = timeutil.DayIndex(q.Window.From)
		maxDay = timeutil.DayIndex(q.Window.To - 1)
	}
	var out []*partView
	for _, p := range sn.parts {
		if agentSet != nil {
			if _, ok := agentSet[p.key.agent]; !ok {
				continue
			}
		}
		if dayBounded && (p.key.day < minDay || p.key.day > maxDay) {
			continue
		}
		out = append(out, p)
	}
	return out
}

// scanCursor is the consumer end of a snapshot scan: it walks the selected
// partitions in order, draining each partition's channel before moving to
// the next, so the stream order matches the materialized order exactly.
type scanCursor struct {
	parent  context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	chans   []chan scanBatch
	cur     int
	pending []Match
	limit   int
	emitted int
	err     error
	done    bool
	onClose func()
}

func (c *scanCursor) Next(batch []Match) int {
	if c.done || len(batch) == 0 {
		return 0
	}
	// A canceled scan reports its error even if buffered batches remain —
	// partial results after cancellation would be mistaken for complete.
	if err := c.parent.Err(); err != nil {
		c.finish(err)
		return 0
	}
	n := 0
	for n < len(batch) {
		if c.limit > 0 && c.emitted >= c.limit {
			break
		}
		if len(c.pending) > 0 {
			k := len(batch) - n
			if len(c.pending) < k {
				k = len(c.pending)
			}
			if c.limit > 0 && c.limit-c.emitted < k {
				k = c.limit - c.emitted
			}
			copy(batch[n:n+k], c.pending[:k])
			c.pending = c.pending[k:]
			n += k
			c.emitted += k
			continue
		}
		if c.cur >= len(c.chans) {
			break
		}
		select {
		case b, ok := <-c.chans[c.cur]:
			if !ok {
				c.cur++
				continue
			}
			if b.err != nil {
				// A failed partition fails the whole scan: matches already
				// handed out are a prefix, but nothing after this point may
				// pass for a complete result.
				c.finish(b.err)
				return n
			}
			c.pending = b.ms
		case <-c.parent.Done():
			c.finish(c.parent.Err())
			return n
		}
	}
	if n == 0 {
		c.finish(nil)
	}
	return n
}

func (c *scanCursor) Err() error { return c.err }

func (c *scanCursor) Close() { c.finish(nil) }

// finish tears the scan down: cancel producers, wait for them to exit (they
// observe the cancellation at batch boundaries), then release the backing
// snapshot. Waiting before the release is what makes Close a safe point to
// drop the snapshot's copy-on-write protection.
func (c *scanCursor) finish(err error) {
	if c.done {
		return
	}
	c.done = true
	if err != nil && c.err == nil {
		c.err = err
	}
	c.cancel()
	c.wg.Wait()
	if c.onClose != nil {
		c.onClose()
		c.onClose = nil
	}
}
