package storage

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"aiql/internal/pred"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// buildFixture creates a small deterministic store: 3 agents x 2 days,
// each with one process writing files and one network talker.
func buildFixture(opts Options) (*Store, *types.Dataset) {
	var entities []types.Entity
	var events []types.Event
	id := types.EntityID(0)
	evID := types.EventID(0)
	nextEnt := func(t types.EntityType, agent int, attrs map[string]string) types.EntityID {
		id++
		entities = append(entities, types.Entity{ID: id, Type: t, AgentID: agent, Attrs: attrs})
		return id
	}
	for agent := 1; agent <= 3; agent++ {
		proc := nextEnt(types.EntityProcess, agent, map[string]string{types.AttrExeName: "/bin/worker"})
		sh := nextEnt(types.EntityProcess, agent, map[string]string{types.AttrExeName: "/bin/sh"})
		file := nextEnt(types.EntityFile, agent, map[string]string{types.AttrName: "/data/log.txt"})
		conn := nextEnt(types.EntityNetwork, agent, map[string]string{types.AttrDstIP: "10.0.0.9", types.AttrDstPort: "443"})
		seq := uint64(0)
		for day := 0; day < 2; day++ {
			base := int64(day) * timeutil.DayMillis
			for k := int64(0); k < 50; k++ {
				seq++
				evID++
				events = append(events, types.Event{
					ID: evID, AgentID: agent, Subject: proc, Object: file,
					Op: types.OpWrite, Start: base + k*1000, Seq: seq, Amount: 100 + k,
				})
			}
			seq++
			evID++
			events = append(events, types.Event{
				ID: evID, AgentID: agent, Subject: sh, Object: conn,
				Op: types.OpConnect, Start: base + 99_000, Seq: seq,
			})
		}
	}
	ds := types.NewDataset(entities, events)
	st := New(opts)
	st.Ingest(ds)
	return st, ds
}

func TestIngestCounts(t *testing.T) {
	st, ds := buildFixture(Options{})
	if st.EventCount() != len(ds.Events) {
		t.Errorf("event count = %d, want %d", st.EventCount(), len(ds.Events))
	}
	// 3 agents x 2 days = 6 partitions.
	if st.PartitionCount() != 6 {
		t.Errorf("partitions = %d, want 6", st.PartitionCount())
	}
	if got := st.Agents(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("agents = %v", got)
	}
	if got := st.Days(); len(got) != 2 {
		t.Errorf("days = %v", got)
	}
}

func TestSpatialPruning(t *testing.T) {
	st, _ := buildFixture(Options{})
	q := &DataQuery{
		Agents:   []int{2},
		SubjType: types.EntityProcess,
		ObjType:  types.EntityFile,
		Ops:      types.NewOpSet(types.OpWrite),
	}
	out := st.Run(context.Background(), q)
	if len(out) != 100 { // 50 writes x 2 days on agent 2
		t.Fatalf("matches = %d, want 100", len(out))
	}
	for _, m := range out {
		if m.Event.AgentID != 2 {
			t.Fatalf("leaked event from agent %d", m.Event.AgentID)
		}
	}
}

func TestTemporalPruning(t *testing.T) {
	st, _ := buildFixture(Options{})
	q := &DataQuery{
		Window:   timeutil.DayWindow(1),
		SubjType: types.EntityProcess,
		ObjType:  types.EntityFile,
		Ops:      types.NewOpSet(types.OpWrite),
	}
	out := st.Run(context.Background(), q)
	if len(out) != 150 { // 50 writes x 3 agents on day 1
		t.Fatalf("matches = %d, want 150", len(out))
	}
	for _, m := range out {
		if timeutil.DayIndex(m.Event.Start) != 1 {
			t.Fatal("leaked event from another day")
		}
	}
}

func TestSubWindowBinarySearch(t *testing.T) {
	st, _ := buildFixture(Options{})
	// Events are at k*1000 for k in [0,50); a window [10s, 20s) on day 0
	// should catch exactly 10 writes per agent.
	q := &DataQuery{
		Window:   timeutil.Window{From: 10_000, To: 20_000},
		SubjType: types.EntityProcess,
		ObjType:  types.EntityFile,
		Ops:      types.NewOpSet(types.OpWrite),
	}
	out := st.Run(context.Background(), q)
	if len(out) != 30 {
		t.Fatalf("matches = %d, want 30", len(out))
	}
}

func TestEntityPredicateViaIndex(t *testing.T) {
	st, _ := buildFixture(Options{})
	q := &DataQuery{
		SubjType: types.EntityProcess,
		SubjPred: pred.NewCond(types.AttrExeName, pred.CmpEq, "/bin/sh"),
		ObjType:  types.EntityNetwork,
		Ops:      types.NewOpSet(types.OpConnect),
	}
	out := st.Run(context.Background(), q)
	if len(out) != 6 { // 1 connect x 3 agents x 2 days
		t.Fatalf("matches = %d, want 6", len(out))
	}
	for _, m := range out {
		if m.Subj.Attrs[types.AttrExeName] != "/bin/sh" {
			t.Fatal("wrong subject matched")
		}
	}
}

func TestWildcardPredicateNeedsScan(t *testing.T) {
	st, _ := buildFixture(Options{})
	q := &DataQuery{
		SubjType: types.EntityProcess,
		SubjPred: pred.NewCond(types.AttrExeName, pred.CmpEq, "%work%"),
		ObjType:  types.EntityFile,
		Ops:      types.NewOpSet(types.OpWrite),
	}
	if got := len(st.Run(context.Background(), q)); got != 300 {
		t.Fatalf("wildcard matches = %d, want 300", got)
	}
}

func TestAllowedSetsConstrainExecution(t *testing.T) {
	st, ds := buildFixture(Options{})
	// Find one specific worker process entity on agent 1.
	var worker types.EntityID
	for i := range ds.Entities {
		e := &ds.Entities[i]
		if e.AgentID == 1 && e.Attrs[types.AttrExeName] == "/bin/worker" {
			worker = e.ID
		}
	}
	q := &DataQuery{
		SubjType:    types.EntityProcess,
		SubjAllowed: map[types.EntityID]struct{}{worker: {}},
		ObjType:     types.EntityFile,
		Ops:         types.NewOpSet(types.OpWrite),
	}
	out := st.Run(context.Background(), q)
	if len(out) != 100 {
		t.Fatalf("matches = %d, want 100", len(out))
	}
	for _, m := range out {
		if m.Event.Subject != worker {
			t.Fatal("allowed set leaked")
		}
	}
	// Allowed set with predicate conflict yields nothing.
	q.SubjPred = pred.NewCond(types.AttrExeName, pred.CmpEq, "/bin/sh")
	if got := len(st.Run(context.Background(), q)); got != 0 {
		t.Fatalf("conflicting allowed set + pred matched %d", got)
	}
}

func TestEvtPredAndLimit(t *testing.T) {
	st, _ := buildFixture(Options{})
	q := &DataQuery{
		SubjType: types.EntityProcess,
		ObjType:  types.EntityFile,
		Ops:      types.NewOpSet(types.OpWrite),
		EvtPred:  pred.NewCond(types.EvtAttrAmount, pred.CmpGe, "140"),
	}
	out := st.Run(context.Background(), q)
	if len(out) != 60 { // k in [40,50) x 3 agents x 2 days
		t.Fatalf("amount filter matches = %d, want 60", len(out))
	}
	q.Limit = 7
	if got := len(st.Run(context.Background(), q)); got != 7 {
		t.Fatalf("limit ignored: %d", got)
	}
}

func TestOptionTogglesPreserveResults(t *testing.T) {
	// The correctness property behind every ablation benchmark: the
	// optimization toggles change cost, never results.
	queries := []*DataQuery{
		{SubjType: types.EntityProcess, ObjType: types.EntityFile, Ops: types.NewOpSet(types.OpWrite)},
		{Agents: []int{1}, SubjType: types.EntityProcess, ObjType: types.EntityNetwork, Ops: types.NewOpSet(types.OpConnect)},
		{Window: timeutil.DayWindow(0), SubjType: types.EntityProcess,
			SubjPred: pred.NewCond(types.AttrExeName, pred.CmpEq, "/bin/sh"),
			ObjType:  types.EntityNetwork, Ops: types.AllOps()},
		{SubjType: types.EntityProcess, ObjType: types.EntityFile,
			ObjPred: pred.NewCond(types.AttrName, pred.CmpEq, "%log%"),
			Ops:     types.AllOps(), ForceScan: true},
	}
	variants := []Options{
		{},
		{DisableIndexes: true},
		{DisablePruning: true},
		{Workers: 1},
		{DisableIndexes: true, DisablePruning: true, Workers: 1},
	}
	var baseline [][]types.EventID
	for vi, opts := range variants {
		st, _ := buildFixture(opts)
		for qi, q := range queries {
			ids := matchIDs(st.Run(context.Background(), q))
			if vi == 0 {
				baseline = append(baseline, ids)
				continue
			}
			if !equalIDs(ids, baseline[qi]) {
				t.Errorf("variant %d query %d: results differ from baseline", vi, qi)
			}
		}
	}
}

func matchIDs(ms []Match) []types.EventID {
	ids := make([]types.EventID, len(ms))
	for i, m := range ms {
		ids[i] = m.Event.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []types.EventID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOutOfOrderIngestResorts(t *testing.T) {
	st := New(Options{})
	st.AddEntity(&types.Entity{ID: 1, Type: types.EntityProcess, AgentID: 1,
		Attrs: map[string]string{types.AttrExeName: "/p"}})
	st.AddEntity(&types.Entity{ID: 2, Type: types.EntityFile, AgentID: 1,
		Attrs: map[string]string{types.AttrName: "/f"}})
	// Insert events in reverse temporal order.
	for i := 5; i >= 1; i-- {
		st.AddEvent(&types.Event{ID: types.EventID(i), AgentID: 1, Subject: 1, Object: 2,
			Op: types.OpWrite, Start: int64(i * 1000), Seq: uint64(i)})
	}
	out := st.Run(context.Background(), &DataQuery{SubjType: types.EntityProcess, ObjType: types.EntityFile,
		Ops: types.NewOpSet(types.OpWrite)})
	if len(out) != 5 {
		t.Fatalf("matches = %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Event.Start > out[i].Event.Start {
			t.Fatal("partition not re-sorted after out-of-order ingestion")
		}
	}
}

func TestDuplicateEntityIngestIgnored(t *testing.T) {
	st := New(Options{})
	e := &types.Entity{ID: 1, Type: types.EntityFile, Attrs: map[string]string{types.AttrName: "/f"}}
	st.AddEntity(e)
	st.AddEntity(e)
	if got := len(st.entityIdx[entityKey{typ: types.EntityFile, attr: types.AttrName, val: "/f"}]); got != 1 {
		t.Errorf("duplicate entity indexed %d times", got)
	}
}

// TestScanEquivalenceProperty: for random queries, the indexed/pruned
// execution must return exactly the same events as a naive full filter over
// the raw dataset.
func TestScanEquivalenceProperty(t *testing.T) {
	st, ds := buildFixture(Options{})
	rng := rand.New(rand.NewSource(11))
	exes := []string{"/bin/worker", "/bin/sh", "%work%", "%sh"}

	naive := func(q *DataQuery) []types.EventID {
		var out []types.EventID
		for i := range ds.Events {
			ev := &ds.Events[i]
			if !q.Ops.Contains(ev.Op) {
				continue
			}
			if len(q.Agents) > 0 && ev.AgentID != q.Agents[0] {
				continue
			}
			if !q.Window.Unbounded() && !q.Window.Contains(ev.Start) {
				continue
			}
			subj, obj := ds.Entity(ev.Subject), ds.Entity(ev.Object)
			if q.SubjType != types.EntityInvalid && subj.Type != q.SubjType {
				continue
			}
			if q.ObjType != types.EntityInvalid && obj.Type != q.ObjType {
				continue
			}
			if q.SubjPred != nil && !q.SubjPred.Eval(subj) {
				continue
			}
			if q.ObjPred != nil && !q.ObjPred.Eval(obj) {
				continue
			}
			out = append(out, ev.ID)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	for trial := 0; trial < 200; trial++ {
		q := &DataQuery{
			SubjType: types.EntityProcess,
			Ops:      types.AllOps(),
		}
		if rng.Intn(2) == 0 {
			q.Agents = []int{1 + rng.Intn(3)}
		}
		if rng.Intn(2) == 0 {
			day := rng.Intn(2)
			q.Window = timeutil.DayWindow(day)
		}
		if rng.Intn(2) == 0 {
			q.SubjPred = pred.NewCond(types.AttrExeName, pred.CmpEq, exes[rng.Intn(len(exes))])
		}
		switch rng.Intn(3) {
		case 0:
			q.ObjType = types.EntityFile
		case 1:
			q.ObjType = types.EntityNetwork
		}
		if rng.Intn(3) == 0 {
			q.Ops = types.NewOpSet(types.OpWrite)
		}
		got := matchIDs(st.Run(context.Background(), q))
		want := naive(q)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: store returned %d events, naive filter %d (query %+v)",
				trial, len(got), len(want), q)
		}
	}
}

// TestForceScanEquivalence: ForceScan must never change results.
func TestForceScanEquivalence(t *testing.T) {
	st, _ := buildFixture(Options{})
	f := func(agentRaw, opRaw uint8) bool {
		q := &DataQuery{
			Agents:   []int{int(agentRaw%3) + 1},
			SubjType: types.EntityProcess,
			SubjPred: pred.NewCond(types.AttrExeName, pred.CmpEq, "/bin/worker"),
			Ops:      types.NewOpSet(types.OpWrite, types.OpConnect),
		}
		if opRaw%2 == 0 {
			q.ObjType = types.EntityFile
		}
		a := matchIDs(st.Run(context.Background(), q))
		forced := *q
		forced.ForceScan = true
		b := matchIDs(st.Run(context.Background(), &forced))
		return equalIDs(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEmptyStore(t *testing.T) {
	st := New(Options{})
	out := st.Run(context.Background(), &DataQuery{SubjType: types.EntityProcess, Ops: types.AllOps()})
	if len(out) != 0 {
		t.Errorf("empty store returned %d matches", len(out))
	}
	if st.Entity(1) != nil {
		t.Error("empty store returned an entity")
	}
}

// TestPreEpochPartitioning pins the floor-division day semantics at the
// storage layer: events one millisecond either side of the epoch belong to
// two distinct partitions (day -1 and day 0), day-windowed queries return
// exactly their own day, and an epoch-straddling window finds both — with
// truncating division both events collapsed onto day 0 and the pre-epoch
// day was unreachable by pruning.
func TestPreEpochPartitioning(t *testing.T) {
	st := New(Options{})
	proc := types.Entity{ID: 1, Type: types.EntityProcess, AgentID: 1, Attrs: map[string]string{types.AttrExeName: "/bin/x"}}
	file := types.Entity{ID: 2, Type: types.EntityFile, AgentID: 1, Attrs: map[string]string{types.AttrName: "/f"}}
	events := []types.Event{
		{ID: 1, AgentID: 1, Subject: 1, Object: 2, Op: types.OpWrite, Start: -1, Seq: 1},
		{ID: 2, AgentID: 1, Subject: 1, Object: 2, Op: types.OpWrite, Start: 0, Seq: 2},
		{ID: 3, AgentID: 1, Subject: 1, Object: 2, Op: types.OpWrite, Start: -timeutil.DayMillis, Seq: 3},
	}
	st.Ingest(types.NewDataset([]types.Entity{proc, file}, events))

	if got := st.PartitionCount(); got != 2 {
		t.Fatalf("partitions = %d, want 2 (day -1 and day 0)", got)
	}
	if got := st.Days(); len(got) != 2 || got[0] != -1 || got[1] != 0 {
		t.Fatalf("days = %v, want [-1 0]", got)
	}

	base := &DataQuery{SubjType: types.EntityProcess, ObjType: types.EntityFile, Ops: types.NewOpSet(types.OpWrite)}

	dayQ := *base
	dayQ.Window = timeutil.DayWindow(-1)
	out := st.Run(context.Background(), &dayQ)
	if len(out) != 2 {
		t.Fatalf("day -1 query found %d events, want 2", len(out))
	}
	for _, m := range out {
		if timeutil.DayIndex(m.Event.Start) != -1 {
			t.Fatalf("day -1 query leaked event at t=%d", m.Event.Start)
		}
	}

	straddle := *base
	straddle.Window = timeutil.Window{From: -10, To: 10}
	if out := st.Run(context.Background(), &straddle); len(out) != 2 {
		t.Fatalf("epoch-straddling query found %d events, want 2 (t=-1 and t=0)", len(out))
	}

	// To == 0 with a bounded From is an empty window, not "unbounded
	// above": it must match nothing rather than fabricate a day range.
	empty := *base
	empty.Window = timeutil.Window{From: -10, To: 0}
	if out := st.Run(context.Background(), &empty); len(out) != 1 {
		t.Fatalf("window [-10,0) found %d events, want 1 (t=-1)", len(out))
	}
	halfBuilt := *base
	halfBuilt.Window = timeutil.Window{From: 10, To: 0}
	if out := st.Run(context.Background(), &halfBuilt); len(out) != 0 {
		t.Fatalf("empty window {10,0} found %d events, want 0", len(out))
	}
}

// TestLiveCursorAccounting drives every way a cursor's life can end —
// clean exhaustion, early Close, double Close, context cancellation before
// and during the scan, limit cut-off, and the empty-result fast path — and
// asserts the live-cursor and live-snapshot counters return to baseline
// after each. A counter stuck above zero means some path stranded producer
// goroutines or left the store paying copy-on-write for a dead reader.
func TestLiveCursorAccounting(t *testing.T) {
	st, _ := buildFixture(Options{})
	q := &DataQuery{SubjType: types.EntityProcess, ObjType: types.EntityFile, Ops: types.NewOpSet(types.OpWrite)}
	assertBaseline := func(step string) {
		t.Helper()
		if n := st.LiveCursors(); n != 0 {
			t.Fatalf("%s: %d cursors live, want 0", step, n)
		}
		if n := st.LiveSnapshots(); n != 0 {
			t.Fatalf("%s: %d snapshots live, want 0", step, n)
		}
	}

	// Clean exhaustion via Drain (Close afterwards is a no-op).
	c := st.Scan(context.Background(), q)
	if got := st.LiveCursors(); got != 1 {
		t.Fatalf("open scan: %d cursors live, want 1", got)
	}
	Drain(c)
	c.Close()
	assertBaseline("drain")

	// Early close without reading anything.
	st.Scan(context.Background(), q).Close()
	assertBaseline("early close")

	// Double close stays balanced.
	c = st.Scan(context.Background(), q)
	c.Close()
	c.Close()
	assertBaseline("double close")

	// Context canceled before the scan starts: no cursor ever goes live.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	c = st.Scan(canceled, q)
	if c.Err() == nil {
		Drain(c)
	}
	c.Close()
	assertBaseline("pre-canceled")

	// Cancellation mid-stream.
	ctx, cancel2 := context.WithCancel(context.Background())
	c = st.Scan(ctx, q)
	batch := make([]Match, 8)
	c.Next(batch)
	cancel2()
	for c.Next(batch) > 0 {
	}
	c.Close()
	assertBaseline("mid-cancel")

	// Limit cut-off.
	lq := *q
	lq.Limit = 3
	c = st.Scan(context.Background(), &lq)
	Drain(c)
	c.Close()
	assertBaseline("limit")

	// Empty result fast path (impossible window).
	eq := *q
	eq.Window = timeutil.Window{From: 10, To: 0}
	c = st.Scan(context.Background(), &eq)
	Drain(c)
	c.Close()
	assertBaseline("empty")

	// Snapshot-level scans count against the owning store too.
	snap := st.Snapshot()
	c = snap.Scan(context.Background(), q)
	if got := st.LiveCursors(); got != 1 {
		t.Fatalf("snapshot scan: %d cursors live, want 1", got)
	}
	c.Close()
	if got := st.LiveCursors(); got != 0 {
		t.Fatalf("closed snapshot scan: %d cursors live, want 0", got)
	}
	snap.Close()
	assertBaseline("snapshot scan")
}
