package translate

import (
	"strings"
	"testing"

	"aiql/internal/engine"
	"aiql/internal/parser"
)

const query7 = `
agentid = 2
(at "03/02/2017")
proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
proc p3["%sqlservr.exe"] write file f1["%backup1.dmp"] as evt2
proc p4["%sbblv.exe"] read file f1 as evt3
with evt1 before evt2, evt2 before evt3
return distinct p1, p2, p3, f1, p4`

const anomalyQuery = `
(at "03/02/2017")
agentid = 2
window = 1 min, step = 10 sec
proc p write ip i[dstip = "203.0.113.129"] as evt
return p, avg(evt.amount) as amt
group by p
having (amt > 2 * (amt + amt[1] + amt[2]) / 3)`

func mustPlan(t *testing.T, src string) *engine.Plan {
	t.Helper()
	q, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := engine.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestSQLShape(t *testing.T) {
	sql, err := SQL(mustPlan(t, query7))
	if err != nil {
		t.Fatal(err)
	}
	text := sql.Text
	// One events alias plus subject/object entity tables per pattern.
	for _, frag := range []string{
		"events e0", "events e1", "events e2",
		"processes s0", "processes o0", "files o1",
		"SELECT DISTINCT",
		"e0.subject_id = s0.id",
		"LIKE '%cmd.exe'",
		"e0.start_time < e1.start_time",
		"e0.agent_id = 2",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("SQL missing %q:\n%s", frag, text)
		}
	}
	// Entity-ID reuse (f1 in patterns 2 and 3) must become an id join.
	if !strings.Contains(text, "o1.id = o2.id") && !strings.Contains(text, "o2.id = o1.id") {
		t.Errorf("SQL missing shared-file join:\n%s", text)
	}
	if sql.Constraints < 15 {
		t.Errorf("SQL constraint count %d suspiciously low", sql.Constraints)
	}
}

func TestCypherShape(t *testing.T) {
	cy, err := Cypher(mustPlan(t, query7))
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"MATCH", "(s0:Process)-[e0:EVENT]->(o0:Process)",
		"(s1:Process)-[e1:EVENT]->(o1:File)",
		"ENDS WITH 'cmd.exe'",
		"RETURN DISTINCT",
		"e0.start_time < e1.start_time",
	} {
		if !strings.Contains(cy.Text, frag) {
			t.Errorf("Cypher missing %q:\n%s", frag, cy.Text)
		}
	}
}

func TestSPLShape(t *testing.T) {
	spl, err := SPL(mustPlan(t, query7))
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"search index=sysmon",
		"| join",
		"optype=start",
		`subj_exe_name="*cmd.exe"`,
		"| where start_time_0 < start_time_1",
		"| dedup",
		"| table",
	} {
		if !strings.Contains(spl.Text, frag) {
			t.Errorf("SPL missing %q:\n%s", frag, spl.Text)
		}
	}
}

func TestAnomalyInexpressible(t *testing.T) {
	plan := mustPlan(t, anomalyQuery)
	if _, err := SQL(plan); err == nil {
		t.Error("SQL accepted a sliding-window query")
	}
	if _, err := Cypher(plan); err == nil {
		t.Error("Cypher accepted a sliding-window query")
	}
	if _, err := SPL(plan); err == nil {
		t.Error("SPL accepted a sliding-window query")
	}
	var ierr *ErrInexpressible
	_, err := SQL(plan)
	if e, ok := err.(*ErrInexpressible); ok {
		ierr = e
	}
	if ierr == nil || ierr.Lang != "SQL" {
		t.Errorf("error = %v, want ErrInexpressible for SQL", err)
	}
	if !Expressible(query7) {
		t.Error("plain multievent query reported inexpressible")
	}
	if Expressible(anomalyQuery) {
		t.Error("anomaly query reported expressible")
	}
}

func TestAllTranslations(t *testing.T) {
	sql, cy, spl, err := All(query7)
	if err != nil {
		t.Fatal(err)
	}
	if sql == nil || cy == nil || spl == nil {
		t.Fatal("All returned nil translations for an expressible query")
	}
	// The structural verbosity ordering the paper reports: each target is
	// strictly more verbose than the AIQL original.
	aiqlN, err := AIQLConstraints(query7)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []*Translation{sql, cy, spl} {
		if tr.Constraints <= aiqlN {
			t.Errorf("%s constraints %d not larger than AIQL's %d", tr.Lang, tr.Constraints, aiqlN)
		}
		if len(tr.Text) <= len(query7)/2 {
			t.Errorf("%s text suspiciously short", tr.Lang)
		}
	}
	_, _, _, err = All("not a query at all (")
	if err == nil {
		t.Error("All accepted garbage")
	}
}

func TestAIQLConstraintCounting(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		// 1 agent + 1 global window + 2 entity constraints + 1 explicit
		// relationship (entity-ID reuse is a shortcut, not a constraint).
		{`agentid = 1
		  (at "01/01/2017")
		  proc p1["%a%"] start proc p2 as evt1
		  proc p2 write file f1["%b%"] as evt2
		  with evt1 before evt2
		  return p1, f1`, 5},
		// Bare pattern with in-list (2 atoms... in-list is one atom).
		{`proc p1[exe_name in ("a", "b")] write file f1 return p1`, 1},
		// Dependency: window + 3 node constraints.
		{`(at "01/01/2017")
		  backward: file f1["%u.exe"] <-[write] proc p1["%up%"] ->[read] ip i1[dstip = "1.2.3.4"]
		  return f1, p1, i1`, 4},
	}
	for _, tc := range cases {
		got, err := AIQLConstraints(tc.src)
		if err != nil {
			t.Errorf("AIQLConstraints error: %v", err)
			continue
		}
		if got != tc.want {
			t.Errorf("AIQLConstraints = %d, want %d for:\n%s", got, tc.want, tc.src)
		}
	}
}

func TestCypherStringMatchForms(t *testing.T) {
	cases := []struct {
		val  string
		want string
	}{
		{"exact", "col = 'exact'"},
		{"%mid%", "col CONTAINS 'mid'"},
		{"%suffix", "col ENDS WITH 'suffix'"},
		{"prefix%", "col STARTS WITH 'prefix'"},
		{"pre%post", "col STARTS WITH 'pre' AND col ENDS WITH 'post'"},
	}
	for _, tc := range cases {
		got := cypherStringMatch("col", tc.val, false)
		if got != tc.want {
			t.Errorf("cypherStringMatch(%q) = %q, want %q", tc.val, got, tc.want)
		}
	}
}

func TestSQLOrderingAndTop(t *testing.T) {
	sql, err := SQL(mustPlan(t, `
		agentid = 1
		proc p1["%x%"] write file f1 as evt1
		return distinct p1, f1
		sort by p1 desc
		top 10`))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql.Text, "ORDER BY") || !strings.Contains(sql.Text, "DESC") {
		t.Errorf("missing ORDER BY DESC:\n%s", sql.Text)
	}
	if !strings.Contains(sql.Text, "LIMIT 10") {
		t.Errorf("missing LIMIT:\n%s", sql.Text)
	}
}

func TestGroupByHavingTranslations(t *testing.T) {
	src := `
		agentid = 1
		proc p read ip i as evt
		return p, count(i) as n
		group by p
		having n > 100`
	sql, err := SQL(mustPlan(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql.Text, "GROUP BY") || !strings.Contains(sql.Text, "HAVING") {
		t.Errorf("SQL group-by missing:\n%s", sql.Text)
	}
	if !strings.Contains(sql.Text, "COUNT(") {
		t.Errorf("SQL aggregate missing:\n%s", sql.Text)
	}
	spl, err := SPL(mustPlan(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(spl.Text, "| stats count(") {
		t.Errorf("SPL stats missing:\n%s", spl.Text)
	}
}
