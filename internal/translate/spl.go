package translate

import (
	"fmt"
	"strings"

	"aiql/internal/engine"
	"aiql/internal/pred"
	"aiql/internal/types"
)

// SPL renders a plan as a Splunk SPL pipeline. Splunk stores flat events,
// so entity attributes appear as prefixed event fields (subj_exe_name,
// obj_name, ...). Multi-pattern queries become subsearch joins — the
// construct whose limited support the paper cites as making SPL unfit for
// multi-step behaviours — followed by `where` clauses for the temporal and
// cross-pattern attribute relationships and `dedup`/`table`/`sort` for
// result shaping.
func SPL(plan *engine.Plan) (*Translation, error) {
	if plan.Slide != nil {
		return nil, &ErrInexpressible{Lang: "SPL", Why: "sliding windows with history states"}
	}
	c := &counter{}

	searchFor := func(pp *engine.PatternPlan) string {
		var parts []string
		parts = append(parts, "search index=sysmon")
		if pp.Ops != types.AllOps() {
			ops := pp.Ops.Ops()
			if len(ops) == 1 {
				parts = append(parts, fmt.Sprintf("optype=%s", ops[0]))
			} else {
				alts := make([]string, len(ops))
				for i, o := range ops {
					alts[i] = fmt.Sprintf("optype=%s", o)
				}
				parts = append(parts, "("+strings.Join(alts, " OR ")+")")
			}
			c.add(1)
		}
		for _, a := range pp.Agents {
			parts = append(parts, fmt.Sprintf("agent_id=%d", a))
			c.add(1)
		}
		if !pp.Window.Unbounded() {
			from, to := windowString(pp.Window)
			parts = append(parts, fmt.Sprintf("earliest=%q latest=%q", from, to))
			c.add(2)
		}
		parts = append(parts, fmt.Sprintf("subj_type=%s obj_type=%s", pp.Subj.Type, pp.Obj.Type))
		c.add(2)
		if pp.Subj.Pred != nil {
			parts = append(parts, renderPredSPL(pp.Subj.Pred, "subj_", c))
		}
		if pp.Obj.Pred != nil {
			parts = append(parts, renderPredSPL(pp.Obj.Pred, "obj_", c))
		}
		if pp.EvtPred != nil {
			parts = append(parts, renderPredSPL(pp.EvtPred, "", c))
		}
		return strings.Join(parts, " ")
	}

	var b strings.Builder
	b.WriteString(searchFor(plan.Patterns[0]))
	b.WriteString(renameFields(plan.Patterns[0].Idx))

	// Each further pattern joins through a shared key when an equality
	// relationship exists, else through append + eventstats (Splunk's
	// workaround for join-less correlation).
	joined := map[int]bool{0: true}
	for _, pp := range plan.Patterns[1:] {
		key := joinKeySPL(plan, pp.Idx, joined, c)
		b.WriteString(fmt.Sprintf("\n| join type=inner %s [ %s%s ]", key, searchFor(pp), renameFields(pp.Idx)))
		joined[pp.Idx] = true
	}

	// Temporal and non-equality relationships become where clauses.
	for i := range plan.Joins {
		j := &plan.Joins[i]
		switch j.Kind {
		case engine.JoinTemporal:
			if j.TempKind == "within" {
				b.WriteString(fmt.Sprintf("\n| where abs(start_time_%d - start_time_%d) <= %d", j.B, j.A, j.HiMs))
				c.add(1)
			} else if j.HiMs > 0 {
				b.WriteString(fmt.Sprintf("\n| where start_time_%d - start_time_%d >= %d AND start_time_%d - start_time_%d <= %d",
					j.B, j.A, j.LoMs, j.B, j.A, j.HiMs))
				c.add(2)
			} else {
				b.WriteString(fmt.Sprintf("\n| where start_time_%d < start_time_%d", j.A, j.B))
				c.add(1)
			}
		case engine.JoinAttr:
			if j.Op != pred.CmpEq {
				b.WriteString(fmt.Sprintf("\n| where %s %s %s", splJoinField(j.A, j.ASide, j.AAttr), j.Op, splJoinField(j.B, j.BSide, j.BAttr)))
				c.add(1)
			}
		}
	}

	// Result shaping.
	cols := make([]string, 0, len(plan.Return.Items))
	var aggs []string
	for i := range plan.Return.Items {
		item := &plan.Return.Items[i]
		switch {
		case item.Ref != nil:
			cols = append(cols, splColRef(item.Ref))
		case item.Agg != nil:
			fn := item.Agg.Func
			if item.Agg.Distinct && fn == "count" {
				fn = "dc"
			}
			inner := "*"
			if item.Agg.Arg != nil {
				inner = splColRef(item.Agg.Arg)
			}
			aggs = append(aggs, fmt.Sprintf("%s(%s) AS %s", fn, inner, cypherName(item.Name)))
		}
	}
	if len(aggs) > 0 {
		by := ""
		if len(plan.GroupBy) > 0 {
			keys := make([]string, len(plan.GroupBy))
			for i, g := range plan.GroupBy {
				keys[i] = splColRef(g)
			}
			by = " by " + strings.Join(keys, ", ")
		}
		b.WriteString("\n| stats " + strings.Join(aggs, ", ") + by)
		if plan.Having != nil {
			b.WriteString("\n| where " + plan.Having.String())
			c.add(1)
		}
	} else {
		if plan.Return.Distinct {
			b.WriteString("\n| dedup " + strings.Join(cols, " "))
		}
		b.WriteString("\n| table " + strings.Join(cols, " "))
	}
	if plan.Return.Count {
		b.WriteString("\n| stats count")
	}
	if len(plan.SortBy) > 0 {
		keys := make([]string, len(plan.SortBy))
		for i, k := range plan.SortBy {
			item := &plan.Return.Items[k]
			if item.Ref != nil {
				keys[i] = splColRef(item.Ref)
			} else {
				keys[i] = cypherName(item.Name)
			}
			if plan.SortDesc {
				keys[i] = "-" + keys[i]
			}
		}
		b.WriteString("\n| sort " + strings.Join(keys, ", "))
	}
	if plan.Top > 0 {
		b.WriteString(fmt.Sprintf("\n| head %d", plan.Top))
	}
	return &Translation{Lang: "SPL", Text: b.String(), Constraints: c.n}, nil
}

// renameFields suffixes every field of a subsearch with the pattern index
// so joined patterns do not clobber each other.
func renameFields(idx int) string {
	return fmt.Sprintf(" | rename subj_id AS subj_id_%d, obj_id AS obj_id_%d, start_time AS start_time_%d, subj_exe_name AS subj_exe_name_%d, obj_name AS obj_name_%d, obj_dst_ip AS obj_dst_ip_%d",
		idx, idx, idx, idx, idx, idx)
}

// joinKeySPL picks the join field connecting a new pattern to the already
// joined ones, from the plan's equality relationships.
func joinKeySPL(plan *engine.Plan, next int, joined map[int]bool, c *counter) string {
	for i := range plan.Joins {
		j := &plan.Joins[i]
		if j.Kind != engine.JoinAttr || j.Op != pred.CmpEq {
			continue
		}
		if (j.A == next && joined[j.B]) || (j.B == next && joined[j.A]) {
			c.add(1)
			side, attr := j.ASide, j.AAttr
			if j.B == next {
				side, attr = j.BSide, j.BAttr
			}
			return splSideField(side, attr)
		}
	}
	c.add(1)
	return "agent_id"
}

func splSideField(side engine.Side, attr string) string {
	prefix := "subj_"
	if side == engine.SideObject {
		prefix = "obj_"
	}
	return prefix + attr
}

func splJoinField(pattern int, side engine.Side, attr string) string {
	return fmt.Sprintf("%s_%d", splSideField(side, attr), pattern)
}

func splColRef(r *engine.ColRef) string {
	if r.IsEvent {
		return fmt.Sprintf("%s_%d", r.Attr, r.Pattern)
	}
	return splJoinField(r.Pattern, r.Side, r.Attr)
}

// renderPredSPL renders a predicate in SPL search syntax: field=value with
// * wildcards, OR/NOT combinators.
func renderPredSPL(p pred.Pred, prefix string, c *counter) string {
	switch v := p.(type) {
	case *pred.Cond:
		c.add(1)
		field := prefix + v.Attr
		switch v.Op {
		case pred.CmpEq:
			return fmt.Sprintf("%s=%q", field, strings.ReplaceAll(v.Val, "%", "*"))
		case pred.CmpNe:
			return fmt.Sprintf("NOT %s=%q", field, strings.ReplaceAll(v.Val, "%", "*"))
		case pred.CmpIn, pred.CmpNotIn:
			alts := make([]string, len(v.Vals))
			for i, x := range v.Vals {
				alts[i] = fmt.Sprintf("%s=%q", field, strings.ReplaceAll(x, "%", "*"))
			}
			s := "(" + strings.Join(alts, " OR ") + ")"
			if v.Op == pred.CmpNotIn {
				return "NOT " + s
			}
			return s
		default:
			return fmt.Sprintf("%s%s%s", field, v.Op, v.Val)
		}
	case *pred.Not:
		return "NOT (" + renderPredSPL(v.X, prefix, c) + ")"
	case *pred.And:
		parts := make([]string, len(v.Xs))
		for i, x := range v.Xs {
			parts[i] = renderPredSPL(x, prefix, c)
		}
		return "(" + strings.Join(parts, " ") + ")"
	case *pred.Or:
		parts := make([]string, len(v.Xs))
		for i, x := range v.Xs {
			parts[i] = renderPredSPL(x, prefix, c)
		}
		return "(" + strings.Join(parts, " OR ") + ")"
	}
	return ""
}
