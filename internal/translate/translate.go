// Package translate compiles AIQL queries into semantically equivalent SQL,
// Neo4j Cypher, and Splunk SPL text. The paper's conciseness evaluation
// (Sec. 6.4, Fig. 8, Table 5) hand-wrote these equivalents; generating them
// from the compiled plan makes the comparison mechanical and auditable:
// every AIQL construct (event patterns, spatial/temporal constraints,
// attribute/temporal relationships, result shaping) lowers into the shape
// each target language forces — explicit event/entity joins in SQL, node
// and relationship variables plus WHERE chains in Cypher, and subsearch
// joins in SPL.
package translate

import (
	"fmt"
	"strings"

	"aiql/internal/ast"
	"aiql/internal/engine"
	"aiql/internal/parser"
	"aiql/internal/pred"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// ErrInexpressible marks queries the target languages cannot express —
// the paper's anomaly queries with sliding windows and history states
// (Sec. 6.1: "Due to the limited expressiveness of SQL and Cypher, we
// cannot compare the anomaly queries").
type ErrInexpressible struct {
	Lang string
	Why  string
}

func (e *ErrInexpressible) Error() string {
	return fmt.Sprintf("translate: %s cannot express %s", e.Lang, e.Why)
}

// Translation bundles one query's text in one target language together
// with its structural constraint count.
type Translation struct {
	Lang        string
	Text        string
	Constraints int
}

// counter tallies atomic constraints during rendering.
type counter struct{ n int }

func (c *counter) add(k int) { c.n += k }

// All translates AIQL source into all three target languages. Entries are
// nil where the language cannot express the query.
func All(src string) (sql, cypher, spl *Translation, err error) {
	q, perr := parser.Parse(src)
	if perr != nil {
		return nil, nil, nil, perr
	}
	plan, cerr := engine.Compile(q)
	if cerr != nil {
		return nil, nil, nil, cerr
	}
	if s, e := SQL(plan); e == nil {
		sql = s
	}
	if c, e := Cypher(plan); e == nil {
		cypher = c
	}
	if s, e := SPL(plan); e == nil {
		spl = s
	}
	return sql, cypher, spl, nil
}

// entityTable maps an entity type to its SQL table name.
func entityTable(t types.EntityType) string {
	switch t {
	case types.EntityFile:
		return "files"
	case types.EntityProcess:
		return "processes"
	case types.EntityNetwork:
		return "netconns"
	default:
		return "entities"
	}
}

// entityLabel maps an entity type to its Cypher node label.
func entityLabel(t types.EntityType) string {
	switch t {
	case types.EntityFile:
		return "File"
	case types.EntityProcess:
		return "Process"
	case types.EntityNetwork:
		return "NetConn"
	default:
		return "Entity"
	}
}

func sqlQuote(v string) string { return "'" + strings.ReplaceAll(v, "'", "''") + "'" }

// renderPredSQL renders a compiled predicate against a table alias,
// counting atomic constraints.
func renderPredSQL(p pred.Pred, alias string, c *counter) string {
	switch v := p.(type) {
	case *pred.Cond:
		c.add(1)
		col := alias + "." + v.Attr
		switch v.Op {
		case pred.CmpEq:
			if strings.ContainsRune(v.Val, '%') {
				return col + " LIKE " + sqlQuote(v.Val)
			}
			return col + " = " + sqlQuote(v.Val)
		case pred.CmpNe:
			if strings.ContainsRune(v.Val, '%') {
				return col + " NOT LIKE " + sqlQuote(v.Val)
			}
			return col + " <> " + sqlQuote(v.Val)
		case pred.CmpIn, pred.CmpNotIn:
			vals := make([]string, len(v.Vals))
			for i, x := range v.Vals {
				vals[i] = sqlQuote(x)
			}
			kw := "IN"
			if v.Op == pred.CmpNotIn {
				kw = "NOT IN"
			}
			return fmt.Sprintf("%s %s (%s)", col, kw, strings.Join(vals, ", "))
		default:
			return fmt.Sprintf("%s %s %s", col, v.Op, sqlQuote(v.Val))
		}
	case *pred.Not:
		return "NOT (" + renderPredSQL(v.X, alias, c) + ")"
	case *pred.And:
		parts := make([]string, len(v.Xs))
		for i, x := range v.Xs {
			parts[i] = renderPredSQL(x, alias, c)
		}
		return "(" + strings.Join(parts, " AND ") + ")"
	case *pred.Or:
		parts := make([]string, len(v.Xs))
		for i, x := range v.Xs {
			parts[i] = renderPredSQL(x, alias, c)
		}
		return "(" + strings.Join(parts, " OR ") + ")"
	}
	return "TRUE"
}

// aliases for pattern i.
func evAlias(i int) string   { return fmt.Sprintf("e%d", i) }
func subjAlias(i int) string { return fmt.Sprintf("s%d", i) }
func objAlias(i int) string  { return fmt.Sprintf("o%d", i) }

func sideAlias(p int, side engine.Side) string {
	if side == engine.SideSubject {
		return subjAlias(p)
	}
	return objAlias(p)
}

// opsSQL renders an operation set constraint.
func opsSQL(alias string, ops types.OpSet, c *counter) string {
	if ops == types.AllOps() {
		return ""
	}
	c.add(1)
	list := ops.Ops()
	if len(list) == 1 {
		return fmt.Sprintf("%s.optype = %s", alias, sqlQuote(list[0].String()))
	}
	vals := make([]string, len(list))
	for i, o := range list {
		vals[i] = sqlQuote(o.String())
	}
	return fmt.Sprintf("%s.optype IN (%s)", alias, strings.Join(vals, ", "))
}

// SQL renders a plan as one PostgreSQL-style SELECT joining the events
// table (once per pattern) with its subject and object entity tables.
func SQL(plan *engine.Plan) (*Translation, error) {
	if plan.Slide != nil {
		return nil, &ErrInexpressible{Lang: "SQL", Why: "sliding windows with history states"}
	}
	c := &counter{}
	var from, where []string
	for _, pp := range plan.Patterns {
		i := pp.Idx
		from = append(from,
			fmt.Sprintf("events %s", evAlias(i)),
			fmt.Sprintf("%s %s", entityTable(pp.Subj.Type), subjAlias(i)),
			fmt.Sprintf("%s %s", entityTable(pp.Obj.Type), objAlias(i)),
		)
		// Event-to-entity join conditions.
		where = append(where,
			fmt.Sprintf("%s.subject_id = %s.id", evAlias(i), subjAlias(i)),
			fmt.Sprintf("%s.object_id = %s.id", evAlias(i), objAlias(i)),
		)
		c.add(2)
		if s := opsSQL(evAlias(i), pp.Ops, c); s != "" {
			where = append(where, s)
		}
		for _, a := range pp.Agents {
			where = append(where, fmt.Sprintf("%s.agent_id = %d", evAlias(i), a))
			c.add(1)
		}
		if !pp.Window.Unbounded() {
			where = append(where, fmt.Sprintf("%s.start_time >= %d AND %s.start_time < %d",
				evAlias(i), pp.Window.From, evAlias(i), pp.Window.To))
			c.add(2)
		}
		if pp.Subj.Pred != nil {
			where = append(where, renderPredSQL(pp.Subj.Pred, subjAlias(i), c))
		}
		if pp.Obj.Pred != nil {
			where = append(where, renderPredSQL(pp.Obj.Pred, objAlias(i), c))
		}
		if pp.EvtPred != nil {
			where = append(where, renderPredSQL(pp.EvtPred, evAlias(i), c))
		}
	}
	for i := range plan.Joins {
		j := &plan.Joins[i]
		switch j.Kind {
		case engine.JoinAttr:
			where = append(where, fmt.Sprintf("%s.%s %s %s.%s",
				sideAlias(j.A, j.ASide), j.AAttr, sqlCmp(j.Op), sideAlias(j.B, j.BSide), j.BAttr))
			c.add(1)
		case engine.JoinTemporal:
			if j.TempKind == "within" {
				where = append(where, fmt.Sprintf("ABS(%s.start_time - %s.start_time) <= %d",
					evAlias(j.B), evAlias(j.A), j.HiMs))
				c.add(1)
			} else if j.HiMs > 0 {
				where = append(where, fmt.Sprintf("%s.start_time - %s.start_time BETWEEN %d AND %d",
					evAlias(j.B), evAlias(j.A), j.LoMs, j.HiMs))
				c.add(2)
			} else {
				where = append(where, fmt.Sprintf("%s.start_time < %s.start_time",
					evAlias(j.A), evAlias(j.B)))
				c.add(1)
			}
		}
	}

	var b strings.Builder
	b.WriteString("SELECT ")
	if plan.Return.Count {
		b.WriteString("COUNT(")
		if plan.Return.Distinct {
			b.WriteString("DISTINCT ")
		}
		b.WriteString(selectCols(plan))
		b.WriteString(")")
	} else {
		if plan.Return.Distinct {
			b.WriteString("DISTINCT ")
		}
		b.WriteString(selectCols(plan))
	}
	b.WriteString("\nFROM " + strings.Join(from, ", "))
	if len(where) > 0 {
		b.WriteString("\nWHERE " + strings.Join(where, "\n  AND "))
	}
	if len(plan.GroupBy) > 0 {
		cols := make([]string, len(plan.GroupBy))
		for i, g := range plan.GroupBy {
			cols[i] = sqlColRef(g)
		}
		b.WriteString("\nGROUP BY " + strings.Join(cols, ", "))
	}
	if plan.Having != nil {
		b.WriteString("\nHAVING " + plan.Having.String())
		c.add(1)
	}
	if len(plan.SortBy) > 0 {
		keys := make([]string, len(plan.SortBy))
		for i, k := range plan.SortBy {
			keys[i] = fmt.Sprintf("%d", k+1)
		}
		b.WriteString("\nORDER BY " + strings.Join(keys, ", "))
		if plan.SortDesc {
			b.WriteString(" DESC")
		}
	}
	if plan.Top > 0 {
		b.WriteString(fmt.Sprintf("\nLIMIT %d", plan.Top))
	}
	b.WriteString(";")
	return &Translation{Lang: "SQL", Text: b.String(), Constraints: c.n}, nil
}

func sqlCmp(op pred.CmpOp) string {
	if op == pred.CmpNe {
		return "<>"
	}
	return op.String()
}

func sqlColRef(r *engine.ColRef) string {
	if r.IsEvent {
		return evAlias(r.Pattern) + "." + r.Attr
	}
	return sideAlias(r.Pattern, r.Side) + "." + r.Attr
}

func selectCols(plan *engine.Plan) string {
	cols := make([]string, len(plan.Return.Items))
	for i := range plan.Return.Items {
		item := &plan.Return.Items[i]
		switch {
		case item.Ref != nil:
			cols[i] = sqlColRef(item.Ref)
		case item.Agg != nil:
			inner := "*"
			if item.Agg.Arg != nil {
				inner = sqlColRef(item.Agg.Arg)
			}
			if item.Agg.Distinct {
				inner = "DISTINCT " + inner
			}
			cols[i] = fmt.Sprintf("%s(%s) AS %s", strings.ToUpper(item.Agg.Func), inner, item.Name)
		}
	}
	return strings.Join(cols, ", ")
}

// windowString renders a window in readable form for SPL.
func windowString(w timeutil.Window) (string, string) {
	return timeutil.FormatMillis(w.From), timeutil.FormatMillis(w.To)
}

// Expressible reports whether a parsed AIQL query can be expressed in the
// join-based target languages at all.
func Expressible(src string) bool {
	q, err := parser.Parse(src)
	if err != nil {
		return false
	}
	return !q.IsAnomaly()
}

// AIQLConstraints counts the atomic constraints of an AIQL query itself:
// global constraints, entity/event constraint atoms, operation expressions,
// relationships, and having clauses. This is the AIQL side of the paper's
// "number of query constraints" metric.
func AIQLConstraints(src string) (int, error) {
	q, err := parser.Parse(src)
	if err != nil {
		return 0, err
	}
	n := 0
	for i := range q.Globals {
		g := &q.Globals[i]
		switch {
		case g.Cstr != nil:
			n += countAttrAtoms(g.Cstr)
		case g.Window != nil:
			n++
		case g.Slide != nil:
			n++
		}
	}
	// Operations and arrow edges are part of AIQL's pattern syntax, not
	// constraints the analyst writes separately — they only become explicit
	// predicates after translation, which is precisely the conciseness gap
	// the paper measures.
	countPattern := func(p *ast.EventPattern) {
		n += countAttrAtoms(p.Subj.Cstr)
		n += countAttrAtoms(p.Obj.Cstr)
		n += countAttrAtoms(p.EvtCstr)
		if p.Window != nil {
			n++
		}
	}
	switch {
	case q.Multi != nil:
		for _, p := range q.Multi.Patterns {
			countPattern(p)
		}
		n += len(q.Multi.Rels)
		if q.Multi.Having != nil {
			n++
		}
	case q.Dep != nil:
		for i := range q.Dep.Nodes {
			n += countAttrAtoms(q.Dep.Nodes[i].Cstr)
		}
	}
	return n, nil
}

func countAttrAtoms(e ast.AttrExpr) int {
	if e == nil {
		return 0
	}
	n := 0
	ast.Walk(e, func(x ast.AttrExpr) {
		if _, ok := x.(*ast.Cstr); ok {
			n++
		}
	})
	return n
}
