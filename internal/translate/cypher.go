package translate

import (
	"fmt"
	"strings"

	"aiql/internal/engine"
	"aiql/internal/pred"
	"aiql/internal/types"
)

// Cypher renders a plan as a Neo4j Cypher query: one
// (subject)-[event]->(object) relationship pattern per event pattern, with
// every AIQL shortcut expanded into explicit WHERE predicates — the
// expansion that makes the paper's Cypher corpus 2.4x–4.7x larger.
func Cypher(plan *engine.Plan) (*Translation, error) {
	if plan.Slide != nil {
		return nil, &ErrInexpressible{Lang: "Cypher", Why: "sliding windows with history states"}
	}
	c := &counter{}
	var match, where []string
	for _, pp := range plan.Patterns {
		i := pp.Idx
		match = append(match, fmt.Sprintf("(%s:%s)-[%s:EVENT]->(%s:%s)",
			subjAlias(i), entityLabel(pp.Subj.Type), evAlias(i), objAlias(i), entityLabel(pp.Obj.Type)))
		if s := opsCypher(evAlias(i), pp.Ops, c); s != "" {
			where = append(where, s)
		}
		for _, a := range pp.Agents {
			where = append(where, fmt.Sprintf("%s.agent_id = %d", evAlias(i), a))
			c.add(1)
		}
		if !pp.Window.Unbounded() {
			where = append(where, fmt.Sprintf("%s.start_time >= %d AND %s.start_time < %d",
				evAlias(i), pp.Window.From, evAlias(i), pp.Window.To))
			c.add(2)
		}
		if pp.Subj.Pred != nil {
			where = append(where, renderPredCypher(pp.Subj.Pred, subjAlias(i), c))
		}
		if pp.Obj.Pred != nil {
			where = append(where, renderPredCypher(pp.Obj.Pred, objAlias(i), c))
		}
		if pp.EvtPred != nil {
			where = append(where, renderPredCypher(pp.EvtPred, evAlias(i), c))
		}
	}
	for i := range plan.Joins {
		j := &plan.Joins[i]
		switch j.Kind {
		case engine.JoinAttr:
			where = append(where, fmt.Sprintf("%s.%s %s %s.%s",
				sideAlias(j.A, j.ASide), j.AAttr, cypherCmp(j.Op), sideAlias(j.B, j.BSide), j.BAttr))
			c.add(1)
		case engine.JoinTemporal:
			if j.TempKind == "within" {
				where = append(where, fmt.Sprintf("abs(%s.start_time - %s.start_time) <= %d",
					evAlias(j.B), evAlias(j.A), j.HiMs))
				c.add(1)
			} else if j.HiMs > 0 {
				where = append(where, fmt.Sprintf("%s.start_time - %s.start_time >= %d AND %s.start_time - %s.start_time <= %d",
					evAlias(j.B), evAlias(j.A), j.LoMs, evAlias(j.B), evAlias(j.A), j.HiMs))
				c.add(2)
			} else {
				where = append(where, fmt.Sprintf("%s.start_time < %s.start_time",
					evAlias(j.A), evAlias(j.B)))
				c.add(1)
			}
		}
	}

	var b strings.Builder
	b.WriteString("MATCH " + strings.Join(match, ",\n      "))
	if len(where) > 0 {
		b.WriteString("\nWHERE " + strings.Join(where, "\n  AND "))
	}
	b.WriteString("\nRETURN ")
	if plan.Return.Count {
		b.WriteString("count(")
		if plan.Return.Distinct {
			b.WriteString("DISTINCT ")
		}
		b.WriteString(cypherCols(plan))
		b.WriteString(")")
	} else {
		if plan.Return.Distinct {
			b.WriteString("DISTINCT ")
		}
		b.WriteString(cypherCols(plan))
	}
	if len(plan.SortBy) > 0 {
		keys := make([]string, len(plan.SortBy))
		for i, k := range plan.SortBy {
			keys[i] = plan.Return.Items[k].Name
		}
		b.WriteString("\nORDER BY " + strings.Join(keys, ", "))
		if plan.SortDesc {
			b.WriteString(" DESC")
		}
	}
	if plan.Top > 0 {
		b.WriteString(fmt.Sprintf("\nLIMIT %d", plan.Top))
	}
	b.WriteString(";")
	return &Translation{Lang: "Cypher", Text: b.String(), Constraints: c.n}, nil
}

func cypherCmp(op pred.CmpOp) string {
	if op == pred.CmpNe {
		return "<>"
	}
	return op.String()
}

func cypherCols(plan *engine.Plan) string {
	cols := make([]string, len(plan.Return.Items))
	for i := range plan.Return.Items {
		item := &plan.Return.Items[i]
		switch {
		case item.Ref != nil:
			cols[i] = sqlColRef(item.Ref) + " AS " + cypherName(item.Name)
		case item.Agg != nil:
			inner := "*"
			if item.Agg.Arg != nil {
				inner = sqlColRef(item.Agg.Arg)
			}
			if item.Agg.Distinct {
				inner = "DISTINCT " + inner
			}
			cols[i] = fmt.Sprintf("%s(%s) AS %s", item.Agg.Func, inner, cypherName(item.Name))
		}
	}
	return strings.Join(cols, ", ")
}

func cypherName(n string) string {
	return strings.NewReplacer(".", "_", "(", "_", ")", "", " ", "").Replace(n)
}

func opsCypher(alias string, ops types.OpSet, c *counter) string {
	if ops == types.AllOps() {
		return ""
	}
	c.add(1)
	list := ops.Ops()
	if len(list) == 1 {
		return fmt.Sprintf("%s.optype = '%s'", alias, list[0])
	}
	vals := make([]string, len(list))
	for i, o := range list {
		vals[i] = "'" + o.String() + "'"
	}
	return fmt.Sprintf("%s.optype IN [%s]", alias, strings.Join(vals, ", "))
}

// renderPredCypher renders a predicate with Cypher string operators:
// CONTAINS / STARTS WITH / ENDS WITH stand in for SQL LIKE.
func renderPredCypher(p pred.Pred, alias string, c *counter) string {
	switch v := p.(type) {
	case *pred.Cond:
		c.add(1)
		col := alias + "." + v.Attr
		switch v.Op {
		case pred.CmpEq:
			return cypherStringMatch(col, v.Val, false)
		case pred.CmpNe:
			return "NOT (" + cypherStringMatch(col, v.Val, false) + ")"
		case pred.CmpIn, pred.CmpNotIn:
			vals := make([]string, len(v.Vals))
			for i, x := range v.Vals {
				vals[i] = "'" + x + "'"
			}
			s := fmt.Sprintf("%s IN [%s]", col, strings.Join(vals, ", "))
			if v.Op == pred.CmpNotIn {
				return "NOT (" + s + ")"
			}
			return s
		default:
			return fmt.Sprintf("%s %s '%s'", col, v.Op, v.Val)
		}
	case *pred.Not:
		return "NOT (" + renderPredCypher(v.X, alias, c) + ")"
	case *pred.And:
		parts := make([]string, len(v.Xs))
		for i, x := range v.Xs {
			parts[i] = renderPredCypher(x, alias, c)
		}
		return "(" + strings.Join(parts, " AND ") + ")"
	case *pred.Or:
		parts := make([]string, len(v.Xs))
		for i, x := range v.Xs {
			parts[i] = renderPredCypher(x, alias, c)
		}
		return "(" + strings.Join(parts, " OR ") + ")"
	}
	return "true"
}

func cypherStringMatch(col, val string, negate bool) string {
	hasLead := strings.HasPrefix(val, "%")
	hasTail := strings.HasSuffix(val, "%")
	core := strings.Trim(val, "%")
	var s string
	switch {
	case !strings.ContainsRune(val, '%'):
		s = fmt.Sprintf("%s = '%s'", col, val)
	case hasLead && hasTail:
		s = fmt.Sprintf("%s CONTAINS '%s'", col, core)
	case hasLead:
		s = fmt.Sprintf("%s ENDS WITH '%s'", col, core)
	case hasTail:
		s = fmt.Sprintf("%s STARTS WITH '%s'", col, core)
	default:
		// Interior wildcard: STARTS WITH + ENDS WITH on the two halves.
		parts := strings.SplitN(val, "%", 2)
		s = fmt.Sprintf("%s STARTS WITH '%s' AND %s ENDS WITH '%s'", col, parts[0], col, parts[1])
	}
	if negate {
		return "NOT (" + s + ")"
	}
	return s
}
