package graphstore

import (
	"context"
	"sort"
	"testing"

	"aiql/internal/gen"
	"aiql/internal/pred"
	"aiql/internal/storage"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

func smallDataset() *types.Dataset {
	return gen.Scenario(gen.Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 500, Seed: 5})
}

func TestIngestCounts(t *testing.T) {
	ds := smallDataset()
	g := New()
	g.Ingest(ds)
	if g.EventCount() != len(ds.Events) {
		t.Errorf("edges = %d, want %d", g.EventCount(), len(ds.Events))
	}
	if g.NodeCount() != len(ds.Entities) {
		t.Errorf("nodes = %d, want %d", g.NodeCount(), len(ds.Entities))
	}
}

// TestAgreesWithStore is the graph backend's core correctness property: for
// any data query, traversal must return exactly the same events as the
// partitioned store.
func TestAgreesWithStore(t *testing.T) {
	ds := smallDataset()
	g := New()
	g.Ingest(ds)
	st := storage.New(storage.Options{})
	st.Ingest(ds)

	queries := []*storage.DataQuery{
		{SubjType: types.EntityProcess, ObjType: types.EntityFile, Ops: types.NewOpSet(types.OpWrite)},
		{Agents: []int{gen.AgentDBServer}, SubjType: types.EntityProcess,
			ObjType: types.EntityNetwork, Ops: types.AllOps()},
		{Window: timeutil.Window{From: gen.DayStart(1), To: gen.DayStart(2)},
			SubjType: types.EntityProcess,
			SubjPred: pred.NewCond(types.AttrExeName, pred.CmpEq, "%sbblv.exe"),
			Ops:      types.AllOps()},
		{SubjType: types.EntityProcess,
			ObjType: types.EntityFile,
			ObjPred: pred.NewCond(types.AttrName, pred.CmpEq, "%backup1.dmp"),
			Ops:     types.AllOps()},
		{SubjType: types.EntityProcess,
			ObjType: types.EntityNetwork,
			ObjPred: pred.NewCond(types.AttrDstIP, pred.CmpEq, gen.AttackerIP),
			Ops:     types.NewOpSet(types.OpWrite, types.OpConnect)},
		{SubjType: types.EntityProcess,
			EvtPred: pred.NewCond(types.EvtAttrAmount, pred.CmpGt, "10000000"),
			Ops:     types.AllOps()},
	}
	for i, q := range queries {
		a := ids(g.Run(context.Background(), q))
		b := ids(st.Run(context.Background(), q))
		if !equal(a, b) {
			t.Errorf("query %d: graph %d events, store %d events", i, len(a), len(b))
		}
	}
}

func ids(ms []storage.Match) []types.EventID {
	out := make([]types.EventID, len(ms))
	for i, m := range ms {
		out[i] = m.Event.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal(a, b []types.EventID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestAllowedSets(t *testing.T) {
	ds := smallDataset()
	g := New()
	g.Ingest(ds)
	// Resolve sbblv's entity id, then query via the allowed set.
	var sbblv types.EntityID
	for i := range ds.Entities {
		if ds.Entities[i].Attrs[types.AttrExeName] == gen.ExeSbblv {
			sbblv = ds.Entities[i].ID
		}
	}
	if sbblv == 0 {
		t.Fatal("sbblv entity not found in scenario")
	}
	out := g.Run(context.Background(), &storage.DataQuery{
		SubjType:    types.EntityProcess,
		SubjAllowed: map[types.EntityID]struct{}{sbblv: {}},
		Ops:         types.AllOps(),
	})
	if len(out) == 0 {
		t.Fatal("allowed-set expansion found nothing")
	}
	for _, m := range out {
		if m.Event.Subject != sbblv {
			t.Fatal("allowed set leaked")
		}
	}
}

func TestResultsAreTimeSorted(t *testing.T) {
	ds := smallDataset()
	g := New()
	g.Ingest(ds)
	out := g.Run(context.Background(), &storage.DataQuery{
		SubjType: types.EntityProcess,
		ObjType:  types.EntityFile,
		Ops:      types.NewOpSet(types.OpRead),
	})
	for i := 1; i < len(out); i++ {
		if out[i-1].Event.Start > out[i].Event.Start {
			t.Fatal("graph results not in temporal order")
		}
	}
}

func TestLimit(t *testing.T) {
	ds := smallDataset()
	g := New()
	g.Ingest(ds)
	out := g.Run(context.Background(), &storage.DataQuery{
		SubjType: types.EntityProcess,
		Ops:      types.AllOps(),
		Limit:    5,
	})
	if len(out) != 5 {
		t.Errorf("limit returned %d", len(out))
	}
}

func TestEmptyCandidates(t *testing.T) {
	ds := smallDataset()
	g := New()
	g.Ingest(ds)
	out := g.Run(context.Background(), &storage.DataQuery{
		SubjType: types.EntityProcess,
		SubjPred: pred.NewCond(types.AttrExeName, pred.CmpEq, "/no/such/binary"),
		Ops:      types.AllOps(),
	})
	if len(out) != 0 {
		t.Errorf("impossible predicate matched %d events", len(out))
	}
}
