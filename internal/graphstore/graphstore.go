// Package graphstore emulates the paper's Neo4j baseline: system entities
// stored as property-graph nodes, system events as relationships
// (paper Sec. 6.1, "Neo4j databases are configured by importing system
// entities as nodes and system events as relationships").
//
// The executor reproduces the characteristic cost profile the paper
// observed: exact node-property lookups are served by a schema index, and
// pattern matching expands the adjacency lists of candidate nodes — but
// there is no spatial/temporal partitioning (every expansion filters time
// and agent per edge), no parallel scan, and, at the query layer, Cypher's
// expand-and-filter style provides no efficient hash joins (the engine is
// configured with NoHashJoin when running over this backend).
package graphstore

import (
	"context"
	"sort"

	"aiql/internal/pred"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// nodeKey addresses the node property index (exact values only, like a
// Neo4j schema index — LIKE-style patterns cannot use it).
type nodeKey struct {
	typ  types.EntityType
	attr string
	val  string
}

var indexedAttrs = map[types.EntityType][]string{
	types.EntityFile:    {types.AttrName},
	types.EntityProcess: {types.AttrExeName, types.AttrPID},
	types.EntityNetwork: {types.AttrDstIP, types.AttrSrcIP, types.AttrDstPort},
}

// Graph is the adjacency-list property graph.
type Graph struct {
	entities map[types.EntityID]*types.Entity
	byType   map[types.EntityType][]types.EntityID
	nodeIdx  map[nodeKey][]types.EntityID
	out      map[types.EntityID][]int32 // subject -> event positions
	in       map[types.EntityID][]int32 // object -> event positions
	events   []types.Event
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{
		entities: make(map[types.EntityID]*types.Entity),
		byType:   make(map[types.EntityType][]types.EntityID),
		nodeIdx:  make(map[nodeKey][]types.EntityID),
		out:      make(map[types.EntityID][]int32),
		in:       make(map[types.EntityID][]int32),
	}
}

// Ingest imports a dataset: entities become nodes, events become
// relationships.
func (g *Graph) Ingest(d *types.Dataset) {
	for i := range d.Entities {
		e := &d.Entities[i]
		if _, dup := g.entities[e.ID]; dup {
			continue
		}
		g.entities[e.ID] = e
		g.byType[e.Type] = append(g.byType[e.Type], e.ID)
		for _, attr := range indexedAttrs[e.Type] {
			if v, ok := e.Attrs[attr]; ok {
				k := nodeKey{typ: e.Type, attr: attr, val: v}
				g.nodeIdx[k] = append(g.nodeIdx[k], e.ID)
			}
		}
	}
	for i := range d.Events {
		ev := d.Events[i]
		pos := int32(len(g.events))
		g.events = append(g.events, ev)
		g.out[ev.Subject] = append(g.out[ev.Subject], pos)
		g.in[ev.Object] = append(g.in[ev.Object], pos)
	}
}

// EventCount returns the number of relationships in the graph.
func (g *Graph) EventCount() int { return len(g.events) }

// NodeCount returns the number of nodes in the graph.
func (g *Graph) NodeCount() int { return len(g.entities) }

// Scan implements the engine Backend interface. The Neo4j emulation has no
// partitioned storage to stream from — its traversal materializes, exactly
// the cost profile the paper observed — so the traversal runs on a
// background goroutine (keeping sibling scans, like the engine's per-day
// sub-queries, parallel) and the cursor serves the materialized result.
// The traversal polls ctx, so a canceled context (the bench harness's
// timeout, a disconnected client) aborts a long expansion mid-scan.
func (g *Graph) Scan(ctx context.Context, q *storage.DataQuery) storage.Cursor {
	return storage.NewAsyncCursor(ctx, func(cctx context.Context) []storage.Match {
		return g.run(cctx, q)
	})
}

// Run executes a data query with graph-traversal semantics: resolve one
// endpoint to candidate nodes (schema index for exact values, label scan
// plus property filter otherwise), then expand and filter their adjacency
// lists edge by edge. The traversal polls ctx and aborts when canceled.
func (g *Graph) Run(ctx context.Context, q *storage.DataQuery) []storage.Match {
	return g.run(ctx, q)
}

func (g *Graph) run(ctx context.Context, q *storage.DataQuery) []storage.Match {
	subjCand := g.candidates(q.SubjType, q.SubjPred, q.SubjAllowed)
	objCand := g.candidates(q.ObjType, q.ObjPred, q.ObjAllowed)
	if (subjCand != nil && len(subjCand) == 0) || (objCand != nil && len(objCand) == 0) {
		return nil
	}

	var agentSet map[int]struct{}
	if len(q.Agents) > 0 {
		agentSet = make(map[int]struct{}, len(q.Agents))
		for _, a := range q.Agents {
			agentSet[a] = struct{}{}
		}
	}

	check := func(pos int32) (storage.Match, bool) {
		ev := &g.events[pos]
		if !q.Ops.Contains(ev.Op) {
			return storage.Match{}, false
		}
		if !q.Window.Unbounded() && !q.Window.Contains(ev.Start) {
			return storage.Match{}, false
		}
		if agentSet != nil {
			if _, ok := agentSet[ev.AgentID]; !ok {
				return storage.Match{}, false
			}
		}
		subj, obj := g.entities[ev.Subject], g.entities[ev.Object]
		if subj == nil || obj == nil {
			return storage.Match{}, false
		}
		if q.SubjType != types.EntityInvalid && subj.Type != q.SubjType {
			return storage.Match{}, false
		}
		if q.ObjType != types.EntityInvalid && obj.Type != q.ObjType {
			return storage.Match{}, false
		}
		if subjCand != nil {
			if _, ok := subjCand[ev.Subject]; !ok {
				return storage.Match{}, false
			}
		} else if q.SubjPred != nil && !q.SubjPred.Eval(subj) {
			return storage.Match{}, false
		}
		if objCand != nil {
			if _, ok := objCand[ev.Object]; !ok {
				return storage.Match{}, false
			}
		} else if q.ObjPred != nil && !q.ObjPred.Eval(obj) {
			return storage.Match{}, false
		}
		if q.EvtPred != nil && !q.EvtPred.Eval(ev) {
			return storage.Match{}, false
		}
		return storage.Match{Event: ev, Subj: subj, Obj: obj}, true
	}

	var out []storage.Match
	scanned := 0
	canceled := func() bool {
		scanned++
		return scanned&4095 == 0 && ctx.Err() != nil
	}
	emitAll := func(positions []int32) bool {
		for _, pos := range positions {
			if canceled() {
				return false
			}
			if m, ok := check(pos); ok {
				out = append(out, m)
				if q.Limit > 0 && len(out) >= q.Limit {
					return false
				}
			}
		}
		return true
	}

	// Expand from the smaller candidate frontier; with no bounded frontier
	// on either side, scan every relationship.
	switch {
	case subjCand != nil && (objCand == nil || len(subjCand) <= len(objCand)):
		for _, id := range sortedIDs(subjCand) {
			if !emitAll(g.out[id]) {
				break
			}
		}
	case objCand != nil:
		for _, id := range sortedIDs(objCand) {
			if !emitAll(g.in[id]) {
				break
			}
		}
	default:
		for pos := range g.events {
			if canceled() {
				break
			}
			if m, ok := check(int32(pos)); ok {
				out = append(out, m)
				if q.Limit > 0 && len(out) >= q.Limit {
					break
				}
			}
		}
	}
	// Traversal order is node-major; restore temporal order for
	// deterministic downstream behaviour.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Event.Start != out[j].Event.Start {
			return out[i].Event.Start < out[j].Event.Start
		}
		return out[i].Event.Seq < out[j].Event.Seq
	})
	return out
}

// candidates resolves an entity predicate to candidate node IDs: an exact
// value probes the schema index, anything else label-scans nodes of the
// type and filters. nil means "unbounded" (no constraint at all).
func (g *Graph) candidates(t types.EntityType, p pred.Pred, allowed map[types.EntityID]struct{}) map[types.EntityID]struct{} {
	if allowed != nil {
		out := make(map[types.EntityID]struct{}, len(allowed))
		for id := range allowed {
			e := g.entities[id]
			if e == nil || (t != types.EntityInvalid && e.Type != t) {
				continue
			}
			if p == nil || p.Eval(e) {
				out[id] = struct{}{}
			}
		}
		return out
	}
	if p == nil || p.ConstraintCount() == 0 {
		return nil
	}
	for _, k := range pred.IndexableKeys(p) {
		if !isIndexed(t, k.Attr) {
			continue
		}
		out := make(map[types.EntityID]struct{})
		for _, val := range k.Vals {
			for _, id := range g.nodeIdx[nodeKey{typ: t, attr: k.Attr, val: val}] {
				if p.Eval(g.entities[id]) {
					out[id] = struct{}{}
				}
			}
		}
		return out
	}
	// Label scan + property filter.
	out := make(map[types.EntityID]struct{})
	for _, id := range g.byType[t] {
		if p.Eval(g.entities[id]) {
			out[id] = struct{}{}
		}
	}
	return out
}

func isIndexed(t types.EntityType, attr string) bool {
	for _, a := range indexedAttrs[t] {
		if a == attr {
			return true
		}
	}
	return false
}

func sortedIDs(set map[types.EntityID]struct{}) []types.EntityID {
	out := make([]types.EntityID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
