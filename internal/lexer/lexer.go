// Package lexer tokenizes AIQL source text. The language is small: bare
// identifiers, double-quoted string literals (which may carry SQL-LIKE '%'
// wildcards), numbers, comparison and boolean operators, dependency arrows,
// and comment-to-end-of-line with //.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
)

// Kind classifies tokens.
type Kind uint8

const (
	EOF Kind = iota
	Ident
	Number
	String
	// Punctuation / operators
	LParen    // (
	RParen    // )
	LBracket  // [
	RBracket  // ]
	Comma     // ,
	Dot       // .
	Colon     // :
	Eq        // =
	Ne        // !=
	Lt        // <
	Le        // <=
	Gt        // >
	Ge        // >=
	AndAnd    // &&
	OrOr      // ||
	Bang      // !
	Arrow     // ->
	BackArrow // <-
	Plus      // +
	Minus     // -
	Star      // *
	Slash     // /
)

var kindNames = map[Kind]string{
	EOF: "end of input", Ident: "identifier", Number: "number", String: "string",
	LParen: "'('", RParen: "')'", LBracket: "'['", RBracket: "']'",
	Comma: "','", Dot: "'.'", Colon: "':'", Eq: "'='", Ne: "'!='",
	Lt: "'<'", Le: "'<='", Gt: "'>'", Ge: "'>='", AndAnd: "'&&'",
	OrOr: "'||'", Bang: "'!'", Arrow: "'->'", BackArrow: "'<-'",
	Plus: "'+'", Minus: "'-'", Star: "'*'", Slash: "'/'",
}

// String names the kind for error messages.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", k)
}

// Token is one lexical token with its source position.
type Token struct {
	Kind Kind
	Text string
	Line int
	Col  int
}

// Is reports whether the token is an identifier equal (case-insensitively)
// to the given keyword.
func (t Token) Is(keyword string) bool {
	return t.Kind == Ident && strings.EqualFold(t.Text, keyword)
}

// Error is a lexical error with position information.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("aiql:%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lex tokenizes src, returning the full token stream terminated by an EOF
// token.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Kind == EOF {
			return toks, nil
		}
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func (l *lexer) next() (Token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	mk := func(k Kind, text string) Token {
		return Token{Kind: k, Text: text, Line: line, Col: col}
	}
	if l.pos >= len(l.src) {
		return mk(EOF, ""), nil
	}
	c := l.peek()
	switch {
	case c == '"':
		s, err := l.lexString()
		if err != nil {
			return Token{}, err
		}
		return mk(String, s), nil
	case unicode.IsDigit(rune(c)):
		return mk(Number, l.lexNumber()), nil
	case isIdentStart(c):
		return mk(Ident, l.lexIdent()), nil
	}
	l.advance()
	switch c {
	case '(':
		return mk(LParen, "("), nil
	case ')':
		return mk(RParen, ")"), nil
	case '[':
		return mk(LBracket, "["), nil
	case ']':
		return mk(RBracket, "]"), nil
	case ',':
		return mk(Comma, ","), nil
	case '.':
		return mk(Dot, "."), nil
	case ':':
		return mk(Colon, ":"), nil
	case '=':
		if l.peek() == '=' { // tolerate ==
			l.advance()
		}
		return mk(Eq, "="), nil
	case '!':
		if l.peek() == '=' {
			l.advance()
			return mk(Ne, "!="), nil
		}
		return mk(Bang, "!"), nil
	case '<':
		switch l.peek() {
		case '=':
			l.advance()
			return mk(Le, "<="), nil
		case '-':
			l.advance()
			return mk(BackArrow, "<-"), nil
		case '>':
			l.advance()
			return mk(Ne, "!="), nil
		}
		return mk(Lt, "<"), nil
	case '>':
		if l.peek() == '=' {
			l.advance()
			return mk(Ge, ">="), nil
		}
		return mk(Gt, ">"), nil
	case '&':
		if l.peek() == '&' {
			l.advance()
			return mk(AndAnd, "&&"), nil
		}
		return Token{}, l.errf("unexpected '&' (did you mean '&&'?)")
	case '|':
		if l.peek() == '|' {
			l.advance()
			return mk(OrOr, "||"), nil
		}
		return Token{}, l.errf("unexpected '|' (did you mean '||'?)")
	case '-':
		if l.peek() == '>' {
			l.advance()
			return mk(Arrow, "->"), nil
		}
		return mk(Minus, "-"), nil
	case '+':
		return mk(Plus, "+"), nil
	case '*':
		return mk(Star, "*"), nil
	case '/':
		return mk(Slash, "/"), nil
	}
	return Token{}, l.errf("unexpected character %q", string(rune(c)))
}

func (l *lexer) lexString() (string, error) {
	l.advance() // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.advance()
		switch c {
		case '"':
			return b.String(), nil
		case '\\':
			if l.pos >= len(l.src) {
				return "", l.errf("unterminated escape in string literal")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteByte(e)
			}
		case '\n':
			return "", l.errf("newline in string literal")
		default:
			b.WriteByte(c)
		}
	}
	return "", l.errf("unterminated string literal")
}

func (l *lexer) lexNumber() string {
	start := l.pos
	for l.pos < len(l.src) && (unicode.IsDigit(rune(l.peek())) || l.peek() == '.') {
		// A trailing dot followed by a non-digit belongs to the next token.
		if l.peek() == '.' && !(l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))) {
			break
		}
		l.advance()
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexIdent() string {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.peek()) {
		l.advance()
	}
	return l.src[start:l.pos]
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
