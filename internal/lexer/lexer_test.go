package lexer

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func lexOK(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex(%q): %v", src, err)
	}
	return toks
}

func TestBasicTokens(t *testing.T) {
	toks := lexOK(t, `proc p1["%cmd.exe"] start proc p2 as evt1`)
	want := []Kind{Ident, Ident, LBracket, String, RBracket, Ident, Ident, Ident, Ident, Ident, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v (%q)", i, got[i], want[i], toks[i].Text)
		}
	}
	if toks[3].Text != "%cmd.exe" {
		t.Errorf("string text = %q", toks[3].Text)
	}
}

func TestOperators(t *testing.T) {
	toks := lexOK(t, `= != < <= > >= && || ! -> <- + - * / ( ) [ ] , . :`)
	want := []Kind{Eq, Ne, Lt, Le, Gt, Ge, AndAnd, OrOr, Bang, Arrow, BackArrow,
		Plus, Minus, Star, Slash, LParen, RParen, LBracket, RBracket, Comma, Dot, Colon, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperatorAliases(t *testing.T) {
	toks := lexOK(t, `a == b <> c`)
	if toks[1].Kind != Eq {
		t.Errorf("== lexed as %v", toks[1].Kind)
	}
	if toks[3].Kind != Ne {
		t.Errorf("<> lexed as %v", toks[3].Kind)
	}
}

func TestComments(t *testing.T) {
	toks := lexOK(t, "agentid = 1 // host id; spatial constraints\nproc p")
	want := []Kind{Ident, Eq, Number, Ident, Ident, EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("comment not skipped: %v", toks)
	}
}

func TestNumbers(t *testing.T) {
	toks := lexOK(t, `0.9 4444 1.5`)
	for i, want := range []string{"0.9", "4444", "1.5"} {
		if toks[i].Kind != Number || toks[i].Text != want {
			t.Errorf("number %d = %v %q", i, toks[i].Kind, toks[i].Text)
		}
	}
	// A dot not followed by a digit belongs to the next token
	// (freq[1].attr style chains).
	toks = lexOK(t, `3.x`)
	if toks[0].Text != "3" || toks[1].Kind != Dot || toks[2].Text != "x" {
		t.Errorf("trailing dot handling: %v", toks)
	}
}

func TestStringEscapes(t *testing.T) {
	toks := lexOK(t, `"a\"b" "tab\tx" "back\\slash"`)
	if toks[0].Text != `a"b` {
		t.Errorf("escaped quote = %q", toks[0].Text)
	}
	if toks[1].Text != "tab\tx" {
		t.Errorf("escaped tab = %q", toks[1].Text)
	}
	if toks[2].Text != `back\slash` {
		t.Errorf("escaped backslash = %q", toks[2].Text)
	}
}

func TestPositions(t *testing.T) {
	toks := lexOK(t, "a = 1\n  proc p")
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("first token at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[3].Line != 2 || toks[3].Col != 3 {
		t.Errorf("proc at %d:%d, want 2:3", toks[3].Line, toks[3].Col)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`"unterminated`, "unterminated string"},
		{"\"newline\nin string\"", "newline in string"},
		{`a & b`, "did you mean '&&'"},
		{`a | b`, "did you mean '||'"},
		{`a $ b`, "unexpected character"},
	}
	for _, tc := range cases {
		_, err := Lex(tc.src)
		if err == nil {
			t.Errorf("Lex(%q) accepted", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Lex(%q) error %q does not contain %q", tc.src, err, tc.want)
		}
		var le *Error
		if !asLexError(err, &le) {
			t.Errorf("Lex(%q) error is %T, want *Error", tc.src, err)
		} else if le.Line < 1 || le.Col < 1 {
			t.Errorf("Lex(%q) error has no position: %v", tc.src, err)
		}
	}
}

func asLexError(err error, out **Error) bool {
	le, ok := err.(*Error)
	if ok {
		*out = le
	}
	return ok
}

func TestTokenIs(t *testing.T) {
	toks := lexOK(t, `FORWARD forward Return`)
	for _, tok := range toks[:3] {
		if tok.Kind != Ident {
			continue
		}
		switch tok.Text {
		case "FORWARD", "forward":
			if !tok.Is("forward") {
				t.Errorf("Is(forward) false for %q", tok.Text)
			}
		case "Return":
			if !tok.Is("return") {
				t.Errorf("Is(return) false for %q", tok.Text)
			}
		}
	}
	if toks[0].Is("backward") {
		t.Error("Is matched wrong keyword")
	}
}

func TestKindStrings(t *testing.T) {
	for k := EOF; k <= Slash; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestEmptyAndWhitespaceOnly(t *testing.T) {
	for _, src := range []string{"", "   ", "\n\t\n", "// only a comment"} {
		toks := lexOK(t, src)
		if len(toks) != 1 || toks[0].Kind != EOF {
			t.Errorf("Lex(%q) = %v, want only EOF", src, toks)
		}
	}
}

func TestFullQueryTokenizes(t *testing.T) {
	src := `
	agentid = 1
	(at "01/01/2017")
	proc p1 start proc p2["%telnet%"] as evt1
	proc p3 start ip ipp[dstport = 4444] as evt2
	with p2 = p3, evt1 before[1-2 minutes] evt2
	return p1, p2
	having freq > 2 * (freq + freq[1]) / 3`
	toks := lexOK(t, src)
	if len(toks) < 40 {
		t.Errorf("full query produced only %d tokens", len(toks))
	}
}
