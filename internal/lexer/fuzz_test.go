package lexer_test

import (
	"testing"

	"aiql/internal/lexer"
	"aiql/internal/queries"
)

// FuzzLex asserts the lexer never panics and never hands back a broken
// token stream: on success the stream is non-empty, EOF-terminated, and
// every token's position points into (or just past) the source. Seeds are
// the committed corpus under testdata/fuzz/FuzzLex — the documentation
// queries — plus the full evaluation corpus added here.
func FuzzLex(f *testing.F) {
	for _, q := range append(queries.CaseStudy(), queries.Behaviors()...) {
		f.Add(q.Src)
	}
	f.Add("")
	f.Add(`"unterminated`)
	f.Add("proc p1[\"a\\\"b\"] read file f // comment\nreturn p1")
	f.Add("a <- -> <= >= != && || ! . , : ( ) [ ] + - * /")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lexer.Lex(src)
		if err != nil {
			if toks != nil {
				t.Errorf("Lex returned both tokens and error %v", err)
			}
			return
		}
		if len(toks) == 0 {
			t.Fatal("Lex returned no tokens and no error (missing EOF)")
		}
		last := toks[len(toks)-1]
		if last.Kind != lexer.EOF {
			t.Fatalf("token stream does not end in EOF: %v", last)
		}
		for _, tok := range toks {
			if tok.Line < 1 || tok.Col < 1 {
				t.Fatalf("token %v has invalid position %d:%d", tok.Kind, tok.Line, tok.Col)
			}
			if tok.Kind != lexer.EOF && tok.Kind != lexer.String && tok.Text == "" &&
				(tok.Kind == lexer.Ident || tok.Kind == lexer.Number) {
				t.Fatalf("empty %v token at %d:%d", tok.Kind, tok.Line, tok.Col)
			}
		}
	})
}
