package concise

import (
	"testing"

	"aiql/internal/queries"
)

func TestTextMetrics(t *testing.T) {
	words, chars := TextMetrics("return p1, p2\nsort by p1")
	if words != 6 {
		t.Errorf("words = %d, want 6", words)
	}
	// 19 non-space characters ("returnp1,p2sortbyp1").
	if chars != 19 {
		t.Errorf("chars = %d, want 19", chars)
	}
	w, c := TextMetrics("")
	if w != 0 || c != 0 {
		t.Error("empty text should measure 0/0")
	}
}

func TestMeasureMultievent(t *testing.T) {
	src := `
		agentid = 1
		proc p1["%cmd.exe"] start proc p2["%osql.exe"] as evt1
		proc p3["%sqlservr%"] write file f1["%backup1.dmp"] as evt2
		with evt1 before evt2
		return distinct p1, p2, p3, f1`
	c, err := Measure("t1", src)
	if err != nil {
		t.Fatal(err)
	}
	if c.SQL == nil || c.Cypher == nil || c.SPL == nil {
		t.Fatal("expressible query got nil translations")
	}
	// The paper's core claim: every translation is larger on every metric.
	for name, m := range map[string]*Metrics{"SQL": c.SQL, "Cypher": c.Cypher, "SPL": c.SPL} {
		if m.Constraints <= c.AIQL.Constraints {
			t.Errorf("%s constraints %d <= AIQL %d", name, m.Constraints, c.AIQL.Constraints)
		}
		if m.Words <= c.AIQL.Words {
			t.Errorf("%s words %d <= AIQL %d", name, m.Words, c.AIQL.Words)
		}
		if m.Chars <= c.AIQL.Chars {
			t.Errorf("%s chars %d <= AIQL %d", name, m.Chars, c.AIQL.Chars)
		}
	}
}

func TestMeasureAnomalyHasNoTranslations(t *testing.T) {
	src := `
		agentid = 1
		(at "01/01/2017")
		window = 1 min, step = 10 sec
		proc p write ip i as evt
		return p, avg(evt.amount) as amt
		group by p
		having amt > 2 * (amt + amt[1]) / 3`
	c, err := Measure("s5", src)
	if err != nil {
		t.Fatal(err)
	}
	if c.SQL != nil || c.Cypher != nil || c.SPL != nil {
		t.Error("anomaly query should have no SQL/Cypher/SPL equivalents")
	}
	if c.AIQL.Words == 0 {
		t.Error("AIQL metrics missing")
	}
}

func TestMeasureError(t *testing.T) {
	if _, err := Measure("bad", "proc p1 frobnicate"); err == nil {
		t.Error("Measure accepted a broken query")
	}
}

// TestPaperRatiosShape validates Table 5's shape over the real behaviour
// corpus: AIQL at least 2x more concise on constraints and words against
// every target language (the paper reports >= 2.4x / 3.1x / 4.7x).
func TestPaperRatiosShape(t *testing.T) {
	var cmps []Comparison
	for _, q := range queries.Behaviors() {
		c, err := Measure(q.ID, q.Src)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		cmps = append(cmps, c)
	}
	sql := Average(cmps, func(c Comparison) *Metrics { return c.SQL })
	cy := Average(cmps, func(c Comparison) *Metrics { return c.Cypher })
	spl := Average(cmps, func(c Comparison) *Metrics { return c.SPL })

	// s5, s6 have no equivalents: 17 of 19 queries measurable.
	if sql.Queries != 17 || cy.Queries != 17 || spl.Queries != 17 {
		t.Errorf("measurable queries = %d/%d/%d, want 17", sql.Queries, cy.Queries, spl.Queries)
	}
	for name, r := range map[string]Ratios{"SQL": sql, "Cypher": cy, "SPL": spl} {
		if r.Constraints < 2.0 {
			t.Errorf("%s constraint ratio %.2f below 2x", name, r.Constraints)
		}
		if r.Words < 2.0 {
			t.Errorf("%s word ratio %.2f below 2x", name, r.Words)
		}
		if r.Chars < 2.5 {
			t.Errorf("%s char ratio %.2f below 2.5x", name, r.Chars)
		}
	}
}

func TestAverageSkipsUnmeasurable(t *testing.T) {
	cmps := []Comparison{
		{ID: "a", AIQL: Metrics{Constraints: 2, Words: 10, Chars: 50},
			SQL: &Metrics{Constraints: 6, Words: 30, Chars: 150}},
		{ID: "b", AIQL: Metrics{Constraints: 3, Words: 10, Chars: 50}}, // no SQL
	}
	r := Average(cmps, func(c Comparison) *Metrics { return c.SQL })
	if r.Queries != 1 {
		t.Errorf("queries = %d, want 1", r.Queries)
	}
	if r.Constraints != 3.0 || r.Words != 3.0 || r.Chars != 3.0 {
		t.Errorf("ratios = %+v, want 3x everywhere", r)
	}
	empty := Average(nil, func(c Comparison) *Metrics { return c.SQL })
	if empty.Queries != 0 || empty.Constraints != 0 {
		t.Error("empty average should be zero")
	}
}
