// Package concise computes the paper's conciseness metrics (Sec. 6.4):
// number of query constraints, number of words, and number of characters
// excluding spaces, for an AIQL query and its SQL / Cypher / SPL
// equivalents.
package concise

import (
	"strings"
	"unicode"

	"aiql/internal/translate"
)

// Metrics are the three conciseness measurements for one query text.
type Metrics struct {
	Constraints int
	Words       int
	Chars       int
}

// TextMetrics computes word and character counts of a query text.
// Characters exclude all whitespace, as in the paper.
func TextMetrics(text string) (words, chars int) {
	words = len(strings.Fields(text))
	for _, r := range text {
		if !unicode.IsSpace(r) {
			chars++
		}
	}
	return words, chars
}

// Comparison is the full conciseness record for one attack behaviour.
type Comparison struct {
	ID     string
	AIQL   Metrics
	SQL    *Metrics // nil where the language cannot express the query
	Cypher *Metrics
	SPL    *Metrics
}

// Measure translates an AIQL query and measures all four languages.
func Measure(id, aiqlSrc string) (Comparison, error) {
	cmpr := Comparison{ID: id}
	n, err := translate.AIQLConstraints(aiqlSrc)
	if err != nil {
		return cmpr, err
	}
	w, ch := TextMetrics(aiqlSrc)
	cmpr.AIQL = Metrics{Constraints: n, Words: w, Chars: ch}

	sql, cypher, spl, err := translate.All(aiqlSrc)
	if err != nil {
		return cmpr, err
	}
	if sql != nil {
		w, ch := TextMetrics(sql.Text)
		cmpr.SQL = &Metrics{Constraints: sql.Constraints, Words: w, Chars: ch}
	}
	if cypher != nil {
		w, ch := TextMetrics(cypher.Text)
		cmpr.Cypher = &Metrics{Constraints: cypher.Constraints, Words: w, Chars: ch}
	}
	if spl != nil {
		w, ch := TextMetrics(spl.Text)
		cmpr.SPL = &Metrics{Constraints: spl.Constraints, Words: w, Chars: ch}
	}
	return cmpr, nil
}

// Ratios is the paper's Table 5: average improvement of AIQL over each
// target language across a query corpus.
type Ratios struct {
	Constraints float64
	Words       float64
	Chars       float64
	Queries     int
}

// Average computes per-language average ratios (other/AIQL) over the
// comparisons in which the other language could express the query.
func Average(cmps []Comparison, pick func(Comparison) *Metrics) Ratios {
	var r Ratios
	for _, c := range cmps {
		other := pick(c)
		if other == nil || c.AIQL.Constraints == 0 || c.AIQL.Words == 0 || c.AIQL.Chars == 0 {
			continue
		}
		r.Constraints += float64(other.Constraints) / float64(c.AIQL.Constraints)
		r.Words += float64(other.Words) / float64(c.AIQL.Words)
		r.Chars += float64(other.Chars) / float64(c.AIQL.Chars)
		r.Queries++
	}
	if r.Queries > 0 {
		r.Constraints /= float64(r.Queries)
		r.Words /= float64(r.Queries)
		r.Chars /= float64(r.Queries)
	}
	return r
}
