// Package cluster is the networked scatter/gather tier: a coordinator
// aiqld fans each data query out over HTTP to worker aiqld shards and
// merges their NDJSON row streams back into the engine's cursor contract.
//
// Where internal/mpp emulates the paper's master/data-node deployment
// (Sec. 3.2, Fig. 7) in-process over local stores, this package runs it as
// a real multi-process topology: workers are ordinary store-backed aiqld
// processes exposing a streaming /scan endpoint, and the coordinator is an
// engine.Backend whose Scan
//
//   - eliminates workers whose shards provably hold no matching events,
//     using the same (agent, day) placement model the in-process cluster
//     uses (mpp.Placement.Shards) — a spatially and temporally constrained
//     query contacts only the shards that can answer it;
//   - POSTs the synthesized data query (predicates, allow-sets, window,
//     limit — everything constrained execution pushed down) to each
//     surviving worker;
//   - gathers the row streams in shard order through remote cursors, so
//     the engine above sees one ordinary storage.Cursor.
//
// Context cancellation propagates: canceling the engine's context aborts
// every in-flight worker request. Worker failures — connection refused,
// non-200, a stream dying mid-flight — surface as a typed *PartialError
// with per-worker detail, never as a silently short result.
package cluster

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"aiql/internal/mpp"
	"aiql/internal/obs"
	"aiql/internal/storage"
	"aiql/internal/trace"
	"aiql/internal/types"
)

// Options configure a Coordinator.
type Options struct {
	// Placement is the data-distribution model; the coordinator prunes and
	// scatters with it. The zero value is mpp.ArrivalOrder, which
	// round-robins ingest and disables worker elimination (every scan fans
	// out to all workers); pass mpp.SemanticsAware — as aiqld does by
	// default — for the paper's (agent, day) model and pre-fan-out pruning.
	Placement mpp.Placement
	// Client issues the worker HTTP requests. Defaults to a client with
	// sensible connection pooling and no overall timeout (scans stream
	// indefinitely; cancellation comes from the request context).
	Client *http.Client
	// Replicas is the copy count per home shard. The default (0 or 1) is
	// the pre-replication topology: each shard lives on exactly one
	// worker. 2 turns on R=2 replication — scatter ingest dual-writes each
	// home shard to its primary and to the next worker in ring order
	// (mpp.Placement.Replica), and /scan fan-out fails over to the replica
	// before declaring a partial failure. Requires mpp.SemanticsAware
	// placement (ArrivalOrder has no home shard to replicate) and at least
	// two workers. Values above 2 are rejected.
	Replicas int
	// SubscribeRetries bounds how many times a rule subscription's worker
	// stream is re-dialed after a mid-stream failure before the merged
	// stream fails (resuming with ?since= so no emission is lost or
	// duplicated). Defaults to 2 when Replicas > 1, else 0 — a
	// single-copy cluster keeps its fail-fast semantics.
	SubscribeRetries int
	// RetryDelay spaces subscription re-dials (default 250ms).
	RetryDelay time.Duration
}

// Coordinator fans data queries out to worker shards. It implements
// engine.Backend; worker i serves shard i of the placement.
type Coordinator struct {
	workers   []string
	placement mpp.Placement
	client    *http.Client
	replicas  int
	// epoch is this coordinator process's replication-stream nonce: batch
	// tags are (epoch, shard, seq), so a restarted coordinator's sequence
	// numbers can never collide with a previous life's.
	epoch      string
	subRetries int
	retryDelay time.Duration

	scans    atomic.Uint64
	requests atomic.Uint64
	pruned   atomic.Uint64
	failures atomic.Uint64
	ingests  atomic.Uint64
	// scattered counts events scattered so far; it rotates the round-robin
	// start across batches under ArrivalOrder so a stream of small /ingest
	// batches stays balanced instead of piling onto shard 0.
	scattered atomic.Uint64
	// failovers counts scans served by a replica after the primary failed
	// mid-stream; degraded counts ingests where exactly one of a shard's
	// two copies landed; ingestRetries counts re-posted ingest requests.
	failovers     atomic.Uint64
	degraded      atomic.Uint64
	ingestRetries atomic.Uint64

	// rseqMu guards rseq, the per-shard replication batch sequence.
	rseqMu sync.Mutex
	rseq   map[int]uint64

	// Continuous-query state (rules.go): the registry of coordinator rules
	// and the merged-stream counters.
	rulesMu         sync.Mutex
	rules           map[string]*coordRule
	ruleSeq         uint64
	mergedEmissions atomic.Uint64
}

// New creates a coordinator over worker base URLs ("http://host:port").
// The worker order is the shard assignment and must match the order used
// when the data was placed.
func New(workers []string, opts Options) (*Coordinator, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers")
	}
	urls := make([]string, len(workers))
	seen := make(map[string]int, len(workers))
	for i, w := range workers {
		for len(w) > 0 && w[len(w)-1] == '/' {
			w = w[:len(w)-1]
		}
		if w == "" {
			return nil, fmt.Errorf("cluster: empty worker URL at index %d", i)
		}
		if j, dup := seen[w]; dup {
			// Two shards mapped to one process would silently halve the
			// cluster: the worker identifies as one shard and every scan
			// routed to the other would be rejected (or worse, under
			// ArrivalOrder, double-counted).
			return nil, fmt.Errorf("cluster: duplicate worker URL %q at indexes %d and %d", w, j, i)
		}
		seen[w] = i
		urls[i] = w
	}
	switch {
	case opts.Replicas > 2:
		return nil, fmt.Errorf("cluster: replication factor %d not supported (max 2)", opts.Replicas)
	case opts.Replicas == 2 && opts.Placement != mpp.SemanticsAware:
		return nil, fmt.Errorf("cluster: replication requires the semantics-aware placement (%s has no home shard to replicate)", opts.Placement)
	case opts.Replicas == 2 && len(urls) < 2:
		return nil, fmt.Errorf("cluster: replication factor 2 needs at least 2 workers, have %d", len(urls))
	}
	replicas := opts.Replicas
	if replicas < 1 {
		replicas = 1
	}
	subRetries := opts.SubscribeRetries
	if subRetries == 0 && replicas > 1 {
		subRetries = 2
	}
	retryDelay := opts.RetryDelay
	if retryDelay == 0 {
		retryDelay = 250 * time.Millisecond
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	var nonce [8]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		return nil, fmt.Errorf("cluster: epoch nonce: %w", err)
	}
	return &Coordinator{
		workers:    urls,
		placement:  opts.Placement,
		client:     client,
		replicas:   replicas,
		epoch:      hex.EncodeToString(nonce[:]),
		subRetries: subRetries,
		retryDelay: retryDelay,
		rseq:       make(map[int]uint64),
	}, nil
}

// Replicas returns the configured copy count per home shard (1 or 2).
func (c *Coordinator) Replicas() int { return c.replicas }

// Workers returns the worker base URLs in shard order.
func (c *Coordinator) Workers() []string { return c.workers }

// Placement returns the cluster's distribution policy.
func (c *Coordinator) Placement() mpp.Placement { return c.placement }

// SplitDays implements engine.DaySplitting: a coordinator scan pays one
// HTTP fan-out, so the engine must hand it whole windows — the coordinator
// prunes workers from the full window and each worker's local store still
// prunes partitions per day.
func (c *Coordinator) SplitDays() bool { return false }

// Scan implements engine.Backend: eliminate workers the placement proves
// irrelevant, fan the query out to the rest, and gather their streams in
// shard order. The returned cursor reports *PartialError if any contacted
// worker fails.
func (c *Coordinator) Scan(ctx context.Context, q *storage.DataQuery) storage.Cursor {
	c.scans.Add(1)
	targets := c.placement.Targets(len(c.workers), q)
	c.pruned.Add(uint64(len(c.workers) - len(targets)))
	wq, err := EncodeQuery(q)
	if err != nil {
		return storage.NewErrCursor(err)
	}
	body, err := json.Marshal(wq)
	if err != nil {
		return storage.NewErrCursor(err)
	}
	// Under a trace, the fan-out gets a "gather" span and each worker leg
	// hangs off it (remote.go); the span ends when the gather cursor closes,
	// so its duration covers the whole merge.
	gspan := obs.SpanFromContext(ctx).Child("gather")
	gspan.Add("workers_pruned", int64(len(c.workers)-len(targets)))
	cctx, cancel := context.WithCancel(ctx)
	if gspan != nil {
		cctx = obs.WithSpan(cctx, gspan)
	}
	cs := make([]storage.Cursor, len(targets))
	for i, shard := range targets {
		c.requests.Add(1)
		if c.replicas > 1 {
			// Replicated: the worker's store also holds its neighbour
			// shard's copy, so the query carries a home-shard filter —
			// which makes the body per-shard — and the cursor fails over
			// to the replica before surfacing a worker error.
			swq := *wq
			swq.Shard, swq.NShards = shard, len(c.workers)
			sbody, err := json.Marshal(&swq)
			if err != nil {
				cancel()
				return storage.NewErrCursor(err)
			}
			cs[i] = newFailoverCursor(cctx, c, shard, sbody)
		} else {
			cs[i] = newRemoteCursor(cctx, c.client, c.workers[shard], shard, shard, body)
		}
	}
	return &gatherCursor{
		coord:   c,
		cancel:  cancel,
		cs:      cs,
		workers: len(c.workers),
		limit:   q.Limit,
		span:    gspan,
		traceID: obs.TraceID(ctx),
	}
}

// Run is the materializing adapter over Scan, mirroring the other backends.
// The error is the gathered cursor's (typically a *PartialError).
// Canceling ctx propagates into the in-flight worker requests.
func (c *Coordinator) Run(ctx context.Context, q *storage.DataQuery) ([]storage.Match, error) {
	cur := c.Scan(ctx, q)
	defer cur.Close()
	out := storage.Drain(cur)
	return out, cur.Err()
}

// Ingest scatters a dataset across the workers: events go to their home
// shard under the coordinator's placement (round-robin under
// mpp.ArrivalOrder), entities are broadcast to every worker — the same
// dimension-table replication the in-process cluster applies. Every
// shard's batch carries a replication tag (epoch, shard, seq), so the
// worker-side apply is idempotent and a transient failure is retried
// without double-counting events. Under Replicas: 2 each batch posts to
// the shard's primary and its ring-successor replica with the same tag; a
// shard fails only when both copies fail, and a shard that landed on only
// one copy counts as degraded, not failed (the missing copy catches up
// from the survivor's WAL). Any shard failure returns a *PartialError
// naming the shards that did not land.
func (c *Coordinator) Ingest(ctx context.Context, ds *types.Dataset) error {
	c.ingests.Add(1)
	n := len(c.workers)
	offset := c.scattered.Add(uint64(len(ds.Events))) - uint64(len(ds.Events))
	shards := c.placement.Scatter(ds.Events, n, offset)
	// One tag per home shard, allocated up front so concurrent Ingest
	// calls get non-overlapping sequences.
	tags := make([]storage.ReplTag, n)
	c.rseqMu.Lock()
	for s := 0; s < n; s++ {
		c.rseq[s]++
		tags[s] = storage.ReplTag{Epoch: c.epoch, Shard: s, Seq: c.rseq[s]}
	}
	c.rseqMu.Unlock()

	errs := make([]*WorkerError, n)
	var wg sync.WaitGroup
	for i := range c.workers {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			d := types.NewDataset(ds.Entities, shards[s])
			perr := c.postIngest(ctx, s, s, d, tags[s], "primary")
			replica := -1
			if c.replicas > 1 {
				replica = c.placement.Replica(s, n)
			}
			if replica < 0 {
				if perr != nil {
					errs[s] = &WorkerError{Worker: c.workers[s], Shard: s, Err: perr}
				}
				return
			}
			rerr := c.postIngest(ctx, s, replica, d, tags[s], "replica")
			switch {
			case perr == nil && rerr == nil:
			case perr != nil && rerr != nil:
				errs[s] = &WorkerError{Worker: c.workers[s], Shard: s,
					Err: fmt.Errorf("both copies failed: primary: %v; replica (%s): %v", perr, c.workers[replica], rerr)}
			default:
				// One copy landed: the batch is durable and queryable; the
				// missing copy is a catch-up away, not a data loss.
				c.degraded.Add(1)
			}
		}(i)
	}
	wg.Wait()
	var failed []*WorkerError
	for _, e := range errs {
		if e != nil {
			failed = append(failed, e)
		}
	}
	if len(failed) > 0 {
		c.failures.Add(uint64(len(failed)))
		return &PartialError{Op: "ingest", Workers: n, Contacted: n, TraceID: obs.TraceID(ctx), Failed: failed}
	}
	return nil
}

// postIngest posts one shard's batch to one worker, retrying once on a
// transient failure (transport error or 5xx status). The retry is safe
// because the tag makes the worker-side apply idempotent: a response lost
// after the worker applied the batch re-posts as a no-op.
func (c *Coordinator) postIngest(ctx context.Context, shard, worker int, ds *types.Dataset, tag storage.ReplTag, role string) error {
	var err error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			c.ingestRetries.Add(1)
		}
		err = c.ingestWorker(ctx, worker, ds, tag, role)
		if err == nil || ctx.Err() != nil || !retryableIngest(err) {
			return err
		}
	}
	return err
}

// ingestStatusError is a non-200 /ingest response; retryableIngest treats
// 5xx as transient and 4xx as permanent.
type ingestStatusError struct {
	code int
	msg  string
}

func (e *ingestStatusError) Error() string {
	return fmt.Sprintf("ingest returned status %d: %s", e.code, e.msg)
}

func retryableIngest(err error) bool {
	if se, ok := err.(*ingestStatusError); ok {
		return se.code >= 500
	}
	return true // transport-level failure: connection refused/reset, EOF
}

func (c *Coordinator) ingestWorker(ctx context.Context, worker int, ds *types.Dataset, tag storage.ReplTag, role string) error {
	var buf bytes.Buffer
	if err := trace.Write(&buf, ds); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.workers[worker]+"/ingest", &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if id := obs.TraceID(ctx); id != "" {
		req.Header.Set(obs.TraceIDHeader, id)
	}
	req.Header.Set("X-Aiql-Repl-Epoch", tag.Epoch)
	req.Header.Set("X-Aiql-Repl-Shard", fmt.Sprint(tag.Shard))
	req.Header.Set("X-Aiql-Repl-Seq", fmt.Sprint(tag.Seq))
	req.Header.Set("X-Aiql-Repl-Role", role)
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return &ingestStatusError{code: resp.StatusCode, msg: string(bytes.TrimSpace(msg))}
	}
	return nil
}

// Stats is a snapshot of the coordinator's scatter/gather counters.
type Stats struct {
	Workers        int    `json:"workers"`
	Placement      string `json:"placement"`
	Replicas       int    `json:"replicas"`
	Scans          uint64 `json:"scans"`
	WorkerRequests uint64 `json:"worker_requests"`
	WorkersPruned  uint64 `json:"workers_pruned"`
	WorkerFailures uint64 `json:"worker_failures"`
	IngestBatches  uint64 `json:"ingest_batches"`
	// Failovers counts scans a replica served after the primary failed;
	// DegradedIngests counts shard batches that landed on only one of
	// their two copies; IngestRetries counts re-posted ingest requests.
	Failovers       uint64 `json:"failovers"`
	DegradedIngests uint64 `json:"degraded_ingests"`
	IngestRetries   uint64 `json:"ingest_retries"`
}

// Stats returns the coordinator's cumulative counters. WorkersPruned counts
// workers eliminated before fan-out across all scans: WorkerRequests +
// WorkersPruned == Scans * Workers.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Workers:         len(c.workers),
		Placement:       c.placement.String(),
		Replicas:        c.replicas,
		Scans:           c.scans.Load(),
		WorkerRequests:  c.requests.Load(),
		WorkersPruned:   c.pruned.Load(),
		WorkerFailures:  c.failures.Load(),
		IngestBatches:   c.ingests.Load(),
		Failovers:       c.failovers.Load(),
		DegradedIngests: c.degraded.Load(),
		IngestRetries:   c.ingestRetries.Load(),
	}
}

// gatherCursor concatenates the remote cursors in shard order, mirroring
// the in-process cluster's segment gather. A sub-cursor failure aborts the
// gather: remaining workers are canceled and the error surfaces as a
// *PartialError carrying every worker failure observed.
type gatherCursor struct {
	coord   *Coordinator
	cancel  context.CancelFunc
	cs      []storage.Cursor
	workers int
	cur     int
	limit   int
	emitted int
	span    *obs.Span // the scan's "gather" span; nil when untraced
	traceID string
	err     error
	done    bool
}

func (g *gatherCursor) Next(batch []storage.Match) int {
	if g.done || len(batch) == 0 {
		return 0
	}
	want := len(batch)
	if g.limit > 0 && g.limit-g.emitted < want {
		want = g.limit - g.emitted
	}
	for want > 0 && g.cur < len(g.cs) {
		n := g.cs[g.cur].Next(batch[:want])
		if n > 0 {
			g.emitted += n
			return n
		}
		if err := g.cs[g.cur].Err(); err != nil {
			g.finish(err)
			return 0
		}
		g.cur++
	}
	g.finish(nil)
	return 0
}

func (g *gatherCursor) Err() error { return g.err }

func (g *gatherCursor) Close() { g.finish(nil) }

// finish cancels outstanding worker requests, closes every sub-cursor, and
// folds any worker errors into a single typed partial-failure error.
func (g *gatherCursor) finish(err error) {
	if g.done {
		return
	}
	g.done = true
	g.cancel()
	var failed []*WorkerError
	collect := func(e error) {
		if we, ok := e.(*WorkerError); ok {
			failed = append(failed, we)
		}
	}
	collect(err)
	for _, sub := range g.cs {
		sub.Close()
		if suberr := sub.Err(); suberr != nil && suberr != err {
			collect(suberr)
		}
	}
	switch {
	case len(failed) > 0:
		g.coord.failures.Add(uint64(len(failed)))
		g.err = &PartialError{Op: "scan", Workers: g.workers, Contacted: len(g.cs), TraceID: g.traceID, Failed: failed}
	case err != nil:
		// Not a worker failure: context cancellation or an encode error.
		g.err = err
	}
	g.span.Add("rows", int64(g.emitted))
	g.span.Add("workers_contacted", int64(len(g.cs)))
	if g.err != nil {
		g.span.Set("error", g.err.Error())
	}
	g.span.End()
}
