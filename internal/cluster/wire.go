package cluster

import (
	"fmt"

	"aiql/internal/pred"
	"aiql/internal/storage"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// WireQuery is the JSON form of a storage.DataQuery as POSTed to a worker's
// /scan endpoint. Everything the engine synthesizes crosses the wire —
// including the allow-sets and extra predicates constrained execution
// pushed down — so a worker executes exactly the data query a local scan
// would have. Operations and entity types travel as names, predicates as
// pred.Node trees; both decode into freshly compiled values on the worker.
type WireQuery struct {
	Agents   []int      `json:"agents,omitempty"`
	From     int64      `json:"from,omitempty"`
	To       int64      `json:"to,omitempty"`
	SubjType string     `json:"subj_type,omitempty"`
	ObjType  string     `json:"obj_type,omitempty"`
	SubjPred *pred.Node `json:"subj_pred,omitempty"`
	ObjPred  *pred.Node `json:"obj_pred,omitempty"`
	EvtPred  *pred.Node `json:"evt_pred,omitempty"`
	Ops      []string   `json:"ops,omitempty"`
	// SubjAllowed/ObjAllowed restrict entities to scheduler-discovered ids.
	// The Has* flags distinguish "no constraint" (absent) from "empty
	// allow-set" (a query that can match nothing): omitempty erases the
	// difference on the slice alone.
	SubjAllowed    []uint64 `json:"subj_allowed,omitempty"`
	HasSubjAllowed bool     `json:"has_subj_allowed,omitempty"`
	ObjAllowed     []uint64 `json:"obj_allowed,omitempty"`
	HasObjAllowed  bool     `json:"has_obj_allowed,omitempty"`
	Limit          int      `json:"limit,omitempty"`
	ForceScan      bool     `json:"force_scan,omitempty"`
	// Shard/NShards, when NShards > 0, ask the worker to return only rows
	// whose home shard (under the semantics-aware placement over NShards
	// workers) is Shard. A replicated worker's store holds two shards'
	// data — its own and the one it replicates — and an unfiltered scan
	// would double-count rows across the gather. The worker applies any
	// Limit after this filter.
	Shard   int `json:"shard,omitempty"`
	NShards int `json:"nshards,omitempty"`
}

// EncodeQuery converts a data query to its wire form.
func EncodeQuery(q *storage.DataQuery) (*WireQuery, error) {
	w := &WireQuery{
		Agents: q.Agents,
		From:   q.Window.From, To: q.Window.To,
		Limit:     q.Limit,
		ForceScan: q.ForceScan,
	}
	if q.SubjType != types.EntityInvalid {
		w.SubjType = q.SubjType.String()
	}
	if q.ObjType != types.EntityInvalid {
		w.ObjType = q.ObjType.String()
	}
	var err error
	if w.SubjPred, err = pred.Encode(q.SubjPred); err != nil {
		return nil, err
	}
	if w.ObjPred, err = pred.Encode(q.ObjPred); err != nil {
		return nil, err
	}
	if w.EvtPred, err = pred.Encode(q.EvtPred); err != nil {
		return nil, err
	}
	for op := types.Op(1); int(op) <= types.NumOps; op++ {
		if q.Ops.Contains(op) {
			w.Ops = append(w.Ops, op.String())
		}
	}
	w.SubjAllowed, w.HasSubjAllowed = encodeIDSet(q.SubjAllowed)
	w.ObjAllowed, w.HasObjAllowed = encodeIDSet(q.ObjAllowed)
	return w, nil
}

// DataQuery rebuilds the storage-level query on the worker side.
func (w *WireQuery) DataQuery() (*storage.DataQuery, error) {
	q := &storage.DataQuery{
		Agents:    w.Agents,
		Window:    timeutil.Window{From: w.From, To: w.To},
		Limit:     w.Limit,
		ForceScan: w.ForceScan,
	}
	var ok bool
	if w.SubjType != "" {
		if q.SubjType, ok = types.ParseEntityType(w.SubjType); !ok {
			return nil, fmt.Errorf("cluster: unknown entity type %q", w.SubjType)
		}
	}
	if w.ObjType != "" {
		if q.ObjType, ok = types.ParseEntityType(w.ObjType); !ok {
			return nil, fmt.Errorf("cluster: unknown entity type %q", w.ObjType)
		}
	}
	var err error
	if q.SubjPred, err = pred.Decode(w.SubjPred); err != nil {
		return nil, err
	}
	if q.ObjPred, err = pred.Decode(w.ObjPred); err != nil {
		return nil, err
	}
	if q.EvtPred, err = pred.Decode(w.EvtPred); err != nil {
		return nil, err
	}
	for _, name := range w.Ops {
		op, ok := types.ParseOp(name)
		if !ok {
			return nil, fmt.Errorf("cluster: unknown operation %q", name)
		}
		q.Ops = q.Ops.Add(op)
	}
	q.SubjAllowed = decodeIDSet(w.SubjAllowed, w.HasSubjAllowed)
	q.ObjAllowed = decodeIDSet(w.ObjAllowed, w.HasObjAllowed)
	return q, nil
}

func encodeIDSet(set map[types.EntityID]struct{}) ([]uint64, bool) {
	if set == nil {
		return nil, false
	}
	ids := make([]uint64, 0, len(set))
	for id := range set {
		ids = append(ids, uint64(id))
	}
	return ids, true
}

func decodeIDSet(ids []uint64, has bool) map[types.EntityID]struct{} {
	if !has {
		return nil
	}
	set := make(map[types.EntityID]struct{}, len(ids))
	for _, id := range ids {
		set[types.EntityID(id)] = struct{}{}
	}
	return set
}

// Stream record kinds on the /scan NDJSON response. The stream is
//
//	hdr (ent | row)* (end | err)
//
// Entities are interned: each distinct entity crosses the wire once, as an
// "ent" record, before the first "row" referencing it; rows then carry the
// event inline plus the subject/object entity ids. The explicit "end"
// trailer is what lets the coordinator distinguish a complete result from a
// connection that died mid-stream — a truncated stream must surface as a
// worker failure, never as a short result.
const (
	RecHdr = "hdr"
	RecEnt = "ent"
	RecRow = "row"
	RecEnd = "end"
	RecErr = "err"
)

// WireRecord is one line of a /scan response stream.
type WireRecord struct {
	Kind string `json:"kind"`
	// hdr payload.
	Shard      int    `json:"shard,omitempty"`
	Generation uint64 `json:"generation,omitempty"`
	// ent payload.
	Ent *WireEntity `json:"ent,omitempty"`
	// row payload.
	Ev   *WireEvent `json:"ev,omitempty"`
	Subj uint64     `json:"subj,omitempty"`
	Obj  uint64     `json:"obj,omitempty"`
	// end payload.
	Rows int `json:"rows,omitempty"`
	// err payload.
	Error string `json:"error,omitempty"`
}

// WireEntity mirrors types.Entity on the wire.
type WireEntity struct {
	ID      uint64            `json:"id"`
	Type    string            `json:"type"`
	AgentID int               `json:"agentid"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// NewWireEntity converts an entity for the wire.
func NewWireEntity(e *types.Entity) *WireEntity {
	return &WireEntity{ID: uint64(e.ID), Type: e.Type.String(), AgentID: e.AgentID, Attrs: e.Attrs}
}

// Entity rebuilds the entity on the coordinator side.
func (w *WireEntity) Entity() (*types.Entity, error) {
	t, ok := types.ParseEntityType(w.Type)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown entity type %q", w.Type)
	}
	return &types.Entity{ID: types.EntityID(w.ID), Type: t, AgentID: w.AgentID, Attrs: w.Attrs}, nil
}

// WireEvent mirrors types.Event on the wire.
type WireEvent struct {
	ID       uint64 `json:"id"`
	AgentID  int    `json:"agentid"`
	Subject  uint64 `json:"subject"`
	Object   uint64 `json:"object"`
	Op       string `json:"op"`
	Start    int64  `json:"start"`
	End      int64  `json:"end,omitempty"`
	Seq      uint64 `json:"seq,omitempty"`
	Amount   int64  `json:"amount,omitempty"`
	FailCode int    `json:"failcode,omitempty"`
}

// NewWireEvent converts an event for the wire.
func NewWireEvent(ev *types.Event) *WireEvent {
	return &WireEvent{
		ID: uint64(ev.ID), AgentID: ev.AgentID,
		Subject: uint64(ev.Subject), Object: uint64(ev.Object),
		Op: ev.Op.String(), Start: ev.Start, End: ev.End,
		Seq: ev.Seq, Amount: ev.Amount, FailCode: ev.FailCode,
	}
}

// Event rebuilds the event on the coordinator side.
func (w *WireEvent) Event() (*types.Event, error) {
	op, ok := types.ParseOp(w.Op)
	if !ok {
		return nil, fmt.Errorf("cluster: unknown operation %q", w.Op)
	}
	return &types.Event{
		ID: types.EventID(w.ID), AgentID: w.AgentID,
		Subject: types.EntityID(w.Subject), Object: types.EntityID(w.Object),
		Op: op, Start: w.Start, End: w.End,
		Seq: w.Seq, Amount: w.Amount, FailCode: w.FailCode,
	}, nil
}
