package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"aiql/internal/engine"
	"aiql/internal/parser"
	"aiql/internal/storage"
	"aiql/internal/stream"
)

// Continuous queries across the cluster.
//
// A coordinator rule is registered on every worker, because every shard can
// hold matching events. Single-pattern rules fan out verbatim: each worker
// matches and projects locally, and the coordinator merges the emission
// streams. Multi-pattern rules cannot join worker-locally — one tuple's
// events may live on different shards — so the coordinator decomposes the
// rule into one *raw* sub-rule per event pattern (worker rule "<id>#p<i>",
// emitting unprojected matches) and runs the sliding-window join itself,
// inside each merged subscription, with the same stream.JoinState the
// single-node matcher uses. Worker failures surface as the same typed
// *PartialError /scan produces, never as a silently short stream.

// ErrUnknownRule mirrors stream.ErrUnknownRule for coordinator rules.
var ErrUnknownRule = stream.ErrUnknownRule

// coordRule is the coordinator's registry entry for one standing rule.
type coordRule struct {
	id       string
	spec     stream.RuleSpec
	plan     *engine.Plan
	windowMs int64
}

// workerRuleIDs lists the worker-side rule ids backing this rule: the id
// itself for single-pattern rules, one per pattern otherwise.
func (cr *coordRule) workerRuleIDs() []string {
	if len(cr.plan.Patterns) == 1 {
		return []string{cr.id}
	}
	ids := make([]string, len(cr.plan.Patterns))
	for i := range ids {
		ids[i] = fmt.Sprintf("%s#p%d", cr.id, i)
	}
	return ids
}

// workerSpecs builds the worker-side rule specs backing this rule: the
// spec verbatim for single-pattern rules, one raw per-pattern sub-rule
// otherwise. Registration fans these out; a subscription keeps them so it
// can re-register on a worker that restarted and lost its rules.
func (cr *coordRule) workerSpecs() []stream.RuleSpec {
	if len(cr.plan.Patterns) == 1 {
		ws := cr.spec
		ws.ID = cr.id
		return []stream.RuleSpec{ws}
	}
	specs := make([]stream.RuleSpec, 0, len(cr.plan.Patterns))
	for i := range cr.plan.Patterns {
		pi := i
		specs = append(specs, stream.RuleSpec{
			ID:       fmt.Sprintf("%s#p%d", cr.id, i),
			Query:    cr.spec.Query,
			WindowMs: cr.spec.WindowMs,
			Backfill: cr.spec.Backfill,
			Pattern:  &pi,
		})
	}
	return specs
}

// RegisterRule compiles the rule, registers it (or its per-pattern raw
// sub-rules) on every worker, and records it in the coordinator's registry.
// If any worker fails, the registrations that did land are rolled back
// best-effort and a *PartialError reports the failures.
func (c *Coordinator) RegisterRule(ctx context.Context, spec stream.RuleSpec) (*stream.RuleInfo, error) {
	q, err := parser.Parse(spec.Query)
	if err != nil {
		return nil, err
	}
	plan, err := engine.Compile(q)
	if err != nil {
		return nil, err
	}
	if err := plan.Streamable(); err != nil {
		return nil, err
	}
	if spec.Pattern != nil {
		return nil, errors.New("cluster: raw per-pattern rules are internal to coordinator fan-out")
	}
	// Resolve the join window now, with the same default the workers apply,
	// so the coordinator-side join and the worker buffers can never expire
	// on different horizons — and so listings report the real window.
	windowMs := spec.WindowMs
	if windowMs <= 0 {
		windowMs = stream.DefaultWindow.Milliseconds()
	}

	c.rulesMu.Lock()
	id := spec.ID
	if id == "" {
		for {
			c.ruleSeq++
			id = fmt.Sprintf("cr%d", c.ruleSeq)
			if _, taken := c.rules[id]; !taken {
				break
			}
		}
	} else if _, taken := c.rules[id]; taken {
		c.rulesMu.Unlock()
		return nil, fmt.Errorf("%w: %q", stream.ErrDuplicateRule, id)
	}
	if c.rules == nil {
		c.rules = make(map[string]*coordRule)
	}
	cr := &coordRule{id: id, spec: spec, plan: plan, windowMs: windowMs}
	c.rules[id] = cr
	c.rulesMu.Unlock()

	specs := cr.workerSpecs()

	type regTarget struct {
		shard int
		id    string
	}
	var mu sync.Mutex
	var failed []*WorkerError
	var landed []regTarget
	var wg sync.WaitGroup
	for shard := range c.workers {
		for _, ws := range specs {
			wg.Add(1)
			go func(shard int, ws stream.RuleSpec) {
				defer wg.Done()
				err := c.postRule(ctx, shard, &ws)
				mu.Lock()
				if err != nil {
					failed = append(failed, &WorkerError{Worker: c.workers[shard], Shard: shard, Err: err})
				} else {
					landed = append(landed, regTarget{shard: shard, id: ws.ID})
				}
				mu.Unlock()
			}(shard, ws)
		}
	}
	wg.Wait()

	if len(failed) > 0 {
		// Roll back exactly the registrations this call created, so no
		// worker keeps matching for a rule the coordinator refused —
		// and a pre-existing worker rule that caused a duplicate-id
		// conflict is left untouched. Best-effort.
		for _, t := range landed {
			_ = c.deleteWorkerRule(context.WithoutCancel(ctx), t.shard, t.id)
		}
		c.rulesMu.Lock()
		delete(c.rules, id)
		c.rulesMu.Unlock()
		c.failures.Add(uint64(len(failed)))
		return nil, &PartialError{Op: "rules", Workers: len(c.workers), Contacted: len(c.workers), Failed: failed}
	}
	info := &stream.RuleInfo{
		ID: id, Query: spec.Query, Columns: plan.Columns(),
		Patterns: len(plan.Patterns), WindowMs: windowMs,
	}
	return info, nil
}

// DeleteRule unregisters the rule from every worker and the registry. A
// worker answering 404 counts as deleted (it never had the rule or already
// dropped it); other failures produce a *PartialError, and the registry
// entry is removed regardless so a retry cannot wedge.
func (c *Coordinator) DeleteRule(ctx context.Context, id string) error {
	c.rulesMu.Lock()
	cr, ok := c.rules[id]
	if ok {
		delete(c.rules, id)
	}
	c.rulesMu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRule, id)
	}
	var failed []*WorkerError
	var mu sync.Mutex
	var wg sync.WaitGroup
	for shard := range c.workers {
		for _, wid := range cr.workerRuleIDs() {
			wg.Add(1)
			go func(shard int, wid string) {
				defer wg.Done()
				if err := c.deleteWorkerRule(ctx, shard, wid); err != nil {
					mu.Lock()
					failed = append(failed, &WorkerError{Worker: c.workers[shard], Shard: shard, Err: err})
					mu.Unlock()
				}
			}(shard, wid)
		}
	}
	wg.Wait()
	if len(failed) > 0 {
		c.failures.Add(uint64(len(failed)))
		return &PartialError{Op: "rules", Workers: len(c.workers), Contacted: len(c.workers), Failed: failed}
	}
	return nil
}

// Rules lists the coordinator's registered rules, with matched/emitted
// counters aggregated across the workers' own listings.
func (c *Coordinator) Rules(ctx context.Context) ([]stream.RuleInfo, error) {
	c.rulesMu.Lock()
	crs := make([]*coordRule, 0, len(c.rules))
	for _, cr := range c.rules {
		crs = append(crs, cr)
	}
	c.rulesMu.Unlock()

	// One listing per worker, concurrently.
	workerInfos := make([]map[string]stream.RuleInfo, len(c.workers))
	var failed []*WorkerError
	var mu sync.Mutex
	var wg sync.WaitGroup
	for shard := range c.workers {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			infos, err := c.listWorkerRules(ctx, shard)
			if err != nil {
				mu.Lock()
				failed = append(failed, &WorkerError{Worker: c.workers[shard], Shard: shard, Err: err})
				mu.Unlock()
				return
			}
			workerInfos[shard] = infos
		}(shard)
	}
	wg.Wait()
	if len(failed) > 0 {
		c.failures.Add(uint64(len(failed)))
		return nil, &PartialError{Op: "rules", Workers: len(c.workers), Contacted: len(c.workers), Failed: failed}
	}

	out := make([]stream.RuleInfo, 0, len(crs))
	for _, cr := range crs {
		info := stream.RuleInfo{
			ID: cr.id, Query: cr.spec.Query, Columns: cr.plan.Columns(),
			Patterns: len(cr.plan.Patterns), WindowMs: cr.windowMs,
		}
		for _, infos := range workerInfos {
			for _, wid := range cr.workerRuleIDs() {
				// Seq stays zero: merged emission sequences are assigned
				// per subscription, and summing worker sequences would
				// conflate raw per-pattern matches (or per-worker
				// pre-dedup rows) with delivered emissions. Matched is the
				// honest aggregate: events that matched a pattern,
				// cluster-wide.
				if wi, ok := infos[wid]; ok {
					info.Matched += wi.Matched
					info.StateBuffered += wi.StateBuffered
					info.StateEvicted += wi.StateEvicted
					info.JoinOverflows += wi.JoinOverflows
					info.Dropped += wi.Dropped
					info.PendingDropped += wi.PendingDropped
				}
			}
		}
		out = append(out, info)
	}
	sortRuleInfos(out)
	return out, nil
}

func sortRuleInfos(infos []stream.RuleInfo) {
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
}

// StreamingStats is the coordinator-side streaming block for /stats.
func (c *Coordinator) StreamingStats() stream.Stats {
	c.rulesMu.Lock()
	rules := len(c.rules)
	c.rulesMu.Unlock()
	return stream.Stats{
		Rules:   rules,
		Emitted: c.mergedEmissions.Load(),
	}
}

// postRule registers one worker-side rule.
func (c *Coordinator) postRule(ctx context.Context, shard int, spec *stream.RuleSpec) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.workers[shard]+"/rules", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("register rule returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// deleteWorkerRule removes one worker-side rule; 404 is success.
func (c *Coordinator) deleteWorkerRule(ctx context.Context, shard int, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.workers[shard]+"/rules/"+url.PathEscape(id), nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("delete rule returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}

// listWorkerRules fetches one worker's rule listing keyed by id.
func (c *Coordinator) listWorkerRules(ctx context.Context, shard int) (map[string]stream.RuleInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.workers[shard]+"/rules", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("list rules returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var doc struct {
		Rules []stream.RuleInfo `json:"rules"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	out := make(map[string]stream.RuleInfo, len(doc.Rules))
	for _, info := range doc.Rules {
		out[info.ID] = info
	}
	return out, nil
}

// RuleStream is a merged live subscription to one coordinator rule: worker
// emission streams fanned in (joined coordinator-side for multi-pattern
// rules) and re-stamped with a per-subscription sequence. The channel
// closes when the stream ends; Err distinguishes worker failure
// (*PartialError) from a deliberate close (Reason).
type RuleStream struct {
	ch     chan stream.Emission
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	seq    uint64
	js     *stream.JoinState
	plan   *engine.Plan
	ruleID string
	// seen dedupes distinct rules across workers (workers dedupe only
	// locally); FIFO-bounded so a long-lived subscription cannot grow
	// without limit.
	seen     *stream.Dedup
	closed   string
	failed   []*WorkerError
	err      error
	coord    *Coordinator
	nworkers int // workers contacted
}

// C is the merged emission channel.
func (rs *RuleStream) C() <-chan stream.Emission { return rs.ch }

// Err reports the terminal error (typically *PartialError) once C closed.
func (rs *RuleStream) Err() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.err
}

// Reason reports a deliberate close's reason ("rule-deleted", ...) once C
// closed without error.
func (rs *RuleStream) Reason() string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.closed
}

// Close cancels the worker subscriptions and waits for the fan-in to end.
func (rs *RuleStream) Close() {
	rs.cancel()
	rs.wg.Wait()
}

// SubscribeRule opens a merged stream over every worker's emissions for the
// rule. Multi-pattern rules join worker raw sub-streams coordinator-side;
// the subscription always replays from the workers' retained rings first
// (the worker-side ?since=0), then follows live traffic.
func (c *Coordinator) SubscribeRule(ctx context.Context, id string) (*RuleStream, *stream.RuleInfo, error) {
	c.rulesMu.Lock()
	cr, ok := c.rules[id]
	c.rulesMu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownRule, id)
	}
	cctx, cancel := context.WithCancel(ctx)
	rs := &RuleStream{
		ch:       make(chan stream.Emission, 256),
		cancel:   cancel,
		plan:     cr.plan,
		ruleID:   cr.id,
		coord:    c,
		nworkers: len(c.workers),
	}
	if len(cr.plan.Patterns) > 1 {
		rs.js = stream.NewJoinState(cr.plan, cr.windowMs,
			stream.DefaultMaxStatePerRule, stream.DefaultMaxPairsPerEvent)
	}
	if cr.plan.Return.Distinct {
		rs.seen = stream.NewDedup(stream.DefaultMaxStatePerRule)
	}
	for shard := range c.workers {
		for _, ws := range cr.workerSpecs() {
			rs.wg.Add(1)
			go rs.consumeWorker(cctx, c, shard, ws)
		}
	}
	go func() {
		rs.wg.Wait()
		rs.mu.Lock()
		if len(rs.failed) > 0 {
			c.failures.Add(uint64(len(rs.failed)))
			rs.err = &PartialError{Op: "subscribe", Workers: rs.nworkers, Contacted: rs.nworkers, Failed: rs.failed}
		}
		rs.mu.Unlock()
		close(rs.ch)
	}()
	info := &stream.RuleInfo{
		ID: cr.id, Query: cr.spec.Query, Columns: cr.plan.Columns(),
		Patterns: len(cr.plan.Patterns), WindowMs: cr.windowMs,
	}
	return rs, info, nil
}

// subLine is one decoded line of a worker subscription stream: an emission,
// or one of the control records (header, closed, error).
type subLine struct {
	stream.Emission
	Columns []string `json:"columns"`
	Closed  *string  `json:"closed"`
	Error   *string  `json:"error"`
}

// errSubNotFound marks a subscribe attempt the worker answered 404: the
// worker does not know the rule — typically because it restarted and lost
// its in-memory registrations — and must be re-registered before the
// subscription can resume.
var errSubNotFound = errors.New("worker does not know the rule")

// consumeWorker keeps one worker's subscription stream flowing into the
// merge until it ends. A mid-stream failure is retried up to the
// coordinator's SubscribeRetries budget, resuming with ?since=<last seq
// delivered> so the worker's retained ring replays exactly the gap —
// emissions are neither lost nor duplicated across the reconnect. A worker
// that answers 404 (it restarted and lost its rules) is re-registered and
// the stream restarts from its fresh ring; emissions the dead ring held
// that were never delivered are gone, which is the documented R=1 coverage
// gap of worker-local rule state. When the budget is exhausted the merged
// stream fails with the usual typed *PartialError.
func (rs *RuleStream) consumeWorker(ctx context.Context, c *Coordinator, shard int, ws stream.RuleSpec) {
	defer rs.wg.Done()
	var lastSeq uint64
	retries := 0
	for {
		err := rs.streamWorker(ctx, c, shard, ws.ID, &lastSeq)
		if err == nil || ctx.Err() != nil {
			return // clean end, deliberate close, or the consumer hung up
		}
		if retries < c.subRetries {
			retries++
			if errors.Is(err, errSubNotFound) {
				// Best-effort: if the re-registration fails too, the next
				// subscribe attempt reports the real error.
				_ = c.postRule(ctx, shard, &ws)
				lastSeq = 0 // the restarted worker's ring numbers from 1
			}
			select {
			case <-time.After(c.retryDelay):
				continue
			case <-ctx.Done():
				return
			}
		}
		// Terminal. Cancel before taking the merge lock: a sibling's
		// deliver may be blocked on the output channel while holding it,
		// and the cancellation is what unblocks it.
		rs.cancel()
		rs.mu.Lock()
		rs.failed = append(rs.failed, &WorkerError{Worker: c.workers[shard], Shard: shard, Err: err})
		rs.mu.Unlock()
		return
	}
}

// streamWorker dials one worker subscription and pumps it into the merge.
// It returns nil on a clean end (deliberate close or consumer
// cancellation) and the stream failure otherwise, recording the worker
// sequence of every delivered emission in *lastSeq so a retry can resume.
func (rs *RuleStream) streamWorker(ctx context.Context, c *Coordinator, shard int, wid string, lastSeq *uint64) error {
	target := c.workers[shard] + "/subscribe/" + url.PathEscape(wid)
	if *lastSeq > 0 {
		target += "?since=" + fmt.Sprint(*lastSeq)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		if resp.StatusCode == http.StatusNotFound {
			return fmt.Errorf("%w: %s", errSubNotFound, bytes.TrimSpace(msg))
		}
		return fmt.Errorf("subscribe returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	sawHeader := false
	for sc.Scan() {
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var line subLine
		if err := json.Unmarshal(raw, &line); err != nil {
			return fmt.Errorf("malformed stream line: %w", err)
		}
		switch {
		case !sawHeader:
			if line.Columns == nil && line.Rule == "" {
				return errors.New("stream did not open with a header")
			}
			sawHeader = true
		case line.Error != nil:
			return fmt.Errorf("worker stream error: %s", *line.Error)
		case line.Closed != nil:
			// slow-consumer means the coordinator itself fell behind: that
			// is a stream failure, not a clean end. rule-deleted ends the
			// whole merged stream deliberately.
			if *line.Closed == stream.DropSlowConsumer {
				return errors.New("worker dropped the coordinator as a slow consumer")
			}
			rs.mu.Lock()
			rs.closed = *line.Closed
			rs.mu.Unlock()
			rs.cancel()
			return nil
		default:
			if !rs.deliver(ctx, shard, line.Emission) {
				return nil // canceled mid-send
			}
			if line.Emission.Seq > *lastSeq {
				*lastSeq = line.Emission.Seq
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// EOF without a closed record: the worker died mid-stream.
	return fmt.Errorf("subscription truncated: %w", io.ErrUnexpectedEOF)
}

// deliver merges one worker emission: raw matches feed the coordinator-side
// join; projected rows pass through (deduplicated again for distinct rules,
// since workers dedupe only locally). The merge lock is held across both
// sequence assignment and the channel sends, so the merged stream's Seq is
// monotonically increasing on the wire, not just at assignment. Sends block
// — TCP backpressure is the flow control — but always yield to cancellation
// (fail cancels before taking the lock, so a blocked deliver cannot wedge a
// failing sibling).
func (rs *RuleStream) deliver(ctx context.Context, shard int, em stream.Emission) bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var out []stream.Emission
	if em.Match != nil && rs.js != nil {
		backfill := em.Backfill
		rs.js.Offer(em.Pattern, em.Match.StorageMatch(), func(row []storage.Match) {
			projected := rs.plan.ProjectRow(row)
			if rs.seen != nil && !rs.seen.FirstSeen(strings.Join(projected, "\x1f")) {
				return
			}
			rs.seq++
			out = append(out, stream.Emission{
				Rule: rs.ruleID, Seq: rs.seq, Ts: stream.RowTs(row), Backfill: backfill, Row: projected,
			})
		})
	} else if em.Row != nil {
		if rs.seen != nil && !rs.seen.FirstSeen(strings.Join(em.Row, "\x1f")) {
			return true
		}
		rs.seq++
		ws := em.Seq
		sh := shard
		merged := em
		merged.Rule, merged.Seq, merged.Shard, merged.WorkerSeq = rs.ruleID, rs.seq, &sh, ws
		out = append(out, merged)
	}
	for _, m := range out {
		select {
		case rs.ch <- m:
			rs.coord.mergedEmissions.Add(1)
		case <-ctx.Done():
			return false
		}
	}
	return true
}
