package cluster_test

import (
	"math/rand"
	"testing"

	"aiql/internal/engine"
	"aiql/internal/mpp"
	"aiql/internal/queries"
	"aiql/internal/storage"
)

// TestDeploymentShapeEquivalence is the distribution-soundness property:
// for randomized queries, every deployment shape — a single store, the
// in-process MPP cluster under both placements, and the networked
// coordinator/worker cluster — returns exactly the same result set.
// Placement and distribution may only change cost, never answers.
func TestDeploymentShapeEquivalence(t *testing.T) {
	f := clusterFixture(t)

	arrival := mpp.New(4, mpp.ArrivalOrder, storage.Options{})
	arrival.Ingest(f.ds)
	semantic := mpp.New(4, mpp.SemanticsAware, storage.Options{})
	semantic.Ingest(f.ds)

	engines := []struct {
		name string
		eng  *engine.Engine
	}{
		{"single-store", engine.New(f.single, engine.Options{})},
		{"mpp-arrival-order", engine.New(arrival, engine.Options{})},
		{"mpp-semantics-aware", engine.New(semantic, engine.Options{})},
		{"cluster-coordinator", engine.New(f.coord, engine.Options{})},
	}

	rng := rand.New(rand.NewSource(77))
	trials := 20
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		src := queries.Random(rng)
		var wantKey string
		var wantRows int
		for i, e := range engines {
			res, err := e.eng.Query(src)
			if err != nil {
				t.Fatalf("trial %d [%s]: %v\nquery:\n%s", trial, e.name, err, src)
			}
			key := queries.Canonical(res.Rows)
			if i == 0 {
				wantKey, wantRows = key, len(res.Rows)
				continue
			}
			if key != wantKey {
				t.Fatalf("trial %d: %s returned %d rows, single store returned %d\nquery:\n%s",
					trial, e.name, len(res.Rows), wantRows, src)
			}
		}
	}
}
