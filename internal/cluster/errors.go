package cluster

import (
	"fmt"
	"strings"
)

// WorkerError attributes a failure to one worker shard: the HTTP request
// failed, the worker answered non-200, its stream died mid-flight, or it
// reported a scan error in its trailer.
type WorkerError struct {
	// Worker is the worker's base URL.
	Worker string
	// Shard is the worker's shard index in the cluster.
	Shard int
	// Err is the underlying failure.
	Err error
}

func (e *WorkerError) Error() string {
	return fmt.Sprintf("worker %d (%s): %v", e.Shard, e.Worker, e.Err)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// PartialError reports a scatter/gather that could not produce a complete
// answer: some workers failed while others may have already streamed rows.
// The coordinator surfaces it instead of a silently short result — in an
// attack investigation, "these shards did not answer" and "no events
// matched" are very different findings.
type PartialError struct {
	// Op is the cluster operation that failed ("scan", "ingest").
	Op string
	// Workers is the cluster size; Contacted is the post-pruning fan-out.
	Workers   int
	Contacted int
	// TraceID is the request's trace ID when the operation was traced — the
	// same ID the failed workers logged, so a partial failure can be chased
	// across every process it touched.
	TraceID string
	// Failed holds one entry per failed worker.
	Failed []*WorkerError
}

func (e *PartialError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster %s: %d of %d contacted workers failed (%d in cluster)",
		e.Op, len(e.Failed), e.Contacted, e.Workers)
	if e.TraceID != "" {
		fmt.Fprintf(&b, " [trace %s]", e.TraceID)
	}
	b.WriteString(": ")
	for i, f := range e.Failed {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(f.Error())
	}
	return b.String()
}

// Unwrap exposes the per-worker errors to errors.Is/As.
func (e *PartialError) Unwrap() []error {
	out := make([]error, len(e.Failed))
	for i, f := range e.Failed {
		out[i] = f
	}
	return out
}
