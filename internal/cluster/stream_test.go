package cluster_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"aiql/internal/cluster"
	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/mpp"
	"aiql/internal/parser"
	"aiql/internal/queries"
	"aiql/internal/server"
	"aiql/internal/storage"
	"aiql/internal/stream"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// streamWindowMs spans any test dataset: join-window expiry is exercised by
// the stream package's own tests, not the cluster parity ones.
const streamWindowMs = int64(1) << 41

// startStreamWorkers boots workers sized for corpus replay: rings large
// enough to retain every backfill emission and a rule budget covering
// per-pattern sub-rule fan-out.
func startStreamWorkers(n int) []*worker {
	ws := make([]*worker, n)
	for i := range ws {
		st := storage.New(storage.Options{})
		s := server.New(st, engine.New(st, engine.Options{}), server.Options{
			MaxRules: 1024, StreamBuffer: 1 << 17,
		})
		s.SetShard(i)
		w := &worker{store: st}
		w.srv = httptest.NewServer(s.Handler())
		ws[i] = w
	}
	return ws
}

func closeWorkers(ws []*worker) {
	for _, w := range ws {
		w.srv.Close()
	}
}

// collectEmissions reads exactly want emissions then asserts the stream has
// nothing further buffered.
func collectEmissions(t *testing.T, rs *cluster.RuleStream, want int) [][]string {
	t.Helper()
	rows := make([][]string, 0, want)
	deadline := time.After(30 * time.Second)
	for len(rows) < want {
		select {
		case em, ok := <-rs.C():
			if !ok {
				t.Fatalf("stream ended after %d of %d emissions: err=%v reason=%q", len(rows), want, rs.Err(), rs.Reason())
			}
			rows = append(rows, em.Row)
		case <-deadline:
			t.Fatalf("timed out after %d of %d emissions", len(rows), want)
		}
	}
	select {
	case em, ok := <-rs.C():
		if ok {
			t.Fatalf("extra emission beyond the batch result: %v", em.Row)
		}
	case <-time.After(50 * time.Millisecond):
	}
	return rows
}

// TestClusterStreamCorpusParity is the distributed half of the golden
// batch/stream parity criterion: every streamable corpus query, registered
// through the coordinator over 3 workers (raw per-pattern fan-out +
// coordinator-side join for multi-pattern rules) with backfill over the
// scattered dataset, emits exactly the rows the batch engine returns over
// the undivided store.
func TestClusterStreamCorpusParity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping corpus replay over the cluster")
	}
	ds := gen.Scenario(gen.Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 300, Seed: 1})
	single := storage.New(storage.Options{})
	single.Ingest(ds)
	batch := engine.New(single, engine.Options{})

	workers := startStreamWorkers(3)
	defer closeWorkers(workers)
	coord, err := cluster.New(workerURLs(workers), cluster.Options{Placement: mpp.SemanticsAware})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Ingest(context.Background(), ds); err != nil {
		t.Fatal(err)
	}

	corpus := append(queries.CaseStudy(), queries.Behaviors()...)
	streamable := 0
	for _, q := range corpus {
		plan := compileOrSkip(t, q.Src)
		if plan == nil || plan.Streamable() != nil {
			continue
		}
		streamable++
		want, err := batch.Query(q.Src)
		if err != nil {
			t.Fatalf("%s: batch execution failed: %v", q.ID, err)
		}

		info, err := coord.RegisterRule(context.Background(), stream.RuleSpec{
			ID: "parity-" + q.ID, Query: q.Src, WindowMs: streamWindowMs, Backfill: true,
		})
		if err != nil {
			t.Fatalf("%s: register: %v", q.ID, err)
		}
		rs, _, err := coord.SubscribeRule(context.Background(), info.ID)
		if err != nil {
			t.Fatalf("%s: subscribe: %v", q.ID, err)
		}
		rows := collectEmissions(t, rs, len(want.Rows))
		rs.Close()
		if got, wantKey := queries.Canonical(rows), queries.Canonical(want.Rows); got != wantKey {
			t.Errorf("%s: stream emitted a different result set than the batch engine (%d rows each)",
				q.ID, len(rows))
		}
		if err := coord.DeleteRule(context.Background(), info.ID); err != nil {
			t.Fatalf("%s: delete: %v", q.ID, err)
		}
	}
	if streamable < 20 {
		t.Fatalf("only %d corpus queries were streamable; the parity sweep is not exercising the corpus", streamable)
	}
	t.Logf("verified %d streamable corpus queries over a 3-worker cluster", streamable)
}

func compileOrSkip(t *testing.T, src string) *engine.Plan {
	t.Helper()
	q, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("corpus query no longer parses: %v", err)
	}
	plan, err := engine.Compile(q)
	if err != nil {
		t.Fatalf("corpus query no longer compiles: %v", err)
	}
	return plan
}

// TestClusterStreamCrossShardJoin pins the coordinator-side join: a
// two-pattern rule whose constituent events land on different worker shards
// still completes, which no worker-local matcher could do.
func TestClusterStreamCrossShardJoin(t *testing.T) {
	workers := startStreamWorkers(3)
	defer closeWorkers(workers)
	coord, err := cluster.New(workerURLs(workers), cluster.Options{Placement: mpp.SemanticsAware})
	if err != nil {
		t.Fatal(err)
	}

	// Two days of the same agent whose (agent, day) homes differ.
	agent := 1
	day0 := gen.DayStart(0)
	day1 := gen.DayStart(1)
	s0 := mpp.SemanticsAware.Shard(agent, timeutil.DayIndex(day0), 3)
	s1 := mpp.SemanticsAware.Shard(agent, timeutil.DayIndex(day1), 3)
	for d := 2; s0 == s1 && d < 10; d++ {
		day1 = gen.DayStart(d)
		s1 = mpp.SemanticsAware.Shard(agent, timeutil.DayIndex(day1), 3)
	}
	if s0 == s1 {
		t.Fatal("could not find two days on distinct shards")
	}

	ents := []types.Entity{
		{ID: 1, Type: types.EntityProcess, AgentID: agent, Attrs: map[string]string{types.AttrExeName: "/usr/bin/dropper", types.AttrPID: "1"}},
		{ID: 2, Type: types.EntityProcess, AgentID: agent, Attrs: map[string]string{types.AttrExeName: "/usr/bin/loader", types.AttrPID: "2"}},
		{ID: 3, Type: types.EntityFile, AgentID: agent, Attrs: map[string]string{types.AttrName: "/tmp/payload"}},
	}
	evs := []types.Event{
		{ID: 1, AgentID: agent, Subject: 1, Object: 3, Op: types.OpWrite, Start: day0 + 1000, Seq: 1},
		{ID: 2, AgentID: agent, Subject: 2, Object: 3, Op: types.OpRead, Start: day1 + 1000, Seq: 2},
	}

	info, err := coord.RegisterRule(context.Background(), stream.RuleSpec{
		Query: `proc p1 write file f as evt1
proc p2 read file f as evt2
with evt1 before evt2
return p1, p2, f`,
		WindowMs: streamWindowMs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Patterns != 2 {
		t.Fatalf("info %+v", info)
	}
	rs, _, err := coord.SubscribeRule(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if err := coord.Ingest(context.Background(), types.NewDataset(ents, evs)); err != nil {
		t.Fatal(err)
	}
	// The two events are on different shards by construction.
	if workers[s0].store.EventCount() == 0 || workers[s1].store.EventCount() == 0 {
		t.Fatalf("placement did not split the events (shards %d, %d)", s0, s1)
	}
	rows := collectEmissions(t, rs, 1)
	if got := rows[0][0] + " " + rows[0][1] + " " + rows[0][2]; got != "/usr/bin/dropper /usr/bin/loader /tmp/payload" {
		t.Errorf("joined row = %q", got)
	}
}

// TestClusterStreamWorkerFailure kills one worker mid-subscription: the
// merged stream must end with a typed *PartialError naming the shard, the
// same contract /scan failures carry.
func TestClusterStreamWorkerFailure(t *testing.T) {
	workers := startStreamWorkers(3)
	defer closeWorkers(workers)
	coord, err := cluster.New(workerURLs(workers), cluster.Options{Placement: mpp.SemanticsAware})
	if err != nil {
		t.Fatal(err)
	}
	info, err := coord.RegisterRule(context.Background(), stream.RuleSpec{
		Query: "proc p read file f return p, f", WindowMs: streamWindowMs,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := coord.SubscribeRule(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	workers[1].srv.CloseClientConnections()
	workers[1].srv.Close()
	select {
	case _, ok := <-rs.C():
		if ok {
			t.Fatal("emission from a dead cluster")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("merged stream did not end after worker death")
	}
	perr, ok := rs.Err().(*cluster.PartialError)
	if !ok {
		t.Fatalf("err = %v, want *PartialError", rs.Err())
	}
	found := false
	for _, we := range perr.Failed {
		if we.Shard == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("partial error does not name shard 1: %v", perr)
	}
}

// TestClusterRegisterRollback: if any worker refuses a rule, registration
// fails with a *PartialError and the workers that accepted roll back.
func TestClusterRegisterRollback(t *testing.T) {
	good := startStreamWorkers(2)
	defer closeWorkers(good)
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/rules" && r.Method == http.MethodPost {
			http.Error(w, `{"error":"full"}`, http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer reject.Close()
	urls := append(workerURLs(good), reject.URL)
	coord, err := cluster.New(urls, cluster.Options{Placement: mpp.SemanticsAware})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.RegisterRule(context.Background(), stream.RuleSpec{
		Query: "proc p read file f return p", WindowMs: streamWindowMs,
	})
	perr, ok := err.(*cluster.PartialError)
	if !ok {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if len(perr.Failed) != 1 || perr.Failed[0].Shard != 2 {
		t.Errorf("failures %v", perr.Failed)
	}
	// The accepting workers must have rolled back.
	for i, w := range good {
		resp, err := http.Get(w.URL() + "/rules")
		if err != nil {
			t.Fatal(err)
		}
		var listing struct {
			Rules []stream.RuleInfo `json:"rules"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(listing.Rules) != 0 {
			ids := make([]string, 0, len(listing.Rules))
			for _, ri := range listing.Rules {
				ids = append(ids, ri.ID)
			}
			sort.Strings(ids)
			t.Errorf("worker %d still holds rules %v after rollback", i, ids)
		}
	}
	// And the coordinator must not list the rule either.
	infos, err := coord.Rules(context.Background())
	if err == nil && len(infos) != 0 {
		t.Errorf("coordinator lists %d rules after failed registration", len(infos))
	}
}

// TestClusterStreamResumeAfterWorkerDrop cuts one worker's /subscribe
// stream mid-delivery on a replicated coordinator and asserts the
// subscription survives: the coordinator reconnects with ?since= and the
// merged stream still delivers every emission exactly once — no
// PartialError, no duplicates, no holes.
func TestClusterStreamResumeAfterWorkerDrop(t *testing.T) {
	var cutArmed atomic.Bool
	cutArmed.Store(true)
	ws := make([]*worker, 2)
	for i := range ws {
		st := storage.New(storage.Options{})
		s := server.New(st, engine.New(st, engine.Options{}), server.Options{
			MaxRules: 1024, StreamBuffer: 1 << 17,
		})
		s.SetShard(i)
		h := s.Handler()
		w := &worker{store: st}
		idx := i
		w.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if idx == 0 && strings.HasPrefix(r.URL.Path, "/subscribe/") && cutArmed.CompareAndSwap(true, false) {
				// First subscription on worker 0 dies after ~400 bytes —
				// past the header, inside the emission stream.
				rw = &truncatingWriter{ResponseWriter: rw, limit: 400}
			}
			h.ServeHTTP(rw, r)
		}))
		t.Cleanup(w.srv.Close)
		ws[i] = w
	}

	coord, err := cluster.New(workerURLs(ws), cluster.Options{Placement: mpp.SemanticsAware, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	const src = "proc p read file f return p, f"
	info, err := coord.RegisterRule(context.Background(), stream.RuleSpec{
		Query: src, WindowMs: streamWindowMs,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, _, err := coord.SubscribeRule(context.Background(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	ds := gen.Scenario(gen.Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 50, Seed: 3})
	single := storage.New(storage.Options{})
	single.Ingest(ds)
	want, err := engine.New(single, engine.Options{}).Query(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) < 10 {
		t.Fatalf("only %d matching rows; the cut stream would prove nothing", len(want.Rows))
	}

	if err := coord.Ingest(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	rows := collectEmissions(t, rs, len(want.Rows))
	if cutArmed.Load() {
		t.Fatal("the subscription cut was never injected")
	}
	if got, wantKey := queries.Canonical(rows), queries.Canonical(want.Rows); got != wantKey {
		t.Errorf("resumed stream emitted a different result set than the batch engine (%d vs %d rows)",
			len(rows), len(want.Rows))
	}
}
