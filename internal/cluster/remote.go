package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"aiql/internal/obs"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// remoteCursor streams one worker's /scan response as a storage.Cursor.
// The HTTP request is issued immediately on creation (on a goroutine, so
// sibling workers stream in parallel from the moment the coordinator's Scan
// returns); Next decodes rows on the consumer's goroutine, with TCP flow
// control providing the backpressure bounded channels provide locally.
//
// A stream that ends without the worker's explicit "end" trailer — the
// connection died, the worker crashed mid-scan — surfaces as an error, so a
// truncated result can never pass for a complete one.
type remoteCursor struct {
	ctx    context.Context
	cancel context.CancelFunc
	worker string
	// shard is the logical shard this cursor gathers (reported in worker
	// errors); workerIdx is the index of the worker actually contacted.
	// They differ when a failover sends a shard's query to its replica.
	shard     int
	workerIdx int

	respCh chan respOrErr
	body   io.ReadCloser
	dec    *json.Decoder

	// entities interns "ent" records: rows reference entities by id.
	entities map[types.EntityID]*types.Entity

	rows   int
	sawHdr bool
	// span is the worker leg's trace span (nil when untraced); ended with
	// the leg's row count when the cursor finishes.
	span *obs.Span
	err  error
	done bool
}

type respOrErr struct {
	resp *http.Response
	err  error
}

// newRemoteCursor starts a /scan request against one worker. ctx should be
// the coordinator's per-scan context: canceling it aborts the request (or
// the in-flight body read) promptly.
func newRemoteCursor(ctx context.Context, client *http.Client, worker string, shard, workerIdx int, body []byte) *remoteCursor {
	cctx, cancel := context.WithCancel(ctx)
	c := &remoteCursor{
		ctx:       cctx,
		cancel:    cancel,
		worker:    worker,
		shard:     shard,
		workerIdx: workerIdx,
		respCh:    make(chan respOrErr, 1),
		entities:  make(map[types.EntityID]*types.Entity),
	}
	// Each leg gets its own child span under the scan's gather span, and the
	// request carries the trace ID so the worker's logs and spans share it.
	c.span = obs.SpanFromContext(ctx).Child("worker")
	c.span.Set("worker", worker)
	c.span.Set("shard", strconv.Itoa(shard))
	traceID := obs.TraceID(ctx)
	// The goroutine sends on its own captured copy of the channel: the
	// consumer side nils c.respCh when it is done with it, and the send
	// must not observe that write. The buffer of 1 lets the goroutine exit
	// without a reader; a response arriving after the consumer gave up is
	// closed by the transport when the canceled request context unwinds.
	ch := c.respCh
	go func() {
		req, err := http.NewRequestWithContext(cctx, http.MethodPost, worker+"/scan", bytes.NewReader(body))
		if err != nil {
			ch <- respOrErr{err: err}
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", "application/x-ndjson")
		if traceID != "" {
			req.Header.Set(obs.TraceIDHeader, traceID)
		}
		resp, err := client.Do(req)
		ch <- respOrErr{resp: resp, err: err}
	}()
	return c
}

// connect waits for the response headers and validates the status line.
func (c *remoteCursor) connect() error {
	select {
	case re := <-c.respCh:
		c.respCh = nil
		if re.err != nil {
			return re.err
		}
		if re.resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(re.resp.Body, 1024))
			re.resp.Body.Close()
			return fmt.Errorf("scan returned %s: %s", re.resp.Status, bytes.TrimSpace(msg))
		}
		c.body = re.resp.Body
		c.dec = json.NewDecoder(re.resp.Body)
		return nil
	case <-c.ctx.Done():
		return c.ctx.Err()
	}
}

func (c *remoteCursor) Next(batch []storage.Match) int {
	if c.done || len(batch) == 0 {
		return 0
	}
	if c.dec == nil {
		if err := c.connect(); err != nil {
			c.fail(err)
			return 0
		}
	}
	n := 0
	for n < len(batch) {
		var rec WireRecord
		if err := c.dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				// EOF before the "end" trailer: the worker died mid-stream.
				err = fmt.Errorf("stream truncated after %d rows: %w", c.rows, io.ErrUnexpectedEOF)
			}
			c.fail(err)
			return 0
		}
		if !c.sawHdr {
			// The protocol opens every stream with a hdr record; anything
			// else means we are not talking to a worker /scan endpoint.
			if rec.Kind != RecHdr {
				c.fail(fmt.Errorf("stream opened with %q record, want %q", rec.Kind, RecHdr))
				return 0
			}
			// A worker that knows its own index (-shard flag) must be the
			// worker the coordinator contacted: answering from the wrong
			// slot means the -workers order no longer matches the order
			// the data was placed in, and every pruned query would be
			// silently wrong. The check is against the contacted worker's
			// index, not the logical shard — under replication a replica
			// legitimately answers for a shard it is not. Workers without
			// a shard label (-1) skip the check.
			if rec.Shard >= 0 && rec.Shard != c.workerIdx {
				c.fail(fmt.Errorf("worker identifies as shard %d, coordinator routed shard %d here (is -workers in placement order?)", rec.Shard, c.workerIdx))
				return 0
			}
			c.sawHdr = true
			continue
		}
		switch rec.Kind {
		case RecHdr:
			c.fail(errors.New("duplicate hdr record"))
			return 0
		case RecEnt:
			if rec.Ent == nil {
				c.fail(errors.New("malformed ent record"))
				return 0
			}
			e, err := rec.Ent.Entity()
			if err != nil {
				c.fail(err)
				return 0
			}
			c.entities[e.ID] = e
		case RecRow:
			m, err := c.decodeRow(&rec)
			if err != nil {
				c.fail(err)
				return 0
			}
			batch[n] = m
			n++
			c.rows++
		case RecEnd:
			if rec.Rows != c.rows {
				c.fail(fmt.Errorf("trailer says %d rows, stream carried %d", rec.Rows, c.rows))
				return 0
			}
			c.finish(nil)
			return n
		case RecErr:
			c.fail(fmt.Errorf("worker scan failed: %s", rec.Error))
			return 0
		default:
			c.fail(fmt.Errorf("unknown record kind %q", rec.Kind))
			return 0
		}
	}
	return n
}

func (c *remoteCursor) decodeRow(rec *WireRecord) (storage.Match, error) {
	if rec.Ev == nil {
		return storage.Match{}, errors.New("malformed row record")
	}
	ev, err := rec.Ev.Event()
	if err != nil {
		return storage.Match{}, err
	}
	subj := c.entities[types.EntityID(rec.Subj)]
	obj := c.entities[types.EntityID(rec.Obj)]
	if subj == nil || obj == nil {
		return storage.Match{}, fmt.Errorf("row references entity not sent on this stream (subj=%d obj=%d)", rec.Subj, rec.Obj)
	}
	return storage.Match{Event: ev, Subj: subj, Obj: obj}, nil
}

func (c *remoteCursor) Err() error { return c.err }

func (c *remoteCursor) Close() { c.finish(nil) }

// fail records an error, preferring the context's own error when the
// cursor was canceled — a body read that died because the caller hung up
// is a cancellation, not a worker failure.
func (c *remoteCursor) fail(err error) {
	if cerr := c.ctx.Err(); cerr != nil {
		c.finish(cerr)
		return
	}
	c.finish(&WorkerError{Worker: c.worker, Shard: c.shard, Err: err})
}

func (c *remoteCursor) finish(err error) {
	if c.done {
		return
	}
	c.done = true
	if err != nil && c.err == nil {
		c.err = err
	}
	c.span.Add("rows", int64(c.rows))
	if c.err != nil {
		c.span.Set("error", c.err.Error())
	}
	c.span.End()
	c.cancel()
	if c.body != nil {
		c.body.Close()
		c.body = nil
	}
	if c.respCh != nil {
		// The request goroutine may still be in flight; the cancel above
		// aborts it, and the buffered channel lets it exit without a reader.
		// Drain opportunistically to close the body if it already arrived.
		select {
		case re := <-c.respCh:
			if re.resp != nil {
				re.resp.Body.Close()
			}
		default:
		}
		c.respCh = nil
	}
	c.dec = nil
	c.entities = nil
}
