package cluster

import (
	"context"

	"aiql/internal/storage"
	"aiql/internal/types"
)

// failoverCursor gathers one logical shard from a replicated cluster: it
// streams from the shard's primary worker and, if that stream dies with a
// worker failure, re-issues the query against the replica. Rows already
// emitted from the failed stream are remembered by event id and filtered
// out of the retry stream, so the consumer sees each matching row exactly
// once no matter where mid-stream the primary died. A cancellation is
// never failed over — the caller hung up.
type failoverCursor struct {
	ctx    context.Context
	cancel context.CancelFunc
	coord  *Coordinator
	shard  int
	body   []byte

	// attempts lists worker indexes to try in order: primary, then
	// replica.
	attempts []int
	next     int // next attempt index to open
	cur      *remoteCursor

	// emitted records event ids already handed to the consumer; only
	// maintained while a further attempt remains (after the last attempt
	// starts there is nothing left to dedupe against).
	emitted map[types.EventID]struct{}

	err  error
	done bool
}

// newFailoverCursor builds the per-shard cursor for a replicated scan. The
// first worker request is issued immediately (like newRemoteCursor); the
// replica is contacted only on failure.
func newFailoverCursor(ctx context.Context, c *Coordinator, shard int, body []byte) *failoverCursor {
	cctx, cancel := context.WithCancel(ctx)
	attempts := []int{shard}
	if r := c.placement.Replica(shard, len(c.workers)); r >= 0 {
		attempts = append(attempts, r)
	}
	f := &failoverCursor{
		ctx:      cctx,
		cancel:   cancel,
		coord:    c,
		shard:    shard,
		body:     body,
		attempts: attempts,
	}
	if len(attempts) > 1 {
		f.emitted = make(map[types.EventID]struct{})
	}
	f.open()
	return f
}

// open starts the next attempt's stream.
func (f *failoverCursor) open() {
	w := f.attempts[f.next]
	f.next++
	f.cur = newRemoteCursor(f.ctx, f.coord.client, f.coord.workers[w], f.shard, w, f.body)
	if f.next > 1 {
		// A retry leg: the trace shows both the failed primary leg and this
		// replica leg, with the replica marked as the failover.
		f.cur.span.Set("failover", "true")
	}
}

func (f *failoverCursor) Next(batch []storage.Match) int {
	if f.done || len(batch) == 0 {
		return 0
	}
	for {
		n := f.cur.Next(batch)
		if n > 0 {
			if f.next < len(f.attempts) {
				// More attempts remain: remember what we hand out, so a
				// retry stream can skip it.
				for i := 0; i < n; i++ {
					f.emitted[batch[i].Event.ID] = struct{}{}
				}
			} else if f.next > 1 && len(f.emitted) > 0 {
				// Retry stream: drop rows the failed stream already
				// delivered. A batch can filter down to empty — loop for
				// more rather than return 0, which means exhausted.
				n = f.filter(batch, n)
				if n == 0 {
					continue
				}
			}
			return n
		}
		err := f.cur.Err()
		if err == nil {
			f.finish(nil)
			return 0
		}
		if _, isWorker := err.(*WorkerError); !isWorker || f.ctx.Err() != nil || f.next >= len(f.attempts) {
			f.finish(err)
			return 0
		}
		// The primary died mid-stream (or refused the connection); the
		// replica holds a full copy of this shard. Start over there.
		f.cur.Close()
		f.coord.failovers.Add(1)
		f.open()
	}
}

// filter compacts batch[:n] in place, dropping rows whose event id was
// already emitted by the failed stream.
func (f *failoverCursor) filter(batch []storage.Match, n int) int {
	kept := 0
	for i := 0; i < n; i++ {
		if _, dup := f.emitted[batch[i].Event.ID]; dup {
			continue
		}
		batch[kept] = batch[i]
		kept++
	}
	return kept
}

func (f *failoverCursor) Err() error { return f.err }

func (f *failoverCursor) Close() { f.finish(nil) }

func (f *failoverCursor) finish(err error) {
	if f.done {
		return
	}
	f.done = true
	if err != nil && f.err == nil {
		f.err = err
	}
	f.cancel()
	if f.cur != nil {
		f.cur.Close()
	}
	f.emitted = nil
}
