package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aiql/internal/cluster"
	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/mpp"
	"aiql/internal/queries"
	"aiql/internal/server"
	"aiql/internal/storage"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// worker is one httptest-backed aiqld worker shard.
type worker struct {
	store *storage.Store
	srv   *httptest.Server
	scans atomic.Int64
}

func (w *worker) URL() string { return w.srv.URL }

// startWorkers boots n store-backed worker servers counting /scan hits.
func startWorkers(n int) []*worker {
	ws := make([]*worker, n)
	for i := range ws {
		st := storage.New(storage.Options{})
		s := server.New(st, engine.New(st, engine.Options{}), server.Options{})
		s.SetShard(i)
		h := s.Handler()
		w := &worker{store: st}
		w.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/scan" {
				w.scans.Add(1)
			}
			h.ServeHTTP(rw, r)
		}))
		ws[i] = w
	}
	return ws
}

func workerURLs(ws []*worker) []string {
	urls := make([]string, len(ws))
	for i, w := range ws {
		urls[i] = w.URL()
	}
	return urls
}

// fixture is the shared test topology: one dataset served three ways — a
// single local store, and a 3-worker cluster ingested through the
// coordinator's scatter path. Shared across tests because scattering the
// scenario over HTTP is the expensive part.
type fixture struct {
	ds      *types.Dataset
	single  *storage.Store
	workers []*worker
	coord   *cluster.Coordinator
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func clusterFixture(t testing.TB) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		ds := gen.Scenario(gen.SmallConfig())
		single := storage.New(storage.Options{})
		single.Ingest(ds)
		workers := startWorkers(3)
		coord, err := cluster.New(workerURLs(workers), cluster.Options{Placement: mpp.SemanticsAware})
		if err != nil {
			fixErr = err
			return
		}
		if err := coord.Ingest(context.Background(), ds); err != nil {
			fixErr = err
			return
		}
		fix = &fixture{ds: ds, single: single, workers: workers, coord: coord}
	})
	if fixErr != nil {
		t.Fatalf("cluster fixture: %v", fixErr)
	}
	return fix
}

func scanDay(agent, day int) *storage.DataQuery {
	return &storage.DataQuery{
		Agents: []int{agent},
		Window: timeutil.Window{From: gen.DayStart(day), To: gen.DayStart(day + 1)},
		Ops:    types.AllOps(),
	}
}

// TestScatterIngestFollowsPlacement checks the coordinator's ingest path:
// every event lands on its placement-assigned shard, entities are
// broadcast, and nothing is lost or duplicated.
func TestScatterIngestFollowsPlacement(t *testing.T) {
	f := clusterFixture(t)
	n := len(f.workers)
	want := make([]int, n)
	for i := range f.ds.Events {
		ev := &f.ds.Events[i]
		want[mpp.SemanticsAware.Shard(ev.AgentID, timeutil.DayIndex(ev.Start), n)]++
	}
	total := 0
	for i, w := range f.workers {
		if got := w.store.EventCount(); got != want[i] {
			t.Errorf("worker %d holds %d events, placement assigns %d", i, got, want[i])
		}
		total += w.store.EventCount()
		// Entities are replicated: any entity resolvable on the single
		// store must resolve on every shard.
		if w.store.Entity(f.ds.Entities[0].ID) == nil {
			t.Errorf("worker %d is missing broadcast entity %d", i, f.ds.Entities[0].ID)
		}
	}
	if total != len(f.ds.Events) {
		t.Errorf("cluster holds %d events, dataset has %d", total, len(f.ds.Events))
	}
}

// TestCoordinatorCorpusEquivalence is the acceptance gate for the
// distributed tier: an httptest-backed coordinator with 3 workers answers
// the full evaluation corpus — all case-study and behaviour queries —
// identically to a single-node store.
func TestCoordinatorCorpusEquivalence(t *testing.T) {
	f := clusterFixture(t)
	singleEng := engine.New(f.single, engine.Options{})
	clusterEng := engine.New(f.coord, engine.Options{})

	corpus := append(queries.CaseStudy(), queries.Behaviors()...)
	if len(corpus) == 0 {
		t.Fatal("empty corpus")
	}
	for _, q := range corpus {
		want, err := singleEng.Query(q.Src)
		if err != nil {
			t.Fatalf("%s on single store: %v", q.ID, err)
		}
		got, err := clusterEng.Query(q.Src)
		if err != nil {
			t.Fatalf("%s on cluster: %v", q.ID, err)
		}
		if fmt.Sprint(got.Columns) != fmt.Sprint(want.Columns) {
			t.Errorf("%s: columns %v != %v", q.ID, got.Columns, want.Columns)
		}
		if queries.Canonical(got.Rows) != queries.Canonical(want.Rows) {
			t.Errorf("%s: cluster returned %d rows, single store %d rows (sets differ)",
				q.ID, len(got.Rows), len(want.Rows))
		}
	}
}

// TestCoordinatorPrunesWorkers proves worker elimination happens before
// fan-out: a spatially and temporally constrained scan contacts exactly
// the home shard, and the skipped workers never see a /scan request.
func TestCoordinatorPrunesWorkers(t *testing.T) {
	f := clusterFixture(t)
	n := len(f.workers)
	day := timeutil.DayIndex(gen.DayStart(1))
	home := mpp.SemanticsAware.Shard(gen.AgentWinClient, day, n)

	before := make([]int64, n)
	for i, w := range f.workers {
		before[i] = w.scans.Load()
	}
	statsBefore := f.coord.Stats()

	q := scanDay(gen.AgentWinClient, 1)
	got, err := f.coord.Run(context.Background(), q)
	if err != nil {
		t.Fatalf("constrained scan: %v", err)
	}
	if want := f.single.Run(context.Background(), q); len(got) != len(want) {
		t.Fatalf("pruned scan returned %d matches, single store %d", len(got), len(want))
	}

	statsAfter := f.coord.Stats()
	if d := statsAfter.WorkerRequests - statsBefore.WorkerRequests; d != 1 {
		t.Errorf("scan issued %d worker requests, want exactly 1", d)
	}
	if d := statsAfter.WorkersPruned - statsBefore.WorkersPruned; d != uint64(n-1) {
		t.Errorf("scan pruned %d workers, want %d", d, n-1)
	}
	for i, w := range f.workers {
		hits := w.scans.Load() - before[i]
		switch {
		case i == home && hits != 1:
			t.Errorf("home worker %d served %d scans, want 1", i, hits)
		case i != home && hits != 0:
			t.Errorf("pruned worker %d served %d scans, want 0", i, hits)
		}
	}
}

// TestUnconstrainedScanFansOutEverywhere is the pruning control: without
// spatial/temporal constraints every worker must be asked.
func TestUnconstrainedScanFansOutEverywhere(t *testing.T) {
	f := clusterFixture(t)
	before := f.coord.Stats()
	q := &storage.DataQuery{Ops: types.NewOpSet(types.OpExecute)}
	if _, err := f.coord.Run(context.Background(), q); err != nil {
		t.Fatalf("unconstrained scan: %v", err)
	}
	after := f.coord.Stats()
	if d := after.WorkerRequests - before.WorkerRequests; d != uint64(len(f.workers)) {
		t.Errorf("unconstrained scan issued %d requests, want %d", d, len(f.workers))
	}
}

// deadWorkerCluster builds a 3-worker cluster whose last worker streams a
// few valid records and then drops the connection mid-stream — the
// distributed analogue of kill -9 on a data node.
func deadWorkerCluster(t *testing.T) (*cluster.Coordinator, []*worker, int) {
	t.Helper()
	ws := startWorkers(2)
	t.Cleanup(func() {
		for _, w := range ws {
			w.srv.Close()
		}
	})
	ds := gen.Scenario(gen.Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 100, Seed: 5})

	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/scan" {
			// Accept ingest so cluster bring-up succeeds.
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "{}")
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"kind":"hdr","shard":2}`)
		fmt.Fprintln(w, `{"kind":"ent","ent":{"id":1,"type":"process","agentid":1,"attrs":{"exe_name":"x"}}}`)
		fmt.Fprintln(w, `{"kind":"row","ev":{"id":1,"agentid":1,"subject":1,"object":1,"op":"read","start":42},"subj":1,"obj":1}`)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		// Die without the end trailer: the coordinator must treat the
		// truncated stream as a worker failure, not a short result.
		panic(http.ErrAbortHandler)
	}))
	t.Cleanup(dying.Close)

	coord, err := cluster.New(append(workerURLs(ws), dying.URL), cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Ingest(context.Background(), ds); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	return coord, ws, 2
}

// TestWorkerDeathMidStreamIsTypedPartialFailure kills one worker while it
// streams and asserts the failure surfaces — through the full engine
// execution path — as a *cluster.PartialError naming the dead shard,
// rather than a hang or a silently truncated result.
func TestWorkerDeathMidStreamIsTypedPartialFailure(t *testing.T) {
	coord, ws, deadShard := deadWorkerCluster(t)
	eng := engine.New(coord, engine.Options{})

	done := make(chan struct{})
	var res *engine.Result
	var err error
	go func() {
		defer close(done)
		res, err = eng.Query("proc p read file f return p, f")
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("query hung after worker death")
	}
	if err == nil {
		t.Fatalf("query succeeded with %d rows despite a dead worker", len(res.Rows))
	}
	var partial *cluster.PartialError
	if !errors.As(err, &partial) {
		t.Fatalf("error is %T (%v), want *cluster.PartialError", err, err)
	}
	if partial.Workers != 3 || partial.Contacted != 3 {
		t.Errorf("partial error reports %d/%d workers, want 3/3", partial.Contacted, partial.Workers)
	}
	found := false
	for _, f := range partial.Failed {
		if f.Shard == deadShard {
			found = true
			if f.Worker == "" || f.Err == nil {
				t.Errorf("failed worker detail incomplete: %+v", f)
			}
		}
	}
	if !found {
		t.Errorf("partial error %v does not name dead shard %d", partial, deadShard)
	}

	// The surviving workers' stores must release every snapshot and cursor
	// the aborted fan-out opened: the coordinator cancels the remaining
	// requests, each worker's /scan handler unwinds, and its deferred
	// cursor Close drops the snapshot. The unwind is asynchronous, so poll.
	deadline := time.Now().Add(10 * time.Second)
	for _, w := range ws {
		for {
			if w.store.LiveSnapshots() == 0 && w.store.LiveCursors() == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker leaked after mid-stream death: %d snapshots, %d cursors live",
					w.store.LiveSnapshots(), w.store.LiveCursors())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestScanCancellationPropagatesToWorkers cancels a coordinator scan while
// a worker streams an endless response and asserts (a) the consumer sees
// the context error, not a worker failure, and (b) the worker's request
// context is canceled promptly — the fan-out does not keep data nodes
// scanning for an abandoned query.
func TestScanCancellationPropagatesToWorkers(t *testing.T) {
	workerCanceled := make(chan struct{})
	endless := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/scan" {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "{}")
			return
		}
		flusher, _ := w.(http.Flusher)
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"kind":"hdr","shard":0}`)
		fmt.Fprintln(w, `{"kind":"ent","ent":{"id":1,"type":"process","agentid":1,"attrs":{"exe_name":"x"}}}`)
		for i := 0; ; i++ {
			select {
			case <-r.Context().Done():
				close(workerCanceled)
				return
			case <-time.After(2 * time.Millisecond):
			}
			fmt.Fprintf(w, `{"kind":"row","ev":{"id":%d,"agentid":1,"subject":1,"object":1,"op":"read","start":%d},"subj":1,"obj":1}`+"\n", i, i)
			if flusher != nil {
				flusher.Flush()
			}
		}
	}))
	t.Cleanup(endless.Close)

	coord, err := cluster.New([]string{endless.URL}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cur := coord.Scan(ctx, &storage.DataQuery{Ops: types.AllOps()})
	defer cur.Close()
	batch := make([]storage.Match, 8)
	if n := cur.Next(batch); n == 0 {
		t.Fatalf("no rows before cancel: %v", cur.Err())
	}
	cancel()
	deadline := time.After(10 * time.Second)
	for {
		if n := cur.Next(batch); n == 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("cursor kept producing after cancel")
		default:
		}
	}
	if err := cur.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cursor error = %v, want context.Canceled", err)
	}
	select {
	case <-workerCanceled:
	case <-time.After(10 * time.Second):
		t.Fatal("worker request context never canceled")
	}
}

// TestMisorderedWorkersDetected gives the coordinator a -workers list
// whose order disagrees with the shard each worker believes it is (the
// restart-with-shuffled-urls mistake): a routed scan must fail with a
// typed error instead of silently answering from the wrong shard.
func TestMisorderedWorkersDetected(t *testing.T) {
	ws := startWorkers(2) // SetShard(0) and SetShard(1)
	t.Cleanup(func() {
		for _, w := range ws {
			w.srv.Close()
		}
	})
	// Swap the URLs: coordinator shard 0 is the worker labelled shard 1.
	coord, err := cluster.New([]string{ws[1].URL(), ws[0].URL()}, cluster.Options{Placement: mpp.SemanticsAware})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Run(context.Background(), &storage.DataQuery{Ops: types.AllOps()})
	var partial *cluster.PartialError
	if !errors.As(err, &partial) {
		t.Fatalf("misordered workers: error is %T (%v), want *cluster.PartialError", err, err)
	}
	if !strings.Contains(partial.Error(), "placement order") {
		t.Errorf("error does not explain the misordering: %v", partial)
	}
}

// TestIngestPartialFailure scatters into a cluster with one dead worker
// and asserts the typed error names it.
func TestIngestPartialFailure(t *testing.T) {
	ws := startWorkers(2)
	t.Cleanup(func() {
		for _, w := range ws {
			w.srv.Close()
		}
	})
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // connection refused from now on

	coord, err := cluster.New([]string{ws[0].URL(), ws[1].URL(), deadURL}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Scenario(gen.Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 50, Seed: 9})
	err = coord.Ingest(context.Background(), ds)
	var partial *cluster.PartialError
	if !errors.As(err, &partial) {
		t.Fatalf("ingest error is %T (%v), want *cluster.PartialError", err, err)
	}
	if partial.Op != "ingest" || len(partial.Failed) != 1 || partial.Failed[0].Shard != 2 {
		t.Errorf("unexpected partial error detail: %v", partial)
	}
}

// TestScanStatusErrorSurfacesAsWorkerError covers the non-200 path: a
// worker rejecting the scan (here: a malformed query it cannot decode)
// must produce a typed failure, not a decode hang.
func TestScanStatusErrorSurfacesAsWorkerError(t *testing.T) {
	reject := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/scan" {
			http.Error(w, `{"error":"no"}`, http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(reject.Close)
	coord, err := cluster.New([]string{reject.URL}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = coord.Run(context.Background(), &storage.DataQuery{Ops: types.AllOps()})
	var partial *cluster.PartialError
	if !errors.As(err, &partial) {
		t.Fatalf("error is %T (%v), want *cluster.PartialError", err, err)
	}
}

// truncatingWriter passes /scan bytes through (flushing each chunk so the
// client actually receives them) until limit bytes have gone out, then
// drops the connection — a data node dying while it streams its answer.
type truncatingWriter struct {
	http.ResponseWriter
	limit int
	sent  int
}

func (t *truncatingWriter) Write(p []byte) (int, error) {
	n, err := t.ResponseWriter.Write(p)
	t.sent += n
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
	if err == nil && t.sent > t.limit {
		panic(http.ErrAbortHandler)
	}
	return n, err
}

func (t *truncatingWriter) Flush() {
	if f, ok := t.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// replicatedDyingCluster is deadWorkerCluster's R=2 counterpart: three real
// store-backed workers with dual-write replication, where the last worker
// streams a real prefix of every /scan answer and then drops the
// connection. Unlike the fake dying worker above, its partial rows are
// genuine data — exactly what a failover retry must deduplicate.
func replicatedDyingCluster(t *testing.T) (*cluster.Coordinator, []*worker, *storage.Store, int) {
	t.Helper()
	const deadShard = 2
	ws := make([]*worker, 3)
	for i := range ws {
		st := storage.New(storage.Options{})
		s := server.New(st, engine.New(st, engine.Options{}), server.Options{})
		s.SetShard(i)
		h := s.Handler()
		w := &worker{store: st}
		idx := i
		w.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/scan" {
				w.scans.Add(1)
				if idx == deadShard {
					rw = &truncatingWriter{ResponseWriter: rw, limit: 2048}
				}
			}
			h.ServeHTTP(rw, r)
		}))
		t.Cleanup(w.srv.Close)
		ws[i] = w
	}

	ds := gen.Scenario(gen.Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 100, Seed: 5})
	single := storage.New(storage.Options{})
	single.Ingest(ds)

	coord, err := cluster.New(workerURLs(ws), cluster.Options{Placement: mpp.SemanticsAware, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Ingest(context.Background(), ds); err != nil {
		t.Fatalf("replicated ingest: %v", err)
	}
	return coord, ws, single, deadShard
}

// TestWorkerDeathMidStreamFailsOverToReplica is the replicated flip of
// TestWorkerDeathMidStreamIsTypedPartialFailure: the same mid-stream worker
// death, but with R=2 the coordinator retries the shard on its replica and
// the query SUCCEEDS with the exact single-store answer — no PartialError,
// and no duplicated rows from the truncated first attempt.
func TestWorkerDeathMidStreamFailsOverToReplica(t *testing.T) {
	coord, ws, single, _ := replicatedDyingCluster(t)
	eng := engine.New(coord, engine.Options{})
	singleEng := engine.New(single, engine.Options{})
	const src = "proc p read file f return p, f"

	before := coord.Stats()
	done := make(chan struct{})
	var res *engine.Result
	var err error
	go func() {
		defer close(done)
		res, err = eng.Query(src)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("query hung after worker death")
	}
	if err != nil {
		t.Fatalf("query failed despite a live replica of every shard: %v", err)
	}

	want, err := singleEng.Query(src)
	if err != nil {
		t.Fatalf("reference query: %v", err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("reference query returned no rows; the failover proved nothing")
	}
	if queries.Canonical(res.Rows) != queries.Canonical(want.Rows) {
		t.Errorf("failover answer has %d rows, single store %d (row sets differ)",
			len(res.Rows), len(want.Rows))
	}
	if d := coord.Stats().Failovers - before.Failovers; d == 0 {
		t.Error("failovers counter did not move; the dead worker's stream was never retried on the replica")
	}

	// Satellite check: the failover path must release every snapshot and
	// cursor it opened on every worker — including the aborted first
	// attempt on the dead worker. The unwind is asynchronous, so poll.
	deadline := time.Now().Add(10 * time.Second)
	for i, w := range ws {
		for {
			if w.store.LiveSnapshots() == 0 && w.store.LiveCursors() == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("worker %d leaked after failover: %d snapshots, %d cursors live",
					i, w.store.LiveSnapshots(), w.store.LiveCursors())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestIngestRetryDoesNotDuplicate reproduces the retry-storm bug: a worker
// applies an ingest batch but the acknowledgement is lost, the coordinator
// retries, and — without the (epoch, shard, seq) tag — the batch would land
// twice. The tagged ingest path must count every event exactly once.
func TestIngestRetryDoesNotDuplicate(t *testing.T) {
	var ackLost atomic.Bool
	ws := make([]*worker, 2)
	for i := range ws {
		st := storage.New(storage.Options{})
		s := server.New(st, engine.New(st, engine.Options{}), server.Options{})
		s.SetShard(i)
		h := s.Handler()
		w := &worker{store: st}
		idx := i
		w.srv = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/ingest" && idx == 0 && ackLost.CompareAndSwap(false, true) {
				// Apply the batch for real, then fail the response: the
				// work landed but the coordinator sees a retryable error.
				h.ServeHTTP(httptest.NewRecorder(), r)
				rw.WriteHeader(http.StatusInternalServerError)
				return
			}
			h.ServeHTTP(rw, r)
		}))
		t.Cleanup(w.srv.Close)
		ws[i] = w
	}

	coord, err := cluster.New(workerURLs(ws), cluster.Options{Placement: mpp.SemanticsAware})
	if err != nil {
		t.Fatal(err)
	}
	ds := gen.Scenario(gen.Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 50, Seed: 11})
	if err := coord.Ingest(context.Background(), ds); err != nil {
		t.Fatalf("ingest with lost ack: %v", err)
	}
	if !ackLost.Load() {
		t.Fatal("the fault was never injected; the test exercised nothing")
	}

	n := len(ws)
	want := make([]int, n)
	for i := range ds.Events {
		ev := &ds.Events[i]
		want[mpp.SemanticsAware.Shard(ev.AgentID, timeutil.DayIndex(ev.Start), n)]++
	}
	for i, w := range ws {
		if got := w.store.EventCount(); got != want[i] {
			t.Errorf("worker %d holds %d events, placement assigns %d — retry duplicated or lost a batch",
				i, got, want[i])
		}
	}
	if stats := coord.Stats(); stats.IngestRetries == 0 {
		t.Error("ingest retries counter did not move despite the injected 500")
	}
	if rs := ws[0].store.ReplStats(); rs.Duplicates == 0 {
		t.Error("worker 0 recorded no duplicate suppression; the retry was not deduplicated by tag")
	}
}
