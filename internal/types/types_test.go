package types

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"
)

func TestEntityTypeRoundTrip(t *testing.T) {
	for _, et := range []EntityType{EntityFile, EntityProcess, EntityNetwork} {
		got, ok := ParseEntityType(et.String())
		if !ok || got != et {
			t.Errorf("ParseEntityType(%q) = %v, %v", et.String(), got, ok)
		}
	}
	if _, ok := ParseEntityType("registry"); ok {
		t.Error("ParseEntityType accepted an unknown type")
	}
	if EntityInvalid.String() != "invalid" {
		t.Errorf("EntityInvalid.String() = %q", EntityInvalid.String())
	}
}

func TestEntityTypeAliases(t *testing.T) {
	cases := map[string]EntityType{
		"proc": EntityProcess, "process": EntityProcess, "PROC": EntityProcess,
		"file": EntityFile, "ip": EntityNetwork, "network": EntityNetwork,
		"conn": EntityNetwork,
	}
	for in, want := range cases {
		got, ok := ParseEntityType(in)
		if !ok || got != want {
			t.Errorf("ParseEntityType(%q) = %v, %v; want %v", in, got, ok, want)
		}
	}
}

func TestDefaultAttr(t *testing.T) {
	cases := map[EntityType]string{
		EntityFile:    AttrName,
		EntityProcess: AttrExeName,
		EntityNetwork: AttrDstIP,
	}
	for et, want := range cases {
		if got := et.DefaultAttr(); got != want {
			t.Errorf("%v.DefaultAttr() = %q, want %q", et, got, want)
		}
	}
}

func TestOpRoundTrip(t *testing.T) {
	for o := OpRead; o < opMax; o++ {
		got, ok := ParseOp(o.String())
		if !ok || got != o {
			t.Errorf("ParseOp(%q) = %v, %v", o.String(), got, ok)
		}
	}
	if _, ok := ParseOp("frobnicate"); ok {
		t.Error("ParseOp accepted an unknown operation")
	}
}

func TestOpAliases(t *testing.T) {
	cases := map[string]Op{
		"exec": OpExecute, "exit": OpEnd, "unlink": OpDelete,
		"receive": OpRecv, "READ": OpRead,
	}
	for in, want := range cases {
		got, ok := ParseOp(in)
		if !ok || got != want {
			t.Errorf("ParseOp(%q) = %v, %v; want %v", in, got, ok, want)
		}
	}
}

func TestOpSetBasics(t *testing.T) {
	s := NewOpSet(OpRead, OpWrite)
	if !s.Contains(OpRead) || !s.Contains(OpWrite) || s.Contains(OpStart) {
		t.Errorf("membership wrong: %v", s)
	}
	if s.String() != "read||write" {
		t.Errorf("String() = %q", s.String())
	}
	if got := len(AllOps().Ops()); got != NumOps {
		t.Errorf("AllOps has %d ops, want %d", got, NumOps)
	}
	if !NewOpSet().Empty() {
		t.Error("empty set should be Empty")
	}
	if AllOps().Empty() {
		t.Error("AllOps should not be Empty")
	}
}

func TestOpSetAlgebra(t *testing.T) {
	// Property: complement of complement is identity; union with
	// complement is everything; intersection with complement is empty.
	f := func(raw uint16) bool {
		s := OpSet(raw) & OpSet(AllOps())
		if s.Complement().Complement() != s {
			return false
		}
		if s.Union(s.Complement()) != AllOps() {
			return false
		}
		return s.Intersect(s.Complement()).Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpSetOpsSorted(t *testing.T) {
	f := func(raw uint16) bool {
		s := OpSet(raw) & OpSet(AllOps())
		ops := s.Ops()
		for i := 1; i < len(ops); i++ {
			if ops[i-1] >= ops[i] {
				return false
			}
		}
		// Round trip through NewOpSet.
		return NewOpSet(ops...) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntityAttrSynthesized(t *testing.T) {
	e := Entity{ID: 42, Type: EntityProcess, AgentID: 7, Attrs: map[string]string{AttrExeName: "/bin/sh"}}
	if v, ok := e.Attr(AttrID); !ok || v != "42" {
		t.Errorf("Attr(id) = %q, %v", v, ok)
	}
	if v, ok := e.Attr(AttrAgentID); !ok || v != "7" {
		t.Errorf("Attr(agentid) = %q, %v", v, ok)
	}
	if v, ok := e.Attr("type"); !ok || v != "proc" {
		t.Errorf("Attr(type) = %q, %v", v, ok)
	}
	if v, ok := e.Attr(AttrExeName); !ok || v != "/bin/sh" {
		t.Errorf("Attr(exe_name) = %q, %v", v, ok)
	}
	if _, ok := e.Attr("nope"); ok {
		t.Error("unknown attribute should not be found")
	}
}

func TestEntityDisplay(t *testing.T) {
	e := Entity{ID: 1, Type: EntityFile, Attrs: map[string]string{AttrName: "/etc/passwd"}}
	if e.Display() != "/etc/passwd" {
		t.Errorf("Display() = %q", e.Display())
	}
	anon := Entity{ID: 9, Type: EntityNetwork, Attrs: map[string]string{}}
	if anon.Display() != "ip#9" {
		t.Errorf("Display() = %q", anon.Display())
	}
}

func TestEventAttr(t *testing.T) {
	ev := Event{ID: 5, AgentID: 3, Op: OpWrite, Start: 1000, End: 1010, Seq: 77, Amount: 4096, FailCode: 2}
	cases := map[string]string{
		EvtAttrAmount:   "4096",
		EvtAttrFailCode: "2",
		EvtAttrOpType:   "write",
		EvtAttrAccess:   "w",
		EvtAttrSeq:      "77",
		EvtAttrStart:    "1000",
		EvtAttrEnd:      "1010",
		AttrAgentID:     "3",
		AttrID:          "5",
	}
	for attr, want := range cases {
		if got, ok := ev.Attr(attr); !ok || got != want {
			t.Errorf("Attr(%q) = %q, %v; want %q", attr, got, ok, want)
		}
	}
	if _, ok := ev.Attr("bogus"); ok {
		t.Error("unknown event attribute should not be found")
	}
}

func TestAccessModes(t *testing.T) {
	reads := []Op{OpRead, OpRecv, OpAccept}
	writes := []Op{OpWrite, OpSend, OpRename, OpDelete}
	execs := []Op{OpExecute, OpStart}
	for _, o := range reads {
		if accessModeFor(o) != "r" {
			t.Errorf("%v access = %q, want r", o, accessModeFor(o))
		}
	}
	for _, o := range writes {
		if accessModeFor(o) != "w" {
			t.Errorf("%v access = %q, want w", o, accessModeFor(o))
		}
	}
	for _, o := range execs {
		if accessModeFor(o) != "x" {
			t.Errorf("%v access = %q, want x", o, accessModeFor(o))
		}
	}
}

func TestEventBefore(t *testing.T) {
	a := Event{AgentID: 1, Start: 100, Seq: 1}
	b := Event{AgentID: 1, Start: 200, Seq: 2}
	if !a.Before(&b) || b.Before(&a) {
		t.Error("temporal order by Start broken")
	}
	// Same timestamp, same agent: sequence breaks the tie.
	c := Event{AgentID: 1, Start: 100, Seq: 2}
	if !a.Before(&c) || c.Before(&a) {
		t.Error("tie break by sequence broken")
	}
	// Same timestamp, different agents: not ordered.
	d := Event{AgentID: 2, Start: 100, Seq: 0}
	if a.Before(&d) || d.Before(&a) {
		t.Error("cross-agent same-timestamp events must be unordered")
	}
}

func TestEventBeforeIsStrictPartialOrder(t *testing.T) {
	// Property: Before is irreflexive and asymmetric.
	gen := func(r *rand.Rand) Event {
		return Event{
			AgentID: r.Intn(3),
			Start:   int64(r.Intn(5)),
			Seq:     uint64(r.Intn(5)),
		}
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		a, b := gen(r), gen(r)
		if a.Before(&a) {
			t.Fatalf("irreflexivity violated: %+v", a)
		}
		if a.Before(&b) && b.Before(&a) {
			t.Fatalf("asymmetry violated: %+v vs %+v", a, b)
		}
	}
}

func TestNewDatasetSortsEvents(t *testing.T) {
	events := []Event{
		{ID: 1, AgentID: 2, Start: 300, Seq: 5},
		{ID: 2, AgentID: 1, Start: 100, Seq: 9},
		{ID: 3, AgentID: 1, Start: 300, Seq: 1},
		{ID: 4, AgentID: 3, Start: 200, Seq: 2},
	}
	d := NewDataset(nil, events)
	wantOrder := []EventID{2, 4, 3, 1}
	var got []EventID
	for i := range d.Events {
		got = append(got, d.Events[i].ID)
	}
	if !reflect.DeepEqual(got, wantOrder) {
		t.Errorf("sorted order = %v, want %v", got, wantOrder)
	}
}

func TestDatasetSortIsTotal(t *testing.T) {
	// Property: after NewDataset, events are non-decreasing in
	// (Start, AgentID, Seq).
	f := func(seeds []uint32) bool {
		events := make([]Event, 0, len(seeds))
		for i, s := range seeds {
			events = append(events, Event{
				ID:      EventID(i + 1),
				AgentID: int(s % 4),
				Start:   int64(s % 16),
				Seq:     uint64(s % 8),
			})
		}
		d := NewDataset(nil, events)
		for i := 1; i < len(d.Events); i++ {
			a, b := &d.Events[i-1], &d.Events[i]
			if a.Start > b.Start {
				return false
			}
			if a.Start == b.Start && a.AgentID > b.AgentID {
				return false
			}
			if a.Start == b.Start && a.AgentID == b.AgentID && a.Seq > b.Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDatasetEntityLookup(t *testing.T) {
	entities := []Entity{
		{ID: 10, Type: EntityFile, Attrs: map[string]string{AttrName: "/a"}},
		{ID: 20, Type: EntityProcess, Attrs: map[string]string{AttrExeName: "/b"}},
	}
	d := NewDataset(entities, nil)
	if e := d.Entity(10); e == nil || e.Attrs[AttrName] != "/a" {
		t.Errorf("Entity(10) = %+v", e)
	}
	if e := d.Entity(999); e != nil {
		t.Errorf("Entity(999) = %+v, want nil", e)
	}
}

func TestDatasetStats(t *testing.T) {
	d := NewDataset(
		[]Entity{{ID: 1, Type: EntityFile}},
		[]Event{
			{ID: 1, AgentID: 1, Start: 50},
			{ID: 2, AgentID: 2, Start: 150},
			{ID: 3, AgentID: 1, Start: 100},
		},
	)
	st := d.Stats()
	if st.Entities != 1 || st.Events != 3 || st.Agents != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.FirstTime != 50 || st.LastTime != 150 {
		t.Errorf("time range = %d..%d", st.FirstTime, st.LastTime)
	}
	empty := NewDataset(nil, nil)
	if f, l := empty.TimeRange(); f != 0 || l != 0 {
		t.Errorf("empty TimeRange = %d, %d", f, l)
	}
}

func TestObjectTypeCategory(t *testing.T) {
	// Scheduler sorting relies on process < network < file.
	if !(ObjectTypeCategory(EntityProcess) < ObjectTypeCategory(EntityNetwork) &&
		ObjectTypeCategory(EntityNetwork) < ObjectTypeCategory(EntityFile)) {
		t.Error("object type categories out of order")
	}
	if ObjectTypeCategory(EntityInvalid) <= ObjectTypeCategory(EntityFile) {
		t.Error("invalid type must sort last")
	}
}

func TestEntityIDStringIsDecimal(t *testing.T) {
	f := func(id uint64) bool {
		e := Entity{ID: EntityID(id), Type: EntityFile}
		v, ok := e.Attr(AttrID)
		if !ok {
			return false
		}
		n, err := strconv.ParseUint(v, 10, 64)
		return err == nil && n == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
