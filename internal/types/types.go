// Package types defines the AIQL system monitoring data model (paper Sec. 3.1):
// system entities (files, processes, network connections), system events
// expressed as <subject, operation, object> triples, and their security
// relevant attributes (paper Tables 1 and 2).
//
// Every event occurs on a particular host (agent) at a particular time, so
// events carry both spatial (AgentID) and temporal (Start/End) properties.
// The storage layer exploits exactly these two properties for partitioning.
package types

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// EntityType classifies system entities. On modern operating systems the
// security-relevant system resources are, in most cases, files, processes
// and network connections; AIQL models exactly these three.
type EntityType uint8

const (
	// EntityInvalid is the zero value; it never appears in stored data.
	EntityInvalid EntityType = iota
	// EntityFile is a filesystem object.
	EntityFile
	// EntityProcess is an OS process (the only valid event subject).
	EntityProcess
	// EntityNetwork is a network connection endpoint.
	EntityNetwork
)

// String returns the AIQL surface keyword for the entity type
// ("file", "proc", "ip").
func (t EntityType) String() string {
	switch t {
	case EntityFile:
		return "file"
	case EntityProcess:
		return "proc"
	case EntityNetwork:
		return "ip"
	default:
		return "invalid"
	}
}

// ParseEntityType maps an AIQL keyword to an EntityType.
func ParseEntityType(s string) (EntityType, bool) {
	switch strings.ToLower(s) {
	case "file":
		return EntityFile, true
	case "proc", "process":
		return EntityProcess, true
	case "ip", "network", "conn":
		return EntityNetwork, true
	}
	return EntityInvalid, false
}

// DefaultAttr returns the default attribute used by AIQL's context-aware
// attribute inference (paper Sec. 4.1): name for files, exe_name for
// processes, and dst_ip for network connections.
func (t EntityType) DefaultAttr() string {
	switch t {
	case EntityFile:
		return AttrName
	case EntityProcess:
		return AttrExeName
	case EntityNetwork:
		return AttrDstIP
	default:
		return AttrName
	}
}

// Well-known attribute keys (paper Table 1). Attributes are stored as
// strings; numeric comparisons parse on demand.
const (
	AttrID        = "id"
	AttrName      = "name"      // file name (path)
	AttrOwner     = "owner"     // file owner
	AttrGroup     = "group"     // file group
	AttrVolID     = "volid"     // file volume id
	AttrDataID    = "dataid"    // file data id
	AttrPID       = "pid"       // process id
	AttrExeName   = "exe_name"  // process executable path
	AttrUser      = "user"      // process user
	AttrCmd       = "cmd"       // process command line
	AttrSignature = "signature" // process binary signature
	AttrSrcIP     = "src_ip"    // network source address
	AttrDstIP     = "dst_ip"    // network destination address
	AttrSrcPort   = "src_port"  // network source port
	AttrDstPort   = "dst_port"  // network destination port
	AttrProtocol  = "protocol"  // network protocol
	AttrAgentID   = "agentid"   // host id (spatial property)
)

// Event attribute keys (paper Table 2) addressable in event constraints,
// e.g. evt[amount > 4096].
const (
	EvtAttrAmount   = "amount"    // bytes transferred
	EvtAttrFailCode = "failcode"  // failure code (0 = success)
	EvtAttrOpType   = "optype"    // operation name
	EvtAttrAccess   = "access"    // access mode string
	EvtAttrSeq      = "sequence"  // monotone per-agent sequence number
	EvtAttrStart    = "starttime" // start timestamp, ms
	EvtAttrEnd      = "endtime"   // end timestamp, ms
)

// EntityID uniquely identifies an entity in a dataset.
type EntityID uint64

// EventID uniquely identifies an event in a dataset.
type EventID uint64

// Entity is a system entity: a file, process, or network connection,
// together with its security-related attributes.
type Entity struct {
	ID      EntityID
	Type    EntityType
	AgentID int
	Attrs   map[string]string
}

// Attr returns the value of a named attribute. The pseudo-attributes "id",
// "agentid" and "type" are synthesized from the struct fields so that
// predicates can reference them uniformly.
func (e *Entity) Attr(key string) (string, bool) {
	switch key {
	case AttrID:
		return strconv.FormatUint(uint64(e.ID), 10), true
	case AttrAgentID:
		return strconv.Itoa(e.AgentID), true
	case "type":
		return e.Type.String(), true
	}
	v, ok := e.Attrs[key]
	return v, ok
}

// Display returns the human-facing identification of the entity: the value
// of its default attribute, falling back to the numeric id.
func (e *Entity) Display() string {
	if v, ok := e.Attrs[e.Type.DefaultAttr()]; ok {
		return v
	}
	return fmt.Sprintf("%s#%d", e.Type, e.ID)
}

// Op enumerates event operation types (paper Table 2).
type Op uint8

const (
	OpInvalid Op = iota
	OpRead
	OpWrite
	OpExecute
	OpStart
	OpEnd
	OpRename
	OpDelete
	OpConnect
	OpAccept
	OpSend
	OpRecv
	opMax // sentinel; keep last
)

// NumOps is the number of valid operations (excluding OpInvalid).
const NumOps = int(opMax) - 1

var opNames = [...]string{
	OpInvalid: "invalid",
	OpRead:    "read",
	OpWrite:   "write",
	OpExecute: "execute",
	OpStart:   "start",
	OpEnd:     "end",
	OpRename:  "rename",
	OpDelete:  "delete",
	OpConnect: "connect",
	OpAccept:  "accept",
	OpSend:    "send",
	OpRecv:    "recv",
}

// String returns the lowercase operation name used in AIQL source.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "invalid"
}

// ParseOp maps an AIQL operation keyword to an Op.
func ParseOp(s string) (Op, bool) {
	switch strings.ToLower(s) {
	case "read":
		return OpRead, true
	case "write":
		return OpWrite, true
	case "execute", "exec":
		return OpExecute, true
	case "start":
		return OpStart, true
	case "end", "exit":
		return OpEnd, true
	case "rename":
		return OpRename, true
	case "delete", "unlink":
		return OpDelete, true
	case "connect":
		return OpConnect, true
	case "accept":
		return OpAccept, true
	case "send":
		return OpSend, true
	case "recv", "receive":
		return OpRecv, true
	}
	return OpInvalid, false
}

// OpSet is a bitmask over operations, used to evaluate operation
// expressions ("read || write", "!start") in O(1) per event.
type OpSet uint16

// NewOpSet builds an OpSet containing the given operations.
func NewOpSet(ops ...Op) OpSet {
	var s OpSet
	for _, o := range ops {
		s = s.Add(o)
	}
	return s
}

// AllOps is the OpSet containing every valid operation.
func AllOps() OpSet {
	var s OpSet
	for o := OpRead; o < opMax; o++ {
		s = s.Add(o)
	}
	return s
}

// Add returns the set with op included.
func (s OpSet) Add(o Op) OpSet { return s | 1<<o }

// Contains reports whether op is in the set.
func (s OpSet) Contains(o Op) bool { return s&(1<<o) != 0 }

// Union returns the union of two sets.
func (s OpSet) Union(t OpSet) OpSet { return s | t }

// Intersect returns the intersection of two sets.
func (s OpSet) Intersect(t OpSet) OpSet { return s & t }

// Complement returns AllOps minus the set.
func (s OpSet) Complement() OpSet { return AllOps() &^ s }

// Empty reports whether no operation is in the set.
func (s OpSet) Empty() bool { return s&OpSet(AllOps()) == 0 }

// Ops returns the member operations in ascending order.
func (s OpSet) Ops() []Op {
	var out []Op
	for o := OpRead; o < opMax; o++ {
		if s.Contains(o) {
			out = append(out, o)
		}
	}
	return out
}

// String renders the set as "read||write" style AIQL syntax.
func (s OpSet) String() string {
	ops := s.Ops()
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, "||")
}

// Event is a system event: the interaction of a subject entity (always a
// process) with an object entity (file, process or network connection).
// Times are unix milliseconds. Seq is a per-agent monotone sequence number
// used to break ties between events with identical timestamps.
type Event struct {
	ID       EventID
	AgentID  int
	Subject  EntityID
	Object   EntityID
	Op       Op
	Start    int64
	End      int64
	Seq      uint64
	Amount   int64
	FailCode int
}

// Attr returns a named event attribute as a string, mirroring Entity.Attr.
func (ev *Event) Attr(key string) (string, bool) {
	switch key {
	case EvtAttrAmount:
		return strconv.FormatInt(ev.Amount, 10), true
	case EvtAttrFailCode:
		return strconv.Itoa(ev.FailCode), true
	case EvtAttrOpType:
		return ev.Op.String(), true
	case EvtAttrAccess:
		return accessModeFor(ev.Op), true
	case EvtAttrSeq:
		return strconv.FormatUint(ev.Seq, 10), true
	case EvtAttrStart:
		return strconv.FormatInt(ev.Start, 10), true
	case EvtAttrEnd:
		return strconv.FormatInt(ev.End, 10), true
	case AttrAgentID:
		return strconv.Itoa(ev.AgentID), true
	case AttrID:
		return strconv.FormatUint(uint64(ev.ID), 10), true
	}
	return "", false
}

// Before reports whether ev strictly precedes other in time, using the
// per-agent sequence number to order same-timestamp events on one host.
func (ev *Event) Before(other *Event) bool {
	if ev.Start != other.Start {
		return ev.Start < other.Start
	}
	if ev.AgentID == other.AgentID {
		return ev.Seq < other.Seq
	}
	return false
}

func accessModeFor(o Op) string {
	switch o {
	case OpRead, OpRecv, OpAccept:
		return "r"
	case OpWrite, OpSend, OpRename, OpDelete:
		return "w"
	case OpExecute, OpStart:
		return "x"
	default:
		return "-"
	}
}

// ObjectTypeCategory classifies an event by its object entity type
// (paper Sec. 3.1: file events, process events, network events).
// Used by the scheduler's relationship sorting, which places process and
// network events in front of file events.
func ObjectTypeCategory(objType EntityType) int {
	switch objType {
	case EntityProcess:
		return 0
	case EntityNetwork:
		return 1
	case EntityFile:
		return 2
	default:
		return 3
	}
}

// Dataset is an immutable bundle of entities and events produced by the
// workload generator or loaded from disk, ready for ingestion into one of
// the storage engines. Events are sorted by (Start, AgentID, Seq).
type Dataset struct {
	Entities []Entity
	Events   []Event

	byID map[EntityID]int
}

// NewDataset builds a dataset, sorting events into global temporal order
// and indexing entities by ID.
func NewDataset(entities []Entity, events []Event) *Dataset {
	sort.Slice(events, func(i, j int) bool {
		if events[i].Start != events[j].Start {
			return events[i].Start < events[j].Start
		}
		if events[i].AgentID != events[j].AgentID {
			return events[i].AgentID < events[j].AgentID
		}
		return events[i].Seq < events[j].Seq
	})
	d := &Dataset{Entities: entities, Events: events, byID: make(map[EntityID]int, len(entities))}
	for i := range entities {
		d.byID[entities[i].ID] = i
	}
	return d
}

// Entity returns the entity with the given id, or nil.
func (d *Dataset) Entity(id EntityID) *Entity {
	if i, ok := d.byID[id]; ok {
		return &d.Entities[i]
	}
	return nil
}

// TimeRange returns the [min, max] event start times in the dataset,
// or (0, 0) for an empty dataset.
func (d *Dataset) TimeRange() (int64, int64) {
	if len(d.Events) == 0 {
		return 0, 0
	}
	return d.Events[0].Start, d.Events[len(d.Events)-1].Start
}

// Stats summarizes a dataset for reporting.
type Stats struct {
	Entities  int
	Events    int
	Agents    int
	FirstTime int64
	LastTime  int64
}

// Stats computes summary statistics.
func (d *Dataset) Stats() Stats {
	agents := make(map[int]struct{})
	for i := range d.Events {
		agents[d.Events[i].AgentID] = struct{}{}
	}
	first, last := d.TimeRange()
	return Stats{
		Entities:  len(d.Entities),
		Events:    len(d.Events),
		Agents:    len(agents),
		FirstTime: first,
		LastTime:  last,
	}
}
