package timeutil

import (
	"testing"
	"testing/quick"
	"time"
)

func TestParseDateTimeFormats(t *testing.T) {
	want := time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC).UnixMilli()
	cases := []struct {
		in          string
		start       int64
		granularity int64
	}{
		{"01/01/2017", want, DayMillis},
		{"2017-01-01", want, DayMillis},
		{"01/01/2017 09:30", want + (9*60+30)*60*1000, 60 * 1000},
		{"01/01/2017 09:30:15", want + ((9*60+30)*60+15)*1000, 1000},
		{"2017-01-01T09:30:15", want + ((9*60+30)*60+15)*1000, 1000},
		{"2017-01-01 09:30", want + (9*60+30)*60*1000, 60 * 1000},
		{"01/01/2017 9:30 PM", want + (21*60+30)*60*1000, 60 * 1000},
	}
	for _, tc := range cases {
		start, g, err := ParseDateTime(tc.in)
		if err != nil {
			t.Errorf("ParseDateTime(%q): %v", tc.in, err)
			continue
		}
		if start != tc.start || g != tc.granularity {
			t.Errorf("ParseDateTime(%q) = %d/%d, want %d/%d", tc.in, start, g, tc.start, tc.granularity)
		}
	}
}

func TestParseDateTimeErrors(t *testing.T) {
	for _, in := range []string{"", "13/45/2017", "yesterday", "2017-13-40", "01-01-2017"} {
		if _, _, err := ParseDateTime(in); err == nil {
			t.Errorf("ParseDateTime(%q) accepted", in)
		}
	}
}

func TestAtWindowCoversGranularity(t *testing.T) {
	w, err := AtWindow("03/02/2017")
	if err != nil {
		t.Fatal(err)
	}
	if w.Duration() != DayMillis {
		t.Errorf("day window duration = %d", w.Duration())
	}
	day := time.Date(2017, 3, 2, 0, 0, 0, 0, time.UTC).UnixMilli()
	if !w.Contains(day) || !w.Contains(day+DayMillis-1) || w.Contains(day+DayMillis) {
		t.Error("day window boundaries wrong (must be half-open)")
	}

	m, err := AtWindow("03/02/2017 10:15")
	if err != nil {
		t.Fatal(err)
	}
	if m.Duration() != 60*1000 {
		t.Errorf("minute window duration = %d", m.Duration())
	}
}

func TestFromToWindow(t *testing.T) {
	w, err := FromToWindow("03/01/2017", "03/03/2017")
	if err != nil {
		t.Fatal(err)
	}
	// End literal is inclusive of its granularity: 3 full days.
	if w.Duration() != 3*DayMillis {
		t.Errorf("duration = %d, want 3 days", w.Duration())
	}
	if _, err := FromToWindow("03/03/2017", "03/01/2017"); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := FromToWindow("bogus", "03/01/2017"); err == nil {
		t.Error("bad from literal accepted")
	}
	if _, err := FromToWindow("03/01/2017", "bogus"); err == nil {
		t.Error("bad to literal accepted")
	}
}

func TestWindowIntersect(t *testing.T) {
	a := Window{From: 100, To: 200}
	b := Window{From: 150, To: 300}
	got := a.Intersect(b)
	if got.From != 150 || got.To != 200 {
		t.Errorf("intersect = %+v", got)
	}
	// Disjoint windows intersect to empty.
	c := Window{From: 500, To: 600}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint intersection not empty")
	}
	// Unbounded is the identity.
	var unb Window
	if a.Intersect(unb) != a || unb.Intersect(a) != a {
		t.Error("unbounded identity broken")
	}
}

func TestWindowIntersectProperties(t *testing.T) {
	// Property: intersection is commutative and never grows either side.
	f := func(a0, a1, b0, b1 uint32) bool {
		a := Window{From: int64(a0 % 1000), To: int64(a0%1000) + int64(a1%1000)}
		b := Window{From: int64(b0 % 1000), To: int64(b0%1000) + int64(b1%1000)}
		if a.Unbounded() || b.Unbounded() {
			return true
		}
		x, y := a.Intersect(b), b.Intersect(a)
		if x != y {
			return false
		}
		return x.Duration() <= a.Duration() && x.Duration() <= b.Duration()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitByDay(t *testing.T) {
	day0 := int64(0)
	w := Window{From: day0 + 1000, To: day0 + 2*DayMillis + 5000}
	parts := SplitByDay(w)
	if len(parts) != 3 {
		t.Fatalf("parts = %d, want 3", len(parts))
	}
	// Parts tile the window exactly.
	if parts[0].From != w.From || parts[len(parts)-1].To != w.To {
		t.Error("split does not cover the window ends")
	}
	for i := 1; i < len(parts); i++ {
		if parts[i].From != parts[i-1].To {
			t.Errorf("gap between parts %d and %d", i-1, i)
		}
		if parts[i-1].To%DayMillis != 0 {
			t.Errorf("interior boundary %d not at a day boundary", i-1)
		}
	}
}

func TestSplitByDayProperties(t *testing.T) {
	// Property: sub-windows tile the window, each within one UTC day.
	f := func(fromRaw, lenRaw uint32) bool {
		from := int64(fromRaw) % (30 * DayMillis)
		length := int64(lenRaw)%(10*DayMillis) + 1
		w := Window{From: from, To: from + length}
		parts := SplitByDay(w)
		if parts[0].From != w.From || parts[len(parts)-1].To != w.To {
			return false
		}
		total := int64(0)
		for i, p := range parts {
			if i > 0 && p.From != parts[i-1].To {
				return false
			}
			if DayIndex(p.From) != DayIndex(p.To-1) {
				return false // a part crosses a day boundary
			}
			total += p.Duration()
		}
		return total == w.Duration()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSplitByDayDegenerate(t *testing.T) {
	var unb Window
	parts := SplitByDay(unb)
	if len(parts) != 1 || !parts[0].Unbounded() {
		t.Error("unbounded window must split to itself")
	}
	empty := Window{From: 100, To: 100}
	parts = SplitByDay(empty)
	if len(parts) != 1 {
		t.Error("empty window must split to itself")
	}
}

func TestDayIndexAndWindow(t *testing.T) {
	for _, day := range []int{0, 1, 17155, 20000} {
		w := DayWindow(day)
		if DayIndex(w.From) != day || DayIndex(w.To-1) != day {
			t.Errorf("day %d window %v index mismatch", day, w)
		}
		if w.Duration() != DayMillis {
			t.Errorf("day window duration = %d", w.Duration())
		}
	}
}

func TestUnitMillis(t *testing.T) {
	cases := map[string]int64{
		"ms": 1, "sec": 1000, "seconds": 1000, "min": 60000,
		"minutes": 60000, "hour": 3600000, "day": DayMillis, "MIN": 60000,
	}
	for unit, want := range cases {
		got, err := UnitMillis(unit)
		if err != nil || got != want {
			t.Errorf("UnitMillis(%q) = %d, %v; want %d", unit, got, err, want)
		}
	}
	if _, err := UnitMillis("fortnight"); err == nil {
		t.Error("unknown unit accepted")
	}
}

func TestParseDuration(t *testing.T) {
	if ms, err := ParseDuration("2", "minutes"); err != nil || ms != 120000 {
		t.Errorf("ParseDuration(2 minutes) = %d, %v", ms, err)
	}
	if ms, err := ParseDuration("1.5", "sec"); err != nil || ms != 1500 {
		t.Errorf("ParseDuration(1.5 sec) = %d, %v", ms, err)
	}
	if _, err := ParseDuration("x", "sec"); err == nil {
		t.Error("bad count accepted")
	}
	if _, err := ParseDuration("1", "parsec"); err == nil {
		t.Error("bad unit accepted")
	}
}

func TestFormatMillis(t *testing.T) {
	ts := time.Date(2017, 3, 2, 9, 0, 30, 0, time.UTC).UnixMilli()
	if got := FormatMillis(ts); got != "2017-03-02 09:00:30.000" {
		t.Errorf("FormatMillis = %q", got)
	}
}

// TestDayIndexFloorsPreEpoch pins the floor-division semantics: pre-epoch
// timestamps belong to negative days, and every millisecond of day -1 maps
// to -1 — truncating division used to fold [-DayMillis+1, DayMillis-1]
// onto day 0, collapsing two distinct days.
func TestDayIndexFloorsPreEpoch(t *testing.T) {
	cases := []struct {
		t    Millis
		want int
	}{
		{0, 0},
		{1, 0},
		{DayMillis - 1, 0},
		{DayMillis, 1},
		{-1, -1},
		{-DayMillis + 1, -1},
		{-DayMillis, -1},
		{-DayMillis - 1, -2},
		{-2 * DayMillis, -2},
	}
	for _, tc := range cases {
		if got := DayIndex(tc.t); got != tc.want {
			t.Errorf("DayIndex(%d) = %d, want %d", tc.t, got, tc.want)
		}
	}
}

// TestDayIndexWindowRoundTrip holds DayIndex and DayWindow inverse over
// negative days too: every timestamp inside DayWindow(d) indexes back to d.
func TestDayIndexWindowRoundTrip(t *testing.T) {
	for _, day := range []int{-20000, -2, -1, 0, 1, 17155} {
		w := DayWindow(day)
		for _, ts := range []Millis{w.From, w.From + 1, w.To - 1} {
			if got := DayIndex(ts); got != day {
				t.Errorf("DayIndex(%d) = %d, want %d (window %v)", ts, got, day, w)
			}
			if !w.Contains(ts) {
				t.Errorf("DayWindow(%d) does not contain %d", day, ts)
			}
		}
	}
	if err := quick.Check(func(ts int64) bool {
		return DayWindow(DayIndex(ts)).Contains(ts)
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestSplitByDayStraddlesEpoch: a window crossing t=0 must split at the
// epoch (a day boundary), not at the truncation artifact +DayMillis.
func TestSplitByDayStraddlesEpoch(t *testing.T) {
	w := Window{From: -1500, To: 2500}
	parts := SplitByDay(w)
	if len(parts) != 2 {
		t.Fatalf("SplitByDay(%v) = %v, want 2 windows split at the epoch", w, parts)
	}
	if parts[0] != (Window{From: -1500, To: 0}) || parts[1] != (Window{From: 0, To: 2500}) {
		t.Fatalf("SplitByDay(%v) = %v, want [{-1500 0} {0 2500}]", w, parts)
	}
	// Multi-day pre-epoch window: every piece stays within one day.
	w = Window{From: -2*DayMillis - 7, To: DayMillis + 3}
	for _, p := range SplitByDay(w) {
		if DayIndex(p.From) != DayIndex(p.To-1) {
			t.Errorf("sub-window %v spans days %d..%d", p, DayIndex(p.From), DayIndex(p.To-1))
		}
	}
}

// TestHalfUnboundedSentinels: the MinMillis/MaxMillis sentinels must form
// valid bounded windows that contain every realistic timestamp, including
// negative ones, without colliding with the zero (unbounded) Window.
func TestHalfUnboundedSentinels(t *testing.T) {
	low := Window{From: MinMillis, To: 42}
	if low.Unbounded() || low.Empty() {
		t.Fatalf("half-unbounded low window misclassified: %+v", low)
	}
	if !low.Contains(-DayMillis) || !low.Contains(0) || low.Contains(42) {
		t.Error("half-unbounded low window bounds wrong")
	}
	high := Window{From: -42, To: MaxMillis}
	if high.Unbounded() || high.Empty() {
		t.Fatalf("half-unbounded high window misclassified: %+v", high)
	}
	if !high.Contains(1<<40) || high.Contains(-43) {
		t.Error("half-unbounded high window bounds wrong")
	}
	// A To of 0 with a bounded From is an empty window, not an unbounded
	// one; DayIndex(To-1) callers special-case it via Empty.
	weird := Window{From: 5, To: 0}
	if !weird.Empty() || weird.Contains(5) {
		t.Error("Window{5, 0} must be empty")
	}
}

// TestIntersectEmptyAtOriginIsNotUnbounded: an empty intersection landing
// exactly at t=0 must not collapse to the zero Window, which means
// "unbounded" — temporal pushdown over pre-epoch events produces exactly
// this shape ([MinMillis, 0) ∩ [0, x)) and would otherwise silently lose
// its constraint.
func TestIntersectEmptyAtOriginIsNotUnbounded(t *testing.T) {
	got := Window{From: MinMillis, To: 0}.Intersect(Window{From: 0, To: 500})
	if got.Unbounded() {
		t.Fatalf("empty-at-origin intersection = %+v, reads as unbounded", got)
	}
	if !got.Empty() {
		t.Fatalf("intersection %+v should be empty", got)
	}
	if got.Contains(0) || got.Contains(-1) {
		t.Fatal("empty intersection must contain nothing")
	}
	if w := EmptyWindow(); !w.Empty() || w.Unbounded() {
		t.Fatalf("EmptyWindow() = %+v, want empty and bounded", w)
	}
}
