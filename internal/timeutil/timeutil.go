// Package timeutil provides the time handling AIQL queries need: parsing of
// US and ISO 8601 date/time literals at several granularities, duration
// units for temporal relationships ("before[1-2 minutes]") and sliding
// windows, and day-splitting of query windows for the engine's temporal
// parallelization (paper Sec. 5.2).
package timeutil

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Millis is a timestamp in unix milliseconds, the engine's native time unit.
type Millis = int64

// Window is a half-open time interval [From, To) in unix milliseconds.
// A zero Window means "unbounded".
type Window struct {
	From Millis
	To   Millis
}

// Unbounded reports whether the window places no temporal constraint.
func (w Window) Unbounded() bool { return w.From == 0 && w.To == 0 }

// Contains reports whether t falls inside the window.
func (w Window) Contains(t Millis) bool {
	if w.Unbounded() {
		return true
	}
	return t >= w.From && t < w.To
}

// Intersect returns the overlap of two windows; unbounded windows act as
// identity elements.
func (w Window) Intersect(o Window) Window {
	if w.Unbounded() {
		return o
	}
	if o.Unbounded() {
		return w
	}
	out := Window{From: max64(w.From, o.From), To: min64(w.To, o.To)}
	if out.To < out.From {
		out.To = out.From // empty
	}
	if out == (Window{}) {
		// An empty intersection landing exactly at the origin would read
		// as the unbounded zero Window; any empty window is equivalent,
		// so use one off the origin.
		out = EmptyWindow()
	}
	return out
}

// EmptyWindow returns a canonical window containing no instants. It is
// deliberately not the zero Window, which means "unbounded" — code
// synthesizing possibly-empty windows from data (temporal joins over
// pre-epoch timestamps can place an empty range exactly at the origin)
// must use this form so the result never reads as "no constraint".
func EmptyWindow() Window { return Window{From: 1, To: 1} }

// Empty reports whether a bounded window contains no instants.
func (w Window) Empty() bool { return !w.Unbounded() && w.To <= w.From }

// Duration returns the window length in milliseconds (0 if unbounded).
func (w Window) Duration() int64 {
	if w.Unbounded() {
		return 0
	}
	return w.To - w.From
}

func (w Window) String() string {
	if w.Unbounded() {
		return "[unbounded]"
	}
	return fmt.Sprintf("[%s, %s)", FormatMillis(w.From), FormatMillis(w.To))
}

const dayMillis = 24 * 60 * 60 * 1000

// DayMillis is the length of one day in milliseconds.
const DayMillis = dayMillis

// MinMillis and MaxMillis are the sentinel bounds for half-unbounded
// windows: a "no lower bound" window uses From = MinMillis and a "no upper
// bound" window uses To = MaxMillis, keeping the window distinct from the
// zero (fully unbounded) Window while containing every representable
// timestamp — including pre-epoch (negative) ones, which a From of 0 or 1
// would wrongly exclude.
const (
	MinMillis Millis = -(1 << 62)
	MaxMillis Millis = 1 << 62
)

// SplitByDay partitions a bounded window at UTC day boundaries, producing
// the per-day sub-windows the engine executes in parallel. An unbounded
// window is returned unchanged as a single element. Day boundaries are
// floor-aligned, so a window straddling the epoch splits at t=0 instead of
// fusing the pre-epoch remainder into day 0's sub-window.
func SplitByDay(w Window) []Window {
	if w.Unbounded() || w.Empty() {
		return []Window{w}
	}
	var out []Window
	cur := w.From
	for cur < w.To {
		next := int64(DayIndex(cur)+1) * dayMillis
		if next > w.To {
			next = w.To
		}
		out = append(out, Window{From: cur, To: next})
		cur = next
	}
	return out
}

// DayIndex returns the UTC day number of a timestamp, the storage layer's
// temporal partition key. The division floors: pre-epoch timestamps map to
// negative day numbers (DayIndex(-1) == -1), so the day boundary at the
// epoch separates two distinct days instead of collapsing [-day, day) onto
// day 0 — truncating division here once made mpp.Placement shard
// assignment disagree with partition selection for pre-epoch events.
func DayIndex(t Millis) int {
	day := t / dayMillis
	if t%dayMillis != 0 && t < 0 {
		day--
	}
	return int(day)
}

// DayWindow returns the window covering the given UTC day number.
func DayWindow(day int) Window {
	return Window{From: int64(day) * dayMillis, To: int64(day+1) * dayMillis}
}

// dateLayouts are tried in order when parsing date/time literals. AIQL
// accepts common US formats and ISO 8601 at multiple granularities.
var dateLayouts = []string{
	"01/02/2006 15:04:05",
	"01/02/2006 15:04",
	"01/02/2006",
	"2006-01-02T15:04:05",
	"2006-01-02 15:04:05",
	"2006-01-02 15:04",
	"2006-01-02",
	"01/02/2006 3:04:05 PM",
	"01/02/2006 3:04 PM",
}

// ParseDateTime parses a date/time literal and returns the timestamp in
// unix milliseconds plus the granularity of the literal (the span it
// covers: a bare date covers a whole day). All literals are interpreted
// in UTC, matching the paper's NTP-synchronized agent clocks.
func ParseDateTime(s string) (start Millis, granularity int64, err error) {
	s = strings.TrimSpace(s)
	for _, layout := range dateLayouts {
		t, perr := time.ParseInLocation(layout, s, time.UTC)
		if perr != nil {
			continue
		}
		g := granularityOf(layout)
		return t.UnixMilli(), g, nil
	}
	return 0, 0, fmt.Errorf("timeutil: unrecognized date/time literal %q", s)
}

func granularityOf(layout string) int64 {
	switch {
	case strings.Contains(layout, ":04:05"):
		return 1000
	case strings.Contains(layout, ":04"):
		return 60 * 1000
	default:
		return dayMillis
	}
}

// AtWindow converts an `(at "...")` literal into the window covering the
// literal's granularity: a date covers its day, a minute-resolution literal
// covers that minute, etc.
func AtWindow(s string) (Window, error) {
	start, g, err := ParseDateTime(s)
	if err != nil {
		return Window{}, err
	}
	return Window{From: start, To: start + g}, nil
}

// FromToWindow converts a `from "..." to "..."` pair into a window; the end
// literal is inclusive of its granularity.
func FromToWindow(from, to string) (Window, error) {
	start, _, err := ParseDateTime(from)
	if err != nil {
		return Window{}, err
	}
	end, g, err := ParseDateTime(to)
	if err != nil {
		return Window{}, err
	}
	w := Window{From: start, To: end + g}
	if w.Empty() {
		return Window{}, fmt.Errorf("timeutil: empty window from %q to %q", from, to)
	}
	return w, nil
}

// unitMillis maps AIQL duration unit keywords to milliseconds.
var unitMillis = map[string]int64{
	"ms":           1,
	"millisecond":  1,
	"milliseconds": 1,
	"s":            1000,
	"sec":          1000,
	"secs":         1000,
	"second":       1000,
	"seconds":      1000,
	"min":          60 * 1000,
	"mins":         60 * 1000,
	"minute":       60 * 1000,
	"minutes":      60 * 1000,
	"h":            3600 * 1000,
	"hour":         3600 * 1000,
	"hours":        3600 * 1000,
	"day":          dayMillis,
	"days":         dayMillis,
}

// UnitMillis returns the milliseconds per unit for an AIQL time unit
// keyword ("sec", "min", "hour", ...).
func UnitMillis(unit string) (int64, error) {
	if m, ok := unitMillis[strings.ToLower(unit)]; ok {
		return m, nil
	}
	return 0, fmt.Errorf("timeutil: unknown time unit %q", unit)
}

// ParseDuration parses "<number> <unit>" (e.g. "1 min", "10 sec") into
// milliseconds.
func ParseDuration(num, unit string) (int64, error) {
	n, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("timeutil: bad duration count %q: %v", num, err)
	}
	m, err := UnitMillis(unit)
	if err != nil {
		return 0, err
	}
	return int64(n * float64(m)), nil
}

// FormatMillis renders a timestamp for human-facing output.
func FormatMillis(t Millis) string {
	return time.UnixMilli(t).UTC().Format("2006-01-02 15:04:05.000")
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
