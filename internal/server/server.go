// Package server exposes an AIQL database as a resident HTTP/JSON query
// service. One process loads (or generates) a dataset once, then serves
// concurrent investigations over it — amortizing ingest and query
// compilation across many analysts, where the one-shot CLIs pay both costs
// on every invocation.
//
// Endpoints:
//
//	POST /query   execute one AIQL query (JSON {"query": "..."} or raw text)
//	POST /ingest  append a JSON-lines trace batch (aiqlgen wire format)
//	GET  /stats   store statistics and cache hit/miss counters
//	GET  /healthz liveness probe
//
// Two caches sit in front of the engine. The plan cache maps normalized
// query text to its compiled plan, so repeated investigations skip the
// parse/compile front end. The result cache maps (plan, store generation)
// to the materialized result; ingesting new events bumps the generation,
// which invalidates every cached result at once.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"aiql/internal/engine"
	"aiql/internal/storage"
	"aiql/internal/trace"
)

// Options configure the service's caches.
type Options struct {
	// PlanCacheSize bounds the compiled-plan cache (default 256 plans;
	// negative disables caching).
	PlanCacheSize int
	// ResultCacheSize bounds the result cache (default 128 results;
	// negative disables caching).
	ResultCacheSize int
	// MaxIngestBytes bounds one /ingest request body (default 256 MiB) so
	// a single client cannot OOM the daemon.
	MaxIngestBytes int64
}

func (o Options) withDefaults() Options {
	if o.PlanCacheSize == 0 {
		o.PlanCacheSize = 256
	}
	if o.ResultCacheSize == 0 {
		o.ResultCacheSize = 128
	}
	if o.MaxIngestBytes == 0 {
		o.MaxIngestBytes = 256 << 20
	}
	return o
}

// Server serves AIQL queries over a shared store and engine.
type Server struct {
	store     *storage.Store
	eng       *engine.Engine
	plans     *PlanCache
	results   *ResultCache
	maxIngest int64
	started   time.Time
	queries   atomic.Uint64
	ingests   atomic.Uint64
}

// New creates a service over an existing store and engine.
func New(st *storage.Store, eng *engine.Engine, opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		store:     st,
		eng:       eng,
		plans:     NewPlanCache(opts.PlanCacheSize),
		results:   NewResultCache(opts.ResultCacheSize),
		maxIngest: opts.MaxIngestBytes,
		started:   time.Now(),
	}
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// QueryResponse is the JSON reply to /query.
type QueryResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// RowCount duplicates len(rows) so clients truncating large results
	// still see the true cardinality.
	RowCount    int  `json:"row_count"`
	DataQueries int  `json:"data_queries"`
	TuplesMax   int  `json:"tuples_max"`
	PlanCached  bool `json:"plan_cached"`
	// ResultCached reports that the rows were served straight from the
	// result cache without touching the store.
	ResultCached bool    `json:"result_cached"`
	ElapsedMs    float64 `json:"elapsed_ms"`
}

// queryRequest is the JSON form of a /query body.
type queryRequest struct {
	Query string `json:"query"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	src, err := readQuery(w, r)
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, err)
		return
	}
	s.queries.Add(1)
	start := time.Now()
	resp, err := s.execute(src)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, engine.ErrTooLarge) {
			status = http.StatusUnprocessableEntity
		}
		httpError(w, status, err)
		return
	}
	resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// execute runs one query through both caches: result cache, then plan
// cache, then the engine.
func (s *Server) execute(src string) (*QueryResponse, error) {
	key := engine.Normalize(src)
	gen := s.store.Generation()
	if res, ok := s.results.Get(key, gen); ok {
		// Peek, not Get: report the plan cache's true state without
		// perturbing its hit/miss counters.
		return queryResponse(res, s.plans.Contains(key), true), nil
	}
	pq, planCached := s.plans.Get(key)
	if !planCached {
		var err error
		pq, err = s.eng.Prepare(src)
		if err != nil {
			return nil, err
		}
		s.plans.Put(key, pq)
	}
	res, err := pq.Execute()
	if err != nil {
		return nil, err
	}
	// Cache only if no ingest raced with the execution: a result computed
	// partly from newer events must not be served for the older generation.
	if s.store.Generation() == gen {
		s.results.Put(key, gen, res)
	}
	return queryResponse(res, planCached, false), nil
}

func queryResponse(res *engine.Result, planCached, resultCached bool) *QueryResponse {
	return &QueryResponse{
		Columns:      res.Columns,
		Rows:         res.Rows,
		RowCount:     len(res.Rows),
		DataQueries:  res.DataQueries,
		TuplesMax:    res.TuplesMax,
		PlanCached:   planCached,
		ResultCached: resultCached,
	}
}

// readQuery extracts the AIQL source from a /query body: a JSON object for
// application/json, the raw body otherwise. Bodies over 1 MiB are rejected
// rather than truncated — a silently clipped query could still parse and
// would then execute as a different query than the client sent.
func readQuery(w http.ResponseWriter, r *http.Request) (string, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		return "", fmt.Errorf("read body: %w", err)
	}
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if ct == "application/json" {
		var req queryRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", fmt.Errorf("parse request: %w", err)
		}
		if strings.TrimSpace(req.Query) == "" {
			return "", fmt.Errorf("empty query")
		}
		return req.Query, nil
	}
	if strings.TrimSpace(string(body)) == "" {
		return "", fmt.Errorf("empty query")
	}
	return string(body), nil
}

// IngestResponse is the JSON reply to /ingest.
type IngestResponse struct {
	Entities   int    `json:"entities"`
	Events     int    `json:"events"`
	Generation uint64 `json:"generation"`
}

// handleIngest appends a batch of records in the aiqlgen JSON-lines wire
// format (entity and event lines in any order). The batch is staged into a
// dataset first, then ingested under the store's write lock, so concurrent
// queries see either none or all of the batch.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ds, err := trace.Read(http.MaxBytesReader(w, r.Body, s.maxIngest))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, err)
		return
	}
	s.store.Ingest(ds)
	// The generation bump already invalidates cached results; purging
	// eagerly frees their memory instead of waiting for LRU pressure.
	s.results.Purge()
	s.ingests.Add(1)
	writeJSON(w, http.StatusOK, &IngestResponse{
		Entities:   len(ds.Entities),
		Events:     len(ds.Events),
		Generation: s.store.Generation(),
	})
}

// StatsResponse is the JSON reply to /stats.
type StatsResponse struct {
	Events        int        `json:"events"`
	Partitions    int        `json:"partitions"`
	Agents        []int      `json:"agents"`
	Days          []int      `json:"days"`
	Generation    uint64     `json:"generation"`
	QueriesServed uint64     `json:"queries_served"`
	IngestBatches uint64     `json:"ingest_batches"`
	UptimeSeconds float64    `json:"uptime_seconds"`
	PlanCache     CacheStats `json:"plan_cache"`
	ResultCache   CacheStats `json:"result_cache"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, &StatsResponse{
		Events:        s.store.EventCount(),
		Partitions:    s.store.PartitionCount(),
		Agents:        s.store.Agents(),
		Days:          s.store.Days(),
		Generation:    s.store.Generation(),
		QueriesServed: s.queries.Load(),
		IngestBatches: s.ingests.Load(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		PlanCache:     s.plans.Stats(),
		ResultCache:   s.results.Stats(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
