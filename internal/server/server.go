// Package server exposes an AIQL database as a resident HTTP/JSON query
// service. One process loads (or generates) a dataset once, then serves
// concurrent investigations over it — amortizing ingest and query
// compilation across many analysts, where the one-shot CLIs pay both costs
// on every invocation.
//
// Endpoints:
//
//	POST /query          execute one AIQL query (JSON {"query": "..."} or raw text)
//	POST /ingest         append a JSON-lines trace batch (aiqlgen wire format)
//	POST /scan           execute one storage-level data query, streaming NDJSON
//	                     matches (the worker-facing endpoint of the cluster
//	                     tier; store-backed servers only)
//	POST /rules          register a standing AIQL rule (continuous query)
//	GET  /rules          list standing rules; DELETE /rules/{id} unregisters
//	GET  /subscribe/{id} live NDJSON/SSE stream of a rule's matches
//	GET  /stats          store statistics, cache and streaming counters
//	GET  /healthz        liveness probe
//
// A server runs in one of two modes. Store-backed (New): queries execute
// against the local store, and /scan lets a cluster coordinator use this
// process as a worker shard. Coordinator (NewCoordinator): queries execute
// through a cluster.Coordinator that scatters each data query to worker
// aiqld processes and gathers their streams; /ingest scatters batches by
// placement; /stats reports the cluster counters. See docs/CLUSTER.md.
//
// Two caches sit in front of the engine. The plan cache maps normalized
// query text to its compiled plan, so repeated investigations skip the
// parse/compile front end. The result cache maps (plan, store generation)
// to the materialized result; ingesting new events bumps the generation,
// which invalidates every cached result at once.
//
// Every query executes against one immutable storage snapshot acquired at
// request start, so concurrent /ingest traffic neither blocks the query
// nor tears its view — the snapshot's generation is the result-cache key,
// exact by construction. Engine work is bound to the request context:
// clients that disconnect cancel their query mid-flight. Clients that send
// "Accept: application/x-ndjson" receive the result as newline-delimited
// JSON — a header object followed by one row per line, flushed
// incrementally on the wire — instead of a single JSON document.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aiql/internal/cluster"
	"aiql/internal/engine"
	"aiql/internal/obs"
	"aiql/internal/storage"
	"aiql/internal/stream"
	"aiql/internal/trace"
)

// Options configure the service's caches.
type Options struct {
	// PlanCacheSize bounds the compiled-plan cache (default 256 plans;
	// negative disables caching).
	PlanCacheSize int
	// ResultCacheSize bounds the result cache (default 128 results;
	// negative disables caching).
	ResultCacheSize int
	// MaxIngestBytes bounds one /ingest request body (default 256 MiB) so
	// a single client cannot OOM the daemon.
	MaxIngestBytes int64
	// MaxRules caps registered continuous-query rules (default 64). On a
	// worker serving a coordinator, each multi-pattern coordinator rule
	// costs one sub-rule per pattern.
	MaxRules int
	// StreamBuffer sizes each subscriber's emission buffer and each rule's
	// replay ring (default 256); a subscriber a full buffer behind is
	// disconnected.
	StreamBuffer int
	// SlowLogSize bounds the slow-query log served at /debug/slow (default
	// 32 entries; negative disables the log).
	SlowLogSize int
	// Logger, when set, receives structured per-request log lines stamped
	// with each request's trace ID. Nil disables request logging.
	Logger *obs.Logger
}

func (o Options) withDefaults() Options {
	if o.PlanCacheSize == 0 {
		o.PlanCacheSize = 256
	}
	if o.ResultCacheSize == 0 {
		o.ResultCacheSize = 128
	}
	if o.MaxIngestBytes == 0 {
		o.MaxIngestBytes = 256 << 20
	}
	if o.SlowLogSize == 0 {
		o.SlowLogSize = 32
	}
	return o
}

// newSlowLog maps the option to a slow log: nil (all methods no-op) when
// disabled.
func newSlowLog(n int) *obs.SlowLog {
	if n < 0 {
		return nil
	}
	return obs.NewSlowLog(n)
}

// Server serves AIQL queries over a shared store and engine — or, in
// coordinator mode, over a cluster of worker servers.
type Server struct {
	store       *storage.Store
	durable     *storage.Persistent // non-nil when the store is disk-backed
	coord       *cluster.Coordinator
	eng         *engine.Engine
	matcher     *stream.Matcher // continuous queries (store-backed modes)
	plans       *PlanCache
	results     *ResultCache
	maxIngest   int64
	shard       int // this worker's shard index; -1 when not a worker
	started     time.Time
	queries     atomic.Uint64
	ingests     atomic.Uint64
	scans       atomic.Uint64
	subscribers atomic.Int64

	// Observability plane: structured request logs, the slow-query log
	// (/debug/slow), the in-flight registry (/debug/queries), and the
	// Prometheus-style metrics registry (/metrics). The registry is built
	// once, on the first Handler call, so it sees the server's final mode
	// (durable, coordinator, worker shard) regardless of construction order.
	logger    *obs.Logger
	slow      *obs.SlowLog
	inflight  *obs.Inflight
	obsOnce   sync.Once
	metrics   *obs.Registry
	queryDur  *obs.Histogram
	ingestDur *obs.Histogram
	httpReqs  *obs.CounterVec
}

// New creates a service over an existing store and engine. The store's
// ingest tap is claimed for the service's continuous-query matcher: every
// batch applied through /ingest (or directly on the store) is evaluated
// against the registered standing rules.
func New(st *storage.Store, eng *engine.Engine, opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		store:     st,
		eng:       eng,
		matcher:   stream.NewMatcher(st, stream.Options{MaxRules: opts.MaxRules, BufferSize: opts.StreamBuffer}),
		plans:     NewPlanCache(opts.PlanCacheSize),
		results:   NewResultCache(opts.ResultCacheSize),
		maxIngest: opts.MaxIngestBytes,
		shard:     -1,
		started:   time.Now(), //aiql:ignore wallclock -- uptime reporting is operational, not query-determinism-sensitive
		logger:    opts.Logger,
		slow:      newSlowLog(opts.SlowLogSize),
		inflight:  obs.NewInflight(),
	}
	st.SetIngestObserver(s.matcher.OnIngest)
	return s
}

// NewCoordinator creates a service that executes queries through a cluster
// coordinator instead of a local store: /query runs plans whose data
// queries scatter to the workers, /ingest scatters event batches by
// placement, /stats reports the cluster's scatter/gather counters. The
// engine must have been built over coord. There is no result cache in this
// mode — the coordinator cannot observe worker-local ingests, so it has no
// generation to key cached results by; the plan cache still applies.
func NewCoordinator(coord *cluster.Coordinator, eng *engine.Engine, opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		coord:     coord,
		eng:       eng,
		plans:     NewPlanCache(opts.PlanCacheSize),
		results:   NewResultCache(-1),
		maxIngest: opts.MaxIngestBytes,
		shard:     -1,
		started:   time.Now(), //aiql:ignore wallclock -- uptime reporting is operational, not query-determinism-sensitive
		logger:    opts.Logger,
		slow:      newSlowLog(opts.SlowLogSize),
		inflight:  obs.NewInflight(),
	}
}

// SetShard labels this server as worker shard i for /scan and /stats
// responses (informational; the coordinator's worker order is
// authoritative for placement).
func (s *Server) SetShard(i int) { s.shard = i }

// NewPersistent creates a service over a disk-backed store: queries run
// against the embedded in-memory store exactly as in New, while /ingest
// routes through the write-ahead log so acknowledged batches survive a
// restart. Recovery must complete before serving — NewPersistent warms the
// segment payloads up front rather than on the first analyst's query.
func NewPersistent(p *storage.Persistent, eng *engine.Engine, opts Options) (*Server, error) {
	if err := p.WarmUp(); err != nil {
		return nil, err
	}
	s := New(p.Store, eng, opts)
	s.durable = p
	return s, nil
}

// Handler returns the service's HTTP routes, wrapped in the trace
// middleware: every request gets a trace ID (accepted from X-Aiql-Trace or
// minted), echoed on the response and carried in the request context for
// the layers below.
func (s *Server) Handler() http.Handler {
	s.obsOnce.Do(s.buildMetrics)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", s.metrics)
	mux.HandleFunc("GET /debug/slow", s.handleDebugSlow)
	mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	mux.HandleFunc("POST /rules", s.handleRuleCreate)
	mux.HandleFunc("GET /rules", s.handleRuleList)
	mux.HandleFunc("DELETE /rules/{id}", s.handleRuleDelete)
	mux.HandleFunc("GET /subscribe/{id}", s.handleSubscribe)
	if s.store != nil {
		mux.HandleFunc("POST /scan", s.handleScan)
	}
	if s.durable != nil {
		// Replication transport (durable workers only): a peer pulls this
		// worker's tagged WAL history to catch a replica up, and /catchup
		// asks this worker to pull from a peer.
		mux.HandleFunc("GET /walship", s.handleWalShip)
		mux.HandleFunc("POST /catchup", s.handleCatchup)
	}
	return s.withObs(mux)
}

// QueryResponse is the JSON reply to /query.
type QueryResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// RowCount duplicates len(rows) so clients truncating large results
	// still see the true cardinality.
	RowCount    int  `json:"row_count"`
	DataQueries int  `json:"data_queries"`
	TuplesMax   int  `json:"tuples_max"`
	PlanCached  bool `json:"plan_cached"`
	// ResultCached reports that the rows were served straight from the
	// result cache without touching the store.
	ResultCached bool    `json:"result_cached"`
	ElapsedMs    float64 `json:"elapsed_ms"`
	// TraceID identifies this request's trace, for correlating the reply
	// with server logs, /debug/slow entries and worker-side spans.
	TraceID string `json:"trace_id,omitempty"`
	// Trace is the request's span tree — how the elapsed time divides
	// across parse/plan, snapshot pin, per-pattern scans (with block-level
	// skip counters), joins, the merge, and per-worker legs on a
	// coordinator. Present only when the client asked (?trace=1 or
	// {"trace": true}).
	Trace *obs.TraceJSON `json:"trace,omitempty"`
}

// queryRequest is the JSON form of a /query body.
type queryRequest struct {
	Query string `json:"query"`
	// Trace asks for the span tree in the response.
	Trace bool `json:"trace,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	src, wantTrace, err := readQuery(w, r)
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		s.httpTraceError(w, r, status, err)
		return
	}
	s.queries.Add(1)
	ctx := r.Context()
	tr := obs.FromContext(ctx)
	iq := s.inflight.Register(tr, engine.Normalize(src))
	defer iq.Done()
	start := obs.Now()
	var resp *QueryResponse
	if s.coord != nil {
		resp, err = s.executeCluster(ctx, src)
	} else {
		resp, err = s.execute(ctx, src)
	}
	dur := obs.Since(start)
	s.queryDur.Observe(dur.Seconds())
	if err != nil {
		s.recordQuery(ctx, tr, src, dur, 0, false, err)
		if ctx.Err() != nil {
			// The client disconnected and the engine aborted; nobody is
			// listening for a reply.
			return
		}
		status := http.StatusBadRequest
		if errors.Is(err, engine.ErrTooLarge) {
			status = http.StatusUnprocessableEntity
		}
		var partial *cluster.PartialError
		if errors.As(err, &partial) {
			// Workers failed mid-query: the cluster, not the query, is at
			// fault.
			status = http.StatusBadGateway
		}
		s.httpTraceError(w, r, status, err)
		return
	}
	resp.ElapsedMs = float64(dur.Microseconds()) / 1000
	resp.TraceID = tr.ID()
	iq.AddRows(resp.RowCount)
	s.recordQuery(ctx, tr, src, dur, resp.RowCount, resp.ResultCached, nil)
	if wantTrace || r.URL.Query().Get("trace") == "1" {
		resp.Trace = tr.Snapshot()
	}
	if ndjsonRequested(r) {
		writeNDJSON(w, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// recordQuery feeds a completed query to the slow log and the request log.
func (s *Server) recordQuery(ctx context.Context, tr *obs.Trace, src string, dur time.Duration, rows int, cached bool, err error) {
	durMs := float64(dur.Microseconds()) / 1000
	e := &obs.SlowEntry{
		TraceID: tr.ID(),
		Query:   engine.Normalize(src),
		Start:   obs.FormatStart(tr.Start()),
		DurMs:   durMs,
		Rows:    rows,
		Cached:  cached,
		Trace:   tr.Snapshot(),
	}
	if err != nil {
		e.Error = err.Error()
	}
	s.slow.Record(e)
	if s.logger != nil {
		kv := []any{"dur_ms", durMs, "rows", rows, "cached", cached}
		if err != nil {
			kv = append(kv, "error", err.Error())
		}
		s.logger.Log(ctx, "query", kv...)
	}
}

// execute runs one query through both caches: result cache, then plan
// cache, then the engine — the latter against a snapshot pinned for this
// request. The snapshot generation keys the result cache, so the old
// "did an ingest race with my execution?" re-check is gone: a result
// computed from a snapshot is correct for that generation by construction.
func (s *Server) execute(ctx context.Context, src string) (*QueryResponse, error) {
	tr := obs.FromContext(ctx)
	key := engine.Normalize(src)
	// Cache-hit hot path: a generation read is a shared RLock, so repeated
	// queries never pay snapshot acquisition (an exclusive lock plus
	// copy-on-write flagging) just to discover the answer is cached.
	gen := s.store.Generation()
	if res, ok := s.results.Get(key, gen); ok {
		// Peek, not Get: report the plan cache's true state without
		// perturbing its hit/miss counters.
		sp := tr.Span("result-cache")
		sp.Set("hit", "true")
		sp.End()
		return queryResponse(res, s.plans.Contains(key), true), nil
	}
	plan := tr.Span("plan")
	pq, planCached, err := s.preparedPlan(key, src)
	plan.Set("cached", strconv.FormatBool(planCached))
	plan.End()
	if err != nil {
		return nil, err
	}
	snap := s.store.Snapshot()
	defer snap.Close()
	if snap.Generation() != gen {
		// An ingest landed between the peek and the pin; the cache may
		// already hold the result for the generation we actually got.
		if res, ok := s.results.Get(key, snap.Generation()); ok {
			return queryResponse(res, planCached, true), nil
		}
	}
	res, err := pq.ExecuteOn(ctx, snap)
	if err != nil {
		return nil, err
	}
	s.results.Put(key, snap.Generation(), res)
	return queryResponse(res, planCached, false), nil
}

// preparedPlan serves a query's compiled plan through the plan cache,
// preparing and caching it on a miss — the front-end step shared by the
// local and cluster execution paths.
func (s *Server) preparedPlan(key, src string) (*engine.PreparedQuery, bool, error) {
	pq, planCached := s.plans.Get(key)
	if !planCached {
		var err error
		pq, err = s.eng.Prepare(src)
		if err != nil {
			return nil, false, err
		}
		s.plans.Put(key, pq)
	}
	return pq, planCached, nil
}

// executeCluster runs one query through the plan cache and the cluster
// coordinator. No result cache: worker stores can be ingested into without
// the coordinator noticing, so there is no generation that could validate
// a cached result.
func (s *Server) executeCluster(ctx context.Context, src string) (*QueryResponse, error) {
	plan := obs.FromContext(ctx).Span("plan")
	pq, planCached, err := s.preparedPlan(engine.Normalize(src), src)
	plan.Set("cached", strconv.FormatBool(planCached))
	plan.End()
	if err != nil {
		return nil, err
	}
	res, err := pq.Execute(ctx)
	if err != nil {
		return nil, err
	}
	return queryResponse(res, planCached, false), nil
}

// handleScan is the worker-facing endpoint of the distributed tier: it
// executes one storage-level data query (the cluster wire form) against
// the local store and streams the matches back as NDJSON — a header
// record, interned entity records, one row per match, and an explicit end
// trailer so the coordinator can tell a complete stream from a truncated
// one. The scan is bound to the request context: when the coordinator
// cancels (query canceled, another worker failed), the cursor's producers
// stop promptly.
func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	// The scan body is bounded by MaxIngestBytes too: a wire query's bulk
	// is its pushed-down allow-sets, which scale with prior pattern
	// results the same way an ingest batch scales with the trace — and a
	// hardcoded cap would make large constrained queries fail on a cluster
	// while succeeding single-node.
	var wq cluster.WireQuery
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxIngest))
	if err == nil {
		err = json.Unmarshal(body, &wq)
	}
	var q *storage.DataQuery
	if err == nil {
		q, err = wq.DataQuery()
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode scan query: %w", err))
		return
	}
	s.scans.Add(1)
	// A scan leg shows up in this worker's inspection plane too: the
	// coordinator's trace ID rode in on the request header, so the leg's
	// /debug entries here correlate with the coordinator's worker spans.
	ctx := r.Context()
	tr := obs.FromContext(ctx)
	span := tr.Span("scan-serve")
	span.Set("shard", strconv.Itoa(wq.Shard))
	ctx = obs.WithSpan(ctx, span)
	iq := s.inflight.Register(tr, "(scan) shard="+strconv.Itoa(wq.Shard))
	start := obs.Now()
	rows := 0
	var cur storage.Cursor
	// Registered before the cursor's deferred Close so it runs after it:
	// closing the cursor folds the store's block counters into the span,
	// and the slow-log snapshot must include them.
	defer func() {
		iq.Done()
		span.Add("rows", int64(rows))
		if cur != nil && cur.Err() != nil {
			span.Set("error", cur.Err().Error())
		}
		span.End()
		dur := obs.Since(start)
		e := &obs.SlowEntry{
			TraceID: tr.ID(),
			Query:   "(scan) shard=" + strconv.Itoa(wq.Shard),
			Start:   obs.FormatStart(tr.Start()),
			DurMs:   float64(dur.Microseconds()) / 1000,
			Rows:    rows,
			Trace:   tr.Snapshot(),
		}
		if cur != nil && cur.Err() != nil {
			e.Error = cur.Err().Error()
		}
		s.slow.Record(e)
		if s.logger != nil {
			s.logger.Log(r.Context(), "scan", "shard", wq.Shard, "dur_ms", e.DurMs, "rows", rows)
		}
	}()
	if wq.NShards > 0 {
		// Replicated cluster: this store holds two shards' data (its own
		// plus the one it replicates), and the coordinator asked for one.
		// The limit moves out of the pushed-down query — applied before
		// the home-shard filter it would undercount.
		limit := q.Limit
		q.Limit = 0
		cur = &shardFilterCursor{
			inner:   s.store.Scan(ctx, q),
			shard:   wq.Shard,
			nshards: wq.NShards,
			limit:   limit,
		}
	} else {
		cur = s.store.Scan(ctx, q)
	}
	defer cur.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := enc.Encode(&cluster.WireRecord{Kind: cluster.RecHdr, Shard: s.shard, Generation: s.store.Generation()}); err != nil {
		return
	}
	flush()

	sentEnts := make(map[uint64]struct{})
	batch := make([]storage.Match, storage.ScanBatchSize)
	for {
		n := cur.Next(batch)
		if n == 0 {
			break
		}
		iq.AddRows(n)
		for _, m := range batch[:n] {
			if _, ok := sentEnts[uint64(m.Subj.ID)]; !ok {
				sentEnts[uint64(m.Subj.ID)] = struct{}{}
				if err := enc.Encode(&cluster.WireRecord{Kind: cluster.RecEnt, Ent: cluster.NewWireEntity(m.Subj)}); err != nil {
					return
				}
			}
			if _, ok := sentEnts[uint64(m.Obj.ID)]; !ok {
				sentEnts[uint64(m.Obj.ID)] = struct{}{}
				if err := enc.Encode(&cluster.WireRecord{Kind: cluster.RecEnt, Ent: cluster.NewWireEntity(m.Obj)}); err != nil {
					return
				}
			}
			if err := enc.Encode(&cluster.WireRecord{
				Kind: cluster.RecRow, Ev: cluster.NewWireEvent(m.Event),
				Subj: uint64(m.Subj.ID), Obj: uint64(m.Obj.ID),
			}); err != nil {
				return
			}
			rows++
		}
		flush()
	}
	if err := cur.Err(); err != nil {
		// The stream is already underway; report the failure in-band. A
		// canceled request needs no trailer — nobody is listening.
		if r.Context().Err() == nil {
			_ = enc.Encode(&cluster.WireRecord{Kind: cluster.RecErr, Error: err.Error()})
			flush()
		}
		return
	}
	_ = enc.Encode(&cluster.WireRecord{Kind: cluster.RecEnd, Rows: rows})
	flush()
}

// ndjsonRequested reports whether the client asked for streaming NDJSON.
// A q-value of 0 means "explicitly not acceptable" (RFC 9110 §12.4.2).
func ndjsonRequested(r *http.Request) bool {
	for _, accept := range r.Header.Values("Accept") {
		for _, part := range strings.Split(accept, ",") {
			mt, params, err := mime.ParseMediaType(part)
			if err != nil || mt != "application/x-ndjson" {
				continue
			}
			if q, qerr := strconv.ParseFloat(params["q"], 64); qerr == nil && q <= 0 {
				continue
			}
			return true
		}
	}
	return false
}

// streamHeader is the first NDJSON line: everything QueryResponse carries
// except the rows, which follow one per line as JSON arrays.
type streamHeader struct {
	Columns      []string       `json:"columns"`
	RowCount     int            `json:"row_count"`
	DataQueries  int            `json:"data_queries"`
	TuplesMax    int            `json:"tuples_max"`
	PlanCached   bool           `json:"plan_cached"`
	ResultCached bool           `json:"result_cached"`
	ElapsedMs    float64        `json:"elapsed_ms"`
	TraceID      string         `json:"trace_id,omitempty"`
	Trace        *obs.TraceJSON `json:"trace,omitempty"`
}

// writeNDJSON writes a result as newline-delimited JSON, flushing every
// few hundred rows so consumers can process rows as they arrive. The
// streaming is wire-level: the engine still materializes the full Result
// (row_count in the header depends on it) before the first byte goes out;
// pushing cursors through projection to make the rows themselves lazy is
// the natural next step on top of this wire format.
func writeNDJSON(w http.ResponseWriter, resp *QueryResponse) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(&streamHeader{
		Columns:      resp.Columns,
		RowCount:     resp.RowCount,
		DataQueries:  resp.DataQueries,
		TuplesMax:    resp.TuplesMax,
		PlanCached:   resp.PlanCached,
		ResultCached: resp.ResultCached,
		ElapsedMs:    resp.ElapsedMs,
		TraceID:      resp.TraceID,
		Trace:        resp.Trace,
	})
	flusher, _ := w.(http.Flusher)
	for i, row := range resp.Rows {
		if err := enc.Encode(row); err != nil {
			return
		}
		if flusher != nil && i%256 == 255 {
			flusher.Flush()
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
}

func queryResponse(res *engine.Result, planCached, resultCached bool) *QueryResponse {
	return &QueryResponse{
		Columns:      res.Columns,
		Rows:         res.Rows,
		RowCount:     len(res.Rows),
		DataQueries:  res.DataQueries,
		TuplesMax:    res.TuplesMax,
		PlanCached:   planCached,
		ResultCached: resultCached,
	}
}

// readQuery extracts the AIQL source from a /query body (and whether the
// client asked for the trace block): a JSON object for application/json,
// the raw body otherwise. Bodies over 1 MiB are rejected rather than
// truncated — a silently clipped query could still parse and would then
// execute as a different query than the client sent.
func readQuery(w http.ResponseWriter, r *http.Request) (string, bool, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		return "", false, fmt.Errorf("read body: %w", err)
	}
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if ct == "application/json" {
		var req queryRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", false, fmt.Errorf("parse request: %w", err)
		}
		if strings.TrimSpace(req.Query) == "" {
			return "", false, fmt.Errorf("empty query")
		}
		return req.Query, req.Trace, nil
	}
	if strings.TrimSpace(string(body)) == "" {
		return "", false, fmt.Errorf("empty query")
	}
	return string(body), false, nil
}

// IngestResponse is the JSON reply to /ingest.
type IngestResponse struct {
	Entities   int    `json:"entities"`
	Events     int    `json:"events"`
	Generation uint64 `json:"generation"`
	// Workers is the number of worker shards the batch was scattered to
	// (coordinator mode only).
	Workers int `json:"workers,omitempty"`
	// Duplicate reports that a replication-tagged batch was already
	// applied and this request was a no-op — the idempotent answer to a
	// coordinator retry or an overlapping catch-up.
	Duplicate bool `json:"duplicate,omitempty"`
}

// handleIngest appends a batch of records in the aiqlgen JSON-lines wire
// format (entity and event lines in any order). The batch is staged into a
// dataset first, then ingested under the store's write lock, so concurrent
// queries see either none or all of the batch.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	ds, err := trace.Read(http.MaxBytesReader(w, r.Body, s.maxIngest))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		s.httpTraceError(w, r, status, err)
		return
	}
	start := obs.Now()
	defer func() {
		s.ingestDur.Observe(obs.Since(start).Seconds())
	}()
	if s.coord != nil {
		// Scatter the batch across the worker shards by placement.
		if err := s.coord.Ingest(r.Context(), ds); err != nil {
			s.httpTraceError(w, r, http.StatusBadGateway, err)
			return
		}
		s.ingests.Add(1)
		writeJSON(w, http.StatusOK, &IngestResponse{
			Entities: len(ds.Entities),
			Events:   len(ds.Events),
			Workers:  len(s.coord.Workers()),
		})
		return
	}
	tag, role, hasTag, err := replTagFromRequest(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	duplicate := false
	switch {
	case hasTag && s.durable != nil:
		applied, err := s.durable.IngestTagged(tag, ds, replQuiet(role))
		if err != nil {
			httpError(w, http.StatusInternalServerError, fmt.Errorf("durable ingest: %w", err))
			return
		}
		duplicate = !applied
	case hasTag:
		duplicate = !s.store.IngestTagged(tag, ds, replQuiet(role))
	case s.durable != nil:
		// Journal before applying: the batch is only acknowledged once the
		// WAL accepted it, so an acknowledged ingest survives a crash.
		if err := s.durable.Ingest(ds); err != nil {
			httpError(w, http.StatusInternalServerError, fmt.Errorf("durable ingest: %w", err))
			return
		}
	default:
		s.store.Ingest(ds)
	}
	// The generation bump already invalidates cached results; purging
	// eagerly frees their memory instead of waiting for LRU pressure.
	s.results.Purge()
	s.ingests.Add(1)
	writeJSON(w, http.StatusOK, &IngestResponse{
		Entities:   len(ds.Entities),
		Events:     len(ds.Events),
		Generation: s.store.Generation(),
		Duplicate:  duplicate,
	})
}

// StatsResponse is the JSON reply to /stats.
type StatsResponse struct {
	Role          string     `json:"role"`
	Events        int        `json:"events"`
	Partitions    int        `json:"partitions"`
	Agents        []int      `json:"agents"`
	Days          []int      `json:"days"`
	Generation    uint64     `json:"generation"`
	LiveSnapshots int        `json:"live_snapshots"`
	LiveCursors   int        `json:"live_cursors"`
	QueriesServed uint64     `json:"queries_served"`
	IngestBatches uint64     `json:"ingest_batches"`
	ScansServed   uint64     `json:"scans_served"`
	UptimeSeconds float64    `json:"uptime_seconds"`
	PlanCache     CacheStats `json:"plan_cache"`
	ResultCache   CacheStats `json:"result_cache"`
	// Shard is this worker's shard index; nil when the server is not a
	// cluster worker.
	Shard *int `json:"shard,omitempty"`
	// Cluster carries the coordinator's scatter/gather counters
	// (coordinator mode only).
	Cluster *cluster.Stats `json:"cluster,omitempty"`
	// Workers lists the worker base URLs in shard order (coordinator mode
	// only).
	Workers []string `json:"workers,omitempty"`
	// Durability carries the WAL depth, segment counts and recovery
	// counters when the store is disk-backed (aiqld -data-dir).
	Durability *storage.DurabilityStats `json:"durability,omitempty"`
	// Scan carries the store's block-level scan counters: zone-map skips
	// versus decodes over sealed columnar segments, and cold-partition
	// thaws. Absent on coordinators, which hold no data themselves.
	Scan *storage.ScanStats `json:"scan,omitempty"`
	// Streaming carries the continuous-query counters: registered rules,
	// live subscribers, emissions, slow-consumer drops and join-state
	// bounds. On a coordinator the numbers are the merge layer's.
	Streaming *stream.Stats `json:"streaming,omitempty"`
	// Replication carries the store's replicated-ingest applied/duplicate
	// counters and per-(epoch, shard) applied-state (store-backed modes);
	// on a coordinator the replication counters live in Cluster.
	Replication *storage.ReplStats `json:"replication,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if s.coord != nil {
		cs := s.coord.Stats()
		ss := s.coord.StreamingStats()
		ss.Subscribers = int(s.subscribers.Load())
		writeJSON(w, http.StatusOK, &StatsResponse{
			Role:          "coordinator",
			QueriesServed: s.queries.Load(),
			IngestBatches: s.ingests.Load(),
			UptimeSeconds: time.Since(s.started).Seconds(),
			PlanCache:     s.plans.Stats(),
			ResultCache:   s.results.Stats(),
			Cluster:       &cs,
			Workers:       s.coord.Workers(),
			Streaming:     &ss,
		})
		return
	}
	resp := &StatsResponse{
		Role:          "single",
		Events:        s.store.EventCount(),
		Partitions:    s.store.PartitionCount(),
		Agents:        s.store.Agents(),
		Days:          s.store.Days(),
		Generation:    s.store.Generation(),
		LiveSnapshots: s.store.LiveSnapshots(),
		LiveCursors:   s.store.LiveCursors(),
		QueriesServed: s.queries.Load(),
		IngestBatches: s.ingests.Load(),
		ScansServed:   s.scans.Load(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		PlanCache:     s.plans.Stats(),
		ResultCache:   s.results.Stats(),
	}
	if s.shard >= 0 {
		resp.Role = "worker"
		shard := s.shard
		resp.Shard = &shard
	}
	if s.durable != nil {
		ds := s.durable.DurabilityStats()
		resp.Durability = &ds
	}
	sc := s.store.ScanStats()
	resp.Scan = &sc
	ss := s.matcher.Stats()
	resp.Streaming = &ss
	rs := s.store.ReplStats()
	resp.Replication = &rs
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
