package server

import (
	"testing"

	"aiql/internal/engine"
)

func TestResultCacheLRUEviction(t *testing.T) {
	rc := NewResultCache(2)
	ra := &engine.Result{Columns: []string{"a"}}
	rb := &engine.Result{Columns: []string{"b"}}
	rcc := &engine.Result{Columns: []string{"c"}}

	rc.Put("a", 1, ra)
	rc.Put("b", 1, rb)
	if _, ok := rc.Get("a", 1); !ok { // touch a so b becomes the LRU entry
		t.Fatal("a missing before eviction")
	}
	rc.Put("c", 1, rcc)

	if _, ok := rc.Get("b", 1); ok {
		t.Error("b should have been evicted as least recently used")
	}
	if got, ok := rc.Get("a", 1); !ok || got != ra {
		t.Error("a should have survived eviction")
	}
	if _, ok := rc.Get("c", 1); !ok {
		t.Error("c should be present")
	}
	s := rc.Stats()
	if s.Size != 2 || s.Capacity != 2 || s.Evictions != 1 {
		t.Errorf("stats = %+v, want size 2, capacity 2, evictions 1", s)
	}
}

func TestResultCacheGenerationKeysAreDistinct(t *testing.T) {
	rc := NewResultCache(8)
	old := &engine.Result{Columns: []string{"old"}}
	rc.Put("q", 1, old)
	if _, ok := rc.Get("q", 2); ok {
		t.Fatal("result cached at generation 1 served for generation 2")
	}
	if got, ok := rc.Get("q", 1); !ok || got != old {
		t.Fatal("result for generation 1 lost")
	}
}

func TestResultCachePurge(t *testing.T) {
	rc := NewResultCache(8)
	rc.Put("q", 1, &engine.Result{})
	rc.Purge()
	if _, ok := rc.Get("q", 1); ok {
		t.Fatal("entry survived Purge")
	}
	if s := rc.Stats(); s.Size != 0 {
		t.Fatalf("size after purge = %d, want 0", s.Size)
	}
}

func TestDisabledCacheStoresNothing(t *testing.T) {
	pc := NewPlanCache(-1)
	pc.Put("q", nil)
	if _, ok := pc.Get("q"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	s := pc.Stats()
	if s.Size != 0 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want empty with 1 miss", s)
	}
}

func TestPlanCacheUpdateKeepsSizeBounded(t *testing.T) {
	pc := NewPlanCache(1)
	pc.Put("q", nil)
	pc.Put("q", nil) // update, not insert
	if s := pc.Stats(); s.Size != 1 || s.Evictions != 0 {
		t.Fatalf("stats = %+v, want size 1 with no evictions", s)
	}
}
