package server

// Replication endpoints and helpers: the tagged /ingest path (idempotent
// apply by coordinator batch tag), the home-shard scan filter replicated
// workers apply, and the WAL-ship / catch-up pair a restarted replica uses
// to pull the batches it missed from the shard's other copy-holder. See
// docs/CLUSTER.md.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"aiql/internal/mpp"
	"aiql/internal/storage"
	"aiql/internal/timeutil"
)

// replTagFromRequest parses the replication headers a coordinator (or a
// catch-up pull) attaches to /ingest. Returns hasTag=false on an untagged
// request; an error means the headers are present but malformed.
func replTagFromRequest(r *http.Request) (tag storage.ReplTag, role string, hasTag bool, err error) {
	epoch := r.Header.Get("X-Aiql-Repl-Epoch")
	if epoch == "" {
		return tag, "", false, nil
	}
	shard, serr := strconv.Atoi(r.Header.Get("X-Aiql-Repl-Shard"))
	seq, qerr := strconv.ParseUint(r.Header.Get("X-Aiql-Repl-Seq"), 10, 64)
	if serr != nil || qerr != nil || shard < 0 || seq == 0 {
		return tag, "", false, fmt.Errorf("malformed replication headers (shard %q, seq %q)",
			r.Header.Get("X-Aiql-Repl-Shard"), r.Header.Get("X-Aiql-Repl-Seq"))
	}
	return storage.ReplTag{Epoch: epoch, Shard: shard, Seq: seq},
		r.Header.Get("X-Aiql-Repl-Role"), true, nil
}

// replQuiet reports whether a tagged ingest should skip the standing-rule
// observer: replica copies and catch-up transfers re-deliver data the
// primary's ingest already evaluated, and rules must fire once per batch,
// not once per copy.
func replQuiet(role string) bool {
	return role == "replica" || role == "catchup"
}

// shardFilterCursor narrows a store scan to rows whose home shard (under
// the semantics-aware placement over nshards workers) is shard. A
// replicated worker's store holds two shards' data; the coordinator asks
// each worker for exactly one shard's rows so the gather never
// double-counts. The limit applies after the filter — a pushed-down
// pre-filter limit would undercount.
type shardFilterCursor struct {
	inner   storage.Cursor
	shard   int
	nshards int
	limit   int
	emitted int
	done    bool
}

func (c *shardFilterCursor) Next(batch []storage.Match) int {
	if c.done || len(batch) == 0 {
		return 0
	}
	want := len(batch)
	if c.limit > 0 {
		if remain := c.limit - c.emitted; remain < want {
			want = remain
		}
	}
	if want <= 0 {
		c.done = true
		return 0
	}
	for {
		n := c.inner.Next(batch[:want])
		if n == 0 {
			return 0
		}
		kept := 0
		for i := 0; i < n; i++ {
			ev := batch[i].Event
			if mpp.SemanticsAware.Shard(ev.AgentID, timeutil.DayIndex(ev.Start), c.nshards) != c.shard {
				continue
			}
			batch[kept] = batch[i]
			kept++
		}
		if kept == 0 {
			// Every row in this batch belonged to the other shard; keep
			// pulling — returning 0 would read as end-of-stream.
			continue
		}
		c.emitted += kept
		return kept
	}
}

func (c *shardFilterCursor) Err() error { return c.inner.Err() }
func (c *shardFilterCursor) Close()     { c.inner.Close() }

// shipRecord is one NDJSON line of a /walship response: a tagged batch
// ("tag"), the explicit end trailer carrying the shipper's applied-state
// for the requested shards ("end"), or an in-band failure ("error"). The
// trailer lets the puller prove it now covers everything the peer applied
// — or detect that compaction folded needed history into segments.
type shipRecord struct {
	Kind  string                   `json:"kind"`
	Epoch string                   `json:"epoch,omitempty"`
	Shard int                      `json:"shard,omitempty"`
	Seq   uint64                   `json:"seq,omitempty"`
	Batch []byte                   `json:"batch,omitempty"`
	Count int                      `json:"count,omitempty"`
	State []storage.ReplShardState `json:"state,omitempty"`
	Error string                   `json:"error,omitempty"`
}

// handleWalShip streams every tagged WAL record for the requested shards
// (?shards=0,2; all shards when absent) as NDJSON. Durable workers only —
// the WAL is the replication log. Compaction is held off for the duration,
// so the stream is a consistent snapshot of the log.
func (s *Server) handleWalShip(w http.ResponseWriter, r *http.Request) {
	shards, err := parseShardSet(r.URL.Query().Get("shards"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	count := 0
	states, err := s.durable.ShipReplicated(shards, func(tag storage.ReplTag, payload []byte) error {
		count++
		return enc.Encode(&shipRecord{
			Kind: "tag", Epoch: tag.Epoch, Shard: tag.Shard, Seq: tag.Seq, Batch: payload,
		})
	})
	if err != nil {
		_ = enc.Encode(&shipRecord{Kind: "error", Error: err.Error()})
		return
	}
	_ = enc.Encode(&shipRecord{Kind: "end", Count: count, State: states})
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

func parseShardSet(csv string) (map[int]bool, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	set := make(map[int]bool)
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad shards parameter %q", csv)
		}
		set[n] = true
	}
	return set, nil
}

// catchupRequest is the body of POST /catchup: pull the named shards'
// tagged history from the peer's WAL and apply whatever this store has not
// already applied.
type catchupRequest struct {
	From   string `json:"from"`
	Shards []int  `json:"shards,omitempty"`
}

// CatchupResponse reports one catch-up transfer.
type CatchupResponse struct {
	Applied    int `json:"applied"`
	Duplicates int `json:"duplicates"`
	Records    int `json:"records"`
}

func (s *Server) handleCatchup(w http.ResponseWriter, r *http.Request) {
	var req catchupRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode catchup request: %w", err))
		return
	}
	if strings.TrimSpace(req.From) == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("catchup: missing \"from\" peer URL"))
		return
	}
	resp, err := CatchUp(r.Context(), s.durable, req.From, req.Shards)
	if err != nil {
		status := http.StatusBadGateway
		if isHistoryGap(err) {
			// The peer compacted WAL records this store never applied:
			// catch-up cannot close the gap; the operator must re-seed
			// from a fresh copy.
			status = http.StatusConflict
		}
		httpError(w, status, err)
		return
	}
	s.results.Purge()
	writeJSON(w, http.StatusOK, resp)
}

// historyGapError marks a catch-up that cannot complete because the peer's
// WAL no longer holds records the peer applied and this store is missing.
type historyGapError struct{ state storage.ReplShardState }

func (e *historyGapError) Error() string {
	return fmt.Sprintf("catchup: peer history for epoch %s shard %d compacted past this store's state (peer watermark %d); re-seed required",
		e.state.Epoch, e.state.Shard, e.state.Watermark)
}

func isHistoryGap(err error) bool {
	_, ok := err.(*historyGapError)
	return ok
}

// CatchUp pulls the peer's tagged WAL history for the given shards (all
// when nil) and applies every batch this store has not already applied —
// idempotently, so overlapping or repeated transfers are no-ops. After the
// stream, the peer's applied-state trailer is checked against local state:
// if the peer has applied tags this store still lacks after the transfer,
// those records were compacted out of the peer's WAL and a
// *historyGapError is returned — the store needs a re-seed, not a retry.
// cmd/aiqld drives this at boot (-catchup-from) and POST /catchup drives
// it on demand.
func CatchUp(ctx context.Context, durable *storage.Persistent, from string, shards []int) (*CatchupResponse, error) {
	if err := durable.WarmUp(); err != nil {
		return nil, err
	}
	target := strings.TrimRight(from, "/") + "/walship"
	if len(shards) > 0 {
		parts := make([]string, len(shards))
		for i, sh := range shards {
			parts[i] = strconv.Itoa(sh)
		}
		target += "?shards=" + url.QueryEscape(strings.Join(parts, ","))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("catchup: pull %s: %w", target, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("catchup: peer returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}

	out := &CatchupResponse{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 512<<20)
	sawEnd := false
	var peerStates []storage.ReplShardState
	for sc.Scan() {
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		var rec shipRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("catchup: malformed ship record: %w", err)
		}
		switch rec.Kind {
		case "tag":
			ds, err := storage.DecodeBatchPayload(rec.Batch)
			if err != nil {
				return nil, fmt.Errorf("catchup: batch for %s/%d/%d: %w", rec.Epoch, rec.Shard, rec.Seq, err)
			}
			tag := storage.ReplTag{Epoch: rec.Epoch, Shard: rec.Shard, Seq: rec.Seq}
			// Quiet: catch-up re-delivers data whose original ingest
			// already fed the standing rules on the shard's primary.
			applied, err := durable.IngestTagged(tag, ds, true)
			if err != nil {
				return nil, fmt.Errorf("catchup: apply %s: %w", tag, err)
			}
			out.Records++
			if applied {
				out.Applied++
			} else {
				out.Duplicates++
			}
		case "end":
			sawEnd = true
			peerStates = rec.State
		case "error":
			return nil, fmt.Errorf("catchup: peer ship failed: %s", rec.Error)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("catchup: stream: %w", err)
	}
	if !sawEnd {
		return nil, fmt.Errorf("catchup: ship stream truncated (no end trailer): %w", io.ErrUnexpectedEOF)
	}
	// Gap check: everything the peer has applied for these shards must now
	// be applied here too. Anything missing was folded into the peer's
	// segments before this store ever saw it — unshippable over the WAL.
	for _, peer := range peerStates {
		local := durable.ReplState(peer.Epoch, peer.Shard)
		if !local.Covers(peer) {
			return nil, &historyGapError{state: peer}
		}
	}
	return out, nil
}
