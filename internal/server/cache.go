package server

import (
	"container/list"
	"sync"

	"aiql/internal/engine"
)

// CacheStats is a point-in-time snapshot of one cache's counters, surfaced
// verbatim at /stats.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
}

// lru is a mutex-guarded bounded LRU map; both caches are thin typed
// wrappers around it. The zero capacity means "disabled": every lookup is a
// miss and nothing is stored, so cache-off ablations need no special casing
// at the call sites.
type lru[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List // front = most recently used; values are *entry[K, V]
	items map[K]*list.Element
	stats CacheStats
}

type entry[K comparable, V any] struct {
	key K
	val V
}

func newLRU[K comparable, V any](capacity int) *lru[K, V] {
	return &lru[K, V]{
		cap:   capacity,
		order: list.New(),
		items: make(map[K]*list.Element),
	}
}

func (c *lru[K, V]) get(k K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*entry[K, V]).val, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

func (c *lru[K, V]) put(k K, v V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[k]; ok {
		el.Value.(*entry[K, V]).val = v
		c.order.MoveToFront(el)
		return
	}
	c.items[k] = c.order.PushFront(&entry[K, V]{key: k, val: v})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[K, V]).key)
		c.stats.Evictions++
	}
}

// contains reports presence without touching recency order or counters —
// a diagnostic peek, not a cache access.
func (c *lru[K, V]) contains(k K) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[k]
	return ok
}

func (c *lru[K, V]) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[K]*list.Element)
}

func (c *lru[K, V]) snapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = len(c.items)
	s.Capacity = c.cap
	return s
}

// PlanCache maps normalized query text to its compiled PreparedQuery, so a
// repeated investigation pays lex/parse/compile/schedule-setup only once.
// Plans are immutable and dataset-independent, so entries never need
// invalidation — only LRU bounding.
type PlanCache struct {
	c *lru[string, *engine.PreparedQuery]
}

// NewPlanCache creates a plan cache holding at most capacity plans.
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{c: newLRU[string, *engine.PreparedQuery](capacity)}
}

// Get returns the cached plan for normalized source key, if present.
func (pc *PlanCache) Get(key string) (*engine.PreparedQuery, bool) { return pc.c.get(key) }

// Put stores a compiled plan under its normalized source key.
func (pc *PlanCache) Put(key string, p *engine.PreparedQuery) { pc.c.put(key, p) }

// Contains reports whether a plan is cached without counting a hit or miss.
func (pc *PlanCache) Contains(key string) bool { return pc.c.contains(key) }

// Stats snapshots the hit/miss counters.
func (pc *PlanCache) Stats() CacheStats { return pc.c.snapshot() }

// resultKey identifies one cached result: the plan (by normalized source)
// executed against one immutable snapshot of the store (by generation).
type resultKey struct {
	src string
	gen uint64
}

// ResultCache maps (plan, store generation) to the materialized Result.
// The generation in the key makes invalidation automatic — after an ingest
// bumps the store's generation, lookups miss because they ask for the new
// generation — and Purge drops the now-unreachable stale entries eagerly so
// they do not squat in the LRU until capacity forces them out.
type ResultCache struct {
	c *lru[resultKey, *engine.Result]
}

// NewResultCache creates a result cache holding at most capacity results.
func NewResultCache(capacity int) *ResultCache {
	return &ResultCache{c: newLRU[resultKey, *engine.Result](capacity)}
}

// Get returns the cached result of plan src against store generation gen.
func (rc *ResultCache) Get(src string, gen uint64) (*engine.Result, bool) {
	return rc.c.get(resultKey{src: src, gen: gen})
}

// Put stores a result computed by plan src against store generation gen.
func (rc *ResultCache) Put(src string, gen uint64, r *engine.Result) {
	rc.c.put(resultKey{src: src, gen: gen}, r)
}

// Purge drops every entry; the server calls it after each ingest.
func (rc *ResultCache) Purge() { rc.c.purge() }

// Stats snapshots the hit/miss counters.
func (rc *ResultCache) Stats() CacheStats { return rc.c.snapshot() }
