package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aiql/internal/cluster"
	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/mpp"
	"aiql/internal/obs"
	"aiql/internal/server"
	"aiql/internal/storage"
	"aiql/internal/stream"
	"aiql/internal/types"
)

// scrapeMetrics fetches and strictly parses the server's /metrics payload.
func scrapeMetrics(t *testing.T, url string) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q, want text/plain; version=0.0.4", ct)
	}
	exp, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("/metrics does not parse as Prometheus text format: %v", err)
	}
	return exp
}

// mustValue returns the named series' value, failing the test if absent.
func mustValue(t *testing.T, exp *obs.Exposition, name string, kv ...string) float64 {
	t.Helper()
	v, ok := exp.Value(name, kv...)
	if !ok {
		t.Fatalf("series %s%v missing from /metrics", name, kv)
	}
	return v
}

// TestMetricsScrape exercises the exposition end to end on a live server:
// the payload parses strictly, the query counters and latency histogram
// move with traffic, and the per-route request counter labels the routes
// the middleware saw.
func TestMetricsScrape(t *testing.T) {
	ts, _ := newTestServer(t, server.Options{})

	postQuery(t, ts, keyReadQuery)
	// Distinct query text so the second request misses the result cache.
	postQuery(t, ts, "agentid = 1\nproc p read file f as evt\nreturn p")

	exp := scrapeMetrics(t, ts.URL)
	if got := mustValue(t, exp, "aiql_queries_total"); got != 2 {
		t.Errorf("aiql_queries_total = %v, want 2", got)
	}
	if got := mustValue(t, exp, "aiql_query_duration_seconds_count"); got != 2 {
		t.Errorf("aiql_query_duration_seconds_count = %v, want 2", got)
	}
	if typ := exp.Types["aiql_query_duration_seconds"]; typ != "histogram" {
		t.Errorf("aiql_query_duration_seconds TYPE = %q, want histogram", typ)
	}
	if got := mustValue(t, exp, "aiql_http_requests_total", "route", "POST /query", "code", "200"); got != 2 {
		t.Errorf(`aiql_http_requests_total{route="POST /query",code="200"} = %v, want 2`, got)
	}
	if got := mustValue(t, exp, "aiql_store_events_count"); got != 3 {
		t.Errorf("aiql_store_events_count = %v, want 3", got)
	}
	if got := mustValue(t, exp, "aiql_live_snapshots_count"); got != 0 {
		t.Errorf("aiql_live_snapshots_count = %v at rest, want 0", got)
	}
	// A second scrape must also parse: scraping is read-only and repeatable.
	scrapeMetrics(t, ts.URL)
}

// TestMetricsBlockCounterInvariant pins the zone-map pruning invariant on
// the exposed counters: after queries over a sealed (compacted) store,
// every considered block was either skipped by a zone map or decoded —
// blocks_decoded + blocks_skipped == blocks_considered.
func TestMetricsBlockCounterInvariant(t *testing.T) {
	day := gen.DayStart(1)
	b := gen.NewBuilder(7)
	bash := b.Proc(testHost, "/bin/bash")
	curl := b.ProcInstance(testHost, "/usr/bin/curl")
	secret := b.File(testHost, "/home/alice/.ssh/id_rsa")
	for i := 0; i < 500; i++ {
		tmp := b.File(testHost, "/tmp/scratch-"+string(rune('a'+i%26)))
		b.Emit(testHost, bash, tmp, types.OpWrite, day+int64(1000+i), 128)
	}
	b.Emit(testHost, curl, secret, types.OpRead, day+900000, 4096)

	// Ingest and compact in a first incarnation, then reopen: a reopened
	// store installs its segments as cold partitions, so queries reach the
	// block-level scan path the counters instrument.
	dir := t.TempDir()
	p0, err := storage.OpenPersistent(dir, storage.PersistOptions{
		FlushInterval:   -1,
		CompactInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p0.Ingest(b.Dataset()); err != nil {
		t.Fatal(err)
	}
	if err := p0.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := p0.Close(); err != nil {
		t.Fatal(err)
	}
	p, err := storage.OpenPersistent(dir, storage.PersistOptions{
		FlushInterval:   -1,
		CompactInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })

	srv, err := server.NewPersistent(p, engine.New(p.Store, engine.Options{}), server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	postQuery(t, ts, keyReadQuery)

	exp := scrapeMetrics(t, ts.URL)
	considered := mustValue(t, exp, "aiql_scan_blocks_considered_total")
	skipped := mustValue(t, exp, "aiql_scan_blocks_skipped_total")
	decoded := mustValue(t, exp, "aiql_scan_blocks_decoded_total")
	if considered == 0 {
		t.Fatal("aiql_scan_blocks_considered_total = 0 after a query over a compacted store")
	}
	if decoded+skipped != considered {
		t.Errorf("block counters violate the pruning invariant: decoded %v + skipped %v != considered %v",
			decoded, skipped, considered)
	}
	if got := mustValue(t, exp, "aiql_segments_count"); got == 0 {
		t.Error("aiql_segments_count = 0 after Compact")
	}
}

// TestMetricsUnderStreamLoad is the soak-scrape check CI runs alongside the
// stream soak: with a standing rule, a live subscriber, and batches landing,
// /metrics keeps parsing strictly on every mid-run scrape and the streaming
// counters move monotonically.
func TestMetricsUnderStreamLoad(t *testing.T) {
	ts, _ := newTestServer(t, server.Options{})
	info := registerRule(t, ts, stream.RuleSpec{Query: `proc p read file f["%id_rsa"] return p, f`})

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/subscribe/"+info.ID, nil)
	sub, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Body.Close()

	const batches = 20
	var lastEmitted float64
	for i := 0; i < batches; i++ {
		id := 800000 + i*10
		lines := fmt.Sprintf(`{"kind":"entity","id":%d,"type":"proc","agentid":1,"attrs":{"exe_name":"/usr/bin/exfil","pid":"%d"}}
{"kind":"entity","id":%d,"type":"file","agentid":1,"attrs":{"name":"/home/alice/.ssh/id_rsa"}}
{"kind":"event","id":%d,"agentid":1,"subject":%d,"object":%d,"op":"read","start":%d,"seq":%d}
`, id, i, id+1, id+2, id, id+1, 1488412800000+int64(i), id+2)
		ingestLines(t, ts, lines)

		// Scrape mid-run every few batches: the payload must stay strictly
		// parseable and the emission counter must never move backwards.
		if i%5 != 4 {
			continue
		}
		exp := scrapeMetrics(t, ts.URL)
		if got := mustValue(t, exp, "aiql_stream_rules_count"); got != 1 {
			t.Fatalf("aiql_stream_rules_count = %v mid-run, want 1", got)
		}
		if got := mustValue(t, exp, "aiql_subscribers_count"); got != 1 {
			t.Fatalf("aiql_subscribers_count = %v mid-run, want 1", got)
		}
		emitted := mustValue(t, exp, "aiql_stream_emitted_total")
		if emitted < lastEmitted {
			t.Fatalf("aiql_stream_emitted_total went backwards: %v -> %v", lastEmitted, emitted)
		}
		lastEmitted = emitted
	}

	// Emission is asynchronous; wait for the final count to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		exp := scrapeMetrics(t, ts.URL)
		if v := mustValue(t, exp, "aiql_stream_emitted_total"); v == batches {
			if got := mustValue(t, exp, "aiql_ingest_batches_total"); got != batches {
				t.Errorf("aiql_ingest_batches_total = %v, want %d", got, batches)
			}
			if got := mustValue(t, exp, "aiql_ingest_duration_seconds_count"); got != batches {
				t.Errorf("aiql_ingest_duration_seconds_count = %v, want %d", got, batches)
			}
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("aiql_stream_emitted_total = %v, want %d", v, batches)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMetricsFailoverScrape is the failover-scrape check CI runs alongside
// the failover smoke: on an R=2 cluster with a dead worker, the query still
// answers, and the coordinator's /metrics shows the failover — parsed
// strictly, with the failover and worker-failure counters moved.
func TestMetricsFailoverScrape(t *testing.T) {
	b := gen.NewBuilder(13)
	bash := b.Proc(testHost, "/bin/bash")
	curl := b.ProcInstance(testHost, "/usr/bin/curl")
	secret := b.File(testHost, "/home/alice/.ssh/id_rsa")
	// Data on several (agent, day) partitions so the semantics-aware
	// placement homes shards on both workers; a full-window query then has
	// legs on the dead worker and must fail over.
	for d := 1; d <= 4; d++ {
		day := gen.DayStart(d)
		for i := 0; i < 10; i++ {
			tmp := b.File(testHost, "/tmp/g")
			b.Emit(testHost, bash, tmp, types.OpWrite, day+int64(1000+i), 64)
		}
		b.Emit(testHost, curl, secret, types.OpRead, day+60000, 4096)
	}

	workers := make([]*httptest.Server, 2)
	urls := make([]string, 2)
	for i := range workers {
		st := storage.New(storage.Options{})
		ws := server.New(st, engine.New(st, engine.Options{}), server.Options{})
		ws.SetShard(i)
		workers[i] = httptest.NewServer(ws.Handler())
		urls[i] = workers[i].URL
	}
	t.Cleanup(workers[0].Close)
	coord, err := cluster.New(urls, cluster.Options{Placement: mpp.SemanticsAware, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Ingest(context.Background(), b.Dataset()); err != nil {
		t.Fatal(err)
	}
	cs := server.NewCoordinator(coord, engine.New(coord, engine.Options{}), server.Options{})
	ts := httptest.NewServer(cs.Handler())
	t.Cleanup(ts.Close)

	workers[1].Close() // the worker dies; its shard's replica lives on worker 0

	resp := postQuery(t, ts, keyReadQuery)
	if resp.RowCount == 0 {
		t.Fatal("failover query returned no rows")
	}

	exp := scrapeMetrics(t, ts.URL)
	if got := mustValue(t, exp, "aiql_cluster_workers_count"); got != 2 {
		t.Errorf("aiql_cluster_workers_count = %v, want 2", got)
	}
	if got := mustValue(t, exp, "aiql_cluster_replicas_count"); got != 2 {
		t.Errorf("aiql_cluster_replicas_count = %v, want 2", got)
	}
	if got := mustValue(t, exp, "aiql_cluster_failovers_total"); got == 0 {
		t.Error("aiql_cluster_failovers_total = 0 after a query with a dead worker")
	}
	if got := mustValue(t, exp, "aiql_cluster_worker_requests_total"); got == 0 {
		t.Error("aiql_cluster_worker_requests_total = 0 after a scattered query")
	}

	// The surviving worker's own exposition stays scrapeable and shows the
	// scans it served for both shards.
	wexp := scrapeMetrics(t, workers[0].URL)
	if got := mustValue(t, wexp, "aiql_scans_served_total"); got == 0 {
		t.Error("surviving worker served no scans")
	}
}

// findSpans walks a span tree depth-first collecting spans with the name.
func findSpans(spans []*obs.SpanJSON, name string) []*obs.SpanJSON {
	var out []*obs.SpanJSON
	for _, s := range spans {
		if s.Name == name {
			out = append(out, s)
		}
		out = append(out, findSpans(s.Children, name)...)
	}
	return out
}

// TestCoordinatorTraceSpanTree is the tracing acceptance scenario: a query
// against a 3-worker coordinator, asked for its trace, returns a span tree
// that attributes time per stage — plan, execute, scan, gather — and per
// worker leg, all under the client-chosen trace ID; and the same ID shows
// up in each worker's slow-query log, tying the coordinator's legs to the
// workers' server-side records.
func TestCoordinatorTraceSpanTree(t *testing.T) {
	day := gen.DayStart(1)
	b := gen.NewBuilder(11)
	bash := b.Proc(testHost, "/bin/bash")
	curl := b.ProcInstance(testHost, "/usr/bin/curl")
	secret := b.File(testHost, "/home/alice/.ssh/id_rsa")
	for i := 0; i < 30; i++ {
		tmp := b.File(testHost, "/tmp/f")
		b.Emit(testHost, bash, tmp, types.OpWrite, day+int64(1000+i), 64)
	}
	b.Emit(testHost, curl, secret, types.OpRead, day+50000, 4096)

	workers := make([]*httptest.Server, 3)
	urls := make([]string, 3)
	for i := range workers {
		st := storage.New(storage.Options{})
		ws := server.New(st, engine.New(st, engine.Options{}), server.Options{})
		ws.SetShard(i)
		workers[i] = httptest.NewServer(ws.Handler())
		t.Cleanup(workers[i].Close)
		urls[i] = workers[i].URL
	}
	// ArrivalOrder placement: every worker holds a slice of the data and
	// every query fans out to all three, so the trace shows three legs.
	coord, err := cluster.New(urls, cluster.Options{Placement: mpp.ArrivalOrder})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Ingest(context.Background(), b.Dataset()); err != nil {
		t.Fatal(err)
	}
	cs := server.NewCoordinator(coord, engine.New(coord, engine.Options{}), server.Options{})
	ts := httptest.NewServer(cs.Handler())
	t.Cleanup(ts.Close)

	const traceID = "investigation-42"
	body, _ := json.Marshal(map[string]any{"query": keyReadQuery, "trace": true})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceIDHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query returned %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceIDHeader); got != traceID {
		t.Errorf("response %s = %q, want %q (client ID must be echoed)", obs.TraceIDHeader, got, traceID)
	}
	var out server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.RowCount != 1 {
		t.Fatalf("query returned %d rows, want 1", out.RowCount)
	}
	if out.TraceID != traceID {
		t.Errorf("trace_id = %q, want %q", out.TraceID, traceID)
	}
	if out.Trace == nil {
		t.Fatal(`response has no "trace" block despite "trace": true`)
	}
	if out.Trace.ID != traceID {
		t.Errorf("trace block ID = %q, want %q", out.Trace.ID, traceID)
	}

	if n := len(findSpans(out.Trace.Spans, "plan")); n != 1 {
		t.Errorf("trace has %d plan spans, want 1", n)
	}
	execs := findSpans(out.Trace.Spans, "execute")
	if len(execs) != 1 {
		t.Fatalf("trace has %d execute spans, want 1", len(execs))
	}
	scans := findSpans(execs[0].Children, "scan")
	if len(scans) == 0 {
		t.Fatal("execute span has no scan children")
	}
	gathers := findSpans(scans[0].Children, "gather")
	if len(gathers) != 1 {
		t.Fatalf("scan span has %d gather children, want 1", len(gathers))
	}
	legs := findSpans(gathers[0].Children, "worker")
	if len(legs) != 3 {
		t.Fatalf("gather span has %d worker legs, want 3 (one per worker)", len(legs))
	}
	shards := map[string]bool{}
	for _, leg := range legs {
		if leg.Attrs["worker"] == "" {
			t.Errorf("worker leg missing its worker attribute: %+v", leg.Attrs)
		}
		shards[leg.Attrs["shard"]] = true
	}
	if len(shards) != 3 {
		t.Errorf("worker legs cover shards %v, want 3 distinct", shards)
	}

	// Cross-process correlation: each worker served its /scan leg under the
	// coordinator's trace ID and recorded it in its own slow log. The
	// worker's record lands just after its response body closes, so poll.
	for i, w := range workers {
		if !workerSlowLogHas(t, w.URL, traceID) {
			t.Errorf("worker %d slow log has no entry for trace %q", i, traceID)
		}
	}

	// The untraced path stays lean: no trace block unless asked.
	plain := postQuery(t, ts, keyReadQuery)
	if plain.Trace != nil {
		t.Error("untraced query response carries a trace block")
	}
	if plain.TraceID == "" {
		t.Error("untraced query response missing its trace_id")
	}
}

// workerSlowLogHas polls the worker's /debug/slow for an entry with the
// trace ID, allowing for the record landing moments after the scan
// response closes.
func workerSlowLogHas(t *testing.T, url, traceID string) bool {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(url + "/debug/slow")
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Slowest []*obs.SlowEntry `json:"slowest"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range out.Slowest {
			if e.TraceID == traceID {
				return true
			}
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDebugQueriesAndSlowLog checks the inspection plane on a local
// server: a finished query appears in /debug/slow with its span tree, and
// /debug/queries serves the (empty) in-flight registry.
func TestDebugQueriesAndSlowLog(t *testing.T) {
	ts, _ := newTestServer(t, server.Options{})
	postQuery(t, ts, keyReadQuery)

	resp, err := http.Get(ts.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var slow struct {
		Count   int              `json:"count"`
		Slowest []*obs.SlowEntry `json:"slowest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&slow); err != nil {
		t.Fatal(err)
	}
	if slow.Count != 1 || len(slow.Slowest) != 1 {
		t.Fatalf("slow log holds %d entries, want 1", slow.Count)
	}
	e := slow.Slowest[0]
	if e.TraceID == "" {
		t.Error("slow entry missing trace ID")
	}
	if e.Rows != 1 {
		t.Errorf("slow entry rows = %d, want 1", e.Rows)
	}
	if e.Trace == nil || len(e.Trace.Spans) == 0 {
		t.Error("slow entry missing its span tree")
	}

	resp2, err := http.Get(ts.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var inflight struct {
		Count   int               `json:"count"`
		Queries []json.RawMessage `json:"queries"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&inflight); err != nil {
		t.Fatal(err)
	}
	if inflight.Count != 0 {
		t.Errorf("in-flight registry reports %d queries at rest, want 0", inflight.Count)
	}
}
