package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/server"
	"aiql/internal/storage"
	"aiql/internal/types"
)

const testHost = 1

// newTestServer builds a small single-host dataset (one ssh-key read) and
// serves it; the returned store allows direct generation checks.
func newTestServer(t *testing.T, opts server.Options) (*httptest.Server, *storage.Store) {
	t.Helper()
	day := gen.DayStart(1)
	b := gen.NewBuilder(42)
	bash := b.Proc(testHost, "/bin/bash")
	curl := b.ProcInstance(testHost, "/usr/bin/curl")
	secret := b.File(testHost, "/home/alice/.ssh/id_rsa")
	c2 := b.Conn(testHost, "203.0.113.9", 443)
	b.Emit(testHost, bash, curl, types.OpStart, day+1000, 0)
	b.Emit(testHost, curl, secret, types.OpRead, day+2000, 4096)
	b.Emit(testHost, curl, c2, types.OpWrite, day+3000, 4096)

	st := storage.New(storage.Options{})
	st.Ingest(b.Dataset())
	srv := server.New(st, engine.New(st, engine.Options{}), opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, st
}

const keyReadQuery = `
	agentid = 1
	proc p read file f["%id_rsa"] as evt
	return p, f`

func postQuery(t *testing.T, ts *httptest.Server, src string) *server.QueryResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query returned %d: %s", resp.StatusCode, body)
	}
	var out server.QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad /query response %q: %v", body, err)
	}
	return &out
}

func getStats(t *testing.T, ts *httptest.Server) *server.StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, server.Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz returned %d", resp.StatusCode)
	}
}

func TestQueryJSONAndTextBodies(t *testing.T) {
	ts, _ := newTestServer(t, server.Options{})

	r1 := postQuery(t, ts, keyReadQuery)
	if r1.RowCount != 1 {
		t.Fatalf("text query: got %d rows, want 1", r1.RowCount)
	}

	reqBody, _ := json.Marshal(map[string]string{"query": keyReadQuery})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var r2 server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&r2); err != nil {
		t.Fatal(err)
	}
	if r2.RowCount != 1 {
		t.Fatalf("json query: got %d rows, want 1", r2.RowCount)
	}
	if len(r2.Columns) != 2 || r2.Columns[0] != "p" {
		t.Fatalf("unexpected columns %v", r2.Columns)
	}
}

func TestQueryErrorsReturn400(t *testing.T) {
	ts, _ := newTestServer(t, server.Options{})
	for _, body := range []string{"", "this is not aiql"} {
		resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("query %q: got status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestOversizedQueryBodyRejected(t *testing.T) {
	ts, _ := newTestServer(t, server.Options{})
	big := strings.Repeat("proc p read file f return p\n", 1<<20/28+2)
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: got status %d, want 413", resp.StatusCode)
	}
}

// TestPlanCacheHitCounting verifies that a reformatted version of the same
// query hits the plan cache (the key is normalized source) and that /stats
// reports the hits.
func TestPlanCacheHitCounting(t *testing.T) {
	ts, _ := newTestServer(t, server.Options{ResultCacheSize: -1})

	r := postQuery(t, ts, keyReadQuery)
	if r.PlanCached {
		t.Fatal("first execution reported a plan-cache hit")
	}
	reformatted := "agentid = 1\n\n\tproc   p read file f[\"%id_rsa\"]   as evt\n return p, f"
	r = postQuery(t, ts, reformatted)
	if !r.PlanCached {
		t.Fatal("reformatted repeat did not hit the plan cache")
	}

	st := getStats(t, ts)
	if st.PlanCache.Hits != 1 || st.PlanCache.Misses != 1 {
		t.Fatalf("plan cache counters = %+v, want 1 hit / 1 miss", st.PlanCache)
	}
	if st.QueriesServed != 2 {
		t.Fatalf("queries_served = %d, want 2", st.QueriesServed)
	}
}

// TestIngestInvalidatesResultCache drives the full cache lifecycle: miss,
// hit, ingest, miss again with the new events visible.
func TestIngestInvalidatesResultCache(t *testing.T) {
	ts, st := newTestServer(t, server.Options{})

	r := postQuery(t, ts, keyReadQuery)
	if r.ResultCached || r.RowCount != 1 {
		t.Fatalf("first query: cached=%v rows=%d, want fresh 1-row result", r.ResultCached, r.RowCount)
	}
	r = postQuery(t, ts, keyReadQuery)
	if !r.ResultCached {
		t.Fatal("repeat query did not hit the result cache")
	}

	// Ingest one more id_rsa read by a new process, wire-format lines as
	// aiqlgen would emit them. Entity 2000 avoids the builder's id range.
	day := gen.DayStart(1)
	batch := fmt.Sprintf(
		`{"kind":"entity","id":2000,"type":"proc","agentid":%d,"attrs":{"exe_name":"/usr/bin/scp","pid":"4242"}}
{"kind":"event","id":9000,"agentid":%d,"subject":2000,"object":3,"op":"read","start":%d,"end":%d,"seq":50}
`, testHost, testHost, day+5000, day+5001)
	gen0 := st.Generation()
	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ing server.IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || ing.Events != 1 || ing.Entities != 1 {
		t.Fatalf("/ingest returned %d %+v", resp.StatusCode, ing)
	}
	if ing.Generation == gen0 {
		t.Fatal("ingest did not bump the store generation")
	}

	r = postQuery(t, ts, keyReadQuery)
	if r.ResultCached {
		t.Fatal("query after ingest served a stale cached result")
	}
	if r.RowCount != 2 {
		t.Fatalf("query after ingest: got %d rows, want 2 (new event missing)", r.RowCount)
	}
}

// TestConcurrentQueries hammers /query from many goroutines mixing two
// distinct queries; every response must be correct and the cache counters
// must add up.
func TestConcurrentQueries(t *testing.T) {
	ts, _ := newTestServer(t, server.Options{})

	queries := []struct {
		src  string
		rows int
	}{
		{keyReadQuery, 1},
		{"agentid = 1\nproc p write ip i as evt\nreturn p, i.dst_ip", 1},
	}
	const workers = 8
	const perWorker = 10
	var wg sync.WaitGroup
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := queries[(w+i)%len(queries)]
				resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader(q.src))
				if err != nil {
					errs <- err
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
					return
				}
				var out server.QueryResponse
				if err := json.Unmarshal(body, &out); err != nil {
					errs <- err
					return
				}
				if out.RowCount != q.rows {
					errs <- fmt.Errorf("query %q: got %d rows, want %d", q.src, out.RowCount, q.rows)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := getStats(t, ts)
	if st.QueriesServed != workers*perWorker {
		t.Fatalf("queries_served = %d, want %d", st.QueriesServed, workers*perWorker)
	}
	total := st.ResultCache.Hits + st.ResultCache.Misses
	if total != uint64(workers*perWorker) {
		t.Fatalf("result cache hits+misses = %d, want %d", total, workers*perWorker)
	}
	if st.ResultCache.Hits == 0 {
		t.Fatal("no result-cache hits across 80 repeated queries")
	}
}

// TestDurableServerIngestSurvivesReopen exercises the persistent server
// mode end to end in-process: ingest over HTTP lands in the WAL, /stats
// exposes the durability counters, and a server reopened over the same
// directory (recovery before serving, as NewPersistent guarantees) answers
// the same query with the same rows.
func TestDurableServerIngestSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	open := func() (*httptest.Server, *storage.Persistent) {
		t.Helper()
		p, err := storage.OpenPersistent(dir, storage.PersistOptions{
			SyncEveryBatch:  true,
			FlushInterval:   -1,
			CompactInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.NewPersistent(p, engine.New(p.Store, engine.Options{}), server.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts, p
	}

	ts, p := open()
	day := gen.DayStart(1)
	batch := fmt.Sprintf(`{"kind":"entity","id":1,"type":"proc","agentid":1,"attrs":{"exe_name":"/bin/bash"}}
{"kind":"entity","id":2,"type":"file","agentid":1,"attrs":{"name":"/home/alice/.ssh/id_rsa"}}
{"kind":"event","id":3,"agentid":1,"subject":1,"object":2,"op":"read","start":%d,"seq":1}
`, day+1000)
	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/ingest returned %d", resp.StatusCode)
	}
	before := postQuery(t, ts, keyReadQuery)
	if len(before.Rows) != 1 {
		t.Fatalf("query before reopen returned %d rows, want 1", len(before.Rows))
	}

	// /stats carries the durability block.
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats server.StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if stats.Durability == nil {
		t.Fatal("/stats has no durability block on a durable server")
	}
	if stats.Durability.WALRecords != 1 {
		t.Fatalf("WAL depth = %d records, want 1", stats.Durability.WALRecords)
	}

	// "Crash": every batch was fsynced already, so Close adds nothing on
	// disk; it releases the directory lock the way a dead process would.
	ts.Close()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	ts2, _ := open()
	after := postQuery(t, ts2, keyReadQuery)
	if len(after.Rows) != 1 || after.Rows[0][0] != before.Rows[0][0] {
		t.Fatalf("reopened server rows = %v, want %v", after.Rows, before.Rows)
	}
}
