package server_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"aiql/internal/server"
)

// postNDJSON issues /query with the streaming Accept header and decodes the
// header line plus row lines.
func postNDJSON(t *testing.T, url, src string) (map[string]any, [][]string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/query", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/query returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no header line in NDJSON stream")
	}
	var head map[string]any
	if err := json.Unmarshal(sc.Bytes(), &head); err != nil {
		t.Fatalf("bad header line %q: %v", sc.Text(), err)
	}
	var rows [][]string
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var row []string
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad row line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return head, rows
}

func TestQueryNDJSONStreaming(t *testing.T) {
	ts, _ := newTestServer(t, server.Options{})
	head, rows := postNDJSON(t, ts.URL, keyReadQuery)

	cols, _ := head["columns"].([]any)
	if len(cols) != 2 {
		t.Fatalf("header columns = %v, want 2 columns", head["columns"])
	}
	rc, _ := head["row_count"].(float64)
	if int(rc) != len(rows) {
		t.Fatalf("header row_count %v != %d streamed rows", head["row_count"], len(rows))
	}
	if len(rows) != 1 {
		t.Fatalf("streamed %d rows, want 1", len(rows))
	}
	if !strings.Contains(rows[0][1], "id_rsa") {
		t.Fatalf("unexpected row %v", rows[0])
	}

	// The same query without the Accept header still gets plain JSON.
	plain := postQuery(t, ts, keyReadQuery)
	if plain.RowCount != 1 || len(plain.Rows) != 1 {
		t.Fatalf("plain JSON response lost rows: %+v", plain)
	}
}

// TestNDJSONServesFromResultCache: the second streamed request is served
// from the result cache (same plan, same snapshot generation).
func TestNDJSONServesFromResultCache(t *testing.T) {
	ts, _ := newTestServer(t, server.Options{})
	head, _ := postNDJSON(t, ts.URL, keyReadQuery)
	if cached, _ := head["result_cached"].(bool); cached {
		t.Fatal("first request claimed a result-cache hit")
	}
	head, rows := postNDJSON(t, ts.URL, keyReadQuery)
	if cached, _ := head["result_cached"].(bool); !cached {
		t.Fatal("second request missed the result cache")
	}
	if len(rows) != 1 {
		t.Fatalf("cached stream returned %d rows, want 1", len(rows))
	}
}

// TestNoSnapshotLeaks: after a mix of plain, streamed and erroring queries,
// every per-request snapshot has been released.
func TestNoSnapshotLeaks(t *testing.T) {
	ts, st := newTestServer(t, server.Options{})
	postQuery(t, ts, keyReadQuery)
	postNDJSON(t, ts.URL, keyReadQuery)
	// A query that fails to parse must release its snapshot too.
	resp, err := http.Post(ts.URL+"/query", "text/plain", strings.NewReader("this is not aiql"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("nonsense query succeeded")
	}
	if n := st.LiveSnapshots(); n != 0 {
		t.Fatalf("%d snapshots still live after requests finished", n)
	}
	stats := getStats(t, ts)
	if stats.LiveSnapshots != 0 {
		t.Fatalf("/stats reports %d live snapshots", stats.LiveSnapshots)
	}
}
