// Server-side observability plane: the trace middleware that gives every
// request an ID, the /metrics registry exporting the subsystems' existing
// counters in Prometheus text form, and the /debug inspection endpoints.
package server

import (
	"net/http"
	"strconv"

	"aiql/internal/obs"
	"aiql/internal/stream"
)

// withObs wraps the route mux in the trace middleware. Each request's trace
// ID is accepted from the X-Aiql-Trace header when well-formed (so a
// coordinator's ID follows the query onto its workers, and a client-chosen
// ID follows an investigation across processes) or minted fresh; it is
// echoed on the response header and carried in the request context for
// every layer below. The middleware also feeds the per-route request
// counter and, when a logger is configured, writes one access-log line per
// request.
func (s *Server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(r.Header.Get(obs.TraceIDHeader))
		w.Header().Set(obs.TraceIDHeader, tr.ID())
		ctx := obs.WithTrace(r.Context(), tr)
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w}
		start := obs.Now()
		next.ServeHTTP(sw, r)
		route := r.Pattern
		if route == "" {
			route = "(unmatched)"
		}
		s.httpReqs.With(route, strconv.Itoa(sw.status())).Inc()
		if s.logger != nil {
			s.logger.Log(ctx, "http",
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status(),
				"dur_ms", float64(obs.Since(start).Microseconds())/1000)
		}
	})
}

// statusWriter captures the response status for the request counter and the
// access log. It forwards Flush so the streaming handlers (/scan, NDJSON
// query replies, /subscribe) keep flushing through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// httpTraceError writes an error body that carries the request's trace ID,
// so a 502 from a mid-query worker failure names the trace whose spans and
// logs (coordinator- and worker-side) explain it.
func (s *Server) httpTraceError(w http.ResponseWriter, r *http.Request, status int, err error) {
	body := map[string]string{"error": err.Error()}
	if id := obs.TraceID(r.Context()); id != "" {
		body["trace_id"] = id
	}
	writeJSON(w, status, body)
}

// handleReadyz reports readiness. A fully constructed server is always
// ready; the unready window (WAL recovery, segment install, catch-up
// replay) is served by the Gate that fronts the listener until the real
// handler is swapped in.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleDebugSlow serves the slow-query log: the N slowest queries seen,
// slowest first, each with its span tree.
func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	entries := s.slow.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   len(entries),
		"slowest": entries,
	})
}

// handleDebugQueries serves the in-flight registry: queries currently
// executing, with trace ID, elapsed time, rows streamed so far, and the
// spans recorded so far (a coordinator query shows its worker legs while
// they are still streaming).
func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	queries := s.inflight.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   len(queries),
		"queries": queries,
	})
}

// buildMetrics constructs the /metrics registry: a second, labeled export
// path over the stats the subsystems already maintain (every *Func series
// reads the live counter at scrape time), plus the request-latency
// histograms the server owns. Called once from Handler, after construction
// settled the server's mode, so the registry only carries families that can
// ever be non-zero here.
func (s *Server) buildMetrics() {
	reg := obs.NewRegistry()
	s.metrics = reg
	s.queryDur = reg.Histogram("aiql_query_duration_seconds", "End-to-end /query latency.")
	s.ingestDur = reg.Histogram("aiql_ingest_duration_seconds", "End-to-end /ingest latency.")
	s.httpReqs = reg.CounterVec("aiql_http_requests_total", "HTTP requests served, by route pattern and status code.", "route", "code")

	reg.CounterFunc("aiql_queries_total", "Queries accepted by /query.", func() float64 { return float64(s.queries.Load()) })
	reg.CounterFunc("aiql_ingest_batches_total", "Batches accepted by /ingest.", func() float64 { return float64(s.ingests.Load()) })
	reg.GaugeFunc("aiql_uptime_seconds", "Seconds since the server started.", func() float64 { return obs.Since(s.started).Seconds() })
	reg.GaugeFunc("aiql_inflight_queries_count", "Queries currently executing.", func() float64 { return float64(s.inflight.Len()) })
	reg.GaugeFunc("aiql_slow_log_entries_count", "Entries held in the slow-query log.", func() float64 { return float64(s.slow.Len()) })
	reg.GaugeFunc("aiql_subscribers_count", "Live /subscribe connections.", func() float64 { return float64(s.subscribers.Load()) })

	s.cacheMetrics(reg, "plan", s.plans.Stats)
	s.cacheMetrics(reg, "result", s.results.Stats)

	if s.store != nil {
		s.storeMetrics(reg)
	}
	if s.durable != nil {
		s.durabilityMetrics(reg)
	}
	if s.coord != nil {
		s.clusterMetrics(reg)
	}
	s.streamMetrics(reg)
}

// cacheMetrics exports one cache's counters. Hits/misses/evictions are
// cumulative (counters); size and the derived hit ratio are instantaneous.
func (s *Server) cacheMetrics(reg *obs.Registry, name string, stats func() CacheStats) {
	p := "aiql_" + name + "_cache_"
	reg.CounterFunc(p+"hits_total", "Cache hits.", func() float64 { return float64(stats().Hits) })
	reg.CounterFunc(p+"misses_total", "Cache misses.", func() float64 { return float64(stats().Misses) })
	reg.CounterFunc(p+"evictions_total", "Cache evictions.", func() float64 { return float64(stats().Evictions) })
	reg.GaugeFunc(p+"size_count", "Entries currently cached.", func() float64 { return float64(stats().Size) })
	reg.GaugeFunc(p+"hit_ratio", "Hits over lookups since start (0 when no lookups).", func() float64 {
		st := stats()
		if st.Hits+st.Misses == 0 {
			return 0
		}
		return float64(st.Hits) / float64(st.Hits+st.Misses)
	})
}

// storeMetrics exports the local store's state and its block-level scan
// counters. The scan counters obey the pruning invariant
// blocks_decoded + blocks_skipped == blocks_considered, which the
// exposition tests assert after a golden-corpus run.
func (s *Server) storeMetrics(reg *obs.Registry) {
	reg.GaugeFunc("aiql_store_events_count", "Events held by the store.", func() float64 { return float64(s.store.EventCount()) })
	reg.GaugeFunc("aiql_store_partitions_count", "Live (agent, day) partitions.", func() float64 { return float64(s.store.PartitionCount()) })
	reg.GaugeFunc("aiql_store_generation_count", "Store generation (bumped per ingest batch).", func() float64 { return float64(s.store.Generation()) })
	reg.GaugeFunc("aiql_live_snapshots_count", "Snapshots currently pinned.", func() float64 { return float64(s.store.LiveSnapshots()) })
	reg.GaugeFunc("aiql_live_cursors_count", "Scan cursors currently open.", func() float64 { return float64(s.store.LiveCursors()) })
	reg.CounterFunc("aiql_scans_served_total", "Worker /scan requests served.", func() float64 { return float64(s.scans.Load()) })

	sc := s.store.ScanStats
	reg.CounterFunc("aiql_scan_blocks_considered_total", "Sealed-segment blocks considered by scans.", func() float64 { return float64(sc().BlocksConsidered) })
	reg.CounterFunc("aiql_scan_blocks_skipped_total", "Blocks skipped by zone maps without decoding.", func() float64 { return float64(sc().BlocksSkipped) })
	reg.CounterFunc("aiql_scan_blocks_decoded_total", "Blocks decoded and scanned.", func() float64 { return float64(sc().BlocksDecoded) })
	reg.CounterFunc("aiql_scan_attr_zone_skips_total", "Blocks skipped by attribute zone maps.", func() float64 { return float64(sc().AttrZoneSkips) })
	reg.CounterFunc("aiql_scan_thaws_total", "Cold partitions thawed for a scan.", func() float64 { return float64(sc().Thaws) })
	reg.CounterFunc("aiql_scan_hot_batches_total", "Batches served from the hot in-memory tail.", func() float64 { return float64(sc().HotBatches) })
	reg.CounterFunc("aiql_scan_dict_verdict_hits_total", "Dictionary-verdict short-circuits.", func() float64 { return float64(sc().DictVerdictHits) })
	reg.CounterFunc("aiql_scan_compressed_bytes_read_total", "Compressed block bytes read from sealed segments.", func() float64 { return float64(sc().CompressedBytesRead) })
	reg.CounterFunc("aiql_scan_compressed_bytes_decoded_total", "Bytes produced by block decompression.", func() float64 { return float64(sc().CompressedBytesDecode) })

	rs := s.store.ReplStats
	reg.CounterFunc("aiql_repl_applied_total", "Replication-tagged batches applied.", func() float64 { return float64(rs().Applied) })
	reg.CounterFunc("aiql_repl_duplicates_total", "Replication-tagged batches skipped as duplicates.", func() float64 { return float64(rs().Duplicates) })
	reg.GaugeVecFunc("aiql_repl_watermark_count", "Contiguous applied-sequence watermark per (epoch, shard); a replica behind its peer shows a lower watermark until catch-up closes the gap.", []string{"epoch", "shard"}, func(emit func([]string, float64)) {
		for _, sh := range rs().Shards {
			emit([]string{sh.Epoch, strconv.Itoa(sh.Shard)}, float64(sh.Watermark))
		}
	})
}

// durabilityMetrics exports the WAL and segment counters, including the
// fsync and compaction timings the durable layer accumulates.
func (s *Server) durabilityMetrics(reg *obs.Registry) {
	ds := s.durable.DurabilityStats
	reg.GaugeFunc("aiql_wal_records_count", "WAL records not yet folded into segments.", func() float64 { return float64(ds().WALRecords) })
	reg.GaugeFunc("aiql_wal_depth_bytes", "Bytes of WAL not yet folded into segments.", func() float64 { return float64(ds().WALBytes) })
	reg.GaugeFunc("aiql_wal_last_seq_count", "Highest WAL sequence written.", func() float64 { return float64(ds().LastSeq) })
	reg.GaugeFunc("aiql_wal_covered_seq_count", "Highest WAL sequence covered by segments.", func() float64 { return float64(ds().CoveredSeq) })
	reg.GaugeFunc("aiql_wal_replayed_count", "WAL records replayed by the last open.", func() float64 { return float64(ds().Replayed) })
	reg.CounterFunc("aiql_wal_fsyncs_total", "WAL fsync calls.", func() float64 { return float64(ds().WALFsyncs) })
	reg.CounterFunc("aiql_wal_fsync_seconds_total", "Cumulative seconds spent in WAL fsync.", func() float64 { return float64(ds().WALFsyncNanos) / 1e9 })
	reg.GaugeFunc("aiql_segments_count", "Immutable segment files.", func() float64 { return float64(ds().Segments) })
	reg.GaugeFunc("aiql_segments_v2_count", "Segments in columnar v2+ format.", func() float64 { return float64(ds().SegmentsV2) })
	reg.GaugeFunc("aiql_segments_v3_count", "Segments with compressed blocks and attribute zone maps (v3).", func() float64 { return float64(ds().SegmentsV3) })
	reg.GaugeFunc("aiql_segment_events_count", "Events held in sealed segments.", func() float64 { return float64(ds().SegmentEvents) })
	reg.CounterFunc("aiql_compactions_total", "WAL-to-segment compactions.", func() float64 { return float64(ds().Compactions) })
	reg.CounterFunc("aiql_compaction_seconds_total", "Cumulative seconds spent compacting.", func() float64 { return float64(ds().CompactionNanos) / 1e9 })
}

// clusterMetrics exports the coordinator's scatter/gather counters.
func (s *Server) clusterMetrics(reg *obs.Registry) {
	cs := s.coord.Stats
	reg.GaugeFunc("aiql_cluster_workers_count", "Workers in the cluster.", func() float64 { return float64(cs().Workers) })
	reg.GaugeFunc("aiql_cluster_replicas_count", "Replication factor.", func() float64 { return float64(cs().Replicas) })
	reg.CounterFunc("aiql_cluster_scans_total", "Data queries scattered to workers.", func() float64 { return float64(cs().Scans) })
	reg.CounterFunc("aiql_cluster_worker_requests_total", "Per-worker scan requests issued.", func() float64 { return float64(cs().WorkerRequests) })
	reg.CounterFunc("aiql_cluster_workers_pruned_total", "Workers eliminated before fan-out by placement pruning.", func() float64 { return float64(cs().WorkersPruned) })
	reg.CounterFunc("aiql_cluster_worker_failures_total", "Worker legs that failed.", func() float64 { return float64(cs().WorkerFailures) })
	reg.CounterFunc("aiql_cluster_ingest_batches_total", "Ingest batches scattered.", func() float64 { return float64(cs().IngestBatches) })
	reg.CounterFunc("aiql_cluster_failovers_total", "Shard scans served by a replica after the primary failed.", func() float64 { return float64(cs().Failovers) })
	reg.CounterFunc("aiql_cluster_degraded_ingests_total", "Shard batches that landed on only one of their two copies.", func() float64 { return float64(cs().DegradedIngests) })
	reg.CounterFunc("aiql_cluster_ingest_retries_total", "Re-posted ingest requests.", func() float64 { return float64(cs().IngestRetries) })
}

// streamMetrics exports the continuous-query counters — the local matcher's
// on a store-backed server, the merge layer's on a coordinator.
func (s *Server) streamMetrics(reg *obs.Registry) {
	stats := func() stream.Stats {
		if s.coord != nil {
			return s.coord.StreamingStats()
		}
		return s.matcher.Stats()
	}
	reg.GaugeFunc("aiql_stream_rules_count", "Registered standing rules.", func() float64 { return float64(stats().Rules) })
	reg.CounterFunc("aiql_stream_emitted_total", "Rule matches emitted to subscribers.", func() float64 { return float64(stats().Emitted) })
	reg.CounterFunc("aiql_stream_dropped_slow_consumers_total", "Subscribers disconnected for falling a full buffer behind.", func() float64 { return float64(stats().DroppedSlowConsumers) })
	reg.GaugeFunc("aiql_stream_state_buffered_count", "Partial-join state currently buffered.", func() float64 { return float64(stats().StateBuffered) })
	reg.CounterFunc("aiql_stream_state_evicted_total", "Partial-join state entries evicted.", func() float64 { return float64(stats().StateEvicted) })
	reg.CounterFunc("aiql_stream_join_overflows_total", "Join-state overflows.", func() float64 { return float64(stats().JoinOverflows) })
	reg.CounterFunc("aiql_stream_backfills_total", "Rule registrations backfilled from existing data.", func() float64 { return float64(stats().Backfills) })
}
