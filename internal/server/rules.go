package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"aiql/internal/cluster"
	"aiql/internal/stream"
)

// The continuous-query endpoints:
//
//	POST   /rules           register a standing AIQL rule
//	GET    /rules           list registered rules with live counters
//	DELETE /rules/{id}      unregister (disconnects subscribers)
//	GET    /subscribe/{id}  stream the rule's emissions (NDJSON, or SSE
//	                        with Accept: text/event-stream); ?since=N
//	                        replays retained emissions newer than N first
//
// Store-backed servers serve them from the local stream.Matcher; a
// coordinator proxies registration to every worker and serves merged
// emission streams (see docs/STREAMING.md and docs/CLUSTER.md).

// rulesResponse is the JSON reply to GET /rules.
type rulesResponse struct {
	Rules []stream.RuleInfo `json:"rules"`
}

func (s *Server) handleRuleCreate(w http.ResponseWriter, r *http.Request) {
	var spec stream.RuleSpec
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err == nil {
		err = json.Unmarshal(body, &spec)
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode rule: %w", err))
		return
	}
	if strings.TrimSpace(spec.Query) == "" {
		httpError(w, http.StatusBadRequest, errors.New("empty rule query"))
		return
	}
	var info *stream.RuleInfo
	if s.coord != nil {
		info, err = s.coord.RegisterRule(r.Context(), spec)
	} else {
		info, err = s.matcher.Register(spec)
	}
	if err != nil {
		httpError(w, ruleErrStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleRuleList(w http.ResponseWriter, r *http.Request) {
	if s.coord != nil {
		infos, err := s.coord.Rules(r.Context())
		if err != nil {
			httpError(w, http.StatusBadGateway, err)
			return
		}
		writeJSON(w, http.StatusOK, &rulesResponse{Rules: infos})
		return
	}
	writeJSON(w, http.StatusOK, &rulesResponse{Rules: s.matcher.Rules()})
}

func (s *Server) handleRuleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.coord != nil {
		if err := s.coord.DeleteRule(r.Context(), id); err != nil {
			httpError(w, ruleErrStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
		return
	}
	if !s.matcher.Delete(id) {
		httpError(w, http.StatusNotFound, fmt.Errorf("%w: %q", stream.ErrUnknownRule, id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// ruleErrStatus maps registration/deletion failures to HTTP statuses: the
// client's query is at fault (400), the id is taken (409), the server is
// full (429), the rule is unknown (404), or workers failed (502).
func ruleErrStatus(err error) int {
	var partial *cluster.PartialError
	switch {
	case errors.Is(err, stream.ErrTooManyRules):
		return http.StatusTooManyRequests
	case errors.Is(err, stream.ErrDuplicateRule):
		return http.StatusConflict
	case errors.Is(err, stream.ErrUnknownRule):
		return http.StatusNotFound
	case errors.As(err, &partial):
		return http.StatusBadGateway
	default:
		return http.StatusBadRequest
	}
}

// subscribeHeader is the first line of every subscription stream.
type subscribeHeader struct {
	Rule    string   `json:"rule"`
	Columns []string `json:"columns"`
	// Since echoes the replay floor the client requested; FirstSeq is the
	// first sequence number this stream will deliver. FirstSeq > Since+1
	// means emissions in between had already rotated out of the rule's
	// replay ring — the gap is announced, never silent.
	Since    uint64 `json:"since"`
	FirstSeq uint64 `json:"first_seq,omitempty"`
}

// subscribeClose is the explicit in-band trailer: its presence tells a
// consumer the stream ended deliberately (reason "slow-consumer" or
// "rule-deleted"); a connection that dies without one was truncated.
type subscribeClose struct {
	Closed string `json:"closed"`
}

// emissionWriter abstracts the two wire framings (NDJSON and SSE) over one
// handler loop.
type emissionWriter struct {
	w       http.ResponseWriter
	flusher http.Flusher
	sse     bool
	enc     *json.Encoder
}

func newEmissionWriter(w http.ResponseWriter, r *http.Request) *emissionWriter {
	ew := &emissionWriter{w: w}
	ew.flusher, _ = w.(http.Flusher)
	for _, accept := range r.Header.Values("Accept") {
		if strings.Contains(accept, "text/event-stream") {
			ew.sse = true
		}
	}
	if ew.sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	ew.enc = json.NewEncoder(w)
	ew.enc.SetEscapeHTML(false)
	return ew
}

// send writes one record in the negotiated framing and flushes — emissions
// are sparse and latency matters more than syscall count.
func (ew *emissionWriter) send(event string, id uint64, v any) error {
	if ew.sse {
		if _, err := fmt.Fprintf(ew.w, "event: %s\n", event); err != nil {
			return err
		}
		if id > 0 {
			if _, err := fmt.Fprintf(ew.w, "id: %d\n", id); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(ew.w, "data: "); err != nil {
			return err
		}
		if err := ew.enc.Encode(v); err != nil { // Encode appends the first \n
			return err
		}
		if _, err := io.WriteString(ew.w, "\n"); err != nil {
			return err
		}
	} else if err := ew.enc.Encode(v); err != nil {
		return err
	}
	if ew.flusher != nil {
		ew.flusher.Flush()
	}
	return nil
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var since uint64
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad since: %w", err))
			return
		}
		since = v
	}
	if s.coord != nil {
		s.subscribeCluster(w, r, id, since)
		return
	}
	sub, info, err := s.matcher.Subscribe(id, since)
	if err != nil {
		httpError(w, ruleErrStatus(err), err)
		return
	}
	defer sub.Close()
	s.subscribers.Add(1)
	defer s.subscribers.Add(-1)
	ew := newEmissionWriter(w, r)
	if err := ew.send("hello", 0, &subscribeHeader{
		Rule: info.ID, Columns: info.Columns, Since: since, FirstSeq: sub.FirstSeq(),
	}); err != nil {
		return
	}
	for {
		select {
		case em, ok := <-sub.C():
			if !ok {
				_ = ew.send("closed", 0, &subscribeClose{Closed: sub.Reason()})
				return
			}
			if err := ew.send("match", em.Seq, &em); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// subscribeCluster serves a merged emission stream in coordinator mode: the
// coordinator subscribes to every worker (raw per-pattern sub-rules for
// multi-pattern rules, running the cross-shard join itself) and fans the
// streams in, re-stamping sequence numbers. Worker failures surface as an
// in-band error record with *cluster.PartialError detail, mirroring /scan.
func (s *Server) subscribeCluster(w http.ResponseWriter, r *http.Request, id string, since uint64) {
	if since > 0 {
		httpError(w, http.StatusBadRequest,
			errors.New("since is not supported on a coordinator: merged sequence numbers are per-subscription"))
		return
	}
	rs, info, err := s.coord.SubscribeRule(r.Context(), id)
	if err != nil {
		httpError(w, ruleErrStatus(err), err)
		return
	}
	defer rs.Close()
	s.subscribers.Add(1)
	defer s.subscribers.Add(-1)
	ew := newEmissionWriter(w, r)
	if err := ew.send("hello", 0, &subscribeHeader{Rule: info.ID, Columns: info.Columns}); err != nil {
		return
	}
	for {
		select {
		case em, ok := <-rs.C():
			if !ok {
				if err := rs.Err(); err != nil {
					_ = ew.send("error", 0, map[string]string{"error": err.Error()})
				} else {
					_ = ew.send("closed", 0, &subscribeClose{Closed: rs.Reason()})
				}
				return
			}
			if err := ew.send("match", em.Seq, &em); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
