package server

import (
	"net/http"
	"sync"
	"sync/atomic"
)

// Gate fronts a listener while the server behind it boots. aiqld opens its
// listener before WAL recovery and catch-up replay finish, so orchestrators
// can distinguish "starting" from "dead": while gated, /healthz answers 200
// (the process is alive), /readyz answers 503 with the current boot stage,
// and every other route answers 503 — no request can observe a
// half-recovered store. Ready swaps in the real handler atomically; from
// then on the gate is a single atomic load of indirection per request.
type Gate struct {
	mu    sync.Mutex
	stage string
	h     atomic.Value // http.Handler, set once by Ready
}

// NewGate creates a gate reporting the given boot stage (e.g.
// "wal-recovery").
func NewGate(stage string) *Gate {
	return &Gate{stage: stage}
}

// SetStage updates the boot stage reported by /readyz (e.g. advancing from
// "wal-recovery" to "catch-up").
func (g *Gate) SetStage(stage string) {
	g.mu.Lock()
	g.stage = stage
	g.mu.Unlock()
}

// Ready installs the real handler; all subsequent requests route to it.
func (g *Gate) Ready(h http.Handler) {
	g.h.Store(h)
}

func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := g.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	g.mu.Lock()
	stage := g.stage
	g.mu.Unlock()
	switch r.URL.Path {
	case "/healthz":
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	case "/readyz":
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "unready", "stage": stage})
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "server starting: " + stage})
	}
}
