package server_test

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aiql/internal/server"
	"aiql/internal/stream"
)

// registerRule posts a rule and returns its info.
func registerRule(t *testing.T, ts *httptest.Server, spec stream.RuleSpec) stream.RuleInfo {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/rules", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info stream.RuleInfo
	if resp.StatusCode != http.StatusOK {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST /rules returned %d: %v", resp.StatusCode, e)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// ingestLines posts aiqlgen-format JSON lines.
func ingestLines(t *testing.T, ts *httptest.Server, lines string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/ingest returned %d", resp.StatusCode)
	}
}

const markerBatch = `{"kind":"entity","id":770001,"type":"proc","agentid":1,"attrs":{"exe_name":"/usr/bin/exfil","pid":"777"}}
{"kind":"entity","id":770002,"type":"file","agentid":1,"attrs":{"name":"/home/alice/.ssh/id_rsa"}}
{"kind":"event","id":770003,"agentid":1,"subject":770001,"object":770002,"op":"read","start":1488412800000,"seq":770003}
`

// TestRulesEndpointLifecycle registers a rule over HTTP, streams one live
// match via /subscribe, lists it, and deletes it.
func TestRulesEndpointLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, server.Options{})

	info := registerRule(t, ts, stream.RuleSpec{Query: `proc p read file f["%id_rsa"] return p, f`})
	if info.ID == "" || len(info.Columns) != 2 {
		t.Fatalf("rule info %+v", info)
	}

	// Subscribe, then ingest a matching batch; the emission must arrive on
	// the open stream.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/subscribe/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe returned %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no header line")
	}
	var hdr struct {
		Rule    string   `json:"rule"`
		Columns []string `json:"columns"`
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Rule != info.ID {
		t.Fatalf("bad header %s (%v)", sc.Bytes(), err)
	}

	ingestLines(t, ts, markerBatch)

	lineCh := make(chan string, 1)
	go func() {
		if sc.Scan() {
			lineCh <- sc.Text()
		}
		close(lineCh)
	}()
	select {
	case line := <-lineCh:
		var em stream.Emission
		if err := json.Unmarshal([]byte(line), &em); err != nil {
			t.Fatalf("bad emission %q: %v", line, err)
		}
		if em.Seq != 1 || em.Row[0] != "/usr/bin/exfil" {
			t.Errorf("emission %+v", em)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no emission within 5s")
	}

	// Listing includes the rule with its counters.
	lresp, err := http.Get(ts.URL + "/rules")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Rules []stream.RuleInfo `json:"rules"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(listing.Rules) != 1 || listing.Rules[0].Seq != 1 || listing.Rules[0].Subscribers != 1 {
		t.Errorf("listing %+v", listing.Rules)
	}

	// Delete: 200, then the open subscription closes with rule-deleted.
	dreq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/rules/"+info.ID, nil)
	dresp, err := http.DefaultClient.Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE returned %d", dresp.StatusCode)
	}
	closed := make(chan string, 1)
	go func() {
		for sc.Scan() {
			var c struct {
				Closed *string `json:"closed"`
			}
			if json.Unmarshal(sc.Bytes(), &c) == nil && c.Closed != nil {
				closed <- *c.Closed
				return
			}
		}
		close(closed)
	}()
	select {
	case reason := <-closed:
		if reason != stream.DropRuleDeleted {
			t.Errorf("close reason %q", reason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription did not close after rule deletion")
	}

	// Second delete: 404.
	dreq2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/rules/"+info.ID, nil)
	dresp2, err := http.DefaultClient.Do(dreq2)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusNotFound {
		t.Errorf("second DELETE returned %d", dresp2.StatusCode)
	}
}

// TestRulesEndpointErrors covers the HTTP status mapping.
func TestRulesEndpointErrors(t *testing.T) {
	ts, _ := newTestServer(t, server.Options{})
	post := func(spec stream.RuleSpec) int {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/rules", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(stream.RuleSpec{Query: "proc p read file f return count(f)"}); got != http.StatusBadRequest {
		t.Errorf("aggregate rule: %d", got)
	}
	if got := post(stream.RuleSpec{Query: ""}); got != http.StatusBadRequest {
		t.Errorf("empty rule: %d", got)
	}
	if got := post(stream.RuleSpec{ID: "dup", Query: "proc p read file f return p"}); got != http.StatusOK {
		t.Fatalf("first register: %d", got)
	}
	if got := post(stream.RuleSpec{ID: "dup", Query: "proc p read file f return p"}); got != http.StatusConflict {
		t.Errorf("duplicate: %d", got)
	}
	resp, err := http.Get(ts.URL + "/subscribe/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("subscribe unknown: %d", resp.StatusCode)
	}
}

// TestRulesCapReturns429 asserts the -max-rules limit surfaces as 429.
func TestRulesCapReturns429(t *testing.T) {
	ts, _ := newTestServer(t, server.Options{MaxRules: 1})
	registerRule(t, ts, stream.RuleSpec{Query: "proc p read file f return p"})
	body, _ := json.Marshal(stream.RuleSpec{Query: "proc p write file f return p"})
	resp, err := http.Post(ts.URL+"/rules", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-limit register returned %d", resp.StatusCode)
	}
}

// TestSubscribeSSE checks the Server-Sent-Events framing.
func TestSubscribeSSE(t *testing.T) {
	ts, _ := newTestServer(t, server.Options{})
	info := registerRule(t, ts, stream.RuleSpec{Query: `proc p read file f["%id_rsa"] return p, f`, Backfill: true})
	// The test dataset already contains one id_rsa read; backfill emits it,
	// and ?since=0 replays it to a late subscriber.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/subscribe/"+info.ID+"?since=0", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var gotEvent, gotData bool
	deadline := time.After(5 * time.Second)
	lines := make(chan string)
	go func() {
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	for !(gotEvent && gotData) {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream ended before a match event")
			}
			if line == "event: match" {
				gotEvent = true
			}
			if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"row"`) {
				gotData = true
			}
		case <-deadline:
			t.Fatal("no SSE match frame within 5s")
		}
	}
}

// TestStatsStreamingBlock asserts the /stats streaming counters.
func TestStatsStreamingBlock(t *testing.T) {
	ts, _ := newTestServer(t, server.Options{})
	registerRule(t, ts, stream.RuleSpec{Query: `proc p read file f["%id_rsa"] return p, f`, Backfill: true})
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Streaming *stream.Stats `json:"streaming"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Streaming == nil {
		t.Fatal("/stats has no streaming block")
	}
	if doc.Streaming.Rules != 1 || doc.Streaming.Emitted == 0 || doc.Streaming.Backfills != 1 {
		t.Errorf("streaming stats %+v", doc.Streaming)
	}
}
