package server_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aiql/internal/engine"
	"aiql/internal/gen"
	"aiql/internal/server"
	"aiql/internal/storage"
)

// taggedBatch builds one self-contained NDJSON ingest batch: a process, a
// file, and one read event between them, all keyed off k so batches never
// collide.
func taggedBatch(k int) string {
	day := gen.DayStart(1)
	return fmt.Sprintf(`{"kind":"entity","id":%d,"type":"proc","agentid":1,"attrs":{"exe_name":"/bin/tool%d"}}
{"kind":"entity","id":%d,"type":"file","agentid":1,"attrs":{"name":"/data/f%d"}}
{"kind":"event","id":%d,"agentid":1,"subject":%d,"object":%d,"op":"read","start":%d,"seq":%d}
`, 100+k, k, 200+k, k, 300+k, 100+k, 200+k, day+int64(k)*1000, k)
}

// postTagged posts a batch with the replication headers a coordinator
// attaches, returning the decoded response.
func postTagged(t *testing.T, url string, shard int, seq uint64, role, batch string) *server.IngestResponse {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/ingest", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("X-Aiql-Repl-Epoch", "e1")
	req.Header.Set("X-Aiql-Repl-Shard", fmt.Sprint(shard))
	req.Header.Set("X-Aiql-Repl-Seq", fmt.Sprint(seq))
	req.Header.Set("X-Aiql-Repl-Role", role)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tagged /ingest returned %d: %s", resp.StatusCode, body)
	}
	var out server.IngestResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad ingest response %q: %v", body, err)
	}
	return &out
}

// TestTaggedIngestHTTPDedup drives the tagged /ingest path over HTTP: a
// re-posted tag (the coordinator's retry after a lost ack) reports
// duplicate and changes nothing, and /stats exposes the suppression.
func TestTaggedIngestHTTPDedup(t *testing.T) {
	st := storage.New(storage.Options{})
	srv := server.New(st, engine.New(st, engine.Options{}), server.Options{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	first := postTagged(t, ts.URL, 0, 1, "primary", taggedBatch(1))
	if first.Duplicate || first.Events != 1 {
		t.Fatalf("first tagged ingest: %+v", first)
	}
	count := st.EventCount()

	again := postTagged(t, ts.URL, 0, 1, "primary", taggedBatch(1))
	if !again.Duplicate {
		t.Fatal("re-posted tag was not reported as a duplicate")
	}
	if st.EventCount() != count {
		t.Fatalf("duplicate ingest changed the store: %d events, want %d", st.EventCount(), count)
	}

	stats := getStats(t, ts)
	if stats.Replication == nil {
		t.Fatal("/stats has no replication block")
	}
	if stats.Replication.Applied != 1 || stats.Replication.Duplicates != 1 {
		t.Fatalf("replication stats %+v, want applied=1 duplicates=1", stats.Replication)
	}

	// Malformed headers are rejected, not silently treated as untagged.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/ingest", strings.NewReader(taggedBatch(2)))
	req.Header.Set("X-Aiql-Repl-Epoch", "e1")
	req.Header.Set("X-Aiql-Repl-Shard", "zero")
	req.Header.Set("X-Aiql-Repl-Seq", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed replication headers returned %d, want 400", resp.StatusCode)
	}
}

// durableServer opens a persistent store + server over dir. Closing is the
// caller's job — the crash-window test restarts it mid-test.
func durableServer(t *testing.T, dir string) (*httptest.Server, *storage.Persistent) {
	t.Helper()
	p, err := storage.OpenPersistent(dir, storage.PersistOptions{
		SyncEveryBatch:  true,
		FlushInterval:   -1,
		CompactInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewPersistent(p, engine.New(p.Store, engine.Options{}), server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return httptest.NewServer(srv.Handler()), p
}

const replScanQuery = "agentid = 1\nproc p read file f as evt\nreturn p, f"

// TestCatchUpAcrossCrashWindow is the satellite-4 scenario: a replica that
// missed batches pulls them from its peer, the first transfer dies
// mid-stream, the replica restarts (recovering the partially-applied
// records from its own WAL), and the second transfer completes
// idempotently — ending with byte-identical answers on both copies.
func TestCatchUpAcrossCrashWindow(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	tsA, _ := durableServer(t, dirA)
	t.Cleanup(tsA.Close)
	tsB, pB := durableServer(t, dirB)

	// Dual-write era: batches 1-2 land on both copies; then the replica
	// goes dark and batches 3-4 land only on the primary.
	for k := 1; k <= 4; k++ {
		if r := postTagged(t, tsA.URL, 0, uint64(k), "primary", taggedBatch(k)); r.Duplicate {
			t.Fatalf("batch %d duplicate on primary", k)
		}
		if k <= 2 {
			if r := postTagged(t, tsB.URL, 0, uint64(k), "replica", taggedBatch(k)); r.Duplicate {
				t.Fatalf("batch %d duplicate on replica", k)
			}
		}
	}

	// A proxy of the primary's /walship that forwards the first three
	// NDJSON lines (two the replica already has, ONE it is missing) and
	// then drops the connection — the peer dying mid-ship.
	cutProxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(tsA.URL + r.URL.String())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
		for i := 0; i < 3 && sc.Scan(); i++ {
			fmt.Fprintln(w, sc.Text())
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}))
	t.Cleanup(cutProxy.Close)

	if _, err := server.CatchUp(context.Background(), pB, cutProxy.URL, []int{0}); err == nil {
		t.Fatal("catch-up through the cut proxy succeeded; the fault was not injected")
	}

	// Restart the replica: the record applied during the truncated
	// transfer sits in its WAL and must survive recovery.
	tsB.Close()
	if err := pB.Close(); err != nil {
		t.Fatal(err)
	}
	tsB, pB = durableServer(t, dirB)
	t.Cleanup(tsB.Close)
	t.Cleanup(func() { pB.Close() })

	resp, err := server.CatchUp(context.Background(), pB, tsA.URL, []int{0})
	if err != nil {
		t.Fatalf("second catch-up: %v", err)
	}
	if resp.Records != 4 || resp.Applied != 1 || resp.Duplicates != 3 {
		t.Fatalf("catch-up applied=%d duplicates=%d records=%d, want 1/3/4 (batch 3 landed during the cut transfer)",
			resp.Applied, resp.Duplicates, resp.Records)
	}

	// Byte-identical answers on both copies.
	ra := postQuery(t, tsA, replScanQuery)
	rb := postQuery(t, tsB, replScanQuery)
	ja, _ := json.Marshal(struct {
		C []string
		R [][]string
	}{ra.Columns, ra.Rows})
	jb, _ := json.Marshal(struct {
		C []string
		R [][]string
	}{rb.Columns, rb.Rows})
	if !bytes.Equal(ja, jb) {
		t.Fatalf("copies diverge after catch-up:\nprimary: %s\nreplica: %s", ja, jb)
	}
	if len(ra.Rows) != 4 {
		t.Fatalf("primary answers %d rows, want 4", len(ra.Rows))
	}

	// A third transfer is a clean no-op.
	resp, err = server.CatchUp(context.Background(), pB, tsA.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Applied != 0 || resp.Duplicates != 4 {
		t.Fatalf("repeat catch-up applied=%d duplicates=%d, want 0/4", resp.Applied, resp.Duplicates)
	}
}

// TestCatchupHistoryGapIsConflict: when the peer has compacted tagged WAL
// records the puller never applied, catch-up must refuse loudly (409,
// "re-seed required") instead of reporting success with missing data.
func TestCatchupHistoryGapIsConflict(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	tsA, pA := durableServer(t, dirA)
	t.Cleanup(tsA.Close)
	t.Cleanup(func() { pA.Close() })
	tsB, pB := durableServer(t, dirB)
	t.Cleanup(tsB.Close)
	t.Cleanup(func() { pB.Close() })

	postTagged(t, tsA.URL, 0, 1, "primary", taggedBatch(1))
	postTagged(t, tsA.URL, 0, 2, "primary", taggedBatch(2))
	if err := pA.Compact(); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(map[string]any{"from": tsA.URL})
	resp, err := http.Post(tsB.URL+"/catchup", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("/catchup returned %d (%s), want 409", resp.StatusCode, msg)
	}
	if !strings.Contains(string(msg), "re-seed") {
		t.Fatalf("gap error %q does not tell the operator to re-seed", msg)
	}
}
