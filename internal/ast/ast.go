// Package ast defines the abstract syntax tree for the Attack Investigation
// Query Language, covering the three query families of paper Sec. 4:
// multievent queries, dependency queries, and anomaly queries (a multievent
// query under a sliding-window global constraint with aggregation).
// The tree mirrors the representative BNF in the paper's Grammar 1.
package ast

import (
	"fmt"
	"strings"
)

// Pos is a source position for error reporting.
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Query is the root node: exactly one of Multi or Dep is set.
type Query struct {
	Globals []Global
	Multi   *MultiEvent
	Dep     *Dependency
	// Source is the original query text, retained for conciseness metrics.
	Source string
}

// Global is one <global_cstr>: an attribute constraint applying to every
// event pattern, a time window, or a sliding-window declaration.
type Global struct {
	Pos    Pos
	Cstr   AttrExpr   // e.g. agentid = 1 (nil if this global is not a constraint)
	Window *WindowLit // (at "...") or (from "..." to "...")
	Slide  *SlideWind // window = 1 min / step = 10 sec
}

// WindowLit is an unresolved time-window literal.
type WindowLit struct {
	Pos  Pos
	At   string // `at "x"` form; empty when From/To used
	From string
	To   string
}

// SlideWind declares the sliding window used by anomaly queries. Length and
// Step are in milliseconds; either may be zero if only the other keyword
// appeared (the compiler merges the two globals).
type SlideWind struct {
	Pos    Pos
	Length int64
	Step   int64
}

// MultiEvent is an <m_query>: event patterns, relationships, and result
// shaping clauses.
type MultiEvent struct {
	Patterns []*EventPattern
	Rels     []Rel
	Return   *ReturnClause
	GroupBy  []ResExpr
	Having   Expr
	SortBy   []SortKey
	SortDesc bool
	Top      int // 0 = no limit
}

// EventPattern is one <evt_patt>: {subject, operation, object} with an
// optional event id, event-attribute constraint, and pattern-local window.
type EventPattern struct {
	Pos     Pos
	Subj    EntityRef
	Op      OpExpr
	Obj     EntityRef
	EvtID   string
	EvtCstr AttrExpr
	Window  *WindowLit
}

// EntityRef is an <entity>: type keyword, optional id, optional constraint.
type EntityRef struct {
	Pos  Pos
	Type string // "proc" | "file" | "ip"
	ID   string // "" when omitted (optional-ID shortcut)
	Cstr AttrExpr
}

// --- Attribute constraint expressions (<attr_cstr>) ---

// AttrExpr is a boolean expression over entity or event attributes.
type AttrExpr interface {
	attrExpr()
	String() string
}

// Cstr is an atomic <cstr>. When Attr is empty the constraint used the
// bare-value shortcut (".viminfo") and the compiler infers the default
// attribute. Op is one of = != < <= > >= in notin.
type Cstr struct {
	Pos  Pos
	Attr string
	Op   string
	Val  string
	Vals []string // for in / notin
	// ValIsString records whether Val was a quoted literal, which matters
	// for the bare-value shortcut.
	ValIsString bool
}

// NotAttr negates a constraint expression.
type NotAttr struct {
	X AttrExpr
}

// BinAttr combines two constraint expressions with && or ||.
type BinAttr struct {
	Op   string // "&&" | "||"
	L, R AttrExpr
}

func (*Cstr) attrExpr()    {}
func (*NotAttr) attrExpr() {}
func (*BinAttr) attrExpr() {}

func (c *Cstr) String() string {
	switch c.Op {
	case "in", "notin":
		op := "in"
		if c.Op == "notin" {
			op = "not in"
		}
		return fmt.Sprintf("%s %s (%s)", c.Attr, op, strings.Join(c.Vals, ", "))
	}
	attr := c.Attr
	if attr == "" {
		return fmt.Sprintf("%q", c.Val)
	}
	if c.ValIsString {
		return fmt.Sprintf("%s %s %q", attr, c.Op, c.Val)
	}
	return fmt.Sprintf("%s %s %s", attr, c.Op, c.Val)
}

func (n *NotAttr) String() string { return "!(" + n.X.String() + ")" }
func (b *BinAttr) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// --- Operation expressions (<op_exp>) ---

// OpExpr is a boolean expression over operation names.
type OpExpr interface {
	opExpr()
	String() string
}

// OpName is a single operation keyword.
type OpName struct {
	Pos  Pos
	Name string
}

// NotOp negates an operation expression.
type NotOp struct {
	X OpExpr
}

// BinOp combines two operation expressions with && or ||.
type BinOp struct {
	Op   string
	L, R OpExpr
}

func (*OpName) opExpr() {}
func (*NotOp) opExpr()  {}
func (*BinOp) opExpr()  {}

func (o *OpName) String() string { return o.Name }
func (n *NotOp) String() string  { return "!" + n.X.String() }
func (b *BinOp) String() string  { return o2s(b.L) + " " + b.Op + " " + o2s(b.R) }

func o2s(o OpExpr) string { return o.String() }

// --- Event relationships (<evt_rel>) ---

// Rel is either an attribute relationship or a temporal relationship.
type Rel interface {
	rel()
	String() string
}

// AttrRel relates two event patterns through entity attributes:
// p1.attr OP p3.attr, with the bare form p1 = p3 leaving Attrs empty for
// the compiler's id inference.
type AttrRel struct {
	Pos   Pos
	LID   string
	LAttr string // "" → infer "id"
	Op    string
	RID   string
	RAttr string
}

// TempRel orders two event patterns: evtA before|after|within [lo-hi unit] evtB.
type TempRel struct {
	Pos  Pos
	LEvt string
	Kind string // "before" | "after" | "within"
	Lo   string // optional range bound (number literal)
	Hi   string
	Unit string
	REvt string
}

func (*AttrRel) rel() {}
func (*TempRel) rel() {}

func (r *AttrRel) String() string {
	l, rr := r.LID, r.RID
	if r.LAttr != "" {
		l += "." + r.LAttr
	}
	if r.RAttr != "" {
		rr += "." + r.RAttr
	}
	return l + " " + r.Op + " " + rr
}

func (r *TempRel) String() string {
	s := r.LEvt + " " + r.Kind
	if r.Lo != "" {
		s += "[" + r.Lo + "-" + r.Hi + " " + r.Unit + "]"
	}
	return s + " " + r.REvt
}

// --- Return clause ---

// ReturnClause is <return>.
type ReturnClause struct {
	Pos      Pos
	Count    bool
	Distinct bool
	Items    []ReturnItem
}

// ReturnItem is one <res> with an optional rename.
type ReturnItem struct {
	Expr ResExpr
	As   string
}

// ResExpr is a result expression: a reference or an aggregate call.
type ResExpr interface {
	resExpr()
	String() string
}

// Ref references an entity/event id with an optional attribute
// (p1, p1.exe_name, evt1.optype).
type Ref struct {
	Pos  Pos
	ID   string
	Attr string
}

// Agg applies an aggregation function (count, avg, sum, min, max) to a
// result expression, optionally with DISTINCT (count(distinct ipp)).
type Agg struct {
	Pos      Pos
	Func     string
	Distinct bool
	Arg      ResExpr
}

func (*Ref) resExpr() {}
func (*Agg) resExpr() {}

func (r *Ref) String() string {
	if r.Attr == "" {
		return r.ID
	}
	return r.ID + "." + r.Attr
}

func (a *Agg) String() string {
	inner := a.Arg.String()
	if a.Distinct {
		inner = "distinct " + inner
	}
	return a.Func + "(" + inner + ")"
}

// SortKey is one `sort by` key.
type SortKey struct {
	Name string
	Attr string // optional .attr
}

func (k SortKey) String() string {
	if k.Attr == "" {
		return k.Name
	}
	return k.Name + "." + k.Attr
}

// --- Having expressions ---

// Expr is an arithmetic/boolean expression over aggregate results and
// history states (paper Sec. 4.3).
type Expr interface {
	expr()
	String() string
}

// NumLit is a numeric literal.
type NumLit struct {
	Pos Pos
	Val float64
	Raw string
}

// StrLit is a string literal.
type StrLit struct {
	Pos Pos
	Val string
}

// VarRef references an aggregate alias, optionally at a history offset:
// freq is the current window, freq[1] the previous one, etc.
type VarRef struct {
	Pos  Pos
	Name string
	Hist int // 0 = current window
}

// FieldRef references id.attr inside an expression.
type FieldRef struct {
	Pos  Pos
	ID   string
	Attr string
}

// Call invokes a built-in function, e.g. EWMA(freq, 0.9) or SMA(freq, 3).
type Call struct {
	Pos  Pos
	Func string
	Args []Expr
}

// Unary applies - or ! to an expression.
type Unary struct {
	Op string
	X  Expr
}

// Binary applies an arithmetic (+ - * /), comparison (= != < <= > >=) or
// logical (&& ||) operator.
type Binary struct {
	Op   string
	L, R Expr
}

func (*NumLit) expr()   {}
func (*StrLit) expr()   {}
func (*VarRef) expr()   {}
func (*FieldRef) expr() {}
func (*Call) expr()     {}
func (*Unary) expr()    {}
func (*Binary) expr()   {}

func (n *NumLit) String() string { return n.Raw }
func (s *StrLit) String() string { return fmt.Sprintf("%q", s.Val) }
func (v *VarRef) String() string {
	if v.Hist == 0 {
		return v.Name
	}
	return fmt.Sprintf("%s[%d]", v.Name, v.Hist)
}
func (f *FieldRef) String() string { return f.ID + "." + f.Attr }
func (c *Call) String() string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return c.Func + "(" + strings.Join(args, ", ") + ")"
}
func (u *Unary) String() string  { return u.Op + u.X.String() }
func (b *Binary) String() string { return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")" }

// --- Dependency queries (<d_query>) ---

// Dependency is a path of entities joined by operation edges, with an
// optional direction prefix giving the temporal order of events along the
// path (paper Sec. 4.2).
type Dependency struct {
	Pos       Pos
	Direction string // "forward" | "backward" | ""
	Nodes     []EntityRef
	Edges     []DepEdge // len(Edges) == len(Nodes)-1
	Return    *ReturnClause
	SortBy    []SortKey
	SortDesc  bool
	Top       int
}

// DepEdge is one <op_edge>: direction arrow plus operation expression.
// Dir is "->" (left entity is the subject) or "<-" (right entity is the
// subject).
type DepEdge struct {
	Pos Pos
	Dir string
	Op  OpExpr
}

// IsAnomaly reports whether the query declares a sliding window, which is
// what distinguishes an anomaly query from a plain multievent query.
func (q *Query) IsAnomaly() bool {
	for i := range q.Globals {
		if q.Globals[i].Slide != nil {
			return true
		}
	}
	return false
}

// Walk visits every attribute-constraint node in an AttrExpr in preorder.
func Walk(e AttrExpr, visit func(AttrExpr)) {
	if e == nil {
		return
	}
	visit(e)
	switch v := e.(type) {
	case *NotAttr:
		Walk(v.X, visit)
	case *BinAttr:
		Walk(v.L, visit)
		Walk(v.R, visit)
	}
}

// WalkOps visits every operation node in an OpExpr in preorder.
func WalkOps(e OpExpr, visit func(OpExpr)) {
	if e == nil {
		return
	}
	visit(e)
	switch v := e.(type) {
	case *NotOp:
		WalkOps(v.X, visit)
	case *BinOp:
		WalkOps(v.L, visit)
		WalkOps(v.R, visit)
	}
}

// WalkExpr visits every node of a having expression in preorder.
func WalkExpr(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch v := e.(type) {
	case *Unary:
		WalkExpr(v.X, visit)
	case *Binary:
		WalkExpr(v.L, visit)
		WalkExpr(v.R, visit)
	case *Call:
		for _, a := range v.Args {
			WalkExpr(a, visit)
		}
	}
}
