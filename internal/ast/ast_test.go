package ast

import (
	"strings"
	"testing"
)

func TestStringRendering(t *testing.T) {
	cases := []struct {
		node interface{ String() string }
		want string
	}{
		{&Cstr{Attr: "exe_name", Op: "=", Val: "%cmd%", ValIsString: true}, `exe_name = "%cmd%"`},
		{&Cstr{Attr: "dst_port", Op: "=", Val: "4444"}, "dst_port = 4444"},
		{&Cstr{Op: "=", Val: ".viminfo", ValIsString: true}, `".viminfo"`},
		{&Cstr{Attr: "name", Op: "in", Vals: []string{"a", "b"}}, "name in (a, b)"},
		{&Cstr{Attr: "name", Op: "notin", Vals: []string{"a"}}, "name not in (a)"},
		{&NotAttr{X: &Cstr{Attr: "x", Op: "=", Val: "1"}}, "!(x = 1)"},
		{&BinAttr{Op: "||", L: &Cstr{Op: "=", Val: "a", ValIsString: true}, R: &Cstr{Op: "=", Val: "b", ValIsString: true}}, `("a" || "b")`},
		{&OpName{Name: "read"}, "read"},
		{&NotOp{X: &OpName{Name: "read"}}, "!read"},
		{&BinOp{Op: "||", L: &OpName{Name: "read"}, R: &OpName{Name: "write"}}, "read || write"},
		{&AttrRel{LID: "p1", Op: "=", RID: "p3"}, "p1 = p3"},
		{&AttrRel{LID: "p1", LAttr: "name", Op: "=", RID: "p3", RAttr: "name"}, "p1.name = p3.name"},
		{&TempRel{LEvt: "evt1", Kind: "before", REvt: "evt2"}, "evt1 before evt2"},
		{&TempRel{LEvt: "evt1", Kind: "before", Lo: "1", Hi: "2", Unit: "minutes", REvt: "evt2"}, "evt1 before[1-2 minutes] evt2"},
		{&Ref{ID: "p1"}, "p1"},
		{&Ref{ID: "evt1", Attr: "optype"}, "evt1.optype"},
		{&Agg{Func: "count", Distinct: true, Arg: &Ref{ID: "ipp"}}, "count(distinct ipp)"},
		{&VarRef{Name: "freq"}, "freq"},
		{&VarRef{Name: "freq", Hist: 2}, "freq[2]"},
		{&FieldRef{ID: "evt", Attr: "amount"}, "evt.amount"},
		{&Call{Func: "EWMA", Args: []Expr{&VarRef{Name: "freq"}, &NumLit{Raw: "0.9"}}}, "EWMA(freq, 0.9)"},
		{&Unary{Op: "-", X: &VarRef{Name: "x"}}, "-x"},
		{&Binary{Op: "+", L: &VarRef{Name: "a"}, R: &VarRef{Name: "b"}}, "(a + b)"},
		{SortKey{Name: "p1"}, "p1"},
		{SortKey{Name: "p1", Attr: "pid"}, "p1.pid"},
		{Pos{Line: 3, Col: 7}, "3:7"},
	}
	for _, tc := range cases {
		if got := tc.node.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestIsAnomaly(t *testing.T) {
	q := &Query{Globals: []Global{{Cstr: &Cstr{Attr: "agentid", Op: "=", Val: "1"}}}}
	if q.IsAnomaly() {
		t.Error("query without slide window reported anomalous")
	}
	q.Globals = append(q.Globals, Global{Slide: &SlideWind{Length: 60000}})
	if !q.IsAnomaly() {
		t.Error("query with slide window not reported anomalous")
	}
}

func TestWalkVisitsAllAttrNodes(t *testing.T) {
	tree := &BinAttr{
		Op: "&&",
		L:  &NotAttr{X: &Cstr{Attr: "a", Op: "=", Val: "1"}},
		R: &BinAttr{Op: "||",
			L: &Cstr{Attr: "b", Op: "=", Val: "2"},
			R: &Cstr{Attr: "c", Op: "=", Val: "3"}},
	}
	var leaves, total int
	Walk(tree, func(e AttrExpr) {
		total++
		if _, ok := e.(*Cstr); ok {
			leaves++
		}
	})
	if leaves != 3 || total != 6 {
		t.Errorf("walk visited %d leaves / %d nodes, want 3/6", leaves, total)
	}
	Walk(nil, func(AttrExpr) { t.Error("nil walk must not visit") })
}

func TestWalkOps(t *testing.T) {
	tree := &BinOp{Op: "||",
		L: &OpName{Name: "read"},
		R: &NotOp{X: &OpName{Name: "delete"}}}
	var names []string
	WalkOps(tree, func(e OpExpr) {
		if o, ok := e.(*OpName); ok {
			names = append(names, o.Name)
		}
	})
	if strings.Join(names, ",") != "read,delete" {
		t.Errorf("visited ops = %v", names)
	}
	WalkOps(nil, func(OpExpr) { t.Error("nil walk must not visit") })
}

func TestWalkExpr(t *testing.T) {
	tree := &Binary{Op: ">",
		L: &Call{Func: "SMA", Args: []Expr{&VarRef{Name: "freq"}, &NumLit{Raw: "3"}}},
		R: &Unary{Op: "-", X: &NumLit{Raw: "1"}}}
	count := 0
	WalkExpr(tree, func(Expr) { count++ })
	// Binary, Call, VarRef, NumLit, Unary, NumLit.
	if count != 6 {
		t.Errorf("visited %d nodes, want 6", count)
	}
	WalkExpr(nil, func(Expr) { t.Error("nil walk must not visit") })
}
