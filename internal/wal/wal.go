// Package wal implements the checksummed, sequence-numbered write-ahead
// log underneath the storage layer's persistent mode. The log is a
// directory of append-only files; every record carries a monotonically
// increasing sequence number and a CRC-32C over its payload, so recovery
// can (a) detect and discard a torn final record left by a crash
// mid-append and (b) skip records that an immutable segment file already
// covers, making "apply each record exactly once" a property of the
// on-disk format rather than of careful shutdown.
//
// On-disk format (all integers little-endian):
//
//	file   := magic record*            magic = "AIQLWAL1"
//	record := seq(u64) len(u32) crc(u32) payload[len]
//
// Files are named wal-<first-seq, 16 hex digits>.log. Only the highest-
// numbered file is ever appended to; Rotate seals it and starts the next.
// Corruption in a sealed file is an error (sealed files were synced before
// their successor was created); a torn tail in the active file is the
// expected signature of a crash and is truncated away on Open.
//
// The log knows nothing about what the payloads mean — the storage layer
// encodes ingest batches into them and replays them through its own codec.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"aiql/internal/obs"
)

const (
	magic     = "AIQLWAL1"
	headerLen = 8 + 4 + 4 // seq + len + crc
	// MaxRecordBytes bounds one record's payload: a length field beyond it
	// is treated as corruption rather than attempted as an allocation.
	MaxRecordBytes = 1 << 30
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tune a Log. The zero value is usable.
type Options struct {
	// MaxFileBytes rotates the active file once it exceeds this size
	// (default 64 MiB). Rotation also happens explicitly before
	// compaction, so this only bounds individual file size.
	MaxFileBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxFileBytes == 0 {
		o.MaxFileBytes = 64 << 20
	}
	return o
}

// FileInfo describes one log file's sequence range.
type FileInfo struct {
	Path    string
	First   uint64 // first sequence number present (0 if the file is empty)
	Last    uint64 // last sequence number present (0 if the file is empty)
	Records int
	Bytes   int64
}

// Log is an append-only record log in a directory. Append, Sync, Rotate
// and RemoveThrough are safe for concurrent use; Replay must not run
// concurrently with Append.
type Log struct {
	dir  string
	opts Options

	mu          sync.Mutex
	active      *os.File   // aiql:guarded-by mu
	activeInfo  FileInfo   // aiql:guarded-by mu
	activeFirst uint64     // seq the active file is named for; aiql:guarded-by mu
	sealed      []FileInfo // aiql:guarded-by mu
	nextSeq     uint64     // aiql:guarded-by mu

	// fsync accounting (atomic: read by the metrics scrape without the
	// lock): how many fsyncs the log issued on its append path and their
	// cumulative duration — the observable cost of the durability contract.
	fsyncs     atomic.Uint64
	fsyncNanos atomic.Int64
}

// Open scans dir (creating it if needed), validates every file, truncates
// a torn tail off the newest file, and returns a log ready to append. The
// returned log's NextSeq continues the sequence where the files left off.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	names, err := listFiles(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, nextSeq: 1}
	for i, name := range names {
		path := filepath.Join(dir, name)
		info, err := validateFile(path, i == len(names)-1)
		if err != nil {
			return nil, err
		}
		if info.Records > 0 {
			if info.First < l.nextSeq {
				return nil, fmt.Errorf("wal: %s starts at seq %d, want >= %d (overlapping files)", name, info.First, l.nextSeq)
			}
			l.nextSeq = info.Last + 1
		}
		l.sealed = append(l.sealed, info)
	}
	// Reopen the newest file for appending; if none exists, the first
	// Append creates one.
	if n := len(l.sealed); n > 0 {
		last := l.sealed[n-1]
		f, err := os.OpenFile(last.Path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.active = f
		l.activeInfo = last
		l.activeFirst = seqFromName(filepath.Base(last.Path))
		l.sealed = l.sealed[:n-1]
	}
	return l, nil
}

// listFiles returns the wal-*.log names in dir sorted by their first-seq
// file name component.
func listFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if !e.Type().IsRegular() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return seqFromName(names[i]) < seqFromName(names[j]) })
	return names, nil
}

func seqFromName(name string) uint64 {
	s := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	n, _ := strconv.ParseUint(s, 16, 64)
	return n
}

func fileName(first uint64) string { return fmt.Sprintf("wal-%016x.log", first) }

// validateFile walks one file's records. For the newest (active-at-crash)
// file a torn or corrupt tail is truncated away; anywhere else corruption
// is an error, because sealed files were fully written and synced before
// their successor existed.
func validateFile(path string, tolerateTornTail bool) (FileInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return FileInfo{}, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	info := FileInfo{Path: path}
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(f, hdr); err != nil {
		if tolerateTornTail {
			// A crash can land between file creation and the magic write.
			info.Bytes = int64(len(magic))
			return info, truncateAt(path, 0, true)
		}
		return FileInfo{}, fmt.Errorf("wal: %s: short magic: %w", path, err)
	}
	if string(hdr) != magic {
		return FileInfo{}, fmt.Errorf("wal: %s: bad magic %q", path, hdr)
	}
	good := int64(len(magic))
	rh := make([]byte, headerLen)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, rh); err != nil {
			if err == io.EOF {
				break // clean end
			}
			// Torn record header.
			if tolerateTornTail {
				info.Bytes = good
				return info, truncateAt(path, good, false)
			}
			return FileInfo{}, fmt.Errorf("wal: %s: torn record header at %d in sealed file", path, good)
		}
		seq := binary.LittleEndian.Uint64(rh[0:8])
		n := binary.LittleEndian.Uint32(rh[8:12])
		crc := binary.LittleEndian.Uint32(rh[12:16])
		bad := ""
		if n > MaxRecordBytes {
			bad = "implausible record length"
		} else {
			if cap(payload) < int(n) {
				payload = make([]byte, n)
			}
			payload = payload[:n]
			if _, err := io.ReadFull(f, payload); err != nil {
				bad = "torn payload"
			} else if crc32.Checksum(payload, castagnoli) != crc {
				bad = "checksum mismatch"
			} else if info.Records > 0 && seq != info.Last+1 {
				bad = "sequence gap"
			}
		}
		if bad != "" {
			if tolerateTornTail {
				info.Bytes = good
				return info, truncateAt(path, good, false)
			}
			return FileInfo{}, fmt.Errorf("wal: %s: %s at offset %d in sealed file", path, bad, good)
		}
		if info.Records == 0 {
			info.First = seq
		}
		info.Last = seq
		info.Records++
		good += headerLen + int64(len(payload))
	}
	info.Bytes = good
	return info, nil
}

// truncateAt cuts a file to length n (rewriting the magic when the file
// was torn before the magic finished).
func truncateAt(path string, n int64, rewriteMagic bool) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if rewriteMagic {
		if err := f.Truncate(0); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if _, err := f.Write([]byte(magic)); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	} else if err := f.Truncate(n); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return f.Sync()
}

// Append writes one record and returns its sequence number. The write is
// buffered by the OS; call Sync to force it to stable storage (the
// persistent store batches syncs across appends).
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil || l.activeInfo.Bytes >= l.opts.MaxFileBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	seq := l.nextSeq
	var hdr [headerLen]byte
	binary.LittleEndian.PutUint64(hdr[0:8], seq)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[12:16], crc32.Checksum(payload, castagnoli))
	if _, err := l.active.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if _, err := l.active.Write(payload); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	if l.activeInfo.Records == 0 {
		l.activeInfo.First = seq
	}
	l.activeInfo.Last = seq
	l.activeInfo.Records++
	l.activeInfo.Bytes += headerLen + int64(len(payload))
	l.nextSeq = seq + 1
	return seq, nil
}

// Sync forces appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	if err := l.syncActive(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

// syncActive fsyncs the active file under the timing counters. Callers hold
// mu and have checked active != nil.
//
// aiql:locked mu
func (l *Log) syncActive() error {
	start := obs.Now()
	err := l.active.Sync()
	l.fsyncs.Add(1)
	l.fsyncNanos.Add(int64(obs.Since(start)))
	return err
}

// SyncStats reports how many fsyncs the log has issued and their cumulative
// duration in nanoseconds.
func (l *Log) SyncStats() (count uint64, nanos int64) {
	return l.fsyncs.Load(), l.fsyncNanos.Load()
}

// Rotate seals the active file (sync + close) and arranges for the next
// Append to start a fresh one. It returns the sealed files' infos — the
// compactor's input set. Rotating an empty log is a no-op.
func (l *Log) Rotate() ([]FileInfo, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active != nil {
		if err := l.sealActiveLocked(); err != nil {
			return nil, err
		}
	}
	out := make([]FileInfo, len(l.sealed))
	copy(out, l.sealed)
	return out, nil
}

// sealActiveLocked syncs, closes and records the active file.
//
// aiql:locked mu
func (l *Log) sealActiveLocked() error {
	if err := l.syncActive(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if l.activeInfo.Records == 0 {
		// Nothing ever landed in it; reuse rather than accumulate empties.
		if err := os.Remove(l.activeInfo.Path); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
	} else {
		l.sealed = append(l.sealed, l.activeInfo)
	}
	l.active = nil
	l.activeInfo = FileInfo{}
	return nil
}

// rotateLocked seals the current file if any and opens the next one.
//
// aiql:locked mu
func (l *Log) rotateLocked() error {
	if l.active != nil {
		if err := l.sealActiveLocked(); err != nil {
			return err
		}
	}
	path := filepath.Join(l.dir, fileName(l.nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write([]byte(magic)); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.active = f
	l.activeFirst = l.nextSeq
	l.activeInfo = FileInfo{Path: path, Bytes: int64(len(magic))}
	return nil
}

// Replay streams every record with seq > after, oldest first, to fn. A
// non-nil error from fn aborts the replay. Replay reads from disk, so it
// observes exactly what recovery would.
func (l *Log) Replay(after uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	files := make([]FileInfo, 0, len(l.sealed)+1)
	files = append(files, l.sealed...)
	if l.active != nil && l.activeInfo.Records > 0 {
		// Flush OS buffers? os.File writes land in the page cache
		// immediately; a same-process reader sees them without a sync.
		files = append(files, l.activeInfo)
	}
	l.mu.Unlock()
	for _, info := range files {
		if info.Records == 0 || info.Last <= after {
			continue
		}
		if err := replayFile(info, after, fn); err != nil {
			return err
		}
	}
	return nil
}

func replayFile(info FileInfo, after uint64, fn func(uint64, []byte) error) error {
	f, err := os.Open(info.Path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(f, hdr); err != nil || string(hdr) != magic {
		return fmt.Errorf("wal: %s: bad magic on replay", info.Path)
	}
	rh := make([]byte, headerLen)
	read := int64(len(magic))
	for read < info.Bytes {
		if _, err := io.ReadFull(f, rh); err != nil {
			return fmt.Errorf("wal: %s: replay read: %w", info.Path, err)
		}
		seq := binary.LittleEndian.Uint64(rh[0:8])
		n := binary.LittleEndian.Uint32(rh[8:12])
		crc := binary.LittleEndian.Uint32(rh[12:16])
		// Replay runs after Open validated the file, but the bytes are
		// re-read here: bound the length again rather than trust the disk
		// twice (corruption must error, never drive an allocation).
		if n > MaxRecordBytes {
			return fmt.Errorf("wal: %s: implausible record length %d on replay at offset %d", info.Path, n, read)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return fmt.Errorf("wal: %s: replay read: %w", info.Path, err)
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return fmt.Errorf("wal: %s: checksum mismatch on replay at seq %d", info.Path, seq)
		}
		read += headerLen + int64(n)
		if seq <= after {
			continue
		}
		if err := fn(seq, payload); err != nil {
			return err
		}
	}
	return nil
}

// RemoveThrough deletes sealed files whose every record is <= seq — the
// cleanup step after a compaction made those records redundant. Files that
// straddle the boundary are kept (their covered records are skipped on
// replay by sequence number).
func (l *Log) RemoveThrough(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.sealed[:0]
	for _, info := range l.sealed {
		if info.Records > 0 && info.Last <= seq {
			if err := os.Remove(info.Path); err != nil {
				return fmt.Errorf("wal: %w", err)
			}
			continue
		}
		kept = append(kept, info)
	}
	l.sealed = kept
	return nil
}

// Depth reports the records and bytes currently held across all files —
// the "WAL depth" a server exposes and the compactor's trigger input.
func (l *Log) Depth() (records int, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, info := range l.sealed {
		records += info.Records
		bytes += info.Bytes
	}
	records += l.activeInfo.Records
	bytes += l.activeInfo.Bytes
	return records, bytes
}

// LastSeq returns the highest sequence number ever appended (0 if none).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// AdvanceTo raises the next sequence number to at least seq+1. Callers
// whose compacted segments cover sequences the log's files no longer hold
// must advance past the covered range after Open — otherwise a log whose
// every file was deleted by compaction would restart at 1 and new records
// would collide with (and be skipped as) already-covered sequences.
func (l *Log) AdvanceTo(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nextSeq <= seq {
		l.nextSeq = seq + 1
	}
}

// Close syncs and closes the active file. The log must not be used after.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.active == nil {
		return nil
	}
	err := l.syncActive()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	l.active = nil
	return err
}
