package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		payload := []byte(fmt.Sprintf("record-%05d", from+i))
		seq, err := l.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(from+i) {
			t.Fatalf("Append returned seq %d, want %d", seq, from+i)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func collect(t *testing.T, l *Log, after uint64) map[uint64]string {
	t.Helper()
	out := make(map[uint64]string)
	if err := l.Replay(after, func(seq uint64, payload []byte) error {
		out[seq] = string(payload)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 10)
	got := collect(t, l, 0)
	if len(got) != 10 || got[1] != "record-00001" || got[10] != "record-00010" {
		t.Fatalf("replay = %v", got)
	}
	if got := collect(t, l, 7); len(got) != 3 {
		t.Fatalf("replay after 7 returned %d records, want 3", len(got))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen continues the sequence.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 10 {
		t.Fatalf("LastSeq after reopen = %d, want 10", l2.LastSeq())
	}
	appendN(t, l2, 11, 5)
	if got := collect(t, l2, 0); len(got) != 15 {
		t.Fatalf("replay after reopen = %d records, want 15", len(got))
	}
}

// TestTornTailTruncated simulates a crash mid-append: the last file is cut
// at every byte offset inside its final record, and Open must recover the
// intact prefix each time.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int64{1, 5, 8, 12, 15, 16, 20} {
		dir := t.TempDir()
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		appendN(t, l, 1, 3)
		_, full := l.Depth()
		l.Close()

		names, err := listFiles(dir)
		if err != nil || len(names) != 1 {
			t.Fatalf("files = %v (%v)", names, err)
		}
		path := filepath.Join(dir, names[0])
		// The last record is "record-00003" (12 bytes) + 16 header bytes.
		if err := os.Truncate(path, full-cut); err != nil {
			t.Fatal(err)
		}

		l2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		got := collect(t, l2, 0)
		if len(got) != 2 || got[1] == "" || got[2] == "" {
			t.Fatalf("cut %d: replay = %v, want records 1,2", cut, got)
		}
		// The log must be appendable after truncation, reusing seq 3.
		if seq, err := l2.Append([]byte("retry")); err != nil || seq != 3 {
			t.Fatalf("cut %d: append after truncation: seq=%d err=%v", cut, seq, err)
		}
		if got := collect(t, l2, 0); got[3] != "retry" {
			t.Fatalf("cut %d: replay after retry = %v", cut, got)
		}
		l2.Close()
	}
}

// TestCorruptPayloadTruncated flips a byte in the final record's payload;
// the checksum must catch it and recovery must drop exactly that record.
func TestCorruptPayloadTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 3)
	l.Close()

	names, _ := listFiles(dir)
	path := filepath.Join(dir, names[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2, 0); len(got) != 2 {
		t.Fatalf("replay after corruption = %v, want 2 records", got)
	}
}

// TestCorruptSealedFileIsError: corruption outside the newest file means
// the synced history is damaged — recovery must refuse, not guess.
func TestCorruptSealedFileIsError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 1, 3)
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, 2)
	l.Close()

	names, _ := listFiles(dir)
	if len(names) != 2 {
		t.Fatalf("files = %v, want 2", names)
	}
	path := filepath.Join(dir, names[0])
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt sealed file")
	}
}

func TestRotateAndRemoveThrough(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 1, 4)
	sealed, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) != 1 || sealed[0].First != 1 || sealed[0].Last != 4 {
		t.Fatalf("sealed = %+v", sealed)
	}
	appendN(t, l, 5, 2)

	if err := l.RemoveThrough(4); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l, 0); len(got) != 2 || got[5] == "" || got[6] == "" {
		t.Fatalf("replay after remove = %v", got)
	}
	recs, _ := l.Depth()
	if recs != 2 {
		t.Fatalf("depth after remove = %d records, want 2", recs)
	}
	names, _ := listFiles(dir)
	if len(names) != 1 {
		t.Fatalf("files after remove = %v, want 1", names)
	}

	// Reopen sees only the surviving records, still in sequence.
	l.Close()
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 6 {
		t.Fatalf("LastSeq = %d, want 6", l2.LastSeq())
	}
	if got := collect(t, l2, 0); len(got) != 2 {
		t.Fatalf("replay after reopen = %v", got)
	}
}

func TestFileSizeRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{MaxFileBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("x"), 40)
	for i := 0; i < 6; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	names, _ := listFiles(dir)
	if len(names) < 3 {
		t.Fatalf("size-based rotation produced %d files, want >= 3", len(names))
	}
	if got := collect(t, l, 0); len(got) != 6 {
		t.Fatalf("replay across rotated files = %d records, want 6", len(got))
	}
}

func TestEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l.LastSeq() != 0 {
		t.Fatalf("LastSeq = %d", l.LastSeq())
	}
	if got := collect(t, l, 0); len(got) != 0 {
		t.Fatalf("empty replay = %v", got)
	}
	recs, b := l.Depth()
	if recs != 0 || b != 0 {
		t.Fatalf("depth = %d/%d", recs, b)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
