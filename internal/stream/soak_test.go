package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aiql/internal/gen"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// soakRules is a ~20-rule wall mixing selective and broad single-pattern
// rules with multi-pattern join rules — the CI stream-soak configuration.
func soakRules() []RuleSpec {
	window := time.Hour.Milliseconds()
	rules := []RuleSpec{
		// Deliberately broad: matches every read, so stalled subscribers
		// overflow their buffers and must be dropped, not waited for.
		{ID: "any-read", Query: `proc p read file f return p, f`, WindowMs: window},
		{ID: "exfil", Query: `proc p read file f["%id_rsa"] return p, f`, WindowMs: window},
		{ID: "c2", Query: `proc p connect ip i[dstip = "` + gen.AttackerIP + `"] return p, i`, WindowMs: window},
		{ID: "dropper", Query: `proc p1 write file f as evt1
proc p2["%invupd.exe"] read file f as evt2
with evt1 before evt2
return p1, p2, f`, WindowMs: window},
		{ID: "spawn-read", Query: `proc p1 start proc p2 as evt1
proc p2 read file f["%invoice.xls"] as evt2
with evt1 before evt2
return p1, p2, f`, WindowMs: window},
		{ID: "distinct-writers", Query: `proc p write ip i return distinct p`, WindowMs: window},
	}
	// Per-agent selective rules round the wall out to ~20 without creating
	// unselective join storms.
	for a := 1; a <= 15; a++ {
		rules = append(rules, RuleSpec{
			ID:       fmt.Sprintf("agent-%d", a),
			Query:    fmt.Sprintf("agentid = %d\nproc p execute file f return p, f", a),
			WindowMs: window,
		})
	}
	return rules
}

// TestStreamSoak is the CI stream-soak job: a 100k-event dataset ingested
// in batches against ~20 standing rules, under continuous subscriber churn
// — fast consumers, slow consumers that must be dropped, and mid-flight
// subscribes/unsubscribes — asserting freedom from deadlock and data races
// (run with -race), ingest never blocking, and counter consistency at the
// end.
func TestStreamSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping the 100k-event soak")
	}
	ds := gen.Scenario(gen.Config{Hosts: 15, Days: 3, BackgroundPerHostDay: 2250, Seed: 3}) // ~100k events
	if len(ds.Events) < 100_000 {
		t.Fatalf("soak dataset has only %d events", len(ds.Events))
	}
	st := storage.New(storage.Options{})
	m := NewMatcher(st, Options{MaxRules: 64, BufferSize: 128})
	st.SetIngestObserver(m.OnIngest)

	rules := soakRules()
	for _, spec := range rules {
		if _, err := m.Register(spec); err != nil {
			t.Fatalf("register %s: %v", spec.ID, err)
		}
	}

	var (
		stop     atomic.Bool
		received atomic.Uint64
		churns   atomic.Uint64
		wg       sync.WaitGroup
	)
	// Subscriber churn: per rule, one goroutine that repeatedly subscribes,
	// consumes for a while (draining fast or stalling to provoke drops),
	// and unsubscribes.
	for i, spec := range rules {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			for round := 0; !stop.Load(); round++ {
				sub, _, err := m.Subscribe(id, 0)
				if err != nil {
					t.Errorf("subscribe %s: %v", id, err)
					return
				}
				churns.Add(1)
				if (i+round)%3 == 0 {
					// Deliberate stall: this subscriber never reads and must
					// be dropped once it falls a buffer behind.
					time.Sleep(2 * time.Millisecond)
				} else {
					deadline := time.After(2 * time.Millisecond)
				consume:
					for {
						select {
						case _, ok := <-sub.C():
							if !ok {
								break consume
							}
							received.Add(1)
						case <-deadline:
							break consume
						}
					}
				}
				sub.Close()
			}
		}(i, spec.ID)
	}

	// Ingest the dataset in 1000-event batches: entities first, then the
	// event stream, timed so a blocked tap turns into a test timeout.
	start := time.Now()
	st.Ingest(types.NewDataset(ds.Entities, nil))
	const batchSize = 1000
	for lo := 0; lo < len(ds.Events); lo += batchSize {
		hi := lo + batchSize
		if hi > len(ds.Events) {
			hi = len(ds.Events)
		}
		st.Ingest(types.NewDataset(nil, ds.Events[lo:hi]))
	}
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()

	stats := m.Stats()
	if stats.Rules != len(rules) {
		t.Errorf("rules = %d, want %d", stats.Rules, len(rules))
	}
	if stats.Emitted == 0 {
		t.Error("soak produced no emissions")
	}
	// Per-rule sequence numbers must sum to the global emission counter —
	// no emission lost or double-counted under churn.
	var seqSum uint64
	for _, ri := range m.Rules() {
		seqSum += ri.Seq
	}
	if seqSum != stats.Emitted {
		t.Errorf("per-rule seq sum %d != emitted %d", seqSum, stats.Emitted)
	}
	if stats.Subscribers != 0 {
		t.Errorf("%d subscribers leaked", stats.Subscribers)
	}
	if stats.DroppedSlowConsumers == 0 {
		t.Error("no slow consumer was ever dropped; the soak's stalled subscribers should overflow the any-read rule's buffers")
	}
	t.Logf("soak: %d events / %d rules in %v; emitted %d, received %d, churns %d, slow-drops %d, state %d (evicted %d)",
		len(ds.Events), len(rules), elapsed.Round(time.Millisecond),
		stats.Emitted, received.Load(), churns.Load(), stats.DroppedSlowConsumers,
		stats.StateBuffered, stats.StateEvicted)
}
