// Package stream is the continuous-query subsystem: clients register
// standing AIQL queries ("rules"), ingested batches are routed through a
// matcher that evaluates every rule incrementally, and matches are
// delivered to subscribers as live emission streams with monotonically
// increasing per-rule sequence numbers.
//
// Where the engine answers retrospective investigations — compile, scan,
// join, project over data already at rest — the matcher runs the same
// compiled plans forward in time: single-pattern rules match each event
// against the pattern's compiled predicates as it arrives; multi-pattern
// rules keep bounded per-rule join state over a sliding event-time window
// (JoinState) and emit the moment a full pattern chain completes. Both
// paths reuse the engine's own predicate evaluation, join semantics
// (engine.Join.Eval) and projection (engine.Plan.ProjectRow), so for
// streamable plans a replayed dataset emits exactly the rows the batch
// engine returns — the property internal/golden pins corpus-wide.
//
// The matcher attaches to a store through storage.SetIngestObserver: it is
// invoked post-apply for every mutation batch, in generation order, inside
// the same batch boundary the WAL uses on durable stores — so durability
// and streaming agree on what was acknowledged. Rules registered with
// backfill replay a storage snapshot through the rule before going live,
// with the generation stamp splitting history from live traffic exactly
// once.
//
// Bounded state is a design constraint throughout: join buffers expire by
// window and are hard-capped per rule, distinct dedup sets are
// FIFO-bounded, each rule retains only a fixed ring of recent emissions for
// subscriber catch-up, and a subscriber that cannot keep up is disconnected
// (with a counted drop) rather than ever blocking ingest.
package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aiql/internal/engine"
	"aiql/internal/parser"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// Registration and subscription failures callers branch on.
var (
	ErrUnknownRule   = errors.New("stream: unknown rule")
	ErrDuplicateRule = errors.New("stream: rule id already registered")
	ErrTooManyRules  = errors.New("stream: rule limit reached")
)

// Drop reasons surfaced by Subscription.Reason.
const (
	DropSlowConsumer = "slow-consumer"
	DropRuleDeleted  = "rule-deleted"
)

// DefaultWindow is the sliding join window applied to rules that don't set
// one. Exported so the cluster coordinator resolves the same default the
// workers will; likewise the state bounds below, which the coordinator's
// merged-stream joins reuse.
const DefaultWindow = 15 * time.Minute

// DefaultMaxStatePerRule and DefaultMaxPairsPerEvent are the default
// bounded-state caps (Options.MaxStatePerRule / MaxPairsPerEvent).
const (
	DefaultMaxStatePerRule  = 65536
	DefaultMaxPairsPerEvent = 1 << 20
)

// Options bound the matcher's state. The zero value gets defaults.
type Options struct {
	// MaxRules caps registered rules (default 64).
	MaxRules int
	// BufferSize is both the per-subscriber channel capacity and the
	// per-rule emission replay ring (default 256). A subscriber falling more
	// than a full buffer behind is dropped.
	BufferSize int
	// MaxStatePerRule caps each pattern's sliding-window join buffer and the
	// distinct dedup set (default 65536 entries).
	MaxStatePerRule int
	// MaxPairsPerEvent caps the join enumeration work one offered match may
	// trigger (default 1<<20 candidate pairs); overflow truncates that
	// event's completions and is counted, never silent.
	MaxPairsPerEvent int
	// DefaultWindow is the sliding join window for rules that don't set one
	// (default the package-level DefaultWindow, 15 minutes). Single-pattern
	// rules ignore it.
	DefaultWindow time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxRules == 0 {
		o.MaxRules = 64
	}
	if o.BufferSize == 0 {
		o.BufferSize = 256
	}
	if o.MaxStatePerRule == 0 {
		o.MaxStatePerRule = DefaultMaxStatePerRule
	}
	if o.MaxPairsPerEvent == 0 {
		o.MaxPairsPerEvent = DefaultMaxPairsPerEvent
	}
	if o.DefaultWindow == 0 {
		o.DefaultWindow = DefaultWindow
	}
	return o
}

// RuleSpec describes one standing query to register.
type RuleSpec struct {
	// ID names the rule; empty auto-assigns r1, r2, ...
	ID string `json:"id,omitempty"`
	// Query is the AIQL source; it must compile to a streamable plan.
	Query string `json:"query"`
	// WindowMs is the sliding join window for multi-pattern rules: how far
	// apart (event time) one tuple's events may lie. 0 uses the matcher
	// default.
	WindowMs int64 `json:"window_ms,omitempty"`
	// Backfill replays the store's current contents through the rule before
	// it goes live, so batch and stream answers agree from sequence 1.
	Backfill bool `json:"backfill,omitempty"`
	// Pattern, when set, restricts the rule to that single event pattern of
	// the query and switches emissions to raw matches — the building block
	// the cluster coordinator registers on workers to run the cross-shard
	// join itself.
	Pattern *int `json:"pattern,omitempty"`
}

// RuleInfo is the externally visible state of a registered rule.
type RuleInfo struct {
	ID       string   `json:"id"`
	Query    string   `json:"query"`
	Columns  []string `json:"columns"`
	Patterns int      `json:"patterns"`
	WindowMs int64    `json:"window_ms"`
	Pattern  *int     `json:"pattern,omitempty"`
	// Seq is the last emission sequence number assigned (== emissions so
	// far).
	Seq         uint64 `json:"seq"`
	Matched     uint64 `json:"matched_events"`
	Subscribers int    `json:"subscribers"`
	// StateBuffered is the rule's current partial-match buffer depth;
	// StateEvicted counts entries dropped by window expiry or the state cap.
	StateBuffered int    `json:"state_buffered"`
	StateEvicted  uint64 `json:"state_evicted"`
	JoinOverflows uint64 `json:"join_overflows,omitempty"`
	// Dropped counts subscribers disconnected for falling behind.
	Dropped uint64 `json:"dropped_subscribers"`
	// PendingDropped counts live matches dropped because the backfill
	// hand-off queue hit the state cap (heavy ingest during a long
	// backfill); like every bounded-state loss, counted rather than silent.
	PendingDropped  uint64 `json:"pending_dropped,omitempty"`
	Backfilled      bool   `json:"backfilled,omitempty"`
	SinceGeneration uint64 `json:"since_generation"`
}

// Stats is the matcher-wide /stats block.
type Stats struct {
	Rules                int    `json:"rules"`
	Subscribers          int    `json:"subscribers"`
	Emitted              uint64 `json:"emitted"`
	DroppedSlowConsumers uint64 `json:"dropped_slow_consumers"`
	StateBuffered        int    `json:"state_buffered"`
	StateEvicted         uint64 `json:"state_evicted"`
	JoinOverflows        uint64 `json:"join_overflows"`
	Backfills            uint64 `json:"backfills"`
}

// patternRef is one (rule, pattern) the op-index routes events to.
type patternRef struct {
	r       *rule
	pattern int
}

// Matcher owns the registered rules of one store and evaluates them against
// every ingested batch. Attach it with
// store.SetIngestObserver(matcher.OnIngest); it resolves event endpoints
// through the store, so it must observe the same store it is given.
type Matcher struct {
	store *storage.Store
	opts  Options

	mu     sync.Mutex
	rules  map[string]*rule
	byOp   [][]patternRef // rebuilt copy-on-write on register/delete
	nextID uint64

	emitted   atomic.Uint64
	dropped   atomic.Uint64
	backfills atomic.Uint64
}

// NewMatcher creates a matcher over the store.
func NewMatcher(store *storage.Store, opts Options) *Matcher {
	return &Matcher{store: store, opts: opts.withDefaults(), rules: make(map[string]*rule)}
}

// OnIngest is the storage.IngestObserver: it routes every event of the
// applied batch through the rules whose operation sets admit it. Entities
// resolve through the store (post-apply, so the batch's own entities are
// visible), once per event no matter how many rules inspect it. With no
// rules registered the cost is one pointer read per batch.
func (m *Matcher) OnIngest(d *types.Dataset, gen uint64) {
	m.mu.Lock()
	byOp := m.byOp
	m.mu.Unlock()
	if byOp == nil {
		return
	}
	for i := range d.Events {
		ev := &d.Events[i]
		refs := byOp[int(ev.Op)]
		if len(refs) == 0 {
			continue
		}
		var subj, obj *types.Entity
		resolved := false
		for _, ref := range refs {
			pp := ref.r.plan.Patterns[ref.pattern]
			if !patternAdmits(pp, ev) {
				continue
			}
			if !resolved {
				subj, obj = m.store.EntityPair(ev.Subject, ev.Object)
				resolved = true
			}
			if !ref.r.acceptsEntities(ref.pattern, subj, obj) {
				continue
			}
			ref.r.offer(ref.pattern, ev, subj, obj, gen)
		}
	}
}

// Register compiles and installs a standing rule. With Backfill it replays
// a snapshot of the store through the rule before returning; emissions from
// the replay carry the Backfill flag and land in the rule's replay ring for
// subscribers to catch up from.
func (m *Matcher) Register(spec RuleSpec) (*RuleInfo, error) {
	q, err := parser.Parse(spec.Query)
	if err != nil {
		return nil, err
	}
	plan, err := engine.Compile(q)
	if err != nil {
		return nil, err
	}
	if err := plan.Streamable(); err != nil {
		return nil, err
	}
	patternOnly := -1
	if spec.Pattern != nil {
		if *spec.Pattern < 0 || *spec.Pattern >= len(plan.Patterns) {
			return nil, fmt.Errorf("stream: pattern %d out of range (query has %d)", *spec.Pattern, len(plan.Patterns))
		}
		patternOnly = *spec.Pattern
	}
	windowMs := spec.WindowMs
	if windowMs <= 0 {
		windowMs = m.opts.DefaultWindow.Milliseconds()
	}

	// A standing rule outlives whichever request registered it, so its
	// cancellation root is its own lifetime: Delete cancels the context,
	// aborting an in-flight backfill scan mid-partition.
	ctx, cancel := context.WithCancel(context.Background()) //aiql:ignore ctxflow -- rule lifetime root; canceled by Delete, no caller context outlives a standing rule

	r := &rule{
		m:           m,
		src:         spec.Query,
		ctx:         ctx,
		cancel:      cancel,
		plan:        plan,
		windowMs:    windowMs,
		patternOnly: patternOnly,
		raw:         patternOnly >= 0,
		distinct:    plan.Return.Distinct && patternOnly < 0,
		subjMemo:    make([]map[types.EntityID]bool, len(plan.Patterns)),
		objMemo:     make([]map[types.EntityID]bool, len(plan.Patterns)),
		ring:        newRing(m.opts.BufferSize),
		subs:        make(map[*Subscription]struct{}),
	}
	if !r.raw {
		r.js = NewJoinState(plan, windowMs, m.opts.MaxStatePerRule, m.opts.MaxPairsPerEvent)
	}
	if r.distinct {
		r.seen = NewDedup(m.opts.MaxStatePerRule)
		// The pair-level shortcut is sound only when the projection depends
		// on the entities alone: a return item reading an event attribute
		// (evt.amount, evt.starttime, ...) can project distinct rows from
		// the same (subject, object) pair, which the shortcut would wrongly
		// suppress.
		if len(plan.Patterns) == 1 && !projectsEventAttrs(plan) {
			r.pairSeen = make(map[[2]uint64]struct{})
		}
	}

	m.mu.Lock()
	if len(m.rules) >= m.opts.MaxRules {
		m.mu.Unlock()
		return nil, ErrTooManyRules
	}
	id := spec.ID
	if id == "" {
		for {
			m.nextID++
			id = fmt.Sprintf("r%d", m.nextID)
			if _, taken := m.rules[id]; !taken {
				break
			}
		}
	} else if _, taken := m.rules[id]; taken {
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrDuplicateRule, id)
	}
	r.id = id
	// The generation stamp splits history from live traffic: batches at or
	// below it are covered by the backfill snapshot (or deliberately skipped
	// without backfill); batches above it flow through offer. Acquiring the
	// snapshot here — before the rule is visible to OnIngest — cannot lose a
	// batch: a batch applied before the snapshot is in it and stamped ≤
	// sinceGen; one applied after will be offered with a higher generation.
	var snap *storage.Snapshot
	if spec.Backfill {
		snap = m.store.Snapshot()
		r.sinceGen = snap.Generation()
	} else {
		r.sinceGen = m.store.Generation()
		r.live = true
	}
	m.rules[id] = r
	m.rebuildIndexLocked()
	m.mu.Unlock()

	if snap != nil {
		m.backfills.Add(1)
		r.backfill(snap)
		snap.Close()
	}
	info := m.infoOf(r)
	return &info, nil
}

// Delete unregisters a rule, disconnecting its subscribers with reason
// rule-deleted. It reports whether the rule existed.
func (m *Matcher) Delete(id string) bool {
	m.mu.Lock()
	r, ok := m.rules[id]
	if !ok {
		m.mu.Unlock()
		return false
	}
	delete(m.rules, id)
	m.rebuildIndexLocked()
	m.mu.Unlock()

	r.cancel()
	r.mu.Lock()
	r.deleted = true
	for s := range r.subs {
		r.dropSubLocked(s, DropRuleDeleted)
	}
	r.js = nil
	r.seen = nil
	r.pending = nil
	r.mu.Unlock()
	return true
}

// Rule returns one rule's info.
func (m *Matcher) Rule(id string) (RuleInfo, bool) {
	m.mu.Lock()
	r, ok := m.rules[id]
	m.mu.Unlock()
	if !ok {
		return RuleInfo{}, false
	}
	return m.infoOf(r), true
}

// Rules lists registered rules sorted by id.
func (m *Matcher) Rules() []RuleInfo {
	m.mu.Lock()
	rs := make([]*rule, 0, len(m.rules))
	for _, r := range m.rules {
		rs = append(rs, r)
	}
	m.mu.Unlock()
	sort.Slice(rs, func(i, j int) bool { return rs[i].id < rs[j].id })
	out := make([]RuleInfo, len(rs))
	for i, r := range rs {
		out[i] = m.infoOf(r)
	}
	return out
}

// Stats aggregates the matcher-wide counters.
func (m *Matcher) Stats() Stats {
	m.mu.Lock()
	rs := make([]*rule, 0, len(m.rules))
	for _, r := range m.rules {
		rs = append(rs, r)
	}
	m.mu.Unlock()
	st := Stats{
		Rules:                len(rs),
		Emitted:              m.emitted.Load(),
		DroppedSlowConsumers: m.dropped.Load(),
		Backfills:            m.backfills.Load(),
	}
	for _, r := range rs {
		r.mu.Lock()
		st.Subscribers += len(r.subs)
		if r.js != nil {
			st.StateBuffered += r.js.Len()
			st.StateEvicted += r.js.Evicted()
			st.JoinOverflows += r.js.Overflows()
		}
		r.mu.Unlock()
	}
	return st
}

func (m *Matcher) infoOf(r *rule) RuleInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	info := RuleInfo{
		ID:              r.id,
		Query:           r.src,
		Columns:         r.plan.Columns(),
		Patterns:        len(r.plan.Patterns),
		WindowMs:        r.windowMs,
		Seq:             r.seq,
		Matched:         r.matched,
		Subscribers:     len(r.subs),
		Dropped:         r.dropped,
		PendingDropped:  r.pendingDropped,
		Backfilled:      r.backfilled,
		SinceGeneration: r.sinceGen,
	}
	if r.patternOnly >= 0 {
		p := r.patternOnly
		info.Pattern = &p
	}
	if r.js != nil {
		info.StateBuffered = r.js.Len()
		info.StateEvicted = r.js.Evicted()
		info.JoinOverflows = r.js.Overflows()
	}
	return info
}

// projectsEventAttrs reports whether any return column reads an event
// attribute rather than an entity attribute.
func projectsEventAttrs(plan *engine.Plan) bool {
	for i := range plan.Return.Items {
		if ref := plan.Return.Items[i].Ref; ref != nil && ref.IsEvent {
			return true
		}
	}
	return false
}

// rebuildIndexLocked recomputes the op-indexed routing table: for each
// operation, the (rule, pattern) pairs whose operation set admits it. The
// table is replaced wholesale (copy-on-write) so OnIngest reads a
// consistent snapshot without holding the matcher lock per event. Callers
// hold m.mu.
func (m *Matcher) rebuildIndexLocked() {
	if len(m.rules) == 0 {
		m.byOp = nil
		return
	}
	ids := make([]string, 0, len(m.rules))
	for id := range m.rules {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	byOp := make([][]patternRef, types.NumOps+1)
	for _, id := range ids {
		r := m.rules[id]
		for pi := range r.plan.Patterns {
			if r.patternOnly >= 0 && pi != r.patternOnly {
				continue
			}
			for _, op := range r.plan.Patterns[pi].Ops.Ops() {
				byOp[int(op)] = append(byOp[int(op)], patternRef{r: r, pattern: pi})
			}
		}
	}
	m.byOp = byOp
}
