package stream

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"aiql/internal/gen"
	"aiql/internal/pred"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// testBase is an hour into the dataset epoch, safely inside one day.
const testBase = int64(1488412800000) // 2017-03-02T00:00:00Z

// newTapped builds an empty store with a matcher attached to its tap.
func newTapped(opts Options) (*storage.Store, *Matcher) {
	st := storage.New(storage.Options{})
	m := NewMatcher(st, opts)
	st.SetIngestObserver(m.OnIngest)
	return st, m
}

// procFile builds a two-entity batch: process id p (exe name exe) and file
// id f (name), both on agent.
func procFile(p, f types.EntityID, agent int, exe, name string) []types.Entity {
	return []types.Entity{
		{ID: p, Type: types.EntityProcess, AgentID: agent, Attrs: map[string]string{types.AttrExeName: exe, types.AttrPID: fmt.Sprint(p)}},
		{ID: f, Type: types.EntityFile, AgentID: agent, Attrs: map[string]string{types.AttrName: name}},
	}
}

func event(id types.EventID, agent int, subj, obj types.EntityID, op types.Op, at int64) types.Event {
	return types.Event{ID: id, AgentID: agent, Subject: subj, Object: obj, Op: op, Start: at, Seq: uint64(id)}
}

func drain(t *testing.T, sub *Subscription, want int) []Emission {
	t.Helper()
	out := make([]Emission, 0, want)
	timeout := time.After(5 * time.Second)
	for len(out) < want {
		select {
		case em, ok := <-sub.C():
			if !ok {
				t.Fatalf("stream closed (%q) after %d of %d emissions", sub.Reason(), len(out), want)
			}
			out = append(out, em)
		case <-timeout:
			t.Fatalf("timed out after %d of %d emissions", len(out), want)
		}
	}
	// No extras expected: anything already buffered is a failure.
	select {
	case em, ok := <-sub.C():
		if ok {
			t.Fatalf("unexpected extra emission seq=%d row=%v", em.Seq, em.Row)
		}
	default:
	}
	return out
}

func TestSinglePatternRuleEmitsMatches(t *testing.T) {
	st, m := newTapped(Options{})
	info, err := m.Register(RuleSpec{Query: `proc p read file f["/etc/shadow"] return p, f`})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Patterns != 1 {
		t.Fatalf("unexpected rule info %+v", info)
	}
	sub, _, err := m.Subscribe(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	ents := procFile(1, 2, 1, "/usr/bin/cat", "/etc/shadow")
	ents = append(ents, procFile(3, 4, 1, "/usr/bin/vi", "/tmp/notes")...)
	st.Ingest(types.NewDataset(ents, []types.Event{
		event(1, 1, 1, 2, types.OpRead, testBase+1000),  // match
		event(2, 1, 3, 4, types.OpRead, testBase+2000),  // wrong file
		event(3, 1, 1, 2, types.OpWrite, testBase+3000), // wrong op
		event(4, 1, 3, 2, types.OpRead, testBase+4000),  // match (vi reads shadow)
	}))

	ems := drain(t, sub, 2)
	if ems[0].Seq != 1 || ems[1].Seq != 2 {
		t.Errorf("sequences %d,%d want 1,2", ems[0].Seq, ems[1].Seq)
	}
	if got := strings.Join(ems[0].Row, " "); got != "/usr/bin/cat /etc/shadow" {
		t.Errorf("row 1 = %q", got)
	}
	if got := strings.Join(ems[1].Row, " "); got != "/usr/bin/vi /etc/shadow" {
		t.Errorf("row 2 = %q", got)
	}
}

// TestMultiPatternJoinCompletes registers the classic chain rule — p writes
// f, then p2 reads f — and asserts the emission appears only once the chain
// completes, joining across separate ingest batches.
func TestMultiPatternJoinCompletes(t *testing.T) {
	st, m := newTapped(Options{})
	info, err := m.Register(RuleSpec{
		Query: `proc p1 write file f as evt1
proc p2 read file f as evt2
with evt1 before evt2
return p1, p2, f`,
		WindowMs: time.Hour.Milliseconds(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := m.Subscribe(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	ents := procFile(1, 10, 1, "/usr/bin/dropper", "/tmp/payload")
	ents = append(ents, procFile(2, 11, 1, "/usr/bin/loader", "/tmp/other")...)
	st.Ingest(types.NewDataset(ents, nil))

	// Write arrives first: no emission yet.
	st.Ingest(types.NewDataset(nil, []types.Event{event(1, 1, 1, 10, types.OpWrite, testBase+1000)}))
	select {
	case em := <-sub.C():
		t.Fatalf("premature emission %+v", em)
	case <-time.After(20 * time.Millisecond):
	}
	// A read of a different file: still nothing (id join fails).
	st.Ingest(types.NewDataset(nil, []types.Event{event(2, 1, 2, 11, types.OpRead, testBase+2000)}))
	// The completing read.
	st.Ingest(types.NewDataset(nil, []types.Event{event(3, 1, 2, 10, types.OpRead, testBase+3000)}))

	ems := drain(t, sub, 1)
	if got := strings.Join(ems[0].Row, " "); got != "/usr/bin/dropper /usr/bin/loader /tmp/payload" {
		t.Errorf("row = %q", got)
	}
	if ems[0].Ts != testBase+3000 {
		t.Errorf("ts = %d, want completing event's time", ems[0].Ts)
	}
	// A read arriving before the write (event time earlier, arrival later)
	// must still complete a tuple: arrival order is not a correctness
	// condition, the temporal join predicate is.
	st.Ingest(types.NewDataset(nil, []types.Event{event(4, 1, 2, 10, types.OpRead, testBase+500)}))
	select {
	case em, ok := <-sub.C():
		if ok {
			t.Fatalf("read before write must not match 'before' join: %+v", em)
		}
	case <-time.After(20 * time.Millisecond):
	}
}

// TestWindowExpiryBoundsJoinState asserts both expiry (old partial matches
// stop joining) and the eviction counter.
func TestWindowExpiryBoundsJoinState(t *testing.T) {
	st, m := newTapped(Options{})
	info, err := m.Register(RuleSpec{
		Query: `proc p1 write file f as evt1
proc p2 read file f as evt2
with evt1 before evt2
return p1, p2, f`,
		WindowMs: 1000, // one second
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := m.Subscribe(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	ents := procFile(1, 10, 1, "/w", "/tmp/f")
	ents = append(ents, procFile(2, 11, 1, "/r", "/tmp/g")...)
	st.Ingest(types.NewDataset(ents, nil))
	st.Ingest(types.NewDataset(nil, []types.Event{event(1, 1, 1, 10, types.OpWrite, testBase)}))
	// Advance the watermark far past the window, then complete the chain:
	// the write has expired, so no emission may appear.
	for i := 0; i < 70; i++ { // enough inserts to trigger a sweep
		st.Ingest(types.NewDataset(nil, []types.Event{event(types.EventID(100+i), 1, 1, 10, types.OpWrite, testBase+10_000+int64(i))}))
	}
	st.Ingest(types.NewDataset(nil, []types.Event{event(2, 1, 2, 10, types.OpRead, testBase+20_000)}))
	select {
	case em := <-sub.C():
		// The reads can only join writes within 1s of the watermark.
		t.Fatalf("expired write still joined: %+v", em)
	case <-time.After(20 * time.Millisecond):
	}
	ri, _ := m.Rule(info.ID)
	if ri.StateEvicted == 0 {
		t.Errorf("no evictions counted after window expiry (buffered %d)", ri.StateBuffered)
	}
}

func TestStateCapEvictsOldest(t *testing.T) {
	st, m := newTapped(Options{MaxStatePerRule: 8})
	info, err := m.Register(RuleSpec{
		Query: `proc p1 write file f as evt1
proc p2 read file f as evt2
with evt1 before evt2
return p1, p2, f`,
		WindowMs: time.Hour.Milliseconds(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ents := procFile(1, 10, 1, "/w", "/tmp/f")
	st.Ingest(types.NewDataset(ents, nil))
	for i := 0; i < 50; i++ {
		st.Ingest(types.NewDataset(nil, []types.Event{event(types.EventID(1+i), 1, 1, 10, types.OpWrite, testBase+int64(i))}))
	}
	ri, _ := m.Rule(info.ID)
	if ri.StateBuffered > 2*8 {
		t.Errorf("state %d exceeds cap", ri.StateBuffered)
	}
	if ri.StateEvicted == 0 {
		t.Error("cap evictions not counted")
	}
}

func TestDistinctDedupes(t *testing.T) {
	st, m := newTapped(Options{})
	info, err := m.Register(RuleSpec{Query: `proc p read file f return distinct p`})
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := m.Subscribe(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ents := procFile(1, 10, 1, "/usr/bin/cat", "/tmp/f")
	st.Ingest(types.NewDataset(ents, []types.Event{
		event(1, 1, 1, 10, types.OpRead, testBase),
		event(2, 1, 1, 10, types.OpRead, testBase+1),
		event(3, 1, 1, 10, types.OpRead, testBase+2),
	}))
	ems := drain(t, sub, 1)
	if got := ems[0].Row[0]; got != "/usr/bin/cat" {
		t.Errorf("row = %q", got)
	}
}

// TestDistinctWithEventAttrsEmitsPerDistinctRow pins a parity subtlety:
// the (subject, object) pair-dedup shortcut must not apply when the
// projection reads event attributes — two events between the same pair can
// still project distinct rows, and the batch engine returns both.
func TestDistinctWithEventAttrsEmitsPerDistinctRow(t *testing.T) {
	st, m := newTapped(Options{})
	info, err := m.Register(RuleSpec{Query: `proc p read file f as evt return distinct p, evt.amount`})
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := m.Subscribe(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ents := procFile(1, 10, 1, "/usr/bin/cat", "/tmp/f")
	ev1 := event(1, 1, 1, 10, types.OpRead, testBase)
	ev1.Amount = 111
	ev2 := event(2, 1, 1, 10, types.OpRead, testBase+1)
	ev2.Amount = 222
	ev3 := event(3, 1, 1, 10, types.OpRead, testBase+2)
	ev3.Amount = 111 // duplicate row: same p, same amount
	st.Ingest(types.NewDataset(ents, []types.Event{ev1, ev2, ev3}))
	ems := drain(t, sub, 2)
	if ems[0].Row[1] != "111" || ems[1].Row[1] != "222" {
		t.Errorf("rows %v %v, want amounts 111 and 222", ems[0].Row, ems[1].Row)
	}
}

// TestBackfillThenLive ingests history, registers with backfill, then keeps
// ingesting: the subscriber must see history (flagged) plus live events,
// each exactly once.
func TestBackfillThenLive(t *testing.T) {
	st, m := newTapped(Options{})
	ents := procFile(1, 10, 1, "/usr/bin/cat", "/etc/shadow")
	st.Ingest(types.NewDataset(ents, []types.Event{
		event(1, 1, 1, 10, types.OpRead, testBase),
		event(2, 1, 1, 10, types.OpRead, testBase+1000),
	}))
	info, err := m.Register(RuleSpec{Query: `proc p read file f["/etc/shadow"] return p, f`, Backfill: true})
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := m.Subscribe(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	st.Ingest(types.NewDataset(nil, []types.Event{event(3, 1, 1, 10, types.OpRead, testBase+2000)}))

	ems := drain(t, sub, 3)
	if !ems[0].Backfill || !ems[1].Backfill {
		t.Errorf("backfill emissions not flagged: %+v %+v", ems[0], ems[1])
	}
	if ems[2].Backfill {
		t.Errorf("live emission flagged as backfill: %+v", ems[2])
	}
	ri, _ := m.Rule(info.ID)
	if !ri.Backfilled || ri.Seq != 3 {
		t.Errorf("rule info after backfill: %+v", ri)
	}
}

// TestNoBackfillSkipsHistory is the inverse: without backfill the rule sees
// only batches ingested after registration.
func TestNoBackfillSkipsHistory(t *testing.T) {
	st, m := newTapped(Options{})
	ents := procFile(1, 10, 1, "/usr/bin/cat", "/etc/shadow")
	st.Ingest(types.NewDataset(ents, []types.Event{event(1, 1, 1, 10, types.OpRead, testBase)}))
	info, err := m.Register(RuleSpec{Query: `proc p read file f["/etc/shadow"] return p, f`})
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := m.Subscribe(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	st.Ingest(types.NewDataset(nil, []types.Event{event(2, 1, 1, 10, types.OpRead, testBase+1000)}))
	ems := drain(t, sub, 1)
	if ems[0].Ts != testBase+1000 {
		t.Errorf("emission %+v should be the post-registration event", ems[0])
	}
}

// TestBackfillShortWindowMultiAgent pins backfill's replay order: the
// snapshot scan yields (day, agent) partitions, so without time-ordered
// replay agent 1's late events would race the watermark past agent 2's
// within-window chain and expire it. The rule's window (15 min) is far
// shorter than the day; both agents' chains must still emit, exactly as
// they would have live.
func TestBackfillShortWindowMultiAgent(t *testing.T) {
	st, m := newTapped(Options{})
	var ents []types.Entity
	var evs []types.Event
	for agent := 1; agent <= 2; agent++ {
		base := types.EntityID(agent * 100)
		ents = append(ents, procFile(base, base+1, agent, "/w", "/tmp/f")...)
		ents = append(ents, procFile(base+2, base+3, agent, "/r", "/tmp/g")...)
		// A within-window chain at the start of the day...
		evs = append(evs,
			event(types.EventID(base), agent, base, base+1, types.OpWrite, testBase+1000),
			event(types.EventID(base+1), agent, base+2, base+1, types.OpRead, testBase+2000),
		)
		// ...plus filler late in agent 1's day, so partition-order replay
		// would advance the watermark hours past agent 2's chain.
		if agent == 1 {
			for i := 0; i < 70; i++ {
				evs = append(evs, event(types.EventID(5000+i), agent, base, base+1, types.OpWrite,
					testBase+10*3600_000+int64(i)))
			}
		}
	}
	st.Ingest(types.NewDataset(ents, evs))

	info, err := m.Register(RuleSpec{
		Query: `proc p1 write file f as evt1
proc p2 read file f as evt2
with evt1 before evt2
return p1, p2, f`,
		WindowMs: 15 * time.Minute.Milliseconds(),
		Backfill: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := m.Subscribe(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ems := drain(t, sub, 2)
	for _, em := range ems {
		if !em.Backfill || em.Row[0] != "/w" || em.Row[1] != "/r" {
			t.Errorf("emission %+v", em)
		}
	}
}

// TestBackfillConcurrentIngestExactlyOnce races ingest against
// backfill-registration and asserts no event is matched twice or lost: the
// generation stamp must split history from live traffic exactly.
func TestBackfillConcurrentIngestExactlyOnce(t *testing.T) {
	for round := 0; round < 20; round++ {
		st, m := newTapped(Options{BufferSize: 4096})
		ents := procFile(1, 10, 1, "/usr/bin/cat", "/etc/shadow")
		st.Ingest(types.NewDataset(ents, nil))
		const history, live = 50, 50
		for i := 0; i < history; i++ {
			st.Ingest(types.NewDataset(nil, []types.Event{event(types.EventID(1+i), 1, 1, 10, types.OpRead, testBase+int64(i))}))
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < live; i++ {
				st.Ingest(types.NewDataset(nil, []types.Event{event(types.EventID(1000+i), 1, 1, 10, types.OpRead, testBase+1000+int64(i))}))
			}
		}()
		info, err := m.Register(RuleSpec{Query: `proc p read file f["/etc/shadow"] return p, f`, Backfill: true})
		if err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		sub, _, err := m.Subscribe(info.ID, 0)
		if err != nil {
			t.Fatal(err)
		}
		ems := drain(t, sub, history+live)
		seenSeq := make(map[uint64]bool, len(ems))
		for _, em := range ems {
			if seenSeq[em.Seq] {
				t.Fatalf("duplicate seq %d", em.Seq)
			}
			seenSeq[em.Seq] = true
		}
		sub.Close()
	}
}

func TestSlowSubscriberDroppedNotBlocking(t *testing.T) {
	st, m := newTapped(Options{BufferSize: 4})
	info, err := m.Register(RuleSpec{Query: `proc p read file f return p, f`})
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := m.Subscribe(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	ents := procFile(1, 10, 1, "/usr/bin/cat", "/tmp/f")
	st.Ingest(types.NewDataset(ents, nil))
	// Never read from sub: the buffer (4) overflows on the 5th emission and
	// the subscriber must be dropped without Ingest ever blocking.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			st.Ingest(types.NewDataset(nil, []types.Event{event(types.EventID(1+i), 1, 1, 10, types.OpRead, testBase+int64(i))}))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ingest blocked on a slow subscriber")
	}
	// The channel must be closed after its buffered prefix.
	n := 0
	for range sub.C() {
		n++
	}
	if n != 4 {
		t.Errorf("slow subscriber received %d buffered emissions, want 4", n)
	}
	if sub.Reason() != DropSlowConsumer {
		t.Errorf("drop reason = %q", sub.Reason())
	}
	st2 := m.Stats()
	if st2.DroppedSlowConsumers != 1 {
		t.Errorf("dropped counter = %d", st2.DroppedSlowConsumers)
	}
	if ri, _ := m.Rule(info.ID); ri.Seq != 20 || ri.Subscribers != 0 {
		t.Errorf("rule kept emitting after drop: %+v", ri)
	}
}

func TestSubscribeSinceReplaysRing(t *testing.T) {
	st, m := newTapped(Options{BufferSize: 64})
	info, err := m.Register(RuleSpec{Query: `proc p read file f return p, f`})
	if err != nil {
		t.Fatal(err)
	}
	ents := procFile(1, 10, 1, "/usr/bin/cat", "/tmp/f")
	st.Ingest(types.NewDataset(ents, nil))
	for i := 0; i < 10; i++ {
		st.Ingest(types.NewDataset(nil, []types.Event{event(types.EventID(1+i), 1, 1, 10, types.OpRead, testBase+int64(i))}))
	}
	sub, _, err := m.Subscribe(info.ID, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ems := drain(t, sub, 3)
	if ems[0].Seq != 8 || ems[2].Seq != 10 {
		t.Errorf("replay from 7 gave seqs %d..%d, want 8..10", ems[0].Seq, ems[2].Seq)
	}
}

func TestRuleLifecycleErrors(t *testing.T) {
	_, m := newTapped(Options{MaxRules: 2})
	if _, err := m.Register(RuleSpec{Query: `proc p read file f return count(f)`}); err == nil {
		t.Error("aggregate query registered as a rule")
	}
	if _, err := m.Register(RuleSpec{Query: `proc p read file f return p sort by p top 5`}); err == nil {
		t.Error("sort/top query registered as a rule")
	}
	if _, err := m.Register(RuleSpec{Query: `this is not aiql`}); err == nil {
		t.Error("unparseable query registered")
	}
	if _, err := m.Register(RuleSpec{ID: "a", Query: `proc p read file f return p`}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(RuleSpec{ID: "a", Query: `proc p read file f return p`}); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, err := m.Register(RuleSpec{ID: "b", Query: `proc p read file f return p`}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(RuleSpec{ID: "c", Query: `proc p read file f return p`}); !errors.Is(err, ErrTooManyRules) {
		t.Errorf("rule limit not enforced: %v", err)
	}
	if !m.Delete("a") || m.Delete("a") {
		t.Error("delete semantics broken")
	}
	if _, _, err := m.Subscribe("a", 0); !errors.Is(err, ErrUnknownRule) {
		t.Errorf("subscribe to deleted rule: %v", err)
	}
	if got := len(m.Rules()); got != 1 {
		t.Errorf("rules listed after delete: %d", got)
	}
}

func TestDeleteDisconnectsSubscribers(t *testing.T) {
	_, m := newTapped(Options{})
	info, err := m.Register(RuleSpec{Query: `proc p read file f return p`})
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := m.Subscribe(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Delete(info.ID)
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel still open after rule deletion")
	}
	if sub.Reason() != DropRuleDeleted {
		t.Errorf("reason = %q", sub.Reason())
	}
}

// TestRawPatternRule exercises the cluster building block: a rule pinned to
// one pattern of a multi-pattern query emits raw matches for exactly that
// pattern.
func TestRawPatternRule(t *testing.T) {
	st, m := newTapped(Options{})
	p1 := 1
	info, err := m.Register(RuleSpec{
		Query: `proc p1 write file f as evt1
proc p2 read file f as evt2
with evt1 before evt2
return p1, p2, f`,
		Pattern: &p1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Pattern == nil || *info.Pattern != 1 {
		t.Fatalf("info %+v", info)
	}
	sub, _, err := m.Subscribe(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	ents := procFile(1, 10, 1, "/w", "/tmp/f")
	st.Ingest(types.NewDataset(ents, []types.Event{
		event(1, 1, 1, 10, types.OpWrite, testBase), // pattern 0 only
		event(2, 1, 1, 10, types.OpRead, testBase+1000),
	}))
	ems := drain(t, sub, 1)
	if ems[0].Match == nil || ems[0].Pattern != 1 || ems[0].Match.Event.Op != types.OpRead {
		t.Fatalf("raw emission %+v", ems[0])
	}
	if ems[0].Match.Subj.Attrs[types.AttrExeName] != "/w" {
		t.Errorf("raw subj %+v", ems[0].Match.Subj)
	}
}

// TestStreamAgainstGeneratedScenario is the in-package parity smoke: a
// selective rule over the generated scenario, fed batch-at-once through the
// tap, emits exactly the batch engine's rows.
func TestStreamAgainstGeneratedScenario(t *testing.T) {
	ds := gen.Scenario(gen.Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 200, Seed: 7})
	st, m := newTapped(Options{BufferSize: 1 << 14})
	info, err := m.Register(RuleSpec{
		Query:    `proc p read file f["%id_rsa"] return p, f`,
		WindowMs: 365 * 24 * time.Hour.Milliseconds(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, _, err := m.Subscribe(info.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	st.Ingest(ds)

	want := st.Run(context.Background(), &storage.DataQuery{
		SubjType: types.EntityProcess, ObjType: types.EntityFile,
		ObjPred: pred.NewCond(types.AttrName, pred.CmpEq, "%id_rsa"),
		Ops:     types.NewOpSet(types.OpRead),
	})
	ems := drain(t, sub, len(want))
	for i, em := range ems {
		if em.Row[1] != want[i].Obj.Attrs[types.AttrName] {
			t.Fatalf("emission %d file %q, batch scan has %q", i, em.Row[1], want[i].Obj.Attrs[types.AttrName])
		}
	}
}
