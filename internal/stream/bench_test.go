package stream

import (
	"fmt"
	"testing"
	"time"

	"aiql/internal/gen"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// BenchmarkStreamMatch measures ingest throughput (events/sec) as a
// function of registered-rule count — the cost the continuous-query tap
// adds to the hot ingest path. The acceptance bar: 20 registered monitoring
// rules (selective predicates + join rules, the realistic standing-rule
// shape) stay within 2× of the no-rules ingest path. The "rules=20+broad"
// variant adds a match-everything rule whose cost is output-bound — it
// emits a row for a third of the dataset — to show where throughput goes
// when a rule is really a subscription to the raw feed.
func BenchmarkStreamMatch(b *testing.B) {
	ds := gen.Scenario(gen.Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 1000, Seed: 5})
	const batchSize = 1000
	// soakRules[0] is the deliberately broad any-read rule; the selective
	// wall is everything after it.
	selective := soakRules()[1:]
	cases := []struct {
		name  string
		rules []RuleSpec
	}{
		{"rules=0", nil},
		{"rules=1", selective[:1]},
		{"rules=5", selective[:5]},
		{"rules=20", selective[:20]},
		{"rules=20+broad", soakRules()},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st := storage.New(storage.Options{})
				m := NewMatcher(st, Options{MaxRules: 64, BufferSize: 64})
				st.SetIngestObserver(m.OnIngest)
				for _, spec := range tc.rules {
					if _, err := m.Register(spec); err != nil {
						b.Fatal(err)
					}
				}
				st.Ingest(types.NewDataset(ds.Entities, nil))
				b.StartTimer()
				for lo := 0; lo < len(ds.Events); lo += batchSize {
					hi := lo + batchSize
					if hi > len(ds.Events) {
						hi = len(ds.Events)
					}
					st.Ingest(types.NewDataset(nil, ds.Events[lo:hi]))
				}
			}
			b.ReportMetric(float64(len(ds.Events))*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkStreamSubscriberFanOut measures emission delivery with live
// subscribers attached to a broad rule — the publish path's per-subscriber
// cost.
func BenchmarkStreamSubscriberFanOut(b *testing.B) {
	ds := gen.Scenario(gen.Config{Hosts: 10, Days: 3, BackgroundPerHostDay: 500, Seed: 5})
	for _, nSubs := range []int{1, 8} {
		b.Run(fmt.Sprintf("subs=%d", nSubs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				st := storage.New(storage.Options{})
				m := NewMatcher(st, Options{BufferSize: 1 << 16})
				st.SetIngestObserver(m.OnIngest)
				if _, err := m.Register(RuleSpec{ID: "r", Query: "proc p read file f return p, f", WindowMs: time.Hour.Milliseconds()}); err != nil {
					b.Fatal(err)
				}
				done := make(chan int, nSubs)
				for s := 0; s < nSubs; s++ {
					sub, _, err := m.Subscribe("r", 0)
					if err != nil {
						b.Fatal(err)
					}
					go func(sub *Subscription) {
						n := 0
						for range sub.C() {
							n++
						}
						done <- n
					}(sub)
				}
				st.Ingest(types.NewDataset(ds.Entities, nil))
				b.StartTimer()
				st.Ingest(types.NewDataset(nil, ds.Events))
				b.StopTimer()
				m.Delete("r") // closes the subscriber channels
				for s := 0; s < nSubs; s++ {
					<-done
				}
				b.StartTimer()
			}
		})
	}
}
