package stream

import (
	"context"
	"sort"
	"strings"
	"sync"

	"aiql/internal/engine"
	"aiql/internal/pred"
	"aiql/internal/storage"
	"aiql/internal/timeutil"
	"aiql/internal/types"
)

// Emission is one delivery on a rule's stream: a monotonically increasing
// per-rule sequence number plus either the projected result row (normal
// rules) or the raw match (per-pattern sub-rules, the cluster tier's
// distributed-join feed).
type Emission struct {
	Rule string `json:"rule"`
	// Seq increases by one per emission of the rule, starting at 1. A
	// subscriber that reconnects with ?since=<last seen seq> resumes without
	// duplicates as long as the rule's replay ring still holds the gap.
	Seq uint64 `json:"seq"`
	// Ts is the newest constituent event's start time (unix ms).
	Ts int64 `json:"ts"`
	// Backfill marks emissions produced by replaying the store's history
	// through a newly registered rule, before it went live.
	Backfill bool `json:"backfill,omitempty"`
	// Row is the projected result row (plan return columns), for normal
	// rules.
	Row []string `json:"row,omitempty"`
	// Pattern and Match carry raw per-pattern matches for sub-rules
	// registered with RuleSpec.Pattern.
	Pattern int       `json:"pattern,omitempty"`
	Match   *RawMatch `json:"match,omitempty"`
	// Shard and WorkerSeq are set by the cluster coordinator's merged
	// streams: the originating worker shard and that worker's own sequence
	// number, so per-shard order remains auditable after the fan-in
	// re-stamps Seq.
	Shard     *int   `json:"shard,omitempty"`
	WorkerSeq uint64 `json:"worker_seq,omitempty"`
}

// RawMatch is one unprojected pattern match on the wire: the event by value
// plus its resolved endpoint entities.
type RawMatch struct {
	Event types.Event   `json:"event"`
	Subj  *types.Entity `json:"subj"`
	Obj   *types.Entity `json:"obj"`
}

// StorageMatch reconstructs the storage-level match (Event pointing at the
// RawMatch's own copy).
func (rm *RawMatch) StorageMatch() storage.Match {
	return storage.Match{Event: &rm.Event, Subj: rm.Subj, Obj: rm.Obj}
}

// pendingOffer is one matched event queued while a rule backfills.
type pendingOffer struct {
	pattern int
	ev      types.Event
	subj    *types.Entity
	obj     *types.Entity
}

// rule is one registered standing query. Its mutex guards everything below
// it; the matcher takes it per offered event (brief) and the backfill takes
// it per scan batch, so ingest is never blocked for long.
type rule struct {
	m           *Matcher
	id          string
	src         string
	ctx         context.Context // rule lifetime; canceled by Matcher.Delete
	cancel      context.CancelFunc
	plan        *engine.Plan
	windowMs    int64
	patternOnly int  // -1 = all patterns; >= 0 restricts to one (raw mode)
	raw         bool // emit RawMatch instead of projected rows
	distinct    bool

	mu       sync.Mutex
	deleted  bool
	live     bool
	sinceGen uint64 // batches at or below this generation are not offered
	pending  []pendingOffer

	// subjMemo/objMemo cache per-pattern entity predicate verdicts by
	// entity id — the stream-side analogue of the storage layer's entity
	// pre-resolution. Entities are immutable once registered (the store is
	// first-write-wins), so a verdict never goes stale. The maps are
	// touched only on the OnIngest path, which the store tap serializes;
	// they are allocated before the rule becomes visible and are NOT
	// guarded by mu (the backfill path deliberately evaluates predicates
	// directly instead).
	subjMemo []map[types.EntityID]bool
	objMemo  []map[types.EntityID]bool

	js   *JoinState
	seen *Dedup // distinct row dedup, FIFO-bounded
	// pairSeen short-circuits distinct single-pattern rules: a (subject,
	// object) pair projects to the same row every time, so repeats skip
	// projection and row dedup entirely. Reset on overflow — the row-level
	// dedup still guarantees correctness, this only buys speed.
	pairSeen       map[[2]uint64]struct{}
	seq            uint64
	matched        uint64
	emitted        uint64
	dropped        uint64
	pendingDropped uint64
	backfilled     bool

	ring ring
	subs map[*Subscription]struct{}
}

// offer routes one fully-matched event (pattern-level predicates already
// checked by the matcher) into the rule: skipped if it predates the rule,
// queued while backfilling, joined and emitted when live.
func (r *rule) offer(pattern int, ev *types.Event, subj, obj *types.Entity, gen uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.deleted || gen <= r.sinceGen {
		return
	}
	if !r.live {
		// The backfill hand-off queue is bounded like every other piece of
		// per-rule state: heavy ingest during a long backfill drops the
		// overflow (counted), never grows without limit or blocks ingest.
		if len(r.pending) >= r.m.opts.MaxStatePerRule {
			r.pendingDropped++
			return
		}
		r.pending = append(r.pending, pendingOffer{pattern: pattern, ev: *ev, subj: subj, obj: obj})
		return
	}
	r.process(pattern, storage.Match{Event: ev, Subj: subj, Obj: obj}, false)
}

// process joins one matched event and emits completions. Callers hold r.mu.
func (r *rule) process(pattern int, m storage.Match, backfill bool) {
	r.matched++
	if r.pairSeen != nil {
		key := [2]uint64{uint64(m.Subj.ID), uint64(m.Obj.ID)}
		if _, dup := r.pairSeen[key]; dup {
			return
		}
		if len(r.pairSeen) >= memoLimit {
			r.pairSeen = make(map[[2]uint64]struct{})
		}
		r.pairSeen[key] = struct{}{}
	}
	if r.raw {
		r.emit(Emission{
			Ts: m.Event.Start, Backfill: backfill, Pattern: pattern,
			Match: &RawMatch{Event: *m.Event, Subj: m.Subj, Obj: m.Obj},
		})
		return
	}
	r.js.Offer(pattern, m, func(row []storage.Match) {
		projected := r.plan.ProjectRow(row)
		if r.distinct && !r.seen.FirstSeen(strings.Join(projected, "\x1f")) {
			return
		}
		r.emit(Emission{Ts: RowTs(row), Backfill: backfill, Row: projected})
	})
}

// RowTs returns the newest constituent event time of a joined tuple —
// the Ts an emission for that tuple carries. Shared with the cluster
// coordinator's merged-stream joins.
func RowTs(row []storage.Match) int64 {
	ts := row[0].Event.Start
	for _, m := range row[1:] {
		if m.Event.Start > ts {
			ts = m.Event.Start
		}
	}
	return ts
}

// Dedup is a FIFO-bounded distinct set: FirstSeen reports true exactly
// once per key while the key remains in the set. Evicting a key means its
// row could re-emit later — bounded state trades exactness at the margin,
// never memory. Matcher rules and the coordinator's merged streams share
// it so the two distinct implementations cannot drift.
type Dedup struct {
	seen  map[string]struct{}
	queue []string
	limit int
}

// NewDedup builds a dedup set bounded to limit keys.
func NewDedup(limit int) *Dedup {
	return &Dedup{seen: make(map[string]struct{}), limit: limit}
}

// FirstSeen reports whether key is new, recording it (and evicting the
// oldest key past the bound). Not safe for concurrent use; callers
// serialize.
func (d *Dedup) FirstSeen(key string) bool {
	if _, dup := d.seen[key]; dup {
		return false
	}
	if len(d.queue) >= d.limit {
		oldest := d.queue[0]
		d.queue = d.queue[1:]
		delete(d.seen, oldest)
	}
	d.seen[key] = struct{}{}
	d.queue = append(d.queue, key)
	return true
}

// emit stamps, rings, and fans one emission out to subscribers. A
// subscriber whose buffer is full is dropped on the spot — ingest never
// blocks on a slow consumer. Callers hold r.mu.
func (r *rule) emit(em Emission) {
	r.seq++
	em.Rule = r.id
	em.Seq = r.seq
	r.emitted++
	r.m.emitted.Add(1)
	r.ring.push(em)
	for s := range r.subs {
		select {
		case s.ch <- em:
		default:
			r.dropSubLocked(s, DropSlowConsumer)
		}
	}
}

// backfill replays the snapshot through the rule, then drains the offers
// queued meanwhile and flips the rule live. Work happens under short lock
// acquisitions so concurrent ingest only ever waits one chunk.
//
// History must replay in global event-time order: the snapshot scan yields
// partitions in (day, agent) order, which would race a multi-pattern rule's
// watermark to the end of one agent's day before another agent's same-day
// events arrive — silently expiring within-window joins. Replaying one day
// at a time and sorting that day's matches restores the arrival order live
// ingestion has, so backfill and live replay emit the same tuples for any
// window. The cost is materializing one day's matching events at a time —
// the same order of magnitude the batch engine materializes per pattern.
func (r *rule) backfill(snap *storage.Snapshot) {
	q := &storage.DataQuery{Ops: r.opsUnion()}
	if r.patternOnly >= 0 {
		pp := r.plan.Patterns[r.patternOnly]
		q.Agents, q.Window = pp.Agents, pp.Window
	} else {
		q.Agents, q.Window = r.plan.Agents, r.plan.Window
	}
	for _, day := range r.m.store.Days() { // superset of the snapshot's days
		sub := *q
		sub.Window = q.Window.Intersect(timeutil.DayWindow(day))
		if sub.Window.Empty() {
			continue
		}
		ms := snap.Run(r.ctx, &sub)
		sort.Slice(ms, func(i, j int) bool {
			if ms[i].Event.Start != ms[j].Event.Start {
				return ms[i].Event.Start < ms[j].Event.Start
			}
			return ms[i].Event.Seq < ms[j].Event.Seq
		})
		for lo := 0; lo < len(ms); lo += storage.ScanBatchSize {
			hi := lo + storage.ScanBatchSize
			if hi > len(ms) {
				hi = len(ms)
			}
			r.mu.Lock()
			if r.deleted {
				r.mu.Unlock()
				return
			}
			for i := lo; i < hi; i++ {
				m := ms[i]
				for _, pi := range r.candidatePatterns(m.Event.Op) {
					pp := r.plan.Patterns[pi]
					if patternAdmits(pp, m.Event) && patternAcceptsEntities(pp, m.Subj, m.Obj) {
						r.process(pi, m, true)
					}
				}
			}
			r.mu.Unlock()
		}
	}
	r.mu.Lock()
	for i := range r.pending {
		po := &r.pending[i]
		r.process(po.pattern, storage.Match{Event: &po.ev, Subj: po.subj, Obj: po.obj}, false)
	}
	r.pending = nil
	r.live = true
	r.backfilled = true
	r.mu.Unlock()
}

// candidatePatterns lists the rule's pattern indexes whose operation sets
// admit op.
func (r *rule) candidatePatterns(op types.Op) []int {
	var out []int
	for pi, pp := range r.plan.Patterns {
		if r.patternOnly >= 0 && pi != r.patternOnly {
			continue
		}
		if pp.Ops.Contains(op) {
			out = append(out, pi)
		}
	}
	return out
}

// opsUnion returns the union of the rule's pattern operation sets (the
// backfill scan's coarse filter).
func (r *rule) opsUnion() types.OpSet {
	var set types.OpSet
	for pi, pp := range r.plan.Patterns {
		if r.patternOnly >= 0 && pi != r.patternOnly {
			continue
		}
		set = set.Union(pp.Ops)
	}
	return set
}

// dropSubLocked removes a subscriber with the given reason and closes its
// channel. Callers hold r.mu.
func (r *rule) dropSubLocked(s *Subscription, reason string) {
	if s.closed {
		return
	}
	delete(r.subs, s)
	s.closed = true
	s.reason = reason
	close(s.ch)
	if reason == DropSlowConsumer {
		r.dropped++
		r.m.dropped.Add(1)
	}
}

// memoLimit bounds each predicate-verdict cache; past it the map resets —
// correctness is unaffected (verdicts recompute), only the amortization.
const memoLimit = 1 << 20

// acceptsEntities is the OnIngest-path entity check: endpoint types
// directly, attribute predicates through the per-entity verdict memo.
// Serialized by the ingest tap; never called under r.mu.
func (r *rule) acceptsEntities(pi int, subj, obj *types.Entity) bool {
	if subj == nil || obj == nil {
		return false
	}
	pp := r.plan.Patterns[pi]
	if pp.Subj.Type != types.EntityInvalid && subj.Type != pp.Subj.Type {
		return false
	}
	if pp.Obj.Type != types.EntityInvalid && obj.Type != pp.Obj.Type {
		return false
	}
	if pp.Subj.Pred != nil && !memoEval(&r.subjMemo[pi], pp.Subj.Pred, subj) {
		return false
	}
	if pp.Obj.Pred != nil && !memoEval(&r.objMemo[pi], pp.Obj.Pred, obj) {
		return false
	}
	return true
}

func memoEval(mp *map[types.EntityID]bool, p pred.Pred, e *types.Entity) bool {
	m := *mp
	if m == nil {
		m = make(map[types.EntityID]bool)
		*mp = m
	}
	v, ok := m[e.ID]
	if !ok {
		v = p.Eval(e)
		if len(m) >= memoLimit {
			m = make(map[types.EntityID]bool)
			*mp = m
		}
		m[e.ID] = v
	}
	return v
}

// patternAdmits checks the event-only half of a pattern's predicate:
// operation, agents, window, event attributes. It mirrors exactly what the
// storage scan checks for the same pattern.
func patternAdmits(pp *engine.PatternPlan, ev *types.Event) bool {
	if !pp.Ops.Contains(ev.Op) {
		return false
	}
	if len(pp.Agents) > 0 {
		ok := false
		for _, a := range pp.Agents {
			if a == ev.AgentID {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if !pp.Window.Contains(ev.Start) {
		return false
	}
	if pp.EvtPred != nil && !pp.EvtPred.Eval(ev) {
		return false
	}
	return true
}

// patternAcceptsEntities checks the entity half: endpoint types and
// attribute predicates.
func patternAcceptsEntities(pp *engine.PatternPlan, subj, obj *types.Entity) bool {
	if subj == nil || obj == nil {
		return false
	}
	if pp.Subj.Type != types.EntityInvalid && subj.Type != pp.Subj.Type {
		return false
	}
	if pp.Obj.Type != types.EntityInvalid && obj.Type != pp.Obj.Type {
		return false
	}
	if pp.Subj.Pred != nil && !pp.Subj.Pred.Eval(subj) {
		return false
	}
	if pp.Obj.Pred != nil && !pp.Obj.Pred.Eval(obj) {
		return false
	}
	return true
}

// ring is the rule's bounded replay buffer: the last cap emissions, so a
// subscriber arriving after a burst (or requesting ?since=) can catch up
// without the matcher retaining unbounded history. Storage grows lazily up
// to cap — a quiet rule with a large configured buffer costs nothing.
type ring struct {
	cap  int
	buf  []Emission
	next int // next write position once buf reached cap
}

func newRing(capacity int) ring { return ring{cap: capacity} }

func (rg *ring) push(em Emission) {
	if rg.cap <= 0 {
		return
	}
	if len(rg.buf) < rg.cap {
		rg.buf = append(rg.buf, em)
		return
	}
	rg.buf[rg.next] = em
	rg.next = (rg.next + 1) % rg.cap
}

// replay returns the retained emissions with Seq > since, oldest first.
func (rg *ring) replay(since uint64) []Emission {
	n := len(rg.buf)
	if n == 0 {
		return nil
	}
	start := 0
	if n == rg.cap {
		start = rg.next
	}
	var out []Emission
	for i := 0; i < n; i++ {
		em := rg.buf[(start+i)%n]
		if em.Seq > since {
			out = append(out, em)
		}
	}
	return out
}
