package stream

// Subscription is one consumer of a rule's emission stream. Emissions
// arrive on C in sequence order: first the replay of retained emissions
// newer than the requested since, then live emissions as they happen. The
// channel closes when the subscriber is dropped (slow consumer), the rule
// is deleted, or Close is called; Reason distinguishes the cases.
type Subscription struct {
	r  *rule
	ch chan Emission

	// firstSeq is the first sequence number this subscription will deliver
	// (set at attach time; immutable after).
	firstSeq uint64

	// guarded by r.mu
	closed bool
	reason string
}

// FirstSeq returns the first sequence number the subscription delivers. A
// value greater than since+1 means emissions in (since, FirstSeq) had
// already rotated out of the rule's replay ring — the gap is visible, not
// silent (clients see it in the stream header's first_seq).
func (s *Subscription) FirstSeq() uint64 { return s.firstSeq }

// C is the emission channel. It is closed when the subscription ends.
func (s *Subscription) C() <-chan Emission { return s.ch }

// Close detaches the subscriber. Idempotent; safe concurrently with
// publishes.
func (s *Subscription) Close() {
	s.r.mu.Lock()
	if !s.closed {
		delete(s.r.subs, s)
		s.closed = true
		close(s.ch)
	}
	s.r.mu.Unlock()
}

// Reason reports why the stream ended: DropSlowConsumer, DropRuleDeleted,
// or "" for a consumer-initiated Close. Meaningful once C is closed.
func (s *Subscription) Reason() string {
	s.r.mu.Lock()
	defer s.r.mu.Unlock()
	return s.reason
}

// Subscribe attaches a consumer to a rule's stream, replaying the retained
// emissions with Seq > since before going live. The returned channel's
// capacity covers the replay plus a full live buffer; a consumer that falls
// a whole buffer behind is disconnected (counted as a slow-consumer drop)
// rather than ever back-pressuring ingest.
func (m *Matcher) Subscribe(id string, since uint64) (*Subscription, RuleInfo, error) {
	m.mu.Lock()
	r, ok := m.rules[id]
	m.mu.Unlock()
	if !ok {
		return nil, RuleInfo{}, ErrUnknownRule
	}
	r.mu.Lock()
	if r.deleted {
		r.mu.Unlock()
		return nil, RuleInfo{}, ErrUnknownRule
	}
	replay := r.ring.replay(since)
	s := &Subscription{r: r, ch: make(chan Emission, len(replay)+m.opts.BufferSize)}
	if len(replay) > 0 {
		s.firstSeq = replay[0].Seq
	} else {
		s.firstSeq = r.seq + 1 // next live emission
	}
	for _, em := range replay {
		s.ch <- em
	}
	r.subs[s] = struct{}{}
	r.mu.Unlock()
	return s, m.infoOf(r), nil
}
