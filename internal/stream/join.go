package stream

import (
	"aiql/internal/engine"
	"aiql/internal/storage"
	"aiql/internal/types"
)

// JoinState is the bounded incremental join at the heart of a multi-pattern
// standing rule: per-pattern buffers of recent matches over a sliding
// event-time window, probed on every new match to complete full pattern
// chains. The matcher drives one JoinState per rule; the cluster
// coordinator drives one per merged subscription, fed by raw per-pattern
// emissions from the workers — both get identical join semantics because
// the relationship predicate itself is the engine's (Join.Eval).
//
// Exactly-once emission without global state: every offered match receives
// a monotonically increasing stamp, and a completed tuple is emitted only
// at the offer of its maximum-stamp constituent (all other slots are filled
// from strictly earlier stamps). Any arrival order — out-of-order event
// time, interleaved workers — yields each complete tuple exactly once, the
// same tuple set the batch engine's join produces over the same events.
//
// Bounded state is a first-class constraint, enforced two ways:
//
//   - window expiry: entries whose event time falls more than the window
//     behind the newest event time seen (the watermark) are swept and never
//     join again;
//   - a hard per-pattern cap: when a buffer still exceeds MaxState after the
//     sweep, the oldest entries are dropped and counted (Evicted), trading
//     completeness for memory — never the reverse.
//
// JoinState is not safe for concurrent use; callers serialize Offer (the
// matcher under its per-rule lock, the coordinator under its merge loop).
type JoinState struct {
	plan     *engine.Plan
	k        int
	windowMs int64
	maxState int
	maxPairs int

	// bufs[p][heads[p]:] is pattern p's live sliding-window buffer: a
	// deque whose dead (expired/capped) prefix is skipped by the head
	// index and compacted away amortized-O(1) — window expiry never
	// recopies or reallocates per event.
	bufs      [][]jsEntry
	heads     []int
	joinsAt   [][]int // join indexes touching each pattern slot
	nextStamp uint64
	watermark int64

	// row/assigned are the enumeration scratch, reused across Offers (the
	// single-caller contract makes that safe) so the per-event hot path
	// does not allocate.
	row      []storage.Match
	assigned []bool

	evicted   uint64
	overflows uint64
}

// jsEntry parks one pattern match. The event is copied by value so buffered
// state never pins an ingest batch or a storage snapshot in memory; entity
// pointers are shared with the store, which retains them anyway.
type jsEntry struct {
	ev    types.Event
	subj  *types.Entity
	obj   *types.Entity
	stamp uint64
}

// NewJoinState builds the join state for a streamable plan. windowMs bounds
// how far apart (in event time) the constituents of one tuple may lie;
// maxState caps each pattern's buffer; maxPairs caps the enumeration work a
// single offered match may trigger.
func NewJoinState(plan *engine.Plan, windowMs int64, maxState, maxPairs int) *JoinState {
	k := len(plan.Patterns)
	js := &JoinState{
		plan:     plan,
		k:        k,
		windowMs: windowMs,
		maxState: maxState,
		maxPairs: maxPairs,
		bufs:     make([][]jsEntry, k),
		heads:    make([]int, k),
		joinsAt:  make([][]int, k),
		row:      make([]storage.Match, k),
		assigned: make([]bool, k),
	}
	for ji := range plan.Joins {
		j := &plan.Joins[ji]
		js.joinsAt[j.A] = append(js.joinsAt[j.A], ji)
		if j.B != j.A {
			js.joinsAt[j.B] = append(js.joinsAt[j.B], ji)
		}
	}
	return js
}

// Len returns the number of buffered partial matches across all patterns.
func (js *JoinState) Len() int {
	n := 0
	for p, b := range js.bufs {
		n += len(b) - js.heads[p]
	}
	return n
}

// Evicted returns how many buffered matches were dropped by window expiry
// or the state cap.
func (js *JoinState) Evicted() uint64 { return js.evicted }

// Overflows returns how many offers had their enumeration truncated by the
// per-offer pair budget (tuples may have been missed; the count makes the
// truncation visible instead of silent).
func (js *JoinState) Overflows() uint64 { return js.overflows }

// Offer feeds one match for one pattern slot and invokes emit for every
// tuple this match completes, row[i] holding pattern i's match. The row
// slice is reused; emit must not retain it (project or copy inside the
// callback). A match for an event matching several patterns is offered once
// per pattern, in any order.
func (js *JoinState) Offer(pattern int, m storage.Match, emit func(row []storage.Match)) {
	if m.Event.Start > js.watermark {
		js.watermark = m.Event.Start
	}
	// A straggler already outside the window relative to the watermark is
	// expired on arrival: buffered candidates older than the cutoff are
	// excluded from joins, and the same must hold for the new match itself —
	// otherwise the pair (old straggler, buffered recent) would emit in one
	// arrival order and not the other, and the tuple would span more than
	// the window.
	if js.k > 1 && m.Event.Start < js.watermark-js.windowMs {
		js.evicted++
		return
	}
	row, assigned := js.row, js.assigned
	for i := range assigned {
		assigned[i] = false
	}
	row[pattern] = m
	assigned[pattern] = true
	if !js.checkJoinsAt(pattern, row, assigned) {
		// A self-relationship on this slot already fails, so the match can
		// never participate in any tuple — don't buffer it.
		return
	}
	if js.k == 1 {
		emit(row)
		return
	}

	stamp := js.nextStamp
	js.insert(pattern, m)
	cutoff := js.watermark - js.windowMs
	pairs := 0

	// Two-pattern rules — the common chain shape — get a closure-free loop.
	if js.k == 2 {
		other := 1 - pattern
		buf := js.bufs[other]
		for i := js.heads[other]; i < len(buf); i++ {
			c := &buf[i]
			if c.stamp >= stamp || c.ev.Start < cutoff {
				continue
			}
			pairs++
			if pairs > js.maxPairs {
				js.overflows++
				return
			}
			row[other] = storage.Match{Event: &c.ev, Subj: c.subj, Obj: c.obj}
			assigned[other] = true
			if js.checkJoinsAt(other, row, assigned) {
				emit(row)
			}
			assigned[other] = false
		}
		return
	}

	var rec func(slot int) bool
	rec = func(slot int) bool {
		if slot == js.k {
			emit(row)
			return true
		}
		if slot == pattern {
			return rec(slot + 1)
		}
		buf := js.bufs[slot]
		for i := js.heads[slot]; i < len(buf); i++ {
			c := &buf[i]
			if c.stamp >= stamp || c.ev.Start < cutoff {
				continue
			}
			pairs++
			if pairs > js.maxPairs {
				js.overflows++
				return false
			}
			row[slot] = storage.Match{Event: &c.ev, Subj: c.subj, Obj: c.obj}
			assigned[slot] = true
			if js.checkJoinsAt(slot, row, assigned) && !rec(slot+1) {
				assigned[slot] = false
				return false
			}
			assigned[slot] = false
		}
		return true
	}
	rec(0)
}

// insert appends the match to its pattern buffer, expiring the window's
// dead prefix and enforcing the hard cap. Arrival order is roughly
// event-time order, so expiry almost always advances the head index — no
// copy, no allocation. Stragglers buried behind an out-of-order newer
// entry are excluded from joins by the enumeration's own cutoff check and
// fall off when they reach the head. Once the dead prefix rivals the live
// region the live entries are copied down in place, so each entry moves at
// most once more over its lifetime and the backing array stops growing at
// a small multiple of the live size.
func (js *JoinState) insert(pattern int, m storage.Match) {
	buf := append(js.bufs[pattern], jsEntry{ev: *m.Event, subj: m.Subj, obj: m.Obj, stamp: js.nextStamp})
	js.nextStamp++
	head := js.heads[pattern]
	cutoff := js.watermark - js.windowMs
	for head < len(buf) && buf[head].ev.Start < cutoff {
		head++
		js.evicted++
	}
	if over := len(buf) - head - js.maxState; over > 0 {
		head += over
		js.evicted += uint64(over)
	}
	if head >= 64 && head*2 >= len(buf) {
		n := copy(buf, buf[head:])
		buf = buf[:n]
		head = 0
	}
	js.bufs[pattern] = buf
	js.heads[pattern] = head
}

// checkJoinsAt evaluates every relationship touching slot whose other
// endpoint is already assigned (including self-relationships).
func (js *JoinState) checkJoinsAt(slot int, row []storage.Match, assigned []bool) bool {
	for _, ji := range js.joinsAt[slot] {
		j := &js.plan.Joins[ji]
		other := j.A
		if other == slot {
			other = j.B
		}
		if !assigned[other] {
			continue
		}
		if !j.Eval(&row[j.A], &row[j.B]) {
			return false
		}
	}
	return true
}
