package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrCmp reports comparisons of sentinel error values with == or != (or
// switch cases), which break as soon as any layer wraps the error with
// %w. The repo's sentinels (storage.ErrSegmentCorrupt, engine.ErrTooLarge,
// stream.ErrUnknownRule, ...) are all returned wrapped somewhere; only
// errors.Is matches them reliably.
var ErrCmp = &Analyzer{
	Name: "errcmp",
	Doc:  "sentinel errors must be compared with errors.Is, never == or !=",
	Run:  runErrCmp,
}

func runErrCmp(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if name := sentinelName(pass, side); name != "" {
						pass.Reportf(n.Pos(), "sentinel error %s compared with %s; use errors.Is", name, n.Op)
						break
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorType(pass.TypesInfo.Types[n.Tag].Type) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name := sentinelName(pass, e); name != "" {
							pass.Reportf(e.Pos(), "sentinel error %s used as a switch case; use errors.Is", name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// sentinelName returns the qualified name of e when it denotes a
// package-level error variable following the ErrXxx convention, else "".
func sentinelName(pass *Pass, e ast.Expr) string {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		return ""
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "" // not package-level
	}
	if !strings.HasPrefix(v.Name(), "Err") && !strings.HasPrefix(v.Name(), "err") {
		return ""
	}
	if !isErrorType(v.Type()) {
		return ""
	}
	return v.Name()
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
