// Command mainskip pins the package-main exemption: ctxflow and
// wallclock are silent at the binary edge, where minting a root context
// and reading the wall clock are exactly right.
package main

import (
	"context"
	"time"
)

func main() {
	ctx := context.Background()
	_ = ctx
	_ = time.Now()
}
