// Package errcmpfix exercises the errcmp analyzer: sentinel errors must
// be compared with errors.Is, never == or !=.
package errcmpfix

import "errors"

// ErrBoom is a package-level sentinel following the ErrXxx convention.
var ErrBoom = errors.New("boom")

func eq(err error) bool {
	return err == ErrBoom // want `errcmp: sentinel error ErrBoom compared with ==; use errors.Is`
}

func neq(err error) bool {
	if ErrBoom != err { // want `errcmp: sentinel error ErrBoom compared with !=`
		return true
	}
	return false
}

func sw(err error) int {
	switch err {
	case ErrBoom: // want `errcmp: sentinel error ErrBoom used as a switch case`
		return 1
	}
	return 0
}

// ok is the idiom the analyzer demands; it must stay silent here.
func ok(err error) bool { return errors.Is(err, ErrBoom) }

// nilCheck compares against nil, not a sentinel; no finding.
func nilCheck(err error) bool { return err == nil }

// ignored proves the escape hatch: a well-formed directive on the line
// above suppresses the finding.
func ignored(err error) bool {
	//aiql:ignore errcmp -- fixture: proves the escape hatch suppresses a finding
	return err == ErrBoom
}
