package ctxfix

import "context"

// Test files are exempt from ctxflow: no finding here.
func helperForTests() context.Context { return context.Background() }
