// Package ctxfix exercises the ctxflow analyzer: no context.Background
// or context.TODO in library code.
package ctxfix

import (
	"context"
	"time"
)

func root() context.Context {
	return context.Background() // want `ctxflow: context.Background in library code`
}

func todo() context.Context {
	return context.TODO() // want `ctxflow: context.TODO in library code`
}

// threaded takes the context from its caller; no finding.
func threaded(ctx context.Context) context.Context { return ctx }

// annotated is an allowlisted root; the directive suppresses the finding.
func annotated() context.Context {
	//aiql:ignore ctxflow -- fixture: an allowlisted context root
	return context.Background()
}

type ctxKey struct{}

// combined pins the comma-separated analyzer list: one directive
// suppresses two analyzers on the next line.
func combined() context.Context {
	//aiql:ignore ctxflow,wallclock -- fixture: one directive covering several analyzers
	return context.WithValue(context.Background(), ctxKey{}, time.Now())
}
