// Package cursorfix exercises the cursorclose analyzer against the
// miniature storage package: every acquired Cursor/Snapshot must reach
// Close (or Release) on all paths, or be handed off.
package cursorfix

import "aiql/internal/lint/testdata/src/storage"

func leak(st *storage.Store) int {
	c := st.Scan() // want `cursorclose: Cursor "c" is never closed on any path`
	n, _ := c.Next()
	return n
}

func discard(st *storage.Store) {
	st.Scan() // want `cursorclose: Cursor returned by this call is discarded and never closed`
}

func blank(st *storage.Store) {
	_, _ = st.ScanErr() // want `cursorclose: Cursor returned by this call is assigned to _ and never closed`
}

func earlyReturn(st *storage.Store, bail bool) int {
	c := st.Scan() // want `cursorclose: Cursor "c" is closed only after an earlier return can leak it`
	if bail {
		return 0
	}
	n, _ := c.Next()
	c.Close()
	return n
}

// deferred is the demanded idiom: defer Close right after acquisition.
func deferred(st *storage.Store, bail bool) int {
	c := st.Scan()
	defer c.Close()
	if bail {
		return 0
	}
	n, _ := c.Next()
	return n
}

// deferredClosure pins the common `defer func(){ ... }()` form.
func deferredClosure(st *storage.Store) int {
	c := st.Scan()
	defer func() { c.Close() }()
	n, _ := c.Next()
	return n
}

// handoff returns the cursor: the obligation transfers to the caller.
func handoff(st *storage.Store) *storage.Cursor {
	return st.Scan()
}

// aliasedHandoff escapes through an assignment and ends tracking.
func aliasedHandoff(st *storage.Store, sink *struct{ c *storage.Cursor }) {
	c := st.Scan()
	sink.c = c
}

// passed hands the cursor to another function, transferring ownership.
func passed(st *storage.Store, drain func(*storage.Cursor)) {
	c := st.Scan()
	drain(c)
}

func snapshotLeak(st *storage.Store) bool {
	sn := st.Snapshot() // want `cursorclose: Snapshot "sn" is never closed on any path`
	return sn != nil
}

// released accepts Release as the closing method for snapshots.
func released(st *storage.Store) {
	sn := st.Snapshot()
	defer sn.Release()
}

// acquired pins the multi-result form: the tracked value is the first
// result of Acquire.
func acquired(st *storage.Store) bool {
	sn, ok := st.Acquire() // want `cursorclose: Snapshot "sn" is never closed on any path`
	return ok && sn != nil
}

// ignored proves the escape hatch applies to cursorclose too.
func ignored(st *storage.Store) int {
	//aiql:ignore cursorclose -- fixture: cursor lifetime owned by a harness
	c := st.Scan()
	n, _ := c.Next()
	return n
}
