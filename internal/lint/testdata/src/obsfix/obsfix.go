// Package obsfix exercises the obsreg analyzer: metric names registered
// on an obs.Registry must be snake_case, carry their kind's unit suffix,
// and be registered exactly once per package.
package obsfix

import "aiql/internal/lint/testdata/src/obs"

const queryDurName = "aiql_query_duration_seconds"

// clean registrations: every kind, every accepted suffix, a named
// constant, a constant concatenation, and a dynamic prefix whose literal
// fragments are well-formed.
func clean(r *obs.Registry, prefix string) {
	r.Counter("aiql_queries_total", "queries served")
	r.CounterFunc("aiql_ingest_batches_total", "batches", func() float64 { return 0 })
	r.Gauge("aiql_wal_depth_bytes", "wal backlog")
	r.GaugeFunc("aiql_uptime_seconds", "uptime", func() float64 { return 0 })
	r.Gauge("aiql_store_events_count", "events held")
	r.GaugeFunc("aiql_cache_hit_ratio", "hit ratio", func() float64 { return 0 })
	r.Histogram(queryDurName, "latency")
	r.Histogram("aiql_batch_size_bytes", "batch sizes")
	r.CounterVec("aiql_http_requests_total", "requests", "route", "code")
	r.GaugeVecFunc("aiql_repl_watermark_count", "watermarks", []string{"epoch", "shard"}, func(emit func([]string, float64)) {})
	r.Counter("aiql_"+"scans_total", "constant concatenation")
	r.CounterFunc(prefix+"hits_total", "dynamic prefix, literal tail", func() float64 { return 0 })
	r.GaugeFunc(prefix+"size_count", "dynamic prefix, gauge tail", func() float64 { return 0 })
}

// badSuffixes miss the unit suffix their kind demands.
func badSuffixes(r *obs.Registry, prefix string) {
	r.Counter("aiql_queries_count", "count is a gauge suffix")                            // want `obsreg: counter "aiql_queries_count" must end in _total`
	r.Gauge("aiql_wal_depth", "no unit at all")                                           // want `obsreg: gauge "aiql_wal_depth" must end in _seconds, _bytes, _ratio or _count`
	r.Histogram("aiql_query_latency_total", "total is for counters")                      // want `obsreg: histogram "aiql_query_latency_total" must end in _seconds or _bytes`
	r.CounterFunc(prefix+"misses_count", "bad literal tail", func() float64 { return 0 }) // want `obsreg: counter name ending "misses_count" must end in _total`
}

// badCasing breaks the snake_case rule.
func badCasing(r *obs.Registry, prefix string) {
	r.Counter("aiqlQueries_total", "camelCase")                                     // want `obsreg: metric name "aiqlQueries_total" is not snake_case`
	r.Gauge("aiql-wal-depth_bytes", "kebab-case")                                   // want `obsreg: metric name "aiql-wal-depth_bytes" is not snake_case`
	r.CounterFunc(prefix+"Hits_total", "bad fragment", func() float64 { return 0 }) // want `obsreg: metric name fragment "Hits_total" is not snake_case`
	r.CounterVec("aiql_scatter_legs_total", "bad label", "Worker")                  // want `obsreg: label name "Worker" is not snake_case`
}

// duplicated registers the same name twice; the second site is the bug.
func duplicated(r *obs.Registry) {
	r.Counter("aiql_dup_total", "first owner")
	r.CounterFunc("aiql_dup_total", "second owner", func() float64 { return 0 }) // want `obsreg: metric "aiql_dup_total" already registered at .*obsfix.go:\d+:\d+; every series needs exactly one owner`
}

// dynamic names are left to the runtime registration check; no finding.
func dynamic(r *obs.Registry, name string) {
	r.Counter(name, "fully dynamic")
}

// annotated uses the trailing directive form.
func annotated(r *obs.Registry) {
	r.Counter("aiql_legacy_scan", "grandfathered") //aiql:ignore obsreg -- fixture: trailing-directive form
}
