// Package ignorefix exercises the //aiql:ignore directive contract
// itself: a well-formed directive (analyzer names plus a reason after
// `--`) suppresses findings on its line and the next; a reason-less
// directive suppresses nothing and is reported as a diagnostic.
package ignorefix

import "errors"

// ErrOops is the sentinel the fixture compares against.
var ErrOops = errors.New("oops")

// suppressed carries a well-formed directive; the errcmp finding on the
// next line must not surface.
func suppressed(err error) bool {
	//aiql:ignore errcmp -- fixture: demonstrating the escape hatch
	return err == ErrOops
}

// missingReason carries a reason-less directive on the offending line:
// the directive must NOT suppress the errcmp finding, and must itself be
// reported under the ignoredirective pseudo-analyzer.
func missingReason(err error) bool {
	return err != ErrOops //aiql:ignore errcmp
}
