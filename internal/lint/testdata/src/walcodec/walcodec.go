// Package walcodec exercises the boundedmake analyzer on a miniature
// decoder mirroring the shape of the storage/WAL codecs. The package
// path contains "wal", which puts it in the analyzer's scope.
package walcodec

import "encoding/binary"

const maxItems = 1 << 20

type reader struct {
	b   []byte
	off int
}

func (r *reader) u32() uint32 {
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func unchecked(r *reader) []byte {
	n := r.u32()
	return make([]byte, n) // want `boundedmake: allocation sized from decoded value "n" without a dominating bounds check`
}

func direct(r *reader) []byte {
	return make([]byte, binary.BigEndian.Uint32(r.b)) // want `boundedmake: allocation sized directly from decoded input`
}

// flows pins taint propagation through an intermediate local.
func flows(r *reader) []uint64 {
	n := r.u32()
	count := int(n)
	return make([]uint64, count) // want `boundedmake: allocation sized from decoded value "count"`
}

// checked is the bounds-check idiom the invariant demands: corruption
// errors out before the count can size an allocation.
func checked(r *reader) []byte {
	n := r.u32()
	if n > maxItems {
		return nil
	}
	return make([]byte, n)
}

// clamped passes the decoded count through min(); inherently bounded.
func clamped(r *reader) []byte {
	n := r.u32()
	return make([]byte, min(int(n), maxItems))
}

// fromLen sizes from in-memory data, which cannot exceed what was read.
func fromLen(r *reader) []byte {
	return make([]byte, len(r.b))
}

// annotated proves the escape hatch applies to boundedmake too.
func annotated(r *reader) []byte {
	n := r.u32()
	//aiql:ignore boundedmake -- fixture: frame length validated by the caller
	return make([]byte, n)
}
