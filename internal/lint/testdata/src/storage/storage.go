// Package storage is a miniature mirror of the real storage API surface,
// just enough for the cursorclose fixtures to type-check: the analyzer
// tracks any named Cursor or Snapshot type from a package whose import
// path contains "storage".
package storage

// Cursor is a scan-lifetime handle that must reach Close on every path.
type Cursor struct{ closed bool }

func (c *Cursor) Next() (int, bool) { return 0, !c.closed }
func (c *Cursor) Close()            { c.closed = true }

// Snapshot pins copy-on-write state until Close or Release.
type Snapshot struct{ released bool }

func (s *Snapshot) Close()   { s.released = true }
func (s *Snapshot) Release() { s.released = true }

// Store hands out cursors and snapshots.
type Store struct{}

func (s *Store) Scan() *Cursor              { return &Cursor{} }
func (s *Store) ScanErr() (*Cursor, error)  { return &Cursor{}, nil }
func (s *Store) Snapshot() *Snapshot        { return &Snapshot{} }
func (s *Store) Acquire() (*Snapshot, bool) { return &Snapshot{}, true }
