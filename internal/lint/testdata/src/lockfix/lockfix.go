// Package lockfix exercises the lockguard analyzer: fields annotated
// `aiql:guarded-by <mu>` may only be touched with the mutex held, in an
// `aiql:locked` helper, or on a freshly constructed value.
package lockfix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // aiql:guarded-by mu
}

func bad(c *counter) int {
	return c.n // want `lockguard: field n is guarded by mu but accessed without holding it`
}

func badWrite(c *counter) {
	c.n = 1 // want `lockguard: field n is guarded by mu`
}

func good(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// addLocked is the xxxLocked helper convention: the caller holds mu.
// aiql:locked mu
func addLocked(c *counter) {
	c.n++
}

// fresh constructs the value locally; nothing else can see it yet.
func fresh() int {
	c := counter{}
	c.n = 7
	return c.n
}

// ignored proves the escape hatch applies to lockguard too.
func ignored(c *counter) int {
	//aiql:ignore lockguard -- fixture: single-goroutine setup phase
	return c.n
}
