// Package clockfix exercises the wallclock analyzer: no time.Now in
// library packages.
package clockfix

import "time"

func stamp() int64 {
	return time.Now().UnixMilli() // want `wallclock: time.Now in library code`
}

// since uses time arithmetic without reading the wall clock directly
// through time.Now; no finding.
func since(t0, t1 time.Time) time.Duration { return t1.Sub(t0) }

// annotated uses the trailing directive form.
func annotated() time.Time {
	return time.Now() //aiql:ignore wallclock -- fixture: trailing-directive form
}
