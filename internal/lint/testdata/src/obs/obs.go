// Package obs is a miniature mirror of the real metrics registry surface,
// just enough for the obsreg fixtures to type-check: the analyzer tracks
// the registration methods of any Registry type from a package whose
// import path ends in /obs.
package obs

// Registry registers metric families.
type Registry struct{}

// Counter is a monotonically increasing metric.
type Counter struct{}

// Inc adds one.
func (c *Counter) Inc() {}

// Gauge is a settable instantaneous value.
type Gauge struct{}

// Set records the current value.
func (g *Gauge) Set(v float64) {}

// Histogram counts observations into buckets.
type Histogram struct{}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {}

// CounterVec is a labeled counter family.
type CounterVec struct{}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// CounterFunc registers a scrape-time counter.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

// GaugeFunc registers a scrape-time gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {}

// Histogram registers a histogram.
func (r *Registry) Histogram(name, help string, buckets ...float64) *Histogram { return &Histogram{} }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec { return &CounterVec{} }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec { return &GaugeVec{} }

// GaugeVecFunc registers a scrape-time labeled gauge family.
func (r *Registry) GaugeVecFunc(name, help string, labels []string, fn func(emit func([]string, float64))) {
}
