package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// ObsReg statically enforces what obs.Registry enforces with panics at
// runtime: metric names are snake_case, carry the unit suffix their kind
// demands (counters _total; histograms _seconds/_bytes; gauges _seconds,
// _bytes, _ratio or _count), and each name is registered exactly once per
// package. Catching a malformed or duplicated name here turns a
// first-scrape panic into a vet finding.
//
// Names built by concatenation are checked on their literal fragments:
// every string literal in the name expression must be snake_case, and when
// the rightmost fragment is a literal long enough to settle the question,
// the unit-suffix rule applies to it too. Fully dynamic names (a plain
// variable) are left to the runtime check. Duplicate detection covers only
// fully constant names.
var ObsReg = &Analyzer{
	Name: "obsreg",
	Doc:  "obs metric names must be snake_case, unit-suffixed, and registered once",
	Run:  runObsReg,
}

// obsRegMethods maps each obs.Registry registration method to the metric
// kind it registers.
var obsRegMethods = map[string]string{
	"Counter":      "counter",
	"CounterFunc":  "counter",
	"CounterVec":   "counter",
	"Gauge":        "gauge",
	"GaugeFunc":    "gauge",
	"GaugeVec":     "gauge",
	"GaugeVecFunc": "gauge",
	"Histogram":    "histogram",
}

// obsSuffixes lists the unit suffixes each metric kind accepts.
var obsSuffixes = map[string][]string{
	"counter":   {"_total"},
	"histogram": {"_seconds", "_bytes"},
	"gauge":     {"_seconds", "_bytes", "_ratio", "_count"},
}

func runObsReg(pass *Pass) error {
	registered := make(map[string]token.Position)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, method := obsRegCall(pass, call)
			if kind == "" || len(call.Args) == 0 {
				return true
			}
			checkMetricName(pass, call.Args[0], kind, registered)
			checkLabelNames(pass, call, method)
			return true
		})
	}
	return nil
}

// obsRegCall reports the metric kind ("counter", "gauge", "histogram")
// and method name when call is a registration method on the obs package's
// Registry, else "".
func obsRegCall(pass *Pass, call *ast.CallExpr) (kind, method string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	kind, ok = obsRegMethods[sel.Sel.Name]
	if !ok {
		return "", ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", ""
	}
	path := pathOf(fn)
	if path != "obs" && !strings.HasSuffix(path, "/obs") {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Registry" {
		return "", ""
	}
	return kind, sel.Sel.Name
}

// checkMetricName validates the name argument of a registration call.
func checkMetricName(pass *Pass, arg ast.Expr, kind string, registered map[string]token.Position) {
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		name := constant.StringVal(tv.Value)
		if !obsSnakeCase(name, true) {
			pass.Reportf(arg.Pos(), "metric name %q is not snake_case", name)
			return
		}
		if !hasAnySuffix(name, obsSuffixes[kind]) {
			pass.Reportf(arg.Pos(), "%s %q must end in %s", kind, name, suffixList(kind))
			return
		}
		if first, dup := registered[name]; dup {
			pass.Reportf(arg.Pos(), "metric %q already registered at %s; every series needs exactly one owner", name, first)
			return
		}
		registered[name] = pass.Fset.Position(arg.Pos())
		return
	}
	// Non-constant name: check the literal fragments of a concatenation.
	frags := literalFragments(arg)
	for i, frag := range frags {
		if !obsSnakeCase(frag.val, i == 0 && frag.leading) {
			pass.Reportf(frag.pos, "metric name fragment %q is not snake_case", frag.val)
			return
		}
	}
	if len(frags) == 0 {
		return // fully dynamic; the runtime registration check covers it
	}
	last := frags[len(frags)-1]
	if !last.trailing || hasAnySuffix(last.val, obsSuffixes[kind]) {
		return
	}
	// The fragment could still be the tail of an allowed suffix split
	// across operands; only report when it is long enough to decide.
	for _, s := range obsSuffixes[kind] {
		if strings.HasSuffix(s, last.val) {
			return
		}
	}
	pass.Reportf(last.pos, "%s name ending %q must end in %s", kind, last.val, suffixList(kind))
}

// checkLabelNames validates the literal label names of Vec registrations.
func checkLabelNames(pass *Pass, call *ast.CallExpr, method string) {
	var labelExprs []ast.Expr
	switch method {
	case "CounterVec", "GaugeVec":
		if len(call.Args) > 2 {
			labelExprs = call.Args[2:]
		}
	case "GaugeVecFunc":
		if len(call.Args) > 2 {
			if lit, ok := call.Args[2].(*ast.CompositeLit); ok {
				labelExprs = lit.Elts
			}
		}
	default:
		return
	}
	for _, e := range labelExprs {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			continue
		}
		if l := constant.StringVal(tv.Value); !obsSnakeCase(l, true) {
			pass.Reportf(e.Pos(), "label name %q is not snake_case", l)
		}
	}
}

// nameFragment is one string literal inside a metric-name expression.
type nameFragment struct {
	val      string
	pos      token.Pos
	leading  bool // literal is the leftmost operand of the concatenation
	trailing bool // literal is the rightmost operand of the concatenation
}

// literalFragments collects the string literals of a + concatenation in
// source order, noting whether each sits at the expression's edge.
func literalFragments(e ast.Expr) []nameFragment {
	return appendFragments(nil, e, true, true)
}

func appendFragments(out []nameFragment, e ast.Expr, leading, trailing bool) []nameFragment {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return appendFragments(out, e.X, leading, trailing)
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return out
		}
		out = appendFragments(out, e.X, leading, false)
		return appendFragments(out, e.Y, false, trailing)
	case *ast.BasicLit:
		if e.Kind == token.STRING {
			val := e.Value
			if len(val) >= 2 {
				val = val[1 : len(val)-1] // strip quotes; names never need escapes
			}
			out = append(out, nameFragment{val: val, pos: e.Pos(), leading: leading, trailing: trailing})
		}
	}
	return out
}

// obsSnakeCase mirrors the registry's runtime check: lowercase letters,
// digits and underscores, starting with a letter. For an interior
// fragment the leading-letter rule is waived (mustLead false).
func obsSnakeCase(s string, mustLead bool) bool {
	if s == "" {
		return !mustLead
	}
	if mustLead && (s[0] < 'a' || s[0] > 'z') {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

func hasAnySuffix(s string, suffixes []string) bool {
	for _, suf := range suffixes {
		if strings.HasSuffix(s, suf) {
			return true
		}
	}
	return false
}

func suffixList(kind string) string {
	switch kind {
	case "counter":
		return "_total"
	case "histogram":
		return "_seconds or _bytes"
	default:
		return "_seconds, _bytes, _ratio or _count"
	}
}
