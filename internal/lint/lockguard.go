package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// LockGuard enforces the repo's documented mutex discipline by machine
// instead of by comment. A struct field annotated
//
//	// aiql:guarded-by <mu>
//
// may only be accessed in a function that (a) locks <mu> earlier in its
// body, (b) is itself annotated `// aiql:locked <mu>` (caller holds the
// lock — the xxxLocked helper convention), or (c) is constructing the
// owning value locally (a composite literal not yet shared). This is the
// walMu/compactMu/tapMu/shadowMu discipline from PRs 4-8, previously
// enforced by prose.
//
// The check is positional, not path-sensitive: a Lock anywhere earlier in
// the function satisfies it. That is deliberate — the bug class it kills
// is the new call site that never takes the lock at all.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated aiql:guarded-by must be accessed under their mutex",
	Run:  runLockGuard,
}

var (
	guardedByRe = regexp.MustCompile(`aiql:guarded-by\s+([A-Za-z_][A-Za-z0-9_]*)`)
	lockedRe    = regexp.MustCompile(`aiql:locked\s+([A-Za-z_][A-Za-z0-9_]*)`)
)

func runLockGuard(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		state := &fileLockState{
			pass:      pass,
			lockPos:   make(map[*ast.FuncDecl][]lockCall),
			fresh:     make(map[*ast.FuncDecl]map[types.Object]bool),
			annotated: make(map[*ast.FuncDecl]map[string]bool),
		}
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			mu, guarded := guards[obj]
			if !guarded {
				return true
			}
			_, fd := enclosingFuncs(stack)
			if fd == nil {
				return true // package-level: initialization order, no races yet
			}
			if state.held(fd, mu, sel.Pos()) || state.freshReceiver(fd, sel) {
				return true
			}
			pass.Reportf(sel.Pos(), "field %s is guarded by %s but accessed without holding it (lock %s first, or annotate the function // aiql:locked %s)", sel.Sel.Name, mu, mu, mu)
			return true
		})
	}
	return nil
}

// collectGuards maps annotated field objects to their guarding mutex
// name.
func collectGuards(pass *Pass) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := ""
				for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if cg == nil {
						continue
					}
					if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
						mu = m[1]
					}
				}
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

type lockCall struct {
	mu  string
	pos token.Pos
}

// fileLockState lazily computes, per function declaration, the lock
// calls, locally-constructed values, and aiql:locked annotations.
type fileLockState struct {
	pass      *Pass
	lockPos   map[*ast.FuncDecl][]lockCall
	fresh     map[*ast.FuncDecl]map[types.Object]bool
	annotated map[*ast.FuncDecl]map[string]bool
}

// held reports whether mu is locked earlier in fd, or fd is annotated as
// called with mu held.
func (s *fileLockState) held(fd *ast.FuncDecl, mu string, at token.Pos) bool {
	if _, ok := s.annotated[fd][""]; !ok {
		s.scan(fd)
	}
	if s.annotated[fd][mu] {
		return true
	}
	for _, lc := range s.lockPos[fd] {
		if lc.mu == mu && lc.pos < at {
			return true
		}
	}
	return false
}

// freshReceiver reports whether the base of the selector is a local
// variable initialized from a composite literal in fd — a value under
// construction that no other goroutine can see yet.
func (s *fileLockState) freshReceiver(fd *ast.FuncDecl, sel *ast.SelectorExpr) bool {
	base := sel.X
	for {
		if inner, ok := base.(*ast.SelectorExpr); ok {
			base = inner.X
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj := s.pass.TypesInfo.Uses[id]
	return obj != nil && s.fresh[fd][obj]
}

// scan walks fd once, recording mutex Lock/RLock calls, locally
// constructed values, and aiql:locked annotations.
func (s *fileLockState) scan(fd *ast.FuncDecl) {
	ann := map[string]bool{"": true} // sentinel: scanned
	if fd.Doc != nil {
		for _, m := range lockedRe.FindAllStringSubmatch(fd.Doc.Text(), -1) {
			ann[m[1]] = true
		}
	}
	s.annotated[fd] = ann
	fresh := make(map[types.Object]bool)
	s.fresh[fd] = fresh
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if mu := mutexLockName(n); mu != "" {
				s.lockPos[fd] = append(s.lockPos[fd], lockCall{mu: mu, pos: n.Pos()})
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if !isCompositeConstruction(n.Rhs[i]) {
					continue
				}
				if obj := s.pass.TypesInfo.Defs[id]; obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
}

// mutexLockName returns the mutex field/variable name when the call is
// <...>.<mu>.Lock(), .RLock(), .TryLock() or .TryRLock(), else "".
func mutexLockName(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
	default:
		return ""
	}
	switch x := sel.X.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name // p.segMu.Lock()
	case *ast.Ident:
		return x.Name // mu.Lock()
	}
	return ""
}

// isCompositeConstruction reports whether e is T{...} or &T{...}.
func isCompositeConstruction(e ast.Expr) bool {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	_, ok := e.(*ast.CompositeLit)
	return ok
}
