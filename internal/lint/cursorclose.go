package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CursorClose reports storage cursors and snapshots that are acquired but
// can leak: every storage.Cursor obtained from a Scan and every
// *storage.Snapshot obtained from Snapshot()/Acquire must reach Close (or
// Release) on all control-flow paths — the PR 4 leak class, where an
// unclosed cursor pins its snapshot and the snapshot pins the store's
// copy-on-write state forever.
//
// The analysis is flow-lite but strict where it matters:
//
//   - a tracked value whose result is discarded, or never closed and
//     never handed off, is reported;
//   - a value closed only on the straight-line path is reported when an
//     earlier return can skip the Close (use defer);
//   - handing the value off — returning it, storing it in a struct or
//     slice, passing it (or its Close method) to another function —
//     transfers the obligation and ends local tracking.
var CursorClose = &Analyzer{
	Name: "cursorclose",
	Doc:  "storage cursors/snapshots must reach Close on every path",
	Run:  runCursorClose,
}

// closeMethods are the release methods accepted for tracked types.
var closeMethods = map[string]bool{"Close": true, "Release": true}

func runCursorClose(pass *Pass) error {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			idx, typeName := trackedResult(pass, call)
			if idx < 0 {
				return true
			}
			checkAcquisition(pass, call, idx, typeName, stack)
			return true
		})
	}
	return nil
}

// trackedResult returns the index and type name of the first tracked
// result of the call (a storage Cursor or Snapshot), or -1.
func trackedResult(pass *Pass, call *ast.CallExpr) (int, string) {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.IsType() {
		return -1, "" // conversion, not a call
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if name := trackedTypeName(t.At(i).Type()); name != "" {
				return i, name
			}
		}
	default:
		if name := trackedTypeName(tv.Type); name != "" {
			return 0, name
		}
	}
	return -1, ""
}

// trackedTypeName reports "Cursor" or "Snapshot" when t is one of the
// storage package's scan-lifetime types, else "".
func trackedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.Contains(obj.Pkg().Path(), "storage") {
		return ""
	}
	if name := obj.Name(); name == "Cursor" || name == "Snapshot" {
		return name
	}
	return ""
}

func checkAcquisition(pass *Pass, call *ast.CallExpr, resultIdx int, typeName string, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	enclosing, _ := enclosingFuncs(stack)
	if enclosing == nil {
		return // package-level initialization; lifetime is the process
	}
	parent := stack[len(stack)-1]
	switch parent := parent.(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "%s returned by this call is discarded and never closed", typeName)
		return
	case *ast.AssignStmt:
		id := assignedIdent(parent, call, resultIdx)
		if id == nil {
			return // stored into a field/element: ownership handed off
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "%s returned by this call is assigned to _ and never closed", typeName)
			return
		}
		trackValue(pass, enclosing, id, call, typeName)
	case *ast.ValueSpec:
		for i, v := range parent.Values {
			if v == ast.Expr(call) && i < len(parent.Names) {
				trackValue(pass, enclosing, parent.Names[i], call, typeName)
			}
		}
	}
	// Any other parent (return statement, call argument, composite
	// literal, channel send, ...) hands the value off immediately.
}

// assignedIdent finds the identifier the call's tracked result lands in,
// or nil when the destination is not a plain identifier.
func assignedIdent(assign *ast.AssignStmt, call *ast.CallExpr, resultIdx int) *ast.Ident {
	var lhs ast.Expr
	if len(assign.Rhs) == 1 && assign.Rhs[0] == ast.Expr(call) {
		if resultIdx < len(assign.Lhs) {
			lhs = assign.Lhs[resultIdx] // v, err := f()
		}
	} else {
		for i, r := range assign.Rhs {
			if r == ast.Expr(call) && i < len(assign.Lhs) {
				lhs = assign.Lhs[i] // a, b := f(), g()
			}
		}
	}
	id, _ := lhs.(*ast.Ident)
	return id
}

// trackValue inspects every use of the acquired value inside the
// enclosing function and reports leaks.
func trackValue(pass *Pass, enclosing ast.Node, lhs *ast.Ident, acq *ast.CallExpr, typeName string) {
	obj := identObj(pass, lhs)
	if obj == nil {
		return
	}
	body := funcBody(enclosing)
	if body == nil {
		return
	}
	var (
		releases []token.Pos
		deferred bool
		escapes  bool
		returns  []token.Pos
	)
	inspectStack(body, func(n ast.Node, stack []ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok && r.Pos() > acq.Pos() {
			returns = append(returns, r.Pos())
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == lhs || identObj(pass, id) != obj {
			return true
		}
		switch use := useKind(id, stack); use {
		case useRelease:
			releases = append(releases, id.Pos())
			if withinDefer(stack) {
				deferred = true
			}
		case useEscape:
			escapes = true
		}
		return true
	})
	if escapes {
		return
	}
	if len(releases) == 0 {
		pass.Reportf(acq.Pos(), "%s %q is never closed on any path (missing %s.Close, the PR 4 leak class)", typeName, lhs.Name, lhs.Name)
		return
	}
	if deferred {
		return
	}
	first := releases[0]
	for _, p := range releases {
		if p < first {
			first = p
		}
	}
	for _, r := range returns {
		if r < first {
			pass.Reportf(acq.Pos(), "%s %q is closed only after an earlier return can leak it; defer %s.Close() right after acquisition", typeName, lhs.Name, lhs.Name)
			return
		}
	}
}

type use int

const (
	useOther use = iota
	useRelease
	useEscape
)

// useKind classifies how the identifier id is used, given its ancestor
// stack (id's parent is the stack top).
func useKind(id *ast.Ident, stack []ast.Node) use {
	if len(stack) == 0 {
		return useOther
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.SelectorExpr:
		// v.M — a release when M is Close/Release and the selector is
		// called; an escape when the method value itself is passed on.
		called := false
		if len(stack) >= 2 {
			if c, ok := stack[len(stack)-2].(*ast.CallExpr); ok && c.Fun == ast.Expr(parent) {
				called = true
			}
		}
		if closeMethods[parent.Sel.Name] {
			if called {
				return useRelease
			}
			return useEscape // snap.Close passed as a value
		}
		return useOther // other method/field use keeps tracking
	case *ast.CallExpr:
		for _, a := range parent.Args {
			if a == ast.Expr(id) {
				return useEscape // passed to another function
			}
		}
		return useOther
	case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		return useEscape
	case *ast.UnaryExpr:
		if parent.Op == token.AND {
			return useEscape
		}
	case *ast.AssignStmt:
		for _, r := range parent.Rhs {
			if r == ast.Expr(id) {
				return useEscape // aliased into another variable/field
			}
		}
	}
	return useOther
}

func withinDefer(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.DeferStmt:
			return true
		case *ast.FuncLit:
			// a Close inside a nested function runs when that function
			// runs; only a defer in the same frame chain counts, but a
			// deferred closure calling Close is the common idiom:
			// keep scanning outward so `defer func(){ c.Close() }()`
			// still registers as deferred.
		}
	}
	return false
}
