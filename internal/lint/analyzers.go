package lint

// All returns the full aiqlvet suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		BoundedMake,
		CtxFlow,
		CursorClose,
		ErrCmp,
		LockGuard,
		ObsReg,
		WallClock,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
