// Package linttest is the test harness for the lint analyzers: it loads
// a fixture package, runs a set of analyzers over it, and compares the
// diagnostics against inline expectations in the fixture source,
// analysistest-style:
//
//	return err == ErrBoom // want `sentinel error ErrBoom compared with ==`
//
// Each expectation is a regular expression matched against
// "analyzer: message" of a diagnostic reported on the same line. Every
// diagnostic must be matched by an expectation and every expectation must
// be matched by a diagnostic; either direction failing fails the test.
package linttest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"aiql/internal/lint"
)

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantArgRe tokenizes the body of a want comment into back-quoted or
// double-quoted regular expressions.
var wantArgRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// Run loads pkgPath (an import path; the fixture packages live under
// testdata/src), applies the analyzers, and reports any mismatch between
// the diagnostics and the fixture's want comments on t.
func Run(t *testing.T, pkgPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkgs, err := lint.Load("", pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages loaded for %s", pkgPath)
	}

	// The plain package and its test variant both appear as roots when the
	// fixture has _test.go files; dedupe diagnostics and files across them.
	seen := make(map[lint.Diagnostic]bool)
	var diags []lint.Diagnostic
	wants := make(map[string][]*want)
	seenFile := make(map[string]bool)
	for _, pkg := range pkgs {
		ds, err := lint.Analyze(pkg, analyzers)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				diags = append(diags, d)
			}
		}
		collectWants(t, pkg, wants, seenFile)
	}

	for _, d := range diags {
		if !matchWant(wants[d.Pos.Filename], d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
			}
		}
	}
}

// matchWant consumes the first unmatched expectation on the diagnostic's
// line whose pattern matches it.
func matchWant(ws []*want, d lint.Diagnostic) bool {
	text := d.Analyzer + ": " + d.Message
	for _, w := range ws {
		if !w.matched && w.line == d.Pos.Line && w.re.MatchString(text) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses the `// want` comments out of every file of the
// package not already collected.
func collectWants(t *testing.T, pkg *lint.Package, wants map[string][]*want, seenFile map[string]bool) {
	t.Helper()
	for _, f := range pkg.Syntax {
		file := pkg.Fset.Position(f.Pos()).Filename
		if seenFile[file] {
			continue
		}
		seenFile[file] = true
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				line := pkg.Fset.Position(c.Pos()).Line
				args := wantArgRe.FindAllString(strings.TrimPrefix(text, "want "), -1)
				if len(args) == 0 {
					t.Errorf("%s:%d: malformed want comment %q", file, line, c.Text)
					continue
				}
				for _, a := range args {
					pat := a
					if a[0] == '`' {
						pat = a[1 : len(a)-1]
					} else if unq, err := strconv.Unquote(a); err == nil {
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", file, line, pat, err)
						continue
					}
					wants[file] = append(wants[file], &want{file: file, line: line, re: re})
				}
			}
		}
	}
}
