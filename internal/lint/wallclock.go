package lint

import (
	"go/ast"
	"strings"
)

// WallClock reports time.Now calls in library packages. Query evaluation,
// storage, streaming joins and predicate code must be deterministic —
// replay, golden fixtures and the recovery differentials all depend on a
// run being a pure function of the ingested data — so those layers use
// timeutil or injected clocks. Wall time is legitimate at the serving
// edge (request latency, uptime) and in the bench harness; those sites
// carry //aiql:ignore wallclock -- <reason> so the allowlist is explicit.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "no time.Now in library packages; use timeutil or an injected clock",
	Run:  runWallClock,
}

func runWallClock(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // wall time at the binary edge is fine
	}
	if strings.Contains(pass.Pkg.Path(), "timeutil") {
		return nil // the clock abstraction itself
	}
	if strings.HasSuffix(pass.Pkg.Path(), "/obs") {
		return nil // the observability layer is the designated wallclock edge
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if pathOf(obj) == "time" && obj.Name() == "Now" {
				pass.Report(call.Pos(), "time.Now in library code; use timeutil or an injected clock for determinism")
			}
			return true
		})
	}
	return nil
}
