package lint_test

import (
	"testing"

	"aiql/internal/lint"
	"aiql/internal/lint/linttest"
)

// TestCtxFlow runs wallclock alongside ctxflow so the fixture's
// comma-separated multi-analyzer directive is exercised for real.
func TestCtxFlow(t *testing.T) {
	linttest.Run(t, "aiql/internal/lint/testdata/src/ctxfix", lint.CtxFlow, lint.WallClock)
}

// TestMainPackagesExempt pins the package-main allowance for the two
// edge-of-binary analyzers.
func TestMainPackagesExempt(t *testing.T) {
	linttest.Run(t, "aiql/internal/lint/testdata/src/mainskip", lint.CtxFlow, lint.WallClock)
}
