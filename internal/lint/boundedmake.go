package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BoundedMake reports make calls in the storage and WAL decode paths
// whose size derives from a value decoded out of untrusted bytes without
// a dominating bounds check. The invariant (PR 4/6): corruption must
// produce a typed error, never an attacker-sized allocation — a flipped
// length field must not OOM the process.
//
// Taint is tracked per function, through local assignments: reads via
// encoding/binary and the repo's decoder helpers (u32, u64, uvarint, ...)
// are sources; len/cap-derived sizes are inherently bounded and stay
// clean. A tainted size is accepted when an if statement comparing the
// value appears earlier in the function (the bounds-check idiom), or when
// the size passes through min(). Field reads are not tracked — counts
// stored into validated structs (segment directories) are the caller's
// proof obligation.
var BoundedMake = &Analyzer{
	Name: "boundedmake",
	Doc:  "decode-path allocations must be bounds-checked against the input",
	Run:  runBoundedMake,
}

// taintMethods are receiver-method names that read raw integers off the
// wire in this repo's decoders (storage.decoder, storage.byteReader).
var taintMethods = map[string]bool{
	"uvarint": true, "svarint": true, "varint": true,
	"u16": true, "u32": true, "u64": true, "byte": true,
	"uint16": true, "uint32": true, "uint64": true,
}

func runBoundedMake(pass *Pass) error {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "storage") && !strings.Contains(path, "wal") {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkBoundedMake(pass, fd.Body)
			}
		}
	}
	return nil
}

func checkBoundedMake(pass *Pass, body *ast.BlockStmt) {
	tainted := make(map[types.Object]bool)
	isTainted := func(e ast.Expr) bool { return exprTainted(pass, tainted, e) }

	// Propagate taint through local assignments. Two passes so a value
	// flowing through an intermediate variable defined later in a branch
	// still registers.
	for range 2 {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					var rhs ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0] // multi-value: taint all LHS together
					}
					if rhs == nil || !isTainted(rhs) {
						continue
					}
					if obj := identObj(pass, id); obj != nil {
						tainted[obj] = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) && isTainted(n.Values[i]) {
						if obj := identObj(pass, name); obj != nil {
							tainted[obj] = true
						}
					}
				}
			}
			return true
		})
	}

	// Record bounds checks: for each object, the position of every if
	// statement whose condition compares it.
	checks := make(map[types.Object][]token.Pos)
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			be, ok := c.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			default:
				return true
			}
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(s ast.Node) bool {
					if id, ok := s.(*ast.Ident); ok {
						if obj := pass.TypesInfo.Uses[id]; obj != nil {
							checks[obj] = append(checks[obj], ifs.Pos())
						}
					}
					return true
				})
			}
			return true
		})
		return true
	})

	checkedBefore := func(obj types.Object, pos token.Pos) bool {
		for _, p := range checks[obj] {
			if p < pos {
				return true
			}
		}
		return false
	}

	// Examine every make's size arguments.
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "make") || len(call.Args) < 2 {
			return true
		}
		for _, size := range call.Args[1:] {
			reportUncheckedTaint(pass, tainted, checkedBefore, size, call.Pos())
		}
		return true
	})
}

// reportUncheckedTaint reports tainted, unchecked components of a make
// size expression. min() bounds its result, so its subtree is skipped.
func reportUncheckedTaint(pass *Pass, tainted map[types.Object]bool, checkedBefore func(types.Object, token.Pos) bool, size ast.Expr, makePos token.Pos) {
	ast.Inspect(size, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(pass, n.Fun, "min") {
				return false // explicitly clamped
			}
			if taintSourceCall(pass, n) {
				pass.Reportf(n.Pos(), "allocation sized directly from decoded input; bound it against the input length first")
				return false
			}
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj != nil && tainted[obj] && !checkedBefore(obj, makePos) {
				pass.Reportf(n.Pos(), "allocation sized from decoded value %q without a dominating bounds check", n.Name)
			}
		}
		return true
	})
}

// exprTainted reports whether e's value may come straight off decoded
// input bytes.
func exprTainted(pass *Pass, tainted map[types.Object]bool, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion: taint flows through the operand
			}
			if isBuiltin(pass, n.Fun, "len") || isBuiltin(pass, n.Fun, "cap") || isBuiltin(pass, n.Fun, "min") {
				return false // inherently bounded by in-memory data
			}
			if taintSourceCall(pass, n) {
				found = true
			}
			return false // other call results are not traced
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[n]; obj != nil && tainted[obj] {
				found = true
			}
		case *ast.SelectorExpr:
			// Field reads are untracked; stop so the base ident's own
			// taint does not leak through (pi.nDict is not pi).
			if _, isField := pass.TypesInfo.Selections[n]; isField {
				return false
			}
		}
		return true
	})
	return found
}

// taintSourceCall reports whether the call reads an integer off raw
// input: anything from encoding/binary, or a decoder helper method.
func taintSourceCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil {
		return false
	}
	if pathOf(obj) == "encoding/binary" && strings.HasPrefix(obj.Name(), "Uint") {
		return true
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if pathOf(obj) == "encoding/binary" { // ByteOrder.Uint32 et al.
			return true
		}
		return taintMethods[strings.ToLower(obj.Name())]
	}
	return false
}

func identObj(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}
