package lint

import "go/ast"

// inspectStack walks the tree rooted at n, calling fn with each node and
// the stack of its ancestors (outermost first, not including the node
// itself). Returning false from fn prunes the subtree.
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// enclosingFuncs returns the innermost *ast.FuncLit or *ast.FuncDecl body
// containing the stack top, and the outermost enclosing *ast.FuncDecl.
func enclosingFuncs(stack []ast.Node) (innermost ast.Node, decl *ast.FuncDecl) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			if innermost == nil {
				innermost = n
			}
		case *ast.FuncDecl:
			if innermost == nil {
				innermost = n
			}
			return innermost, n
		}
	}
	return innermost, nil
}

// funcBody returns the body of a *ast.FuncDecl or *ast.FuncLit node.
func funcBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return nil
}
