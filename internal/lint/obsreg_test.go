package lint_test

import (
	"testing"

	"aiql/internal/lint"
	"aiql/internal/lint/linttest"
)

func TestObsReg(t *testing.T) {
	linttest.Run(t, "aiql/internal/lint/testdata/src/obsfix", lint.ObsReg)
}
