// Package lint is aiql's project-invariant static-analysis suite: a set
// of analyzers that encode, as machine-checked rules, the invariants the
// repo previously enforced only by hand audits and regression tests —
// cursor/snapshot lifetimes, mutex discipline, bounds-checked decoding of
// untrusted bytes, sentinel-error comparison via errors.Is, context
// threading, and deterministic time handling.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) so the passes read like standard vet
// checks, but it is built on the standard library alone: packages load
// through `go list -export -json` plus the stdlib gc importer (load.go),
// and cmd/aiqlvet speaks the `go vet -vettool` unit-checker protocol
// itself. See docs/ANALYSIS.md for each analyzer's contract.
//
// Findings can be suppressed with an escape hatch that requires a reason:
//
//	//aiql:ignore <analyzer>[,<analyzer>...] -- <reason>
//
// placed on the offending line or on the line directly above it. A
// directive with no reason is itself a diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //aiql:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass presents one package to an analyzer and collects its
// diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Report records a diagnostic.
func (p *Pass) Report(pos token.Pos, msg string) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  msg,
	})
}

// Reportf records a formatted diagnostic.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// DirectiveAnalyzer is the name under which malformed //aiql:ignore
// directives are reported. It is not a runnable pass: the check runs as
// part of Analyze, so the escape hatch itself cannot rot.
const DirectiveAnalyzer = "ignoredirective"

// Analyze runs the analyzers over one loaded package, applies the
// //aiql:ignore directives, and returns the surviving diagnostics sorted
// by position. Malformed directives (no "-- <reason>") are reported under
// DirectiveAnalyzer and cannot be suppressed.
func Analyze(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.PkgPath, a.Name, err)
		}
	}
	ignores, bad := parseDirectives(pkg.Fset, pkg.Syntax)
	kept := diags[:0]
	for _, d := range diags {
		if ignores.covers(d) {
			continue
		}
		kept = append(kept, d)
	}
	diags = append(kept, bad...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// ignoreSet records, per file and line, which analyzers are suppressed.
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) add(file string, line int, analyzer string) {
	if s[file] == nil {
		s[file] = make(map[int]map[string]bool)
	}
	if s[file][line] == nil {
		s[file][line] = make(map[string]bool)
	}
	s[file][line][analyzer] = true
}

func (s ignoreSet) covers(d Diagnostic) bool {
	return s[d.Pos.Filename][d.Pos.Line][d.Analyzer]
}

const ignorePrefix = "aiql:ignore"

// parseDirectives extracts //aiql:ignore directives from the package's
// comments. A directive covers its own line and the line directly below
// it (so it can trail the offending statement or sit on its own line
// above). Directives without a ` -- reason` suffix are returned as
// diagnostics instead of suppressions.
func parseDirectives(fset *token.FileSet, files []*ast.File) (ignoreSet, []Diagnostic) {
	ignores := make(ignoreSet)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
				pos := fset.Position(c.Pos())
				names, reason, ok := strings.Cut(rest, "--")
				reason = strings.TrimSpace(reason)
				names = strings.TrimSpace(names)
				if !ok || reason == "" || names == "" {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: DirectiveAnalyzer,
						Message:  `aiql:ignore requires an analyzer name and a reason: //aiql:ignore <analyzer> -- <reason>`,
					})
					continue
				}
				for _, name := range strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' }) {
					ignores.add(pos.Filename, pos.Line, name)
					ignores.add(pos.Filename, pos.Line+1, name)
				}
			}
		}
	}
	return ignores, bad
}

// isTestFile reports whether the file a position belongs to is a _test.go
// file. Several analyzers relax their rules inside tests.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// pathOf returns the import path of the types.Object's package, or "".
func pathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}
