package lint

import (
	"go/ast"
)

// CtxFlow reports calls to context.Background or context.TODO outside
// package main and test files. Library code that mints its own root
// context breaks cancellation threading: the aiqld request context (and
// the bench harness timeout) must reach every storage scan, so internal
// packages take a ctx parameter instead. Legitimate roots (a public
// convenience API, a harness entry point) carry an explicit
// //aiql:ignore ctxflow -- <reason> annotation, which is the allowlist.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "no context.Background/TODO outside main, tests, and annotated roots",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if pathOf(obj) != "context" {
				return true
			}
			if name := obj.Name(); name == "Background" || name == "TODO" {
				pass.Reportf(call.Pos(), "context.%s in library code; thread a context.Context from the caller instead", name)
			}
			return true
		})
	}
	return nil
}
