package lint_test

import (
	"strings"
	"testing"

	"aiql/internal/lint"
)

// TestIgnoreDirective pins the escape-hatch contract directly: a
// well-formed //aiql:ignore suppresses the finding it covers, while a
// reason-less directive suppresses nothing and is itself reported under
// the ignoredirective pseudo-analyzer.
func TestIgnoreDirective(t *testing.T) {
	pkgs, err := lint.Load("", "aiql/internal/lint/testdata/src/ignorefix")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	diags, err := lint.Analyze(pkgs[0], []*lint.Analyzer{lint.ErrCmp})
	if err != nil {
		t.Fatal(err)
	}
	var gotErrcmp, gotDirective bool
	for _, d := range diags {
		switch d.Analyzer {
		case "errcmp":
			gotErrcmp = true
			if !strings.Contains(d.Message, "ErrOops") {
				t.Errorf("errcmp diagnostic message %q does not name the sentinel", d.Message)
			}
		case lint.DirectiveAnalyzer:
			gotDirective = true
			if !strings.Contains(d.Message, "reason") {
				t.Errorf("directive diagnostic %q does not demand a reason", d.Message)
			}
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}
	if len(diags) != 2 || !gotErrcmp || !gotDirective {
		t.Fatalf("got %d diagnostics %v; want exactly one unsuppressed errcmp finding and one ignoredirective report", len(diags), diags)
	}
	// Both land on the reason-less line; the well-formed directive's line
	// must be clean.
	for _, d := range diags {
		if !strings.Contains(d.Pos.Filename, "ignorefix.go") {
			t.Errorf("diagnostic outside the fixture: %s", d)
		}
	}
}
