package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listEntry is the subset of `go list -json` output the loader consumes.
type listEntry struct {
	ImportPath      string
	Dir             string
	Name            string
	Export          string
	GoFiles         []string
	CompiledGoFiles []string
	ImportMap       map[string]string
	DepOnly         bool
	Standard        bool
	ForTest         string
	Module          *struct{ GoVersion string }
	Error           *struct{ Err string }
}

// Load lists the packages matching patterns (in dir, "" for the current
// directory), including their in-package and external test variants, and
// type-checks each from source. Dependencies are resolved through the gc
// export data the go command produces for `go list -export`, so the
// loader needs no third-party machinery and works offline.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-compiled", "-deps", "-test",
		"-json=ImportPath,Dir,Name,Export,GoFiles,CompiledGoFiles,ImportMap,DepOnly,Standard,ForTest,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.Bytes())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	exportFile := make(map[string]string)
	goVersion := ""
	var roots []*listEntry
	for {
		e := new(listEntry)
		if err := dec.Decode(e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: go list output: %w", err)
		}
		if e.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", e.ImportPath, e.Error.Err)
		}
		if e.Export != "" {
			exportFile[e.ImportPath] = e.Export
		}
		// Roots are the matched packages and their test variants; the
		// synthesized test main ("pkg.test") carries only generated code.
		if e.DepOnly || e.Standard || strings.HasSuffix(e.ImportPath, ".test") {
			continue
		}
		if len(e.GoFiles) == 0 && len(e.CompiledGoFiles) == 0 {
			continue
		}
		if e.Module != nil && e.Module.GoVersion != "" {
			goVersion = e.Module.GoVersion
		}
		roots = append(roots, e)
	}
	var pkgs []*Package
	for _, e := range roots {
		pkg, err := typecheck(e, exportFile, goVersion)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and type-checks one go list entry, resolving imports
// through the export data recorded for its dependency closure.
func typecheck(e *listEntry, exportFile map[string]string, goVersion string) (*Package, error) {
	fset := token.NewFileSet()
	files := e.CompiledGoFiles
	if len(files) == 0 {
		files = e.GoFiles
	}
	var syntax []*ast.File
	for _, name := range files {
		if !strings.HasSuffix(name, ".go") {
			continue // cgo-compiled units may list non-Go inputs
		}
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(e.Dir, name)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		syntax = append(syntax, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := e.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	if goVersion != "" {
		conf.GoVersion = "go" + strings.TrimPrefix(goVersion, "go")
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(e.ImportPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", e.ImportPath, err)
	}
	return &Package{
		PkgPath:   e.ImportPath,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
